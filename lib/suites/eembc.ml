(* EEMBC-shaped embedded kernels. Small, regular, mostly integer/fixed-point;
   the paper groups EEMBC with the numeric suites and notes it benefits more
   from -fn2 than from -reduc1 — so several kernels here keep their math
   in helper functions called from loops. pntrch is the deliberately serial
   pointer-chase outlier. *)

let a2time =
  Defs.mk ~name:"a2time01" ~category:Defs.Eembc
    ~descr:"angle-to-time conversion with table interpolation"
    {src|
fn interp(tab: float[], idx: int, frac: float) -> float {
  return tab[idx] + (tab[idx + 1] - tab[idx]) * frac;
}

fn main() -> int {
  var tabsize: int = 64;
  var tab: float[] = new float[tabsize + 1];
  for (var i: int = 0; i <= tabsize; i = i + 1) {
    tab[i] = float(i * i) * 0.01;
  }
  var samples: int = 4000;
  var acc: float = 0.0;
  // per-sample conversion: independent, but calls an instrumented helper
  // (parallel only from -fn2 up; its reads never conflict)
  for (var k: int = 0; k < samples; k = k + 1) {
    var angle: int = (k * 37) % (tabsize * 16);
    var idx: int = angle / 16;
    var frac: float = float(angle % 16) * 0.0625;
    acc = acc + interp(tab, idx, frac);
  }
  print_float(acc);
  return 0;
}
|src}

let aifft =
  Defs.mk ~name:"aifftr01" ~category:Defs.Eembc
    ~descr:"radix-2 FFT butterflies: parallel within a stage, stages chained"
    {src|
fn main() -> int {
  var n: int = 512;
  var re: float[] = new float[n];
  var im: float[] = new float[n];
  for (var i: int = 0; i < n; i = i + 1) {
    re[i] = float((i * 13) % 32) * 0.0625 - 1.0;
    im[i] = 0.0;
  }
  var half: int = 1;
  // log2(n) stages: each stage reads what the previous one wrote (frequent
  // memory LCD on the stage loop); butterflies within a stage independent
  while (half < n) {
    var step: float = 3.14159265 / float(half);
    for (var base: int = 0; base < n; base = base + 2 * half) {
      for (var k: int = 0; k < half; k = k + 1) {
        var ang: float = step * float(k);
        var wr: float = cos(ang);
        var wi: float = 0.0 - sin(ang);
        var a: int = base + k;
        var b: int = a + half;
        var tr: float = wr * re[b] - wi * im[b];
        var ti: float = wr * im[b] + wi * re[b];
        re[b] = re[a] - tr;
        im[b] = im[a] - ti;
        re[a] = re[a] + tr;
        im[a] = im[a] + ti;
      }
    }
    half = half * 2;
  }
  var check: float = 0.0;
  for (var i: int = 0; i < n; i = i + 1) { check = check + re[i] * re[i] + im[i] * im[i]; }
  print_float(check);
  return 0;
}
|src}

let aifirf =
  Defs.mk ~name:"aifirf01" ~category:Defs.Eembc
    ~descr:"FIR filter: per-output dot-product reductions"
    {src|
fn main() -> int {
  var taps: int = 32;
  var n: int = 3000;
  var coef: float[] = new float[taps];
  var x: float[] = new float[n + taps];
  var y: float[] = new float[n];
  for (var i: int = 0; i < taps; i = i + 1) {
    coef[i] = float(taps - i) * 0.01;
  }
  for (var i: int = 0; i < n + taps; i = i + 1) {
    x[i] = float((i * 29) % 64) * 0.03 - 0.96;
  }
  for (var i: int = 0; i < n; i = i + 1) {
    var acc: float = 0.0;
    for (var k: int = 0; k < taps; k = k + 1) {
      acc = acc + coef[k] * x[i + k];
    }
    y[i] = acc;
  }
  var check: float = 0.0;
  for (var i: int = 0; i < n; i = i + 1) { check = check + y[i] * y[i]; }
  print_float(check);
  return 0;
}
|src}

let basefp =
  Defs.mk ~name:"basefp01" ~category:Defs.Eembc
    ~descr:"floating-point mix with pure libm calls in the loop"
    {src|
fn main() -> int {
  var n: int = 2500;
  var acc: float = 0.0;
  for (var i: int = 0; i < n; i = i + 1) {
    var t: float = float(i) * 0.002;
    acc = acc + sin(t) * cos(t) + sqrt(t + 1.0) * 0.1;
  }
  print_float(acc);
  return 0;
}
|src}

let bitmnp =
  Defs.mk ~name:"bitmnp01" ~category:Defs.Eembc
    ~descr:"bit manipulation: per-word shifts, masks and popcounts"
    {src|
fn popcount(x: int) -> int {
  var c: int = 0;
  while (x != 0) {
    c = c + (x & 1);
    x = x >> 1;
  }
  return c;
}

fn main() -> int {
  var n: int = 2000;
  var words: int[] = new int[n];
  var s: int = 77;
  for (var i: int = 0; i < n; i = i + 1) {
    s = lcg_next(s);
    words[i] = s;
  }
  var check: int = 0;
  for (var i: int = 0; i < n; i = i + 1) {
    var w: int = words[i];
    w = ((w << 3) | (w >> 13)) & 65535;
    w = w ^ (w >> 5);
    check = check + popcount(w);
  }
  print_int(check);
  return 0;
}
|src}

let idctrn =
  Defs.mk ~name:"idctrn01" ~category:Defs.Eembc
    ~descr:"8x8 inverse DCT over independent blocks"
    {src|
fn main() -> int {
  var blocks: int = 60;
  var data: float[] = new float[blocks * 64];
  var outp: float[] = new float[blocks * 64];
  var basis: float[] = new float[64];
  for (var u: int = 0; u < 8; u = u + 1) {
    for (var xx: int = 0; xx < 8; xx = xx + 1) {
      basis[u * 8 + xx] = cos((2.0 * float(xx) + 1.0) * float(u) * 0.19635);
    }
  }
  var s: int = 83;
  for (var i: int = 0; i < blocks * 64; i = i + 1) {
    s = lcg_next(s);
    data[i] = lcg_float(s) * 16.0 - 8.0;
  }
  // blocks fully independent; row and column passes inside each block
  for (var b: int = 0; b < blocks; b = b + 1) {
    for (var y: int = 0; y < 8; y = y + 1) {
      for (var xx: int = 0; xx < 8; xx = xx + 1) {
        var acc: float = 0.0;
        for (var u: int = 0; u < 8; u = u + 1) {
          acc = acc + data[b * 64 + y * 8 + u] * basis[u * 8 + xx];
        }
        outp[b * 64 + y * 8 + xx] = acc * 0.5;
      }
    }
  }
  var check: float = 0.0;
  for (var i: int = 0; i < blocks * 64; i = i + 1) { check = check + outp[i]; }
  print_float(check);
  return 0;
}
|src}

let matrix =
  Defs.mk ~name:"matrix01" ~category:Defs.Eembc
    ~descr:"dense matrix multiply"
    {src|
fn main() -> int {
  var n: int = 40;
  var a: float[] = new float[n * n];
  var b: float[] = new float[n * n];
  var c: float[] = new float[n * n];
  for (var i: int = 0; i < n * n; i = i + 1) {
    a[i] = float((i * 7) % 13) * 0.1;
    b[i] = float((i * 11) % 9) * 0.2;
  }
  for (var i: int = 0; i < n; i = i + 1) {
    for (var j: int = 0; j < n; j = j + 1) {
      var acc: float = 0.0;
      for (var k: int = 0; k < n; k = k + 1) {
        acc = acc + a[i * n + k] * b[k * n + j];
      }
      c[i * n + j] = acc;
    }
  }
  var check: float = 0.0;
  for (var i: int = 0; i < n * n; i = i + 1) { check = check + c[i]; }
  print_float(check);
  return 0;
}
|src}

let pntrch =
  Defs.mk ~name:"pntrch01" ~category:Defs.Eembc
    ~descr:"pointer chase through a shuffled linked ring: inherently serial"
    {src|
fn main() -> int {
  var n: int = 2048;
  var next: int[] = new int[n];
  // permutation ring built from a stride walk
  var stride: int = 1027; // coprime with n
  var cur: int = 0;
  for (var i: int = 0; i < n; i = i + 1) {
    var nxt: int = (cur + stride) % n;
    next[cur] = nxt;
    cur = nxt;
  }
  // the chase: every iteration loads the pointer the previous one stored
  // into its register — a frequent memory-fed LCD no model overlaps well
  var p: int = 0;
  var check: int = 0;
  for (var i: int = 0; i < 3 * n; i = i + 1) {
    p = next[p];
    check = check + (p & 7);
  }
  print_int(check + p);
  return 0;
}
|src}

let tblook =
  Defs.mk ~name:"tblook01" ~category:Defs.Eembc
    ~descr:"table lookup with per-query binary search"
    {src|
fn bsearch_floor(tab: int[], n: int, key: int) -> int {
  var lo: int = 0;
  var hi: int = n - 1;
  while (lo < hi) {
    var mid: int = (lo + hi + 1) / 2;
    if (tab[mid] <= key) { lo = mid; } else { hi = mid - 1; }
  }
  return lo;
}

fn main() -> int {
  var n: int = 256;
  var tab: int[] = new int[n];
  for (var i: int = 0; i < n; i = i + 1) { tab[i] = i * 17; }
  var queries: int = 2500;
  var check: int = 0;
  var s: int = 91;
  // queries independent; each calls the pure search helper
  for (var q: int = 0; q < queries; q = q + 1) {
    s = lcg_next(s);
    var key: int = lcg_pick(s, n * 17);
    check = check + bsearch_floor(tab, n, key);
  }
  print_int(check);
  return 0;
}
|src}

let ttsprk =
  Defs.mk ~name:"ttsprk01" ~category:Defs.Eembc
    ~descr:"spark-timing: per-cylinder conditional fixed-point computation"
    {src|
fn main() -> int {
  var events: int = 3000;
  var advance_tab: int[] = new int[64];
  for (var i: int = 0; i < 64; i = i + 1) {
    advance_tab[i] = 10 + ((i * i) % 35);
  }
  var check: int = 0;
  var s: int = 97;
  for (var e: int = 0; e < events; e = e + 1) {
    s = lcg_next(s);
    var pos: int = (s >> 10) & 63;
    var load: int = (s >> 16) & 63;
    var adv: int = advance_tab[pos];
    if (load > 40) {
      adv = adv - (load - 40) / 2;
    } else {
      if (load < 10) { adv = adv + 3; }
    }
    var dwell: int = 100 - adv;
    if (dwell < 20) { dwell = 20; }
    check = check + adv * 3 + dwell;
  }
  print_int(check);
  return 0;
}
|src}

let viterb =
  Defs.mk ~name:"viterb00" ~category:Defs.Eembc
    ~descr:"Viterbi decoder: serial trellis stages, parallel states"
    {src|
fn main() -> int {
  var states: int = 32;
  var steps: int = 150;
  var metric: int[] = new int[states];
  var nmetric: int[] = new int[states];
  var s: int = 101;
  for (var i: int = 0; i < states; i = i + 1) { metric[i] = i * 3; }
  for (var t: int = 0; t < steps; t = t + 1) {
    s = lcg_next(s);
    var sym: int = (s >> 16) & 3;
    // states independent within a step; the step loop carries the metrics
    for (var st: int = 0; st < states; st = st + 1) {
      var p0: int = (st * 2) % states;
      var p1: int = (st * 2 + 1) % states;
      var b0: int = ((st ^ sym) & 3) + metric[p0];
      var b1: int = ((st ^ sym ^ 1) & 3) + metric[p1];
      nmetric[st] = imin(b0, b1);
    }
    for (var st: int = 0; st < states; st = st + 1) { metric[st] = nmetric[st]; }
  }
  var best: int = 1000000000;
  for (var i: int = 0; i < states; i = i + 1) { best = imin(best, metric[i]); }
  print_int(best);
  return 0;
}
|src}

let rspeed =
  Defs.mk ~name:"rspeed01" ~category:Defs.Eembc
    ~descr:"road-speed window filter: range-proven forward gather offset"
    {src|
fn smooth_window(buf: float[], n: int) {
  // the gather offset is opaque to constant folding, but interval analysis
  // proves off in [1, 15]: every load lands strictly ahead of the store of
  // any later iteration, so the loop carries no memory RAW
  var off: int = n % 8 + 8;
  for (var i: int = 0; i < 64; i = i + 1) {
    buf[i] = buf[i] + 0.5 * buf[i + off];
  }
}

fn main() -> int {
  var buf: float[] = new float[96];
  var s: int = 12345;
  for (var i: int = 0; i < 96; i = i + 1) {
    s = lcg_next(s);
    buf[i] = lcg_float(s);
  }
  for (var pass: int = 0; pass < 4; pass = pass + 1) {
    s = lcg_next(s);
    smooth_window(buf, s & 1023);
  }
  var check: float = 0.0;
  for (var i: int = 0; i < 64; i = i + 1) { check = check + buf[i]; }
  print_float(check);
  return 0;
}
|src}

let puwmod =
  Defs.mk ~name:"puwmod01" ~category:Defs.Eembc
    ~descr:"pulse-width modulation: duty update with trip-bounded feedback"
    {src|
fn decay_tail(duty: float[], cnt: int) {
  // the feedback distance (48) is a real dependence, but interval analysis
  // bounds the header-arrival count by 48: the producing iteration never
  // runs in the same invocation, so the loop is a provable DOALL
  var m: int = cnt % 32 + 16;
  for (var i: int = 48; i < 48 + m; i = i + 1) {
    duty[i] = duty[i - 48] * 0.75 + 0.125;
  }
}

fn main() -> int {
  var duty: float[] = new float[96];
  var s: int = 777;
  for (var i: int = 0; i < 96; i = i + 1) {
    s = lcg_next(s);
    duty[i] = lcg_float(s);
  }
  for (var pass: int = 0; pass < 6; pass = pass + 1) {
    s = lcg_next(s);
    decay_tail(duty, s & 4095);
  }
  var check: float = 0.0;
  for (var i: int = 0; i < 96; i = i + 1) { check = check + duty[i]; }
  print_float(check);
  return 0;
}
|src}

let benchmarks () =
  [
    a2time; aifft; aifirf; basefp; bitmnp; idctrn; matrix; pntrch; tblook;
    ttsprk; viterb; rspeed; puwmod;
  ]
