(* Registry over the per-suite benchmark lists. *)



type category = Defs.category = Int2000 | Int2006 | Fp2000 | Fp2006 | Eembc

type benchmark = Defs.benchmark = {
  name : string;
  category : category;
  descr : string;
  source : string;
  expected : string option;
}

let category_name = Defs.category_name

let is_numeric = Defs.is_numeric

let all () : benchmark list =
  Int2000.benchmarks () @ Int2006.benchmarks () @ Fp2000.benchmarks ()
  @ Fp2006.benchmarks () @ Eembc.benchmarks ()

let by_category cat = List.filter (fun b -> b.category = cat) (all ())

let find name = List.find_opt (fun b -> b.name = name) (all ())

let names () = List.map (fun b -> b.name) (all ())

let categories = [ Int2000; Int2006; Fp2000; Fp2006; Eembc ]

(* Levenshtein distance, for "did you mean ...?" suggestions on unknown
   benchmark names. *)
let edit_distance a b =
  let la = String.length a and lb = String.length b in
  let prev = Array.init (lb + 1) Fun.id and cur = Array.make (lb + 1) 0 in
  for i = 1 to la do
    cur.(0) <- i;
    for j = 1 to lb do
      let cost = if a.[i - 1] = b.[j - 1] then 0 else 1 in
      cur.(j) <- min (min (cur.(j - 1) + 1) (prev.(j) + 1)) (prev.(j - 1) + cost)
    done;
    Array.blit cur 0 prev 0 (lb + 1)
  done;
  prev.(lb)

let closest name =
  let best =
    List.fold_left
      (fun acc cand ->
        let d = edit_distance (String.lowercase_ascii name) cand.name in
        match acc with Some (_, bd) when bd <= d -> acc | _ -> Some (cand.name, d))
      None (all ())
  in
  match best with
  | Some (cand, d) when d <= max 3 (String.length name / 2) -> Some cand
  | _ -> None
