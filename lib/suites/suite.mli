(** Registry of the benchmark suites. Each benchmark is a standalone Looplang
    program shaped after a SPEC CPU2000/2006 or EEMBC benchmark (see
    DESIGN.md §2 for the substitution rationale). *)

type category = Defs.category = Int2000 | Int2006 | Fp2000 | Fp2006 | Eembc

type benchmark = Defs.benchmark = {
  name : string;  (** e.g. ["181_mcf"] *)
  category : category;
  descr : string;  (** one-line dependency character *)
  source : string;  (** full Looplang program incl. the shared prelude *)
  expected : string option;  (** reserved for inline golden outputs *)
}

val category_name : category -> string

(** The paper groups EEMBC with the numeric suites. *)
val is_numeric : category -> bool

(** All benchmarks, suite order: int2000, int2006, fp2000, fp2006, eembc. *)
val all : unit -> benchmark list

val by_category : category -> benchmark list

val find : string -> benchmark option

val names : unit -> string list

val categories : category list

(** Levenshtein distance between two strings. *)
val edit_distance : string -> string -> int

(** The registered benchmark name closest to [name] in edit distance, when
    close enough to be a plausible typo. *)
val closest : string -> string option
