(** Per-loop static memory-dependence verdicts. A loop is [Proven_doall]
    when no store in any iteration can feed a load in a strictly later
    iteration of the same invocation — no cross-iteration memory RAW, the
    only memory ordering constraint the limit study models. [Proven_lcd]
    carries one concrete witness pair; everything unresolvable is [Unknown]
    and stays on the dynamic detector's plate.

    Soundness contract with the run-time component: on any execution, a
    [Proven_doall] loop's invocations record zero RAW manifestations
    (Loopa.Crosscheck enforces this in tests). *)

type call_effect = Ir.Builtins.mem_effect =
  | No_mem  (** touches no program-visible memory *)
  | Reads  (** may load, never stores *)
  | Reads_writes

type witness = {
  store_id : int;
  load_id : int;  (** -1 when the reader is a call, not a Load *)
  distance : int64 option;
  test : string;
}

type verdict = Proven_doall | Proven_lcd of witness | Unknown

type summary = {
  verdict : verdict;
  trip : int64 option;
      (** static header-arrival count (or proven upper bound) the tests used *)
  n_loads : int;
  n_stores : int;
  n_call_reads : int;  (** calls with Reads or Reads_writes effect *)
  n_call_writes : int;  (** calls with Reads_writes effect *)
  n_pairs : int;  (** (store, load) pairs examined *)
  n_refuted : int;  (** pairs proven independent *)
}

val verdict_name : verdict -> string
val verdict_to_string : verdict -> string

val builtin_effect : Ir.Builtins.signature -> call_effect
(** The shared [mem] field of the builtin signature table; the interpreter
    enforces the same spec at dispatch time. *)

val default_call_effect : string -> call_effect
(** Builtins from the shared table; unknown (user) callees are
    conservatively [Reads_writes]. *)

val split_const : Scev.Expr.t -> int64 * Scev.Expr.t list
(** Split an invariant address expression into its constant offset and the
    remaining (simplified, sorted) symbolic terms. *)

val const_delta : store:Scev.Expr.t -> load:Scev.Expr.t -> int64 option
(** [load base - store base] when the symbolic parts are structurally
    identical. *)

type range_facts = {
  trip_bound : int64 option;
      (** proven upper bound on header arrivals, used when the exact trip
          count is unknown *)
  itv_of : Ir.Types.value -> Util.Interval.t;
      (** proven interval for an SSA value ({!Util.Interval.top} when
          nothing is known) *)
}
(** Facts handed down from the dataflow layer. Both components
    over-approximate, so every refutation they enable remains sound. *)

val diff_interval :
  itv_of:(Ir.Types.value -> Util.Interval.t) ->
  store:Scev.Expr.t ->
  load:Scev.Expr.t ->
  Util.Interval.t
(** Interval for [load base - store base]: structurally-equal terms cancel
    (multiset difference), the rest evaluates with checked interval
    arithmetic. *)

val test_pair :
  ?range:range_facts -> n:int64 option -> Access.t -> Access.t ->
  Subscript.result
(** Test one (store, load) pair; [n] is the header-arrival count or a
    proven upper bound. *)

val analyze_loop :
  ?range:range_facts ->
  Ir.Func.t ->
  Cfg.Loopinfo.t ->
  Scev.Analysis.t ->
  lid:int ->
  trip:int64 option ->
  call_effect:(string -> call_effect) ->
  summary

val unknown_summary : summary
(** Placeholder for loops that were never analyzed. *)
