(** Subscript dependence tests over affine access functions — the classic
    ZIV / SIV / GCD lattice (Goff, Kennedy & Tseng) specialised to one
    question: can a store executed in iteration [i] feed a load executed in
    a strictly later iteration [j] of the same loop? The store accesses
    address [sb + sw*i], the load [lb + sr*j], with 0 <= i < j <= n-1 when
    the header-arrival count [n] is known. *)

type verdict =
  | Independent
  | Dependent of int64 option  (** RAW distance j - i when the test pins it *)
  | Maybe

type result = { verdict : verdict; test : string }

val indep : string -> result
val dep : ?distance:int64 -> string -> result
val maybe : string -> result

val gcd64 : int64 -> int64 -> int64

val test : sw:int64 -> sr:int64 -> c:int64 -> n:int64 option -> result
(** [test ~sw ~sr ~c ~n]: store stride [sw], load stride [sr], constant
    address difference [c = lb - sb], header-arrival count [n] when known.
    Arithmetic is exact for the word-sized addresses the interpreter can
    represent; programs indexing near Int64 overflow are out of model. *)

val test_range :
  sw:int64 -> sr:int64 -> c:Util.Interval.t -> n:int64 option -> result
(** Like {!test}, but the address difference is only known to lie in an
    interval. A singleton interval delegates to {!test}; otherwise an
    interval Banerjee test over the iteration triangle applies, with all
    arithmetic overflow-checked (a wrap widens, never refutes). *)

val verdict_to_string : verdict -> string
