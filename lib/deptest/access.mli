(** Access collection: resolve Load/Store addresses in a loop body to the
    affine form [base-invariant + stride * iteration] via SCEV, with a
    base-object classification used for alias partitioning when symbolic
    address parts do not cancel. Disjointness claims rest on the documented
    no-wrap / inbounds assumptions (DESIGN.md "Static dependence testing"). *)

type base =
  | Alloc_site of int  (** instr id of the Alloc the address derives from *)
  | Global_cell of string  (** the one-word cell of a scalar global *)
  | Sym_param of int  (** an address handed in as parameter [i] *)
  | Sym of Ir.Types.value  (** some other loop-invariant SSA value *)
  | Absolute  (** numeric constant address *)
  | Unknown_base

type t = {
  instr_id : int;
  is_write : bool;
  inv : Scev.Expr.t;  (** loop-invariant part of the address *)
  stride : int64;  (** coefficient of this loop's canonical iteration *)
  base : base;
}

val base_to_string : base -> string

val base_of_inv : Ir.Func.t -> Scev.Expr.t -> base
(** Classify the base object of an invariant address part. Strong claims
    only for [[constant +] leaf]; anything scaled or multi-leaf is
    [Unknown_base]. *)

val provably_disjoint : t -> t -> bool
(** Can the objects behind two accesses be proven address-disjoint?
    Distinct allocation sites; an allocation site vs. any entry-live
    address; distinct scalar global cells when both accesses have stride
    0. *)

val resolve :
  Ir.Func.t ->
  Scev.Analysis.t ->
  lid:int ->
  header:int ->
  instr_id:int ->
  is_write:bool ->
  Ir.Types.value ->
  t option
(** Resolve one address value to affine form w.r.t. loop [lid] (header
    block [header]): at most one add-recurrence of this loop with a
    constant step plus a loop-invariant rest. [None] when the address does
    not fit that shape. *)
