(* Access collection: resolve every Load/Store address in a loop body to the
   affine form  base-invariant + stride * iteration  via SCEV, and attach a
   base-object classification used for alias partitioning when the symbolic
   parts of two addresses do not cancel.

   Base objects and the disjointness they license rest on two documented
   assumptions (DESIGN.md "Static dependence testing"): address arithmetic
   does not wrap, and every access made through a base stays inside the
   object that base points to (the Looplang frontend only ever derives
   addresses as array-base + index, so this is the LLVM inbounds-GEP
   discipline by construction). Under those assumptions:

   - two distinct allocation sites are disjoint (the allocator never reuses
     addresses: the heap break only grows);
   - an allocation site is disjoint from any address already live at
     function entry (params, global cells) — freshness;
   - two distinct scalar global cells are disjoint (each is one word).

   Everything else — in particular two different array parameters — may
   alias and falls through to the conservative [Unknown] verdict unless the
   symbolic bases cancel exactly. *)

type base =
  | Alloc_site of int (* instr id of the Alloc the address derives from *)
  | Global_cell of string (* the one-word cell of a scalar global *)
  | Sym_param of int (* an address handed in as parameter [i] *)
  | Sym of Ir.Types.value (* some other loop-invariant SSA value *)
  | Absolute (* numeric constant address *)
  | Unknown_base

type t = {
  instr_id : int;
  is_write : bool;
  inv : Scev.Expr.t; (* loop-invariant part of the address *)
  stride : int64; (* coefficient of this loop's canonical iteration *)
  base : base;
}

let base_to_string = function
  | Alloc_site id -> Printf.sprintf "alloc@%%%d" id
  | Global_cell g -> Printf.sprintf "global@%s" g
  | Sym_param i -> Printf.sprintf "param%d" i
  | Sym v -> Printf.sprintf "sym(%s)" (Ir.Pp.value_to_string v)
  | Absolute -> "absolute"
  | Unknown_base -> "?"

(* Classify the base object of an invariant address part. Strong claims only
   for the shape  [constant +] leaf  — a pointer plus a constant offset; any
   scaled or multi-leaf combination is Unknown_base. *)
let base_of_inv (fn : Ir.Func.t) (inv : Scev.Expr.t) : base =
  let leaf v ~const_off =
    match v with
    | Ir.Types.Reg id -> (
        match Ir.Func.kind fn id with
        | Ir.Instr.Alloc _ -> Alloc_site id
        | _ -> Sym v)
    | Ir.Types.Param i -> Sym_param i
    | Ir.Types.Global g -> if const_off then Sym v else Global_cell g
    | Ir.Types.Const _ -> Absolute
  in
  match inv with
  | Scev.Expr.Const _ -> Absolute
  | Scev.Expr.Unknown v -> leaf v ~const_off:false
  | Scev.Expr.Add [ Scev.Expr.Const _; Scev.Expr.Unknown v ] -> leaf v ~const_off:true
  | _ -> Unknown_base

(* Can the objects behind two accesses be proven address-disjoint? Global
   cells additionally require both accesses to stay on the cell itself
   (stride 0), since the "object" is a single word. *)
let provably_disjoint (a : t) (b : t) : bool =
  match (a.base, b.base) with
  | Alloc_site x, Alloc_site y -> x <> y
  | Alloc_site _, (Global_cell _ | Sym_param _) | (Global_cell _ | Sym_param _), Alloc_site _
    ->
      true
  | Global_cell x, Global_cell y -> x <> y && a.stride = 0L && b.stride = 0L
  | _ -> false

(* Resolve one address value to affine form w.r.t. loop [lid] (header block
   [header]): split the simplified SCEV into at most one add-recurrence of
   this loop with a constant step plus a loop-invariant rest. *)
let resolve (fn : Ir.Func.t) (sa : Scev.Analysis.t) ~(lid : int) ~(header : int)
    ~instr_id ~is_write (addr : Ir.Types.value) : t option =
  let e = Scev.Expr.simplify (Scev.Analysis.scev_of_value sa addr) in
  let terms = match e with Scev.Expr.Add ts -> ts | t -> [ t ] in
  let ours, rest =
    List.partition
      (function Scev.Expr.Add_rec { loop; _ } when loop = header -> true | _ -> false)
      terms
  in
  let stride_start =
    match ours with
    | [] -> Some (0L, [])
    | [ Scev.Expr.Add_rec { start; step = Scev.Expr.Const s; _ } ] -> Some (s, [ start ])
    | _ -> None (* polynomial step or unmerged recurrences: not affine here *)
  in
  match stride_start with
  | None -> None
  | Some (stride, start_terms) ->
      let inv = Scev.Expr.simplify (Scev.Expr.Add (start_terms @ rest)) in
      if
        Scev.Expr.contains_cannot inv
        || Scev.Expr.contains_self inv
        || not (Scev.Analysis.is_invariant sa inv ~lid)
      then None
      else
        Some { instr_id; is_write; inv; stride; base = base_of_inv fn inv }
