(* Subscript dependence tests over affine access functions — the classic
   ZIV / SIV / GCD lattice (Goff, Kennedy & Tseng) specialised to the one
   question the limit study needs: can a *store* executed in iteration [i]
   feed a *load* executed in a strictly later iteration [j] of the same
   loop? (WAR/WAW never matter here: the study assumes lazy versioning with
   in-order commit, so only cross-iteration RAW constrains parallelism.)

   The store accesses address  sb + sw*i  and the load  lb + sr*j,  with
   iteration indices counted per header arrival, 0 <= i < j <= n-1 when the
   header-arrival count [n] is statically known (accesses in the header
   itself execute on every arrival, including the final failing test, so
   [n] is the arrival count, not the body-execution count — one iteration
   of slack, conservative but sound). The tests solve

       sw*i - sr*j = c        where c = lb - sb

   and report Independent only when no integer solution exists in range. *)

type verdict =
  | Independent
  | Dependent of int64 option (* RAW distance j - i when the test pins it *)
  | Maybe

type result = { verdict : verdict; test : string }

let indep test = { verdict = Independent; test }
let dep ?distance test = { verdict = Dependent distance; test }
let maybe test = { verdict = Maybe; test }

let rec gcd64 a b = if b = 0L then Int64.abs a else gcd64 b (Int64.rem a b)

(* [test ~sw ~sr ~c ~n]: store stride [sw], load stride [sr], constant
   address difference [c] = load base - store base, and header-arrival
   count [n] when known. All arithmetic is exact for the word-sized
   addresses the interpreter can actually represent; programs indexing
   near Int64 overflow are out of model (DESIGN.md). *)
let test ~(sw : int64) ~(sr : int64) ~(c : int64) ~(n : int64 option) : result =
  let open Int64 in
  match n with
  | Some n when n <= 1L -> indep "trip" (* no pair i < j exists at all *)
  | _ ->
      if sw = 0L && sr = 0L then
        (* ZIV: both addresses loop-invariant *)
        if c = 0L then dep "ziv" else indep "ziv"
      else
        let g = gcd64 sw sr in
        if rem c g <> 0L then indep "gcd"
        else if sw = sr then begin
          (* strong SIV: equal strides, constant dependence distance *)
          let d = neg (div c sw) in
          if d <= 0L then indep "strong-siv"
          else
            match n with
            | Some n when d >= n -> indep "strong-siv"
            | _ -> dep ~distance:d "strong-siv"
        end
        else if sr = 0L then begin
          (* weak-zero SIV, invariant load: sw*i = c at a single iteration *)
          let i0 = div c sw in
          if rem c sw <> 0L || i0 < 0L then indep "weak-zero-siv"
          else
            match n with
            | Some n when i0 > sub n 2L -> indep "weak-zero-siv"
            | _ -> dep "weak-zero-siv"
        end
        else if sw = 0L then begin
          (* weak-zero SIV, invariant store: sr*j = -c at a single iteration *)
          let j0 = neg (div c sr) in
          if rem c sr <> 0L || j0 < 1L then indep "weak-zero-siv"
          else
            match n with
            | Some n when j0 > sub n 1L -> indep "weak-zero-siv"
            | _ -> dep "weak-zero-siv"
        end
        else if sr = neg sw then begin
          (* weak-crossing SIV: i + j pinned to c/sw *)
          let k = div c sw in
          if rem c sw <> 0L || k < 1L then indep "weak-crossing-siv"
          else
            match n with
            | Some n when k > sub (mul 2L n) 3L -> indep "weak-crossing-siv"
            | _ -> dep "weak-crossing-siv"
        end
        else begin
          (* general affine pair: GCD was inconclusive; try the Banerjee-style
             corner box over i, j in [0, n-1] *)
          match n with
          | None -> maybe "gcd"
          | Some n ->
              let m = sub n 1L in
              let lo = add (if sw >= 0L then 0L else mul sw m) (if sr >= 0L then mul (neg sr) m else 0L) in
              let hi = add (if sw >= 0L then mul sw m else 0L) (if sr >= 0L then 0L else mul (neg sr) m) in
              if c < lo || c > hi then indep "banerjee" else maybe "banerjee"
        end

(* Interval-c Banerjee: the constant address difference is only known to lie
   inside [c] (range analysis evaluated the non-cancelling symbolic base
   terms). Solve  sw*i - sr*j = c  over 0 <= i < j <= n-1 by substituting
   j = i + d:  f(i, d) = (sw - sr)*i - sr*d  with i >= 0, d >= 1,
   i + d <= m, m = n-1. f is linear, so its extrema over the triangle are
   attained at the vertices (0,1), (0,m), (m-1,1); when the vertex hull
   misses the c-interval entirely, no in-range solution exists. All
   arithmetic is overflow-checked — any wrap widens the hull to top and the
   pair stays unresolved (never a spurious refutation). *)
let test_range ~(sw : int64) ~(sr : int64) ~(c : Util.Interval.t)
    ~(n : int64 option) : result =
  match Util.Interval.singleton c with
  | Some c -> test ~sw ~sr ~c ~n (* exact difference: full SIV lattice *)
  | None -> (
      if Util.Interval.is_bot c then
        (* the base difference is computed from values proven unreachable *)
        indep "range"
      else
        match n with
        | Some n when n <= 1L -> indep "trip"
        | _ -> (
            match (Util.Interval.sub64 sw sr, Util.Interval.neg64 sr) with
            | Some a, Some b -> (
                let hull =
                  match n with
                  | Some n -> (
                      let m = Int64.sub n 1L in
                      (* vertices of the (i, d) triangle *)
                      let v1 = Some b (* f(0, 1) *) in
                      let v2 = Util.Interval.mul64 b m (* f(0, m) *) in
                      let v3 =
                        (* f(m-1, 1) *)
                        match Util.Interval.mul64 a (Int64.sub m 1L) with
                        | Some am -> Util.Interval.add64 am b
                        | None -> None
                      in
                      match (v1, v2, v3) with
                      | Some v1, Some v2, Some v3 ->
                          Util.Interval.of_bounds
                            (min v1 (min v2 v3))
                            (max v1 (max v2 v3))
                      | _ -> Util.Interval.top)
                  | None ->
                      (* unbounded triangle: a ray from f(0,1) = b *)
                      Util.Interval.of_bounds
                        (if a < 0L || b < 0L then Int64.min_int else b)
                        (if a > 0L || b > 0L then Int64.max_int else b)
                in
                match Util.Interval.meet hull c with
                | Util.Interval.Bot -> indep "range-banerjee"
                | _ -> maybe "range-banerjee")
            | _ -> maybe "range"))

let verdict_to_string = function
  | Independent -> "independent"
  | Dependent (Some d) -> Printf.sprintf "dependent(distance=%Ld)" d
  | Dependent None -> "dependent"
  | Maybe -> "maybe"
