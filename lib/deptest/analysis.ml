(* Per-loop static memory-dependence verdicts. A loop is Proven_doall when
   no store in any iteration can feed a load in a strictly later iteration
   of the same invocation — i.e. no cross-iteration memory RAW, the only
   memory ordering constraint the limit study models (lazy versioning with
   in-order commit absorbs WAR/WAW, paper §II-D). Proven_lcd carries one
   concrete witness pair. Everything unresolvable is Unknown and stays on
   the dynamic detector's plate.

   The soundness contract with the run-time component: on any execution, a
   Proven_doall loop's invocations record zero RAW manifestations
   (Loopa.Crosscheck enforces this in tests). The proof obligations are
   discharged per (store, load) pair either by subscript testing when the
   symbolic base parts cancel to a constant, or by base-object disjointness
   (Access.provably_disjoint). Calls are summarised by a memory effect; any
   unresolved effect poisons the pair side it touches. *)

(* Re-exported from the one shared spec in lib/ir: the interpreter enforces
   the same table at builtin-dispatch time, so the analysis and the runtime
   cannot drift apart. *)
type call_effect = Ir.Builtins.mem_effect =
  | No_mem (* touches no program-visible memory *)
  | Reads (* may load, never stores *)
  | Reads_writes

type witness = {
  store_id : int;
  load_id : int; (* -1 when the reader is a call, not a Load *)
  distance : int64 option;
  test : string;
}

type verdict = Proven_doall | Proven_lcd of witness | Unknown

type summary = {
  verdict : verdict;
  trip : int64 option; (* static header-arrival count used by the tests *)
  n_loads : int;
  n_stores : int;
  n_call_reads : int; (* calls with Reads or Reads_writes effect *)
  n_call_writes : int; (* calls with Reads_writes effect *)
  n_pairs : int; (* (store, load) pairs examined *)
  n_refuted : int; (* pairs proven independent *)
}

let verdict_name = function
  | Proven_doall -> "doall"
  | Proven_lcd _ -> "lcd"
  | Unknown -> "unknown"

let verdict_to_string = function
  | Proven_doall -> "proven-doall"
  | Proven_lcd { distance = Some d; test; _ } ->
      Printf.sprintf "proven-lcd(%s, distance=%Ld)" test d
  | Proven_lcd { test; _ } -> Printf.sprintf "proven-lcd(%s)" test
  | Unknown -> "unknown"

(* Memory effect of a builtin: straight from the shared signature table
   (lib/ir/builtins.ml), where the interpreter enforces it. *)
let builtin_effect (s : Ir.Builtins.signature) : call_effect = s.Ir.Builtins.mem

(* Conservative default for user calls when no purity information is
   available. *)
let default_call_effect (name : string) : call_effect =
  match Ir.Builtins.find name with Some s -> builtin_effect s | None -> Reads_writes

(* Split an invariant address expression into its constant offset and the
   remaining (simplified, sorted) symbolic terms. *)
let split_const (e : Scev.Expr.t) : int64 * Scev.Expr.t list =
  match e with
  | Scev.Expr.Const c -> (c, [])
  | Scev.Expr.Add ts ->
      let cs, rest =
        List.partition (function Scev.Expr.Const _ -> true | _ -> false) ts
      in
      let c =
        List.fold_left
          (fun acc t ->
            match t with Scev.Expr.Const c -> Int64.add acc c | _ -> acc)
          0L cs
      in
      (c, rest)
  | t -> (0L, [ t ])

(* [lb - sb] when the symbolic parts of the two invariant bases are
   structurally identical (simplify canonicalizes term order, so pairwise
   equality suffices); the SCEV simplifier does not cancel like terms, so
   this is how "same base object, constant offset apart" is detected. *)
let const_delta ~(store : Scev.Expr.t) ~(load : Scev.Expr.t) : int64 option =
  let cs, ts = split_const store and cl, tl = split_const load in
  if List.length ts = List.length tl && List.for_all2 Scev.Expr.equal ts tl then
    Some (Int64.sub cl cs)
  else None

(* Range facts handed down from the dataflow layer: a proven upper bound on
   header arrivals (when the exact trip count is unknown) and a proven
   interval for any SSA value. Both over-approximate, so every refutation
   they enable remains sound. *)
type range_facts = {
  trip_bound : int64 option;
  itv_of : Ir.Types.value -> Util.Interval.t;
}

(* Interval for [load base - store base] when the symbolic terms do not
   cancel exactly: cancel the structurally-equal terms (multiset
   difference), then evaluate what remains with checked interval
   arithmetic. *)
let diff_interval ~(itv_of : Ir.Types.value -> Util.Interval.t)
    ~(store : Scev.Expr.t) ~(load : Scev.Expr.t) : Util.Interval.t =
  let cs, ts = split_const store and cl, tl = split_const load in
  let rec remove x = function
    | [] -> None
    | y :: rest ->
        if Scev.Expr.equal x y then Some rest
        else Option.map (List.cons y) (remove x rest)
  in
  let load_only, store_only =
    List.fold_left
      (fun (extra, ts) x ->
        match remove x ts with
        | Some ts' -> (extra, ts')
        | None -> (x :: extra, ts))
      ([], ts) tl
  in
  let base =
    match Util.Interval.sub64 cl cs with
    | Some d -> Util.Interval.const d
    | None -> Util.Interval.top
  in
  let ev = Scev.Expr_range.itv_of_expr ~itv_of in
  let acc =
    List.fold_left (fun acc e -> Util.Interval.add acc (ev e)) base load_only
  in
  List.fold_left (fun acc e -> Util.Interval.sub acc (ev e)) acc store_only

(* Test one (store, load) pair. [n] is the header-arrival count (or a proven
   upper bound on it, which keeps every refutation sound). *)
let test_pair ?(range : range_facts option) ~(n : int64 option) (s : Access.t)
    (l : Access.t) : Subscript.result =
  match const_delta ~store:s.Access.inv ~load:l.Access.inv with
  | Some c -> Subscript.test ~sw:s.Access.stride ~sr:l.Access.stride ~c ~n
  | None -> (
      if Access.provably_disjoint s l then Subscript.indep "alias"
      else
        match range with
        | None -> Subscript.maybe "alias"
        | Some r ->
            let c =
              diff_interval ~itv_of:r.itv_of ~store:s.Access.inv
                ~load:l.Access.inv
            in
            if Util.Interval.is_top c then Subscript.maybe "alias"
            else Subscript.test_range ~sw:s.Access.stride ~sr:l.Access.stride ~c ~n)

(* Analyze loop [lid] of [fn]. [call_effect] summarises the memory effect of
   a callee by name; [trip] is the loop's static header-arrival count when
   known (Scev.Trip_count). [range] optionally strengthens the analysis:
   its trip bound substitutes for an unknown trip count and its value
   intervals let subscript pairs with non-cancelling symbolic bases still
   be refuted. *)
let analyze_loop ?(range : range_facts option) (fn : Ir.Func.t)
    (li : Cfg.Loopinfo.t) (sa : Scev.Analysis.t) ~(lid : int)
    ~(trip : int64 option) ~(call_effect : string -> call_effect) : summary =
  let trip =
    match trip with
    | Some _ -> trip
    | None -> Option.bind range (fun r -> r.trip_bound)
  in
  let l = Cfg.Loopinfo.loop li lid in
  let header = l.Cfg.Loopinfo.header in
  let loads = ref [] and stores = ref [] in
  let unresolved_loads = ref 0 and unresolved_stores = ref 0 in
  let n_loads = ref 0 and n_stores = ref 0 in
  let n_call_reads = ref 0 and n_call_writes = ref 0 in
  Cfg.Loopinfo.Int_set.iter
    (fun bid ->
      List.iter
        (fun id ->
          match Ir.Func.kind fn id with
          | Ir.Instr.Load a -> (
              incr n_loads;
              match Access.resolve fn sa ~lid ~header ~instr_id:id ~is_write:false a with
              | Some acc -> loads := acc :: !loads
              | None -> incr unresolved_loads)
          | Ir.Instr.Store (a, _) -> (
              incr n_stores;
              match Access.resolve fn sa ~lid ~header ~instr_id:id ~is_write:true a with
              | Some acc -> stores := acc :: !stores
              | None -> incr unresolved_stores)
          | Ir.Instr.Call (callee, _) -> (
              match call_effect callee with
              | No_mem -> ()
              | Reads -> incr n_call_reads
              | Reads_writes ->
                  incr n_call_reads;
                  incr n_call_writes)
          | _ -> ())
        (Ir.Func.block fn bid).Ir.Func.instr_ids)
    l.Cfg.Loopinfo.body;
  let n_pairs = ref 0 and n_refuted = ref 0 in
  let mk ~verdict =
    {
      verdict;
      trip;
      n_loads = !n_loads;
      n_stores = !n_stores;
      n_call_reads = !n_call_reads;
      n_call_writes = !n_call_writes;
      n_pairs = !n_pairs;
      n_refuted = !n_refuted;
    }
  in
  let any_write = !n_stores > 0 || !n_call_writes > 0 in
  let any_read = !n_loads > 0 || !n_call_reads > 0 in
  (* A RAW needs both a write and a later read; a loop with at most one
     header arrival has no later iteration at all. *)
  let single_arrival = match trip with Some n -> n <= 1L | None -> false in
  if (not any_write) || (not any_read) || single_arrival then mk ~verdict:Proven_doall
  else if
    !n_call_writes > 0
    || (!n_call_reads > 0 && any_write)
    || !unresolved_loads > 0
    || !unresolved_stores > 0
  then mk ~verdict:Unknown
  else begin
    (* every access resolved; decide pairwise *)
    let first_dep = ref None and any_maybe = ref false in
    List.iter
      (fun (s : Access.t) ->
        List.iter
          (fun (l : Access.t) ->
            incr n_pairs;
            let r = test_pair ?range ~n:trip s l in
            match r.Subscript.verdict with
            | Subscript.Independent -> incr n_refuted
            | Subscript.Dependent distance ->
                if !first_dep = None then
                  first_dep :=
                    Some
                      {
                        store_id = s.Access.instr_id;
                        load_id = l.Access.instr_id;
                        distance;
                        test = r.Subscript.test;
                      }
            | Subscript.Maybe -> any_maybe := true)
          !loads)
      !stores;
    match !first_dep with
    | Some w -> mk ~verdict:(Proven_lcd w)
    | None -> if !any_maybe then mk ~verdict:Unknown else mk ~verdict:Proven_doall
  end

(* A summary for loops that were never analyzed (placeholder). *)
let unknown_summary : summary =
  {
    verdict = Unknown;
    trip = None;
    n_loads = 0;
    n_stores = 0;
    n_call_reads = 0;
    n_call_writes = 0;
    n_pairs = 0;
    n_refuted = 0;
  }
