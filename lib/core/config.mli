(** The limit study's configuration lattice (paper Table II): a parallel
    execution model combined with the [reduc]/[dep]/[fn] relaxation flags. *)

(** Parallel execution models (paper §II-C, Figure 1). *)
type model =
  | Doall  (** abandon parallel execution on any manifesting conflict *)
  | Pdoall  (** Partial-DOALL: phase restarts, 80% conflict cutoff *)
  | Helix  (** generalized DOACROSS: per-iteration synchronization *)

(** Reduction accumulator handling. *)
type reduc =
  | Reduc0  (** reductions are ordinary non-computable LCDs *)
  | Reduc1  (** reductions are decoupled: parallel with no overheads *)

(** Non-computable register LCD handling. *)
type dep =
  | Dep0  (** bar parallelization *)
  | Dep1  (** lower to memory: a frequent memory LCD (HELIX sync) *)
  | Dep2  (** realistic hybrid value prediction *)
  | Dep3  (** perfect value prediction *)

(** Function calls inside loops. *)
type fn =
  | Fn0  (** any call makes the loop sequential *)
  | Fn1  (** only pure calls are parallelizable *)
  | Fn2  (** pure + thread-safe library + instrumented user calls *)
  | Fn3  (** every call is parallelizable *)

type t = { model : model; reduc : reduc; dep : dep; fn : fn }

(** The default interpreter fuel budget (dynamic IR instructions) shared by
    every entry point — the driver, the CLI, and the campaign runner. *)
val default_fuel : int

val model_name : model -> string

(** ["reducR-depD-fnF"], as the paper prints it. *)
val flags_name : t -> string

(** ["reducR-depD-fnF MODEL"]; parseable by {!of_string}. *)
val name : t -> string

val make : ?model:model -> ?reduc:reduc -> ?dep:dep -> ?fn:fn -> unit -> t

(** Reject combinations the models cannot express (DOALL with dep1–dep3). *)
val validate : t -> (t, string) result

exception Bad_config of string

(** Parse ["reduc1-dep2-fn2"], ["reduc0-dep0-fn0 DOALL"] or
    ["HELIX reduc0-dep1-fn2"]. The model defaults to PDOALL.
    @raise Bad_config on anything else. *)
val of_string : string -> t

(** The 14 rungs evaluated in Figures 2 and 3, most restrictive first. *)
val figure_ladder : t list

(** The two configurations compared per benchmark in Figure 4. *)
val best_pdoall : t

val best_helix : t

(** The three configurations whose coverage Figure 5 reports. *)
val coverage_configs : t list
