(* Configuration evaluation over a collected profile: bottom-up over the
   dynamic loop-invocation tree (children were created after their parents,
   so a reverse index walk sees every child before its parent), reducing
   iteration costs by nested savings, applying the execution model at each
   level, and propagating savings and coverage upward (paper §III-B: "the
   loop execution cost ... is then propagated up to the nest of parent loops
   and functions"). *)

type loop_result = {
  fname : string;
  lid : int;
  header : int;
  depth : int;
  invocations : int;
  parallel_invocations : int;
  serial_cost : float; (* Σ over invocations, nested savings included *)
  final_cost : float;
  mem_dep_manifestations : int;
  conflicting_iterations : int;
  total_iterations : int;
  static_verdict : Deptest.Analysis.verdict; (* the compile-time side's call *)
}

type report = {
  config : Config.t;
  total_cost : int; (* serial program cost: dynamic IR instructions *)
  parallel_cost : float;
  speedup : float;
  coverage_pct : float; (* % of dynamic instructions inside parallel loops *)
  static_coverage_pct : float;
      (* % of dynamic instructions inside loops the static dependence tester
         proved DOALL — the static-vs-dynamic parallelism gap, configuration
         independent *)
  truncated : bool;
      (* the underlying profile covers a budget-truncated prefix of the
         program: speedups are over the executed prefix only *)
  loops : loop_result list; (* sorted by serial cost, descending *)
}

(* Does [mask] contain a call class that configuration [fn] cannot
   parallelize over? *)
let call_violation (fn : Config.fn) mask =
  let open Profile in
  match fn with
  | Config.Fn0 -> mask <> 0
  | Config.Fn1 ->
      mask land (mask_threadsafe_builtin lor mask_unsafe_builtin lor mask_user) <> 0
  | Config.Fn2 -> mask land mask_unsafe_builtin <> 0
  | Config.Fn3 -> false

(* Is this register LCD in the effective non-computable set for [reduc]? *)
let track_active (reduc : Config.reduc) (tr : Profile.reg_track) =
  match (tr.Profile.cls, reduc) with
  | Classify.Reduction _, Config.Reduc1 -> false
  | Classify.Reduction _, Config.Reduc0 -> true
  | Classify.Non_computable, _ -> true
  | Classify.Computable, _ -> false (* never watched, defensive *)

(* Ablation knobs; the defaults are the paper's model (DESIGN.md §4). *)
type knobs = {
  pdoall_cutoff : float; (* Partial-DOALL restart fraction before serial *)
  helix_distance_normalized : bool;
      (* divide each memory stall delta by its dependence distance instead of
         charging the raw producer/consumer offset difference every iteration *)
}

let default_knobs =
  { pdoall_cutoff = Model.pdoall_conflict_cutoff; helix_distance_normalized = false }

(* Model-evaluation telemetry: invocations scored per execution model,
   invocations the model actually parallelized, conflicting-iteration totals,
   and the speedup distribution across configurations. *)
let c_doall_scored = Obs.Telemetry.counter "model.doall.scored"

let c_pdoall_scored = Obs.Telemetry.counter "model.pdoall.scored"

let c_helix_scored = Obs.Telemetry.counter "model.helix.scored"

let c_parallel_invs = Obs.Telemetry.counter "model.parallel_invocations"

let c_conflict_iters = Obs.Telemetry.counter "model.conflicting_iterations"

let h_speedup = Obs.Telemetry.histogram "evaluate.speedup"

let evaluate ?(knobs = default_knobs) (p : Profile.profile) (config : Config.t) :
    report =
  Obs.Telemetry.with_span "evaluate" ~attrs:[ ("config", Config.name config) ]
  @@ fun () ->
  let n = Array.length p.Profile.invs in
  let final = Array.make n 0.0 in
  let covered = Array.make n 0.0 in
  let child_savings : float array option array = Array.make n None in
  let child_covered = Array.make n 0.0 in
  let static_covered = Array.make n 0.0 in
  let child_static = Array.make n 0.0 in
  let is_parallel = Array.make n false in
  let prog_savings = ref 0.0 and prog_covered = ref 0.0 in
  let prog_static = ref 0.0 in
  let static_verdict_of (inv : Profile.inv) =
    let fs = Classify.func_static p.Profile.ms inv.Profile.fname in
    fs.Classify.loops.(inv.Profile.lid).Classify.dep.Deptest.Analysis.verdict
  in
  for id = n - 1 downto 0 do
    let inv = p.Profile.invs.(id) in
    let raw = Profile.iter_costs inv in
    let ni = Array.length raw in
    let raw_total = float_of_int (inv.Profile.end_clock - inv.Profile.start_clock) in
    let reduced =
      match child_savings.(id) with
      | None -> Array.map float_of_int raw
      | Some sav -> Array.init ni (fun k -> float_of_int raw.(k) -. sav.(k))
    in
    let serial_reduced = Array.fold_left ( +. ) 0.0 reduced in
    let overall_scale = if raw_total > 0.0 then serial_reduced /. raw_total else 1.0 in
    (* Active register LCD set under the reduc flag. *)
    let active_tracks =
      Array.to_list inv.Profile.tracks |> List.filter (track_active config.Config.reduc)
    in
    let serial_static = ref (call_violation config.Config.fn inv.Profile.call_mask) in
    let reg_sync_delta = ref 0.0 in
    let conflicts = Hashtbl.create (Hashtbl.length inv.Profile.mem_conflicts) in
    (* Memory conflicts apply under every model; scale the stall by the
       consumer iteration's reduction factor. *)
    Hashtbl.iter
      (fun k (delta, prod) ->
        let scale = if raw.(k) > 0 then reduced.(k) /. float_of_int raw.(k) else 1.0 in
        let delta =
          if knobs.helix_distance_normalized && k > prod then
            delta /. float_of_int (k - prod)
          else delta
        in
        Hashtbl.replace conflicts k (delta *. scale, prod))
      inv.Profile.mem_conflicts;
    (match config.Config.dep with
    | Config.Dep0 -> if active_tracks <> [] then serial_static := true
    | Config.Dep1 ->
        (* Lowered to memory: a frequent dependency every iteration. Only
           HELIX synchronization supports that; elsewhere it serializes. *)
        if active_tracks <> [] then begin
          match config.Config.model with
          | Config.Helix ->
              List.iter
                (fun tr ->
                  reg_sync_delta :=
                    Float.max !reg_sync_delta
                      (tr.Profile.max_delta_all *. overall_scale))
                active_tracks
          | Config.Doall | Config.Pdoall -> serial_static := true
        end
    | Config.Dep2 ->
        (* Mispredicted instances manifest; predicted ones are free. *)
        List.iter
          (fun tr ->
            (match config.Config.model with
            | Config.Helix ->
                if Ir.Vec.length tr.Profile.mispredict_iters > 0 then
                  reg_sync_delta :=
                    Float.max !reg_sync_delta
                      (tr.Profile.max_delta_mispredict *. overall_scale)
            | Config.Doall | Config.Pdoall -> ());
            Ir.Vec.iter
              (fun k ->
                let scale =
                  if raw.(k) > 0 then reduced.(k) /. float_of_int raw.(k) else 1.0
                in
                let d = tr.Profile.max_delta_mispredict *. scale in
                let old_d, old_p =
                  Option.value ~default:(0.0, -1) (Hashtbl.find_opt conflicts k)
                in
                (* register LCD instances always come from the previous
                   iteration *)
                Hashtbl.replace conflicts k (Float.max old_d d, max old_p (k - 1)))
              tr.Profile.mispredict_iters)
          active_tracks
    | Config.Dep3 -> ());
    let inp =
      {
        Model.iter_costs = reduced;
        conflicts;
        reg_sync_delta = !reg_sync_delta;
        serial_static = !serial_static;
      }
    in
    let model_cost =
      Model.cost ~pdoall_cutoff:knobs.pdoall_cutoff config.Config.model inp
    in
    Obs.Telemetry.incr
      (match config.Config.model with
      | Config.Doall -> c_doall_scored
      | Config.Pdoall -> c_pdoall_scored
      | Config.Helix -> c_helix_scored);
    Obs.Telemetry.add c_conflict_iters (Hashtbl.length conflicts);
    let f =
      match model_cost with Some c -> Float.min c serial_reduced | None -> serial_reduced
    in
    final.(id) <- f;
    is_parallel.(id) <- (match model_cost with Some c -> c < serial_reduced | None -> false);
    if is_parallel.(id) then Obs.Telemetry.incr c_parallel_invs;
    covered.(id) <- (if is_parallel.(id) then raw_total else child_covered.(id));
    static_covered.(id) <-
      (match static_verdict_of inv with
      | Deptest.Analysis.Proven_doall -> raw_total
      | Deptest.Analysis.Proven_lcd _ | Deptest.Analysis.Unknown -> child_static.(id));
    (* Propagate savings and coverage to the parent. *)
    let saving = raw_total -. f in
    if inv.Profile.parent >= 0 then begin
      let parent = p.Profile.invs.(inv.Profile.parent) in
      let sav =
        match child_savings.(inv.Profile.parent) with
        | Some s -> s
        | None ->
            let s = Array.make (Profile.n_iters parent) 0.0 in
            child_savings.(inv.Profile.parent) <- Some s;
            s
      in
      sav.(inv.Profile.parent_iter) <- sav.(inv.Profile.parent_iter) +. saving;
      child_covered.(inv.Profile.parent) <-
        child_covered.(inv.Profile.parent) +. covered.(id);
      child_static.(inv.Profile.parent) <-
        child_static.(inv.Profile.parent) +. static_covered.(id)
    end
    else begin
      prog_savings := !prog_savings +. saving;
      prog_covered := !prog_covered +. covered.(id);
      prog_static := !prog_static +. static_covered.(id)
    end
  done;
  (* Aggregate per static loop. *)
  let by_loop = Hashtbl.create 32 in
  for id = 0 to n - 1 do
    let inv = p.Profile.invs.(id) in
    let key = (inv.Profile.fname, inv.Profile.lid) in
    let fs = Classify.func_static p.Profile.ms inv.Profile.fname in
    let ls = fs.Classify.loops.(inv.Profile.lid) in
    let cur =
      match Hashtbl.find_opt by_loop key with
      | Some r -> r
      | None ->
          {
            fname = inv.Profile.fname;
            lid = inv.Profile.lid;
            header = ls.Classify.header;
            depth = ls.Classify.depth;
            invocations = 0;
            parallel_invocations = 0;
            serial_cost = 0.0;
            final_cost = 0.0;
            mem_dep_manifestations = 0;
            conflicting_iterations = 0;
            total_iterations = 0;
            static_verdict = ls.Classify.dep.Deptest.Analysis.verdict;
          }
    in
    let raw_total = float_of_int (inv.Profile.end_clock - inv.Profile.start_clock) in
    let serial_reduced =
      (* recompute cheaply: final when serial equals reduced serial *)
      match child_savings.(id) with
      | None -> raw_total
      | Some sav -> raw_total -. Array.fold_left ( +. ) 0.0 sav
    in
    Hashtbl.replace by_loop key
      {
        cur with
        invocations = cur.invocations + 1;
        parallel_invocations =
          (cur.parallel_invocations + if is_parallel.(id) then 1 else 0);
        serial_cost = cur.serial_cost +. serial_reduced;
        final_cost = cur.final_cost +. final.(id);
        mem_dep_manifestations = cur.mem_dep_manifestations + inv.Profile.n_mem_deps;
        conflicting_iterations =
          cur.conflicting_iterations + Hashtbl.length inv.Profile.mem_conflicts;
        total_iterations = cur.total_iterations + Profile.n_iters inv;
      }
  done;
  let loops =
    Hashtbl.fold (fun _ r acc -> r :: acc) by_loop []
    |> List.sort (fun a b -> Float.compare b.serial_cost a.serial_cost)
  in
  let total = p.Profile.total_cost in
  let parallel_cost = Float.max 1.0 (float_of_int total -. !prog_savings) in
  let speedup = float_of_int total /. parallel_cost in
  Obs.Telemetry.observe h_speedup speedup;
  {
    config;
    total_cost = total;
    parallel_cost;
    speedup;
    truncated = p.Profile.truncated;
    coverage_pct =
      (if total > 0 then 100.0 *. !prog_covered /. float_of_int total else 0.0);
    static_coverage_pct =
      (if total > 0 then 100.0 *. !prog_static /. float_of_int total else 0.0);
    loops;
  }
