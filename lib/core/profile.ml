(* The run-time component (paper §III-B): listens to interpreter events and
   builds, per dynamic loop invocation, everything the cost models need:

   - per-iteration start time-stamps (iteration costs);
   - memory RAW conflicts across iterations, with producer/consumer offsets
     normalized per iteration of distance (HELIX deltas);
   - per watched register LCD: hybrid-predictor hit/miss per iteration, and
     producer(def)/consumer(first-use) offsets;
   - the classes of calls observed during any iteration (fn ladder);
   - the invocation tree (parent invocation and parent iteration index).

   WAR/WAW are never recorded: the study assumes lazy versioning with
   in-order commit (paper §II-D). *)

type reg_track = {
  phi_id : int;
  cls : Classify.phi_class;
  predictor : Predictors.Hybrid.t;
  (* def offset (relative to its iteration's start) of the value produced in
     the previous iteration; -1 when unknown *)
  mutable prev_def_rel : int;
  mutable cur_def_rel : int;
  (* pending consumer information for the current iteration *)
  mutable use_seen : bool;
  mutable pending_mispredict : bool;
  mutable pending_iter : int;
  (* aggregates *)
  mutable n_instances : int; (* latch-edge arrivals = predictable instances *)
  mutable n_mispredicts : int;
  mutable max_delta_all : float; (* over all iterations (dep1 sync) *)
  mutable max_delta_mispredict : float; (* over mispredicted iterations *)
  mispredict_iters : int Ir.Vec.t;
}

type inv = {
  inv_id : int;
  fname : string;
  lid : int;
  parent : int; (* inv_id of enclosing invocation, -1 at top level *)
  parent_iter : int;
  start_clock : int;
  mutable end_clock : int;
  iter_starts : int Ir.Vec.t;
  (* consumer iteration -> (worst stall delta, most recent producer
     iteration). The producer index is what lets Partial-DOALL treat reads of
     already-committed writes as satisfied (paper §III-B). *)
  mem_conflicts : (int, float * int) Hashtbl.t;
  tracks : reg_track array;
  (* last writer per address within this invocation *)
  last_write : (int, int * int) Hashtbl.t; (* addr -> (iter, clock) *)
  mutable call_mask : int;
  mutable n_mem_deps : int; (* count of cross-iteration RAW manifestations *)
  track_mem : bool;
      (* false when the loop is statically Proven_doall and pruning is on:
         this invocation skips address tracking (it cannot conflict) *)
}

let n_iters inv = Ir.Vec.length inv.iter_starts

let cur_iter inv = n_iters inv - 1

let iter_start inv k = Ir.Vec.get inv.iter_starts k

(* call_mask bits *)
let mask_pure_builtin = 1

let mask_threadsafe_builtin = 2

let mask_unsafe_builtin = 4

let mask_pure_user = 8

let mask_user = 16

type t = {
  ms : Classify.module_static;
  invs : inv Ir.Vec.t;
  mutable stack : inv list; (* innermost first *)
  mutable call_stack : string list;
  def_maps : (string, (int, int list) Hashtbl.t) Hashtbl.t; (* fname -> def->phis *)
  make_predictor : unit -> Predictors.Hybrid.t; (* predictor bank (ablation) *)
  static_prune : bool; (* honor Proven_doall verdicts when tracking memory *)
  phi_obs : (string * int, int64 * int64) Hashtbl.t;
      (* (fname, phi_id) -> (min, max) integer value observed at any header
         arrival; fed by on_header_phi, validated by Crosscheck.check_ranges
         against the proven static interval *)
}

let dummy_inv =
  {
    inv_id = -1;
    fname = "";
    lid = -1;
    parent = -1;
    parent_iter = 0;
    start_clock = 0;
    end_clock = 0;
    iter_starts = Ir.Vec.create ~dummy:0;
    mem_conflicts = Hashtbl.create 1;
    tracks = [||];
    last_write = Hashtbl.create 1;
    call_mask = 0;
    n_mem_deps = 0;
    track_mem = true;
  }

let create ?(make_predictor = fun () -> Predictors.Hybrid.create ())
    ?(static_prune = true) (ms : Classify.module_static) ~def_maps : t =
  {
    ms;
    invs = Ir.Vec.create ~dummy:dummy_inv;
    stack = [];
    call_stack = [];
    def_maps;
    make_predictor;
    static_prune;
    phi_obs = Hashtbl.create 64;
  }

let current_fname t =
  match t.call_stack with f :: _ -> f | [] -> invalid_arg "no active function"

let new_track t (pi : Classify.phi_info) : reg_track =
  {
    phi_id = pi.Classify.phi_id;
    cls = pi.Classify.cls;
    predictor = t.make_predictor ();
    prev_def_rel = -1;
    cur_def_rel = -1;
    use_seen = false;
    pending_mispredict = false;
    pending_iter = -1;
    n_instances = 0;
    n_mispredicts = 0;
    max_delta_all = 0.0;
    max_delta_mispredict = 0.0;
    mispredict_iters = Ir.Vec.create ~dummy:0;
  }

(* ---- event handlers ----

   Per-invocation telemetry only: loop enter/exit fire once per dynamic
   invocation, so a counter bump and an iteration-count observation here cost
   nothing per instruction (and are no-ops while telemetry is disabled). *)

let c_invocations = Obs.Telemetry.counter "profile.loop.invocations"

let h_loop_iters = Obs.Telemetry.histogram "profile.loop.iterations"

let on_call_enter t ~fname ~clock:_ =
  t.call_stack <- fname :: t.call_stack;
  (* An instrumented user call observed inside every active iteration. *)
  let fs = Classify.func_static t.ms fname in
  let bit = if fs.Classify.pure then mask_pure_user else mask_user in
  (match t.stack with
  | [] -> ()
  | _ -> List.iter (fun inv -> inv.call_mask <- inv.call_mask lor bit) t.stack)

let on_call_exit t ~fname:_ ~clock:_ =
  match t.call_stack with
  | _ :: rest -> t.call_stack <- rest
  | [] -> invalid_arg "call stack underflow"

let on_builtin_call t ~name ~clock:_ =
  let bit =
    match Ir.Builtins.find name with
    | Some s -> (
        match s.Ir.Builtins.safety with
        | Ir.Builtins.Pure -> mask_pure_builtin
        | Ir.Builtins.Thread_safe -> mask_threadsafe_builtin
        | Ir.Builtins.Io | Ir.Builtins.Global_state -> mask_unsafe_builtin)
    | None -> mask_unsafe_builtin
  in
  List.iter (fun inv -> inv.call_mask <- inv.call_mask lor bit) t.stack

let on_loop_enter t ~lid ~clock =
  let fname = current_fname t in
  let fs = Classify.func_static t.ms fname in
  let ls = fs.Classify.loops.(lid) in
  let parent, parent_iter =
    match t.stack with
    | p :: _ -> (p.inv_id, cur_iter p)
    | [] -> (-1, 0)
  in
  let track_mem =
    (not t.static_prune)
    ||
    match ls.Classify.dep.Deptest.Analysis.verdict with
    | Deptest.Analysis.Proven_doall -> false
    | Deptest.Analysis.Proven_lcd _ | Deptest.Analysis.Unknown -> true
  in
  let inv =
    {
      inv_id = Ir.Vec.length t.invs;
      fname;
      lid;
      parent;
      parent_iter;
      start_clock = clock;
      end_clock = clock;
      iter_starts = Ir.Vec.create ~dummy:0;
      mem_conflicts = Hashtbl.create 8;
      tracks = Array.of_list (List.map (new_track t) (Classify.watched_phis ls));
      last_write = Hashtbl.create (if track_mem then 64 else 1);
      call_mask = 0;
      n_mem_deps = 0;
      track_mem;
    }
  in
  Ir.Vec.push inv.iter_starts clock;
  Ir.Vec.push t.invs inv;
  Obs.Telemetry.incr c_invocations;
  t.stack <- inv :: t.stack

(* Close out per-track pending state for the iteration that just ended: a
   mispredicted instance whose consumer never executed stalls nothing, so
   its delta contribution is 0 (already the default). *)
let finish_iteration_tracks inv =
  Array.iter
    (fun tr ->
      tr.prev_def_rel <- tr.cur_def_rel;
      tr.cur_def_rel <- -1;
      tr.use_seen <- false;
      tr.pending_mispredict <- false)
    inv.tracks

let on_loop_iter t ~lid ~clock =
  match t.stack with
  | inv :: _ when inv.lid = lid ->
      finish_iteration_tracks inv;
      Ir.Vec.push inv.iter_starts clock
  | _ -> invalid_arg "loop_iter without matching invocation"

let on_loop_exit t ~lid ~clock =
  match t.stack with
  | inv :: rest when inv.lid = lid ->
      finish_iteration_tracks inv;
      inv.end_clock <- clock;
      Obs.Telemetry.observe h_loop_iters (float_of_int (n_iters inv));
      t.stack <- rest
  | _ -> invalid_arg "loop_exit without matching invocation"

let on_mem_access t ~addr ~is_write ~clock =
  List.iter
    (fun inv ->
      if inv.track_mem then
      let k = cur_iter inv in
      if is_write then Hashtbl.replace inv.last_write addr (k, clock)
      else
        match Hashtbl.find_opt inv.last_write addr with
        | Some (wi, wclock) when wi < k ->
            (* RAW loop-carried dependency manifests. The stall delta is the
               raw producer/consumer offset difference, NOT normalized by the
               iteration distance: the paper's HELIX model synchronizes every
               neighbouring-iteration pair at the worst offset observed for
               any manifesting LCD (§III-B), which is what lets PDOALL beat
               HELIX on loops with rare, long-distance conflicts (Fig. 4). *)
            inv.n_mem_deps <- inv.n_mem_deps + 1;
            let prod_rel = wclock - iter_start inv wi in
            let cons_rel = clock - iter_start inv k in
            let delta = Float.max 0.0 (float_of_int (prod_rel - cons_rel)) in
            let old_d, old_p =
              Option.value ~default:(0.0, -1) (Hashtbl.find_opt inv.mem_conflicts k)
            in
            Hashtbl.replace inv.mem_conflicts k (Float.max old_d delta, max old_p wi)
        | _ -> ())
    t.stack

(* Find the innermost active invocation owning watched phi [phi_id] of the
   current function. *)
let find_track t phi_id : (inv * reg_track) option =
  let fname = current_fname t in
  let rec go = function
    | [] -> None
    | inv :: rest ->
        if inv.fname = fname then
          match Array.find_opt (fun tr -> tr.phi_id = phi_id) inv.tracks with
          | Some tr -> Some (inv, tr)
          | None -> go rest
        else go rest
  in
  go t.stack

(* Observed dynamic envelope per header phi. Floats are skipped: the range
   analysis proves nothing about them (their interval is top anyway). Bools
   use the interpreter's own 0/1 integer encoding. *)
let record_phi_obs t ~phi_id ~value =
  let recorded =
    match value with
    | Interp.Rvalue.Vint v -> Some v
    | Interp.Rvalue.Vbool b -> Some (if b then 1L else 0L)
    | Interp.Rvalue.Vfloat _ -> None
  in
  match recorded with
  | None -> ()
  | Some v -> (
      let key = (current_fname t, phi_id) in
      match Hashtbl.find_opt t.phi_obs key with
      | None -> Hashtbl.replace t.phi_obs key (v, v)
      | Some (lo, hi) ->
          if v < lo || v > hi then Hashtbl.replace t.phi_obs key (min v lo, max v hi))

let on_header_phi t ~phi_id ~value ~clock:_ =
  record_phi_obs t ~phi_id ~value;
  match find_track t phi_id with
  | Some (inv, tr) ->
      let k = cur_iter inv in
      let hit = Predictors.Hybrid.step tr.predictor (Predictors.Hybrid.bits_of_rv value) in
      if k > 0 then begin
        tr.n_instances <- tr.n_instances + 1;
        if not hit then begin
          tr.n_mispredicts <- tr.n_mispredicts + 1;
          tr.pending_mispredict <- true;
          tr.pending_iter <- k;
          Ir.Vec.push tr.mispredict_iters k
        end
      end
  | None -> ()

let on_watched_def t ~instr_id ~clock =
  let fname = current_fname t in
  match Hashtbl.find_opt t.def_maps fname with
  | None -> ()
  | Some map -> (
      match Hashtbl.find_opt map instr_id with
      | None -> ()
      | Some phis ->
          List.iter
            (fun phi_id ->
              match find_track t phi_id with
              | Some (inv, tr) ->
                  let k = cur_iter inv in
                  tr.cur_def_rel <- clock - iter_start inv k
              | None -> ())
            phis)

let on_watched_use t ~phi_id ~clock =
  match find_track t phi_id with
  | Some (inv, tr) when not tr.use_seen ->
      tr.use_seen <- true;
      let k = cur_iter inv in
      if k > 0 && tr.prev_def_rel >= 0 then begin
        let use_rel = clock - iter_start inv k in
        let delta = Float.max 0.0 (float_of_int (tr.prev_def_rel - use_rel)) in
        tr.max_delta_all <- Float.max tr.max_delta_all delta;
        if tr.pending_mispredict && tr.pending_iter = k then
          tr.max_delta_mispredict <- Float.max tr.max_delta_mispredict delta
      end
  | Some _ | None -> ()

let hooks_of t : Interp.Events.hooks =
  {
    Interp.Events.on_call_enter = (fun ~fname ~clock -> on_call_enter t ~fname ~clock);
    on_call_exit = (fun ~fname ~clock -> on_call_exit t ~fname ~clock);
    on_loop_enter = (fun ~lid ~clock -> on_loop_enter t ~lid ~clock);
    on_loop_iter = (fun ~lid ~clock -> on_loop_iter t ~lid ~clock);
    on_loop_exit = (fun ~lid ~clock -> on_loop_exit t ~lid ~clock);
    on_mem_access =
      (fun ~addr ~is_write ~clock -> on_mem_access t ~addr ~is_write ~clock);
    on_watched_def = (fun ~instr_id ~clock -> on_watched_def t ~instr_id ~clock);
    on_watched_use = (fun ~phi_id ~clock -> on_watched_use t ~phi_id ~clock);
    on_header_phi = (fun ~phi_id ~value ~clock -> on_header_phi t ~phi_id ~value ~clock);
    on_builtin_call = (fun ~name ~clock -> on_builtin_call t ~name ~clock);
  }

(* ---- the collected profile ---- *)

type profile = {
  ms : Classify.module_static;
  invs : inv array; (* creation order: parents before children *)
  phi_obs : (string * int, int64 * int64) Hashtbl.t;
      (* observed (min, max) per header phi; populated only for phis the
         watch plan reported (all of them under Driver ~observe_ranges) *)
  total_cost : int;
  outcome : Interp.Machine.outcome;
  truncated : bool;
      (* the run stopped at a budget (fuel/depth/heap/wall): the profile
         covers the executed prefix only — every invocation is still closed,
         so Evaluate scores the prefix; reports carry the flag through *)
}

(* Per-iteration raw costs of an invocation: start-to-start deltas, with the
   final iteration closed by the loop-exit clock. *)
let iter_costs (inv : inv) : int array =
  let n = n_iters inv in
  Array.init n (fun k ->
      let s = iter_start inv k in
      let e = if k + 1 < n then iter_start inv (k + 1) else inv.end_clock in
      e - s)
