(* The lint driver: every static analysis in the tree repackaged as a rule
   producing machine-readable diagnostics. A diagnostic carries a stable
   rule id, a severity, a location (function / loop / instruction) and a
   fingerprint — [rule:hash8(location key)] — that stays identical across
   runs on the same input, so CI can diff lint output against a committed
   golden file and fingerprints can key suppression lists.

   Rule inventory:
     verifier              structural/type IR breakage        (error)
     ssa                   use not dominated by its def       (error)
     range-div-by-zero     divisor interval contains zero     (warning;
                           error when provably always zero)
     range-shift-overflow  shift amount may exceed 63         (warning;
                           error when provably always out of range)
     range-dead-branch     branch condition provably constant (info)
     unreachable-block     CFG block no path reaches          (info)
     dead-value            result never used by any instr     (info)
     audit-downgrade       Proven_doall failed the parallel-
                           safety audit                       (warning)
     dep-unknown           dependence verdict stayed Unknown  (info)

   The structural rules (verifier, ssa) gate the semantic ones: when either
   reports, classification cannot be trusted and the run stops there. *)

type severity = Error | Warning | Info

let severity_name = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

type diag = {
  rule : string;
  severity : severity;
  fname : string option;
  lid : int option; (* loop id, for loop-scoped rules *)
  instr : int option;
  message : string;
  fingerprint : string; (* rule:hash8(stable location key) *)
}

(* The fingerprint hashes the *identity* of the finding, not its message
   text: rule + location (+ a discriminator for rules that can fire twice at
   one location). Messages can be reworded without churning golden files. *)
let mk ?fname ?lid ?instr ?(key = "") rule severity message =
  let ident =
    Printf.sprintf "%s|%s|%d|%d|%s"
      (Option.value ~default:"" fname)
      key
      (Option.value ~default:(-1) lid)
      (Option.value ~default:(-1) instr)
      ""
  in
  {
    rule;
    severity;
    fname;
    lid;
    instr;
    message;
    fingerprint = rule ^ ":" ^ Driver.hash8 ident;
  }

let diag_to_string d =
  let where =
    String.concat ""
      [
        (match d.fname with Some f -> f | None -> "<module>");
        (match d.lid with Some l -> Printf.sprintf "/loop%d" l | None -> "");
        (match d.instr with Some i -> Printf.sprintf "/%%%d" i | None -> "");
      ]
  in
  Printf.sprintf "%s: %s [%s] %s" (severity_name d.severity) where d.fingerprint
    d.message

let diag_to_json (d : diag) : Util.Json.t =
  Util.Json.Obj
    [
      ("rule", Util.Json.String d.rule);
      ("severity", Util.Json.String (severity_name d.severity));
      ("fingerprint", Util.Json.String d.fingerprint);
      ( "function",
        match d.fname with Some f -> Util.Json.String f | None -> Util.Json.Null );
      ("loop", match d.lid with Some l -> Util.Json.Int l | None -> Util.Json.Null);
      ( "instr",
        match d.instr with Some i -> Util.Json.Int i | None -> Util.Json.Null );
      ("message", Util.Json.String d.message);
    ]

(* Reports sort by location then rule so output order never depends on
   hashtable iteration. *)
let compare_diag a b =
  compare
    (a.fname, a.lid, a.instr, a.rule, a.fingerprint)
    (b.fname, b.lid, b.instr, b.rule, b.fingerprint)

let count sev diags = List.length (List.filter (fun d -> d.severity = sev) diags)

let has_errors diags = List.exists (fun d -> d.severity = Error) diags

let report_to_json ~(file : string) (diags : diag list) : Util.Json.t =
  Util.Json.Obj
    [
      ("version", Util.Json.Int 1);
      ("file", Util.Json.String file);
      ("errors", Util.Json.Int (count Error diags));
      ("warnings", Util.Json.Int (count Warning diags));
      ("infos", Util.Json.Int (count Info diags));
      ("diagnostics", Util.Json.List (List.map diag_to_json diags));
    ]

(* ---- structural rules ---- *)

let rule_verifier (m : Ir.Func.modul) : diag list =
  List.map
    (fun (e : Ir.Verifier.error) ->
      mk "verifier" Error ~key:e.Ir.Verifier.where
        (e.Ir.Verifier.where ^ ": " ^ e.Ir.Verifier.what))
    (Ir.Verifier.verify_module m)

let rule_ssa (m : Ir.Func.modul) : diag list =
  List.map
    (fun (e : Cfg.Ssa_check.error) ->
      mk "ssa" Error ~fname:e.Cfg.Ssa_check.in_func
        ~instr:e.Cfg.Ssa_check.use_instr
        ~key:(string_of_int e.Cfg.Ssa_check.operand)
        (Cfg.Ssa_check.error_to_string e))
    (Cfg.Ssa_check.check_module m)

(* ---- semantic rules (per classified function) ---- *)

let shift_range = Util.Interval.of_bounds 0L 63L

let range_rules (fs : Classify.func_static) : diag list =
  let fn = fs.Classify.fn in
  let fname = fn.Ir.Func.fname in
  let itv_of = Dataflow.Range.itv_of_value fs.Classify.ranges in
  let bits = Dataflow.Bits.analyze fn in
  let out = ref [] in
  let emit d = out := d :: !out in
  Ir.Func.iter_instrs
    (fun (i : Ir.Instr.t) ->
      let id = i.Ir.Instr.id in
      match i.Ir.Instr.kind with
      | Ir.Instr.Ibinop ((Ir.Instr.Sdiv | Ir.Instr.Srem), _, d) -> (
          let itv = itv_of d in
          if Util.Interval.is_bot itv then () (* unreachable: never executes *)
          else
            match Util.Interval.singleton itv with
            | Some 0L ->
                emit
                  (mk "range-div-by-zero" Error ~fname ~instr:id
                     "divisor is provably always zero: this instruction traps \
                      whenever it executes")
            | _ ->
                if
                  Util.Interval.contains_zero itv
                  && not (Dataflow.Bits.known_nonzero bits d)
                then
                  emit
                    (mk "range-div-by-zero" Warning ~fname ~instr:id
                       (Printf.sprintf
                          "divisor range %s contains zero: division may trap"
                          (Util.Interval.to_string itv))))
      | Ir.Instr.Ibinop
          ((Ir.Instr.Shl | Ir.Instr.Ashr | Ir.Instr.Lshr), _, amt) ->
          let itv = itv_of amt in
          if Util.Interval.is_bot itv || Util.Interval.subset itv shift_range
          then ()
          else if Util.Interval.is_bot (Util.Interval.meet itv shift_range) then
            emit
              (mk "range-shift-overflow" Error ~fname ~instr:id
                 (Printf.sprintf
                    "shift amount range %s is provably outside [0, 63]"
                    (Util.Interval.to_string itv)))
          else
            emit
              (mk "range-shift-overflow" Warning ~fname ~instr:id
                 (Printf.sprintf
                    "shift amount range %s may fall outside [0, 63]"
                    (Util.Interval.to_string itv)))
      | Ir.Instr.Cond_br (c, t, e) when t <> e -> (
          match Util.Interval.singleton (itv_of c) with
          | Some 1L ->
              emit
                (mk "range-dead-branch" Info ~fname ~instr:id
                   (Printf.sprintf
                      "condition is provably true: edge to bb%d is dead" e))
          | Some 0L ->
              emit
                (mk "range-dead-branch" Info ~fname ~instr:id
                   (Printf.sprintf
                      "condition is provably false: edge to bb%d is dead" t))
          | _ -> ())
      | _ -> ())
    fn;
  !out

let structure_rules (fs : Classify.func_static) : diag list =
  let fn = fs.Classify.fn in
  let fname = fn.Ir.Func.fname in
  let cfg = Cfg.Graph.build fn in
  let out = ref [] in
  let emit d = out := d :: !out in
  List.iter
    (fun bid ->
      emit
        (mk "unreachable-block" Info ~fname ~key:(string_of_int bid)
           (Printf.sprintf "block bb%d is unreachable from the entry" bid)))
    (Cfg.Graph.unreachable_blocks cfg);
  (* dead values: an SSA result no instruction ever reads. Calls are exempt
     (their effects justify them); unreachable code is already reported. *)
  let used = Array.make (max 1 (Ir.Func.num_instrs fn)) false in
  Ir.Func.iter_instrs
    (fun (i : Ir.Instr.t) ->
      List.iter
        (fun v -> match v with Ir.Types.Reg r -> used.(r) <- true | _ -> ())
        (Ir.Instr.operands i.Ir.Instr.kind))
    fn;
  Ir.Func.iter_instrs
    (fun (i : Ir.Instr.t) ->
      match i.Ir.Instr.kind with
      | Ir.Instr.Call _ -> ()
      | k ->
          if
            Ir.Instr.has_result k
            && (not used.(i.Ir.Instr.id))
            && Cfg.Graph.is_reachable cfg i.Ir.Instr.block
          then
            emit
              (mk "dead-value" Info ~fname ~instr:i.Ir.Instr.id
                 "result is never used"))
    fn;
  !out

let loop_rules (fs : Classify.func_static) : diag list =
  let fname = fs.Classify.fname in
  let out = ref [] in
  Array.iter
    (fun (ls : Classify.loop_static) ->
      match ls.Classify.audit with
      | Some (Dataflow.Audit.Refuted reasons) ->
          out :=
            mk "audit-downgrade" Warning ~fname ~lid:ls.Classify.lid
              ("dependence analysis proved this loop DOALL but the \
                parallel-safety audit refuted it (downgraded to Unknown): "
              ^ String.concat "; "
                  (List.map Dataflow.Audit.reason_to_string reasons))
            :: !out
      | Some Dataflow.Audit.Certified | None ->
          if ls.Classify.dep.Deptest.Analysis.verdict = Deptest.Analysis.Unknown
          then
            out :=
              mk "dep-unknown" Info ~fname ~lid:ls.Classify.lid
                (Printf.sprintf
                   "loop-carried dependence verdict is Unknown (%d of %d \
                    store/load pairs refuted)"
                   ls.Classify.dep.Deptest.Analysis.n_refuted
                   ls.Classify.dep.Deptest.Analysis.n_pairs)
              :: !out)
    fs.Classify.loops;
  !out

(* Lint a module the frontend already produced. The structural rules run
   FIRST, on the raw module, and in dependency order: the verifier (which
   assumes nothing), then the SSA checker (which assumes a well-formed CFG),
   then — only when both are clean — the canonicalizer (the same
   loop-simplify the real pipeline runs, so loop-scoped diagnostics refer
   to the loops every other subcommand reports) and the semantic rules. A
   malformed module must surface as diagnostics, not crash a later stage. *)
let run (m : Ir.Func.modul) : diag list =
  Obs.Telemetry.with_span "lint" @@ fun () ->
  let verifier = rule_verifier m in
  let structural = if verifier <> [] then verifier else rule_ssa m in
  let diags =
    if structural <> [] then structural
    else
      let () = Cfg.Loop_simplify.run_module m in
      let ms = Classify.analyze_module m in
      let per_fn =
        Hashtbl.fold (fun _ fs acc -> fs :: acc) ms.Classify.funcs []
      in
      List.concat_map
        (fun fs -> range_rules fs @ structure_rules fs @ loop_rules fs)
        per_fn
  in
  List.sort compare_diag diags
