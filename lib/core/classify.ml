(* The compile-time component (paper §III-A): after canonicalization, walk
   every loop and classify its header phis — the register loop-carried
   dependencies — as computable (SCEV add-recurrence), reduction
   (recurrence descriptor), or non-computable; classify every function for
   the fn ladder (purity fixpoint); and build the interpreter watch plans
   that make the run-time component track exactly the values the study
   needs. *)

type phi_class =
  | Computable (* IV / MIV / polynomial: regenerable from the iteration index *)
  | Reduction of Scev.Recurrence.kind
  | Non_computable

let phi_class_name = function
  | Computable -> "computable"
  | Reduction k -> "reduction:" ^ Scev.Recurrence.kind_name k
  | Non_computable -> "non-computable"

type phi_info = {
  phi_id : int;
  cls : phi_class;
  latch_def : int option; (* instr id producing the next-iteration value *)
  range : Util.Interval.t; (* proven interval of the phi's value *)
}

type loop_static = {
  lid : int;
  header : int;
  depth : int;
  parent : int option;
  phis : phi_info array;
  trip : int64 option; (* static header-arrival count (Scev.Trip_count) *)
  trip_bound : int64 option;
      (* proven upper bound on arrivals when the exact trip is unknown:
         range analysis evaluates the symbolic exit bound *)
  dep : Deptest.Analysis.summary;
      (* final static memory-dependence verdict: range-strengthened, then
         audited (a failed audit downgrades Proven_doall to Unknown) *)
  dep_baseline : Deptest.Analysis.verdict;
      (* the verdict without range facts — the before/after delta *)
  audit : Dataflow.Audit.certificate option;
      (* independent safety certificate; [Some] iff the strengthened verdict
         was Proven_doall *)
}

type func_static = {
  fname : string;
  fn : Ir.Func.t;
  li : Cfg.Loopinfo.t;
  loops : loop_static array; (* indexed by lid *)
  pure : bool; (* read-only, no observable side effects *)
  ranges : Dataflow.Range.result; (* interval facts for every SSA value *)
}

type module_static = {
  modul : Ir.Func.modul;
  funcs : (string, func_static) Hashtbl.t;
}

(* ---- purity fixpoint over the call graph ---- *)

(* A function is pure when it has no stores/allocs, calls only pure builtins
   and pure user functions. Loads are allowed (read-only); they are tracked
   by instrumentation anyway. Greatest fixpoint: assume pure, strike out. *)
let compute_purity (m : Ir.Func.modul) : (string, bool) Hashtbl.t =
  let pure = Hashtbl.create 16 in
  List.iter (fun f -> Hashtbl.replace pure f.Ir.Func.fname true) m.Ir.Func.funcs;
  let directly_impure (fn : Ir.Func.t) =
    Ir.Func.fold_instrs
      (fun acc i ->
        acc
        ||
        match i.Ir.Instr.kind with
        | Ir.Instr.Store _ | Ir.Instr.Alloc _ -> true
        | Ir.Instr.Call (callee, _) -> (
            match Ir.Builtins.find callee with
            | Some s -> s.Ir.Builtins.safety <> Ir.Builtins.Pure
            | None -> false (* user callee handled by the fixpoint *))
        | _ -> false)
      false fn
  in
  List.iter
    (fun f -> if directly_impure f then Hashtbl.replace pure f.Ir.Func.fname false)
    m.Ir.Func.funcs;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun f ->
        if Hashtbl.find pure f.Ir.Func.fname then
          let calls_impure =
            Ir.Func.fold_instrs
              (fun acc i ->
                acc
                ||
                match i.Ir.Instr.kind with
                | Ir.Instr.Call (callee, _) when not (Ir.Builtins.is_builtin callee) ->
                    not (Option.value ~default:false (Hashtbl.find_opt pure callee))
                | _ -> false)
              false f
          in
          if calls_impure then begin
            Hashtbl.replace pure f.Ir.Func.fname false;
            changed := true
          end)
      m.Ir.Func.funcs
  done;
  pure

(* ---- per-loop phi classification ---- *)

let classify_phi (fn : Ir.Func.t) (li : Cfg.Loopinfo.t) (scev : Scev.Analysis.t)
    phi_id : phi_class =
  match Scev.Recurrence.detect fn li phi_id with
  | Some d -> Reduction d.Scev.Recurrence.kind
  | None -> (
      match Scev.Analysis.classify_header_phi scev phi_id with
      | Scev.Analysis.Computable _ | Scev.Analysis.Computable_shifted _ -> Computable
      | Scev.Analysis.Non_computable -> Non_computable)

let latch_def_of (fn : Ir.Func.t) (li : Cfg.Loopinfo.t) lid phi_id : int option =
  match Ir.Func.kind fn phi_id with
  | Ir.Instr.Phi incoming ->
      Array.to_list incoming
      |> List.find_map (fun (pred, v) ->
             if Cfg.Loopinfo.contains li lid pred then
               match v with Ir.Types.Reg r -> Some r | _ -> None
             else None)
  | _ -> None

(* Classification telemetry: loop totals, per-phi-class counts and static
   dependence verdicts (no-ops unless Obs.Telemetry is enabled). *)
let c_loops = Obs.Telemetry.counter "classify.loops"

let c_phi_computable = Obs.Telemetry.counter "classify.phi.computable"

let c_phi_reduction = Obs.Telemetry.counter "classify.phi.reduction"

let c_phi_non_computable = Obs.Telemetry.counter "classify.phi.non_computable"

let c_dep_doall = Obs.Telemetry.counter "deptest.proven_doall"

let c_dep_lcd = Obs.Telemetry.counter "deptest.proven_lcd"

let c_dep_unknown = Obs.Telemetry.counter "deptest.unknown"

let c_range_resolved = Obs.Telemetry.counter "dataflow.range.resolved"

let c_audit_certified = Obs.Telemetry.counter "dataflow.audit.certified"

let c_audit_downgraded = Obs.Telemetry.counter "dataflow.audit.downgraded"

(* [call_effect] summarises the memory effect of each callee for the static
   dependence tester; the default trusts builtin safety classes and assumes
   the worst of user calls. Two passes over the loop forest so the register
   side (SCEV: phi classes, trip counts) and the memory side (deptest) are
   separately attributable in traces. *)
let analyze_func ?(call_effect = Deptest.Analysis.default_call_effect) ~pure
    (fn : Ir.Func.t) : func_static =
  Obs.Telemetry.with_span "classify.func" ~attrs:[ ("fn", fn.Ir.Func.fname) ]
  @@ fun () ->
  let cfg = Cfg.Graph.build fn in
  let dom = Cfg.Dom.compute cfg in
  let li = Cfg.Loopinfo.compute cfg dom in
  let scev = Scev.Analysis.create fn li in
  let loop_arr = Array.of_list (Cfg.Loopinfo.loops li) in
  Obs.Telemetry.add c_loops (Array.length loop_arr);
  (* Pass 0 — dataflow: interval ranges for every SSA value. Everything
     downstream (trip bounds, subscript refutation, the audit) reads them
     through [itv_of]. *)
  let ranges =
    Obs.Telemetry.with_span "dataflow.range" (fun () -> Dataflow.Range.analyze fn)
  in
  let itv_of = Dataflow.Range.itv_of_value ranges in
  (* Pass 1 — SCEV: classify header phis, compute static trip counts; range
     analysis supplies a trip *bound* where the exact count stays symbolic. *)
  let reg_side =
    Obs.Telemetry.with_span "scev" @@ fun () ->
    Array.map
      (fun (l : Cfg.Loopinfo.loop) ->
        let phis =
          Ir.Func.phis fn l.Cfg.Loopinfo.header
          |> List.map (fun (i : Ir.Instr.t) ->
                 let phi_id = i.Ir.Instr.id in
                 let cls = classify_phi fn li scev phi_id in
                 Obs.Telemetry.incr
                   (match cls with
                   | Computable -> c_phi_computable
                   | Reduction _ -> c_phi_reduction
                   | Non_computable -> c_phi_non_computable);
                 {
                   phi_id;
                   cls;
                   latch_def = latch_def_of fn li l.Cfg.Loopinfo.lid phi_id;
                   range = Dataflow.Range.itv_of_instr ranges phi_id;
                 })
          |> Array.of_list
        in
        let lid = l.Cfg.Loopinfo.lid in
        let trip = Scev.Trip_count.of_loop fn li scev lid in
        let trip_bound =
          match trip with
          | Some _ -> trip
          | None -> Scev.Trip_count.bound_of_loop fn li scev ~lid ~itv_of
        in
        (phis, trip, trip_bound))
      loop_arr
  in
  (* Pass 2 — deptest, twice per loop: once without range facts (the
     baseline the sweep reports deltas against) and once strengthened with
     intervals and trip bounds. *)
  let deps =
    Obs.Telemetry.with_span "deptest" @@ fun () ->
    Array.map2
      (fun (l : Cfg.Loopinfo.loop) (_, trip, trip_bound) ->
        let lid = l.Cfg.Loopinfo.lid in
        let baseline =
          Deptest.Analysis.analyze_loop fn li scev ~lid ~trip ~call_effect
        in
        let dep =
          Deptest.Analysis.analyze_loop fn li scev ~lid ~trip ~call_effect
            ~range:{ Deptest.Analysis.trip_bound; itv_of }
        in
        (match (baseline.Deptest.Analysis.verdict, dep.Deptest.Analysis.verdict) with
        | ( Deptest.Analysis.Unknown,
            (Deptest.Analysis.Proven_doall | Deptest.Analysis.Proven_lcd _) )
        | Deptest.Analysis.Proven_lcd _, Deptest.Analysis.Proven_doall ->
            Obs.Telemetry.incr c_range_resolved
        | _ -> ());
        (baseline.Deptest.Analysis.verdict, dep))
      loop_arr reg_side
  in
  (* Pass 3 — audit: independently certify every strengthened Proven_doall
     verdict; a refutation downgrades the loop to Unknown (the conservative
     side of the disagreement) and keeps the structured reasons for lint. *)
  let audited =
    Obs.Telemetry.with_span "dataflow.audit" @@ fun () ->
    Array.map2
      (fun (l : Cfg.Loopinfo.loop) (dep_baseline, dep) ->
        let audit, dep =
          match dep.Deptest.Analysis.verdict with
          | Deptest.Analysis.Proven_doall -> (
              let cert =
                Dataflow.Audit.audit_loop fn li scev ~lid:l.Cfg.Loopinfo.lid
                  ~n:dep.Deptest.Analysis.trip ~call_effect ~itv_of
              in
              match cert with
              | Dataflow.Audit.Certified ->
                  Obs.Telemetry.incr c_audit_certified;
                  (Some cert, dep)
              | Dataflow.Audit.Refuted _ ->
                  Obs.Telemetry.incr c_audit_downgraded;
                  ( Some cert,
                    { dep with Deptest.Analysis.verdict = Deptest.Analysis.Unknown } ))
          | Deptest.Analysis.Proven_lcd _ | Deptest.Analysis.Unknown -> (None, dep)
        in
        Obs.Telemetry.incr
          (match dep.Deptest.Analysis.verdict with
          | Deptest.Analysis.Proven_doall -> c_dep_doall
          | Deptest.Analysis.Proven_lcd _ -> c_dep_lcd
          | Deptest.Analysis.Unknown -> c_dep_unknown);
        (dep_baseline, dep, audit))
      loop_arr deps
  in
  let loops =
    Array.init (Array.length loop_arr) (fun i ->
        let l = loop_arr.(i) in
        let phis, trip, trip_bound = reg_side.(i) in
        let dep_baseline, dep, audit = audited.(i) in
        {
          lid = l.Cfg.Loopinfo.lid;
          header = l.Cfg.Loopinfo.header;
          depth = l.Cfg.Loopinfo.depth;
          parent = l.Cfg.Loopinfo.parent;
          phis;
          trip;
          trip_bound;
          dep;
          dep_baseline;
          audit;
        })
  in
  { fname = fn.Ir.Func.fname; fn; li; loops; pure; ranges }

let analyze_module (m : Ir.Func.modul) : module_static =
  Obs.Telemetry.with_span "classify" @@ fun () ->
  let purity = compute_purity m in
  (* Pure user functions never store (their loads still count as reads);
     everything else may read and write arbitrary memory. *)
  let call_effect name =
    match Ir.Builtins.find name with
    | Some s -> Deptest.Analysis.builtin_effect s
    | None ->
        if Option.value ~default:false (Hashtbl.find_opt purity name) then
          Deptest.Analysis.Reads
        else Deptest.Analysis.Reads_writes
  in
  let funcs = Hashtbl.create 16 in
  List.iter
    (fun fn ->
      let pure = Option.value ~default:false (Hashtbl.find_opt purity fn.Ir.Func.fname) in
      Hashtbl.replace funcs fn.Ir.Func.fname (analyze_func ~call_effect ~pure fn))
    m.Ir.Func.funcs;
  { modul = m; funcs }

let func_static ms fname =
  match Hashtbl.find_opt ms.funcs fname with
  | Some fs -> fs
  | None -> invalid_arg ("Classify.func_static: unknown function " ^ fname)

(* Did range facts strengthen this loop's verdict (Unknown to proven, or
   Proven_lcd to Proven_doall)? The sweep's "range-resolved" column and the
   before/after delta read this. *)
let range_resolved (ls : loop_static) : bool =
  match (ls.dep_baseline, ls.dep.Deptest.Analysis.verdict) with
  | Deptest.Analysis.Unknown, (Deptest.Analysis.Proven_doall | Deptest.Analysis.Proven_lcd _)
  | Deptest.Analysis.Proven_lcd _, Deptest.Analysis.Proven_doall ->
      true
  | _ -> false

(* (baseline, final) Unknown-verdict counts over every loop of the module —
   the headline delta the dataflow layer buys. *)
let unknown_delta (ms : module_static) : int * int =
  Hashtbl.fold
    (fun _ fs (b, f) ->
      Array.fold_left
        (fun (b, f) ls ->
          ( (if ls.dep_baseline = Deptest.Analysis.Unknown then b + 1 else b),
            if ls.dep.Deptest.Analysis.verdict = Deptest.Analysis.Unknown then f + 1
            else f ))
        (b, f) fs.loops)
    ms.funcs (0, 0)

(* Phis the run-time must track: reductions (non-computable under -reduc0)
   and non-computable LCDs. Computable phis never constrain parallelism. *)
let watched_phis (ls : loop_static) : phi_info list =
  Array.to_list ls.phis
  |> List.filter (fun pi ->
         match pi.cls with
         | Computable -> false
         | Reduction _ | Non_computable -> true)

(* Build the interpreter watch plan plus the def->phis reverse map used by
   the profiler to time producer instructions. With [prune_proven_doall]
   (the default), loops statically proven free of cross-iteration memory RAW
   are dropped from the memory-event stream — they cannot contribute
   conflicts, so the evaluation is unchanged while the interpreter skips
   their address tracking entirely. With [observe_all_phis], EVERY header
   phi additionally reports its per-arrival value (on_header_phi) so the
   range-soundness crosscheck can compare observed values against proven
   intervals; defs/uses instrumentation still covers only the watched set,
   so predictor statistics are unchanged. *)
let watch_plan_of ?(prune_proven_doall = true) ?(observe_all_phis = false)
    (fs : func_static) :
    Interp.Events.watch_plan * (int, int list) Hashtbl.t =
  let plan = Interp.Events.empty_watch_plan fs.fn in
  let def_to_phis = Hashtbl.create 16 in
  if prune_proven_doall then
    Array.iter
      (fun ls ->
        match ls.dep.Deptest.Analysis.verdict with
        | Deptest.Analysis.Proven_doall ->
            if ls.lid < Array.length plan.Interp.Events.mem_lids then
              plan.Interp.Events.mem_lids.(ls.lid) <- false
        | Deptest.Analysis.Proven_lcd _ | Deptest.Analysis.Unknown -> ())
      fs.loops;
  Array.iter
    (fun ls ->
      List.iter
        (fun pi ->
          plan.Interp.Events.phis.(pi.phi_id) <- true;
          match pi.latch_def with
          | Some def ->
              plan.Interp.Events.defs.(def) <- true;
              let old = Option.value ~default:[] (Hashtbl.find_opt def_to_phis def) in
              Hashtbl.replace def_to_phis def (pi.phi_id :: old)
          | None -> ())
        (watched_phis ls))
    fs.loops;
  (* Uses: any instruction reading a watched phi. *)
  Ir.Func.iter_instrs
    (fun i ->
      let used =
        List.filter_map
          (fun v ->
            match v with
            | Ir.Types.Reg r when plan.Interp.Events.phis.(r) -> Some r
            | _ -> None)
          (Ir.Instr.operands i.Ir.Instr.kind)
      in
      if used <> [] then
        plan.Interp.Events.phi_uses.(i.Ir.Instr.id) <- List.sort_uniq compare used)
    fs.fn;
  (* After the use scan, so phi_uses keeps reflecting the watched set only. *)
  if observe_all_phis then
    Array.iter
      (fun ls ->
        Array.iter (fun pi -> plan.Interp.Events.phis.(pi.phi_id) <- true) ls.phis)
      fs.loops;
  (plan, def_to_phis)
