(** End-to-end pipeline (paper §III): Looplang source -> canonicalized SSA ->
    static classification -> one instrumented execution -> a profile that
    every configuration is evaluated against. *)

type analysis = { ms : Classify.module_static; profile : Profile.profile }

(** Which pipeline stage a classified failure came from. *)
type stage =
  | Compile
  | Verify
  | Prepare
  | Execute
  | Crosscheck
  | Evaluate
  | Fuzz
  | Parrun  (** guarded parallel loop execution (lib/parrun) *)

val stage_name : stage -> string

val stage_of_name : string -> stage option

(** A classified pipeline failure. The fingerprint is a short stable
    identity such as [compile:syntax@3:7] or [trap:div_by_zero@1234]: the
    part before the first ['@'] is the {e class} (what went wrong), the
    optional suffix an {e instance qualifier} (source position, interpreter
    clock) pinning where. Replay compares fingerprints strictly — the
    interpreter is deterministic — while the shrinker compares classes only,
    since deleting code legitimately moves positions and clocks. *)
type failure = { stage : stage; fingerprint : string; message : string }

val failure_to_string : failure -> string

(** Class part of a fingerprint: everything before the first ['@']. *)
val fingerprint_class : string -> string

(** [same_fingerprint ~strict a b]: exact equality when [strict] (default),
    class-only equality otherwise. *)
val same_fingerprint : ?strict:bool -> string -> string -> bool

(** FNV-1a 32-bit digest as 8 hex digits — stable across OCaml versions
    (unlike [Hashtbl.hash]); used for free-text failure classes. *)
val hash8 : string -> string

val trap_key : Interp.Rvalue.trap_kind -> string

val budget_key : Interp.Rvalue.budget_kind -> string

val compile_failure : Frontend.error -> failure

val verifier_failure : stage:stage -> string -> failure

val trap_failure : clock:int -> Interp.Rvalue.trap_kind -> string -> failure

val budget_failure : Interp.Rvalue.budget_kind -> failure

(** Catch-all: fingerprint [crash:<Ctor>@<hash8 of printed exn>]. *)
val crash_failure : stage:stage -> exn -> failure

(** Canonicalize loops (loop-simplify), re-verify, and classify every loop's
    register LCDs and every function's purity. Mutates [m]. [optimize]
    (default false) first runs the Opt pipeline (constant folding, CFG
    cleanup, DCE) — the paper's "-Ofast IR" starting point. *)
val prepare : ?optimize:bool -> Ir.Func.modul -> Classify.module_static

(** Execute the instrumented program once and collect the dynamic profile.
    [fuel] bounds the interpreted instruction count (default
    {!Config.default_fuel}); [mem_limit], [max_depth], [deadline] and
    [faults] pass through to {!Interp.Machine.create}. Exhausting any budget
    truncates gracefully: the machine closes open loop invocations and call
    frames and the profile comes back with [truncated = true], still
    scorable by {!Evaluate} over the executed prefix. [static_prune]
    (default true) drops statically Proven_doall loops from the memory-event
    stream — sound for evaluation, since such loops never record conflicts;
    pass false to collect the unpruned profile (what {!Crosscheck} validates
    against). [observe_ranges] (default false) makes EVERY header phi report
    its per-arrival value so {!Crosscheck.check_ranges} can compare dynamic
    values against the statically proven intervals. [hotspot] attaches a
    {!Prof.Hotspot} profiler: its shadow stack tees the event hooks, the
    machine's opcode counters and deterministic sampler are armed, and
    [Prof.Hotspot.finish] runs on every exit path (including traps). *)
val profile_module :
  ?fuel:int ->
  ?mem_limit:int ->
  ?max_depth:int ->
  ?deadline:float ->
  ?faults:Interp.Machine.fault_plan ->
  ?make_predictor:(unit -> Predictors.Hybrid.t) ->
  ?static_prune:bool ->
  ?observe_ranges:bool ->
  ?hotspot:Prof.Hotspot.t ->
  Classify.module_static ->
  Profile.profile

(** As {!profile_module}, but every execution failure comes back as a
    classified {!failure} — traps carry the machine clock in their
    fingerprint, which an exception cannot. Budget exhaustion is still a
    success (a truncated profile). *)
val profile_result :
  ?fuel:int ->
  ?mem_limit:int ->
  ?max_depth:int ->
  ?deadline:float ->
  ?faults:Interp.Machine.fault_plan ->
  ?make_predictor:(unit -> Predictors.Hybrid.t) ->
  ?static_prune:bool ->
  ?observe_ranges:bool ->
  ?hotspot:Prof.Hotspot.t ->
  Classify.module_static ->
  (Profile.profile, failure) result

(** [compile + prepare + profile_module] from source text.
    @raise Frontend.Compile_error on front-end errors
    @raise Interp.Rvalue.Trap on program faults (division by zero, OOB)
    @raise Interp.Rvalue.Runtime_error on interpreter-invariant breakage *)
val analyze_source :
  ?fuel:int ->
  ?mem_limit:int ->
  ?max_depth:int ->
  ?deadline:float ->
  ?faults:Interp.Machine.fault_plan ->
  ?make_predictor:(unit -> Predictors.Hybrid.t) ->
  ?optimize:bool ->
  ?static_prune:bool ->
  ?observe_ranges:bool ->
  ?hotspot:Prof.Hotspot.t ->
  string ->
  analysis

(** As {!analyze_source}, starting from an already-built module. *)
val analyze_module :
  ?fuel:int ->
  ?mem_limit:int ->
  ?max_depth:int ->
  ?deadline:float ->
  ?faults:Interp.Machine.fault_plan ->
  ?make_predictor:(unit -> Predictors.Hybrid.t) ->
  ?optimize:bool ->
  ?static_prune:bool ->
  ?observe_ranges:bool ->
  ?hotspot:Prof.Hotspot.t ->
  Ir.Func.modul ->
  analysis

(** Evaluate one configuration against the recorded profile.
    @raise Config.Bad_config if the configuration is invalid *)
val evaluate : ?knobs:Evaluate.knobs -> analysis -> Config.t -> Evaluate.report

val evaluate_all : analysis -> Config.t list -> Evaluate.report list

(** Compile and run a program without instrumentation (checksums, demos). *)
val run_source : ?fuel:int -> string -> Interp.Machine.outcome
