(** End-to-end pipeline (paper §III): Looplang source -> canonicalized SSA ->
    static classification -> one instrumented execution -> a profile that
    every configuration is evaluated against. *)

type analysis = { ms : Classify.module_static; profile : Profile.profile }

(** Canonicalize loops (loop-simplify), re-verify, and classify every loop's
    register LCDs and every function's purity. Mutates [m]. [optimize]
    (default false) first runs the Opt pipeline (constant folding, CFG
    cleanup, DCE) — the paper's "-Ofast IR" starting point. *)
val prepare : ?optimize:bool -> Ir.Func.modul -> Classify.module_static

(** Execute the instrumented program once and collect the dynamic profile.
    [fuel] bounds the interpreted instruction count (default
    {!Config.default_fuel}); [mem_limit], [max_depth], [deadline] and
    [faults] pass through to {!Interp.Machine.create}. Exhausting any budget
    truncates gracefully: the machine closes open loop invocations and call
    frames and the profile comes back with [truncated = true], still
    scorable by {!Evaluate} over the executed prefix. [static_prune]
    (default true) drops statically Proven_doall loops from the memory-event
    stream — sound for evaluation, since such loops never record conflicts;
    pass false to collect the unpruned profile (what {!Crosscheck} validates
    against). *)
val profile_module :
  ?fuel:int ->
  ?mem_limit:int ->
  ?max_depth:int ->
  ?deadline:float ->
  ?faults:Interp.Machine.fault_plan ->
  ?make_predictor:(unit -> Predictors.Hybrid.t) ->
  ?static_prune:bool ->
  Classify.module_static ->
  Profile.profile

(** [compile + prepare + profile_module] from source text.
    @raise Frontend.Compile_error on front-end errors
    @raise Interp.Rvalue.Trap on program faults (division by zero, OOB)
    @raise Interp.Rvalue.Runtime_error on interpreter-invariant breakage *)
val analyze_source :
  ?fuel:int ->
  ?mem_limit:int ->
  ?max_depth:int ->
  ?deadline:float ->
  ?faults:Interp.Machine.fault_plan ->
  ?make_predictor:(unit -> Predictors.Hybrid.t) ->
  ?optimize:bool ->
  ?static_prune:bool ->
  string ->
  analysis

(** As {!analyze_source}, starting from an already-built module. *)
val analyze_module :
  ?fuel:int ->
  ?mem_limit:int ->
  ?max_depth:int ->
  ?deadline:float ->
  ?faults:Interp.Machine.fault_plan ->
  ?make_predictor:(unit -> Predictors.Hybrid.t) ->
  ?optimize:bool ->
  ?static_prune:bool ->
  Ir.Func.modul ->
  analysis

(** Evaluate one configuration against the recorded profile.
    @raise Config.Bad_config if the configuration is invalid *)
val evaluate : ?knobs:Evaluate.knobs -> analysis -> Config.t -> Evaluate.report

val evaluate_all : analysis -> Config.t list -> Evaluate.report list

(** Compile and run a program without instrumentation (checksums, demos). *)
val run_source : ?fuel:int -> string -> Interp.Machine.outcome
