(* The configuration lattice of the limit study (paper Table II): a parallel
   execution model plus the reduc / dep / fn relaxation flags. *)

type model = Doall | Pdoall | Helix

type reduc =
  | Reduc0 (* reductions are ordinary non-computable LCDs *)
  | Reduc1 (* reductions decoupled: parallel with no overheads *)

type dep =
  | Dep0 (* non-computable register LCDs bar parallelization *)
  | Dep1 (* lowered to memory: frequent memory LCDs (HELIX sync) *)
  | Dep2 (* realistic hybrid value prediction *)
  | Dep3 (* perfect value prediction *)

type fn =
  | Fn0 (* any call in the loop makes it sequential *)
  | Fn1 (* only pure calls are parallel *)
  | Fn2 (* pure + thread-safe library + instrumented user calls *)
  | Fn3 (* every call is parallelizable *)

type t = { model : model; reduc : reduc; dep : dep; fn : fn }

(* The one interpreter fuel budget every entry point defaults to (paper-scale
   2e9 dynamic IR instructions); fuel is a cap, not a cost, so the CLI and
   the library agree on it. *)
let default_fuel = 2_000_000_000

let model_name = function Doall -> "DOALL" | Pdoall -> "PDOALL" | Helix -> "HELIX"

let flags_name c =
  Printf.sprintf "reduc%d-dep%d-fn%d"
    (match c.reduc with Reduc0 -> 0 | Reduc1 -> 1)
    (match c.dep with Dep0 -> 0 | Dep1 -> 1 | Dep2 -> 2 | Dep3 -> 3)
    (match c.fn with Fn0 -> 0 | Fn1 -> 1 | Fn2 -> 2 | Fn3 -> 3)

let name c = Printf.sprintf "%s %s" (flags_name c) (model_name c.model)

let make ?(model = Pdoall) ?(reduc = Reduc0) ?(dep = Dep0) ?(fn = Fn0) () =
  { model; reduc; dep; fn }

(* DOALL cannot exploit any register-LCD relaxation (paper §IV): reject
   nonsensical combinations early. *)
let validate c =
  match (c.model, c.dep) with
  | Doall, (Dep1 | Dep2 | Dep3) ->
      Error "DOALL does not support non-computable register LCDs (use dep0)"
  | (Doall | Pdoall | Helix), _ -> Ok c

exception Bad_config of string

let of_string s : t =
  let fail () = raise (Bad_config (Printf.sprintf "bad configuration %S" s)) in
  let model_of m =
    match String.uppercase_ascii m with
    | "DOALL" -> Doall
    | "PDOALL" -> Pdoall
    | "HELIX" -> Helix
    | _ -> fail ()
  in
  let is_flags w = String.length w > 5 && String.sub w 0 5 = "reduc" in
  let model, flags =
    match String.split_on_char ' ' (String.trim s) with
    | [ flags ] -> (Pdoall, flags)
    | [ a; b ] when is_flags a -> (model_of b, a)
    | [ a; b ] when is_flags b -> (model_of a, b)
    | _ -> fail ()
  in
  match String.split_on_char '-' flags with
  | [ r; d; f ] ->
      let reduc =
        match r with "reduc0" -> Reduc0 | "reduc1" -> Reduc1 | _ -> fail ()
      in
      let dep =
        match d with
        | "dep0" -> Dep0
        | "dep1" -> Dep1
        | "dep2" -> Dep2
        | "dep3" -> Dep3
        | _ -> fail ()
      in
      let fn =
        match f with
        | "fn0" -> Fn0
        | "fn1" -> Fn1
        | "fn2" -> Fn2
        | "fn3" -> Fn3
        | _ -> fail ()
      in
      { model; reduc; dep; fn }
  | _ -> fail ()

(* The configuration ladder of Figures 2 and 3, bottom (most restrictive)
   to top. *)
let figure_ladder : t list =
  [
    { model = Doall; reduc = Reduc0; dep = Dep0; fn = Fn0 };
    { model = Doall; reduc = Reduc1; dep = Dep0; fn = Fn0 };
    { model = Pdoall; reduc = Reduc0; dep = Dep0; fn = Fn0 };
    { model = Pdoall; reduc = Reduc0; dep = Dep2; fn = Fn0 };
    { model = Pdoall; reduc = Reduc1; dep = Dep2; fn = Fn0 };
    { model = Pdoall; reduc = Reduc0; dep = Dep0; fn = Fn2 };
    { model = Pdoall; reduc = Reduc0; dep = Dep2; fn = Fn2 };
    { model = Pdoall; reduc = Reduc1; dep = Dep2; fn = Fn2 };
    { model = Pdoall; reduc = Reduc0; dep = Dep3; fn = Fn2 };
    { model = Pdoall; reduc = Reduc0; dep = Dep3; fn = Fn3 };
    { model = Helix; reduc = Reduc0; dep = Dep0; fn = Fn2 };
    { model = Helix; reduc = Reduc1; dep = Dep0; fn = Fn2 };
    { model = Helix; reduc = Reduc0; dep = Dep1; fn = Fn2 };
    { model = Helix; reduc = Reduc1; dep = Dep1; fn = Fn2 };
  ]

(* The per-benchmark comparison of Figure 4. *)
let best_pdoall = { model = Pdoall; reduc = Reduc1; dep = Dep2; fn = Fn2 }

let best_helix = { model = Helix; reduc = Reduc1; dep = Dep1; fn = Fn2 }

(* The coverage comparison of Figure 5. *)
let coverage_configs : t list =
  [
    { model = Pdoall; reduc = Reduc0; dep = Dep0; fn = Fn2 };
    { model = Helix; reduc = Reduc0; dep = Dep0; fn = Fn2 };
    { model = Helix; reduc = Reduc0; dep = Dep1; fn = Fn2 };
  ]
