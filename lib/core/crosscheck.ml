(* Soundness cross-validation of the static dependence tester against the
   dynamic detector: a loop the static side proved DOALL must never record a
   cross-iteration memory RAW at run time. Used in debug/test mode (the fuzz
   suite runs it on every random program).

   The profile must be collected WITHOUT pruning
   (Driver.profile_module ~static_prune:false); with pruning on, Proven_doall
   invocations skip address tracking, so an unsound verdict could hide from
   this check instead of being caught by it. *)

type violation = {
  fname : string;
  lid : int;
  header : int;
  inv_id : int;
  n_mem_deps : int; (* dynamic RAW manifestations the static side denied *)
}

let violation_to_string v =
  Printf.sprintf
    "%s/bb%d (loop %d, invocation %d): statically Proven_doall but %d dynamic memory \
     RAW manifestation(s)"
    v.fname v.header v.lid v.inv_id v.n_mem_deps

let check (p : Profile.profile) : violation list =
  let out = ref [] in
  Array.iter
    (fun (inv : Profile.inv) ->
      let fs = Classify.func_static p.Profile.ms inv.Profile.fname in
      let ls = fs.Classify.loops.(inv.Profile.lid) in
      match ls.Classify.dep.Deptest.Analysis.verdict with
      | Deptest.Analysis.Proven_doall
        when inv.Profile.n_mem_deps > 0 || Hashtbl.length inv.Profile.mem_conflicts > 0
        ->
          out :=
            {
              fname = inv.Profile.fname;
              lid = inv.Profile.lid;
              header = ls.Classify.header;
              inv_id = inv.Profile.inv_id;
              n_mem_deps = inv.Profile.n_mem_deps;
            }
            :: !out
      | _ -> ())
    p.Profile.invs;
  List.rev !out

exception Unsound of string

(* Fail loudly on the first unsound Proven_doall verdict. *)
let check_exn (p : Profile.profile) : unit =
  match check p with
  | [] -> ()
  | vs ->
      raise
        (Unsound
           ("static dependence verdicts contradicted by execution:\n"
           ^ String.concat "\n" (List.map violation_to_string vs)))

(* ---- range soundness ----

   Every value a header phi takes at run time must lie inside the interval
   the dataflow range analysis proved for it. The profile must be collected
   with Driver ~observe_ranges:true so every header phi (not just the
   watched LCD set) reports its per-arrival values. *)

type range_violation = {
  fname : string;
  phi_id : int;
  observed : int64; (* a dynamic value outside the proven interval *)
  proven : Util.Interval.t;
}

let range_violation_to_string v =
  Printf.sprintf "%s/%%%d: observed value %Ld outside proven range %s" v.fname
    v.phi_id v.observed
    (Util.Interval.to_string v.proven)

let check_ranges (p : Profile.profile) : range_violation list =
  let out = ref [] in
  Hashtbl.iter
    (fun (fname, phi_id) (lo, hi) ->
      let fs = Classify.func_static p.Profile.ms fname in
      let proven = Dataflow.Range.itv_of_instr fs.Classify.ranges phi_id in
      let bad v =
        if not (Util.Interval.mem v proven) then
          out := { fname; phi_id; observed = v; proven } :: !out
      in
      bad lo;
      if hi <> lo then bad hi)
    p.Profile.phi_obs;
  !out

let check_ranges_exn (p : Profile.profile) : unit =
  match check_ranges p with
  | [] -> ()
  | vs ->
      raise
        (Unsound
           ("proven value ranges contradicted by execution:\n"
           ^ String.concat "\n" (List.map range_violation_to_string vs)))
