(* Soundness cross-validation of the static dependence tester against the
   dynamic detector: a loop the static side proved DOALL must never record a
   cross-iteration memory RAW at run time. Used in debug/test mode (the fuzz
   suite runs it on every random program).

   The profile must be collected WITHOUT pruning
   (Driver.profile_module ~static_prune:false); with pruning on, Proven_doall
   invocations skip address tracking, so an unsound verdict could hide from
   this check instead of being caught by it. *)

type violation = {
  fname : string;
  lid : int;
  header : int;
  inv_id : int;
  n_mem_deps : int; (* dynamic RAW manifestations the static side denied *)
}

let violation_to_string v =
  Printf.sprintf
    "%s/bb%d (loop %d, invocation %d): statically Proven_doall but %d dynamic memory \
     RAW manifestation(s)"
    v.fname v.header v.lid v.inv_id v.n_mem_deps

let check (p : Profile.profile) : violation list =
  let out = ref [] in
  Array.iter
    (fun (inv : Profile.inv) ->
      let fs = Classify.func_static p.Profile.ms inv.Profile.fname in
      let ls = fs.Classify.loops.(inv.Profile.lid) in
      match ls.Classify.dep.Deptest.Analysis.verdict with
      | Deptest.Analysis.Proven_doall
        when inv.Profile.n_mem_deps > 0 || Hashtbl.length inv.Profile.mem_conflicts > 0
        ->
          out :=
            {
              fname = inv.Profile.fname;
              lid = inv.Profile.lid;
              header = ls.Classify.header;
              inv_id = inv.Profile.inv_id;
              n_mem_deps = inv.Profile.n_mem_deps;
            }
            :: !out
      | _ -> ())
    p.Profile.invs;
  List.rev !out

exception Unsound of string

(* Fail loudly on the first unsound Proven_doall verdict. *)
let check_exn (p : Profile.profile) : unit =
  match check p with
  | [] -> ()
  | vs ->
      raise
        (Unsound
           ("static dependence verdicts contradicted by execution:\n"
           ^ String.concat "\n" (List.map violation_to_string vs)))
