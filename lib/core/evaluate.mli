(** Configuration evaluation over a collected profile: bottom-up over the
    dynamic loop-invocation tree, applying the execution model at every level
    and propagating savings upward (nested parallelism, as in the paper's
    comparison with SWARM/T4). *)

(** Aggregate outcome for one static loop across all of its invocations. *)
type loop_result = {
  fname : string;
  lid : int;  (** Cfg.Loopinfo loop id within [fname] *)
  header : int;  (** header block id *)
  depth : int;  (** nesting depth, 1 = top level *)
  invocations : int;
  parallel_invocations : int;
  serial_cost : float;  (** with nested savings already applied *)
  final_cost : float;  (** min(serial, model cost) *)
  mem_dep_manifestations : int;
  conflicting_iterations : int;
  total_iterations : int;
  static_verdict : Deptest.Analysis.verdict;
      (** the static dependence tester's call for this loop *)
}

type report = {
  config : Config.t;
  total_cost : int;  (** serial program cost (dynamic IR instructions) *)
  parallel_cost : float;
  speedup : float;  (** total_cost / parallel_cost *)
  coverage_pct : float;
      (** % of dynamic instructions executed inside a loop marked parallel
          (paper Figure 5) *)
  static_coverage_pct : float;
      (** % of dynamic instructions inside loops statically proven DOALL —
          the static-vs-dynamic parallelism gap, configuration independent *)
  truncated : bool;
      (** the profile covers a budget-truncated prefix of the program:
          speedups are over the executed prefix only *)
  loops : loop_result list;  (** sorted by serial cost, descending *)
}

(** Whether call classes in [mask] (see {!Profile}) block parallelization
    under the given fn flag. *)
val call_violation : Config.fn -> int -> bool

(** Whether a watched register LCD is in the effective non-computable set
    under the reduc flag. *)
val track_active : Config.reduc -> Profile.reg_track -> bool

(** Ablation knobs; defaults reproduce the paper's model. *)
type knobs = {
  pdoall_cutoff : float;
  helix_distance_normalized : bool;
}

val default_knobs : knobs

val evaluate : ?knobs:knobs -> Profile.profile -> Config.t -> report
