(* End-to-end pipeline: Looplang source -> canonicalized SSA -> static
   classification -> instrumented execution -> profile -> per-configuration
   reports. This is the whole Loopapalooza flow of paper §III. *)

type analysis = {
  ms : Classify.module_static;
  profile : Profile.profile;
}

(* Canonicalize and statically analyze a module (destructive on [m]).
   [optimize] first runs the constant-folding / CFG-cleanup / DCE pipeline —
   the stand-in for the paper's "-Ofast IR" starting point. *)
let prepare ?(optimize = false) (m : Ir.Func.modul) : Classify.module_static =
  if optimize then Opt.Pipeline.run_module m;
  Cfg.Loop_simplify.run_module m;
  Ir.Verifier.check_module_exn m;
  Classify.analyze_module m

(* Execute the instrumented program once, collecting the profile all
   configurations are evaluated against. [static_prune] (default true) lets
   statically Proven_doall loops skip dynamic address tracking — sound
   because such loops cannot record conflicts anyway; pass false to collect
   the unpruned profile (e.g. for Crosscheck). Exhausting a budget (fuel,
   call depth, heap, wall deadline) truncates rather than fails: the machine
   closes open invocations and the profile is marked [truncated]. *)
let profile_module ?(fuel = Config.default_fuel) ?mem_limit ?max_depth ?deadline
    ?faults ?make_predictor ?(static_prune = true)
    (ms : Classify.module_static) : Profile.profile =
  let def_maps = Hashtbl.create 16 in
  let watch_plans = Hashtbl.create 16 in
  Hashtbl.iter
    (fun fname fs ->
      let plan, defs = Classify.watch_plan_of ~prune_proven_doall:static_prune fs in
      Hashtbl.replace watch_plans fname plan;
      Hashtbl.replace def_maps fname defs)
    ms.Classify.funcs;
  let profiler = Profile.create ?make_predictor ~static_prune ms ~def_maps in
  let machine =
    Interp.Machine.create ~hooks:(Profile.hooks_of profiler) ~fuel ?mem_limit
      ?max_depth ?deadline ?faults
      ~watch:(fun fname -> Hashtbl.find_opt watch_plans fname)
      ms.Classify.modul
  in
  let outcome = Interp.Machine.run_main machine in
  {
    Profile.ms;
    invs = Ir.Vec.to_array profiler.Profile.invs;
    total_cost = outcome.Interp.Machine.clock;
    outcome;
    truncated = (outcome.Interp.Machine.stop <> Interp.Machine.Completed);
  }

let analyze_source ?fuel ?mem_limit ?max_depth ?deadline ?faults ?make_predictor
    ?optimize ?static_prune (src : string) : analysis =
  let m = Frontend.compile_exn src in
  let ms = prepare ?optimize m in
  {
    ms;
    profile =
      profile_module ?fuel ?mem_limit ?max_depth ?deadline ?faults
        ?make_predictor ?static_prune ms;
  }

let analyze_module ?fuel ?mem_limit ?max_depth ?deadline ?faults ?make_predictor
    ?optimize ?static_prune (m : Ir.Func.modul) : analysis =
  let ms = prepare ?optimize m in
  {
    ms;
    profile =
      profile_module ?fuel ?mem_limit ?max_depth ?deadline ?faults
        ?make_predictor ?static_prune ms;
  }

let evaluate ?knobs (a : analysis) (config : Config.t) : Evaluate.report =
  (match Config.validate config with
  | Ok _ -> ()
  | Error msg -> raise (Config.Bad_config msg));
  Evaluate.evaluate ?knobs a.profile config

let evaluate_all (a : analysis) (configs : Config.t list) : Evaluate.report list =
  List.map (evaluate a) configs

(* Plain uninstrumented run (e.g. to check program output). *)
let run_source ?(fuel = Config.default_fuel) (src : string) : Interp.Machine.outcome =
  let m = Frontend.compile_exn src in
  Cfg.Loop_simplify.run_module m;
  Ir.Verifier.check_module_exn m;
  let machine = Interp.Machine.create ~fuel m in
  Interp.Machine.run_main machine
