(* End-to-end pipeline: Looplang source -> canonicalized SSA -> static
   classification -> instrumented execution -> profile -> per-configuration
   reports. This is the whole Loopapalooza flow of paper §III. *)

type analysis = {
  ms : Classify.module_static;
  profile : Profile.profile;
}

(* ---- uniform stage failures ----

   Every way the pipeline can reject or abort a program is classified by the
   stage that failed plus a *fingerprint*: a short stable identity string
   such as [compile:syntax@3:7] or [trap:div_by_zero@1234]. Fingerprints
   have two parts: the class (everything before the first '@'), which names
   what went wrong, and an optional '@'-suffixed instance qualifier
   (source position, interpreter clock) pinning where. Replay compares
   fingerprints strictly — the interpreter is deterministic, so an identical
   re-run must reproduce the qualifier bit-for-bit — while the shrinker
   compares classes only, since deleting code legitimately moves positions
   and clocks. *)

type stage =
  | Compile
  | Verify
  | Prepare
  | Execute
  | Crosscheck
  | Evaluate
  | Fuzz
  | Parrun  (* guarded parallel loop execution (lib/parrun) *)

let stage_name = function
  | Compile -> "compile"
  | Verify -> "verify"
  | Prepare -> "prepare"
  | Execute -> "execute"
  | Crosscheck -> "crosscheck"
  | Evaluate -> "evaluate"
  | Fuzz -> "fuzz"
  | Parrun -> "parrun"

let stage_of_name = function
  | "compile" -> Some Compile
  | "verify" -> Some Verify
  | "prepare" -> Some Prepare
  | "execute" -> Some Execute
  | "crosscheck" -> Some Crosscheck
  | "evaluate" -> Some Evaluate
  | "fuzz" -> Some Fuzz
  | "parrun" -> Some Parrun
  | _ -> None

type failure = { stage : stage; fingerprint : string; message : string }

let failure_to_string f =
  Printf.sprintf "[%s] %s: %s" (stage_name f.stage) f.fingerprint f.message

(* Class part of a fingerprint: everything before the first '@'. *)
let fingerprint_class fp =
  match String.index_opt fp '@' with Some i -> String.sub fp 0 i | None -> fp

let same_fingerprint ?(strict = true) a b =
  if strict then String.equal a b
  else String.equal (fingerprint_class a) (fingerprint_class b)

(* Short stable digest for failure classes whose natural identity is free
   text (verifier/runtime messages): FNV-1a over the message, printed as 8
   hex digits. Deliberately not [Hashtbl.hash], whose value is not
   guaranteed stable across OCaml versions — bundles outlive builds. *)
let hash8 (s : string) =
  let h = ref 0x811c9dc5 in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x01000193 land 0xffffffff)
    s;
  Printf.sprintf "%08x" !h

let trap_key = function
  | Interp.Rvalue.Div_by_zero -> "div_by_zero"
  | Interp.Rvalue.Out_of_bounds -> "out_of_bounds"
  | Interp.Rvalue.Negative_alloc -> "negative_alloc"

let budget_key = function
  | Interp.Rvalue.Fuel -> "fuel"
  | Interp.Rvalue.Call_depth -> "call_depth"
  | Interp.Rvalue.Heap -> "heap"
  | Interp.Rvalue.Wall -> "wall"

let compile_failure (e : Frontend.error) =
  {
    stage = Compile;
    fingerprint =
      Printf.sprintf "compile:%s@%d:%d"
        (Frontend.error_kind_name e.Frontend.kind)
        e.Frontend.pos.Frontend.Ast.line e.Frontend.pos.Frontend.Ast.col;
    message = Frontend.error_to_string e;
  }

let verifier_failure ~stage msg =
  { stage; fingerprint = "verifier:" ^ hash8 msg; message = msg }

let trap_failure ~clock kind msg =
  {
    stage = Execute;
    fingerprint = Printf.sprintf "trap:%s@%d" (trap_key kind) clock;
    message = msg;
  }

let budget_failure kind =
  {
    stage = Execute;
    fingerprint = "budget:" ^ budget_key kind;
    message =
      Interp.Rvalue.budget_kind_to_string kind
      ^ " budget exhausted before any useful work";
  }

(* The catch-all for exceptions no stage claims: still classified, with the
   exception constructor (stripped of its argument text) as the class. *)
let crash_failure ~stage exn =
  let printed = Printexc.to_string exn in
  let ctor =
    match String.index_opt printed '(' with
    | Some i -> String.trim (String.sub printed 0 i)
    | None -> printed
  in
  { stage; fingerprint = Printf.sprintf "crash:%s@%s" ctor (hash8 printed); message = printed }

(* ---- telemetry ----

   Run-level interpreter counters, fed once per profiling run from the
   machine's own tallies. The interpreter's per-instruction hot loop carries
   no instrumentation calls at all (see Obs.Telemetry): the machine counts
   for itself and the driver publishes on every exit path — normal
   completion, budget truncation, and traps alike. *)

let c_runs = Obs.Telemetry.counter "interp.runs"

let c_instrs = Obs.Telemetry.counter "interp.instructions"

let c_mem_accesses = Obs.Telemetry.counter "interp.mem.accesses"

let c_mem_events = Obs.Telemetry.counter "interp.mem.events"

let c_mem_pruned = Obs.Telemetry.counter "interp.mem.pruned"

let c_traps = Obs.Telemetry.counter "interp.traps"

let c_truncations = Obs.Telemetry.counter "interp.truncations"

let record_run (machine : Interp.Machine.t) =
  Obs.Telemetry.incr c_runs;
  Obs.Telemetry.add c_instrs (Interp.Machine.instructions_retired machine);
  Obs.Telemetry.add c_mem_accesses (Interp.Machine.mem_accesses machine);
  Obs.Telemetry.add c_mem_events (Interp.Machine.mem_events machine);
  Obs.Telemetry.add c_mem_pruned (Interp.Machine.mem_events_pruned machine)

(* Canonicalize and statically analyze a module (destructive on [m]).
   [optimize] first runs the constant-folding / CFG-cleanup / DCE pipeline —
   the stand-in for the paper's "-Ofast IR" starting point. *)
let prepare ?(optimize = false) (m : Ir.Func.modul) : Classify.module_static =
  Obs.Telemetry.with_span "prepare" @@ fun () ->
  if optimize then Opt.Pipeline.run_module m;
  Obs.Telemetry.with_span "loop-simplify" (fun () ->
      Cfg.Loop_simplify.run_module m);
  Obs.Telemetry.with_span "verify" (fun () -> Ir.Verifier.check_module_exn m);
  Classify.analyze_module m

(* Execute the instrumented program once, collecting the profile all
   configurations are evaluated against. [static_prune] (default true) lets
   statically Proven_doall loops skip dynamic address tracking — sound
   because such loops cannot record conflicts anyway; pass false to collect
   the unpruned profile (e.g. for Crosscheck). Exhausting a budget (fuel,
   call depth, heap, wall deadline) truncates rather than fails: the machine
   closes open invocations and the profile is marked [truncated]. *)
let profiling_machine ?(fuel = Config.default_fuel) ?mem_limit ?max_depth
    ?deadline ?faults ?make_predictor ?(static_prune = true)
    ?(observe_ranges = false) ?hotspot (ms : Classify.module_static) :
    Profile.t * Interp.Machine.t =
  let def_maps = Hashtbl.create 16 in
  let watch_plans = Hashtbl.create 16 in
  Hashtbl.iter
    (fun fname fs ->
      let plan, defs =
        Classify.watch_plan_of ~prune_proven_doall:static_prune
          ~observe_all_phis:observe_ranges fs
      in
      Hashtbl.replace watch_plans fname plan;
      Hashtbl.replace def_maps fname defs)
    ms.Classify.funcs;
  let profiler = Profile.create ?make_predictor ~static_prune ms ~def_maps in
  (* the hotspot profiler tees the hooks (its shadow stack observes the
     same call/loop events the profiler consumes) and arms the machine's
     opcode counters and deterministic sampler *)
  let hooks =
    let base = Profile.hooks_of profiler in
    match hotspot with None -> base | Some h -> Prof.Hotspot.tee h base
  in
  let machine =
    Interp.Machine.create ~hooks ~fuel ?mem_limit ?max_depth ?deadline ?faults
      ~watch:(fun fname -> Hashtbl.find_opt watch_plans fname)
      ms.Classify.modul
  in
  Option.iter (fun h -> Prof.Hotspot.arm h machine) hotspot;
  (profiler, machine)

let finish_profile (ms : Classify.module_static) (profiler : Profile.t)
    (outcome : Interp.Machine.outcome) : Profile.profile =
  {
    Profile.ms;
    invs = Ir.Vec.to_array profiler.Profile.invs;
    phi_obs = profiler.Profile.phi_obs;
    total_cost = outcome.Interp.Machine.clock;
    outcome;
    truncated = (outcome.Interp.Machine.stop <> Interp.Machine.Completed);
  }

let profile_module ?fuel ?mem_limit ?max_depth ?deadline ?faults
    ?make_predictor ?static_prune ?observe_ranges ?hotspot
    (ms : Classify.module_static) : Profile.profile =
  let profiler, machine =
    profiling_machine ?fuel ?mem_limit ?max_depth ?deadline ?faults
      ?make_predictor ?static_prune ?observe_ranges ?hotspot ms
  in
  Fun.protect
    ~finally:(fun () -> Option.iter Prof.Hotspot.finish hotspot)
    (fun () ->
      let outcome =
        Obs.Telemetry.with_span "profile.interp" (fun () ->
            Interp.Machine.run_main machine)
      in
      record_run machine;
      if outcome.Interp.Machine.stop <> Interp.Machine.Completed then
        Obs.Telemetry.incr c_truncations;
      finish_profile ms profiler outcome)

(* As [profile_module], but every way the run can fail comes back as a
   classified {!failure} instead of an exception — with the machine clock at
   the moment a trap fired baked into the fingerprint, which an exception
   cannot carry. Budget exhaustion is still a success (a truncated
   profile), matching [profile_module]. *)
let profile_result ?fuel ?mem_limit ?max_depth ?deadline ?faults
    ?make_predictor ?static_prune ?observe_ranges ?hotspot
    (ms : Classify.module_static) : (Profile.profile, failure) result =
  let profiler, machine =
    profiling_machine ?fuel ?mem_limit ?max_depth ?deadline ?faults
      ?make_predictor ?static_prune ?observe_ranges ?hotspot ms
  in
  Fun.protect
    ~finally:(fun () -> Option.iter Prof.Hotspot.finish hotspot)
  @@ fun () ->
  match
    Obs.Telemetry.with_span "profile.interp" (fun () ->
        Interp.Machine.run_main machine)
  with
  | outcome ->
      record_run machine;
      if outcome.Interp.Machine.stop <> Interp.Machine.Completed then
        Obs.Telemetry.incr c_truncations;
      Ok (finish_profile ms profiler outcome)
  | exception Interp.Rvalue.Trap (kind, msg) ->
      record_run machine;
      Obs.Telemetry.incr c_traps;
      Error (trap_failure ~clock:(Interp.Machine.clock machine) kind msg)
  | exception Interp.Rvalue.Runtime_error msg ->
      record_run machine;
      Error
        {
          stage = Execute;
          fingerprint = "runtime:" ^ hash8 msg;
          message = "runtime error: " ^ msg;
        }
  | exception Stack_overflow ->
      record_run machine;
      Error
        {
          stage = Execute;
          fingerprint = "crash:Stack_overflow";
          message = "stack overflow during execution";
        }

let analyze_source ?fuel ?mem_limit ?max_depth ?deadline ?faults ?make_predictor
    ?optimize ?static_prune ?observe_ranges ?hotspot (src : string) : analysis =
  Obs.Telemetry.with_span "analyze" @@ fun () ->
  let m = Frontend.compile_exn src in
  let ms = prepare ?optimize m in
  {
    ms;
    profile =
      profile_module ?fuel ?mem_limit ?max_depth ?deadline ?faults
        ?make_predictor ?static_prune ?observe_ranges ?hotspot ms;
  }

let analyze_module ?fuel ?mem_limit ?max_depth ?deadline ?faults ?make_predictor
    ?optimize ?static_prune ?observe_ranges ?hotspot (m : Ir.Func.modul) :
    analysis =
  Obs.Telemetry.with_span "analyze" @@ fun () ->
  let ms = prepare ?optimize m in
  {
    ms;
    profile =
      profile_module ?fuel ?mem_limit ?max_depth ?deadline ?faults
        ?make_predictor ?static_prune ?observe_ranges ?hotspot ms;
  }

let evaluate ?knobs (a : analysis) (config : Config.t) : Evaluate.report =
  (match Config.validate config with
  | Ok _ -> ()
  | Error msg -> raise (Config.Bad_config msg));
  Evaluate.evaluate ?knobs a.profile config

let evaluate_all (a : analysis) (configs : Config.t list) : Evaluate.report list =
  List.map (evaluate a) configs

(* Plain uninstrumented run (e.g. to check program output). *)
let run_source ?(fuel = Config.default_fuel) (src : string) : Interp.Machine.outcome =
  let m = Frontend.compile_exn src in
  Cfg.Loop_simplify.run_module m;
  Ir.Verifier.check_module_exn m;
  let machine = Interp.Machine.create ~fuel m in
  Interp.Machine.run_main machine
