(** Client for the analysis daemon ({!Daemon}): one Unix-socket
    connection per request, streaming progress frames, terminal
    done/err frame. The daemon renders with {!Render}, the client
    prints the shipped bytes verbatim — byte-identity with the local
    CLI holds by construction. *)

(** Connection failure (daemon not running, bad socket path). *)
exception Client_error of string

val ping_request : Util.Json.t

val analyze_request :
  source:string ->
  config:string ->
  fuel:int ->
  loops:int ->
  optimize:bool ->
  Util.Json.t

val campaign_request :
  targets:(string * string) list ->
  jobs:int ->
  fuel:int ->
  retries:int ->
  ?wall:float ->
  ?watchdog:float ->
  unit ->
  Util.Json.t

(** Submit one request and consume the reply stream. Non-terminal
    frames (["log"] lines, ["hb"] heartbeats) go to [on_frame] as they
    arrive; returns [Ok frame] on the terminal ["done"]/["pong"] frame,
    [Error (message, exit_code)] on an ["err"] frame or a dropped /
    corrupted connection. Raises {!Client_error} only when the initial
    connect fails. *)
val submit :
  socket:string ->
  ?on_frame:(Util.Json.t -> unit) ->
  Util.Json.t ->
  (Util.Json.t, string * int) result
