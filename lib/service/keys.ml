(* Knob fingerprints for cache keys: every flag that can change the
   bytes of a cached result must appear here, so "same key" implies
   "same output". Each format string is versioned — bump the v-tag when
   a renderer or the pipeline changes what a knob means, and old entries
   miss cleanly instead of serving stale bytes. *)

let analyze ~config ~fuel ~loops ~optimize =
  Printf.sprintf "analyze|v1|config=%s|fuel=%d|loops=%d|optimize=%b" config
    fuel loops optimize

let sweep ~fuel = Printf.sprintf "sweep|v1|fuel=%d" fuel

(* watchdog_s is deliberately absent: it only shapes Errored outcomes
   (timeouts), and errored results are never stored *)
let campaign ~(budgets : Campaign.Runner.budgets) ~configs =
  Printf.sprintf "campaign|v1|fuel=%d|mem=%d|depth=%d|wall=%s|retries=%d|configs=%s"
    budgets.Campaign.Runner.fuel budgets.Campaign.Runner.mem_limit
    budgets.Campaign.Runner.max_depth
    (match budgets.Campaign.Runner.wall_s with
    | None -> "none"
    | Some w -> Printf.sprintf "%g" w)
    budgets.Campaign.Runner.retries
    (String.concat "+" (List.map Loopa.Config.name configs))
