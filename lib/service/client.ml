(* Client side of the daemon protocol: connect to the Unix-domain
   socket, write one request frame, then consume the reply stream.
   Progress frames (log lines, heartbeats) are handed to the caller as
   they arrive; the call resolves on the terminal "done" or "err"
   frame. Rendering is the caller's job — the daemon ships the exact
   bytes the local CLI would have printed, and the client prints them
   verbatim, which is what keeps the two byte-identical. *)

module J = Util.Json

exception Client_error of string

let connect socket_path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX socket_path)
   with Unix.Unix_error (e, _, _) ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise
       (Client_error
          (Printf.sprintf "cannot reach daemon at %s: %s (is it running?)"
             socket_path (Unix.error_message e))));
  fd

(* ---- request builders (the daemon's accepted vocabulary) ---- *)

let ping_request = J.Obj [ ("op", J.String "ping") ]

let analyze_request ~source ~config ~fuel ~loops ~optimize =
  J.Obj
    [
      ("op", J.String "analyze");
      ("source", J.String source);
      ("config", J.String config);
      ("fuel", J.Int fuel);
      ("loops", J.Int loops);
      ("optimize", J.Bool optimize);
    ]

let campaign_request ~targets ~jobs ~fuel ~retries ?wall ?watchdog () =
  J.Obj
    ([
       ("op", J.String "campaign");
       ( "targets",
         J.List
           (List.map
              (fun (name, src) ->
                J.Obj [ ("name", J.String name); ("src", J.String src) ])
              targets) );
       ("jobs", J.Int jobs);
       ("fuel", J.Int fuel);
       ("retries", J.Int retries);
     ]
    @ (match wall with Some w -> [ ("wall", J.Float w) ] | None -> [])
    @
    match watchdog with Some w -> [ ("watchdog", J.Float w) ] | None -> [])

(* ---- submission ---- *)

let submit ~socket ?(on_frame = fun _ -> ()) req =
  let fd = connect socket in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Exec.Ipc.write fd req;
      let rec loop () =
        match Exec.Ipc.read fd with
        | Exec.Ipc.Eof ->
            Error ("daemon closed the connection before replying", 3)
        | exception Exec.Ipc.Protocol_error m ->
            Error ("daemon protocol error: " ^ m, 3)
        | Exec.Ipc.Msg frame -> (
            match Option.bind (J.member "ev" frame) J.to_str with
            | Some "done" | Some "pong" -> Ok frame
            | Some "err" ->
                let msg =
                  Option.value ~default:"unknown daemon error"
                    (Option.bind (J.member "message" frame) J.to_str)
                in
                let code =
                  Option.value ~default:3
                    (Option.bind (J.member "exit" frame) J.to_int)
                in
                Error (msg, code)
            | _ ->
                on_frame frame;
                loop ())
      in
      loop ())
