(* The persistent analysis daemon behind `loopapalooza serve`: a
   Unix-domain socket accepting one request per connection as
   length-prefixed Util.Json frames (the Exec.Ipc codec, reused
   verbatim), executing through the same Campaign.Runner / Loopa.Driver
   paths as the CLI, cache-first when a cache directory is configured.

   The accept loop is deliberately single-threaded: one request runs at
   a time (the request itself parallelizes through the runner's forked
   pool), which makes "graceful SIGTERM" trivial — the in-flight
   request finishes, the loop observes the stop flag, the cache index
   is flushed, the socket is unlinked. A SIGTERM that lands mid-
   campaign is caught by the runner's own handler (Interrupted), which
   this loop translates into an err frame for the client plus its own
   stop flag, since the runner consumed the signal. *)

module J = Util.Json

let c_requests = Obs.Telemetry.counter "service.request"

(* Mirror of the CLI's handle_errors_int classifier: same messages,
   same documented exit codes, shipped to the client instead of
   printed to stderr. *)
let classify = function
  | Frontend.Compile_error e ->
      ("compile error: " ^ Frontend.error_to_string e, 1)
  | Interp.Rvalue.Trap (kind, msg) ->
      ( Printf.sprintf "runtime trap (%s): %s"
          (Interp.Rvalue.trap_kind_to_string kind)
          msg,
        1 )
  | Interp.Rvalue.Runtime_error msg -> ("runtime error: " ^ msg, 1)
  | Invalid_argument msg | Loopa.Config.Bad_config msg -> ("error: " ^ msg, 2)
  | Sys_error msg -> ("system error: " ^ msg, 2)
  | Ir.Verifier.Invalid_ir msg ->
      ("internal error: IR verifier rejected the module: " ^ msg, 3)
  | Loopa.Crosscheck.Unsound msg -> ("internal error: " ^ msg, 3)
  | Campaign.Runner.Interrupted ->
      ("interrupted — daemon is shutting down; checkpointed results flushed", 6)
  | Stack_overflow -> ("internal error: stack overflow", 3)
  | e -> ("internal error: unexpected exception: " ^ Printexc.to_string e, 3)

(* Frame writes tolerate a client that hung up mid-stream: the request
   keeps running (its results still reach the cache), later sends
   become no-ops. *)
let sender conn =
  let alive = ref true in
  fun frame ->
    if !alive then
      try Exec.Ipc.write conn frame
      with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF), _, _)
      -> alive := false

let err_frame msg code =
  J.Obj [ ("ev", J.String "err"); ("message", J.String msg); ("exit", J.Int code) ]

(* ---- request handlers ---- *)

let handle_analyze ~cache send req =
  let str k = Option.bind (J.member k req) J.to_str in
  let geti k d = Option.value ~default:d (Option.bind (J.member k req) J.to_int) in
  let source =
    match str "source" with
    | Some s -> s
    | None -> raise (Invalid_argument "analyze request has no source")
  in
  let config = Option.value ~default:"reduc1-dep1-fn2 HELIX" (str "config") in
  let fuel = geti "fuel" Loopa.Config.default_fuel in
  let loops = geti "loops" 8 in
  let optimize =
    match J.member "optimize" req with Some (J.Bool b) -> b | _ -> false
  in
  let key =
    Cache.key ~source
      ~fingerprint:(Keys.analyze ~config ~fuel ~loops ~optimize)
  in
  let cached_text =
    Option.bind cache (fun c ->
        Option.bind (Cache.find c key) (fun v ->
            Option.bind (J.member "text" v) J.to_str))
  in
  let text, cached =
    match cached_text with
    | Some text -> (text, true)
    | None ->
        let cfg = Loopa.Config.of_string config in
        let a = Loopa.Driver.analyze_source ~fuel ~optimize source in
        let text = Render.report ~show_loops:loops (Loopa.Driver.evaluate a cfg) in
        Option.iter
          (fun c ->
            Cache.store c key
              (J.Obj [ ("kind", J.String "analyze"); ("text", J.String text) ]))
          cache;
        (text, false)
  in
  send
    (J.Obj
       [ ("ev", J.String "done"); ("text", J.String text); ("cached", J.Bool cached) ])

let handle_campaign ~cache send req =
  let geti k d = Option.value ~default:d (Option.bind (J.member k req) J.to_int) in
  let getf k = Option.bind (J.member k req) J.to_float in
  let named =
    match Option.bind (J.member "targets" req) J.to_list with
    | None | Some [] -> raise (Invalid_argument "campaign request has no targets")
    | Some l ->
        List.map
          (fun t ->
            match
              ( Option.bind (J.member "name" t) J.to_str,
                Option.bind (J.member "src" t) J.to_str )
            with
            | Some name, Some src -> (name, src)
            | _ ->
                raise
                  (Invalid_argument "campaign target needs {name, src} strings"))
          l
  in
  let budgets =
    {
      Campaign.Runner.default_budgets with
      Campaign.Runner.fuel = geti "fuel" Campaign.Runner.default_budgets.Campaign.Runner.fuel;
      retries = geti "retries" 1;
      wall_s = getf "wall";
      watchdog_s = getf "watchdog";
    }
  in
  let jobs = geti "jobs" 1 in
  let executor =
    if jobs > 1 then Campaign.Runner.Forked jobs else Campaign.Runner.Serial
  in
  let fingerprint =
    Keys.campaign ~budgets ~configs:Loopa.Config.figure_ladder
  in
  let key_of target =
    let src = List.assoc target named in
    Cache.key ~source:src ~fingerprint
  in
  let cache_find target =
    Option.bind cache (fun c ->
        Option.bind (Cache.find c (key_of target)) (fun v ->
            match Campaign.Runner.result_of_json v with
            | Ok r -> Some { r with Campaign.Runner.target }
            | Error _ -> None))
  in
  let cache_store target r =
    Option.iter
      (fun c -> Cache.store c (key_of target) (Campaign.Runner.result_to_json r))
      cache
  in
  let ckpt = Filename.temp_file "loopa-daemon" ".ckpt" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove ckpt with Sys_error _ -> ())
    (fun () ->
      let log line = send (J.Obj [ ("ev", J.String "log"); ("line", J.String line) ]) in
      let heartbeat hb =
        send
          (J.Obj
             [
               ("ev", J.String "hb");
               ("line", J.String (Campaign.Runner.heartbeat_line hb));
             ])
      in
      let summary =
        Campaign.Runner.run ~budgets ~checkpoint:ckpt ~log ~heartbeat ~executor
          ~cache_find ~cache_store named
      in
      let checkpoint_bytes =
        In_channel.with_open_text ckpt In_channel.input_all
      in
      send
        (J.Obj
           [
             ("ev", J.String "done");
             ("summary", J.String (Render.campaign_summary summary));
             ("checkpoint", J.String checkpoint_bytes);
             ("cached", J.Int summary.Campaign.Runner.n_cached);
             ("total", J.Int (List.length summary.Campaign.Runner.results));
           ]))

(* ---- the daemon ---- *)

let serve ~socket ?cache_dir ?cache_max_bytes ?metrics_port
    ?(log = prerr_endline) () =
  (* telemetry is always on in the daemon: /metrics must have content,
     and cache.hit/miss counters must move even for socket requests *)
  Obs.Telemetry.enable ();
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let cache = Option.map (Cache.open_dir ?max_bytes:cache_max_bytes) cache_dir in
  let srv = Option.map (fun port -> Prof.Serve.start ~port ()) metrics_port in
  Option.iter
    (fun s -> log (Printf.sprintf "daemon: metrics on http://127.0.0.1:%d/metrics" (Prof.Serve.port s)))
    srv;
  let stop = ref false in
  let on_signal = Sys.Signal_handle (fun _ -> stop := true) in
  let prev_term = Sys.signal Sys.sigterm on_signal in
  let prev_int = Sys.signal Sys.sigint on_signal in
  (try Unix.unlink socket with Unix.Unix_error _ -> ());
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX socket);
  Unix.listen listen_fd 8;
  log (Printf.sprintf "daemon: listening on %s" socket);
  let publish () =
    Option.iter
      (fun srv ->
        let hits, misses, evictions =
          match cache with Some c -> Cache.stats c | None -> (0, 0, 0)
        in
        let requests = Obs.Telemetry.value c_requests in
        (* aggregate service/cache series under stable plural names, on
           top of the generic counter export *)
        let extra =
          Printf.sprintf
            "# TYPE loopa_service_requests_total counter\n\
             loopa_service_requests_total %d\n\
             # TYPE loopa_cache_hits_total counter\n\
             loopa_cache_hits_total %d\n\
             # TYPE loopa_cache_misses_total counter\n\
             loopa_cache_misses_total %d\n\
             # TYPE loopa_cache_evictions_total counter\n\
             loopa_cache_evictions_total %d\n"
            requests hits misses evictions
        in
        let status =
          J.Obj
            ([
               ("command", J.String "serve");
               ("requests", J.Int requests);
               ("cache_hits", J.Int hits);
               ("cache_misses", J.Int misses);
               ("cache_evictions", J.Int evictions);
             ]
            @
            match cache with
            | Some c ->
                [
                  ("cache_entries", J.Int (Cache.n_entries c));
                  ("cache_bytes", J.Int (Cache.size_bytes c));
                ]
            | None -> [])
        in
        Prof.Serve.publish srv ~metrics:(Obs.Export.prometheus () ^ extra) ~status)
      srv
  in
  publish ();
  let handle_connection conn =
    let send = sender conn in
    match Exec.Ipc.read conn with
    | Exec.Ipc.Eof -> ()
    | exception Exec.Ipc.Protocol_error m ->
        send (err_frame ("bad request frame: " ^ m) 2)
    | Exec.Ipc.Msg req -> (
        Obs.Telemetry.incr c_requests;
        match Option.bind (J.member "op" req) J.to_str with
        | Some "ping" -> send (J.Obj [ ("ev", J.String "pong") ])
        | Some "analyze" -> handle_analyze ~cache send req
        | Some "campaign" -> handle_campaign ~cache send req
        | Some op -> send (err_frame (Printf.sprintf "unknown op %S" op) 2)
        | None -> send (err_frame "request frame has no op" 2))
  in
  let accept_loop () =
    while not !stop do
      match Unix.select [ listen_fd ] [] [] 0.25 with
      | [], _, _ -> ()
      | _ :: _, _, _ ->
          let conn, _ = Unix.accept listen_fd in
          let send = sender conn in
          (try handle_connection conn with
          | Campaign.Runner.Interrupted ->
              (* the runner's handler ate the signal — honour it here *)
              stop := true;
              let msg, code = classify Campaign.Runner.Interrupted in
              send (err_frame msg code)
          | e ->
              let msg, code = classify e in
              send (err_frame msg code));
          (try Unix.close conn with Unix.Unix_error _ -> ());
          publish ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    done
  in
  Fun.protect
    ~finally:(fun () ->
      Sys.set_signal Sys.sigterm prev_term;
      Sys.set_signal Sys.sigint prev_int;
      (try Unix.close listen_fd with Unix.Unix_error _ -> ());
      (try Unix.unlink socket with Unix.Unix_error _ -> ());
      Option.iter Cache.flush cache;
      Option.iter Prof.Serve.stop srv;
      log "daemon: drained, cache index flushed, bye")
    accept_loop
