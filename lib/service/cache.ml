(* Content-addressed on-disk result cache (see the .mli).

   Entries are single JSON documents named <key>.json where the key is a
   64-bit FNV-1a hash (hex) over (source bytes, knob fingerprint, code
   revision). Writes go through a temp file in the same directory plus
   rename(2), so concurrent writers of the same key race atomically —
   last rename wins, readers never observe a partial document. Loads are
   corruption-tolerant by contract: anything that fails to read, parse
   or self-identify is a miss (and the poisoned file is dropped), never
   a crash — a cache must not be able to take the pipeline down.

   Eviction is size-capped LRU over an in-memory recency table seeded
   from file mtimes at open; the table is per-handle bookkeeping, the
   files are the truth. *)

module Json = Util.Json

(* hit/miss/evict observability; no-ops while telemetry is disabled *)
let c_hit = Obs.Telemetry.counter "cache.hit"
let c_miss = Obs.Telemetry.counter "cache.miss"
let c_evict = Obs.Telemetry.counter "cache.evict"

let default_max_bytes = 256 * 1024 * 1024

type entry = { mutable size : int; mutable tick : int }

type t = {
  dir : string;
  max_bytes : int;
  entries : (string, entry) Hashtbl.t;
  mutable total : int;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let code_rev () =
  match Sys.getenv_opt "LOOPA_GIT_REV" with
  | Some r when r <> "" -> r
  | _ -> "unknown"

(* ---- key derivation ---- *)

let fnv1a64 (s : string) : int64 =
  let prime = 0x100000001B3L in
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) prime)
    s;
  !h

let key ~source ~fingerprint =
  (* NUL separators: no (source, fingerprint) pair can collide with a
     shifted split of another, and neither field contains NUL *)
  Printf.sprintf "%016Lx"
    (fnv1a64 (String.concat "\x00" [ source; fingerprint; code_rev () ]))

(* ---- store ---- *)

let is_entry_name name =
  String.length name = 21
  && Filename.check_suffix name ".json"
  && String.for_all
       (function 'a' .. 'f' | '0' .. '9' -> true | _ -> false)
       (String.sub name 0 16)

let entry_path t k = Filename.concat t.dir (k ^ ".json")

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    try Unix.mkdir dir 0o755
    with Unix.Unix_error ((Unix.EEXIST | Unix.EISDIR), _, _) -> ()
  end

let open_dir ?(max_bytes = default_max_bytes) dir =
  mkdir_p dir;
  let t =
    {
      dir;
      max_bytes;
      entries = Hashtbl.create 64;
      total = 0;
      clock = 0;
      hits = 0;
      misses = 0;
      evictions = 0;
    }
  in
  (* seed recency from mtimes: oldest files get the lowest ticks *)
  let files =
    Sys.readdir dir |> Array.to_list
    |> List.filter is_entry_name
    |> List.filter_map (fun name ->
           match Unix.stat (Filename.concat dir name) with
           | st -> Some (Filename.chop_suffix name ".json", st)
           | exception Unix.Unix_error _ -> None)
    |> List.sort (fun (_, a) (_, b) ->
           compare a.Unix.st_mtime b.Unix.st_mtime)
  in
  List.iter
    (fun (k, st) ->
      t.clock <- t.clock + 1;
      Hashtbl.replace t.entries k { size = st.Unix.st_size; tick = t.clock };
      t.total <- t.total + st.Unix.st_size)
    files;
  t

let forget t k =
  match Hashtbl.find_opt t.entries k with
  | Some e ->
      t.total <- t.total - e.size;
      Hashtbl.remove t.entries k
  | None -> ()

let find t k =
  let path = entry_path t k in
  let loaded =
    match In_channel.with_open_bin path In_channel.input_all with
    | s -> (
        match Json.of_string s with
        | Ok j when Json.member "key" j = Some (Json.String k) ->
            Json.member "value" j
        | Ok _ | Error _ -> None)
    | exception Sys_error _ -> None
  in
  match loaded with
  | Some v ->
      t.clock <- t.clock + 1;
      (match Hashtbl.find_opt t.entries k with
      | Some e -> e.tick <- t.clock
      | None ->
          (* stored by another process since open: adopt it *)
          let size =
            match Unix.stat path with
            | st -> st.Unix.st_size
            | exception Unix.Unix_error _ -> 0
          in
          Hashtbl.replace t.entries k { size; tick = t.clock };
          t.total <- t.total + size);
      t.hits <- t.hits + 1;
      Obs.Telemetry.incr c_hit;
      Some v
  | None ->
      (* a bad entry is a miss, never a crash; drop the poisoned file so
         the next store starts clean *)
      if Sys.file_exists path then (try Sys.remove path with Sys_error _ -> ());
      forget t k;
      t.misses <- t.misses + 1;
      Obs.Telemetry.incr c_miss;
      None

let evict_over_cap t ~keep =
  let victim () =
    Hashtbl.fold
      (fun k e best ->
        if k = keep then best
        else
          match best with
          | Some (_, be) when be.tick <= e.tick -> best
          | _ -> Some (k, e))
      t.entries None
  in
  let rec go () =
    if t.total > t.max_bytes then
      match victim () with
      | None -> () (* nothing but [keep] left: the cap yields *)
      | Some (k, _) ->
          (try Sys.remove (entry_path t k) with Sys_error _ -> ());
          forget t k;
          t.evictions <- t.evictions + 1;
          Obs.Telemetry.incr c_evict;
          go ()
  in
  go ()

let store t k v =
  let body =
    Json.to_string
      (Json.Obj
         [
           ("key", Json.String k);
           ("rev", Json.String (code_rev ()));
           ("value", v);
         ])
  in
  let tmp =
    Filename.concat t.dir (Printf.sprintf ".tmp.%d.%s" (Unix.getpid ()) k)
  in
  Out_channel.with_open_bin tmp (fun oc -> Out_channel.output_string oc body);
  Unix.rename tmp (entry_path t k);
  t.clock <- t.clock + 1;
  let size = String.length body in
  (match Hashtbl.find_opt t.entries k with
  | Some e ->
      t.total <- t.total - e.size + size;
      e.size <- size;
      e.tick <- t.clock
  | None ->
      Hashtbl.replace t.entries k { size; tick = t.clock };
      t.total <- t.total + size);
  evict_over_cap t ~keep:k

(* ---- introspection ---- *)

let stats t = (t.hits, t.misses, t.evictions)

let size_bytes t = t.total

let n_entries t = Hashtbl.length t.entries

let flush t =
  let entries =
    Hashtbl.fold
      (fun k e acc ->
        Json.Obj [ ("key", Json.String k); ("bytes", Json.Int e.size) ] :: acc)
      t.entries []
  in
  let doc =
    Json.Obj
      [
        ("entries", Json.List entries);
        ("total_bytes", Json.Int t.total);
        ("max_bytes", Json.Int t.max_bytes);
        ("hits", Json.Int t.hits);
        ("misses", Json.Int t.misses);
        ("evictions", Json.Int t.evictions);
        ("rev", Json.String (code_rev ()));
      ]
  in
  let tmp = Filename.concat t.dir (Printf.sprintf ".tmp.%d.index" (Unix.getpid ())) in
  Out_channel.with_open_bin tmp (fun oc ->
      Out_channel.output_string oc (Json.to_string doc));
  Unix.rename tmp (Filename.concat t.dir "index.json")
