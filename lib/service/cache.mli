(** Content-addressed on-disk result cache.

    Keys are stable hashes of {e what determines the result}: the
    Looplang source bytes, an analysis knob fingerprint ({!Keys}), and
    the code revision ([LOOPA_GIT_REV], "unknown" when unset) — so a
    source edit, a knob change or a rebuild each miss cleanly, and an
    unchanged re-run is a pure disk read that skips compile+classify
    entirely.

    Durability contract: one JSON document per entry, written to a temp
    file in the cache directory and [rename(2)]d into place — concurrent
    writers of the same key race atomically (last rename wins) and a
    reader never observes a partial document. A bad entry — unreadable,
    unparseable, or not self-identifying with its own key — is a {e miss},
    never a crash, and the poisoned file is dropped.

    Eviction is size-capped LRU (recency seeded from file mtimes at
    {!open_dir}, tracked in memory per handle afterwards).

    Telemetry: [cache.hit] / [cache.miss] / [cache.evict] counters
    through {!Obs.Telemetry} (no-ops while telemetry is disabled),
    plus per-handle {!stats}. *)

type t

(** 256 MiB. *)
val default_max_bytes : int

(** Open (creating if needed, parents included) a cache directory. *)
val open_dir : ?max_bytes:int -> string -> t

(** [key ~source ~fingerprint] — 16 hex chars; includes [LOOPA_GIT_REV].
    Pure apart from the environment read. *)
val key : source:string -> fingerprint:string -> string

(** The cached value for a key, bumping its recency — or [None] on any
    kind of miss (absent, corrupt, foreign). *)
val find : t -> string -> Util.Json.t option

(** Atomically write (or overwrite) an entry, then evict
    least-recently-used entries while the store exceeds its cap. *)
val store : t -> string -> Util.Json.t -> unit

(** [(hits, misses, evictions)] observed through this handle. *)
val stats : t -> int * int * int

val size_bytes : t -> int
val n_entries : t -> int

(** Persist a diagnostic [index.json] (entry list, totals, hit/miss
    counts) into the cache directory — atomically, like entries. The
    index is informational: nothing reads it back, so a stale one is
    harmless. Called by the daemon on graceful shutdown. *)
val flush : t -> unit
