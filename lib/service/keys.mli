(** Knob fingerprints for {!Cache} keys — one per cacheable verb. Every
    flag that can change the bytes of a cached result is folded in, so
    equal keys imply equal output; each fingerprint carries a version
    tag that is bumped when the pipeline or a renderer changes meaning.
    Shared by the CLI and the daemon so both sides of a warm request
    derive the same key. *)

val analyze :
  config:string -> fuel:int -> loops:int -> optimize:bool -> string

val sweep : fuel:int -> string

(** [budgets.watchdog_s] is deliberately excluded: it only shapes
    timeout ([Errored]) outcomes, and errored results are never
    cached. *)
val campaign :
  budgets:Campaign.Runner.budgets -> configs:Loopa.Config.t list -> string
