(** The persistent analysis daemon ([loopapalooza serve]).

    Protocol: one connection = one request, as length-prefixed
    {!Util.Json} frames over a Unix-domain socket ({!Exec.Ipc}'s codec,
    reused verbatim). Requests: [{"op":"ping"}], [{"op":"analyze", ...}]
    ({!Client.analyze_request}), [{"op":"campaign", ...}]
    ({!Client.campaign_request}). Replies stream [{"ev":"log"}] /
    [{"ev":"hb"}] progress frames and terminate with [{"ev":"done"}]
    (rendered text bytes, via {!Render}) or [{"ev":"err"}] (message +
    the same exit code the CLI would have used).

    With a cache directory configured, analyze and campaign requests are
    served cache-first through {!Cache} using the same {!Keys}
    fingerprints as the CLI, so daemon and CLI warm each other.

    Requests execute one at a time; SIGTERM/SIGINT drain the in-flight
    request, flush the cache index, unlink the socket and return. A
    signal landing mid-campaign surfaces as an err frame (exit 6) to
    the client, then the daemon stops. Metrics ([/metrics], [/status])
    are republished after every request via {!Prof.Serve} when
    [metrics_port] is given. *)

(** Never returns until a SIGTERM/SIGINT has been honoured. Enables
    telemetry unconditionally. [log] defaults to stderr. *)
val serve :
  socket:string ->
  ?cache_dir:string ->
  ?cache_max_bytes:int ->
  ?metrics_port:int ->
  ?log:(string -> unit) ->
  unit ->
  unit
