(* The far side of a TCP worker link: dial the coordinator, read one
   init frame describing the job (campaign or sweep), then speak the
   ordinary pool worker protocol over the same socket via
   Exec.Pool.serve_loop. Campaign init decoding lives with the runner
   (Campaign.Runner.remote_work_of_init) so the task body is the same
   code local forked workers run; the sweep codec lives here because
   sweep's task body is four rendered table cells, a CLI-level concern. *)

module J = Util.Json

let to_bool = function J.Bool b -> Some b | _ -> None

(* Must mirror the CLI sweep's row rendering exactly: the coordinator
   splices these cells into the same table whether the rung was
   evaluated locally or remotely. *)
let sweep_row (r : Loopa.Evaluate.report) =
  [
    Loopa.Config.name r.Loopa.Evaluate.config;
    Printf.sprintf "%.2f" r.Loopa.Evaluate.speedup;
    Printf.sprintf "%.1f" r.Loopa.Evaluate.coverage_pct;
    Printf.sprintf "%.1f" r.Loopa.Evaluate.static_coverage_pct;
  ]

let sweep_init_json ~fuel ~configs ~src =
  J.Obj
    [
      ("op", J.String "sweep-init");
      ("src", J.String src);
      ("fuel", J.Int fuel);
      ("telemetry", J.Bool (Obs.Telemetry.enabled ()));
      ( "configs",
        J.List (List.map (fun c -> J.String (Loopa.Config.name c)) configs) );
    ]

let sweep_work_of_init j =
  match Option.bind (J.member "op" j) J.to_str with
  | Some "sweep-init" -> (
      match Option.bind (J.member "src" j) J.to_str with
      | None -> Error "sweep-init frame has no src"
      | Some src -> (
          let fuel =
            Option.value ~default:Loopa.Config.default_fuel
              (Option.bind (J.member "fuel" j) J.to_int)
          in
          let names =
            match Option.bind (J.member "configs" j) J.to_list with
            | Some l -> List.filter_map J.to_str l
            | None -> []
          in
          if
            Option.value ~default:false
              (Option.bind (J.member "telemetry" j) to_bool)
          then Obs.Telemetry.enable ();
          match List.map Loopa.Config.of_string names with
          | exception Loopa.Config.Bad_config m ->
              Error ("sweep-init carries a bad config: " ^ m)
          | [] -> Error "sweep-init carries no configs"
          | configs ->
              let configs = Array.of_list configs in
              (* one analysis per connection; every rung evaluates against it *)
              let a = Loopa.Driver.analyze_source ~fuel src in
              Ok
                (fun payload ->
                  let k = Option.value ~default:0 (J.to_int payload) in
                  J.List
                    (List.map
                       (fun s -> J.String s)
                       (sweep_row (Loopa.Driver.evaluate a configs.(k)))))))
  | _ -> Error "not a sweep-init frame"

let serve_connection fd =
  let init =
    match Exec.Ipc.read fd with
    | Exec.Ipc.Msg j -> j
    | Exec.Ipc.Eof -> failwith "coordinator closed the link before init"
  in
  let work =
    match Option.bind (J.member "op" init) J.to_str with
    | Some "campaign-init" -> Campaign.Runner.remote_work_of_init init
    | Some "sweep-init" -> sweep_work_of_init init
    | Some op -> Error (Printf.sprintf "unknown init op %S" op)
    | None -> Error "init frame has no op"
  in
  match work with
  | Error m -> failwith m
  | Ok work ->
      let epilogue () =
        if Obs.Telemetry.enabled () then Obs.Telemetry.wire_histograms ()
        else J.Null
      in
      Exec.Pool.serve_loop ~rd:fd ~wr:fd ~epilogue ~work ()

let run ~host ~port =
  let fd = Exec.Remote.connect ~host ~port in
  serve_connection fd
