(** The worker side of multi-host sharding ([loopapalooza worker
    --connect host:port]): dial a waiting coordinator, decode its init
    frame, and serve pool tasks over the socket until told to quit (or
    the link drops). The process never survives the connection —
    {!Exec.Pool.serve_loop} [_exit]s on "quit" and on transport loss. *)

(** The four rendered cells of one sweep table row — shared with the
    CLI's local sweep so remote and local rows are byte-identical. *)
val sweep_row : Loopa.Evaluate.report -> string list

(** The init frame a sweep coordinator sends each remote: source bytes,
    fuel, the config ladder by name, and the coordinator's telemetry
    state. *)
val sweep_init_json :
  fuel:int -> configs:Loopa.Config.t list -> src:string -> Util.Json.t

(** Decode a sweep-init frame into the pool [work] function: analyzes
    the source once, then maps rung-index payloads to rendered rows. *)
val sweep_work_of_init :
  Util.Json.t -> (Util.Json.t -> Util.Json.t, string) Stdlib.result

(** Serve one established coordinator link (init frame, then the pool
    protocol). Raises [Failure] on a bad init frame; otherwise never
    returns. *)
val serve_connection : Unix.file_descr -> unit

(** Dial [host:port] ({!Exec.Remote.connect}) and serve. Never returns
    on success. *)
val run : host:string -> port:int -> unit
