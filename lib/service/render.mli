(** Canonical text renderers shared by the local CLI, the cache, and
    the daemon/client pair. The service contract — client output is
    byte-identical to the local CLI — holds by construction because both
    paths call exactly these functions and print the returned string
    verbatim. Both renderers are deterministic for deterministic inputs
    (no clocks, no environment). *)

(** The [analyze] report: config/cost/speedup/coverage block, plus the
    [show_loops] costliest per-loop rows when positive. *)
val report : show_loops:int -> Loopa.Evaluate.report -> string

(** The end-of-campaign summary: per-target table, totals line (with
    resumed-from-checkpoint / served-from-cache notes), failure
    breakdown, per-config geomeans. Contains [wall_s] values, so two
    {e runs} differ textually even when their checkpoints normalize
    identically — byte-identity holds between the daemon's rendering
    and the client's printing of one run, not across runs. *)
val campaign_summary : Campaign.Runner.summary -> string
