(* Canonical text renderers for analysis results, shared by the local
   CLI and the daemon/client pair. "Byte-identical reports" is the
   service contract, and sharing the renderer is how it is kept by
   construction rather than by test: the daemon renders with exactly the
   code the CLI would have used, the client prints the bytes verbatim,
   and cached entries replay the same bytes again. Output is built into
   a string (never printed here) so it can equally go to stdout, into a
   cache entry, or over the wire. *)

let report ~show_loops (r : Loopa.Evaluate.report) : string =
  let b = Buffer.create 512 in
  let pf fmt = Printf.bprintf b fmt in
  pf "config        : %s\n" (Loopa.Config.name r.Loopa.Evaluate.config);
  if r.Loopa.Evaluate.truncated then
    pf "truncated     : yes — a budget ran out; results cover the executed prefix\n";
  pf "serial cost   : %d dynamic IR instructions\n" r.Loopa.Evaluate.total_cost;
  pf "parallel cost : %.0f\n" r.Loopa.Evaluate.parallel_cost;
  pf "limit speedup : %.2fx\n" r.Loopa.Evaluate.speedup;
  pf "coverage      : %.1f%% of instructions inside parallel loops\n"
    r.Loopa.Evaluate.coverage_pct;
  pf "static doall  : %.1f%% of instructions inside statically proven loops\n"
    r.Loopa.Evaluate.static_coverage_pct;
  if show_loops > 0 then begin
    let t =
      Report.Table.create
        [ "loop"; "depth"; "invocations"; "parallel"; "serial"; "final"; "speedup" ]
    in
    List.iteri
      (fun i (l : Loopa.Evaluate.loop_result) ->
        if i < show_loops then
          Report.Table.add_row t
            [
              Printf.sprintf "%s/bb%d" l.Loopa.Evaluate.fname l.Loopa.Evaluate.header;
              string_of_int l.Loopa.Evaluate.depth;
              string_of_int l.Loopa.Evaluate.invocations;
              string_of_int l.Loopa.Evaluate.parallel_invocations;
              Printf.sprintf "%.0f" l.Loopa.Evaluate.serial_cost;
              Printf.sprintf "%.0f" l.Loopa.Evaluate.final_cost;
              Printf.sprintf "%.2fx"
                (l.Loopa.Evaluate.serial_cost /. Float.max 1.0 l.Loopa.Evaluate.final_cost);
            ])
      r.Loopa.Evaluate.loops;
    pf "\n%s\n" (Report.Table.render t)
  end;
  Buffer.contents b

let campaign_summary (s : Campaign.Runner.summary) : string =
  let b = Buffer.create 1024 in
  let pf fmt = Printf.bprintf b fmt in
  let t = Report.Table.create [ "target"; "status"; "attempts"; "instrs"; "wall s" ] in
  List.iter
    (fun (r : Campaign.Runner.result) ->
      Report.Table.add_row t
        [
          r.Campaign.Runner.target;
          Campaign.Runner.status_to_string r.Campaign.Runner.status;
          string_of_int r.Campaign.Runner.attempts;
          string_of_int r.Campaign.Runner.clock;
          Printf.sprintf "%.2f" r.Campaign.Runner.wall_s;
        ])
    s.Campaign.Runner.results;
  pf "%s\n" (Report.Table.render t);
  let notes =
    (if s.Campaign.Runner.n_resumed > 0 then
       [ Printf.sprintf "%d resumed from checkpoint" s.Campaign.Runner.n_resumed ]
     else [])
    @
    if s.Campaign.Runner.n_cached > 0 then
      [ Printf.sprintf "%d served from cache" s.Campaign.Runner.n_cached ]
    else []
  in
  pf "\n%d completed, %d truncated, %d failed%s\n" s.Campaign.Runner.n_completed
    s.Campaign.Runner.n_truncated s.Campaign.Runner.n_errored
    (match notes with
    | [] -> ""
    | ns -> Printf.sprintf " (%s)" (String.concat "; " ns));
  if s.Campaign.Runner.failures <> [] then begin
    pf "failure breakdown:\n";
    List.iter (fun (cls, n) -> pf "  %-24s %d\n" cls n) s.Campaign.Runner.failures
  end;
  if s.Campaign.Runner.geomeans <> [] then begin
    let gt = Report.Table.create [ "configuration"; "geomean speedup" ] in
    List.iter
      (fun (c, g) ->
        Report.Table.add_row gt [ Loopa.Config.name c; Printf.sprintf "%.2f" g ])
      s.Campaign.Runner.geomeans;
    pf "\n%s\n" (Report.Table.render gt)
  end;
  Buffer.contents b
