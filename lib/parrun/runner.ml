(* Guarded parallel DOALL execution (see the .mli). The delegate shards an
   eligible loop invocation across forked pool workers; fork gives every
   shard a copy-on-write snapshot of exact loop-entry state, so a shard
   can only diverge from its serial counterpart by reading an address an
   earlier shard wrote — and the access logs expose exactly that. The
   parent commits the combined effect only when the cross-shard conflict
   detector comes back clean; anything else (conflict, loss, timeout,
   trap, short shard, overflow) discards every shard result and lets the
   machine run the untouched loop serially. *)

module C = Loopa.Classify
module Machine = Interp.Machine
module Rvalue = Interp.Rvalue
module Json = Util.Json

(* ---- knobs ---- *)

type knobs = {
  jobs : int;
  min_trip : int;
  round_chunk : int;
  max_rounds : int;
  max_shard_writes : int;
  watchdog_s : float option;
  chaos : Exec.Chaos.shard_plan option;
}

let default_knobs =
  {
    jobs = 2;
    min_trip = 64;
    round_chunk = 256;
    max_rounds = 24;
    max_shard_writes = 1_000_000;
    watchdog_s = None;
    chaos = None;
  }

(* ---- per-loop stats / conflict records ---- *)

type loop_stats = {
  st_fname : string;
  st_lid : int;
  st_header : int;
  mutable st_invocations : int;
  mutable st_declined : int;
  mutable st_sharded : int;
  mutable st_committed : int;
  mutable st_rollbacks : int;
  mutable st_conflicts : int;
  mutable st_shard_failures : int;
  mutable st_rounds : int;
  mutable st_shards : int;
  mutable st_par_wall : float;
}

type conflict_record = {
  cf_fingerprint : string;
  cf_fname : string;
  cf_lid : int;
  cf_header : int;
  cf_message : string;
  cf_bundle : string option;
}

(* ---- eligibility plan ---- *)

(* How to seed a header phi for the shard starting at global body index
   [lo]. Affine: entry + step * lo, exact mod 2^64 because the recurrence
   adds the same step every iteration. Invariant: the entry value.
   Reduction: the operation's identity; partials fold at commit. *)
type step_src = Sconst of int64 | Sexpr of Scev.Expr.t

type phi_plan =
  | Paffine of Ir.Types.value * step_src  (* preheader incoming, step *)
  | Pinv of Ir.Types.value
  | Pred_ of Scev.Recurrence.kind

type elig = {
  el_fname : string;
  el_lid : int;
  el_header : int;
  el_pre : int;  (* preheader block id *)
  el_phis : (int * phi_plan) list;
  el_reds : (int * int * Scev.Recurrence.kind * Ir.Types.value) list;
      (* phi, latch def, kind, preheader incoming (the fold's base) *)
  el_dump : int array;  (* in-loop result ids the commit must fix *)
  el_exit : (Ir.Instr.icmp * int64 * int64 * Scev.Expr.t) option;
      (* normalized header compare: op, start, step, invariant bound *)
  el_trip : int64 option;  (* static arrival count *)
  el_logfree : bool;
      (* body provably writes no memory: shards skip access logging and
         ship no write set (a load-only loop cannot conflict) *)
  el_fp : string;  (* quarantine fingerprint *)
}

type t = {
  target : string;
  source : string;
  knobs : knobs;
  quar : Quarantine.t;
  repro_dir : string option;
  elig : (string * int, elig) Hashtbl.t;
  inelig : (string * int, string) Hashtbl.t;
  stats : (string * int, loop_stats) Hashtbl.t;
  small_memo : (string * int, unit) Hashtbl.t;
      (* unknown-trip loops observed to run too few bodies to shard *)
  mutable confl : conflict_record list;
  mutable dispatches : int;  (* pool dispatches = chaos invocation index *)
  c_invocations : Obs.Telemetry.counter;
  c_sharded : Obs.Telemetry.counter;
  c_committed : Obs.Telemetry.counter;
  c_rollbacks : Obs.Telemetry.counter;
  c_conflicts : Obs.Telemetry.counter;
  c_quarantined : Obs.Telemetry.counter;
  c_shards : Obs.Telemetry.counter;
  c_rounds : Obs.Telemetry.counter;
}

let knobs t = t.knobs
let quarantine t = t.quar
let conflicts t = t.confl

(* ---- reduction algebra (integer kinds only) ---- *)

let red_identity (k : Scev.Recurrence.kind) =
  match k with
  | Scev.Recurrence.Sum -> 0L
  | Scev.Recurrence.Prod -> 1L
  | Scev.Recurrence.Band -> -1L
  | Scev.Recurrence.Bor | Scev.Recurrence.Bxor -> 0L
  | Scev.Recurrence.Min -> Int64.max_int
  | Scev.Recurrence.Max -> Int64.min_int
  | Scev.Recurrence.Fsum | Scev.Recurrence.Fprod | Scev.Recurrence.Fmin
  | Scev.Recurrence.Fmax ->
      assert false (* float reductions are never eligible *)

let red_combine (k : Scev.Recurrence.kind) a b =
  match k with
  | Scev.Recurrence.Sum -> Int64.add a b
  | Scev.Recurrence.Prod -> Int64.mul a b
  | Scev.Recurrence.Band -> Int64.logand a b
  | Scev.Recurrence.Bor -> Int64.logor a b
  | Scev.Recurrence.Bxor -> Int64.logxor a b
  | Scev.Recurrence.Min -> if Int64.compare a b <= 0 then a else b
  | Scev.Recurrence.Max -> if Int64.compare a b >= 0 then a else b
  | Scev.Recurrence.Fsum | Scev.Recurrence.Fprod | Scev.Recurrence.Fmin
  | Scev.Recurrence.Fmax ->
      assert false

let int_reduction (k : Scev.Recurrence.kind) =
  match k with
  | Scev.Recurrence.Fsum | Scev.Recurrence.Fprod | Scev.Recurrence.Fmin
  | Scev.Recurrence.Fmax ->
      false
  | _ -> true

(* ---- eligibility scan ---- *)

let ineligible fmt = Printf.ksprintf (fun s -> Error s) fmt

let entry_operand fn phi pre =
  match Ir.Func.kind fn phi with
  | Ir.Instr.Phi inc ->
      Array.fold_left (fun acc (p, v) -> if p = pre then Some v else acc) None inc
  | _ -> None

let body_instr_ids fn li lid =
  let lp = Cfg.Loopinfo.loop li lid in
  Cfg.Loopinfo.Int_set.fold
    (fun bid acc -> acc @ (Ir.Func.block fn bid).Ir.Func.instr_ids)
    lp.Cfg.Loopinfo.body []

(* No allocation (the heap break is not undone by shard rollback), no
   hidden global state, user calls only when pure. Builtin memory effects
   are fine: arrcopy/arrfill report word accesses through the hooks.

   On success, reports whether the body can write memory at all:
   [Ok false] means no store and no write-effect builtin anywhere in the
   body (pure user calls cannot store, by the purity definition) — a
   load-only loop cannot conflict with itself, so its shards skip access
   logging entirely. *)
let check_body ms fn body_ids =
  List.fold_left
    (fun acc id ->
      match acc with
      | Error _ -> acc
      | Ok can_write -> (
          match Ir.Func.kind fn id with
          | Ir.Instr.Alloc _ -> ineligible "allocation in loop body"
          | Ir.Instr.Ret _ | Ir.Instr.Unreachable ->
              ineligible "function exit inside loop body"
          | Ir.Instr.Store _ -> Ok true
          | Ir.Instr.Call (callee, _) -> (
              match Ir.Builtins.find callee with
              | Some s when s.Ir.Builtins.safety = Ir.Builtins.Global_state ->
                  ineligible "global-state builtin %s in loop body" callee
              | Some s ->
                  Ok (can_write || s.Ir.Builtins.mem = Ir.Builtins.Reads_writes)
              | None -> (
                  match Hashtbl.find_opt ms.C.funcs callee with
                  | Some cs when cs.C.pure -> Ok can_write
                  | Some _ -> ineligible "impure call to %s in loop body" callee
                  | None -> ineligible "call to unknown function %s" callee))
          | _ -> Ok can_write))
    (Ok false) body_ids

let rec expr_has_addrec (e : Scev.Expr.t) =
  match e with
  | Scev.Expr.Add_rec _ -> true
  | Scev.Expr.Add ts | Scev.Expr.Mul ts -> List.exists expr_has_addrec ts
  | Scev.Expr.Const _ | Scev.Expr.Unknown _ | Scev.Expr.Self _
  | Scev.Expr.Cannot ->
      false

(* Evaluable loop-invariantly at the preheader: no recurrences, no
   unresolved self references, no failure leaves. *)
let invariant_evaluable scev ~lid e =
  (not (Scev.Expr.contains_self e))
  && (not (Scev.Expr.contains_cannot e))
  && (not (expr_has_addrec e))
  && Scev.Analysis.is_invariant scev e ~lid

let plan_phi fn scev ~lid ~header ~pre (pi : C.phi_info) :
    (phi_plan * (int * Scev.Recurrence.kind) option, string) result =
  let phi = pi.C.phi_id in
  match entry_operand fn phi pre with
  | None -> ineligible "phi %d has no preheader incoming" phi
  | Some entryv -> (
      match pi.C.cls with
      | C.Non_computable -> ineligible "non-computable phi %d" phi
      | C.Reduction k -> (
          if not (int_reduction k) then
            ineligible "float reduction phi %d (reassociation breaks byte-identity)"
              phi
          else
            match pi.C.latch_def with
            | None -> ineligible "reduction phi %d without latch def" phi
            | Some latch -> Ok (Pred_ k, Some (latch, k)))
      | C.Computable -> (
          match Scev.Analysis.classify_header_phi scev phi with
          | Scev.Analysis.Computable_shifted _ ->
              ineligible "shifted-computable phi %d" phi
          | Scev.Analysis.Non_computable -> ineligible "non-computable phi %d" phi
          | Scev.Analysis.Computable e -> (
              match Scev.Expr.simplify e with
              (* [Add_rec.loop] carries the header block id, not the lid *)
              | Scev.Expr.Add_rec { start = _; step; loop } when loop = header
                -> (
                  if Ir.Func.instr_ty fn phi <> Some Ir.Types.I64 then
                    ineligible "non-integer affine phi %d" phi
                  else
                    match Scev.Expr.simplify step with
                    | Scev.Expr.Const s -> Ok (Paffine (entryv, Sconst s), None)
                    | s when invariant_evaluable scev ~lid s ->
                        Ok (Paffine (entryv, Sexpr s), None)
                    | _ -> ineligible "phi %d steps by a non-invariant amount" phi)
              | e when invariant_evaluable scev ~lid e -> Ok (Pinv entryv, None)
              | _ -> ineligible "phi %d follows a nested or polynomial recurrence" phi)))

(* Everything data-dependent on a reduction's running value must stay
   inside the accumulation chain: a tainted branch, store, call or
   out-of-loop use would make control flow, memory effects or live state
   depend on the running value — which differs under identity-seeded
   partial accumulation even though the folded result does not. *)
let taint_check fn ~header body_ids reds chains =
  if reds = [] then Ok ()
  else begin
    let allowed = Hashtbl.create 32 in
    List.iter
      (fun (phi, latch, _, _) ->
        Hashtbl.replace allowed phi ();
        Hashtbl.replace allowed latch ())
      reds;
    List.iter (fun id -> Hashtbl.replace allowed id ()) chains;
    let tainted = Hashtbl.create 32 in
    List.iter (fun (phi, _, _, _) -> Hashtbl.replace tainted phi ()) reds;
    let body = Array.of_list body_ids in
    let changed = ref true in
    while !changed do
      changed := false;
      Array.iter
        (fun id ->
          if not (Hashtbl.mem tainted id) then
            let ops = Ir.Instr.operands (Ir.Func.kind fn id) in
            if
              List.exists
                (function
                  | Ir.Types.Reg r -> Hashtbl.mem tainted r
                  | _ -> false)
                ops
            then begin
              Hashtbl.replace tainted id ();
              changed := true
            end)
        body
    done;
    let escape =
      Array.fold_left
        (fun acc id ->
          match acc with
          | Some _ -> acc
          | None ->
              if Hashtbl.mem tainted id && not (Hashtbl.mem allowed id) then
                Some id
              else None)
        None body
    in
    match escape with
    | Some id -> ineligible "reduction value escapes its chain (instr %d)" id
    | None ->
        (* The exit arrival executes the header block up to its
           terminator; keeping chain work out of the header means the
           exit shard's latch partial is exactly its completed bodies. *)
        let header_chain =
          List.exists
            (fun id ->
              Hashtbl.mem tainted id
              &&
              match Ir.Func.kind fn id with Ir.Instr.Phi _ -> false | _ -> true)
            (Ir.Func.block fn header).Ir.Func.instr_ids
        in
        if header_chain then
          ineligible "reduction chain instructions in the loop header"
        else begin
          (* out-of-loop uses: only the phi and the latch tip may be live *)
          let in_body = Hashtbl.create 64 in
          Array.iter (fun id -> Hashtbl.replace in_body id ()) body;
          let exit_ok r =
            List.exists (fun (phi, latch, _, _) -> r = phi || r = latch) reds
          in
          let bad =
            Ir.Func.fold_instrs
              (fun acc i ->
                match acc with
                | Some _ -> acc
                | None ->
                    if Hashtbl.mem in_body i.Ir.Instr.id then None
                    else
                      List.fold_left
                        (fun a v ->
                          match (a, v) with
                          | Some _, _ -> a
                          | None, Ir.Types.Reg r
                            when Hashtbl.mem tainted r && not (exit_ok r) ->
                              Some i.Ir.Instr.id
                          | None, _ -> None)
                        None
                        (Ir.Instr.operands i.Ir.Instr.kind))
              None fn
          in
          match bad with
          | Some id ->
              ineligible "reduction intermediate is live outside the loop (instr %d)"
                id
          | None -> Ok ()
        end
  end

(* Reduction loops additionally need every exit to leave from the header:
   a mid-body exit could strand a partially-accumulated iteration the
   commit fold cannot see. *)
let check_red_exits li lid reds =
  if reds = [] then Ok ()
  else
    let lp = Cfg.Loopinfo.loop li lid in
    let bad =
      List.find_opt
        (fun (from_, _) -> from_ <> lp.Cfg.Loopinfo.header)
        (Cfg.Loopinfo.exit_edges li lid)
    in
    match bad with
    | Some (from_, _) ->
        ineligible "reduction loop exits from non-header block %d" from_
    | None -> Ok ()

let exit_info scev fn li lid =
  match Scev.Trip_count.header_compare fn li scev lid with
  | Some (op, (start, step), bound) ->
      let bound = Scev.Expr.simplify bound in
      if invariant_evaluable scev ~lid bound then Some (op, start, step, bound)
      else None
  | None -> None

let scan_loop ~source ms (fs : C.func_static) scev (ls : C.loop_static) :
    (elig, string) result =
  let fn = fs.C.fn and li = fs.C.li in
  let lid = ls.C.lid in
  if not (Cfg.Loopinfo.is_canonical li lid) then
    ineligible "loop is not in canonical form"
  else
    match Cfg.Loopinfo.preheader li lid with
    | None -> ineligible "loop has no preheader"
    | Some pre -> (
        let body_ids = body_instr_ids fn li lid in
        match check_body ms fn body_ids with
        | Error e -> Error e
        | Ok can_write -> (
            (* every header phi needs a seeding plan *)
            let phis = Ir.Func.phis fn ls.C.header in
            let infos = ls.C.phis in
            let plan =
              List.fold_left
                (fun acc (p : Ir.Instr.t) ->
                  match acc with
                  | Error _ -> acc
                  | Ok (plans, reds, chains) -> (
                      let info =
                        Array.to_list infos
                        |> List.find_opt (fun pi -> pi.C.phi_id = p.Ir.Instr.id)
                      in
                      match info with
                      | None -> ineligible "unclassified header phi %d" p.Ir.Instr.id
                      | Some pi -> (
                          match
                            plan_phi fn scev ~lid ~header:ls.C.header ~pre pi
                          with
                          | Error e -> Error e
                          | Ok (pl, red) ->
                              let plans = (p.Ir.Instr.id, pl) :: plans in
                              let reds, chains =
                                match red with
                                | None -> (reds, chains)
                                | Some (latch, k) -> (
                                    match
                                      ( Scev.Recurrence.detect fn li p.Ir.Instr.id,
                                        entry_operand fn p.Ir.Instr.id pre )
                                    with
                                    | Some d, Some ev ->
                                        ( (p.Ir.Instr.id, latch, k, ev) :: reds,
                                          d.Scev.Recurrence.chain @ chains )
                                    | _ -> (reds, chains))
                              in
                              Ok (plans, reds, chains))))
                (Ok ([], [], []))
                phis
            in
            match plan with
            | Error e -> Error e
            | Ok (plans, reds, chains) -> (
                (* a reduction the descriptor no longer recognizes would
                   have slipped past the chain collection *)
                let red_phis =
                  List.filter
                    (fun (_, pl) -> match pl with Pred_ _ -> true | _ -> false)
                    plans
                in
                if List.length red_phis <> List.length reds then
                  ineligible "reduction descriptor no longer matches"
                else
                  match
                    ( taint_check fn ~header:ls.C.header body_ids reds chains,
                      check_red_exits li lid reds )
                  with
                  | Error e, _ | _, Error e -> Error e
                  | Ok (), Ok () ->
                      let dump =
                        List.filter
                          (fun id ->
                            Ir.Instr.has_result (Ir.Func.kind fn id)
                            && Ir.Func.instr_ty fn id <> None)
                          body_ids
                        |> List.sort_uniq compare |> Array.of_list
                      in
                      Ok
                        {
                          el_fname = fs.C.fname;
                          el_lid = lid;
                          el_header = ls.C.header;
                          el_pre = pre;
                          el_phis = List.rev plans;
                          el_reds = List.rev reds;
                          el_dump = dump;
                          el_exit = exit_info scev fn li lid;
                          el_trip = ls.C.trip;
                          el_logfree = not can_write;
                          el_fp =
                            Quarantine.fingerprint ~fname:fs.C.fname
                              ~header:ls.C.header ~source;
                        })))

let create ?(knobs = default_knobs) ?quarantine:(quar = Quarantine.create ())
    ?repro_dir ~target ~source (ms : C.module_static) : t =
  let t =
    {
      target;
      source;
      knobs;
      quar;
      repro_dir;
      elig = Hashtbl.create 16;
      inelig = Hashtbl.create 16;
      stats = Hashtbl.create 16;
      small_memo = Hashtbl.create 16;
      confl = [];
      dispatches = 0;
      c_invocations = Obs.Telemetry.counter "parrun.invocations";
      c_sharded = Obs.Telemetry.counter "parrun.sharded";
      c_committed = Obs.Telemetry.counter "parrun.committed";
      c_rollbacks = Obs.Telemetry.counter "parrun.rollbacks";
      c_conflicts = Obs.Telemetry.counter "parrun.conflicts";
      c_quarantined = Obs.Telemetry.counter "parrun.quarantined";
      c_shards = Obs.Telemetry.counter "parrun.shards";
      c_rounds = Obs.Telemetry.counter "parrun.rounds";
    }
  in
  Hashtbl.iter
    (fun fname (fs : C.func_static) ->
      let scev = lazy (Scev.Analysis.create fs.C.fn fs.C.li) in
      Array.iter
        (fun (ls : C.loop_static) ->
          if ls.C.dep.Deptest.Analysis.verdict = Deptest.Analysis.Proven_doall
          then
            match scan_loop ~source ms fs (Lazy.force scev) ls with
            | Ok el -> Hashtbl.replace t.elig (fname, ls.C.lid) el
            | Error why -> Hashtbl.replace t.inelig (fname, ls.C.lid) why)
        fs.C.loops)
    ms.C.funcs;
  t

let stats_for t (el : elig) =
  let key = (el.el_fname, el.el_lid) in
  match Hashtbl.find_opt t.stats key with
  | Some st -> st
  | None ->
      let st =
        {
          st_fname = el.el_fname;
          st_lid = el.el_lid;
          st_header = el.el_header;
          st_invocations = 0;
          st_declined = 0;
          st_sharded = 0;
          st_committed = 0;
          st_rollbacks = 0;
          st_conflicts = 0;
          st_shard_failures = 0;
          st_rounds = 0;
          st_shards = 0;
          st_par_wall = 0.;
        }
      in
      Hashtbl.replace t.stats key st;
      st

let loop_stats t =
  (* one row per eligible loop, entered or not *)
  Hashtbl.iter (fun _ el -> ignore (stats_for t el)) t.elig;
  Hashtbl.fold (fun _ st acc -> st :: acc) t.stats []
  |> List.sort (fun a b -> compare (a.st_fname, a.st_lid) (b.st_fname, b.st_lid))

let eligibility t =
  let rows =
    Hashtbl.fold (fun k el acc -> (k, Ok el.el_fp) :: acc) t.elig []
  in
  let rows =
    Hashtbl.fold (fun k why acc -> (k, Error why) :: acc) t.inelig rows
  in
  List.sort (fun (a, _) (b, _) -> compare a b) rows

(* ---- rv <-> json (int64s as decimal strings, floats bit-exact) ---- *)

let rv_to_json (v : Rvalue.rv) : Json.t =
  match v with
  | Rvalue.Vint i -> Json.Obj [ ("i", Json.String (Int64.to_string i)) ]
  | Rvalue.Vfloat f ->
      Json.Obj [ ("f", Json.String (Int64.to_string (Int64.bits_of_float f))) ]
  | Rvalue.Vbool b -> Json.Obj [ ("b", Json.Bool b) ]

let rv_of_json (j : Json.t) : Rvalue.rv option =
  let str k = Option.bind (Json.member k j) Json.to_str in
  match (str "i", str "f", Json.member "b" j) with
  | Some s, _, _ -> Int64.of_string_opt s |> Option.map (fun i -> Rvalue.Vint i)
  | None, Some s, _ ->
      Int64.of_string_opt s
      |> Option.map (fun bits -> Rvalue.Vfloat (Int64.float_of_bits bits))
  | None, None, Some (Json.Bool b) -> Some (Rvalue.Vbool b)
  | _ -> None

let ranges_to_json (rs : Conflict.ranges) : Json.t =
  Json.List (List.map (fun (lo, hi) -> Json.List [ Json.Int lo; Json.Int hi ]) rs)

let ranges_of_json (j : Json.t) : Conflict.ranges option =
  match j with
  | Json.List items ->
      let rec go acc = function
        | [] -> Some (Conflict.normalize (List.rev acc))
        | Json.List [ Json.Int lo; Json.Int hi ] :: rest ->
            go ((lo, hi) :: acc) rest
        | _ -> None
      in
      go [] items
  | _ -> None

(* ---- per-invocation resolved seeds ---- *)

type resolved =
  | Rint of int64 * int64  (* affine: entry value, step *)
  | Rconst of Rvalue.rv  (* invariant entry value *)
  | Rident of Scev.Recurrence.kind

let seed_value (res : resolved) lo : Rvalue.rv =
  match res with
  | Rint (base, step) ->
      Rvalue.Vint (Int64.add base (Int64.mul step (Int64.of_int lo)))
  | Rconst v -> v
  | Rident k -> Rvalue.Vint (red_identity k)

(* Resolve every seeding plan against the live frame. None (decline to
   serial) if any value the plans need is not what the plans assumed. *)
let resolve_seeds m (entry : Machine.loop_entry) (el : elig) :
    ((int * resolved) list * (int * int * Scev.Recurrence.kind * int64) list)
    option =
  let eval v =
    Machine.eval_operand m ~regs:entry.Machine.le_regs
      ~args:entry.Machine.le_args v
  in
  let eval_expr e =
    Scev.Expr.eval ~env:(fun v -> Rvalue.as_int (eval v)) ~iters:[] e
  in
  try
    let seeds =
      List.map
        (fun (phi, pl) ->
          match pl with
          | Paffine (entryv, src) ->
              let base = Rvalue.as_int (eval entryv) in
              let step =
                match src with Sconst s -> s | Sexpr e -> eval_expr e
              in
              (phi, Rint (base, step))
          | Pinv entryv -> (phi, Rconst (eval entryv))
          | Pred_ k -> (phi, Rident k))
        el.el_phis
    in
    let raccs =
      List.map
        (fun (phi, latch, k, entryv) ->
          (phi, latch, k, Rvalue.as_int (eval entryv)))
        el.el_reds
    in
    Some (seeds, raccs)
  with Rvalue.Runtime_error _ | Invalid_argument _ -> None

(* Completed loop bodies this invocation will run, when computable at the
   preheader: the static trip, else the normalized header compare
   evaluated against the live frame. Arrivals = bodies + 1. *)
let dyn_bodies m (entry : Machine.loop_entry) (el : elig) : int64 option =
  match el.el_trip with
  | Some arrivals -> Some (Int64.sub arrivals 1L)
  | None -> (
      match el.el_exit with
      | None -> None
      | Some (op, start, step, bound) -> (
          let eval v =
            Rvalue.as_int
              (Machine.eval_operand m ~regs:entry.Machine.le_regs
                 ~args:entry.Machine.le_args v)
          in
          try
            match
              Scev.Trip_count.count_affine ~start ~step
                ~bound:(Scev.Expr.eval ~env:eval ~iters:[] bound)
                ~op
            with
            | Some arrivals when arrivals >= 1L -> Some (Int64.sub arrivals 1L)
            | _ -> None
          with Rvalue.Runtime_error _ | Invalid_argument _ -> None))

(* ---- the worker side of a shard task ---- *)

type shard_report = {
  sr_status : string;  (* ok | trap | budget | error | overflow *)
  sr_msg : string;
  sr_iters : int;
  sr_exit : (int * int) option;
  sr_clock : int;
  sr_accesses : int;
  sr_output : string;
  sr_regs : (int * Rvalue.rv) list;
  sr_writes : (int * Rvalue.rv) list;
  sr_wr : Conflict.ranges;
  sr_rd : Conflict.ranges;
}

(* Runs in the forked worker. The machine image is a snapshot of exact
   loop-entry state; prior-round parent-side writes are applied first
   (and undone after), so later rounds see committed effects. The access
   hooks log the shard's write set (with first-write undo snapshots) and
   its exposed reads; after the range runs, final written values are
   snapshotted and all memory and output mutations rolled back, leaving
   the image clean for the worker's next task. *)
let worker_task m (el : elig) (entry : Machine.loop_entry)
    (seeds : (int * resolved) list) (pre_writes : (int, Rvalue.rv) Hashtbl.t)
    ~max_writes (payload : Json.t) : Json.t =
  let geti k =
    match Option.bind (Json.member k payload) Json.to_int with
    | Some v -> v
    | None -> -1
  in
  let lo = geti "lo" and n = geti "n" in
  let max_iters = if n < 0 then max_int / 2 else n in
  let undo = Hashtbl.create 64 in
  let keep_old a =
    if not (Hashtbl.mem undo a) then Hashtbl.add undo a (Machine.read_word m a)
  in
  Hashtbl.iter
    (fun a v ->
      keep_old a;
      Machine.write_word m a v)
    pre_writes;
  let wset = Hashtbl.create 256 in
  let rset = Hashtbl.create 256 in
  let overflowed = ref false in
  let hooks =
    (* a provably store-free body needs no logging at all: nothing to
       undo, nothing to ship, nothing that could conflict *)
    if el.el_logfree then Interp.Events.no_hooks
    else
      {
        Interp.Events.no_hooks with
        Interp.Events.on_mem_access =
          (fun ~addr ~is_write ~clock:_ ->
            if is_write then begin
              if not (Hashtbl.mem wset addr) then begin
                keep_old addr;
                Hashtbl.replace wset addr ();
                (* abort the shard as soon as the cap is blown — running
                   to completion only delays the inevitable rollback *)
                if Hashtbl.length wset > max_writes then begin
                  overflowed := true;
                  raise
                    (Rvalue.Runtime_error "parrun: shard write-set overflow")
                end
              end
            end
            else if not (Hashtbl.mem wset addr) then Hashtbl.replace rset addr ());
      }
  in
  let c0 = Machine.clock m in
  let a0 = Machine.mem_accesses m in
  let o0 = Machine.output_length m in
  Machine.set_hooks m hooks;
  let regs = Array.copy entry.Machine.le_regs in
  let seed = List.map (fun (phi, res) -> (phi, seed_value res lo)) seeds in
  let status = ref "ok" and msg = ref "" in
  let res =
    try
      Some
        (Machine.run_loop_range m ~fname:entry.Machine.le_fname ~regs
           ~args:entry.Machine.le_args ~header:el.el_header ~pred:el.el_pre
           ~seed ~max_iters)
    with
    | Rvalue.Trap (k, tm) ->
        status := "trap";
        msg := Rvalue.trap_kind_to_string k ^ ": " ^ tm;
        None
    | Rvalue.Budget_stop k ->
        status := "budget";
        msg := Rvalue.budget_kind_to_string k;
        None
    | Rvalue.Runtime_error e ->
        status := "error";
        msg := e;
        None
  in
  Machine.set_hooks m Interp.Events.no_hooks;
  let clock_d = Machine.clock m - c0 in
  let acc_d = Machine.mem_accesses m - a0 in
  let out_d = Machine.output_since m o0 in
  Machine.truncate_output m o0;
  if !overflowed || (Hashtbl.length wset > max_writes && !status = "ok") then begin
    status := "overflow";
    msg := Printf.sprintf "%d distinct written words" (Hashtbl.length wset)
  end;
  let waddrs = List.sort compare (Hashtbl.fold (fun a () l -> a :: l) wset []) in
  let raddrs = List.sort compare (Hashtbl.fold (fun a () l -> a :: l) rset []) in
  let writes =
    if !status = "ok" then List.map (fun a -> (a, Machine.read_word m a)) waddrs
    else []
  in
  Hashtbl.iter (fun a v -> Machine.write_word m a v) undo;
  let iters, exit_ =
    match res with
    | Some rr -> (rr.Machine.rr_iters, rr.Machine.rr_exit)
    | None -> (0, None)
  in
  Json.Obj
    [
      ("status", Json.String !status);
      ("msg", Json.String !msg);
      ("iters", Json.Int iters);
      ("exit_pred", Json.Int (match exit_ with Some (p, _) -> p | None -> -1));
      ( "exit_target",
        Json.Int (match exit_ with Some (_, tg) -> tg | None -> -1) );
      ("clock", Json.Int clock_d);
      ("accesses", Json.Int acc_d);
      ("output", Json.String out_d);
      ( "regs",
        Json.List
          (if !status = "ok" then
             Array.to_list el.el_dump
             |> List.map (fun id ->
                    Json.List [ Json.Int id; rv_to_json regs.(id) ])
           else []) );
      ( "writes",
        Json.List
          (List.map
             (fun (a, v) -> Json.List [ Json.Int a; rv_to_json v ])
             writes) );
      ("wr", ranges_to_json (Conflict.of_sorted_addrs waddrs));
      ("rd", ranges_to_json (Conflict.of_sorted_addrs raddrs));
    ]

let parse_report (j : Json.t) : shard_report option =
  let str k = Option.bind (Json.member k j) Json.to_str in
  let int k = Option.bind (Json.member k j) Json.to_int in
  let id_rv_list k =
    match Json.member k j with
    | Some (Json.List items) ->
        let rec go acc = function
          | [] -> Some (List.rev acc)
          | Json.List [ Json.Int id; rj ] :: rest -> (
              match rv_of_json rj with
              | Some v -> go ((id, v) :: acc) rest
              | None -> None)
          | _ -> None
        in
        go [] items
    | _ -> None
  in
  match
    ( str "status",
      int "iters",
      int "exit_pred",
      int "exit_target",
      int "clock",
      int "accesses",
      str "output",
      id_rv_list "regs",
      id_rv_list "writes",
      Option.bind (Json.member "wr" j) ranges_of_json,
      Option.bind (Json.member "rd" j) ranges_of_json )
  with
  | ( Some status,
      Some iters,
      Some ep,
      Some et,
      Some clock,
      Some accesses,
      Some output,
      Some regs,
      Some writes,
      Some wr,
      Some rd ) ->
      Some
        {
          sr_status = status;
          sr_msg = Option.value ~default:"" (str "msg");
          sr_iters = iters;
          sr_exit = (if ep >= 0 && et >= 0 then Some (ep, et) else None);
          sr_clock = clock;
          sr_accesses = accesses;
          sr_output = output;
          sr_regs = regs;
          sr_writes = writes;
          sr_wr = wr;
          sr_rd = rd;
        }
  | _ -> None

(* ---- conflict bookkeeping ---- *)

let sanitize_name s =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' -> c
      | _ -> '_')
    s

let rec mkdir_p d =
  if d <> "" && d <> "." && d <> "/" && not (Sys.file_exists d) then begin
    mkdir_p (Filename.dirname d);
    try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let emit_bundle t (el : elig) msg : string option =
  match t.repro_dir with
  | None -> None
  | Some dir -> (
      try
        mkdir_p dir;
        let b =
          Repro.Bundle.make ~target:t.target ~stage:Loopa.Driver.Parrun
            ~fingerprint:el.el_fp ~message:msg ~source:t.source ()
        in
        let file =
          sanitize_name
            (Printf.sprintf "%s_%s_bb%d" t.target el.el_fname el.el_header)
          ^ ".repro.json"
        in
        let path = Filename.concat dir file in
        Repro.Bundle.save path b;
        Some path
      with Sys_error _ | Unix.Unix_error _ -> None)

let handle_conflict t (st : loop_stats) (el : elig) (c : Conflict.conflict) =
  st.st_conflicts <- st.st_conflicts + 1;
  Obs.Telemetry.add t.c_conflicts 1;
  let detail = Conflict.conflict_to_string c in
  let msg =
    Printf.sprintf
      "guarded DOALL execution of %s loop %d (header bb%d): %s — verdict \
       quarantined, invocation rolled back to serial"
      el.el_fname el.el_lid el.el_header detail
  in
  let added =
    Quarantine.add t.quar
      {
        Quarantine.fingerprint = el.el_fp;
        target = t.target;
        fname = el.el_fname;
        lid = el.el_lid;
        header = el.el_header;
        reason = detail;
      }
  in
  if added then Obs.Telemetry.add t.c_quarantined 1;
  let bundle = if added then emit_bundle t el msg else None in
  t.confl <-
    t.confl
    @ [
        {
          cf_fingerprint = el.el_fp;
          cf_fname = el.el_fname;
          cf_lid = el.el_lid;
          cf_header = el.el_header;
          cf_message = msg;
          cf_bundle = bundle;
        };
      ]

(* ---- the sharded invocation ---- *)

type round_verdict =
  | Rcommit of int * int * (int * Rvalue.rv) list
      (* exit pred, exit target, final regs *)
  | Rcontinue
  | Rconflict of Conflict.conflict
  | Rfail of string

let shard_invocation t m (st : loop_stats) (el : elig)
    (entry : Machine.loop_entry) seeds raccs (bodies : int option) :
    Machine.loop_commit option =
  st.st_sharded <- st.st_sharded + 1;
  Obs.Telemetry.add t.c_sharded 1;
  let fuel_left = Machine.fuel m - Machine.clock m in
  let s = t.knobs.jobs in
  (* invocation-scoped accumulators: effects of absorbed rounds *)
  let acc_writes : (int, Rvalue.rv) Hashtbl.t = Hashtbl.create 256 in
  let acc_out = Buffer.create 256 in
  let acc_clock = ref 0 in
  let acc_acc = ref 0 in
  let total_bodies = ref 0 in
  let base = ref 0 in
  let raccs =
    List.map (fun (phi, latch, k, a0) -> (phi, latch, k, ref a0)) raccs
  in
  let deadline =
    match t.knobs.watchdog_s with
    | Some _ as d -> d
    | None -> if t.knobs.chaos <> None then Some 5.0 else None
  in
  let run_round (tasks : (int * int) array) : round_verdict =
    let seq = t.dispatches in
    t.dispatches <- t.dispatches + 1;
    st.st_rounds <- st.st_rounds + 1;
    Obs.Telemetry.add t.c_rounds 1;
    let nshards = Array.length tasks in
    st.st_shards <- st.st_shards + nshards;
    Obs.Telemetry.add t.c_shards nshards;
    let chaos =
      Option.map
        (fun plan ->
          Exec.Chaos.explicit
            (List.filter_map
               (fun sh ->
                 Option.map
                   (fun f -> (sh, f))
                   (Exec.Chaos.shard_fault plan ~invocation:seq ~shard:sh))
               (List.init nshards Fun.id)))
        t.knobs.chaos
    in
    let payloads =
      Array.mapi
        (fun i (lo, n) ->
          Json.Obj
            [ ("shard", Json.Int i); ("lo", Json.Int lo); ("n", Json.Int n) ])
        tasks
    in
    let work =
      worker_task m el entry seeds acc_writes
        ~max_writes:t.knobs.max_shard_writes
    in
    let outs, _pstats =
      Exec.Pool.run ~jobs:nshards ~max_chunk:1
        ~worker_init:(fun () ->
          Machine.set_delegate m None;
          (* Shard workers are short-lived and share the parent image
             copy-on-write: every major-GC mark writes into block headers
             across the inherited heap, forcing the kernel to copy it page
             by page. Trade memory for pages: a big minor heap and a lazy
             major make a worker's GC touch as little of the snapshot as
             possible. *)
          Gc.set
            {
              (Gc.get ()) with
              Gc.minor_heap_size = 8 * 1024 * 1024;
              space_overhead = 800;
            })
        ?task_deadline_s:deadline ?chaos ~work payloads
    in
    let reports =
      Array.map
        (function
          | Some (Exec.Pool.Done j) -> parse_report j
          | Some (Exec.Pool.Lost _) | Some (Exec.Pool.Timed_out _) | None ->
              None)
        outs
    in
    (* Shards past the first exiting / failing shard ran iterations the
       serial execution never reaches: they are discarded unconditionally
       and their accesses are not conflict evidence. *)
    let limit = ref (nshards - 1) in
    for sh = nshards - 1 downto 0 do
      match reports.(sh) with
      | None -> limit := sh
      | Some r -> if r.sr_status <> "ok" || r.sr_exit <> None then limit := sh
    done;
    for sh = 0 to !limit do
      match reports.(sh) with
      | None -> st.st_shard_failures <- st.st_shard_failures + 1
      | Some r ->
          if r.sr_status <> "ok" then
            st.st_shard_failures <- st.st_shard_failures + 1
    done;
    let live = !limit + 1 in
    let writes =
      Array.init nshards (fun i ->
          if i <= !limit then
            match reports.(i) with Some r -> r.sr_wr | None -> []
          else [])
    in
    let reads =
      Array.init nshards (fun i ->
          if i <= !limit then
            match reports.(i) with Some r -> r.sr_rd | None -> []
          else [])
    in
    match Conflict.detect ~writes ~reads ~n:live with
    | Some c -> Rconflict c
    | None -> (
        (* commit validity over shards 0..limit *)
        let fail = ref None in
        for sh = 0 to !limit do
          if !fail = None then
            match reports.(sh) with
            | None -> fail := Some (Printf.sprintf "shard %d lost or timed out" sh)
            | Some r ->
                if r.sr_status <> "ok" then
                  fail :=
                    Some
                      (Printf.sprintf "shard %d %s: %s" sh r.sr_status r.sr_msg)
                else if sh < !limit || r.sr_exit = None then begin
                  let _, n = tasks.(sh) in
                  if n < 0 then
                    fail :=
                      Some (Printf.sprintf "unbounded shard %d did not exit" sh)
                  else if r.sr_iters <> n then
                    fail :=
                      Some
                        (Printf.sprintf "shard %d ran %d of %d bodies" sh
                           r.sr_iters n)
                end
        done;
        match !fail with
        | Some reason -> Rfail reason
        | None -> (
            let absorb_effects (r : shard_report) =
              Buffer.add_string acc_out r.sr_output;
              acc_clock := !acc_clock + r.sr_clock;
              acc_acc := !acc_acc + r.sr_accesses;
              List.iter
                (fun (a, v) -> Hashtbl.replace acc_writes a v)
                r.sr_writes
            in
            let absorb_full (r : shard_report) =
              absorb_effects r;
              total_bodies := !total_bodies + r.sr_iters;
              List.iter
                (fun (_, latch, k, acc) ->
                  match List.assoc_opt latch r.sr_regs with
                  | Some v -> acc := red_combine k !acc (Rvalue.as_int v)
                  | None -> raise (Rvalue.Runtime_error "latch missing from dump"))
                raccs
            in
            let get sh =
              match reports.(sh) with Some r -> r | None -> assert false
            in
            match (get !limit).sr_exit with
            | None ->
                (* every shard full and clean: absorb the round, keep going *)
                for sh = 0 to !limit do
                  absorb_full (get sh)
                done;
                Rcontinue
            | Some (ep, et) ->
                for sh = 0 to !limit - 1 do
                  absorb_full (get sh)
                done;
                let rk = get !limit in
                (* Reduction exit values: fold the accumulated prefix into
                   the exit shard's identity-seeded partials. A zero-body
                   exit shard never ran the latch tip (chain work is barred
                   from the header), so its latch dump is the stale
                   preheader copy: the serial value there is the full
                   accumulation — or the stale copy itself when the loop
                   ran no bodies at all. *)
                let overrides =
                  List.concat_map
                    (fun (phi, latch, k, acc) ->
                      let pv =
                        match List.assoc_opt phi rk.sr_regs with
                        | Some v -> red_combine k !acc (Rvalue.as_int v)
                        | None ->
                            raise (Rvalue.Runtime_error "phi missing from dump")
                      in
                      let lv =
                        if rk.sr_iters > 0 then
                          match List.assoc_opt latch rk.sr_regs with
                          | Some v -> Some (red_combine k !acc (Rvalue.as_int v))
                          | None ->
                              raise
                                (Rvalue.Runtime_error "latch missing from dump")
                        else if !total_bodies > 0 then Some !acc
                        else None
                      in
                      (phi, Rvalue.Vint pv)
                      ::
                      (match lv with
                      | Some l -> [ (latch, Rvalue.Vint l) ]
                      | None -> []))
                    raccs
                in
                let final_regs =
                  List.map
                    (fun (id, v) ->
                      match List.assoc_opt id overrides with
                      | Some o -> (id, o)
                      | None -> (id, v))
                    rk.sr_regs
                in
                absorb_effects rk;
                total_bodies := !total_bodies + rk.sr_iters;
                Rcommit (ep, et, final_regs)))
  in
  let result =
    match bodies with
    | Some n ->
        (* known trip: one balanced round; the last shard is unbounded so
           it absorbs the exit arrival (and any estimate slack) *)
        let per = max 1 ((n + s - 1) / s) in
        let nb = max 1 ((n + per - 1) / per) in
        let tasks =
          Array.init nb (fun i ->
              let lo = i * per in
              if i = nb - 1 then (lo, -1) else (lo, per))
        in
        run_round tasks
    | None ->
        (* unknown trip: geometric rounds until a shard exits *)
        let rec go round chunk =
          if round >= t.knobs.max_rounds then
            Rfail "round budget exhausted before the loop exited"
          else if !acc_clock >= fuel_left then Rfail "fuel exhausted mid-loop"
          else
            let tasks = Array.init s (fun i -> (!base + (i * chunk), chunk)) in
            match run_round tasks with
            | Rcontinue ->
                base := !base + (s * chunk);
                go (round + 1) (min (chunk * 4) 1_000_000)
            | verdict -> verdict
        in
        go 0 t.knobs.round_chunk
  in
  (* unknown-trip loops that turn out tiny are not worth forking again *)
  if bodies = None && !total_bodies < t.knobs.min_trip then
    Hashtbl.replace t.small_memo (el.el_fname, el.el_lid) ();
  match result with
  | Rcommit (ep, et, final_regs) when !acc_clock <= fuel_left ->
      st.st_committed <- st.st_committed + 1;
      Obs.Telemetry.add t.c_committed 1;
      let writes =
        Hashtbl.fold (fun a v acc -> (a, v) :: acc) acc_writes []
        |> List.sort (fun (a, _) (b, _) -> compare a b)
      in
      Some
        {
          Machine.lc_exit_pred = ep;
          lc_exit_target = et;
          lc_clock = !acc_clock;
          lc_accesses = !acc_acc;
          lc_regs = final_regs;
          lc_writes = writes;
          lc_output = Buffer.contents acc_out;
        }
  | Rcommit _ ->
      (* the committed lump would blow the fuel budget: the serial run
         truncates mid-loop, which only serial execution can reproduce *)
      st.st_rollbacks <- st.st_rollbacks + 1;
      Obs.Telemetry.add t.c_rollbacks 1;
      None
  | Rcontinue ->
      st.st_rollbacks <- st.st_rollbacks + 1;
      Obs.Telemetry.add t.c_rollbacks 1;
      None
  | Rconflict c ->
      handle_conflict t st el c;
      st.st_rollbacks <- st.st_rollbacks + 1;
      Obs.Telemetry.add t.c_rollbacks 1;
      None
  | Rfail _reason ->
      st.st_rollbacks <- st.st_rollbacks + 1;
      Obs.Telemetry.add t.c_rollbacks 1;
      None

let delegate t m (entry : Machine.loop_entry) : Machine.loop_commit option =
  match Hashtbl.find_opt t.elig (entry.Machine.le_fname, entry.Machine.le_lid) with
  | None -> None
  | Some el -> (
      let st = stats_for t el in
      st.st_invocations <- st.st_invocations + 1;
      Obs.Telemetry.add t.c_invocations 1;
      let decline () =
        st.st_declined <- st.st_declined + 1;
        None
      in
      if t.knobs.jobs < 2 then decline ()
      else if Quarantine.mem t.quar el.el_fp then decline ()
      else if entry.Machine.le_pred <> el.el_pre then decline ()
      else if Hashtbl.mem t.small_memo (el.el_fname, el.el_lid) then decline ()
      else
        let t0 = Unix.gettimeofday () in
        let finish r =
          st.st_par_wall <- st.st_par_wall +. (Unix.gettimeofday () -. t0);
          r
        in
        match resolve_seeds m entry el with
        | None -> finish (decline ())
        | Some (seeds, raccs) -> (
            let fuel_left = Machine.fuel m - Machine.clock m in
            match dyn_bodies m entry el with
            | Some n
              when Int64.compare n (Int64.of_int t.knobs.min_trip) < 0 ->
                finish (decline ())
            | Some n when Int64.compare n (Int64.of_int fuel_left) >= 0 ->
                (* the loop cannot finish within fuel; only serial
                   execution reproduces the truncation *)
                finish (decline ())
            | bodies -> (
                let bodies = Option.map Int64.to_int bodies in
                try finish (shard_invocation t m st el entry seeds raccs bodies)
                with
                | Rvalue.Runtime_error _ | Failure _ | Not_found
                | Invalid_argument _
                | Unix.Unix_error _
                ->
                  (* parent-side misbehavior is never fatal: fall back *)
                  st.st_rollbacks <- st.st_rollbacks + 1;
                  Obs.Telemetry.add t.c_rollbacks 1;
                  finish None)))

let install t m = Machine.set_delegate m (Some (delegate t))
