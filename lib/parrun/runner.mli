(** Guarded parallel DOALL execution — the tentpole of the parrun layer.

    The runner installs an {!Interp.Machine.set_delegate} hook that, on a
    fresh entry to an eligible [Proven_doall] loop, shards the iteration
    space across {!Exec.Pool} workers (fork gives every shard a
    copy-on-write snapshot of exact loop-entry state), collects each
    shard's register dump, write set and memory-access log, and — only if
    the parent-side {!Conflict} detector finds the shards independent —
    commits the combined whole-loop effect back to the machine. Any
    conflict, shard loss, timeout, trap or validation failure discards
    every shard result and falls back to in-parent serial execution of the
    untouched loop (rollback is free: shards never mutate parent state).

    Detected conflicts additionally quarantine the loop's verdict
    ({!Quarantine}) and, when [repro_dir] is set, emit a replayable
    misprediction bundle via [Repro.Bundle]. Shard loss and timeouts roll
    back {e without} quarantining: they indict the infrastructure, not the
    verdict.

    Eligibility is static and decided once at {!create}: canonical loops
    whose header phis are affine IVs, loop-invariant, or integer
    reductions, whose bodies allocate nothing and call nothing impure, and
    whose reduction values feed nothing but their own accumulation chains
    (a tainted branch, store or call would make clock or memory effects
    depend on the running value, breaking byte-identity under reassociated
    partial accumulation). *)

type knobs = {
  jobs : int;  (** shards per invocation; < 2 disables sharding *)
  min_trip : int;
      (** smallest known body count worth forking a pool for *)
  round_chunk : int;
      (** per-shard bodies in the first round when the trip is unknown;
          subsequent rounds grow geometrically *)
  max_rounds : int;  (** unknown-trip rounds before giving up (rollback) *)
  max_shard_writes : int;
      (** per-shard distinct-written-words cap; beyond it the shard
          reports overflow and the invocation rolls back *)
  watchdog_s : float option;
      (** per-shard wall deadline, handed to [Exec.Pool] as
          [task_deadline_s]; a stalled shard times out and rolls back *)
  chaos : Exec.Chaos.shard_plan option;
      (** shard-scoped fault injection (tests / soak only) *)
}

val default_knobs : knobs

(** Per-loop counters, updated as the delegate runs. *)
type loop_stats = {
  st_fname : string;
  st_lid : int;
  st_header : int;
  mutable st_invocations : int;  (** fresh entries offered to the delegate *)
  mutable st_declined : int;
      (** entries run serially without forking (small trip, non-integer
          entry state, quarantined, ...) *)
  mutable st_sharded : int;  (** invocations dispatched to the pool *)
  mutable st_committed : int;
  mutable st_rollbacks : int;  (** sharded invocations re-run serially *)
  mutable st_conflicts : int;  (** rollbacks caused by detected conflicts *)
  mutable st_shard_failures : int;
      (** lost / timed-out / trapped / overflowed shards observed *)
  mutable st_rounds : int;
  mutable st_shards : int;  (** shard tasks dispatched *)
  mutable st_par_wall : float;
      (** wall seconds spent inside the delegate (sharding attempts,
          successful or not) *)
}

(** A detected conflict: what was quarantined and where the repro bundle
    landed. *)
type conflict_record = {
  cf_fingerprint : string;
  cf_fname : string;
  cf_lid : int;
  cf_header : int;
  cf_message : string;
  cf_bundle : string option;
}

type t

(** [create ~target ~source ms] scans every [Proven_doall] loop of the
    prepared module for eligibility. [quarantine] (default: empty) carries
    verdicts banned by earlier runs; [repro_dir] enables bundle emission
    on conflicts. *)
val create :
  ?knobs:knobs ->
  ?quarantine:Quarantine.t ->
  ?repro_dir:string ->
  target:string ->
  source:string ->
  Loopa.Classify.module_static ->
  t

(** Install the delegate on a machine. The machine must use default
    (unpruned) watch plans. *)
val install : t -> Interp.Machine.t -> unit

val knobs : t -> knobs
val quarantine : t -> Quarantine.t

(** Conflicts detected so far, in detection order. *)
val conflicts : t -> conflict_record list

(** Stats for every eligible loop (also covers loops never entered),
    sorted by (fname, lid). *)
val loop_stats : t -> loop_stats list

(** Eligibility outcome for every [Proven_doall] loop:
    [Ok fingerprint] or [Error reason], sorted by (fname, lid).

    The runner also feeds [Obs.Telemetry] counters live as it runs:
    [parrun.invocations], [parrun.sharded], [parrun.committed],
    [parrun.rollbacks], [parrun.conflicts], [parrun.quarantined],
    [parrun.shards], [parrun.rounds]. *)
val eligibility : t -> ((string * int) * (string, string) result) list
