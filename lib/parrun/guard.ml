(* Serial-vs-parallel comparison driver (see the .mli). *)

module Machine = Interp.Machine
module Rvalue = Interp.Rvalue
module Driver = Loopa.Driver

type run_outcome =
  | Finished of Machine.outcome
  | Trapped of { msg : string; clock : int; output : string }

type calib_row = {
  cb_fname : string;
  cb_lid : int;
  cb_header : int;
  cb_eligible : bool;
  cb_why : string;
  cb_invocations : int;
  cb_sharded : int;
  cb_committed : int;
  cb_rollbacks : int;
  cb_conflicts : int;
  cb_quarantined : bool;
  cb_serial_s : float;
  cb_parallel_s : float;
  cb_measured : float option;
  cb_predicted : float option;
}

type result = {
  target : string;
  serial : run_outcome;
  parallel : run_outcome;
  identical : bool;
  diffs : string list;
  rows : calib_row list;
  runner : Runner.t;
  serial_wall : float;
  parallel_wall : float;
}

let divergence_failure ~target ~source diffs =
  {
    Driver.stage = Driver.Parrun;
    fingerprint =
      Printf.sprintf "parrun:divergence@%s:%s" target (Driver.hash8 source);
    message =
      Printf.sprintf "parallel run diverged from serial on %s: %s" target
        (String.concat "; " diffs);
  }

(* ---- per-eligible-loop wall timing via the event hooks ----

   The listener tracks the current function with call_enter/exit (loop
   events report lids of the current function) and stamps enter/exit of
   the loops it was asked to time. Committed invocations in the parallel
   pass fire no loop events — their time is the runner's delegate wall,
   added separately. *)

let make_timer (keys : (string * int) list) :
    Interp.Events.hooks * ((string * int, float) Hashtbl.t) =
  let totals : (string * int, float) Hashtbl.t = Hashtbl.create 16 in
  let wanted = Hashtbl.create 16 in
  List.iter (fun k -> Hashtbl.replace wanted k ()) keys;
  let fstack = ref [ "main" ] in
  let tstack = ref [] in
  let current () = match !fstack with f :: _ -> f | [] -> "" in
  let hooks =
    {
      Interp.Events.no_hooks with
      Interp.Events.on_call_enter =
        (fun ~fname ~clock:_ -> fstack := fname :: !fstack);
      on_call_exit =
        (fun ~fname:_ ~clock:_ ->
          match !fstack with _ :: tl -> fstack := tl | [] -> ());
      on_loop_enter =
        (fun ~lid ~clock:_ ->
          let key = (current (), lid) in
          if Hashtbl.mem wanted key then
            tstack := (key, Unix.gettimeofday ()) :: !tstack);
      on_loop_exit =
        (fun ~lid ~clock:_ ->
          match !tstack with
          | ((f, l), t0) :: tl when l = lid && f = current () ->
              tstack := tl;
              let dt = Unix.gettimeofday () -. t0 in
              let prev =
                Option.value ~default:0. (Hashtbl.find_opt totals (f, l))
              in
              Hashtbl.replace totals (f, l) (prev +. dt)
          | _ -> ());
    }
  in
  (hooks, totals)

(* ---- outcome comparison (floats bitwise; NaN payloads count) ---- *)

let rv_str (v : Rvalue.rv) =
  match v with
  | Rvalue.Vint i -> Printf.sprintf "int %Ld" i
  | Rvalue.Vfloat f ->
      Printf.sprintf "float %h (bits %Lx)" f (Int64.bits_of_float f)
  | Rvalue.Vbool b -> Printf.sprintf "bool %b" b

let rv_equal a b =
  match (a, b) with
  | Rvalue.Vfloat x, Rvalue.Vfloat y ->
      Int64.bits_of_float x = Int64.bits_of_float y
  | _ -> a = b

let compare_outcomes (a : run_outcome) (b : run_outcome) : string list =
  let diffs = ref [] in
  let check name eq fmt_a fmt_b =
    if not eq then
      diffs := Printf.sprintf "%s: serial %s, parallel %s" name fmt_a fmt_b :: !diffs
  in
  (match (a, b) with
  | Finished oa, Finished ob ->
      check "return value"
        (match (oa.Machine.ret, ob.Machine.ret) with
        | None, None -> true
        | Some x, Some y -> rv_equal x y
        | _ -> false)
        (match oa.Machine.ret with Some v -> rv_str v | None -> "none")
        (match ob.Machine.ret with Some v -> rv_str v | None -> "none");
      check "stop reason"
        (oa.Machine.stop = ob.Machine.stop)
        (Machine.stop_reason_to_string oa.Machine.stop)
        (Machine.stop_reason_to_string ob.Machine.stop);
      check "clock"
        (oa.Machine.clock = ob.Machine.clock)
        (string_of_int oa.Machine.clock)
        (string_of_int ob.Machine.clock);
      check "output"
        (String.equal oa.Machine.output ob.Machine.output)
        (Printf.sprintf "%d bytes" (String.length oa.Machine.output))
        (Printf.sprintf "%d bytes" (String.length ob.Machine.output));
      check "heap words"
        (oa.Machine.mem_words = ob.Machine.mem_words)
        (string_of_int oa.Machine.mem_words)
        (string_of_int ob.Machine.mem_words);
      check "memory accesses"
        (oa.Machine.mem_accesses = ob.Machine.mem_accesses)
        (string_of_int oa.Machine.mem_accesses)
        (string_of_int ob.Machine.mem_accesses);
      check "memory events"
        (oa.Machine.mem_events = ob.Machine.mem_events)
        (string_of_int oa.Machine.mem_events)
        (string_of_int ob.Machine.mem_events)
  | Trapped ta, Trapped tb ->
      check "trap" (String.equal ta.msg tb.msg) ta.msg tb.msg;
      check "trap clock" (ta.clock = tb.clock) (string_of_int ta.clock)
        (string_of_int tb.clock);
      check "output"
        (String.equal ta.output tb.output)
        (Printf.sprintf "%d bytes" (String.length ta.output))
        (Printf.sprintf "%d bytes" (String.length tb.output))
  | Finished _, Trapped t ->
      diffs :=
        [ Printf.sprintf "serial finished but parallel trapped (%s)" t.msg ]
  | Trapped t, Finished _ ->
      diffs :=
        [ Printf.sprintf "serial trapped (%s) but parallel finished" t.msg ]);
  List.rev !diffs

(* ---- a single pass ---- *)

exception Internal of Driver.failure

let run_pass ~fuel ~hooks ~install (modul : Ir.Func.modul) :
    run_outcome * float =
  let m = Machine.create ~hooks ~fuel modul in
  install m;
  let t0 = Unix.gettimeofday () in
  let out =
    try Finished (Machine.run_main m) with
    | Rvalue.Trap (k, msg) ->
        Trapped
          {
            msg = Rvalue.trap_kind_to_string k ^ ": " ^ msg;
            clock = Machine.clock m;
            output = Machine.output_since m 0;
          }
    | Rvalue.Runtime_error _ as exn ->
        raise (Internal (Driver.crash_failure ~stage:Driver.Parrun exn))
  in
  (out, Unix.gettimeofday () -. t0)

(* ---- predicted DOALL speedups from the cost model ---- *)

let predicted_speedups (ms : Loopa.Classify.module_static) ~fuel :
    (string * int, float) Hashtbl.t =
  let tbl = Hashtbl.create 16 in
  (match Driver.profile_result ~fuel ~static_prune:true ms with
  | Error _ -> ()
  | Ok profile -> (
      match
        Loopa.Evaluate.evaluate profile
          (Loopa.Config.of_string "reduc1-dep0-fn1 DOALL")
      with
      | report ->
          List.iter
            (fun (lr : Loopa.Evaluate.loop_result) ->
              if lr.Loopa.Evaluate.final_cost > 0. then
                Hashtbl.replace tbl
                  (lr.Loopa.Evaluate.fname, lr.Loopa.Evaluate.lid)
                  (lr.Loopa.Evaluate.serial_cost
                  /. lr.Loopa.Evaluate.final_cost))
            report.Loopa.Evaluate.loops
      | exception _ -> ()));
  tbl

(* ---- calibration rows ---- *)

let build_rows (ms : Loopa.Classify.module_static) runner
    (serial_walls : (string * int, float) Hashtbl.t)
    (par_walls : (string * int, float) Hashtbl.t)
    (predicted : (string * int, float) Hashtbl.t) : calib_row list =
  let stats = Runner.loop_stats runner in
  let stat_for key =
    List.find_opt
      (fun (s : Runner.loop_stats) -> (s.Runner.st_fname, s.Runner.st_lid) = key)
      stats
  in
  let header_of (fname, lid) =
    match Hashtbl.find_opt ms.Loopa.Classify.funcs fname with
    | Some fs when lid < Array.length fs.Loopa.Classify.loops ->
        fs.Loopa.Classify.loops.(lid).Loopa.Classify.header
    | _ -> -1
  in
  List.map
    (fun ((key : string * int), verdict) ->
      let fname, lid = key in
      let serial_s =
        Option.value ~default:0. (Hashtbl.find_opt serial_walls key)
      in
      let eligible, why, quarantined =
        match verdict with
        | Ok fp -> (true, "", Quarantine.mem (Runner.quarantine runner) fp)
        | Error why -> (false, why, false)
      in
      let st = stat_for key in
      let get f = match st with Some s -> f s | None -> 0 in
      let committed = get (fun s -> s.Runner.st_committed) in
      let par_hook =
        Option.value ~default:0. (Hashtbl.find_opt par_walls key)
      in
      let par_delegate =
        match st with Some s -> s.Runner.st_par_wall | None -> 0.
      in
      let parallel_s = par_hook +. par_delegate in
      let measured =
        if committed > 0 && serial_s > 0. && parallel_s > 0. then
          Some (serial_s /. parallel_s)
        else None
      in
      {
        cb_fname = fname;
        cb_lid = lid;
        cb_header = header_of key;
        cb_eligible = eligible;
        cb_why = why;
        cb_invocations = get (fun s -> s.Runner.st_invocations);
        cb_sharded = get (fun s -> s.Runner.st_sharded);
        cb_committed = committed;
        cb_rollbacks = get (fun s -> s.Runner.st_rollbacks);
        cb_conflicts = get (fun s -> s.Runner.st_conflicts);
        cb_quarantined = quarantined;
        cb_serial_s = serial_s;
        cb_parallel_s = parallel_s;
        cb_measured = measured;
        cb_predicted = Hashtbl.find_opt predicted key;
      })
    (Runner.eligibility runner)

(* ---- the guarded comparison ---- *)

let run ?knobs ?quarantine ?repro_dir ?(fuel = Loopa.Config.default_fuel)
    ?(predict = true) ~target (source : string) :
    (result, Driver.failure) Stdlib.result =
  match Frontend.compile source with
  | Error e -> Error (Driver.compile_failure e)
  | Ok modul -> (
      match Driver.prepare modul with
      | exception Ir.Verifier.Invalid_ir msg ->
          Error (Driver.verifier_failure ~stage:Driver.Prepare msg)
      | exception exn -> Error (Driver.crash_failure ~stage:Driver.Prepare exn)
      | ms -> (
          let runner =
            Runner.create ?knobs ?quarantine ?repro_dir ~target ~source ms
          in
          let keys = List.map fst (Runner.eligibility runner) in
          try
            let serial_hooks, serial_walls = make_timer keys in
            let serial, serial_wall =
              run_pass ~fuel ~hooks:serial_hooks ~install:(fun _ -> ()) modul
            in
            let par_hooks, par_walls = make_timer keys in
            let parallel, parallel_wall =
              run_pass ~fuel ~hooks:par_hooks
                ~install:(Runner.install runner)
                modul
            in
            let diffs = compare_outcomes serial parallel in
            let predicted =
              if predict then predicted_speedups ms ~fuel
              else Hashtbl.create 1
            in
            let rows = build_rows ms runner serial_walls par_walls predicted in
            Ok
              {
                target;
                serial;
                parallel;
                identical = diffs = [];
                diffs;
                rows;
                runner;
                serial_wall;
                parallel_wall;
              }
          with Internal f -> Error f))

(* ---- bundle replay ---- *)

let replay (b : Repro.Bundle.t) : Repro.Pipeline.verdict =
  let knobs =
    { Runner.default_knobs with Runner.jobs = 2; min_trip = 1; round_chunk = 4 }
  in
  match
    run ~knobs ~fuel:b.Repro.Bundle.fuel ~predict:false
      ~target:b.Repro.Bundle.target b.Repro.Bundle.source
  with
  | Error f ->
      if
        Driver.same_fingerprint f.Driver.fingerprint b.Repro.Bundle.fingerprint
      then Repro.Pipeline.Reproduced
      else Repro.Pipeline.Changed f
  | Ok r -> (
      let confl = Runner.conflicts r.runner in
      if
        List.exists
          (fun (c : Runner.conflict_record) ->
            Driver.same_fingerprint c.Runner.cf_fingerprint
              b.Repro.Bundle.fingerprint)
          confl
      then Repro.Pipeline.Reproduced
      else
        match confl with
        | c :: _ ->
            Repro.Pipeline.Changed
              {
                Driver.stage = Driver.Parrun;
                fingerprint = c.Runner.cf_fingerprint;
                message = c.Runner.cf_message;
              }
        | [] ->
            if not r.identical then
              Repro.Pipeline.Changed
                (divergence_failure ~target:b.Repro.Bundle.target
                   ~source:b.Repro.Bundle.source r.diffs)
            else Repro.Pipeline.Vanished)
