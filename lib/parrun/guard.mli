(** The guarded-execution driver: run a program twice — serial reference,
    then parallel with the {!Runner} delegate installed — and prove the
    outcomes byte-identical. The serial pass times every eligible loop, so
    the comparison doubles as a calibration measurement: measured parallel
    speedup per loop against the cost model's predicted DOALL speedup. *)

(** How a pass ended. Budget truncation is a normal {!Interp.Machine.outcome};
    a program trap is captured (not re-raised) so the two passes can be
    compared on the trapping prefix too. *)
type run_outcome =
  | Finished of Interp.Machine.outcome
  | Trapped of { msg : string; clock : int; output : string }

(** One calibration line per [Proven_doall] loop (eligible or not). *)
type calib_row = {
  cb_fname : string;
  cb_lid : int;
  cb_header : int;
  cb_eligible : bool;
  cb_why : string;  (** ineligibility reason, [""] when eligible *)
  cb_invocations : int;
  cb_sharded : int;
  cb_committed : int;
  cb_rollbacks : int;
  cb_conflicts : int;
  cb_quarantined : bool;
  cb_serial_s : float;  (** wall seconds in the serial pass *)
  cb_parallel_s : float;
      (** wall seconds in the parallel pass: delegate time (sharding,
          commit, failed attempts) plus serial fallback time *)
  cb_measured : float option;
      (** serial/parallel wall ratio, only when at least one invocation
          committed and both walls are positive *)
  cb_predicted : float option;
      (** the cost model's DOALL speedup for this loop
          ([reduc1-dep0-fn1 DOALL] serial/final cost ratio) *)
}

type result = {
  target : string;
  serial : run_outcome;
  parallel : run_outcome;
  identical : bool;  (** byte-identical outcomes (floats compared bitwise) *)
  diffs : string list;  (** human-readable divergence descriptions *)
  rows : calib_row list;  (** sorted by (fname, lid) *)
  runner : Runner.t;
      (** the parallel pass's runner: conflicts, quarantine, loop stats *)
  serial_wall : float;  (** whole-program wall seconds, serial pass *)
  parallel_wall : float;
}

(** A classified failure for a diverging guarded run
    ([parrun:divergence@<target>:<hash8>]). *)
val divergence_failure :
  target:string -> source:string -> string list -> Loopa.Driver.failure

(** Compile, prepare, and run the guarded comparison. [predict] (default
    true) additionally profiles the program once more to score the
    [DOALL] cost model per loop; pass false to skip that third pass.
    Compile/prepare/internal errors come back as classified failures;
    divergence does {e not} — inspect [identical]/[diffs]. *)
val run :
  ?knobs:Runner.knobs ->
  ?quarantine:Quarantine.t ->
  ?repro_dir:string ->
  ?fuel:int ->
  ?predict:bool ->
  target:string ->
  string ->
  (result, Loopa.Driver.failure) Stdlib.result

(** Replay a [Parrun]-stage bundle: re-run the guarded comparison with an
    empty quarantine and aggressive sharding (jobs 2, min_trip 1) and
    check the recorded conflict re-manifests under the same fingerprint. *)
val replay : Repro.Bundle.t -> Repro.Pipeline.verdict
