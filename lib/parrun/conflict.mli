(** Parent-side cross-shard conflict detection for guarded parallel loop
    execution.

    Each shard of a sharded loop invocation reports the memory it wrote
    and the memory it {e exposed-read} (read before writing it itself) as
    sorted disjoint address ranges. A conflict is any cross-shard
    write/write overlap, or an {e earlier} shard's write overlapping a
    {e later} shard's exposed read: the later shard forked from
    loop-entry state, so that read returned bytes the serial execution
    would already have overwritten — a loop-carried flow the static
    Proven_doall verdict claimed away. The commit is abandoned, the loop
    is re-executed serially, and the verdict is quarantined.

    The reverse read/write order — an earlier shard reading an address
    only {e later} shards write — is {e not} a conflict: it is an
    anti-dependence, and the fork snapshot resolves it exactly as serial
    iteration order does (the reader sees the pre-loop bytes in both
    executions, because every write to that address belongs to a later
    iteration). Loops like a range-proven forward gather
    ([buf\[i\] += f(buf\[i + off\])] with [off >= 1]) are genuinely
    DOALL and must commit, not quarantine. *)

(** Sorted, disjoint, half-open [\[lo, hi)] address ranges. *)
type ranges = (int * int) list

(** Sort and coalesce arbitrary (possibly overlapping, unsorted) ranges
    into canonical {!ranges}. *)
val normalize : (int * int) list -> ranges

(** Canonical ranges from a sorted list of distinct addresses (coalesces
    consecutive runs). *)
val of_sorted_addrs : int list -> ranges

(** Total words covered. *)
val cardinal : ranges -> int

(** First overlapping address of two canonical range lists, if any. *)
val overlap : ranges -> ranges -> int option

type kind = Write_write | Read_write

val kind_name : kind -> string

type conflict = {
  kind : kind;
  addr : int;  (** first overlapping address found *)
  shard_a : int;
  shard_b : int;  (** [shard_a < shard_b]; for {!Read_write} the earlier
                      shard [shard_a] wrote and [shard_b] exposed-read *)
  writer : int;  (** which of the two shards wrote [addr]: always
                     [shard_a] ({!Write_write} by convention,
                     {!Read_write} by direction) *)
}

val conflict_to_string : conflict -> string

(** Check every shard pair among shards [0 .. n-1]: write sets against
    write sets, and each {e earlier} shard's write set against each
    {e later} shard's exposed-read set. Deterministic: the
    lowest-indexed pair (and within a pair, write/write before
    read/write) wins. Arrays are indexed by shard; entries past [n] are
    ignored. *)
val detect : writes:ranges array -> reads:ranges array -> n:int -> conflict option
