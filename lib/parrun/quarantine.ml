(* Persistent set of quarantined verdicts, keyed by fingerprint (see the
   .mli). Format: {"version": 1, "entries": [...]}, one small file. *)

type entry = {
  fingerprint : string;
  target : string;
  fname : string;
  lid : int;
  header : int;
  reason : string;
}

type t = { tbl : (string, entry) Hashtbl.t }

let create () = { tbl = Hashtbl.create 16 }

let fingerprint ~fname ~header ~source =
  Printf.sprintf "parrun:conflict@%s:bb%d:%s" fname header
    (Loopa.Driver.hash8 source)

let entry_to_json (e : entry) : Util.Json.t =
  Util.Json.Obj
    [
      ("fingerprint", Util.Json.String e.fingerprint);
      ("target", Util.Json.String e.target);
      ("fname", Util.Json.String e.fname);
      ("lid", Util.Json.Int e.lid);
      ("header", Util.Json.Int e.header);
      ("reason", Util.Json.String e.reason);
    ]

let entry_of_json (j : Util.Json.t) : entry option =
  let str k = Option.bind (Util.Json.member k j) Util.Json.to_str in
  let int k = Option.bind (Util.Json.member k j) Util.Json.to_int in
  match (str "fingerprint", str "target", str "fname", int "lid", int "header") with
  | Some fingerprint, Some target, Some fname, Some lid, Some header ->
      Some
        {
          fingerprint;
          target;
          fname;
          lid;
          header;
          reason = Option.value ~default:"" (str "reason");
        }
  | _ -> None

let entries q =
  Hashtbl.fold (fun _ e acc -> e :: acc) q.tbl []
  |> List.sort (fun a b -> compare a.fingerprint b.fingerprint)

let size q = Hashtbl.length q.tbl

let mem q fp = Hashtbl.mem q.tbl fp

let add q e =
  if Hashtbl.mem q.tbl e.fingerprint then false
  else begin
    Hashtbl.replace q.tbl e.fingerprint e;
    true
  end

let to_json q : Util.Json.t =
  Util.Json.Obj
    [
      ("version", Util.Json.Int 1);
      ("entries", Util.Json.List (List.map entry_to_json (entries q)));
    ]

let save q path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (Util.Json.to_string (to_json q));
      output_char oc '\n')

let load path : t =
  let q = create () in
  if Sys.file_exists path then begin
    let ic = open_in_bin path in
    let text =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    match Util.Json.of_string text with
    | Error _ -> ()
    | Ok j -> (
        match Util.Json.member "entries" j with
        | Some (Util.Json.List es) ->
            List.iter
              (fun ej ->
                match entry_of_json ej with
                | Some e -> ignore (add q e)
                | None -> ())
              es
        | _ -> ())
  end;
  q
