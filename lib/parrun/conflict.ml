(* Cross-shard overlap detection over canonical address-range lists (see
   the .mli). Pure interval arithmetic: the shard counts are small (one
   per pool job), so a pairwise merge-sweep is plenty. *)

type ranges = (int * int) list

let normalize (rs : (int * int) list) : ranges =
  let rs = List.filter (fun (lo, hi) -> hi > lo) rs in
  let sorted = List.sort (fun (a, _) (b, _) -> compare a b) rs in
  let rec merge = function
    | (lo1, hi1) :: (lo2, hi2) :: rest when lo2 <= hi1 ->
        merge ((lo1, max hi1 hi2) :: rest)
    | r :: rest -> r :: merge rest
    | [] -> []
  in
  merge sorted

let of_sorted_addrs (addrs : int list) : ranges =
  let rec build = function
    | [] -> []
    | a :: rest ->
        let rec run hi = function
          | x :: tl when x = hi -> run (hi + 1) tl
          | tl -> (hi, tl)
        in
        let hi, tl = run (a + 1) rest in
        (a, hi) :: build tl
  in
  build addrs

let cardinal (rs : ranges) = List.fold_left (fun n (lo, hi) -> n + hi - lo) 0 rs

(* Merge-sweep over two sorted disjoint lists: first common address. *)
let rec overlap (a : ranges) (b : ranges) : int option =
  match (a, b) with
  | [], _ | _, [] -> None
  | (lo1, hi1) :: ta, (lo2, hi2) :: tb ->
      if hi1 <= lo2 then overlap ta b
      else if hi2 <= lo1 then overlap a tb
      else Some (max lo1 lo2)

type kind = Write_write | Read_write

let kind_name = function
  | Write_write -> "write/write"
  | Read_write -> "read/write"

type conflict = {
  kind : kind;
  addr : int;
  shard_a : int;
  shard_b : int;
  writer : int;
}

let conflict_to_string c =
  Printf.sprintf "%s overlap at word %d between shard %d and shard %d (writer: shard %d)"
    (kind_name c.kind) c.addr c.shard_a c.shard_b c.writer

let detect ~(writes : ranges array) ~(reads : ranges array) ~n : conflict option
    =
  let found = ref None in
  let i = ref 0 in
  while !found = None && !i < n - 1 do
    let j = ref (!i + 1) in
    while !found = None && !j < n do
      let a = !i and b = !j in
      (* Only the earlier shard's writes against the later shard's exposed
         reads: the later shard forked from loop-entry state, so that read
         returned a value serial execution would have overwritten — the
         one way a shard can diverge. The reverse direction (an earlier
         shard reading what a later shard writes) is an anti-dependence
         the snapshot resolves exactly as serial order does: the reader
         sees the pre-loop bytes in both executions, so it commits. *)
      (match overlap writes.(a) writes.(b) with
      | Some addr ->
          found := Some { kind = Write_write; addr; shard_a = a; shard_b = b; writer = a }
      | None -> (
          match overlap writes.(a) reads.(b) with
          | Some addr ->
              found :=
                Some { kind = Read_write; addr; shard_a = a; shard_b = b; writer = a }
          | None -> ()));
      incr j
    done;
    incr i
  done;
  !found
