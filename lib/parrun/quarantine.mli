(** Persistent quarantine for unsound Proven_doall verdicts.

    When guarded parallel execution detects a cross-shard conflict in a
    loop the static analysis proved DOALL, the verdict's fingerprint —
    built with the PR-3 fingerprint machinery
    ([parrun:conflict@<fname>:bb<header>:<hash8 source>]) — lands here.
    The runner consults the quarantine before sharding, so a verdict that
    lied once is never trusted again, across runs: the set round-trips
    through a small JSON file. *)

type entry = {
  fingerprint : string;  (** the key; [Loopa.Driver.same_fingerprint] compatible *)
  target : string;  (** benchmark name the conflict was observed on *)
  fname : string;
  lid : int;
  header : int;
  reason : string;  (** human-readable conflict description *)
}

type t

val create : unit -> t

(** Load from a JSON file. A missing file is an empty quarantine;
    malformed entries are skipped. *)
val load : string -> t

(** Atomically-ish rewrite the whole set (write then rename is overkill
    for this artifact; a plain rewrite keeps it greppable). *)
val save : t -> string -> unit

val mem : t -> string -> bool

(** [add q e] returns [true] if the fingerprint was new. *)
val add : t -> entry -> bool

(** All entries, sorted by fingerprint (deterministic output order). *)
val entries : t -> entry list

val size : t -> int

(** The quarantine fingerprint for a loop's verdict. *)
val fingerprint : fname:string -> header:int -> source:string -> string

val to_json : t -> Util.Json.t
