(* The perf-trajectory regression gate: compare bench snapshots
   (BENCH_quick.json / BENCH_full.json shape, or any JSON object of nested
   numeric series) and flag series that got worse beyond a noise-aware
   threshold.

   A snapshot is flattened to dotted-path numeric leaves; only leaves whose
   key names a performance direction are compared — seconds (lower is
   better), rates and speedups (higher is better). Structural counts
   (n_benchmarks, cores, iterations...) are deliberately not perf series: a
   changed count is a changed workload, not a regression, and comparing it
   would make every benchmark addition fail the gate.

   Thresholds are per-class relative slacks scaled by a caller tolerance —
   wall-clock series get the widest slack because CI wall time is the
   noisiest thing we measure — and, in history mode, widened further to
   max(relative, 4 robust sigmas) of the series' history so a naturally
   jittery series earns a proportionally wider band. *)

module Json = Util.Json

type direction = Lower_better | Higher_better

let direction_to_string = function
  | Lower_better -> "lower"
  | Higher_better -> "higher"

type series = { path : string; dir : direction; value : float }

(* Directional classification by leaf key. Conservative: anything not
   recognizably a timing/rate/speedup series is skipped, so new structural
   fields never trip the gate by accident. *)
let direction_of_key key =
  let suffix s =
    String.length key >= String.length s
    && String.sub key (String.length key - String.length s) (String.length s)
       = s
  in
  if suffix "_per_s" || suffix "per_sec" then Some Higher_better
  else if key = "speedup" || suffix "_speedup" then Some Higher_better
  else if key = "throughput" || suffix "_throughput" then Some Higher_better
  else if key = "s" || suffix "_s" then Some Lower_better
  else None

let flatten j =
  let acc = ref [] in
  let join prefix k = if prefix = "" then k else prefix ^ "." ^ k in
  let rec go prefix leaf j =
    match j with
    | Json.Obj kvs -> List.iter (fun (k, v) -> go (join prefix k) k v) kvs
    | Json.List l ->
        List.iteri (fun i v -> go (join prefix (string_of_int i)) leaf v) l
    | Json.Int _ | Json.Float _ -> (
        match direction_of_key leaf with
        | Some dir ->
            let value =
              match j with
              | Json.Int n -> float_of_int n
              | Json.Float f -> f
              | _ -> 0.0
            in
            if Float.is_finite value then
              acc := { path = prefix; dir; value } :: !acc
        | None -> ())
    | Json.Null | Json.Bool _ | Json.String _ -> ()
  in
  go "" "" j;
  List.rev !acc

(* Base relative slack per series class, before the caller's tolerance
   multiplier. Wall-clock seconds on shared CI runners routinely jitter by
   tens of percent, so the default gate only fires on big, real movements
   (the synthetic-2x acceptance case is 100% worse). *)
let base_slack = function Lower_better -> 0.5 | Higher_better -> 0.35

(* Below these magnitudes a series is all noise floor: a 3 ms phase that
   becomes 7 ms is not a regression worth failing CI over. *)
let noise_floor = function Lower_better -> 0.05 | Higher_better -> 1e-9

type verdict = {
  v_path : string;
  v_dir : direction;
  v_base : float;  (** old value, or history median *)
  v_new : float;
  v_slack : float;  (** allowed relative worsening, e.g. 0.5 = +50% *)
  v_worse_by : float;  (** relative worsening; negative = improved *)
  v_regressed : bool;
}

let judge ~tolerance ~extra_abs base_v s =
  let slack = base_slack s.dir *. tolerance in
  let floor = noise_floor s.dir in
  let worse_abs =
    match s.dir with
    | Lower_better -> s.value -. base_v
    | Higher_better -> base_v -. s.value
  in
  let worse_by =
    if abs_float base_v < 1e-12 then 0.0 else worse_abs /. abs_float base_v
  in
  let below_floor = abs_float base_v < floor && abs_float s.value < floor in
  let allowed_abs = max (slack *. abs_float base_v) extra_abs in
  {
    v_path = s.path;
    v_dir = s.dir;
    v_base = base_v;
    v_new = s.value;
    v_slack = slack;
    v_worse_by = worse_by;
    v_regressed = (not below_floor) && worse_abs > allowed_abs;
  }

let compare_snapshots ?(tolerance = 1.0) ~old_ ~new_ () =
  let old_tbl = Hashtbl.create 64 in
  List.iter (fun s -> Hashtbl.replace old_tbl s.path s.value) (flatten old_);
  List.filter_map
    (fun s ->
      match Hashtbl.find_opt old_tbl s.path with
      | Some base_v -> Some (judge ~tolerance ~extra_abs:0.0 base_v s)
      | None -> None)
    (flatten new_)

let compare_history ?(tolerance = 1.0) ~history ~new_ () =
  let by_path = Hashtbl.create 64 in
  List.iter
    (fun snap ->
      List.iter
        (fun s ->
          let prev =
            Option.value ~default:[] (Hashtbl.find_opt by_path s.path)
          in
          Hashtbl.replace by_path s.path (s.value :: prev))
        (flatten snap))
    history;
  List.filter_map
    (fun s ->
      match Hashtbl.find_opt by_path s.path with
      | None | Some [] -> None
      | Some values ->
          let med = Stats.median values in
          let mad =
            Stats.median (List.map (fun v -> abs_float (v -. med)) values)
          in
          let extra_abs = 4.0 *. 1.4826 *. mad in
          Some (judge ~tolerance ~extra_abs med s))
    (flatten new_)

let regressions verdicts = List.filter (fun v -> v.v_regressed) verdicts

let render ?(only_regressions = false) verdicts =
  let t =
    Table.create
      [ "series"; "dir"; "base"; "new"; "change"; "slack"; "verdict" ]
  in
  List.iter
    (fun v ->
      if v.v_regressed || not only_regressions then
        Table.add_row t
          [
            v.v_path;
            direction_to_string v.v_dir;
            Printf.sprintf "%.4g" v.v_base;
            Printf.sprintf "%.4g" v.v_new;
            Printf.sprintf "%+.1f%%" (100.0 *. v.v_worse_by);
            Printf.sprintf "%.0f%%" (100.0 *. v.v_slack);
            (if v.v_regressed then "REGRESSED" else "ok");
          ])
    verdicts;
  Table.render t

let to_json verdicts =
  Json.List
    (List.map
       (fun v ->
         Json.Obj
           [
             ("series", Json.String v.v_path);
             ("direction", Json.String (direction_to_string v.v_dir));
             ("base", Json.Float v.v_base);
             ("new", Json.Float v.v_new);
             ("worse_by", Json.Float v.v_worse_by);
             ("slack", Json.Float v.v_slack);
             ("regressed", Json.Bool v.v_regressed);
           ])
       verdicts)
