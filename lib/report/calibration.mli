(** Rendering for guarded-execution calibration reports: one line per
    [Proven_doall] loop comparing the speedup the cost model predicted for
    DOALL parallelisation against the speedup the guarded parallel runtime
    actually measured. The parrun layer fills in the rows; this module only
    formats them, so the report library stays independent of the runtime. *)

type row = {
  fname : string;
  lid : int;
  header : int;
  eligible : bool;
  why : string;  (** ineligibility reason, [""] when eligible *)
  invocations : int;
  sharded : int;
  committed : int;
  rollbacks : int;
  conflicts : int;
  quarantined : bool;
  serial_s : float;
  parallel_s : float;
  measured : float option;  (** measured parallel speedup *)
  predicted : float option;  (** cost-model DOALL speedup *)
}

(** Aligned text table, one row per loop, with a trailing ratio column
    (measured / predicted) when both are present. *)
val render : row list -> string

val to_csv : row list -> string

(** Side-by-side log-scale bars of predicted vs measured speedup for the
    loops where both exist; empty string when none qualify. *)
val chart : ?width:int -> row list -> string

val row_to_json : row -> Util.Json.t
