(** The perf-trajectory regression gate over bench snapshots.

    Snapshots (the [BENCH_quick.json] shape, or any nested JSON of numeric
    series) are flattened to dotted-path leaves; leaves whose key names a
    performance direction — [*_s]/[s] seconds (lower is better), [*_per_s]
    rates, [speedup]/[throughput] (higher is better) — become comparable
    series, everything else (counts, cores, flags) is skipped. A series
    regresses when it moves in the bad direction beyond its slack; tiny
    magnitudes below a per-class noise floor never regress. *)

type direction = Lower_better | Higher_better

val direction_to_string : direction -> string

type verdict = {
  v_path : string;  (** dotted path, list indices as numbers *)
  v_dir : direction;
  v_base : float;  (** old value, or the history median *)
  v_new : float;
  v_slack : float;  (** allowed relative worsening (0.5 = +50%) *)
  v_worse_by : float;  (** relative worsening; negative = improved *)
  v_regressed : bool;
}

(** Compare series present in both snapshots. [tolerance] scales the
    per-class slack (seconds 50%, rates/speedups 35%); the default is
    deliberately generous — it passes identical snapshots and CI jitter,
    and fails a 2x slowdown. *)
val compare_snapshots :
  ?tolerance:float -> old_:Util.Json.t -> new_:Util.Json.t -> unit -> verdict list

(** Compare [new_] against the per-series median of [history] snapshots,
    with the slack widened to at least 4 robust sigmas (1.4826·MAD) of the
    series' own history. Series without history are skipped. *)
val compare_history :
  ?tolerance:float ->
  history:Util.Json.t list ->
  new_:Util.Json.t ->
  unit ->
  verdict list

val regressions : verdict list -> verdict list

(** Aligned text table of the verdicts (all, or regressions only). *)
val render : ?only_regressions:bool -> verdict list -> string

val to_json : verdict list -> Util.Json.t
