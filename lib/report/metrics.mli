(** Human-readable rendering of the process-wide Obs.Telemetry state (the
    [--metrics] dump): an aggregated span tree (spans sharing the same name
    under the same parent are merged into one line with a count), then every
    registered counter, then every histogram. *)

(** Render the current telemetry state. Returns [""] when nothing was ever
    recorded or registered (telemetry never enabled and no registrations). *)
val render : unit -> string

(** [render] written to a formatter — what the CLI prints on [--metrics]. *)
val pp : Format.formatter -> unit -> unit
