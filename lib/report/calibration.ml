type row = {
  fname : string;
  lid : int;
  header : int;
  eligible : bool;
  why : string;
  invocations : int;
  sharded : int;
  committed : int;
  rollbacks : int;
  conflicts : int;
  quarantined : bool;
  serial_s : float;
  parallel_s : float;
  measured : float option;
  predicted : float option;
}

let fopt = function None -> "-" | Some f -> Printf.sprintf "%.2f" f

let ratio r =
  match (r.measured, r.predicted) with
  | Some m, Some p when p > 0. -> Some (m /. p)
  | _ -> None

let status r =
  if r.quarantined then "QUARANTINED"
  else if not r.eligible then Printf.sprintf "ineligible: %s" r.why
  else if r.conflicts > 0 then "conflict"
  else if r.committed > 0 then "ok"
  else if r.invocations > 0 then "declined"
  else "idle"

let headers =
  [
    "loop";
    "inv";
    "shard";
    "commit";
    "rollbk";
    "confl";
    "serial_s";
    "par_s";
    "measured";
    "predicted";
    "meas/pred";
    "status";
  ]

let row_cells r =
  [
    Printf.sprintf "%s:bb%d" r.fname r.header;
    string_of_int r.invocations;
    string_of_int r.sharded;
    string_of_int r.committed;
    string_of_int r.rollbacks;
    string_of_int r.conflicts;
    Printf.sprintf "%.4f" r.serial_s;
    Printf.sprintf "%.4f" r.parallel_s;
    fopt r.measured;
    fopt r.predicted;
    fopt (ratio r);
    status r;
  ]

let table rows =
  let t = Table.create headers in
  List.iter (fun r -> Table.add_row t (row_cells r)) rows;
  t

let render rows = Table.render (table rows)
let to_csv rows = Table.to_csv (table rows)

let chart ?width rows =
  let bars =
    List.concat_map
      (fun r ->
        match (r.measured, r.predicted) with
        | Some m, Some p ->
            let label = Printf.sprintf "%s:bb%d" r.fname r.header in
            [ (label ^ " pred", p); (label ^ " meas", m) ]
        | _ -> [])
      rows
  in
  if bars = [] then "" else Table.log_bars ?width bars

let row_to_json r : Util.Json.t =
  let j_fopt = function
    | None -> Util.Json.Null
    | Some f -> Util.Json.Float f
  in
  Util.Json.Obj
    [
      ("fname", Util.Json.String r.fname);
      ("lid", Util.Json.Int r.lid);
      ("header", Util.Json.Int r.header);
      ("eligible", Util.Json.Bool r.eligible);
      ("why", Util.Json.String r.why);
      ("invocations", Util.Json.Int r.invocations);
      ("sharded", Util.Json.Int r.sharded);
      ("committed", Util.Json.Int r.committed);
      ("rollbacks", Util.Json.Int r.rollbacks);
      ("conflicts", Util.Json.Int r.conflicts);
      ("quarantined", Util.Json.Bool r.quarantined);
      ("serial_s", Util.Json.Float r.serial_s);
      ("parallel_s", Util.Json.Float r.parallel_s);
      ("measured", j_fopt r.measured);
      ("predicted", j_fopt r.predicted);
    ]
