(* Human rendering of the telemetry state (--metrics). The span tree is
   aggregated: sibling spans with the same name merge into one line carrying
   an invocation count and a summed duration, so a campaign over hundreds of
   tasks still renders a page, not a transcript. Children keep first-seen
   order, which follows pipeline order (parse before sema before lower). *)

type node = {
  mutable n : int;
  mutable total_s : float;
  mutable order : string list; (* child names, first-seen, reversed *)
  children : (string, node) Hashtbl.t;
}

let new_node () = { n = 0; total_s = 0.0; order = []; children = Hashtbl.create 4 }

let span_tree (spans : Obs.Telemetry.span list) : node =
  let root = new_node () in
  (* ids increase in start order, so a parent is always seen before its
     children; [by_id] maps a span to the aggregate node it merged into *)
  let by_id = Hashtbl.create 64 in
  List.iter
    (fun (s : Obs.Telemetry.span) ->
      let parent =
        match Hashtbl.find_opt by_id s.Obs.Telemetry.parent with
        | Some p -> p
        | None -> root
      in
      let name = s.Obs.Telemetry.name in
      let nd =
        match Hashtbl.find_opt parent.children name with
        | Some nd -> nd
        | None ->
            let nd = new_node () in
            Hashtbl.replace parent.children name nd;
            parent.order <- name :: parent.order;
            nd
      in
      nd.n <- nd.n + 1;
      nd.total_s <- nd.total_s +. s.Obs.Telemetry.dur_s;
      Hashtbl.replace by_id s.Obs.Telemetry.id nd)
    spans;
  root

let render () =
  let spans = Obs.Telemetry.spans () in
  let counters = Obs.Telemetry.counters () in
  let hists = Obs.Telemetry.histograms () in
  if spans = [] && counters = [] && hists = [] then ""
  else begin
    let buf = Buffer.create 1024 in
    let line fmt =
      Printf.ksprintf
        (fun s ->
          Buffer.add_string buf s;
          Buffer.add_char buf '\n')
        fmt
    in
    if spans <> [] then begin
      line "spans (name, count, total seconds)";
      let rec emit depth order (children : (string, node) Hashtbl.t) =
        List.iter
          (fun name ->
            let nd = Hashtbl.find children name in
            let label = String.make (2 + (2 * depth)) ' ' ^ name in
            line "%-44s %8d %12.6f" label nd.n nd.total_s;
            emit (depth + 1) (List.rev nd.order) nd.children)
          order
      in
      let root = span_tree spans in
      emit 0 (List.rev root.order) root.children
    end;
    if counters <> [] then begin
      if Buffer.length buf > 0 then line "";
      line "counters";
      List.iter (fun (name, v) -> line "  %-42s %12d" name v) counters
    end;
    if hists <> [] then begin
      if Buffer.length buf > 0 then line "";
      line "histograms";
      List.iter
        (fun (name, (h : Obs.Telemetry.hist_snapshot)) ->
          line "  %-42s count=%d sum=%g min=%g max=%g" name
            h.Obs.Telemetry.count h.Obs.Telemetry.sum h.Obs.Telemetry.minimum
            h.Obs.Telemetry.maximum)
        hists
    end;
    Buffer.contents buf
  end

let pp ppf () = Format.pp_print_string ppf (render ())
