(** TCP transport for remote pool workers.

    Direction: the {e coordinator} (campaign/sweep with
    [--workers host:port,...]) listens on each configured endpoint; each
    {e worker} process ([loopapalooza worker --connect host:port]) dials
    in and announces itself with a hello frame. Once established, the
    socket speaks the same length-prefixed {!Util.Json} frame protocol
    as the fork-pool pipes ({!Ipc}), so {!Pool} treats a connected
    remote as just another worker file descriptor. *)

(** Wire protocol version carried in the hello frame; a mismatch is
    rejected at accept time, before the fd reaches the pool. *)
val proto_version : int

(** Endpoint parsing, binding, dialing or handshake failure. *)
exception Remote_error of string

(** ["host:port"] — an empty host means 127.0.0.1. Raises
    {!Remote_error} on malformed input. *)
val parse_hostport : string -> string * int

(** Comma-separated endpoint list (empty segments skipped). *)
val parse_hostports : string -> (string * int) list

(** Bind + listen. With port 0 the kernel picks a free port — recover it
    with {!bound_port}. *)
val listen : host:string -> port:int -> Unix.file_descr

val bound_port : Unix.file_descr -> int

(** Accept one worker connection and validate its hello frame; the
    listening fd stays open (caller closes it). Raises {!Remote_error}
    after [timeout_s] (default 30s) or on a protocol mismatch. *)
val accept_worker : ?timeout_s:float -> Unix.file_descr -> Unix.file_descr

(** Worker side: dial the coordinator and send the hello frame. *)
val connect : host:string -> port:int -> Unix.file_descr
