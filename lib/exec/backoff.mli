(** Exec.Backoff — deterministic exponential backoff with jitter.

    Replaces instant worker respawn in {!Pool}: each consecutive failure
    doubles (by [factor]) the delay before the next respawn, capped at
    [max_s], with multiplicative jitter in [1-jitter, 1+jitter) drawn
    from a seeded splitmix64 stream. Because the jitter source is the
    seed alone, the full delay sequence is replayable — a fixed seed
    yields byte-identical schedules run-to-run, which is what lets the
    chaos harness assert determinism across supervised restarts. *)

type t

(** [create ~seed ()] builds a backoff ladder. Defaults: [base_s] 0.05,
    [factor] 2.0, [max_s] 2.0, [jitter] 0.25. [jitter] must be in
    [0, 1]; 0 disables it. *)
val create :
  ?base_s:float ->
  ?factor:float ->
  ?max_s:float ->
  ?jitter:float ->
  seed:int ->
  unit ->
  t

(** Delay in seconds to wait before the next attempt, advancing the
    ladder: [base_s * factor^k] for the [k]th consecutive failure,
    capped at [max_s], then jittered. Never negative. *)
val next : t -> float

(** Declare the streak over (a success happened): the next failure
    starts again at [base_s]. The jitter stream does {i not} rewind —
    determinism is over the whole run, not per-streak. *)
val reset : t -> unit

(** Lifetime number of [next] calls (for stats/telemetry). *)
val attempts : t -> int
