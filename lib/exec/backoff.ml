(* Deterministic exponential backoff with jitter (see the .mli). The
   jitter stream is a splitmix64 walk from the seed, so a fixed seed
   yields a fixed delay sequence — replayable in tests and under the
   chaos harness. *)

type t = {
  base_s : float;
  factor : float;
  max_s : float;
  jitter : float;
  mutable state : int64; (* splitmix64 walk position *)
  mutable attempt : int; (* consecutive failures since the last reset *)
  mutable attempts : int; (* lifetime total, for stats *)
}

(* splitmix64: one 64-bit step + finalizer. Good enough dispersion for
   jitter and fault placement; crucially, stateless given the walk
   position, so the sequence is a pure function of the seed. *)
let splitmix64 (state : int64) : int64 * int64 =
  let open Int64 in
  let state = add state 0x9E3779B97F4A7C15L in
  let z = state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = logxor z (shift_right_logical z 31) in
  (z, state)

(* uniform float in [0,1) from the top 53 bits *)
let to_unit (z : int64) : float =
  let bits = Int64.shift_right_logical z 11 in
  Int64.to_float bits /. 9007199254740992.0 (* 2^53 *)

let create ?(base_s = 0.05) ?(factor = 2.0) ?(max_s = 2.0) ?(jitter = 0.25)
    ~seed () =
  {
    base_s;
    factor;
    max_s;
    jitter;
    state = Int64.of_int seed;
    attempt = 0;
    attempts = 0;
  }

let next t =
  let z, state = splitmix64 t.state in
  t.state <- state;
  let raw = t.base_s *. (t.factor ** float_of_int t.attempt) in
  let capped = Float.min raw t.max_s in
  t.attempt <- t.attempt + 1;
  t.attempts <- t.attempts + 1;
  (* jitter scales the delay into [1-j, 1+j) — full-random jitter would
     make the *expected* delay depend on the jitter knob *)
  let scale = 1.0 -. t.jitter +. (2.0 *. t.jitter *. to_unit z) in
  Float.max 0.0 (capped *. scale)

let reset t = t.attempt <- 0

let attempts t = t.attempts
