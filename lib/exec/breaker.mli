(** Exec.Breaker — a consecutive-failure circuit breaker.

    The pool records one success/failure per delivered task outcome;
    once [threshold] failures arrive with no success in between the
    breaker {i trips} and stays open until {!reset}. {!Pool.run} polls
    {!tripped} between scheduling steps and, when open, stops early with
    the undecided outcomes left [None] — the caller (the campaign
    runner) then finishes the remaining work serially instead of feeding
    more tasks to a collapsing pool. *)

type t

(** [create ()] — trips after [threshold] (default 5, clamped to >= 1)
    consecutive failures. *)
val create : ?threshold:int -> unit -> t

val record_success : t -> unit

val record_failure : t -> unit

(** Open right now: [threshold] or more consecutive failures. *)
val tripped : t -> bool

(** Times the breaker transitioned closed -> open (for telemetry). *)
val trips : t -> int

(** Close the breaker (the caller changed strategy, e.g. degraded to
    serial execution, or wants to probe the pool again). *)
val reset : t -> unit
