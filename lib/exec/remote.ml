(* TCP transport for remote pool workers.

   The coordinator (a campaign or sweep run with [--workers host:port,...])
   *listens* on each configured endpoint and waits for exactly one worker
   process ([loopapalooza worker --connect host:port]) to dial in. That
   direction — workers dial the coordinator — keeps the coordinator free
   of any knowledge about how worker hosts are provisioned, and means a
   worker behind NAT can still participate.

   Once the socket is established it speaks exactly the same
   length-prefixed Util.Json frame protocol as the fork-pool pipes
   (Exec.Ipc), so Exec.Pool treats a connected remote as just another
   worker file descriptor. The only wrinkle handled here is the hello
   frame: the worker announces itself with {"op":"hello","proto":N} so
   the coordinator can reject protocol mismatches before handing the fd
   to the pool. *)

module Json = Util.Json

let proto_version = 1

exception Remote_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Remote_error m)) fmt

(* "host:port" -> (host, port); "host:port,host:port" -> list *)
let parse_hostport s =
  match String.rindex_opt s ':' with
  | None -> fail "bad worker endpoint %S (expected host:port)" s
  | Some i -> (
      let host = String.sub s 0 i in
      let port = String.sub s (i + 1) (String.length s - i - 1) in
      match int_of_string_opt port with
      | Some p when p >= 0 && p < 65536 ->
          ((if host = "" then "127.0.0.1" else host), p)
      | _ -> fail "bad port in worker endpoint %S" s)

let parse_hostports s =
  String.split_on_char ',' s
  |> List.filter (fun e -> String.trim e <> "")
  |> List.map (fun e -> parse_hostport (String.trim e))

let resolve host port =
  match Unix.getaddrinfo host (string_of_int port)
          [ Unix.AI_SOCKTYPE Unix.SOCK_STREAM ] with
  | [] -> fail "cannot resolve %s:%d" host port
  | ai :: _ -> ai.Unix.ai_addr

(* Bind + listen on [host:port]. Returns the listening fd; with port 0
   the kernel picks a free port — recover it with {!bound_port}. *)
let listen ~host ~port =
  let addr = resolve host port in
  let fd = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  (try Unix.bind fd addr
   with Unix.Unix_error (e, _, _) ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     fail "cannot bind %s:%d: %s" host port (Unix.error_message e));
  Unix.listen fd 1;
  fd

let bound_port fd =
  match Unix.getsockname fd with
  | Unix.ADDR_INET (_, p) -> p
  | _ -> 0

(* Accept one worker connection and validate its hello frame. The
   listening fd stays open (caller closes it). Raises {!Remote_error} on
   timeout or a protocol mismatch. *)
let accept_worker ?(timeout_s = 30.0) listen_fd =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec wait () =
    let left = deadline -. Unix.gettimeofday () in
    if left <= 0.0 then fail "timed out waiting for a worker to connect";
    match Unix.select [ listen_fd ] [] [] (Float.min left 0.5) with
    | [], _, _ -> wait ()
    | _ -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait ()
  in
  wait ();
  let fd, _peer = Unix.accept listen_fd in
  match Ipc.read fd with
  | Ipc.Msg j
    when Json.member "op" j = Some (Json.String "hello")
         && Json.member "proto" j = Some (Json.Int proto_version) ->
      fd
  | Ipc.Msg j ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      fail "worker hello mismatch: %s" (Json.to_string j)
  | Ipc.Eof ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      fail "worker disconnected before hello"
  | exception Ipc.Protocol_error m ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      fail "worker hello malformed: %s" m

(* Worker side: dial the coordinator and send the hello frame. *)
let connect ~host ~port =
  let addr = resolve host port in
  let fd = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
  (try Unix.connect fd addr
   with Unix.Unix_error (e, _, _) ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     fail "cannot connect %s:%d: %s" host port (Unix.error_message e));
  Ipc.write fd
    (Json.Obj [ ("op", Json.String "hello"); ("proto", Json.Int proto_version) ]);
  fd
