(* Seeded deterministic fault schedules for the execution stack (see the
   .mli). Placement is a pure function of (seed, task index) — never of
   scheduling — so two runs of the same campaign under the same seed
   inject exactly the same faults into exactly the same tasks no matter
   how the pool interleaves them. *)

type task_fault =
  | Kill_self
  | Stall_self
  | Torn_result
  | Corrupt_result
  | Delay_result of float

type ckpt_fault = Eio | Enospc

(* Coordinator-side faults against a *remote* (TCP) worker's link, keyed
   by the task index the worker is running when the fault fires. Local
   forked workers are never affected: the pool only consults the link
   schedule for remote transports. *)
type link_fault = Sever | Stall

type rates = {
  kill : float;
  stall : float;
  torn : float;
  corrupt : float;
  delay : float;
  ckpt : float;
}

let default_rates =
  { kill = 0.10; stall = 0.05; torn = 0.05; corrupt = 0.05; delay = 0.10; ckpt = 0.05 }

type plan =
  | Seeded of { seed : int; rates : rates }
  | Explicit of {
      tasks : (int * task_fault) list;
      ckpt : (int * ckpt_fault) list;
      links : (int * link_fault) list;
    }

let seeded ?(rates = default_rates) seed = Seeded { seed; rates }

let explicit ?(ckpt_faults = []) ?(link_faults = []) tasks =
  Explicit { tasks; ckpt = ckpt_faults; links = link_faults }

let seed = function Seeded { seed; _ } -> Some seed | Explicit _ -> None

(* splitmix64 finalizer over a key mixed from (seed, lane, index). The
   lane separates independent decisions about the same index (which
   fault, its delay duration, checkpoint faults) so they never alias. *)
let hash (seed : int) (lane : int) (i : int) : int64 =
  let open Int64 in
  let finalize z =
    let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
    let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
    logxor z (shift_right_logical z 31)
  in
  let z =
    logxor
      (mul (of_int seed) 0x9E3779B97F4A7C15L)
      (logxor
         (mul (of_int (lane + 1)) 0xBF58476D1CE4E5B9L)
         (mul (of_int (i + 1)) 0x94D049BB133111EBL))
  in
  finalize (finalize z)

(* uniform in [0,1) from the top 53 bits *)
let unit_of seed lane i =
  let bits = Int64.shift_right_logical (hash seed lane i) 11 in
  Int64.to_float bits /. 9007199254740992.0 (* 2^53 *)

(* The rate ladder, shared by per-task and per-shard placement; the lane
   pair keeps the two schedules (and each schedule's fault-vs-delay
   decisions) independent for the same index. *)
let pick_fault ~seed ~rates ~lane_fault ~lane_delay i =
  let u = unit_of seed lane_fault i in
  let k = rates.kill in
  let s = k +. rates.stall in
  let t = s +. rates.torn in
  let c = t +. rates.corrupt in
  let d = c +. rates.delay in
  if u < k then Some Kill_self
  else if u < s then Some Stall_self
  else if u < t then Some Torn_result
  else if u < c then Some Corrupt_result
  else if u < d then
    (* short delays only: long enough to shuffle completion order,
       far below any sane watchdog deadline (no injected timeouts) *)
    Some (Delay_result (0.02 +. (0.2 *. unit_of seed lane_delay i)))
  else None

let task_fault plan i =
  match plan with
  | Explicit { tasks; _ } -> List.assoc_opt i tasks
  | Seeded { seed; rates } ->
      pick_fault ~seed ~rates ~lane_fault:0 ~lane_delay:1 i

let ckpt_fault plan k =
  match plan with
  | Explicit { ckpt; _ } -> List.assoc_opt k ckpt
  | Seeded { seed; rates } ->
      if unit_of seed 2 k < rates.ckpt then
        if Int64.rem (hash seed 3 k) 2L = 0L then Some Eio else Some Enospc
      else None

(* Link faults ride lane 6 — independent of the task (0/1), checkpoint
   (2/3) and shard (4/5) schedules for the same index. Seeded placement
   reuses the kill/stall rates: a severed link is the TCP analogue of a
   SIGKILLed worker, a stalled link of a SIGSTOP'd one. *)
let link_fault plan i =
  match plan with
  | Explicit { links; _ } -> List.assoc_opt i links
  | Seeded { seed; rates } ->
      let u = unit_of seed 6 i in
      if u < rates.kill then Some Sever
      else if u < rates.kill +. rates.stall then Some Stall
      else None

let link_fault_name = function Sever -> "sever" | Stall -> "stall"

(* The cause string the pool records when it severs a remote's link —
   exported so tests (and the serial simulation, should one ever cover
   remotes) can assert byte-identical checkpoints. *)
let severed_link_cause = "link severed (chaos)"

(* ---- shard-scoped faults (guarded parallel loop execution) ----

   A shard fault sabotages one shard of one sharded loop invocation:
   the guarded runner translates the (invocation, shard) decision into a
   per-round explicit task plan for the pool, so the usual worker-side
   injection point fires mid-loop. Keyed independently of the task
   schedule (lanes 4/5 vs 0/1) so chaosing a campaign and chaosing its
   parallel loops never alias. *)

type shard_plan =
  | Shard_seeded of { seed : int; rates : rates }
  | Shard_explicit of ((int * int) * task_fault) list

let shard_seeded ?(rates = default_rates) seed = Shard_seeded { seed; rates }

let shard_explicit faults = Shard_explicit faults

(* One index per (invocation, shard) pair: shards per invocation are
   bounded by the pool's job count, far below the mixing factor, so the
   mapping is injective in practice and deterministic regardless. *)
let shard_index ~invocation ~shard = (invocation * 8191) + shard

let shard_fault plan ~invocation ~shard =
  match plan with
  | Shard_explicit faults -> List.assoc_opt (invocation, shard) faults
  | Shard_seeded { seed; rates } ->
      pick_fault ~seed ~rates ~lane_fault:4 ~lane_delay:5
        (shard_index ~invocation ~shard)

let shard_summary plan ~invocations ~shards =
  let tbl = Hashtbl.create 8 in
  for inv = 0 to invocations - 1 do
    for s = 0 to shards - 1 do
      match shard_fault plan ~invocation:inv ~shard:s with
      | None -> ()
      | Some f ->
          let k =
            match f with
            | Kill_self -> "kill"
            | Stall_self -> "stall"
            | Torn_result -> "torn"
            | Corrupt_result -> "corrupt"
            | Delay_result _ -> "delay"
          in
          Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k))
    done
  done;
  [ "kill"; "stall"; "torn"; "corrupt"; "delay" ]
  |> List.map (fun k ->
         Printf.sprintf "%s %d" k (Option.value ~default:0 (Hashtbl.find_opt tbl k)))
  |> String.concat ", "

let lethal = function
  | Kill_self | Stall_self | Torn_result | Corrupt_result -> true
  | Delay_result _ -> false

let fault_name = function
  | Kill_self -> "kill"
  | Stall_self -> "stall"
  | Torn_result -> "torn"
  | Corrupt_result -> "corrupt"
  | Delay_result _ -> "delay"

let ckpt_fault_name = function Eio -> "EIO" | Enospc -> "ENOSPC"

(* These strings must match what the pool's reaper reports for the real
   fault, byte for byte: when the campaign degrades to serial execution
   it records the scheduled loss without forking, and the checkpoint
   line must be identical either way. Kill_self dies by its own SIGKILL;
   Torn/Corrupt _exit(1) after poisoning the stream; Stall_self is not a
   Lost at all (the watchdog turns it into a timeout). *)
let simulated_lost_cause = function
  | Kill_self -> Some "worker killed by SIGKILL"
  | Torn_result | Corrupt_result -> Some "worker exited with code 1"
  | Stall_self | Delay_result _ -> None

let planned_counts plan ~n =
  let names = [ "kill"; "stall"; "torn"; "corrupt"; "delay" ] in
  let tbl = Hashtbl.create 8 in
  List.iter (fun k -> Hashtbl.replace tbl k 0) names;
  for i = 0 to n - 1 do
    match task_fault plan i with
    | None -> ()
    | Some f ->
        let k = fault_name f in
        Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k))
  done;
  let ckpt = ref 0 in
  for k = 0 to n - 1 do
    if ckpt_fault plan k <> None then incr ckpt
  done;
  List.map (fun k -> (k, Hashtbl.find tbl k)) names @ [ ("ckpt-fail", !ckpt) ]

let summary plan ~n =
  planned_counts plan ~n
  |> List.map (fun (k, c) -> Printf.sprintf "%s %d" k c)
  |> String.concat ", "
