(** Exec.Pool — a fork-based multi-process worker pool with a chunked task
    queue and dynamic work-stealing.

    The pool is generic and dependency-free: tasks and results are opaque
    {!Util.Json.t} payloads, the worker body is an ordinary closure (the
    fork inherits the parent image, so the closure may capture arbitrary
    in-memory state — source arrays, analysis results — with no
    serialization), and all IPC is length-prefixed JSON frames
    ({!Ipc}) over per-worker pipe pairs.

    {b Scheduling.} The parent keeps the queue. Idle workers receive
    chunks of [max 1 (min max_chunk (remaining / (2 * jobs)))] tasks —
    large early chunks amortize IPC, shrinking ones avoid stragglers.
    When the queue drains while a worker still sits on unstarted chunk
    tasks, the parent sends it a steal request; the worker hands back
    everything it has not started (keeping one task to stay busy) and the
    parent re-dispatches the reclaimed tasks to idle workers. A slow task
    can therefore delay at most itself.

    {b Fault isolation.} A worker that exits, is killed by a signal, or
    raises out of [work] is reaped ([waitpid]) and its in-flight task is
    reported as {!Lost} with a human-readable cause; unstarted tasks of
    its chunk are re-queued undamaged and a replacement worker is forked
    (bounded by a respawn budget, after which remaining queued tasks are
    marked lost rather than risking a fork storm). Lost tasks are never
    retried by the pool — a task that reliably kills its worker must cost
    one task, not the run.

    {b Determinism.} Results complete in any order; [on_ordered] replays
    them to the caller in task-index order as the contiguous completed
    prefix grows, which is what lets a caller with an append-only output
    (the campaign's JSONL checkpoint) stay byte-deterministic regardless
    of scheduling. *)

type outcome =
  | Done of Util.Json.t  (** the worker's result payload *)
  | Lost of string
      (** the worker died (signal, exit, OOM kill) or [work] raised;
          the string is the classified cause *)

type stats = {
  forked : int;  (** workers forked, including respawns *)
  respawned : int;
  steals : int;  (** steal requests that reclaimed at least one task *)
  tasks_lost : int;
}

(** Number of usable cores ([Domain.recommended_domain_count]); what
    [--jobs 0] resolves to. Always >= 1. *)
val detect_jobs : unit -> int

(** [run ~jobs ~work tasks] executes [work tasks.(i)] for every [i] across
    [jobs] forked workers and returns one outcome per task ([None] only
    when [should_stop] ended the run before the task was dispatched or
    finished), plus scheduling statistics.

    [work] runs in the worker process; it should be total — an escaping
    exception costs the task ({!Lost}). [worker_init] runs once in each
    fresh worker before any task (e.g. to reset inherited telemetry).
    [epilogue] runs in the worker at clean shutdown and its payload is
    delivered to [on_epilogue] in the parent — the channel for end-of-life
    aggregates like histogram state. [on_complete] fires in completion
    order (live progress); [on_ordered] fires in task order over the
    contiguous completed prefix. [should_stop] is polled between
    scheduling steps; when it turns true the pool kills its workers and
    returns with the undecided outcomes still [None].

    The pool temporarily ignores [SIGPIPE] (restored on exit) so a dying
    worker surfaces as [EPIPE]/EOF, never as a fatal signal. *)
val run :
  jobs:int ->
  ?max_chunk:int ->
  ?worker_init:(unit -> unit) ->
  ?epilogue:(unit -> Util.Json.t) ->
  ?on_epilogue:(Util.Json.t -> unit) ->
  ?on_complete:(int -> outcome -> unit) ->
  ?on_ordered:(int -> outcome -> unit) ->
  ?should_stop:(unit -> bool) ->
  work:(Util.Json.t -> Util.Json.t) ->
  Util.Json.t array ->
  outcome option array * stats
