(** Exec.Pool — a fork-based multi-process worker pool with a chunked task
    queue, dynamic work-stealing, and chaos-testable supervision.

    The pool is generic and dependency-free: tasks and results are opaque
    {!Util.Json.t} payloads, the worker body is an ordinary closure (the
    fork inherits the parent image, so the closure may capture arbitrary
    in-memory state — source arrays, analysis results — with no
    serialization), and all IPC is length-prefixed JSON frames
    ({!Ipc}) over per-worker pipe pairs.

    {b Scheduling.} The parent keeps the queue. Idle workers receive
    chunks of [max 1 (min max_chunk (remaining / (2 * jobs)))] tasks —
    large early chunks amortize IPC, shrinking ones avoid stragglers.
    When the queue drains while a worker still sits on unstarted chunk
    tasks, the parent sends it a steal request; the worker hands back
    everything it has not started (keeping one task to stay busy) and the
    parent re-dispatches the reclaimed tasks to idle workers. A slow task
    can therefore delay at most itself.

    {b Fault isolation.} A worker that exits, is killed by a signal, or
    raises out of [work] is reaped ([waitpid]) and its in-flight task is
    reported as {!Lost} with a human-readable cause; unstarted tasks of
    its chunk are re-queued undamaged. Lost tasks are never retried by
    the pool — a task that reliably kills its worker must cost one task,
    not the run.

    {b Supervision.} Three mechanisms, all off by default:
    - {b watchdog} ([task_deadline_s]): any announced task that outlives
      the wall deadline ([Unix.gettimeofday]-based) costs its worker a
      SIGKILL — which also terminates a SIGSTOP-stalled process — and is
      delivered as {!Timed_out} carrying the {e configured} deadline, so
      the outcome is deterministic. Without a watchdog a hung worker
      stalls the pool forever: deadlines inside the worker are
      cooperative ([Interp.Machine] polls its own budget) and cannot
      fire once the process is stopped.
    - {b backoff} ([backoff]): respawns after a worker death are
      scheduled through an exponential-backoff ladder with seeded jitter
      ({!Backoff}) instead of happening instantly; a successful task
      resets the ladder. Respawns remain bounded by the budget
      ([n + 2*jobs]).
    - {b circuit breaker} ([breaker]): the pool records one
      success/failure per delivered outcome; once the breaker trips
      ({!Breaker}) — or the respawn capacity is exhausted with work
      still queued — the pool returns {e early} with the undecided
      outcomes still [None] and [stats.gave_up] explaining why, instead
      of draining the queue as {!Lost}. The caller decides what
      degradation means (the campaign runner finishes the remainder
      serially).

    {b Chaos.} [chaos] threads a deterministic {!Chaos} fault schedule
    into the worker loop: scheduled faults fire after the task's "start"
    announcement (self-SIGKILL, self-SIGSTOP, torn/corrupt result frame,
    delayed completion), exercising exactly the failure paths above with
    placement that is a pure function of the seed.

    {b Determinism.} Results complete in any order; [on_ordered] replays
    them to the caller in task-index order as the contiguous completed
    prefix grows, which is what lets a caller with an append-only output
    (the campaign's JSONL checkpoint) stay byte-deterministic regardless
    of scheduling.

    {b Remote workers.} [remotes] attaches already-connected TCP sockets
    ({!Remote}) as additional workers: the far side runs {!serve_loop},
    which speaks the same frame protocol as a forked worker, so
    scheduling, stealing, the watchdog, backoff accounting and the
    breaker apply unchanged. The differences are confined to lifecycle:
    a remote is never signalled (the watchdog's and shutdown's remedy is
    a socket shutdown, which surfaces as EOF on both ends), never reaped,
    and never respawned — a lost connection costs its in-flight task
    ([Lost "remote worker disconnected"]) and the slot stays dead.
    Chaos gains a coordinator-side schedule for remotes
    ({!Chaos.link_fault}): severing the link mid-task, or muting it so
    only the watchdog can resolve the silent stall. *)

type outcome =
  | Done of Util.Json.t  (** the worker's result payload *)
  | Lost of string
      (** the worker died (signal, exit, OOM kill) or [work] raised;
          the string is the classified cause *)
  | Timed_out of float
      (** the watchdog SIGKILLed the worker after the task outlived this
          per-task deadline (the configured value, not the measured
          elapsed — outcomes must not depend on scheduling) *)

type stats = {
  forked : int;  (** workers forked, including respawns *)
  respawned : int;
  steals : int;  (** steal requests that reclaimed at least one task *)
  tasks_lost : int;
  timeouts : int;  (** tasks delivered as {!Timed_out} by the watchdog *)
  backoff_waits : int;  (** respawns that waited on the backoff ladder *)
  backoff_wait_s : float;  (** total scheduled backoff delay *)
  breaker_trips : int;  (** closed→open transitions of [breaker] *)
  gave_up : string option;
      (** [Some cause] when the pool returned early (breaker open or
          respawn capacity exhausted) with undecided outcomes left
          [None] *)
}

(** Number of usable cores ([Domain.recommended_domain_count]); what
    [--jobs 0] resolves to. Always >= 1. *)
val detect_jobs : unit -> int

(** Run the worker side of the pool protocol over an established
    transport — the entry point for a remote worker process after
    {!Remote.connect} (there [rd] and [wr] are the same socket fd).
    Never returns: the loop [_exit]s 0 on "quit" (after sending the
    [epilogue] payload) and 1 on transport loss or a malformed frame.
    [work] and [chaos] mean exactly what they do for forked workers. *)
val serve_loop :
  rd:Unix.file_descr ->
  wr:Unix.file_descr ->
  ?epilogue:(unit -> Util.Json.t) ->
  ?chaos:Chaos.plan ->
  work:(Util.Json.t -> Util.Json.t) ->
  unit ->
  unit

(** [run ~jobs ~work tasks] executes [work tasks.(i)] for every [i] across
    [jobs] forked workers and returns one outcome per task ([None] only
    when [should_stop] or supervision ([stats.gave_up]) ended the run
    before the task was dispatched or finished), plus scheduling
    statistics.

    [work] runs in the worker process; it should be total — an escaping
    exception costs the task ({!Lost}). [worker_init] runs once in each
    fresh worker before any task (e.g. to reset inherited telemetry).
    [epilogue] runs in the worker at clean shutdown and its payload is
    delivered to [on_epilogue] in the parent — the channel for end-of-life
    aggregates like histogram state. [on_complete] fires in completion
    order (live progress); [on_ordered] fires in task order over the
    contiguous completed prefix. [should_stop] is polled between
    scheduling steps; when it turns true the pool kills its workers and
    returns with the undecided outcomes still [None].

    [task_deadline_s], [backoff], [breaker] and [chaos] are the
    supervision/chaos knobs described above. A [chaos] plan containing
    [Stall_self] faults needs a watchdog, or the stalled worker hangs
    the pool by design.

    [remotes] attaches connected TCP worker sockets as additional pool
    lanes (see the module doc). With at least one remote, [jobs] may be
    0 — a purely remote pool; otherwise it is clamped to >= 1. The
    caller keeps ownership of worker provisioning and of any
    init-payload handshake; by the time the fd reaches the pool both
    ends must be speaking pool frames.

    The pool temporarily ignores [SIGPIPE] (restored on exit) so a dying
    worker surfaces as [EPIPE]/EOF, never as a fatal signal.

    Telemetry: bumps [pool.respawns], [pool.timeouts],
    [pool.backoff_waits] and [pool.breaker_trips] counters (no-ops while
    telemetry is disabled). *)
val run :
  jobs:int ->
  ?max_chunk:int ->
  ?worker_init:(unit -> unit) ->
  ?epilogue:(unit -> Util.Json.t) ->
  ?on_epilogue:(Util.Json.t -> unit) ->
  ?on_complete:(int -> outcome -> unit) ->
  ?on_ordered:(int -> outcome -> unit) ->
  ?should_stop:(unit -> bool) ->
  ?task_deadline_s:float ->
  ?backoff:Backoff.t ->
  ?breaker:Breaker.t ->
  ?chaos:Chaos.plan ->
  ?remotes:Unix.file_descr list ->
  work:(Util.Json.t -> Util.Json.t) ->
  Util.Json.t array ->
  outcome option array * stats
