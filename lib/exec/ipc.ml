(* Length-prefixed JSON frames over file descriptors (see the .mli). The
   pool's messages are small (task payloads, per-task results with span
   snapshots), so blocking exact reads after the parent's select are fine:
   the writer always emits whole frames promptly. *)

let max_message = 64 * 1024 * 1024

type read_result = Msg of Util.Json.t | Eof

exception Protocol_error of string

let rec restart_on_eintr f =
  try f () with Unix.Unix_error (Unix.EINTR, _, _) -> restart_on_eintr f

let write_all fd buf pos len =
  let written = ref pos in
  let stop = pos + len in
  while !written < stop do
    let n =
      restart_on_eintr (fun () -> Unix.write fd buf !written (stop - !written))
    in
    written := !written + n
  done

(* [read_all] returns how many bytes actually arrived: [len] normally,
   less only when EOF hit first (the caller decides whether a short count
   is a clean close or a torn frame). *)
let read_all fd buf len =
  let got = ref 0 in
  let eof = ref false in
  while (not !eof) && !got < len do
    let n = restart_on_eintr (fun () -> Unix.read fd buf !got (len - !got)) in
    if n = 0 then eof := true else got := !got + n
  done;
  !got

let header_for len =
  let header = Bytes.create 4 in
  Bytes.set_uint8 header 0 (len lsr 24 land 0xff);
  Bytes.set_uint8 header 1 (len lsr 16 land 0xff);
  Bytes.set_uint8 header 2 (len lsr 8 land 0xff);
  Bytes.set_uint8 header 3 (len land 0xff);
  header

let write fd (j : Util.Json.t) =
  let payload = Bytes.unsafe_of_string (Util.Json.to_string j) in
  let len = Bytes.length payload in
  if len > max_message then
    raise (Protocol_error (Printf.sprintf "message too large (%d bytes)" len));
  write_all fd (header_for len) 0 4;
  write_all fd payload 0 len

type frame_fault = Torn | Corrupt | Delay of float

let sleepf d = ignore (Unix.select [] [] [] d)

let write_faulty fault fd (j : Util.Json.t) =
  match fault with
  | Delay d ->
      if d > 0.0 then sleepf d;
      write fd j
  | Torn ->
      (* header promises the whole payload; deliver only half of it —
         the reader blocks until our close, then sees EOF mid-frame *)
      let payload = Bytes.unsafe_of_string (Util.Json.to_string j) in
      let len = Bytes.length payload in
      write_all fd (header_for len) 0 4;
      write_all fd payload 0 (len / 2)
  | Corrupt ->
      (* full-length frame whose payload can never parse as JSON *)
      let len = Bytes.length (Bytes.unsafe_of_string (Util.Json.to_string j)) in
      let garbage = Bytes.make len '\xff' in
      write_all fd (header_for len) 0 4;
      write_all fd garbage 0 len

let read fd =
  let header = Bytes.create 4 in
  match read_all fd header 4 with
  | 0 -> Eof
  | n when n < 4 -> raise (Protocol_error "EOF inside a frame header")
  | _ ->
      let len =
        (Bytes.get_uint8 header 0 lsl 24)
        lor (Bytes.get_uint8 header 1 lsl 16)
        lor (Bytes.get_uint8 header 2 lsl 8)
        lor Bytes.get_uint8 header 3
      in
      if len > max_message then
        raise
          (Protocol_error (Printf.sprintf "frame length %d exceeds limit" len));
      let payload = Bytes.create len in
      if read_all fd payload len < len then
        raise (Protocol_error "EOF inside a frame payload");
      let s = Bytes.unsafe_to_string payload in
      (match Util.Json.of_string s with
      | Ok j -> Msg j
      | Error m -> raise (Protocol_error ("unparseable frame: " ^ m)))
