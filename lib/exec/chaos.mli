(** Exec.Chaos — seeded, deterministic fault schedules for the
    execution stack.

    A {!plan} decides, per task index, whether the worker that picks the
    task up should be sabotaged — and, per checkpoint-write index,
    whether the write should fail — as a {b pure function of the seed}.
    Placement never depends on scheduling, wall time, or pids, so the
    same seed injects the same faults into the same tasks on every run:
    the chaos harness can assert byte-identical campaign outcomes across
    two runs, and a failure found under [chaos --seed N] is replayable
    from that one integer.

    Injection points (threaded through {!Pool} and the campaign runner):
    a worker-side hook fires the task fault {i after} the "start"
    announcement (so the parent's watchdog sees the in-flight task), and
    the runner's checkpoint writer consults {!ckpt_fault} per appended
    line. *)

type task_fault =
  | Kill_self  (** worker SIGKILLs itself — parent sees a dead worker *)
  | Stall_self
      (** worker SIGSTOPs itself — a silent hang only the watchdog can
          resolve *)
  | Torn_result
      (** worker writes a truncated result frame, then exits 1 — the
          parent's read raises [Ipc.Protocol_error] *)
  | Corrupt_result
      (** worker writes a full-length but unparseable frame, then
          exits 1 *)
  | Delay_result of float
      (** worker completes normally but sleeps first — shuffles
          completion order without losing anything *)

type ckpt_fault =
  | Eio
  | Enospc  (** simulated write errors on the JSONL checkpoint stream *)

(** Coordinator-side faults against a {e remote} (TCP) worker's link,
    keyed by the task index the worker is running when the fault fires.
    Local forked workers are never affected — the pool only consults the
    link schedule for remote transports. *)
type link_fault =
  | Sever  (** shut the socket down mid-task — the TCP analogue of
               [Kill_self]; the task is recorded lost with
               {!severed_link_cause} *)
  | Stall
      (** stop reading the worker's frames — a silent hang only the
          watchdog can resolve (it shuts the link down and records a
          timeout) *)

(** Per-decision probabilities for {!seeded} plans, evaluated in the
    order kill, stall, torn, corrupt, delay (the sum of the task-fault
    rates should stay <= 1). [ckpt] applies independently per
    checkpoint-write index. *)
type rates = {
  kill : float;
  stall : float;
  torn : float;
  corrupt : float;
  delay : float;
  ckpt : float;
}

(** kill 0.10, stall 0.05, torn 0.05, corrupt 0.05, delay 0.10,
    ckpt 0.05. *)
val default_rates : rates

type plan

(** [seeded n] — fault placement from a splitmix64 hash of
    [(n, task index)]. *)
val seeded : ?rates:rates -> int -> plan

(** [explicit faults] — exact placement for tests: an association list
    from task index (position in the pool's fresh-task array) to fault,
    plus optionally from checkpoint-write index to write fault and from
    task index to remote-link fault. *)
val explicit :
  ?ckpt_faults:(int * ckpt_fault) list ->
  ?link_faults:(int * link_fault) list ->
  (int * task_fault) list ->
  plan

(** The seed of a {!seeded} plan; [None] for {!explicit} ones. *)
val seed : plan -> int option

(** The fault scheduled for task index [i], if any. Pure. *)
val task_fault : plan -> int -> task_fault option

(** The fault scheduled for the [k]th checkpoint-write attempt. Pure. *)
val ckpt_fault : plan -> int -> ckpt_fault option

(** The link fault scheduled for task index [i], if any. Rides hash
    lane 6 — independent of the task/ckpt/shard schedules for the same
    index. Seeded placement reuses the kill rate for [Sever] and the
    stall rate for [Stall]. Pure. *)
val link_fault : plan -> int -> link_fault option

val link_fault_name : link_fault -> string

(** The cause string the pool records when chaos severs a remote's link
    ({!link_fault} = [Sever]) — exported so tests can assert
    byte-identical checkpoints. *)
val severed_link_cause : string

(** {2 Shard-scoped faults}

    A shard fault sabotages one shard of one sharded loop invocation in
    the guarded parallel runner — kill/stall/corrupt a shard {e mid-loop}.
    The runner translates the decision into a per-round {!explicit} task
    plan for the pool (task index = shard index), so the usual worker-side
    injection point fires while the shard executes its iteration range.
    Placement is keyed on hash lanes disjoint from the task/ckpt schedules:
    chaosing a campaign and chaosing its parallel loops never alias. *)

type shard_plan

(** Seeded placement over [(invocation, shard)] pairs, same rate ladder as
    {!seeded} (the [ckpt] rate is unused). *)
val shard_seeded : ?rates:rates -> int -> shard_plan

(** Exact placement for tests: [(invocation, shard)] — the runner's global
    sharded-invocation counter and the shard's index — to fault. *)
val shard_explicit : ((int * int) * task_fault) list -> shard_plan

(** The fault scheduled for shard [shard] of sharded invocation
    [invocation], if any. Pure. *)
val shard_fault : shard_plan -> invocation:int -> shard:int -> task_fault option

(** Planned shard-fault counts over invocations [0 .. invocations-1] and
    shards [0 .. shards-1], rendered as ["kill 2, stall 1, ..."]. *)
val shard_summary : shard_plan -> invocations:int -> shards:int -> string

(** True for faults that cost the task (kill, stall, torn, corrupt);
    [Delay_result] completes normally. *)
val lethal : task_fault -> bool

val fault_name : task_fault -> string

val ckpt_fault_name : ckpt_fault -> string

(** The exact loss cause the pool would report for this fault, byte
    identical to the reaper's string — what the runner records when it
    simulates a scheduled loss in degraded (serial) mode so checkpoints
    stay deterministic across the Forked/Serial boundary. [None] for
    [Stall_self] (surfaces as a watchdog timeout, not a loss) and
    [Delay_result]. *)
val simulated_lost_cause : task_fault -> string option

(** Planned fault counts over task indices [0 .. n-1] (and checkpoint
    writes [0 .. n-1]): [(name, count)] with names kill, stall, torn,
    corrupt, delay, ckpt-fail. *)
val planned_counts : plan -> n:int -> (string * int) list

(** [planned_counts] rendered as ["kill 2, stall 1, ..."]. *)
val summary : plan -> n:int -> string
