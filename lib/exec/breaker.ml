(* Consecutive-failure circuit breaker (see the .mli). Deliberately
   tiny: the pool records outcomes, the caller polls [tripped] and
   decides what "open" means (the campaign degrades Forked -> Serial). *)

type t = {
  threshold : int;
  mutable consecutive : int;
  mutable trips : int;
}

let create ?(threshold = 5) () =
  { threshold = max 1 threshold; consecutive = 0; trips = 0 }

let record_success t = t.consecutive <- 0

let record_failure t =
  t.consecutive <- t.consecutive + 1;
  if t.consecutive = t.threshold then t.trips <- t.trips + 1

let tripped t = t.consecutive >= t.threshold

let trips t = t.trips

let reset t = t.consecutive <- 0
