(* Fork-based worker pool with chunked dispatch, work-stealing, reaping
   and supervised respawn (see the .mli for the contract). The parent
   owns the queue and all bookkeeping; workers are a dumb loop: read a
   chunk, announce each task ("start"), run it, report ("done"/"fail"),
   hand unstarted tasks back when asked ("steal" -> "stolen"), and send
   an epilogue ("bye") on "quit". One pipe pair per worker; frames via
   Exec.Ipc.

   Supervision: a watchdog SIGKILLs any worker whose announced task
   outlives the per-task wall deadline (the task is delivered as
   Timed_out, never Lost); respawns are scheduled through an
   exponential-backoff ladder instead of happening instantly; and a
   circuit breaker — or exhausted respawn capacity — makes the pool
   return early with the undecided outcomes still None, so the caller
   can finish the work another way instead of the pool draining the
   queue as Lost. *)

module Json = Util.Json

type outcome =
  | Done of Json.t
  | Lost of string
  | Timed_out of float (* the configured per-task deadline that expired *)

type stats = {
  forked : int;
  respawned : int;
  steals : int;
  tasks_lost : int;
  timeouts : int;
  backoff_waits : int;
  backoff_wait_s : float;
  breaker_trips : int;
  gave_up : string option;
}

let zero_stats =
  {
    forked = 0;
    respawned = 0;
    steals = 0;
    tasks_lost = 0;
    timeouts = 0;
    backoff_waits = 0;
    backoff_wait_s = 0.0;
    breaker_trips = 0;
    gave_up = None;
  }

let detect_jobs () = max 1 (Domain.recommended_domain_count ())

(* supervision counters; visible in heartbeats and Prometheus export
   when telemetry is enabled, free single-branch no-ops otherwise *)
let c_respawns = Obs.Telemetry.counter "pool.respawns"
let c_timeouts = Obs.Telemetry.counter "pool.timeouts"
let c_backoff_waits = Obs.Telemetry.counter "pool.backoff_waits"
let c_breaker_trips = Obs.Telemetry.counter "pool.breaker_trips"

(* ---- small wire helpers ---- *)

let obj_op j = Option.bind (Json.member "op" j) Json.to_str

let obj_int k j = Option.bind (Json.member k j) Json.to_int

let msg_start i = Json.Obj [ ("op", Json.String "start"); ("i", Json.Int i) ]

let msg_done i r =
  Json.Obj [ ("op", Json.String "done"); ("i", Json.Int i); ("r", r) ]

let msg_fail i m =
  Json.Obj
    [ ("op", Json.String "fail"); ("i", Json.Int i); ("msg", Json.String m) ]

let msg_stolen is =
  Json.Obj
    [
      ("op", Json.String "stolen");
      ("is", Json.List (List.map (fun i -> Json.Int i) is));
    ]

let msg_bye e = Json.Obj [ ("op", Json.String "bye"); ("e", e) ]

let msg_chunk tasks =
  Json.Obj
    [
      ("op", Json.String "chunk");
      ( "tasks",
        Json.List
          (List.map
             (fun (i, t) -> Json.Obj [ ("i", Json.Int i); ("t", t) ])
             tasks) );
    ]

let msg_steal = Json.Obj [ ("op", Json.String "steal") ]

let msg_quit = Json.Obj [ ("op", Json.String "quit") ]

(* Human-readable death causes. OCaml signal numbers are its own encoding,
   so translate the ones a worker plausibly dies from. *)
let signal_name n =
  if n = Sys.sigkill then "SIGKILL"
  else if n = Sys.sigterm then "SIGTERM"
  else if n = Sys.sigint then "SIGINT"
  else if n = Sys.sigsegv then "SIGSEGV"
  else if n = Sys.sigabrt then "SIGABRT"
  else if n = Sys.sigbus then "SIGBUS"
  else Printf.sprintf "signal %d" n

let status_string = function
  | Unix.WEXITED n -> Printf.sprintf "worker exited with code %d" n
  | Unix.WSIGNALED n -> "worker killed by " ^ signal_name n
  | Unix.WSTOPPED n -> "worker stopped by " ^ signal_name n

let rec reap pid =
  match Unix.waitpid [] pid with
  | _, status -> status_string status
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> reap pid
  | exception Unix.Unix_error (Unix.ECHILD, _, _) -> "worker already reaped"

let fd_readable ?(timeout = 0.0) fd =
  match Unix.select [ fd ] [] [] timeout with
  | r, _, _ -> r <> []
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> false

(* ---- the worker loop ----

   Shared by forked workers (over pipes) and remote TCP workers (over a
   connected socket, via [serve_loop]): the transport is just a pair of
   fds speaking Ipc frames, so the loop cannot tell the difference. *)

let worker_loop rd wr ~work ~epilogue ~chaos =
  let pending : (int * Json.t) Queue.t = Queue.create () in
  let send j =
    try Ipc.write wr j
    with Unix.Unix_error ((Unix.EPIPE | Unix.EBADF), _, _) -> Unix._exit 1
  in
  let bye () =
    let e = match epilogue with Some f -> f () | None -> Json.Null in
    send (msg_bye e);
    Unix._exit 0
  in
  let handle j =
    match obj_op j with
    | Some "chunk" ->
        List.iter
          (fun t ->
            match (obj_int "i" t, Json.member "t" t) with
            | Some i, Some payload -> Queue.add (i, payload) pending
            | _ -> ())
          (Option.value ~default:[]
             (Option.bind (Json.member "tasks" j) Json.to_list))
    | Some "steal" ->
        (* Give back everything unstarted except one task to stay busy on;
           an idle worker (empty queue) replies with nothing. *)
        if Queue.length pending >= 2 then begin
          let keep = Queue.pop pending in
          let given = Queue.fold (fun acc (i, _) -> i :: acc) [] pending in
          Queue.clear pending;
          Queue.add keep pending;
          send (msg_stolen (List.rev given))
        end
        else send (msg_stolen [])
    | Some "quit" -> bye ()
    | _ -> ()
  in
  let read_one () =
    match Ipc.read rd with
    | Ipc.Eof -> Unix._exit 1 (* parent died *)
    | Ipc.Msg j -> handle j
    | exception Ipc.Protocol_error _ -> Unix._exit 1
  in
  (* Chaos injection, after the "start" announcement so the parent knows
     which task the sabotage lands on (and the watchdog can see a
     stall). Lethal faults never return. Returns a completion delay. *)
  let sabotage i =
    match Option.bind chaos (fun plan -> Chaos.task_fault plan i) with
    | None -> 0.0
    | Some Chaos.Kill_self ->
        Unix.kill (Unix.getpid ()) Sys.sigkill;
        0.0
    | Some Chaos.Stall_self ->
        Unix.kill (Unix.getpid ()) Sys.sigstop;
        (* only reachable if someone SIGCONTs us: die rather than emit
           results the parent already classified as timed out *)
        Unix._exit 1
    | Some Chaos.Torn_result ->
        Ipc.write_faulty Ipc.Torn wr (msg_done i (Json.String "chaos-torn"));
        Unix._exit 1
    | Some Chaos.Corrupt_result ->
        Ipc.write_faulty Ipc.Corrupt wr
          (msg_done i (Json.String "chaos-corrupt"));
        Unix._exit 1
    | Some (Chaos.Delay_result d) -> d
  in
  while true do
    if Queue.is_empty pending then read_one ()
    else begin
      (* between tasks, drain any control traffic (steal/quit) first *)
      while (not (Queue.is_empty pending)) && fd_readable rd do
        read_one ()
      done;
      match Queue.take_opt pending with
      | None -> ()
      | Some (i, payload) -> (
          send (msg_start i);
          let delay = sabotage i in
          match work payload with
          | r ->
              if delay > 0.0 then Unix.sleepf delay;
              send (msg_done i r)
          | exception e -> send (msg_fail i (Printexc.to_string e)))
    end
  done

(* Entry point for a remote worker process: speak the pool protocol over
   an established transport (for TCP workers, the socket from
   Remote.connect — rd and wr are the same fd there). Never returns: the
   loop [_exit]s on "quit" (after the epilogue) or on transport loss. *)
let serve_loop ~rd ~wr ?epilogue ?chaos ~work () =
  worker_loop rd wr ~work ~epilogue ~chaos

(* ---- parent-side bookkeeping ---- *)

type worker = {
  mutable pid : int; (* -1 for remote workers — never signalled or reaped *)
  mutable wr : Unix.file_descr;
  mutable rd : Unix.file_descr;
  mutable assigned : int list; (* dispatched, not yet started *)
  mutable running : int option;
  mutable started_at : float; (* gettimeofday when [running] was set *)
  mutable steal_pending : bool;
  mutable alive : bool;
  mutable respawn_at : float option; (* dead slot scheduled for revival *)
  remote : bool; (* transport is a TCP socket, not a child's pipes *)
  mutable muted : bool; (* chaos Stall: parent stops reading its frames *)
}

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

let fork_worker ~other_fds ~worker_init ~work ~epilogue ~chaos =
  (* nothing buffered may cross the fork twice *)
  flush stdout;
  flush stderr;
  let p2c_r, p2c_w = Unix.pipe () in
  let c2p_r, c2p_w = Unix.pipe () in
  match Unix.fork () with
  | 0 ->
      Unix.close p2c_w;
      Unix.close c2p_r;
      (* drop the parent's handles on sibling workers so their EOFs stay
         observable, and take default signal dispositions: a worker must
         die promptly, not run the campaign's graceful-interrupt logic *)
      List.iter close_quiet other_fds;
      Sys.set_signal Sys.sigint Sys.Signal_default;
      Sys.set_signal Sys.sigterm Sys.Signal_default;
      Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
      (try
         Option.iter (fun f -> f ()) worker_init;
         worker_loop p2c_r c2p_w ~work ~epilogue ~chaos
       with _ -> ());
      Unix._exit 1
  | pid ->
      Unix.close p2c_r;
      Unix.close c2p_w;
      {
        pid;
        wr = p2c_w;
        rd = c2p_r;
        assigned = [];
        running = None;
        started_at = 0.0;
        steal_pending = false;
        alive = true;
        respawn_at = None;
        remote = false;
        muted = false;
      }

let remote_worker fd =
  {
    pid = -1;
    wr = fd;
    rd = fd;
    assigned = [];
    running = None;
    started_at = 0.0;
    steal_pending = false;
    alive = true;
    respawn_at = None;
    remote = true;
    muted = false;
  }

(* the only way to interrupt a remote worker: a socket shutdown surfaces
   as EOF on both ends, whatever the worker is doing *)
let shutdown_quiet fd =
  try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ()

let run ~jobs ?(max_chunk = 8) ?worker_init ?epilogue ?on_epilogue ?on_complete
    ?on_ordered ?(should_stop = fun () -> false) ?task_deadline_s ?backoff
    ?breaker ?chaos ?(remotes = []) ~work (tasks : Json.t array) :
    outcome option array * stats =
  let n = Array.length tasks in
  let outcomes : outcome option array = Array.make n None in
  if n = 0 then (outcomes, zero_stats)
  else begin
    (* with remote workers attached, zero local forks is a valid shape *)
    let jobs =
      if remotes = [] then max 1 (min jobs n) else max 0 (min jobs n)
    in
    let lanes = max 1 (jobs + List.length remotes) in
    let backoff =
      match backoff with Some b -> b | None -> Backoff.create ~seed:0 ()
    in
    let pending : int Queue.t = Queue.create () in
    for i = 0 to n - 1 do
      Queue.add i pending
    done;
    let decided = ref 0 in
    let next_ordered = ref 0 in
    let forked = ref 0 in
    let respawned = ref 0 in
    let steals = ref 0 in
    let tasks_lost = ref 0 in
    let timeouts = ref 0 in
    let backoff_waits = ref 0 in
    let backoff_wait_s = ref 0.0 in
    let gave_up : string option ref = ref None in
    let respawn_budget = ref (n + (2 * jobs)) in
    let workers : worker array ref = ref [||] in
    let other_fds () =
      Array.to_list !workers
      |> List.concat_map (fun w -> if w.alive then [ w.wr; w.rd ] else [])
    in
    let spawn () =
      incr forked;
      fork_worker ~other_fds:(other_fds ()) ~worker_init ~work ~epilogue ~chaos
    in
    let deliver i o =
      if outcomes.(i) = None then begin
        outcomes.(i) <- Some o;
        incr decided;
        (match o with
        | Lost _ ->
            incr tasks_lost;
            Option.iter
              (fun b ->
                let was = Breaker.tripped b in
                Breaker.record_failure b;
                if (not was) && Breaker.tripped b then
                  Obs.Telemetry.incr c_breaker_trips)
              breaker
        | Timed_out _ ->
            incr timeouts;
            Obs.Telemetry.incr c_timeouts;
            Option.iter
              (fun b ->
                let was = Breaker.tripped b in
                Breaker.record_failure b;
                if (not was) && Breaker.tripped b then
                  Obs.Telemetry.incr c_breaker_trips)
              breaker
        | Done _ ->
            Backoff.reset backoff;
            Option.iter Breaker.record_success breaker);
        Option.iter (fun f -> f i o) on_complete;
        match on_ordered with
        | None -> ()
        | Some f ->
            let rec flush_prefix () =
              if !next_ordered < n then
                match outcomes.(!next_ordered) with
                | Some o' ->
                    let i' = !next_ordered in
                    incr next_ordered;
                    f i' o';
                    flush_prefix ()
                | None -> ()
            in
            flush_prefix ()
      end
    in
    let respawn_now (w : worker) =
      incr respawned;
      Obs.Telemetry.incr c_respawns;
      let fresh = spawn () in
      w.pid <- fresh.pid;
      w.wr <- fresh.wr;
      w.rd <- fresh.rd;
      w.started_at <- 0.0;
      w.respawn_at <- None;
      w.alive <- true
    in
    (* forward declaration to let dispatch and the death path recurse *)
    let rec on_death (w : worker) ~stopping =
      if w.alive then begin
        w.alive <- false;
        close_quiet w.wr;
        close_quiet w.rd;
        let cause =
          if w.remote then "remote worker disconnected" else reap w.pid
        in
        if stopping then begin
          (* interrupted run: in-flight work is simply not decided *)
          Option.iter
            (fun i -> if outcomes.(i) = None then Queue.add i pending)
            w.running;
          List.iter (fun i -> Queue.add i pending) w.assigned
        end
        else begin
          Option.iter (fun i -> deliver i (Lost cause)) w.running;
          List.iter (fun i -> Queue.add i pending) w.assigned
        end;
        w.running <- None;
        w.assigned <- [];
        w.steal_pending <- false;
        (* Supervised respawn: never instant — each consecutive failure
           climbs the backoff ladder (a Done resets it), so a poison
           workload can't turn the parent into a fork storm. A slot with
           no budget just stays dead; if that was the last capacity the
           main loop notices and gives up rather than draining the queue
           as Lost. Remote workers are never respawned: the coordinator
           cannot re-establish a connection the far side initiated. *)
        if
          (not w.remote) && (not stopping)
          && (not (Queue.is_empty pending))
          && !respawn_budget > 0
        then begin
          decr respawn_budget;
          let delay = Backoff.next backoff in
          if delay <= 0.0 then respawn_now w
          else begin
            incr backoff_waits;
            Obs.Telemetry.incr c_backoff_waits;
            backoff_wait_s := !backoff_wait_s +. delay;
            w.respawn_at <- Some (Unix.gettimeofday () +. delay)
          end
        end
      end
    and send_to w j =
      try Ipc.write w.wr j
      with
      | Unix.Unix_error (Unix.EPIPE, _, _)
      | Unix.Unix_error (Unix.EBADF, _, _)
      | Unix.Unix_error (Unix.ECONNRESET, _, _)
      ->
        on_death w ~stopping:false
    in
    let dispatch () =
      let ws = !workers in
      (* hand chunks to idle workers while the queue lasts *)
      Array.iter
        (fun w ->
          if
            w.alive && w.assigned = [] && w.running = None
            && not (Queue.is_empty pending)
          then begin
            let size =
              max 1 (min max_chunk (Queue.length pending / (2 * lanes)))
            in
            let chunk = ref [] in
            for _ = 1 to size do
              match Queue.take_opt pending with
              | Some i -> chunk := i :: !chunk
              | None -> ()
            done;
            let chunk = List.rev !chunk in
            if chunk <> [] then begin
              w.assigned <- chunk;
              send_to w (msg_chunk (List.map (fun i -> (i, tasks.(i))) chunk))
            end
          end)
        ws;
      (* queue dry + idle hands: steal back the largest unstarted backlog *)
      if Queue.is_empty pending then
        let idle =
          Array.exists
            (fun w -> w.alive && w.assigned = [] && w.running = None)
            ws
        in
        if idle then
          let victim =
            (* a worker always keeps one unstarted task for itself, so a
               backlog of one can never be reclaimed — asking would just
               ping-pong empty steal replies against a busy straggler *)
            Array.fold_left
              (fun best w ->
                if
                  w.alive && (not w.steal_pending)
                  && List.length w.assigned >= 2
                then
                  match best with
                  | Some b when List.length b.assigned >= List.length w.assigned
                    ->
                      best
                  | _ -> Some w
                else best)
              None ws
          in
          match victim with
          | Some v ->
              v.steal_pending <- true;
              send_to v msg_steal
          | None -> ()
    in
    (* Watchdog: any announced task older than the deadline costs its
       worker a SIGKILL (which also terminates a SIGSTOP-stalled
       process) and is delivered as Timed_out — with the configured
       deadline, not the measured elapsed, so the outcome is
       deterministic. The death surfaces as EOF on the next select and
       takes the normal requeue/respawn path; running is cleared here so
       the reaper does not re-deliver the task as Lost. A remote worker
       cannot be signalled, so its remedy is a socket shutdown — same
       observable EOF, and the far side exits on transport loss. *)
    let check_watchdog () =
      match task_deadline_s with
      | None -> ()
      | Some deadline ->
          let now = Unix.gettimeofday () in
          Array.iter
            (fun w ->
              if w.alive then
                match w.running with
                | Some i when now -. w.started_at > deadline ->
                    deliver i (Timed_out deadline);
                    w.running <- None;
                    if w.remote then begin
                      w.muted <- false;
                      shutdown_quiet w.rd
                    end
                    else
                      (try Unix.kill w.pid Sys.sigkill
                       with Unix.Unix_error _ -> ())
                | _ -> ())
            !workers
    in
    (* Chaos against a remote's *link*, fired when the remote announces
       the scheduled task: Sever records the loss deterministically and
       shuts the socket down (its unstarted backlog requeues via the EOF
       path); Stall mutes the fd — the parent stops reading frames, a
       silent hang only the watchdog can resolve. Local workers have
       their own (worker-side) fault schedule and are never link-chaosed. *)
    let link_sabotage (w : worker) i =
      if w.remote then
        match Option.bind chaos (fun plan -> Chaos.link_fault plan i) with
        | None -> ()
        | Some Chaos.Sever ->
            deliver i (Lost Chaos.severed_link_cause);
            w.running <- None;
            shutdown_quiet w.rd
        | Some Chaos.Stall -> w.muted <- true
    in
    let handle_msg (w : worker) j =
      match obj_op j with
      | Some "start" ->
          Option.iter
            (fun i ->
              w.running <- Some i;
              w.started_at <- Unix.gettimeofday ();
              w.assigned <- List.filter (fun a -> a <> i) w.assigned;
              link_sabotage w i)
            (obj_int "i" j)
      | Some "done" -> (
          match (obj_int "i" j, Json.member "r" j) with
          | Some i, Some r ->
              if w.running = Some i then w.running <- None;
              deliver i (Done r)
          | _ -> ())
      | Some "fail" -> (
          match obj_int "i" j with
          | Some i ->
              if w.running = Some i then w.running <- None;
              let m =
                Option.value ~default:"unknown exception"
                  (Option.bind (Json.member "msg" j) Json.to_str)
              in
              deliver i (Lost ("exception in worker: " ^ m))
          | None -> ())
      | Some "stolen" ->
          w.steal_pending <- false;
          let is =
            Option.value ~default:[]
              (Option.bind (Json.member "is" j) Json.to_list)
            |> List.filter_map Json.to_int
          in
          if is <> [] then incr steals;
          List.iter
            (fun i ->
              w.assigned <- List.filter (fun a -> a <> i) w.assigned;
              Queue.add i pending)
            is
      | Some "bye" | _ -> () (* bye only expected during shutdown *)
    in
    let old_sigpipe =
      try Some (Sys.signal Sys.sigpipe Sys.Signal_ignore) with Invalid_argument _ -> None
    in
    let stopped = ref false in
    Fun.protect
      ~finally:(fun () ->
        Array.iter
          (fun w ->
            if w.alive then begin
              if w.remote then shutdown_quiet w.rd
              else begin
                (try Unix.kill w.pid Sys.sigkill with Unix.Unix_error _ -> ());
                ignore (reap w.pid)
              end;
              close_quiet w.wr;
              close_quiet w.rd;
              w.alive <- false
            end)
          !workers;
        Option.iter (fun b -> ignore (Sys.signal Sys.sigpipe b)) old_sigpipe)
      (fun () ->
        (* remotes first so freshly forked locals inherit (and close) the
           socket fds via other_fds *)
        workers := Array.of_list (List.map remote_worker remotes);
        workers := Array.append !workers (Array.init jobs (fun _ -> spawn ()));
        while !decided < n && (not !stopped) && !gave_up = None do
          if should_stop () then stopped := true
          else if
            match breaker with Some b -> Breaker.tripped b | None -> false
          then gave_up := Some "circuit breaker open"
          else begin
            (* revive dead slots whose backoff delay has elapsed (only
               if there is still queued work for them to pick up) *)
            let now = Unix.gettimeofday () in
            Array.iter
              (fun w ->
                match w.respawn_at with
                | Some t when (not w.alive) && now >= t ->
                    w.respawn_at <- None;
                    if not (Queue.is_empty pending) then respawn_now w
                | _ -> ())
              !workers;
            dispatch ();
            let rds =
              Array.to_list !workers
              |> List.filter_map (fun w ->
                     if w.alive && not w.muted then Some w.rd else None)
            in
            if rds = [] then begin
              if
                Array.exists
                  (fun w -> w.respawn_at <> None || (w.alive && w.muted))
                  !workers
              then
                (* every readable worker is gone but a respawn is
                   scheduled — or a muted (chaos-stalled) remote is
                   waiting for the watchdog: wait instead of busy-looping *)
                Unix.sleepf 0.02
              else if !decided < n then
                gave_up := Some "worker respawn capacity exhausted"
            end
            else begin
              let ready =
                match Unix.select rds [] [] 0.25 with
                | r, _, _ -> r
                | exception Unix.Unix_error (Unix.EINTR, _, _) -> []
              in
              List.iter
                (fun fd ->
                  match
                    Array.find_opt (fun w -> w.alive && w.rd = fd) !workers
                  with
                  | None -> ()
                  | Some w -> (
                      match Ipc.read fd with
                      | Ipc.Msg j -> handle_msg w j
                      | Ipc.Eof -> on_death w ~stopping:(should_stop ())
                      | exception Ipc.Protocol_error _ ->
                          on_death w ~stopping:(should_stop ())))
                ready
            end;
            check_watchdog ()
          end
        done;
        (* clean shutdown: collect epilogues from the survivors *)
        if (not !stopped) && !gave_up = None then
          Array.iter
            (fun w ->
              if w.alive then begin
                send_to w msg_quit;
                if w.alive then begin
                  let rec drain () =
                    match Ipc.read w.rd with
                    | Ipc.Eof -> ()
                    | Ipc.Msg j -> (
                        match (obj_op j, Json.member "e" j) with
                        | Some "bye", Some e ->
                            Option.iter (fun f -> f e) on_epilogue
                        | _ -> drain ())
                    | exception Ipc.Protocol_error _ -> ()
                  in
                  drain ();
                  if w.remote then shutdown_quiet w.rd
                  else ignore (reap w.pid);
                  close_quiet w.wr;
                  close_quiet w.rd;
                  w.alive <- false
                end
              end)
            !workers)
    ;
    ( outcomes,
      {
        forked = !forked;
        respawned = !respawned;
        steals = !steals;
        tasks_lost = !tasks_lost;
        timeouts = !timeouts;
        backoff_waits = !backoff_waits;
        backoff_wait_s = !backoff_wait_s;
        breaker_trips =
          (match breaker with Some b -> Breaker.trips b | None -> 0);
        gave_up = !gave_up;
      } )
  end
