(** Exec.Ipc — length-prefixed JSON message framing over raw file
    descriptors: the wire format of the worker pool ({!Pool}).

    One message = a 4-byte big-endian payload length followed by that many
    bytes of compact JSON ({!Util.Json.to_string}). Framing is carried by
    the length prefix alone, so payloads may contain newlines or any other
    byte; the codec never scans for delimiters. All reads and writes retry
    on [EINTR] — a campaign's SIGINT handler must not corrupt a frame. *)

(** Refuse to allocate for a length prefix above this (64 MiB): a larger
    prefix means the stream is corrupt, not that the message is big. *)
val max_message : int

type read_result =
  | Msg of Util.Json.t
  | Eof  (** clean close, or a peer that died between messages *)

exception
  Protocol_error of string
        (** short read mid-message, oversized prefix, or unparseable
            payload — the stream is unusable after this *)

(** Write one framed message. The caller handles [Unix.EPIPE] (peer
    died); partial writes are completed internally. *)
val write : Unix.file_descr -> Util.Json.t -> unit

(** Blocking read of one framed message. [Eof] only at a frame boundary;
    EOF mid-frame raises {!Protocol_error}. *)
val read : Unix.file_descr -> read_result

(** Deliberate frame damage, for {!Chaos} injection. *)
type frame_fault =
  | Torn
      (** header promises the full payload, only half is written — the
          peer's read raises {!Protocol_error} once the stream closes *)
  | Corrupt
      (** correct length, unparseable payload — {!Protocol_error} at
          parse time *)
  | Delay of float  (** sleep that many seconds, then write normally *)

(** [write_faulty fault fd j] writes [j]'s frame damaged per [fault].
    After [Torn] the stream is unusable; the caller is expected to close
    it (chaos workers [_exit] right after). *)
val write_faulty : frame_fault -> Unix.file_descr -> Util.Json.t -> unit
