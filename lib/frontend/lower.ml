(* Lowering from the checked AST to SSA IR, using on-the-fly SSA construction
   (Braun et al., "Simple and Efficient Construction of Static Single
   Assignment Form", CC 2013). Scalars never touch memory, so register
   loop-carried dependencies appear directly as loop-header phis — exactly
   what the limit study classifies. Arrays live on the heap ([alloc]); the
   word before an array's base stores its length. Globals are load/store
   through a [Global] address.

   Semantics fixed here: variables without initializers are zero-valued;
   `new` returns zero-filled storage; bool equality compares i1 directly. *)

open Ast

exception Lower_error of string * pos

let ir_ty : Ast.ty -> Ir.Types.ty = function
  | Tint -> Ir.Types.I64
  | Tfloat -> Ir.Types.F64
  | Tbool -> Ir.Types.I1
  | Tarr _ -> Ir.Types.I64

let zero_value : Ir.Types.ty -> Ir.Types.value = function
  | Ir.Types.I64 -> Ir.Types.int_ 0
  | Ir.Types.F64 -> Ir.Types.float_ 0.0
  | Ir.Types.I1 -> Ir.Types.bool_ false

(* A resolved variable reference. *)
type var_ref = Local of string (* unique SSA variable name *) | Glob of string

type ctx = {
  fn : Ir.Func.t;
  bld : Ir.Builder.t;
  func_rets : (string * Ir.Types.ty option) list; (* user function results *)
  global_tys : (string * Ast.ty) list;
  (* Braun SSA state *)
  current_def : (int * string, Ir.Types.value) Hashtbl.t; (* (block, var) *)
  mutable sealed : (int, unit) Hashtbl.t;
  incomplete : (int, (string * int) list) Hashtbl.t; (* block -> (var, phi id) *)
  preds : (int, int list) Hashtbl.t; (* incremental predecessor map *)
  var_ty : (string, Ir.Types.ty) Hashtbl.t; (* unique var -> IR type *)
  (* forwarding for removed trivial phis: phi id -> replacement value *)
  replaced : (int, Ir.Types.value) Hashtbl.t;
  (* scope stack: source name -> unique var name *)
  mutable scopes : (string, string) Hashtbl.t list;
  mutable name_counter : int;
  (* (continue target, break target) stack *)
  mutable loop_stack : (int * int) list;
  (* source position of the statement/expression being lowered: internal
     invariant breakage is reported as a located diagnostic, not a crash *)
  mutable cur_pos : pos;
}

let fresh_name ctx base =
  ctx.name_counter <- ctx.name_counter + 1;
  Printf.sprintf "%s.%d" base ctx.name_counter

let push_scope ctx = ctx.scopes <- Hashtbl.create 8 :: ctx.scopes

let pop_scope ctx =
  match ctx.scopes with [] -> () | _ :: rest -> ctx.scopes <- rest

let declare_var ctx name ty =
  let unique = fresh_name ctx name in
  (match ctx.scopes with
  | scope :: _ -> Hashtbl.replace scope name unique
  | [] ->
      raise
        (Lower_error
           ("internal: declaration of " ^ name ^ " outside any scope", ctx.cur_pos)));
  Hashtbl.replace ctx.var_ty unique (ir_ty ty);
  unique

let resolve_var ctx pos name : var_ref =
  let rec go = function
    | [] -> (
        match List.assoc_opt name ctx.global_tys with
        | Some _ -> Glob name
        | None -> raise (Lower_error ("unresolved variable " ^ name, pos)))
    | scope :: rest -> (
        match Hashtbl.find_opt scope name with
        | Some unique -> Local unique
        | None -> go rest)
  in
  go ctx.scopes

let predecessors ctx b = Option.value ~default:[] (Hashtbl.find_opt ctx.preds b)

let add_pred ctx ~from_ ~to_ =
  Hashtbl.replace ctx.preds to_ (from_ :: predecessors ctx to_)

(* Terminator emission keeps the incremental predecessor map in sync. *)
let emit_br ctx target =
  let from_ = Ir.Builder.current ctx.bld in
  Ir.Builder.br ctx.bld target;
  add_pred ctx ~from_ ~to_:target

let emit_cond_br ctx c l1 l2 =
  let from_ = Ir.Builder.current ctx.bld in
  Ir.Builder.cond_br ctx.bld c l1 l2;
  add_pred ctx ~from_ ~to_:l1;
  if l1 <> l2 then add_pred ctx ~from_ ~to_:l2

(* ---- Braun et al. SSA construction ---- *)

(* Chase the forwarding chain of removed trivial phis. Values can go stale
   when a recursive try_remove_trivial_phi removes a phi that an outer call
   already chose as a replacement. *)
let rec resolve ctx v =
  match v with
  | Ir.Types.Reg id -> (
      match Hashtbl.find_opt ctx.replaced id with
      | Some v' -> resolve ctx v'
      | None -> v)
  | _ -> v

let write_variable ctx var block value =
  Hashtbl.replace ctx.current_def (block, var) (resolve ctx value)

let var_ir_ty ctx var =
  match Hashtbl.find_opt ctx.var_ty var with
  | Some t -> t
  | None ->
      raise (Lower_error ("internal: variable " ^ var ^ " has no type", ctx.cur_pos))

let rec read_variable ctx var block : Ir.Types.value =
  match Hashtbl.find_opt ctx.current_def (block, var) with
  | Some v -> resolve ctx v
  | None -> resolve ctx (read_variable_recursive ctx var block)

and read_variable_recursive ctx var block =
  let value =
    if not (Hashtbl.mem ctx.sealed block) then begin
      let phi = Ir.Builder.phi_placeholder ctx.fn block ~ty:(var_ir_ty ctx var) in
      let pending = Option.value ~default:[] (Hashtbl.find_opt ctx.incomplete block) in
      Hashtbl.replace ctx.incomplete block ((var, phi) :: pending);
      Ir.Types.Reg phi
    end
    else
      match predecessors ctx block with
      | [] ->
          (* Entry block or dead code: the variable is unwritten here; it
             reads as the zero of its type. *)
          zero_value (var_ir_ty ctx var)
      | [ p ] -> read_variable ctx var p
      | _ :: _ ->
          let phi = Ir.Builder.phi_placeholder ctx.fn block ~ty:(var_ir_ty ctx var) in
          write_variable ctx var block (Ir.Types.Reg phi);
          add_phi_operands ctx var phi
  in
  write_variable ctx var block value;
  value

and add_phi_operands ctx var phi : Ir.Types.value =
  let block = (Ir.Func.instr ctx.fn phi).Ir.Instr.block in
  let incoming =
    List.map (fun p -> (p, read_variable ctx var p)) (List.rev (predecessors ctx block))
  in
  (* A later read in the list may have removed a phi an earlier read
     returned; re-resolve at installation time. *)
  let incoming = List.map (fun (p, v) -> (p, resolve ctx v)) incoming in
  Ir.Func.set_kind ctx.fn phi (Ir.Instr.Phi (Array.of_list incoming));
  try_remove_trivial_phi ctx phi

and try_remove_trivial_phi ctx phi : Ir.Types.value =
  let self = Ir.Types.Reg phi in
  match Ir.Func.kind ctx.fn phi with
  | Ir.Instr.Phi incoming -> (
      let same = ref None in
      let trivial = ref true in
      Array.iter
        (fun (_, v) ->
          if Ir.Types.equal_value v self then ()
          else
            match !same with
            | Some s when Ir.Types.equal_value s v -> ()
            | Some _ -> trivial := false
            | None -> same := Some v)
        incoming;
      if not !trivial then self
      else begin
        let replacement =
          match !same with
          | Some v -> v
          | None ->
              (* Phi with no non-self operands: only in unreachable code. *)
              zero_value
                (match (Ir.Func.instr ctx.fn phi).Ir.Instr.ty with
                | Some t -> t
                | None -> Ir.Types.I64)
        in
        (* Collect phi users before rewriting, then recurse on those that may
           have become trivial. *)
        let phi_users =
          Ir.Func.fold_instrs
            (fun acc i ->
              match i.Ir.Instr.kind with
              | Ir.Instr.Phi _
                when i.Ir.Instr.id <> phi
                     && List.exists
                          (fun v -> Ir.Types.equal_value v self)
                          (Ir.Instr.operands i.Ir.Instr.kind) ->
                  i.Ir.Instr.id :: acc
              | _ -> acc)
            [] ctx.fn
        in
        Hashtbl.replace ctx.replaced phi replacement;
        Ir.Func.replace_all_uses ctx.fn ~old_id:phi ~with_:replacement;
        (* Any current_def entries naming this phi must follow the rewrite. *)
        Hashtbl.iter
          (fun k v ->
            if Ir.Types.equal_value v self then
              Hashtbl.replace ctx.current_def k replacement)
          (Hashtbl.copy ctx.current_def);
        Ir.Func.remove_instr ctx.fn (Ir.Func.instr ctx.fn phi).Ir.Instr.block phi;
        List.iter (fun p -> ignore (try_remove_trivial_phi ctx p)) phi_users;
        (* The recursion may have removed [replacement] itself. *)
        resolve ctx replacement
      end)
  | _ -> self

let seal_block ctx block =
  if not (Hashtbl.mem ctx.sealed block) then begin
    (match Hashtbl.find_opt ctx.incomplete block with
    | Some pending ->
        List.iter (fun (var, phi) -> ignore (add_phi_operands ctx var phi)) pending;
        Hashtbl.remove ctx.incomplete block
    | None -> ());
    Hashtbl.replace ctx.sealed block ()
  end

(* ---- Expression lowering ---- *)

let ety e =
  match e.ety with
  | Some t -> t
  | None -> raise (Lower_error ("internal: untyped expression", e.pos))

let rec lower_expr ctx (e : expr) : Ir.Types.value =
  let b = ctx.bld in
  if e.pos <> no_pos then ctx.cur_pos <- e.pos;
  match e.e with
  | Eint v -> Ir.Types.int64_ v
  | Efloat v -> Ir.Types.float_ v
  | Ebool v -> Ir.Types.bool_ v
  | Evar name -> (
      match resolve_var ctx e.pos name with
      | Local unique -> read_variable ctx unique (Ir.Builder.current b)
      | Glob g -> (
          match List.assoc_opt g ctx.global_tys with
          | Some gty -> Ir.Builder.load b ~ty:(ir_ty gty) (Ir.Types.Global g)
          | None ->
              raise (Lower_error ("internal: unresolved global " ^ g, e.pos))))
  | Eun (Uneg, x) ->
      let v = lower_expr ctx x in
      if ety x = Tfloat then Ir.Builder.fsub b (Ir.Types.float_ 0.0) v
      else Ir.Builder.sub b (Ir.Types.int_ 0) v
  | Eun (Unot, x) ->
      let v = lower_expr ctx x in
      Ir.Builder.icmp b Ir.Instr.Ieq v (Ir.Types.bool_ false)
  | Eand (l, r) -> lower_short_circuit ctx ~is_and:true l r
  | Eor (l, r) -> lower_short_circuit ctx ~is_and:false l r
  | Ebin (op, l, r) -> lower_binop ctx op l r
  | Eindex (arr, idx) ->
      let base = lower_expr ctx arr in
      let i = lower_expr ctx idx in
      let addr = Ir.Builder.add b base i in
      let elem = match ety arr with Tarr t -> t | _ -> Tint in
      Ir.Builder.load b ~ty:(ir_ty elem) addr
  | Enew (_, size) ->
      let n = lower_expr ctx size in
      let words = Ir.Builder.add b n (Ir.Types.int_ 1) in
      let base = Ir.Builder.alloc b words in
      Ir.Builder.store b ~addr:base n;
      Ir.Builder.add b base (Ir.Types.int_ 1)
  | Elen arr ->
      let base = lower_expr ctx arr in
      let addr = Ir.Builder.sub b base (Ir.Types.int_ 1) in
      Ir.Builder.load b ~ty:Ir.Types.I64 addr
  | Ecall (name, args) -> lower_call ctx e.pos name args (Some (ety e))

and lower_short_circuit ctx ~is_and l r =
  let b = ctx.bld in
  let lv = lower_expr ctx l in
  let lhs_block = Ir.Builder.current b in
  let rhs_block = Ir.Builder.fresh_block ~name:"sc.rhs" ctx.bld in
  let merge = Ir.Builder.fresh_block ~name:"sc.merge" ctx.bld in
  if is_and then emit_cond_br ctx lv rhs_block merge
  else emit_cond_br ctx lv merge rhs_block;
  seal_block ctx rhs_block;
  Ir.Builder.position b rhs_block;
  let rv = lower_expr ctx r in
  let rhs_end = Ir.Builder.current b in
  emit_br ctx merge;
  seal_block ctx merge;
  Ir.Builder.position b merge;
  let short_val = Ir.Types.bool_ (not is_and) in
  Ir.Builder.phi b ~ty:Ir.Types.I1 [ (lhs_block, short_val); (rhs_end, rv) ]

and lower_binop ctx op l r =
  let b = ctx.bld in
  let fl = ety l = Tfloat in
  let lv = lower_expr ctx l in
  let rv = lower_expr ctx r in
  match (op, fl) with
  | Badd, false -> Ir.Builder.add b lv rv
  | Bsub, false -> Ir.Builder.sub b lv rv
  | Bmul, false -> Ir.Builder.mul b lv rv
  | Bdiv, false -> Ir.Builder.sdiv b lv rv
  | Bmod, _ -> Ir.Builder.srem b lv rv
  | Badd, true -> Ir.Builder.fadd b lv rv
  | Bsub, true -> Ir.Builder.fsub b lv rv
  | Bmul, true -> Ir.Builder.fmul b lv rv
  | Bdiv, true -> Ir.Builder.fdiv b lv rv
  | Band, _ -> Ir.Builder.and_ b lv rv
  | Bor, _ -> Ir.Builder.or_ b lv rv
  | Bxor, _ -> Ir.Builder.xor b lv rv
  | Bshl, _ -> Ir.Builder.shl b lv rv
  | Bshr, _ -> Ir.Builder.ashr b lv rv
  | Beq, _ | Bne, _ | Blt, _ | Ble, _ | Bgt, _ | Bge, _ ->
      if fl then
        let fop =
          match op with
          | Beq -> Ir.Instr.Feq
          | Bne -> Ir.Instr.Fne
          | Blt -> Ir.Instr.Flt
          | Ble -> Ir.Instr.Fle
          | Bgt -> Ir.Instr.Fgt
          | Bge -> Ir.Instr.Fge
          | _ -> assert false
        in
        Ir.Builder.fcmp b fop lv rv
      else
        let iop =
          match op with
          | Beq -> Ir.Instr.Ieq
          | Bne -> Ir.Instr.Ine
          | Blt -> Ir.Instr.Islt
          | Ble -> Ir.Instr.Isle
          | Bgt -> Ir.Instr.Isgt
          | Bge -> Ir.Instr.Isge
          | _ -> assert false
        in
        Ir.Builder.icmp b iop lv rv

and lower_call ctx pos name args result_ty : Ir.Types.value =
  let b = ctx.bld in
  let vals () = List.map (lower_expr ctx) args in
  match (name, args) with
  (* intrinsics expand inline: no call instruction, no fn-ladder impact *)
  | "float", [ x ] -> Ir.Builder.si_to_fp b (lower_expr ctx x)
  | "int", [ x ] -> Ir.Builder.fp_to_si b (lower_expr ctx x)
  | "imin", [ x; y ] ->
      let xv = lower_expr ctx x and yv = lower_expr ctx y in
      let c = Ir.Builder.icmp b Ir.Instr.Islt xv yv in
      Ir.Builder.select b ~ty:Ir.Types.I64 c xv yv
  | "imax", [ x; y ] ->
      let xv = lower_expr ctx x and yv = lower_expr ctx y in
      let c = Ir.Builder.icmp b Ir.Instr.Isgt xv yv in
      Ir.Builder.select b ~ty:Ir.Types.I64 c xv yv
  | "fminv", [ x; y ] ->
      let xv = lower_expr ctx x and yv = lower_expr ctx y in
      let c = Ir.Builder.fcmp b Ir.Instr.Flt xv yv in
      Ir.Builder.select b ~ty:Ir.Types.F64 c xv yv
  | "fmaxv", [ x; y ] ->
      let xv = lower_expr ctx x and yv = lower_expr ctx y in
      let c = Ir.Builder.fcmp b Ir.Instr.Fgt xv yv in
      Ir.Builder.select b ~ty:Ir.Types.F64 c xv yv
  | "iabs", [ x ] ->
      let xv = lower_expr ctx x in
      let c = Ir.Builder.icmp b Ir.Instr.Islt xv (Ir.Types.int_ 0) in
      let n = Ir.Builder.sub b (Ir.Types.int_ 0) xv in
      Ir.Builder.select b ~ty:Ir.Types.I64 c n xv
  | "fabs", [ x ] ->
      let xv = lower_expr ctx x in
      let c = Ir.Builder.fcmp b Ir.Instr.Flt xv (Ir.Types.float_ 0.0) in
      let n = Ir.Builder.fsub b (Ir.Types.float_ 0.0) xv in
      Ir.Builder.select b ~ty:Ir.Types.F64 c n xv
  | _ -> (
      let ret_ir =
        match Ir.Builtins.find name with
        | Some s -> s.Ir.Builtins.ret
        | None -> (
            match List.assoc_opt name ctx.func_rets with
            | Some r -> r
            | None -> (
                (* arrcopy/arrfill are builtins with array-generic types *)
                match result_ty with
                | Some t -> Some (ir_ty t)
                | None -> None))
      in
      match ret_ir with
      | Some ty -> Ir.Builder.call b ~ty:(Some ty) name (vals ())
      | None ->
          Ir.Builder.call_unit b name (vals ());
          raise_void_use pos name result_ty)

and raise_void_use pos name result_ty =
  match result_ty with
  | None -> Ir.Types.int_ 0 (* dummy; callers of void calls discard this *)
  | Some _ -> raise (Lower_error ("void call used as a value: " ^ name, pos))

(* ---- Statement lowering ---- *)

let rec lower_stmt ctx (s : stmt) : unit =
  let b = ctx.bld in
  if s.spos <> no_pos then ctx.cur_pos <- s.spos;
  match s.s with
  | Svar (name, ty, init) ->
      let v =
        match init with
        | Some e -> lower_expr ctx e
        | None -> zero_value (ir_ty ty)
      in
      let unique = declare_var ctx name ty in
      write_variable ctx unique (Ir.Builder.current b) v
  | Sassign (name, e) -> (
      let v = lower_expr ctx e in
      match resolve_var ctx s.spos name with
      | Local unique -> write_variable ctx unique (Ir.Builder.current b) v
      | Glob g -> Ir.Builder.store b ~addr:(Ir.Types.Global g) v)
  | Sstore (arr, idx, v) ->
      let base = lower_expr ctx arr in
      let i = lower_expr ctx idx in
      let addr = Ir.Builder.add b base i in
      let value = lower_expr ctx v in
      Ir.Builder.store b ~addr value
  | Sif (cond, then_, else_) ->
      let cv = lower_expr ctx cond in
      let then_block = Ir.Builder.fresh_block ~name:"if.then" b in
      let merge = Ir.Builder.fresh_block ~name:"if.merge" b in
      let else_block =
        if else_ = [] then merge else Ir.Builder.fresh_block ~name:"if.else" b
      in
      emit_cond_br ctx cv then_block else_block;
      seal_block ctx then_block;
      Ir.Builder.position b then_block;
      push_scope ctx;
      List.iter (lower_stmt ctx) then_;
      pop_scope ctx;
      if not (Ir.Builder.is_closed b) then emit_br ctx merge;
      if else_ <> [] then begin
        seal_block ctx else_block;
        Ir.Builder.position b else_block;
        push_scope ctx;
        List.iter (lower_stmt ctx) else_;
        pop_scope ctx;
        if not (Ir.Builder.is_closed b) then emit_br ctx merge
      end;
      seal_block ctx merge;
      Ir.Builder.position b merge
  | Swhile (cond, body) ->
      let header = Ir.Builder.fresh_block ~name:"while.header" b in
      let body_block = Ir.Builder.fresh_block ~name:"while.body" b in
      let exit = Ir.Builder.fresh_block ~name:"while.exit" b in
      emit_br ctx header;
      (* header stays unsealed until every latch (including continues) is in *)
      Ir.Builder.position b header;
      let cv = lower_expr ctx cond in
      emit_cond_br ctx cv body_block exit;
      seal_block ctx body_block;
      Ir.Builder.position b body_block;
      ctx.loop_stack <- (header, exit) :: ctx.loop_stack;
      push_scope ctx;
      List.iter (lower_stmt ctx) body;
      pop_scope ctx;
      ctx.loop_stack <- List.tl ctx.loop_stack;
      if not (Ir.Builder.is_closed b) then emit_br ctx header;
      seal_block ctx header;
      seal_block ctx exit;
      Ir.Builder.position b exit
  | Sfor (init, cond, step, body) ->
      push_scope ctx;
      Option.iter (lower_stmt ctx) init;
      let header = Ir.Builder.fresh_block ~name:"for.header" b in
      let body_block = Ir.Builder.fresh_block ~name:"for.body" b in
      let step_block = Ir.Builder.fresh_block ~name:"for.step" b in
      let exit = Ir.Builder.fresh_block ~name:"for.exit" b in
      emit_br ctx header;
      Ir.Builder.position b header;
      let cv =
        match cond with Some c -> lower_expr ctx c | None -> Ir.Types.bool_ true
      in
      emit_cond_br ctx cv body_block exit;
      seal_block ctx body_block;
      Ir.Builder.position b body_block;
      ctx.loop_stack <- (step_block, exit) :: ctx.loop_stack;
      push_scope ctx;
      List.iter (lower_stmt ctx) body;
      pop_scope ctx;
      ctx.loop_stack <- List.tl ctx.loop_stack;
      if not (Ir.Builder.is_closed b) then emit_br ctx step_block;
      seal_block ctx step_block;
      Ir.Builder.position b step_block;
      Option.iter (lower_stmt ctx) step;
      if not (Ir.Builder.is_closed b) then emit_br ctx header;
      seal_block ctx header;
      seal_block ctx exit;
      Ir.Builder.position b exit;
      pop_scope ctx
  | Sbreak -> (
      match ctx.loop_stack with
      | (_, exit) :: _ ->
          emit_br ctx exit;
          dead_block ctx
      | [] -> raise (Lower_error ("break outside loop", s.spos)))
  | Scontinue -> (
      match ctx.loop_stack with
      | (cont, _) :: _ ->
          emit_br ctx cont;
          dead_block ctx
      | [] -> raise (Lower_error ("continue outside loop", s.spos)))
  | Sreturn e ->
      let v = Option.map (lower_expr ctx) e in
      Ir.Builder.ret ctx.bld v;
      dead_block ctx
  | Sexpr e -> (
      match e.e with
      | Ecall (name, args) ->
          (* Possibly-void call in statement position. *)
          let result_ty = e.ety in
          (match (Sema.is_intrinsic name, result_ty) with
          | true, _ -> ignore (lower_call ctx e.pos name args result_ty)
          | false, _ -> (
              let ret_ir =
                match Ir.Builtins.find name with
                | Some sg -> sg.Ir.Builtins.ret
                | None -> (
                    match List.assoc_opt name ctx.func_rets with
                    | Some r -> r
                    | None -> Option.map ir_ty result_ty)
              in
              let vals = List.map (lower_expr ctx) args in
              match ret_ir with
              | Some ty -> ignore (Ir.Builder.call ctx.bld ~ty:(Some ty) name vals)
              | None -> Ir.Builder.call_unit ctx.bld name vals))
      | _ -> ignore (lower_expr ctx e))

(* After a terminator mid-statement-list, keep lowering into a fresh
   unreachable block (it is sealed immediately: it has no predecessors). *)
and dead_block ctx =
  let blk = Ir.Builder.fresh_block ~name:"dead" ctx.bld in
  seal_block ctx blk;
  Ir.Builder.position ctx.bld blk

let lower_func ~func_rets ~global_tys (f : func) : Ir.Func.t =
  let fn =
    Ir.Func.create ~name:f.fname
      ~params:(List.map (fun (n, t) -> (n, ir_ty t)) f.params)
      ~ret:(Option.map ir_ty f.ret)
  in
  let entry = Ir.Func.add_block ~name:"entry" fn in
  fn.Ir.Func.entry <- entry;
  let ctx =
    {
      fn;
      bld = Ir.Builder.create fn;
      func_rets;
      global_tys;
      current_def = Hashtbl.create 64;
      replaced = Hashtbl.create 16;
      sealed = Hashtbl.create 16;
      incomplete = Hashtbl.create 8;
      preds = Hashtbl.create 16;
      var_ty = Hashtbl.create 32;
      scopes = [];
      name_counter = 0;
      loop_stack = [];
      cur_pos = f.fpos;
    }
  in
  Ir.Builder.position ctx.bld entry;
  seal_block ctx entry;
  push_scope ctx;
  (* Parameters become ordinary SSA variables initialized from Param. *)
  List.iteri
    (fun i (name, ty) ->
      let unique = declare_var ctx name ty in
      write_variable ctx unique entry (Ir.Types.Param i))
    f.params;
  List.iter (lower_stmt ctx) f.body;
  pop_scope ctx;
  (* Implicit return on fall-through. *)
  if not (Ir.Builder.is_closed ctx.bld) then
    Ir.Builder.ret ctx.bld
      (match f.ret with Some t -> Some (zero_value (ir_ty t)) | None -> None);
  fn

let const_of_global (g : Ast.global) : Ir.Types.const =
  match (g.gty, g.ginit) with
  | Tint, Some { e = Eint v; _ } -> Ir.Types.Cint v
  | Tint, Some { e = Eun (Uneg, { e = Eint v; _ }); _ } -> Ir.Types.Cint (Int64.neg v)
  | Tfloat, Some { e = Efloat v; _ } -> Ir.Types.Cfloat v
  | Tfloat, Some { e = Eun (Uneg, { e = Efloat v; _ }); _ } -> Ir.Types.Cfloat (-.v)
  | Tbool, Some { e = Ebool v; _ } -> Ir.Types.Cbool v
  | Tint, None -> Ir.Types.Cint 0L
  | Tfloat, None -> Ir.Types.Cfloat 0.0
  | Tbool, None -> Ir.Types.Cbool false
  | Tarr _, _ -> Ir.Types.Cint 0L (* null array; must be assigned before use *)
  | _, Some init ->
      (* sema rejects non-literal initializers; reaching here means a caller
         bypassed it — diagnose with the location instead of silently
         folding to zero *)
      raise
        (Lower_error
           ("global " ^ g.gname ^ " has a non-literal initializer", init.pos))

let lower_program (p : program) : Ir.Func.modul =
  let m = Ir.Func.create_module () in
  List.iter
    (fun g ->
      Ir.Func.add_global m
        { Ir.Func.gname = g.gname; gty = ir_ty g.gty; ginit = const_of_global g })
    p.globals;
  let func_rets = List.map (fun f -> (f.fname, Option.map ir_ty f.ret)) p.funcs in
  let global_tys = List.map (fun g -> (g.gname, g.gty)) p.globals in
  List.iter (fun f -> Ir.Func.add_func m (lower_func ~func_rets ~global_tys f)) p.funcs;
  m
