(* Source printer for the checked (or shrunk) AST: emits Looplang text that
   re-lexes and re-parses to the same tree. The repro shrinker lowers every
   candidate through [parse . print], so this printer is the load-bearing
   half of AST-level delta debugging; the test suite checks the round trip
   on every registered benchmark.

   Parenthesization is precedence-aware (levels mirror Parser.prec_of plus
   the &&/|| layering) rather than fully parenthesized, so shrunk repro
   programs stay readable. *)

open Ast

(* Printer precedence levels. Higher binds tighter; a child whose level is
   below the context's minimum gets parentheses. *)
let lvl_or = 3

let lvl_and = 5

(* Parser.prec_of ranges over 3..10; offset keeps every binop above &&/||. *)
let lvl_bin op =
  10
  + (match op with
    | Bmul | Bdiv | Bmod -> 10
    | Badd | Bsub -> 9
    | Bshl | Bshr -> 8
    | Blt | Ble | Bgt | Bge -> 7
    | Beq | Bne -> 6
    | Band -> 5
    | Bxor -> 4
    | Bor -> 3)

let lvl_unary = 90

let lvl_atom = 100

let binop_to_string = function
  | Badd -> "+"
  | Bsub -> "-"
  | Bmul -> "*"
  | Bdiv -> "/"
  | Bmod -> "%"
  | Band -> "&"
  | Bor -> "|"
  | Bxor -> "^"
  | Bshl -> "<<"
  | Bshr -> ">>"
  | Beq -> "=="
  | Bne -> "!="
  | Blt -> "<"
  | Ble -> "<="
  | Bgt -> ">"
  | Bge -> ">="

(* A float literal the lexer accepts: digit-led, with a '.' or exponent so
   it does not re-lex as an int. Prefer the short %g form when it
   round-trips exactly. *)
let float_lit f =
  let ensure_floaty s =
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s
    else s ^ ".0"
  in
  let short = Printf.sprintf "%g" f in
  if float_of_string_opt short = Some f then ensure_floaty short
  else ensure_floaty (Printf.sprintf "%.17g" f)

let rec expr_level (e : expr) =
  match e.e with
  | Eint v -> if v < 0L then lvl_unary else lvl_atom
  | Efloat v -> if v < 0.0 then lvl_unary else lvl_atom
  | Ebool _ | Evar _ | Ecall _ | Eindex _ | Enew _ | Elen _ -> lvl_atom
  | Eun _ -> lvl_unary
  | Eand _ -> lvl_and
  | Eor _ -> lvl_or
  | Ebin (op, _, _) -> lvl_bin op

and pp_expr buf min_lvl (e : expr) =
  let lvl = expr_level e in
  let parens = lvl < min_lvl in
  if parens then Buffer.add_char buf '(';
  (match e.e with
  | Eint v -> Buffer.add_string buf (Int64.to_string v)
  | Efloat v -> Buffer.add_string buf (float_lit v)
  | Ebool v -> Buffer.add_string buf (if v then "true" else "false")
  | Evar name -> Buffer.add_string buf name
  | Eun (Uneg, x) ->
      Buffer.add_char buf '-';
      pp_expr buf lvl_unary x
  | Eun (Unot, x) ->
      Buffer.add_char buf '!';
      pp_expr buf lvl_unary x
  | Eand (l, r) ->
      pp_expr buf lvl_and l;
      Buffer.add_string buf " && ";
      pp_expr buf (lvl_and + 1) r
  | Eor (l, r) ->
      pp_expr buf lvl_or l;
      Buffer.add_string buf " || ";
      pp_expr buf (lvl_or + 1) r
  | Ebin (op, l, r) ->
      (* binops are left-associative: the right child needs one level more *)
      pp_expr buf lvl l;
      Buffer.add_char buf ' ';
      Buffer.add_string buf (binop_to_string op);
      Buffer.add_char buf ' ';
      pp_expr buf (lvl + 1) r
  | Ecall (name, args) ->
      Buffer.add_string buf name;
      Buffer.add_char buf '(';
      List.iteri
        (fun i a ->
          if i > 0 then Buffer.add_string buf ", ";
          pp_expr buf 0 a)
        args;
      Buffer.add_char buf ')'
  | Eindex (arr, idx) ->
      pp_expr buf lvl_atom arr;
      Buffer.add_char buf '[';
      pp_expr buf 0 idx;
      Buffer.add_char buf ']'
  | Enew (elem, size) ->
      Buffer.add_string buf "new ";
      Buffer.add_string buf (ty_to_string elem);
      Buffer.add_char buf '[';
      pp_expr buf 0 size;
      Buffer.add_char buf ']'
  | Elen arr ->
      Buffer.add_string buf "len(";
      pp_expr buf 0 arr;
      Buffer.add_char buf ')');
  if parens then Buffer.add_char buf ')'

let expr_to_string e =
  let buf = Buffer.create 64 in
  pp_expr buf 0 e;
  Buffer.contents buf

(* A "simple" statement as allowed in for-headers: no semicolon, no block. *)
let pp_simple_stmt buf (s : stmt) =
  match s.s with
  | Svar (name, ty, init) ->
      Buffer.add_string buf (Printf.sprintf "var %s: %s" name (ty_to_string ty));
      Option.iter
        (fun e ->
          Buffer.add_string buf " = ";
          pp_expr buf 0 e)
        init
  | Sassign (name, e) ->
      Buffer.add_string buf name;
      Buffer.add_string buf " = ";
      pp_expr buf 0 e
  | Sstore (arr, idx, v) ->
      pp_expr buf lvl_atom arr;
      Buffer.add_char buf '[';
      pp_expr buf 0 idx;
      Buffer.add_string buf "] = ";
      pp_expr buf 0 v
  | Sexpr e -> pp_expr buf 0 e
  | Sif _ | Swhile _ | Sfor _ | Sbreak | Scontinue | Sreturn _ ->
      (* the parser cannot produce these in a for-header; a transform that
         does has built an unprintable tree *)
      invalid_arg "Pp_ast: structured statement in a for-header"

let indent buf n = Buffer.add_string buf (String.make (2 * n) ' ')

let rec pp_stmt buf depth (s : stmt) =
  indent buf depth;
  match s.s with
  | Svar _ | Sassign _ | Sstore _ | Sexpr _ ->
      pp_simple_stmt buf s;
      Buffer.add_string buf ";\n"
  | Sbreak -> Buffer.add_string buf "break;\n"
  | Scontinue -> Buffer.add_string buf "continue;\n"
  | Sreturn None -> Buffer.add_string buf "return;\n"
  | Sreturn (Some e) ->
      Buffer.add_string buf "return ";
      pp_expr buf 0 e;
      Buffer.add_string buf ";\n"
  | Sif (cond, then_, else_) ->
      Buffer.add_string buf "if (";
      pp_expr buf 0 cond;
      Buffer.add_string buf ") {\n";
      pp_block buf depth then_;
      indent buf depth;
      Buffer.add_char buf '}';
      pp_else buf depth else_;
      Buffer.add_char buf '\n'
  | Swhile (cond, body) ->
      Buffer.add_string buf "while (";
      pp_expr buf 0 cond;
      Buffer.add_string buf ") {\n";
      pp_block buf depth body;
      indent buf depth;
      Buffer.add_string buf "}\n"
  | Sfor (init, cond, step, body) ->
      Buffer.add_string buf "for (";
      Option.iter (pp_simple_stmt buf) init;
      Buffer.add_string buf "; ";
      Option.iter (pp_expr buf 0) cond;
      Buffer.add_string buf "; ";
      Option.iter (pp_simple_stmt buf) step;
      Buffer.add_string buf ") {\n";
      pp_block buf depth body;
      indent buf depth;
      Buffer.add_string buf "}\n"

(* [else if] chains print flat; [else { if }] parses to the same tree. *)
and pp_else buf depth = function
  | [] -> ()
  | [ ({ s = Sif (cond, then_, else_); _ } : stmt) ] ->
      Buffer.add_string buf " else if (";
      pp_expr buf 0 cond;
      Buffer.add_string buf ") {\n";
      pp_block buf depth then_;
      indent buf depth;
      Buffer.add_char buf '}';
      pp_else buf depth else_
  | else_ ->
      Buffer.add_string buf " else {\n";
      pp_block buf depth else_;
      indent buf depth;
      Buffer.add_char buf '}'

and pp_block buf depth stmts = List.iter (pp_stmt buf (depth + 1)) stmts

let pp_func buf (f : func) =
  Buffer.add_string buf "fn ";
  Buffer.add_string buf f.fname;
  Buffer.add_char buf '(';
  List.iteri
    (fun i (name, ty) ->
      if i > 0 then Buffer.add_string buf ", ";
      Buffer.add_string buf (Printf.sprintf "%s: %s" name (ty_to_string ty)))
    f.params;
  Buffer.add_char buf ')';
  Option.iter (fun t -> Buffer.add_string buf (" -> " ^ ty_to_string t)) f.ret;
  Buffer.add_string buf " {\n";
  pp_block buf 0 f.body;
  Buffer.add_string buf "}\n"

let pp_global buf (g : global) =
  Buffer.add_string buf (Printf.sprintf "global %s: %s" g.gname (ty_to_string g.gty));
  Option.iter
    (fun e ->
      Buffer.add_string buf " = ";
      pp_expr buf 0 e)
    g.ginit;
  Buffer.add_string buf ";\n"

let program_to_string (p : program) =
  let buf = Buffer.create 1024 in
  List.iter (pp_global buf) p.globals;
  if p.globals <> [] && p.funcs <> [] then Buffer.add_char buf '\n';
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_char buf '\n';
      pp_func buf f)
    p.funcs;
  Buffer.contents buf
