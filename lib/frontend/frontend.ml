(* Front-end entry points: Looplang source text -> verified SSA module.
   Re-exports the pipeline stages so users can reach them as Frontend.Ast,
   Frontend.Parser, etc. *)

module Ast = Ast
module Lexer = Lexer
module Parser = Parser
module Sema = Sema
module Lower = Lower
module Pp_ast = Pp_ast

(* Which front-end stage rejected the program. Kept machine-readable so
   downstream consumers (the campaign error taxonomy, repro fingerprints)
   classify without parsing message text. *)
type error_kind = Lex | Syntax | Type | Lowering

(* Short stable tag used in repro fingerprints: [compile:syntax@3:7]. *)
let error_kind_name = function
  | Lex -> "lex"
  | Syntax -> "syntax"
  | Type -> "type"
  | Lowering -> "lowering"

(* Human label matching the historical message prefixes. *)
let error_kind_label = function
  | Lex -> "lexical"
  | Syntax -> "syntax"
  | Type -> "type"
  | Lowering -> "lowering"

type error = { kind : error_kind; msg : string; pos : Ast.pos }

let pp_error ppf e =
  Format.fprintf ppf "%a: %s error: %s" Ast.pp_pos e.pos
    (error_kind_label e.kind) e.msg

let error_to_string e = Format.asprintf "%a" pp_error e

exception Compile_error of error

(* Parse + typecheck + lower. Raises Compile_error with a source position on
   any front-end failure, and Ir.Verifier.Invalid_ir if lowering ever emits
   ill-formed IR (that would be a bug in this library, not in user code). *)
let compile_exn (src : string) : Ir.Func.modul =
  Obs.Telemetry.with_span "compile" @@ fun () ->
  let wrap kind msg pos = raise (Compile_error { kind; msg; pos }) in
  let prog =
    Obs.Telemetry.with_span "parse" @@ fun () ->
    try Parser.parse_program src with
    | Lexer.Lex_error (msg, pos) -> wrap Lex msg pos
    | Parser.Parse_error (msg, pos) -> wrap Syntax msg pos
  in
  (Obs.Telemetry.with_span "sema" @@ fun () ->
   try Sema.check_program prog
   with Sema.Sema_error (msg, pos) -> wrap Type msg pos);
  let m =
    Obs.Telemetry.with_span "lower" @@ fun () ->
    try Lower.lower_program prog
    with Lower.Lower_error (msg, pos) -> wrap Lowering msg pos
  in
  (Obs.Telemetry.with_span "verify" @@ fun () ->
   Ir.Verifier.check_module_exn m;
   match Cfg.Ssa_check.check_module m with
   | [] -> ()
   | errs ->
       raise
         (Ir.Verifier.Invalid_ir
            (String.concat "\n" (List.map Cfg.Ssa_check.error_to_string errs))));
  m

let compile (src : string) : (Ir.Func.modul, error) result =
  match compile_exn src with
  | m -> Ok m
  | exception Compile_error e -> Error e

(* Parse and typecheck only; useful for tooling and tests. *)
let parse_and_check_exn (src : string) : Ast.program =
  let wrap kind msg pos = raise (Compile_error { kind; msg; pos }) in
  let prog =
    try Parser.parse_program src with
    | Lexer.Lex_error (msg, pos) -> wrap Lex msg pos
    | Parser.Parse_error (msg, pos) -> wrap Syntax msg pos
  in
  (try Sema.check_program prog
   with Sema.Sema_error (msg, pos) -> wrap Type msg pos);
  prog
