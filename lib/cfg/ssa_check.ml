(* Dominance-based SSA validity: every use of an instruction result must be
   dominated by its definition. For a phi use, the definition must dominate
   the corresponding predecessor's terminator instead. Complements the
   structural checks in Ir.Verifier. *)

type error = { in_func : string; use_instr : int; operand : int; reason : string }

let pp_error ppf e =
  Format.fprintf ppf "%s/%%%d: use of %%%d %s" e.in_func e.use_instr e.operand e.reason

let error_to_string e = Format.asprintf "%a" pp_error e

let check_func (fn : Ir.Func.t) : error list =
  let cfg = Graph.build fn in
  let dom = Dom.compute cfg in
  let errs = ref [] in
  (* Position of each instruction within its block, for same-block ordering. *)
  let pos = Hashtbl.create 64 in
  Ir.Func.iter_blocks
    (fun b -> List.iteri (fun i id -> Hashtbl.replace pos id i) b.Ir.Func.instr_ids)
    fn;
  let def_reaches ~def_id ~use_block ~use_pos =
    let def = Ir.Func.instr fn def_id in
    let def_block = def.Ir.Instr.block in
    if def_block = use_block then
      match (Hashtbl.find_opt pos def_id, use_pos) with
      | Some dp, Some up -> dp < up
      | _ -> false
    else Dom.strictly_dominates dom def_block use_block
  in
  Ir.Func.iter_blocks
    (fun b ->
      List.iter
        (fun use_id ->
          let i = Ir.Func.instr fn use_id in
          if Graph.is_reachable cfg b.Ir.Func.bid then
            match i.Ir.Instr.kind with
            | Ir.Instr.Phi incoming ->
                (* Completeness: every reachable CFG predecessor must have an
                   incoming entry, or execution along that edge has no value
                   to pick. (Ir.Verifier checks the converse: every named
                   predecessor is structurally real.) *)
                List.iter
                  (fun pred ->
                    if
                      Graph.is_reachable cfg pred
                      && not (Array.exists (fun (p, _) -> p = pred) incoming)
                    then
                      errs :=
                        {
                          in_func = fn.Ir.Func.fname;
                          use_instr = use_id;
                          operand = use_id;
                          reason =
                            Printf.sprintf
                              "as a phi missing an incoming entry for reachable \
                               predecessor bb%d"
                              pred;
                        }
                        :: !errs)
                  (Graph.predecessors cfg b.Ir.Func.bid);
                Array.iter
                  (fun (pred, v) ->
                    match v with
                    | Ir.Types.Reg def_id ->
                        (* The def must reach the end of the predecessor. *)
                        let def = Ir.Func.instr fn def_id in
                        if
                          Graph.is_reachable cfg pred
                          && not
                               (def.Ir.Instr.block = pred
                               || Dom.dominates dom def.Ir.Instr.block pred)
                        then
                          errs :=
                            {
                              in_func = fn.Ir.Func.fname;
                              use_instr = use_id;
                              operand = def_id;
                              reason =
                                Printf.sprintf "not dominating phi edge from bb%d" pred;
                            }
                            :: !errs
                    | _ -> ())
                  incoming
            | kind ->
                List.iter
                  (fun v ->
                    match v with
                    | Ir.Types.Reg def_id ->
                        if
                          not
                            (def_reaches ~def_id ~use_block:b.Ir.Func.bid
                               ~use_pos:(Hashtbl.find_opt pos use_id))
                        then
                          errs :=
                            {
                              in_func = fn.Ir.Func.fname;
                              use_instr = use_id;
                              operand = def_id;
                              reason = "not dominated by its definition";
                            }
                            :: !errs
                    | _ -> ())
                  (Ir.Instr.operands kind))
        b.Ir.Func.instr_ids)
    fn;
  List.rev !errs

let check_module (m : Ir.Func.modul) : error list =
  List.concat_map check_func m.Ir.Func.funcs
