(** Checked int64 interval arithmetic.

    The domain of every dataflow and dependence fact in the tree: a value is
    known to lie in [lo, hi] (inclusive), or is [Bot] (no value reaches the
    program point). [top] is the full int64 range.

    Soundness contract: the interpreter's integer arithmetic wraps
    (two's-complement [Int64.add]/[sub]/[mul]), so whenever a bound
    computation would overflow mathematically the operation returns {!top} —
    a wrapped machine value can land anywhere, and a partially-widened
    result like [1, +inf) would silently exclude it. The scalar helpers
    {!add64} etc. expose the same checked arithmetic to clients (trip-count
    refinement, dependence-distance math) that must refuse to reason across
    an overflow rather than approximate it. *)

type t =
  | Bot  (** unreachable / no value *)
  | Itv of { lo : int64; hi : int64 }  (** lo <= hi always holds *)

val top : t
val bot : t
val const : int64 -> t

val of_bounds : int64 -> int64 -> t
(** [of_bounds lo hi] is [Bot] when [lo > hi]. *)

val bounds : t -> (int64 * int64) option
val is_bot : t -> bool
val is_top : t -> bool

val singleton : t -> int64 option
(** [Some c] when the interval is exactly [c, c]. *)

val mem : int64 -> t -> bool
val contains_zero : t -> bool
val equal : t -> t -> bool
val subset : t -> t -> bool

val join : t -> t -> t
val meet : t -> t -> t

val widen : prev:t -> next:t -> t
(** Any unstable bound jumps straight to the int64 extreme; [prev = Bot]
    yields [next] (first visit is not a widening point). *)

val remove_point : t -> int64 -> t
(** Shrink the interval by one value, but only when it is an endpoint
    (intervals cannot represent holes). Used by [x <> c] branch
    refinement. *)

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val mul : t -> t -> t
(** All four return {!top} whenever any mathematical corner overflows
    int64 (see the module soundness contract) and [Bot] if either input
    is [Bot]. *)

val hull0 : t -> t
(** Smallest interval containing the input and 0 — the range of a quotient
    [a / b] whose divisor is at least 1. *)

val to_string : t -> string

(** {2 Checked scalars} — [None] on overflow. *)

val add64 : int64 -> int64 -> int64 option
val sub64 : int64 -> int64 -> int64 option
val mul64 : int64 -> int64 -> int64 option
val neg64 : int64 -> int64 option
