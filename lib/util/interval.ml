type t = Bot | Itv of { lo : int64; hi : int64 }

let top = Itv { lo = Int64.min_int; hi = Int64.max_int }

let bot = Bot

let const c = Itv { lo = c; hi = c }

let of_bounds lo hi = if lo > hi then Bot else Itv { lo; hi }

let bounds = function Bot -> None | Itv { lo; hi } -> Some (lo, hi)

let is_bot t = t = Bot

let is_top = function
  | Bot -> false
  | Itv { lo; hi } -> lo = Int64.min_int && hi = Int64.max_int

let singleton = function Itv { lo; hi } when lo = hi -> Some lo | _ -> None

let mem v = function Bot -> false | Itv { lo; hi } -> lo <= v && v <= hi

let contains_zero t = mem 0L t

let equal a b = a = b

let subset a b =
  match (a, b) with
  | Bot, _ -> true
  | _, Bot -> false
  | Itv a, Itv b -> b.lo <= a.lo && a.hi <= b.hi

let join a b =
  match (a, b) with
  | Bot, x | x, Bot -> x
  | Itv a, Itv b -> Itv { lo = min a.lo b.lo; hi = max a.hi b.hi }

let meet a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Itv a, Itv b -> of_bounds (max a.lo b.lo) (min a.hi b.hi)

let widen ~prev ~next =
  match (prev, next) with
  | Bot, x -> x
  | x, Bot -> x
  | Itv p, Itv n ->
      Itv
        {
          lo = (if n.lo < p.lo then Int64.min_int else p.lo);
          hi = (if n.hi > p.hi then Int64.max_int else p.hi);
        }

let remove_point t v =
  match t with
  | Bot -> Bot
  | Itv { lo; hi } when lo = v && hi = v -> Bot
  | Itv { lo; hi } when lo = v -> Itv { lo = Int64.add lo 1L; hi }
  | Itv { lo; hi } when hi = v -> Itv { lo; hi = Int64.sub hi 1L }
  | t -> t

(* checked scalar arithmetic: overflow iff the two's-complement result's
   sign contradicts what the operand signs require *)

let add64 a b =
  let s = Int64.add a b in
  if a >= 0L = (b >= 0L) && s >= 0L <> (a >= 0L) then None else Some s

let sub64 a b =
  let s = Int64.sub a b in
  if a >= 0L <> (b >= 0L) && s >= 0L <> (a >= 0L) then None else Some s

let neg64 a = if a = Int64.min_int then None else Some (Int64.neg a)

let mul64 a b =
  if a = 0L || b = 0L then Some 0L
  else if a = -1L then neg64 b
  else if b = -1L then neg64 a
  else
    let p = Int64.mul a b in
    if Int64.div p b = a then Some p else None

let add a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Itv a, Itv b -> (
      match (add64 a.lo b.lo, add64 a.hi b.hi) with
      | Some lo, Some hi -> Itv { lo; hi }
      | _ -> top)

let sub a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Itv a, Itv b -> (
      match (sub64 a.lo b.hi, sub64 a.hi b.lo) with
      | Some lo, Some hi -> Itv { lo; hi }
      | _ -> top)

let neg t =
  match t with
  | Bot -> Bot
  | Itv { lo; hi } -> (
      match (neg64 hi, neg64 lo) with
      | Some lo, Some hi -> Itv { lo; hi }
      | _ -> top)

let mul a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Itv a, Itv b -> (
      match
        (mul64 a.lo b.lo, mul64 a.lo b.hi, mul64 a.hi b.lo, mul64 a.hi b.hi)
      with
      | Some p1, Some p2, Some p3, Some p4 ->
          Itv { lo = min (min p1 p2) (min p3 p4); hi = max (max p1 p2) (max p3 p4) }
      | _ -> top)

let hull0 t = join t (const 0L)

let to_string = function
  | Bot -> "bot"
  | Itv { lo; hi } ->
      let b v extreme s =
        if v = extreme then s else Int64.to_string v
      in
      if lo = hi then Printf.sprintf "[%Ld]" lo
      else
        Printf.sprintf "[%s, %s]"
          (b lo Int64.min_int "-inf")
          (b hi Int64.max_int "+inf")
