(** Minimal JSON codec shared by every serialized artifact in the tree —
    campaign JSONL checkpoints, repro bundles, Chrome traces, Prometheus-
    adjacent telemetry snapshots and bench snapshots. Self-contained on
    purpose: the container has no JSON library and all schemas are small and
    fully under our control.

    This module is the ONLY place that knows how to escape or print JSON.
    New serializers must build a {!t} and call {!to_string} rather than
    hand-rolling string escaping. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering. Strings are escaped per RFC 8259;
    non-finite floats are emitted as [null] so output always re-parses. *)

val of_string : string -> (t, string) result
(** Parse one JSON value. Numbers parse as [Int] when they are exact
    integers, [Float] otherwise. Trailing non-whitespace is an error. *)

exception Parse_error of string
(** Raised internally by the parser; {!of_string} catches it and returns
    [Error]. Exposed only so callers can pattern-match if they drive the
    parser through a future streaming entry point. *)

(** {2 Accessors}

    Total accessors returning [option]; decoders use these so unknown or
    missing fields degrade to [None] instead of raising (this is what keeps
    checkpoint formats forward-compatible). *)

val member : string -> t -> t option
(** [member k j] is the value bound to [k] when [j] is an [Obj]. *)

val to_str : t -> string option
val to_int : t -> int option
(** [Float] values are truncated to [int]. *)

val to_float : t -> float option
(** [Int] values are converted to [float]. *)

val to_list : t -> t list option
