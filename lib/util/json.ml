(* Minimal JSON shared by every serialized artifact in the tree — campaign
   checkpoints (JSONL: one value per line) and repro bundles. Self-contained
   on purpose: the container has no JSON library and both schemas are small
   and fully under our control. Numbers are parsed as Float unless they are
   exact integers. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ---- emission ---- *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (string_of_bool b)
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      if Float.is_nan f || Float.abs f = Float.infinity then
        (* NaN/inf are not JSON; the checkpoint must stay parseable *)
        Buffer.add_string buf "null"
      else if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string buf (Printf.sprintf "%.1f" f)
      else Buffer.add_string buf (Printf.sprintf "%.17g" f)
  | String s -> escape_string buf s
  | List vs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          emit buf v)
        vs;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_string buf k;
          Buffer.add_char buf ':';
          emit buf v)
        kvs;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  emit buf v;
  Buffer.contents buf

(* ---- parsing ---- *)

exception Parse_error of string

type cursor = { s : string; mutable pos : int }

let fail c fmt =
  Printf.ksprintf (fun m -> raise (Parse_error (Printf.sprintf "at %d: %s" c.pos m))) fmt

let peek c = if c.pos < String.length c.s then Some c.s.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let skip_ws c =
  while
    match peek c with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance c;
        true
    | _ -> false
  do
    ()
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | Some x -> fail c "expected %C, got %C" ch x
  | None -> fail c "expected %C, got end of input" ch

let literal c word v =
  let n = String.length word in
  if c.pos + n <= String.length c.s && String.sub c.s c.pos n = word then begin
    c.pos <- c.pos + n;
    v
  end
  else fail c "bad literal"

let parse_string_body c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail c "unterminated string"
    | Some '"' -> advance c
    | Some '\\' -> (
        advance c;
        match peek c with
        | Some 'n' -> advance c; Buffer.add_char buf '\n'; go ()
        | Some 'r' -> advance c; Buffer.add_char buf '\r'; go ()
        | Some 't' -> advance c; Buffer.add_char buf '\t'; go ()
        | Some ('"' | '\\' | '/') ->
            Buffer.add_char buf c.s.[c.pos];
            advance c;
            go ()
        | Some 'u' ->
            advance c;
            if c.pos + 4 > String.length c.s then fail c "bad \\u escape";
            let code = int_of_string ("0x" ^ String.sub c.s c.pos 4) in
            c.pos <- c.pos + 4;
            (* checkpoint strings are ASCII; anything else round-trips as ? *)
            Buffer.add_char buf (if code < 128 then Char.chr code else '?');
            go ()
        | _ -> fail c "bad escape")
    | Some ch ->
        advance c;
        Buffer.add_char buf ch;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_num ch =
    match ch with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
  in
  while match peek c with Some ch when is_num ch -> advance c; true | _ -> false do
    ()
  done;
  let tok = String.sub c.s start (c.pos - start) in
  match int_of_string_opt tok with
  | Some i -> Int i
  | None -> (
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail c "bad number %S" tok)

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c "unexpected end of input"
  | Some 'n' -> literal c "null" Null
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some '"' -> String (parse_string_body c)
  | Some '[' ->
      advance c;
      skip_ws c;
      if peek c = Some ']' then begin advance c; List [] end
      else
        let rec items acc =
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' -> advance c; items (v :: acc)
          | Some ']' -> advance c; List (List.rev (v :: acc))
          | _ -> fail c "expected ',' or ']'"
        in
        items []
  | Some '{' ->
      advance c;
      skip_ws c;
      if peek c = Some '}' then begin advance c; Obj [] end
      else
        let rec fields acc =
          skip_ws c;
          let k = parse_string_body c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' -> advance c; fields ((k, v) :: acc)
          | Some '}' -> advance c; Obj (List.rev ((k, v) :: acc))
          | _ -> fail c "expected ',' or '}'"
        in
        fields []
  | Some _ -> parse_number c

let of_string s : (t, string) result =
  let c = { s; pos = 0 } in
  match parse_value c with
  | v ->
      skip_ws c;
      if c.pos < String.length s then Error "trailing garbage" else Ok v
  | exception Parse_error m -> Error m

(* ---- accessors ---- *)

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None

let to_str = function String s -> Some s | _ -> None

let to_int = function Int i -> Some i | Float f -> Some (int_of_float f) | _ -> None

let to_float = function Float f -> Some f | Int i -> Some (float_of_int i) | _ -> None

let to_list = function List vs -> Some vs | _ -> None
