(* Interval value-range analysis over SSA values, as an Engine client.

   State: a map from instruction (result) id to Util.Interval.t; a missing
   binding means top. Every transfer is sound w.r.t. the interpreter's
   *wrapping* int64 semantics: Util.Interval's checked arithmetic widens to
   top whenever a mathematical bound would overflow, and the handful of
   op-specific transfers below (division, remainder, shifts, bitwise ops)
   each encode exactly what Interp.Machine.exec_ibinop computes — division
   by -1 wraps min_int, shift amounts are masked [land 63], division and
   remainder by zero trap (so zero is excluded from a divisor's interval
   downstream of the instruction). Comparison results use the interpreter's
   0/1 bool encoding, which makes branch-guard refinement on i1 values the
   same integer interval arithmetic as on i64.

   Widening at loop headers extrapolates unstable phi bounds to the int64
   extremes; the narrowing pass of the engine then pulls the exit-guarded
   bound back (a counter phi widened to [0, +inf) narrows to [0, N] when
   the header compare is i < N). *)

module IMap = Map.Make (Int)

type env = Util.Interval.t IMap.t

let find r (env : env) =
  match IMap.find_opt r env with Some i -> i | None -> Util.Interval.top

(* Bindings store any non-top interval (including Bot: a value computed on
   an infeasible path); top bindings are dropped to keep maps small. *)
let set r itv (env : env) : env =
  if Util.Interval.is_top itv then IMap.remove r env else IMap.add r itv env

let eval (env : env) (v : Ir.Types.value) : Util.Interval.t =
  match v with
  | Ir.Types.Const (Ir.Types.Cint i) -> Util.Interval.const i
  | Ir.Types.Const (Ir.Types.Cbool b) -> Util.Interval.const (if b then 1L else 0L)
  | Ir.Types.Const (Ir.Types.Cfloat _) -> Util.Interval.top
  | Ir.Types.Reg r -> find r env
  | Ir.Types.Param _ | Ir.Types.Global _ -> Util.Interval.top

(* ---- integer binop transfers ---- *)

let bool_itv = Util.Interval.of_bounds 0L 1L

(* quotient magnitude never exceeds the dividend's: a/b for |b| >= 1 lies in
   the 0-hull of a (negative divisors also flip the sign, hence the checked
   negation which widens on min_int exactly like the wrapping division) *)
let sdiv_itv a b =
  if Util.Interval.is_bot a || Util.Interval.is_bot b then Util.Interval.bot
  else
    let pos = Util.Interval.meet b (Util.Interval.of_bounds 1L Int64.max_int) in
    let neg = Util.Interval.meet b (Util.Interval.of_bounds Int64.min_int (-1L)) in
    let from_pos =
      if Util.Interval.is_bot pos then Util.Interval.bot else Util.Interval.hull0 a
    in
    let from_neg =
      if Util.Interval.is_bot neg then Util.Interval.bot
      else Util.Interval.hull0 (Util.Interval.neg a)
    in
    (* divisor exactly zero on every path: the instruction always traps and
       never produces a value *)
    Util.Interval.join from_pos from_neg

let srem_itv a b =
  match (Util.Interval.bounds a, Util.Interval.bounds b) with
  | None, _ | _, None -> Util.Interval.bot
  | Some (alo, ahi), Some (blo, bhi) ->
      if blo = 0L && bhi = 0L then Util.Interval.bot (* always traps *)
      else
        (* |rem| < |divisor| and rem has the dividend's sign (or is 0) *)
        let abs_minus_1 v =
          if v = Int64.min_int then Int64.max_int else Int64.sub (Int64.abs v) 1L
        in
        let bound = max (abs_minus_1 blo) (abs_minus_1 bhi) in
        let lo = if alo >= 0L then 0L else max alo (Int64.neg bound) in
        let hi = if ahi <= 0L then 0L else min ahi bound in
        Util.Interval.of_bounds lo hi

(* bitwise: useful facts only when signs are known *)
let and_itv a b =
  match (Util.Interval.bounds a, Util.Interval.bounds b) with
  | None, _ | _, None -> Util.Interval.bot
  | Some (alo, ahi), Some (blo, bhi) ->
      if alo >= 0L && blo >= 0L then Util.Interval.of_bounds 0L (min ahi bhi)
      else if alo >= 0L then Util.Interval.of_bounds 0L ahi
      else if blo >= 0L then Util.Interval.of_bounds 0L bhi
      else Util.Interval.top

let or_itv a b =
  match (Util.Interval.bounds a, Util.Interval.bounds b) with
  | None, _ | _, None -> Util.Interval.bot
  | Some (alo, ahi), Some (blo, bhi) ->
      if alo >= 0L && blo >= 0L then
        (* x lor y < 2^k when both x, y < 2^k; x+y is a cheap such power
           bound and is overflow-checked *)
        match Util.Interval.add64 ahi bhi with
        | Some hi -> Util.Interval.of_bounds (max alo blo) hi
        | None -> Util.Interval.of_bounds (max alo blo) Int64.max_int
      else Util.Interval.top

let xor_itv a b =
  match (Util.Interval.bounds a, Util.Interval.bounds b) with
  | None, _ | _, None -> Util.Interval.bot
  | Some (alo, ahi), Some (blo, bhi) ->
      if alo >= 0L && blo >= 0L then
        match Util.Interval.add64 ahi bhi with
        | Some hi -> Util.Interval.of_bounds 0L hi
        | None -> Util.Interval.of_bounds 0L Int64.max_int
      else Util.Interval.top

(* the interpreter masks shift amounts with [land 63] *)
let shift_itv op a b =
  match (Util.Interval.bounds a, Util.Interval.bounds b) with
  | None, _ | _, None -> Util.Interval.bot
  | Some (alo, ahi), Some (blo, bhi) -> (
      match op with
      | Ir.Instr.Shl ->
          (* a * 2^k, checked (wrap -> top), only when the mask is identity
             and 2^k itself cannot wrap *)
          if blo >= 0L && bhi <= 62L then
            Util.Interval.mul a
              (Util.Interval.of_bounds
                 (Int64.shift_left 1L (Int64.to_int blo))
                 (Int64.shift_left 1L (Int64.to_int bhi)))
          else Util.Interval.top
      | Ir.Instr.Ashr ->
          if blo >= 0L && bhi <= 63L then begin
            let k1 = Int64.to_int blo and k2 = Int64.to_int bhi in
            let c1 = Int64.shift_right alo k1
            and c2 = Int64.shift_right alo k2
            and c3 = Int64.shift_right ahi k1
            and c4 = Int64.shift_right ahi k2 in
            Util.Interval.of_bounds (min (min c1 c2) (min c3 c4))
              (max (max c1 c2) (max c3 c4))
          end
          else Util.Interval.top
      | Ir.Instr.Lshr ->
          if blo >= 0L && bhi <= 63L && alo >= 0L then
            (* nonneg dividend: logical = arithmetic shift, antitone in k *)
            Util.Interval.of_bounds
              (Int64.shift_right alo (Int64.to_int bhi))
              (Int64.shift_right ahi (Int64.to_int blo))
          else if blo >= 1L && bhi <= 63L then
            (* any shift by >= 1 clears the sign bit *)
            Util.Interval.of_bounds 0L Int64.max_int
          else Util.Interval.top
      | _ -> Util.Interval.top)

let ibinop_itv (op : Ir.Instr.ibinop) a b =
  match op with
  | Ir.Instr.Add -> Util.Interval.add a b
  | Ir.Instr.Sub -> Util.Interval.sub a b
  | Ir.Instr.Mul -> Util.Interval.mul a b
  | Ir.Instr.Sdiv -> sdiv_itv a b
  | Ir.Instr.Srem -> srem_itv a b
  | Ir.Instr.And -> and_itv a b
  | Ir.Instr.Or -> or_itv a b
  | Ir.Instr.Xor -> xor_itv a b
  | Ir.Instr.Shl | Ir.Instr.Ashr | Ir.Instr.Lshr -> shift_itv op a b

(* Decide an integer comparison from the operand intervals when possible;
   the 0/1 encoding matches the interpreter's bool representation. *)
let icmp_itv (op : Ir.Instr.icmp) a b =
  match (Util.Interval.bounds a, Util.Interval.bounds b) with
  | None, _ | _, None -> Util.Interval.bot
  | Some (alo, ahi), Some (blo, bhi) -> (
      let yes = Util.Interval.const 1L and no = Util.Interval.const 0L in
      match op with
      | Ir.Instr.Islt ->
          if ahi < blo then yes else if alo >= bhi then no else bool_itv
      | Ir.Instr.Isle ->
          if ahi <= blo then yes else if alo > bhi then no else bool_itv
      | Ir.Instr.Isgt ->
          if alo > bhi then yes else if ahi <= blo then no else bool_itv
      | Ir.Instr.Isge ->
          if alo >= bhi then yes else if ahi < blo then no else bool_itv
      | Ir.Instr.Ieq ->
          if alo = ahi && blo = bhi && alo = blo then yes
          else if ahi < blo || alo > bhi then no
          else bool_itv
      | Ir.Instr.Ine ->
          if ahi < blo || alo > bhi then yes
          else if alo = ahi && blo = bhi && alo = blo then no
          else bool_itv)

(* Result interval of one instruction in [env]; None when it produces no
   value. *)
let result_itv (env : env) (kind : Ir.Instr.kind) : Util.Interval.t option =
  match kind with
  | Ir.Instr.Ibinop (op, a, b) -> Some (ibinop_itv op (eval env a) (eval env b))
  | Ir.Instr.Icmp (op, a, b) -> Some (icmp_itv op (eval env a) (eval env b))
  | Ir.Instr.Fcmp _ -> Some bool_itv
  | Ir.Instr.Select (c, a, b) -> (
      match Util.Interval.singleton (eval env c) with
      | Some 1L -> Some (eval env a)
      | Some 0L -> Some (eval env b)
      | _ -> Some (Util.Interval.join (eval env a) (eval env b)))
  | Ir.Instr.Phi incoming ->
      (* fallback only: phis are normally bound per incoming edge (see
         [bind_phis]), where the predecessor's env — including defs local
         to that edge, like the latch increment — is still visible. At
         block entry those defs have been joined away (missing = top), so
         this operand join is the sound but coarse approximation used when
         no edge binding survived. *)
      Some
        (Array.fold_left
           (fun acc (_, v) -> Util.Interval.join acc (eval env v))
           Util.Interval.bot incoming)
  | Ir.Instr.Fbinop _ | Ir.Instr.Si_to_fp _ | Ir.Instr.Fp_to_si _
  | Ir.Instr.Load _ | Ir.Instr.Alloc _ | Ir.Instr.Call _ ->
      Some Util.Interval.top
  | Ir.Instr.Store _ | Ir.Instr.Br _ | Ir.Instr.Cond_br _ | Ir.Instr.Ret _
  | Ir.Instr.Unreachable ->
      None

let transfer_block ?record (fn : Ir.Func.t) (b : int) (env : env) : env =
  List.fold_left
    (fun env id ->
      match Ir.Func.kind fn id with
      | Ir.Instr.Phi _ when IMap.mem id env ->
          (* keep the edge-computed binding: it saw each predecessor's
             local defs and the branch-guard refinements on that edge *)
          (match record with Some f -> f id (IMap.find id env) | None -> ());
          env
      | kind -> (
          match result_itv env kind with
          | None -> env
          | Some itv ->
              (match record with Some f -> f id itv | None -> ());
              set id itv env))
    env (Ir.Func.block fn b).Ir.Func.instr_ids

(* ---- branch-guard refinement on edges ---- *)

let negate_icmp = function
  | Ir.Instr.Ieq -> Ir.Instr.Ine
  | Ir.Instr.Ine -> Ir.Instr.Ieq
  | Ir.Instr.Islt -> Ir.Instr.Isge
  | Ir.Instr.Isge -> Ir.Instr.Islt
  | Ir.Instr.Isle -> Ir.Instr.Isgt
  | Ir.Instr.Isgt -> Ir.Instr.Isle

let mirror_icmp = function
  | Ir.Instr.Islt -> Ir.Instr.Isgt
  | Ir.Instr.Isgt -> Ir.Instr.Islt
  | Ir.Instr.Isle -> Ir.Instr.Isge
  | Ir.Instr.Isge -> Ir.Instr.Isle
  | (Ir.Instr.Ieq | Ir.Instr.Ine) as o -> o

(* interval for x given that [x `op` y] holds and y is in [yi] *)
let restrict (op : Ir.Instr.icmp) (xi : Util.Interval.t) (yi : Util.Interval.t) :
    Util.Interval.t =
  match Util.Interval.bounds yi with
  | None -> Util.Interval.bot (* the guard compares against an unreachable value *)
  | Some (ylo, yhi) -> (
      match op with
      | Ir.Instr.Ieq -> Util.Interval.meet xi yi
      | Ir.Instr.Ine -> (
          match Util.Interval.singleton yi with
          | Some p -> Util.Interval.remove_point xi p
          | None -> xi)
      | Ir.Instr.Islt ->
          if yhi = Int64.min_int then Util.Interval.bot
          else Util.Interval.meet xi
              (Util.Interval.of_bounds Int64.min_int (Int64.sub yhi 1L))
      | Ir.Instr.Isle ->
          Util.Interval.meet xi (Util.Interval.of_bounds Int64.min_int yhi)
      | Ir.Instr.Isgt ->
          if ylo = Int64.max_int then Util.Interval.bot
          else Util.Interval.meet xi
              (Util.Interval.of_bounds (Int64.add ylo 1L) Int64.max_int)
      | Ir.Instr.Isge ->
          Util.Interval.meet xi (Util.Interval.of_bounds ylo Int64.max_int))

let refine_value (v : Ir.Types.value) itv (env : env) : env =
  match v with Ir.Types.Reg r -> set r itv env | _ -> env

(* Refine [env] knowing the comparison [x `op` y] evaluated to [taken]. *)
let refine_cmp (op : Ir.Instr.icmp) (x : Ir.Types.value) (y : Ir.Types.value)
    ~(taken : bool) (env : env) : env =
  let op = if taken then op else negate_icmp op in
  let xi = eval env x and yi = eval env y in
  let env = refine_value x (restrict op xi yi) env in
  refine_value y (restrict (mirror_icmp op) yi xi) env

(* Bind every phi of [dst] to its operand on the [src] edge, evaluated in
   the predecessor's (guard-refined) env, where defs local to that edge —
   a latch increment, say — are still bound. Phi semantics are parallel:
   all operands are read in the pre-binding env before any is written (the
   swap idiom [phi a <- b; phi b <- a] must not see this round's values). *)
let bind_phis (fn : Ir.Func.t) ~(src : int) ~(dst : int) (env : env) : env =
  let bindings =
    List.filter_map
      (fun id ->
        match Ir.Func.kind fn id with
        | Ir.Instr.Phi incoming ->
            Array.find_opt (fun (p, _) -> p = src) incoming
            |> Option.map (fun (_, v) -> (id, eval env v))
        | _ -> None)
      (Ir.Func.block fn dst).Ir.Func.instr_ids
  in
  List.fold_left (fun env (id, itv) -> set id itv env) env bindings

let transfer_edge (fn : Ir.Func.t) ~(src : int) ~(dst : int) (env : env) : env =
  let env =
    match Ir.Func.terminator fn src with
    | Some { Ir.Instr.kind = Ir.Instr.Cond_br (cond, l1, l2); _ } when l1 <> l2
      -> (
        let taken = dst = l1 in
        match cond with
        | Ir.Types.Reg cid -> (
            let env =
              set cid (Util.Interval.const (if taken then 1L else 0L)) env
            in
            match Ir.Func.kind fn cid with
            | Ir.Instr.Icmp (op, x, y) -> refine_cmp op x y ~taken env
            | _ -> env)
        | _ -> env)
    | _ -> env
  in
  bind_phis fn ~src ~dst env

(* ---- the analysis ---- *)

type result = { fn : Ir.Func.t; table : Util.Interval.t array; visits : int }

let analyze ?(widen_delay = 2) ?(narrow_passes = 2) (fn : Ir.Func.t) : result =
  let cfg = Cfg.Graph.build fn in
  let module D = struct
    type state = env

    let equal = IMap.equal Util.Interval.equal
    let join a b =
      IMap.merge
        (fun _ x y ->
          match (x, y) with
          | Some x, Some y ->
              let j = Util.Interval.join x y in
              if Util.Interval.is_top j then None else Some j
          | _ -> None (* missing on either side = top *))
        a b

    let widen ~prev ~next =
      (* keys missing from [next] stay missing (top); keys missing from
         [prev] were top before, so they stay top — widening never tightens *)
      IMap.merge
        (fun _ p n ->
          match (p, n) with
          | Some p, Some n ->
              let w = Util.Interval.widen ~prev:p ~next:n in
              if Util.Interval.is_top w then None else Some w
          | _ -> None)
        prev next

    let transfer b env = transfer_block fn b env
    let transfer_edge ~src ~dst env = transfer_edge fn ~src ~dst env
  end in
  let module E = Engine.Make (D) in
  let r = E.run ~widen_delay ~narrow_passes cfg ~init:IMap.empty in
  (* Recording sweep: re-run the block transfers once from the solved
     block-entry states, writing every instruction's interval. Instructions
     of unreachable blocks keep Bot (they never execute). *)
  let table = Array.make (max 1 (Ir.Func.num_instrs fn)) Util.Interval.bot in
  List.iter
    (fun b ->
      match E.input r b with
      | None -> ()
      | Some env ->
          ignore (transfer_block ~record:(fun id itv -> table.(id) <- itv) fn b env))
    (Cfg.Graph.reachable_blocks cfg);
  { fn; table; visits = E.visits r }

let itv_of_instr (r : result) (id : int) : Util.Interval.t =
  if id >= 0 && id < Array.length r.table then r.table.(id) else Util.Interval.top

let itv_of_value (r : result) (v : Ir.Types.value) : Util.Interval.t =
  match v with
  | Ir.Types.Const (Ir.Types.Cint i) -> Util.Interval.const i
  | Ir.Types.Const (Ir.Types.Cbool b) -> Util.Interval.const (if b then 1L else 0L)
  | Ir.Types.Const (Ir.Types.Cfloat _) -> Util.Interval.top
  | Ir.Types.Reg reg -> itv_of_instr r reg
  | Ir.Types.Param _ | Ir.Types.Global _ -> Util.Interval.top

let visits (r : result) = r.visits
