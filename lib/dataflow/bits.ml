(* Known-bits analysis: for every SSA value, masks of bits proven 0 and
   bits proven 1. The headline client is the nonzero-divisor fact the lint
   divide-by-zero rule combines with ranges (a value with any known-one bit
   cannot be zero even when its interval straddles zero, e.g. [x | 1]).

   Deliberately not an Engine client: knowledge is initialized to "nothing
   known" (both masks empty), which is already sound through cycles, and
   transfers only ever *add* known bits — a monotone ascent on a lattice of
   height 128 per value, so a simple RPO sweep iterated to a fixpoint
   converges without widening. Phi/select intersect operand knowledge,
   which is the meet the SSA cycle needs. *)

type fact = { zero : int64; one : int64 }

let unknown = { zero = 0L; one = 0L }

let of_const c = { zero = Int64.lognot c; one = c }

let equal_fact a b = a.zero = b.zero && a.one = b.one

(* bits known on both sides (mask of positions where the value is fully
   determined) *)
let determined f = Int64.logor f.zero f.one

let meet_fact a b =
  { zero = Int64.logand a.zero b.zero; one = Int64.logand a.one b.one }

let and_fact a b =
  { zero = Int64.logor a.zero b.zero; one = Int64.logand a.one b.one }

let or_fact a b =
  { zero = Int64.logand a.zero b.zero; one = Int64.logor a.one b.one }

let xor_fact a b =
  let known = Int64.logand (determined a) (determined b) in
  let v = Int64.logxor a.one b.one in
  { zero = Int64.logand known (Int64.lognot v); one = Int64.logand known v }

let low_mask k = if k >= 64 then -1L else Int64.sub (Int64.shift_left 1L k) 1L

(* carries propagate left only: if the low [t] bits of both operands are
   fully determined, the low [t] bits of a sum/difference/product are the
   corresponding bits of the arithmetic on the known parts *)
let low_bits_arith op a b =
  let known = Int64.logand (determined a) (determined b) in
  let rec trailing t =
    if t >= 64 then 64
    else if Int64.logand (Int64.shift_right_logical known t) 1L = 1L then
      trailing (t + 1)
    else t
  in
  let t = trailing 0 in
  if t = 0 then unknown
  else
    let v = op a.one b.one in
    let m = low_mask t in
    {
      zero = Int64.logand m (Int64.lognot v);
      one = Int64.logand m v;
    }

let shift_fact op a b =
  (* only by fully-determined in-range amounts *)
  if determined b = -1L && b.one >= 0L && b.one <= 63L then
    let k = Int64.to_int b.one in
    match op with
    | Ir.Instr.Shl ->
        {
          zero = Int64.logor (Int64.shift_left a.zero k) (low_mask k);
          one = Int64.shift_left a.one k;
        }
    | Ir.Instr.Lshr ->
        let high = if k = 0 then 0L else Int64.shift_left (low_mask k) (64 - k) in
        {
          zero = Int64.logor (Int64.shift_right_logical a.zero k) high;
          one = Int64.shift_right_logical a.one k;
        }
    | Ir.Instr.Ashr ->
        (* sign bit must be known for the filled bits to be known *)
        if Int64.logand a.zero Int64.min_int <> 0L || Int64.logand a.one Int64.min_int <> 0L
        then { zero = Int64.shift_right a.zero k; one = Int64.shift_right a.one k }
        else
          let keep = Int64.shift_right_logical (-1L) k in
          {
            zero = Int64.logand (Int64.shift_right_logical a.zero k) keep;
            one = Int64.logand (Int64.shift_right_logical a.one k) keep;
          }
    | _ -> unknown
  else unknown

type result = { fn : Ir.Func.t; table : fact array }

let eval_value (table : fact array) (v : Ir.Types.value) : fact =
  match v with
  | Ir.Types.Const (Ir.Types.Cint i) -> of_const i
  | Ir.Types.Const (Ir.Types.Cbool b) -> of_const (if b then 1L else 0L)
  | Ir.Types.Reg r when r >= 0 && r < Array.length table -> table.(r)
  | _ -> unknown

let transfer (table : fact array) (kind : Ir.Instr.kind) : fact =
  let ev = eval_value table in
  match kind with
  | Ir.Instr.Ibinop (op, a, b) -> (
      let fa = ev a and fb = ev b in
      match op with
      | Ir.Instr.And -> and_fact fa fb
      | Ir.Instr.Or -> or_fact fa fb
      | Ir.Instr.Xor -> xor_fact fa fb
      | Ir.Instr.Add -> low_bits_arith Int64.add fa fb
      | Ir.Instr.Sub -> low_bits_arith Int64.sub fa fb
      | Ir.Instr.Mul -> low_bits_arith Int64.mul fa fb
      | Ir.Instr.Shl | Ir.Instr.Lshr | Ir.Instr.Ashr -> shift_fact op fa fb
      | Ir.Instr.Sdiv | Ir.Instr.Srem -> unknown)
  | Ir.Instr.Icmp _ | Ir.Instr.Fcmp _ ->
      (* bool 0/1 encoding: bits 1..63 are zero *)
      { zero = Int64.lognot 1L; one = 0L }
  | Ir.Instr.Select (_, a, b) -> meet_fact (ev a) (ev b)
  | Ir.Instr.Phi incoming ->
      if Array.length incoming = 0 then unknown
      else
        Array.fold_left
          (fun acc (_, v) -> meet_fact acc (ev v))
          (ev (snd incoming.(0)))
          incoming
  | _ -> unknown

let analyze (fn : Ir.Func.t) : result =
  let cfg = Cfg.Graph.build fn in
  let order = Cfg.Graph.reachable_blocks cfg in
  let table = Array.make (max 1 (Ir.Func.num_instrs fn)) unknown in
  let changed = ref true in
  let passes = ref 0 in
  while !changed && !passes < 16 do
    changed := false;
    incr passes;
    List.iter
      (fun b ->
        List.iter
          (fun id ->
            let kind = Ir.Func.kind fn id in
            if Ir.Instr.has_result kind then begin
              let f = transfer table kind in
              if not (equal_fact f table.(id)) then begin
                table.(id) <- f;
                changed := true
              end
            end)
          (Ir.Func.block fn b).Ir.Func.instr_ids)
      order
  done;
  { fn; table }

let fact_of_instr (r : result) (id : int) : fact =
  if id >= 0 && id < Array.length r.table then r.table.(id) else unknown

let fact_of_value (r : result) (v : Ir.Types.value) : fact = eval_value r.table v

let known_nonzero (r : result) (v : Ir.Types.value) : bool =
  (fact_of_value r v).one <> 0L
