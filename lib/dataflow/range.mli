(** Interval value-range analysis over SSA values.

    Forward dataflow on the {!Engine} with per-instruction interval
    results: constants, phi-joins with widening at loop headers (then
    narrowing back through exit guards), checked arithmetic transfer, and
    comparison-guarded branch refinement on CFG edges. Sound w.r.t. the
    interpreter's wrapping int64 semantics: any transfer whose mathematical
    bounds could overflow widens to top. *)

type result

val analyze : ?widen_delay:int -> ?narrow_passes:int -> Ir.Func.t -> result
(** Solve ranges for one function (builds its CFG internally). *)

val itv_of_instr : result -> int -> Util.Interval.t
(** Proven interval of an instruction result. {!Util.Interval.bot} for
    instructions in unreachable blocks (they never execute). *)

val itv_of_value : result -> Ir.Types.value -> Util.Interval.t
(** Interval of any IR value: exact for int/bool constants, the table entry
    for registers, top for params/globals/floats. *)

val visits : result -> int
(** Ascending-phase block processings — a termination budget for tests. *)

(** {2 Exposed transfer pieces} (reused by the lint rules and tests) *)

val icmp_itv :
  Ir.Instr.icmp -> Util.Interval.t -> Util.Interval.t -> Util.Interval.t

val ibinop_itv :
  Ir.Instr.ibinop -> Util.Interval.t -> Util.Interval.t -> Util.Interval.t
