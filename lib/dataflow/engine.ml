(* The fixpoint core. Direction is handled by one level of indirection:
   [dpreds]/[dsuccs] are predecessors/successors in *analysis* direction,
   and the iteration order is reverse-postorder of the direction (RPO
   forward, reverse-RPO backward), so acyclic stretches converge in one
   sweep and retreating edges — ord(dst) <= ord(src) — are exactly the
   widening points. The worklist always pops the dirty block earliest in
   the order, which makes iteration deterministic and keeps inner loops
   converging before their enclosing context is re-examined. *)

type direction = Forward | Backward

module type DOMAIN = sig
  type state

  val equal : state -> state -> bool
  val join : state -> state -> state
  val widen : prev:state -> next:state -> state
  val transfer : int -> state -> state
  val transfer_edge : src:int -> dst:int -> state -> state
end

exception Diverged of int

module Make (D : DOMAIN) = struct
  type result = {
    inp : D.state option array;
    out : D.state option array;
    visits : int;
  }

  let run ?(direction = Forward) ?(widen_delay = 2) ?(narrow_passes = 1)
      ?(max_visits = 1000) (cfg : Cfg.Graph.t) ~(init : D.state) : result =
    let nb = Cfg.Graph.num_blocks cfg in
    let order =
      match direction with
      | Forward -> Cfg.Graph.reachable_blocks cfg
      | Backward -> List.rev (Cfg.Graph.reachable_blocks cfg)
    in
    let ord = Array.make nb (-1) in
    List.iteri (fun i b -> ord.(b) <- i) order;
    let dsuccs b =
      match direction with
      | Forward -> Cfg.Graph.successors cfg b
      | Backward -> Cfg.Graph.predecessors cfg b
    in
    let dpreds b =
      match direction with
      | Forward -> Cfg.Graph.predecessors cfg b
      | Backward -> Cfg.Graph.successors cfg b
    in
    (* edge in original orientation: direction-predecessor [p] of [b] is the
       edge p->b forward, b->p backward *)
    let edge ~dpred ~dnode st =
      match direction with
      | Forward -> D.transfer_edge ~src:dpred ~dst:dnode st
      | Backward -> D.transfer_edge ~src:dnode ~dst:dpred st
    in
    let boundary b =
      match direction with
      | Forward -> b = Cfg.Graph.entry cfg
      | Backward -> Cfg.Graph.successors cfg b = []
    in
    let widen_at = Array.make nb false in
    List.iter
      (fun b ->
        List.iter
          (fun s -> if ord.(s) >= 0 && ord.(s) <= ord.(b) then widen_at.(s) <- true)
          (dsuccs b))
      order;
    let inp = Array.make nb None and out = Array.make nb None in
    let visits = ref 0 in
    let updates = Array.make nb 0 in
    let dirty = Array.make nb false in
    let n_dirty = ref 0 in
    let mark b =
      if ord.(b) >= 0 && not dirty.(b) then begin
        dirty.(b) <- true;
        incr n_dirty
      end
    in
    (* None when no direction-predecessor has produced a state yet (and the
       block is not the boundary) — the block is not yet known reachable in
       the current approximation. *)
    let compute_input b =
      let acc = if boundary b then Some init else None in
      List.fold_left
        (fun acc p ->
          match out.(p) with
          | None -> acc
          | Some s -> (
              let s = edge ~dpred:p ~dnode:b s in
              match acc with None -> Some s | Some a -> Some (D.join a s)))
        acc (dpreds b)
    in
    let process b =
      incr visits;
      updates.(b) <- updates.(b) + 1;
      if updates.(b) > max_visits then raise (Diverged b);
      match compute_input b with
      | None -> ()
      | Some fresh ->
          let next =
            match inp.(b) with
            | None -> fresh
            | Some old ->
                let j = D.join old fresh in
                if widen_at.(b) && updates.(b) > widen_delay then
                  D.widen ~prev:old ~next:j
                else j
          in
          let in_changed =
            match inp.(b) with None -> true | Some old -> not (D.equal old next)
          in
          if in_changed || out.(b) = None then begin
            inp.(b) <- Some next;
            let o = D.transfer b next in
            let out_changed =
              match out.(b) with
              | None -> true
              | Some old -> not (D.equal old o)
            in
            out.(b) <- Some o;
            if out_changed then List.iter mark (dsuccs b)
          end
    in
    List.iter mark order;
    while !n_dirty > 0 do
      match List.find_opt (fun b -> dirty.(b)) order with
      | None -> n_dirty := 0 (* defensive: counter drift cannot occur *)
      | Some b ->
          dirty.(b) <- false;
          decr n_dirty;
          process b
    done;
    (* Narrowing: recompute each block's input purely from its edges (no
       join with the old state) and push it through the transfer. Sound
       because every assignment stays above the least fixpoint: x >= lfp
       implies F(x) >= F(lfp) = lfp for monotone F, pointwise. *)
    for _ = 1 to narrow_passes do
      List.iter
        (fun b ->
          match compute_input b with
          | None -> ()
          | Some fresh ->
              inp.(b) <- Some fresh;
              out.(b) <- Some (D.transfer b fresh))
        order
    done;
    { inp; out; visits = !visits }

  let get arr b = if b < 0 || b >= Array.length arr then None else arr.(b)
  let input r b = get r.inp b
  let output r b = get r.out b
  let visits r = r.visits
end
