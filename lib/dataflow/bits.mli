(** Known-bits facts for SSA values: masks of bits proven 0 and proven 1.
    Pessimistic (starts from "nothing known", sound through SSA cycles) and
    iterated over RPO to a fixpoint — knowledge only ever grows, so no
    widening is needed. Primary client: the nonzero-divisor fact that
    complements interval ranges (e.g. [x | 1] is nonzero even when its
    interval straddles zero). *)

type fact = { zero : int64; one : int64 }

val unknown : fact
val of_const : int64 -> fact

type result

val analyze : Ir.Func.t -> result
val fact_of_instr : result -> int -> fact
val fact_of_value : result -> Ir.Types.value -> fact

val known_nonzero : result -> Ir.Types.value -> bool
(** True when some bit is proven 1 (so the value cannot be zero). *)
