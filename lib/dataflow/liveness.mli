(** Register liveness — the canonical backward {!Engine} client. SSA phi
    semantics: phi operands are live on their incoming edge; phi
    definitions kill at the head of their block. *)

module ISet : Set.S with type elt = int

type result

val analyze : Ir.Func.t -> result

val live_in : result -> int -> ISet.t option
(** Instruction ids live at block entry; [None] for unreachable blocks. *)

val live_out : result -> int -> ISet.t option
