(* Register liveness — the canonical backward Engine client, and the proof
   that the direction parameterization actually works (the adversarial-CFG
   tests drive it). State: the set of instruction ids live at a program
   point. Phi semantics follow SSA: a phi's operands are live on the
   incoming edge they flow along (handled in the edge transfer, which sees
   the original src->dst orientation), and its definition kills liveness at
   the head of the destination block. *)

module ISet = Set.Make (Int)

let block_phis (fn : Ir.Func.t) (b : int) : int list =
  List.filter
    (fun id -> match Ir.Func.kind fn id with Ir.Instr.Phi _ -> true | _ -> false)
    (Ir.Func.block fn b).Ir.Func.instr_ids

let add_reg_operands kind live =
  List.fold_left
    (fun live v -> match v with Ir.Types.Reg r -> ISet.add r live | _ -> live)
    live
    (Ir.Instr.operands kind)

type result = {
  live_in : ISet.t option array;
  live_out : ISet.t option array;
}

let analyze (fn : Ir.Func.t) : result =
  let cfg = Cfg.Graph.build fn in
  let module D = struct
    type state = ISet.t

    let equal = ISet.equal
    let join = ISet.union
    let widen ~prev:_ ~next = next (* finite lattice: ACC holds *)

    (* backward through the block body: kill defs, gen uses; phis are
       edge-handled, so skip both their defs and their uses here *)
    let transfer b live =
      List.fold_left
        (fun live id ->
          let kind = Ir.Func.kind fn id in
          match kind with
          | Ir.Instr.Phi _ -> live
          | _ ->
              let live = if Ir.Instr.has_result kind then ISet.remove id live else live in
              add_reg_operands kind live)
        live
        (List.rev (Ir.Func.block fn b).Ir.Func.instr_ids)

    (* live over edge src->dst, given liveness at dst's head: dst's phi
       defs die, and the phi operands flowing in from src become live *)
    let transfer_edge ~src ~dst live =
      List.fold_left
        (fun live id ->
          let live = ISet.remove id live in
          match Ir.Func.kind fn id with
          | Ir.Instr.Phi incoming ->
              Array.fold_left
                (fun live (p, v) ->
                  match v with
                  | Ir.Types.Reg r when p = src -> ISet.add r live
                  | _ -> live)
                live incoming
          | _ -> live)
        live (block_phis fn dst)
  end in
  let module E = Engine.Make (D) in
  let r = E.run ~direction:Engine.Backward ~narrow_passes:0 cfg ~init:ISet.empty in
  let nb = Cfg.Graph.num_blocks cfg in
  (* Backward problem: the engine's direction-input is the join over
     direction-predecessors (= CFG successors), i.e. live-out; its output is
     the block transfer of that, i.e. live-in. *)
  {
    live_in = Array.init nb (fun b -> E.output r b);
    live_out = Array.init nb (fun b -> E.input r b);
  }

let get arr b = if b >= 0 && b < Array.length arr then arr.(b) else None
let live_in (r : result) (b : int) : ISet.t option = get r.live_in b
let live_out (r : result) (b : int) : ISet.t option = get r.live_out b
