(* The parallel-safety auditor: an independent certification pass over
   loops the dependence analysis already proved DOALL. Where deptest works
   pairwise through the ZIV/SIV/GCD lattice, the auditor re-derives safety
   from first principles on a different decision procedure — the vertex
   hull of the dependence polyhedron — so a bug in either implementation
   surfaces as a disagreement instead of a silently unsound verdict, and
   every failure comes back as a structured reason the lint layer can
   report.

   Certification obligations for loop L (trip/arrival bound n):
     1. no call in the body with a write effect, and no call with a read
        effect while the body stores (call accesses have no subscripts to
        test);
     2. every Load/Store resolves to the affine form base + stride*i;
     3. for every (store, load) pair: base objects provably disjoint, or
        the per-iteration index windows provably miss each other — no
        integer solution of  store_addr(i) = load_addr(j),  0 <= i < j <= n-1;
     4. no store in the body whose *stored value* derives from the address
        of an array some access touches (escaping address arithmetic: once
        a base pointer is written to memory, later loads could forge
        aliases the base classification cannot see).

   Obligation 3 substitutes j = i + d (d >= 1):  A*i + B*d = c  with
   A = sw - sr, B = -sr, c in a proven interval (range analysis evaluates
   the non-cancelling base terms). The solution-value hull of the linear
   form over the triangle {i >= 0, d >= 1, i + d <= n-1} is spanned by the
   triangle's vertices; if the hull misses c's interval — or a gcd
   divisibility argument excludes it — the pair cannot collide. All
   arithmetic is overflow-checked: a wrap widens the hull and the audit
   refuses to certify (never the unsound direction). *)

type reason =
  | Call_writes of { instr_id : int; callee : string }
  | Call_reads_while_stores of { instr_id : int; callee : string }
  | Unresolved_access of { instr_id : int; is_write : bool }
  | May_overlap of { store_id : int; load_id : int }
  | Escaping_base of { store_id : int; base_instr : int }

type certificate = Certified | Refuted of reason list

let reason_to_string = function
  | Call_writes { instr_id; callee } ->
      Printf.sprintf "call %%%d to %s may write memory" instr_id callee
  | Call_reads_while_stores { instr_id; callee } ->
      Printf.sprintf "call %%%d to %s may read memory the loop stores" instr_id callee
  | Unresolved_access { instr_id; is_write } ->
      Printf.sprintf "%s %%%d does not resolve to an affine access"
        (if is_write then "store" else "load")
        instr_id
  | May_overlap { store_id; load_id } ->
      Printf.sprintf "store %%%d and load %%%d may touch the same word across iterations"
        store_id load_id
  | Escaping_base { store_id; base_instr } ->
      Printf.sprintf "store %%%d writes a value derived from array base %%%d (address escapes)"
        store_id base_instr

let certificate_to_string = function
  | Certified -> "certified"
  | Refuted rs ->
      Printf.sprintf "refuted(%s)" (String.concat "; " (List.map reason_to_string rs))

let rec gcd64 a b = if b = 0L then Int64.abs a else gcd64 b (Int64.rem a b)

(* No integer solution of A*i + B*d = c for i >= 0, d in [1, m], i + d <= m
   (m = n-1, m >= 1). [c] is an interval; [m = None] means the trip is
   unbounded and only the ray argument from the minimal corner applies. *)
let pair_excluded ~(a : int64) ~(b : int64) ~(c : Util.Interval.t)
    ~(m : int64 option) : bool =
  if Util.Interval.is_bot c then true (* base difference computed from dead values *)
  else
    (* gcd divisibility: any solution value of A*i + B*d is a multiple of
       gcd(A, B); exact only for a singleton c *)
    let by_gcd =
      match Util.Interval.singleton c with
      | Some c when a <> 0L || b <> 0L ->
          let g = gcd64 a b in
          g <> 0L && Int64.rem c g <> 0L
      | _ -> false
    in
    by_gcd
    ||
    let hull =
      if a = 0L && b = 0L then Util.Interval.const 0L
      else
        match m with
        | Some m when m < 1L -> Util.Interval.bot (* no (i, d) points at all *)
        | Some m -> (
            (* vertices (i, d) = (0, 1), (0, m), (m-1, 1) *)
            let v1 = Some b in
            let v2 = Util.Interval.mul64 b m in
            let v3 =
              match Util.Interval.mul64 a (Int64.sub m 1L) with
              | Some am -> Util.Interval.add64 am b
              | None -> None
            in
            match (v1, v2, v3) with
            | Some v1, Some v2, Some v3 ->
                Util.Interval.of_bounds (min v1 (min v2 v3)) (max v1 (max v2 v3))
            | _ -> Util.Interval.top)
        | None ->
            Util.Interval.of_bounds
              (if a < 0L || b < 0L then Int64.min_int else b)
              (if a > 0L || b > 0L then Int64.max_int else b)
    in
    (* exact single-solution check when i's coefficient vanishes: B*d = c
       has at most one d *)
    let exact_b =
      match (a, Util.Interval.singleton c) with
      | 0L, Some c when b <> 0L && Int64.rem c b = 0L ->
          let d0 = Int64.div c b in
          d0 < 1L || (match m with Some m -> d0 > m | None -> false)
      | _ -> false
    in
    exact_b || Util.Interval.is_bot (Util.Interval.meet hull c)

let store_load_safe ~(n : int64 option)
    ~(itv_of : Ir.Types.value -> Util.Interval.t) (s : Deptest.Access.t)
    (l : Deptest.Access.t) : bool =
  Deptest.Access.provably_disjoint s l
  ||
  let sw = s.Deptest.Access.stride and sr = l.Deptest.Access.stride in
  match (Util.Interval.sub64 sw sr, Util.Interval.neg64 sr) with
  | Some a, Some b ->
      let c =
        match
          Deptest.Analysis.const_delta ~store:s.Deptest.Access.inv
            ~load:l.Deptest.Access.inv
        with
        | Some c -> Util.Interval.const c
        | None ->
            Deptest.Analysis.diff_interval ~itv_of ~store:s.Deptest.Access.inv
              ~load:l.Deptest.Access.inv
      in
      let m = Option.map (fun k -> Int64.sub k 1L) n in
      pair_excluded ~a ~b ~c ~m
  | _ -> false

(* Does expression [e] mention the address of one of [bases] (instr ids of
   Alloc sites) at any depth? *)
let rec mentions_base (bases : Cfg.Loopinfo.Int_set.t) (e : Scev.Expr.t) : int option =
  match e with
  | Scev.Expr.Unknown (Ir.Types.Reg r) when Cfg.Loopinfo.Int_set.mem r bases -> Some r
  | Scev.Expr.Add ts | Scev.Expr.Mul ts ->
      List.find_map (mentions_base bases) ts
  | Scev.Expr.Add_rec { start; step; _ } -> (
      match mentions_base bases start with
      | Some r -> Some r
      | None -> mentions_base bases step)
  | _ -> None

let audit_loop (fn : Ir.Func.t) (li : Cfg.Loopinfo.t) (sa : Scev.Analysis.t)
    ~(lid : int) ~(n : int64 option)
    ~(call_effect : string -> Deptest.Analysis.call_effect)
    ~(itv_of : Ir.Types.value -> Util.Interval.t) : certificate =
  let l = Cfg.Loopinfo.loop li lid in
  let header = l.Cfg.Loopinfo.header in
  let loads = ref [] and stores = ref [] in
  let unresolved = ref [] in
  let call_writes = ref [] and call_reads = ref [] in
  let store_values = ref [] in
  Cfg.Loopinfo.Int_set.iter
    (fun bid ->
      List.iter
        (fun id ->
          match Ir.Func.kind fn id with
          | Ir.Instr.Load addr -> (
              match
                Deptest.Access.resolve fn sa ~lid ~header ~instr_id:id
                  ~is_write:false addr
              with
              | Some acc -> loads := acc :: !loads
              | None -> unresolved := (id, false) :: !unresolved)
          | Ir.Instr.Store (addr, v) -> (
              store_values := (id, v) :: !store_values;
              match
                Deptest.Access.resolve fn sa ~lid ~header ~instr_id:id
                  ~is_write:true addr
              with
              | Some acc -> stores := acc :: !stores
              | None -> unresolved := (id, true) :: !unresolved)
          | Ir.Instr.Call (callee, _) -> (
              match call_effect callee with
              | Deptest.Analysis.No_mem -> ()
              | Deptest.Analysis.Reads -> call_reads := (id, callee) :: !call_reads
              | Deptest.Analysis.Reads_writes ->
                  call_reads := (id, callee) :: !call_reads;
                  call_writes := (id, callee) :: !call_writes)
          | _ -> ())
        (Ir.Func.block fn bid).Ir.Func.instr_ids)
    l.Cfg.Loopinfo.body;
  let any_store =
    !stores <> [] || !call_writes <> []
    || List.exists (fun (_, w) -> w) !unresolved
  in
  let any_load =
    !loads <> [] || !call_reads <> []
    || List.exists (fun (_, w) -> not w) !unresolved
  in
  let single_arrival = match n with Some k -> k <= 1L | None -> false in
  (* no cross-iteration RAW is possible without both sides, or without a
     second iteration *)
  if (not any_store) || (not any_load) || single_arrival then Certified
  else begin
    let reasons = ref [] in
    let refute r = reasons := r :: !reasons in
    List.iter
      (fun (id, callee) -> refute (Call_writes { instr_id = id; callee }))
      (List.rev !call_writes);
    if !stores <> [] || !call_writes <> [] || List.exists (fun (_, w) -> w) !unresolved
    then
      List.iter
        (fun (id, callee) ->
          if not (List.mem_assoc id !call_writes) then
            refute (Call_reads_while_stores { instr_id = id; callee }))
        (List.rev !call_reads);
    List.iter
      (fun (id, is_write) -> refute (Unresolved_access { instr_id = id; is_write }))
      (List.rev !unresolved);
    (* escaping address arithmetic: a stored value must not carry the base
       address of any array the loop accesses *)
    let bases =
      List.fold_left
        (fun acc (a : Deptest.Access.t) ->
          match a.Deptest.Access.base with
          | Deptest.Access.Alloc_site b -> Cfg.Loopinfo.Int_set.add b acc
          | _ -> acc)
        Cfg.Loopinfo.Int_set.empty
        (!loads @ !stores)
    in
    if not (Cfg.Loopinfo.Int_set.is_empty bases) then
      List.iter
        (fun (id, v) ->
          let e = Scev.Expr.simplify (Scev.Analysis.scev_of_value sa v) in
          match mentions_base bases e with
          | Some base_instr -> refute (Escaping_base { store_id = id; base_instr })
          | None -> ())
        (List.rev !store_values);
    List.iter
      (fun (s : Deptest.Access.t) ->
        List.iter
          (fun (ld : Deptest.Access.t) ->
            if not (store_load_safe ~n ~itv_of s ld) then
              refute
                (May_overlap
                   {
                     store_id = s.Deptest.Access.instr_id;
                     load_id = ld.Deptest.Access.instr_id;
                   }))
          (List.rev !loads))
      (List.rev !stores);
    match List.rev !reasons with [] -> Certified | rs -> Refuted rs
  end
