(** Parallel-safety auditor: independent certification of [Proven_doall]
    loops on a different decision procedure than the dependence tests (the
    vertex hull of the dependence polyhedron, fed by range analysis), so an
    implementation bug in either surfaces as a disagreement instead of a
    silently unsound verdict. A failed audit downgrades the loop with
    structured reasons the lint layer reports.

    Soundness contract: [Certified] is only returned when every
    (store, load) pair is proven collision-free across iterations, no call
    can write (or read against loop stores), every access resolved to
    affine form, and no stored value carries the address of an accessed
    array base. All internal arithmetic is overflow-checked; a wrap always
    fails toward [Refuted]. *)

type reason =
  | Call_writes of { instr_id : int; callee : string }
  | Call_reads_while_stores of { instr_id : int; callee : string }
  | Unresolved_access of { instr_id : int; is_write : bool }
  | May_overlap of { store_id : int; load_id : int }
  | Escaping_base of { store_id : int; base_instr : int }

type certificate = Certified | Refuted of reason list

val reason_to_string : reason -> string
val certificate_to_string : certificate -> string

val pair_excluded :
  a:int64 -> b:int64 -> c:Util.Interval.t -> m:int64 option -> bool
(** No integer solution of [a*i + b*d = c] with [i >= 0], [d in [1, m]],
    [i + d <= m] ([m = None]: unbounded). Exposed for direct testing. *)

val audit_loop :
  Ir.Func.t ->
  Cfg.Loopinfo.t ->
  Scev.Analysis.t ->
  lid:int ->
  n:int64 option ->
  call_effect:(string -> Deptest.Analysis.call_effect) ->
  itv_of:(Ir.Types.value -> Util.Interval.t) ->
  certificate
(** Audit loop [lid]; [n] is the proven header-arrival count or upper
    bound. Reasons are exhaustive (all failures reported, not just the
    first). *)
