(** Generic direction-parameterized dataflow fixpoint engine over
    [Cfg.Graph].

    Worklist iteration seeded in reverse-postorder (or its reverse for
    backward problems), per-block in/out states, widening at the targets of
    retreating edges after a configurable delay, and optional narrowing
    passes once the ascending phase stabilizes. Clients supply a join
    semilattice with a widening operator and two transfer functions: one
    over a block's instruction list and one over a CFG edge (branch-guard
    refinement forward, phi-operand selection backward). *)

type direction = Forward | Backward

module type DOMAIN = sig
  type state

  val equal : state -> state -> bool
  val join : state -> state -> state

  val widen : prev:state -> next:state -> state
  (** Extrapolate an unstable chain. Domains satisfying the ascending chain
      condition can use [fun ~prev:_ ~next -> next]. *)

  val transfer : int -> state -> state
  (** [transfer block state]: flow [state] through the block's body. *)

  val transfer_edge : src:int -> dst:int -> state -> state
  (** Flow a state across CFG edge [src -> dst]. Always receives the
      original edge orientation, regardless of analysis direction. *)
end

exception Diverged of int
(** Raised with the offending block id when a block is processed more than
    [max_visits] times — a domain whose widening fails to enforce finite
    ascent. *)

module Make (D : DOMAIN) : sig
  type result

  val run :
    ?direction:direction ->
    ?widen_delay:int ->
    ?narrow_passes:int ->
    ?max_visits:int ->
    Cfg.Graph.t ->
    init:D.state ->
    result
  (** Solve the dataflow problem. [init] is the boundary state (entry block
      forward; exit blocks backward). Defaults: [Forward], [widen_delay] 2
      (joins before widening kicks in at loop heads), [narrow_passes] 1,
      [max_visits] 1000.

      Narrowing re-applies the (monotone) transfer functions from the
      post-fixpoint without joining the previous state; every intermediate
      assignment stays above the least fixpoint, so the result remains a
      sound over-approximation while recovering precision the widening
      threw away. *)

  val input : result -> int -> D.state option
  (** State on entry to a block in analysis direction (live-out for a
      backward problem). [None] for blocks unreachable in the direction
      order. *)

  val output : result -> int -> D.state option
  val visits : result -> int
  (** Total block processings of the ascending phase — the termination
      budget adversarial-CFG tests assert against. *)
end
