(* Structural and type well-formedness checks. Dominance-based SSA checking
   (every use dominated by its def) needs the dominator tree and therefore
   lives in the cfg library (Cfg.Ssa_check); this module covers everything
   checkable from the function alone. *)

open Types

type error = { where : string; what : string }

let pp_error ppf e = Format.fprintf ppf "%s: %s" e.where e.what

let error_to_string e = Format.asprintf "%a" pp_error e

(* [funcs] resolves user callees for cross-function signature checking;
   when absent (standalone use on a single function), user calls are only
   checked against the builtin table. *)
let verify_func ?(funcs : (string -> Func.t option) option) (fn : Func.t) : error list =
  let errs = ref [] in
  let err where fmt =
    Format.kasprintf (fun what -> errs := { where; what } :: !errs) fmt
  in
  let nblocks = Func.num_blocks fn in
  let ninstrs = Func.num_instrs fn in
  if fn.Func.entry < 0 || fn.Func.entry >= nblocks then
    err fn.Func.fname "entry block %d out of range" fn.Func.entry;
  (* Each instruction must appear in exactly one block. *)
  let seen = Array.make (max ninstrs 1) false in
  Func.iter_blocks
    (fun b ->
      let where = Printf.sprintf "%s/bb%d" fn.Func.fname b.Func.bid in
      (match List.rev b.Func.instr_ids with
      | [] -> err where "block has no terminator (empty)"
      | last :: _ ->
          if not (Instr.is_terminator (Func.kind fn last)) then
            err where "last instruction %%%d is not a terminator" last);
      let rec check_order ~phis_done = function
        | [] -> ()
        | id :: rest ->
            if id < 0 || id >= ninstrs then err where "instr id %%%d out of range" id
            else begin
              if seen.(id) then err where "instr %%%d appears in multiple blocks" id;
              seen.(id) <- true;
              let i = Func.instr fn id in
              if i.Instr.block <> b.Func.bid then
                err where "instr %%%d records block %d" id i.Instr.block;
              (match i.Instr.kind with
              | Instr.Phi _ when phis_done ->
                  err where "phi %%%d after non-phi instruction" id
              | _ -> ());
              if Instr.is_terminator i.Instr.kind && rest <> [] then
                err where "terminator %%%d in the middle of the block" id;
              let phis_done =
                phis_done || match i.Instr.kind with Instr.Phi _ -> false | _ -> true
              in
              check_order ~phis_done rest
            end
      in
      check_order ~phis_done:false b.Func.instr_ids)
    fn;
  (* Operand, target and type checks. *)
  let value_ok v =
    match v with
    | Const _ -> true
    | Reg id ->
        id >= 0 && id < ninstrs
        && Instr.has_result (Func.kind fn id)
        && Option.is_some (Func.instr_ty fn id)
    | Param i -> i >= 0 && i < List.length fn.Func.params
    | Global _ -> true
  in
  let expect_ty where v want =
    if value_ok v then
      match Func.value_ty fn v with
      | Some t when equal_ty t want -> ()
      | Some t ->
          err where "operand %s has type %s, expected %s" (Pp.value_to_string v)
            (ty_to_string t) (ty_to_string want)
      | None -> err where "operand %s has no type" (Pp.value_to_string v)
  in
  let check_target where l =
    if l < 0 || l >= nblocks then err where "branch target bb%d out of range" l
  in
  (* Structural CFG predecessors, for phi completeness. *)
  let preds = Array.make nblocks [] in
  Func.iter_blocks
    (fun b ->
      match Func.terminator fn b.Func.bid with
      | Some t ->
          List.iter
            (fun s ->
              if s >= 0 && s < nblocks then preds.(s) <- b.Func.bid :: preds.(s))
            (Instr.successors t.Instr.kind)
      | None -> ())
    fn;
  let check_call where ~result_ty callee args =
    let check_sig ~what (sig_args : ty list) (sig_ret : ty option) =
      let nargs = List.length args and nsig = List.length sig_args in
      if nargs <> nsig then
        err where "call to %s @%s expects %d argument(s), got %d" what callee nsig nargs
      else
        List.iteri
          (fun k (v, want) ->
            (* arrfill's fill value is polymorphic (i64 or f64 words) *)
            if not (callee = "arrfill" && k = 1) then expect_ty where v want)
          (List.combine args sig_args);
      match (result_ty, sig_ret) with
      | None, _ -> () (* unused result is fine *)
      | Some t, Some r when equal_ty t r -> ()
      | Some t, Some r ->
          err where "call result type %s, but @%s returns %s" (ty_to_string t) callee
            (ty_to_string r)
      | Some _, None -> err where "call uses the result of void @%s" callee
    in
    match Builtins.find callee with
    | Some s -> check_sig ~what:"builtin" s.Builtins.args s.Builtins.ret
    | None -> (
        match funcs with
        | None -> () (* standalone check: no function table available *)
        | Some lookup -> (
            match lookup callee with
            | Some callee_fn ->
                check_sig ~what:"function"
                  (List.map snd callee_fn.Func.params)
                  callee_fn.Func.ret
            | None -> err where "call to undefined function @%s" callee))
  in
  Func.iter_instrs
    (fun i ->
      let where = Printf.sprintf "%s/%%%d" fn.Func.fname i.Instr.id in
      List.iter
        (fun v -> if not (value_ok v) then err where "bad operand %s" (Pp.value_to_string v))
        (Instr.operands i.Instr.kind);
      match i.Instr.kind with
      | Instr.Ibinop (_, a, b) ->
          expect_ty where a I64;
          expect_ty where b I64
      | Instr.Fbinop (_, a, b) ->
          expect_ty where a F64;
          expect_ty where b F64
      | Instr.Icmp (_, a, b) -> (
          (* icmp compares two i64s or two i1s (bool equality) *)
          match (Func.value_ty fn a, Func.value_ty fn b) with
          | Some I64, Some I64 | Some I1, Some I1 -> ()
          | ta, tb ->
              err where "icmp operand types %s / %s"
                (match ta with Some t -> ty_to_string t | None -> "?")
                (match tb with Some t -> ty_to_string t | None -> "?"))
      | Instr.Fcmp (_, a, b) ->
          expect_ty where a F64;
          expect_ty where b F64
      | Instr.Select (c, a, b) -> (
          expect_ty where c I1;
          match i.Instr.ty with
          | Some t ->
              expect_ty where a t;
              expect_ty where b t
          | None -> err where "select has no result type")
      | Instr.Si_to_fp a -> expect_ty where a I64
      | Instr.Fp_to_si a -> expect_ty where a F64
      | Instr.Load a -> expect_ty where a I64
      | Instr.Store (a, _) -> expect_ty where a I64
      | Instr.Alloc n -> expect_ty where n I64
      | Instr.Call (callee, args) ->
          check_call where ~result_ty:i.Instr.ty callee args
      | Instr.Phi incoming -> (
          let named = Array.map fst incoming in
          Array.iter (fun p -> check_target where p) named;
          let sorted = Array.copy named in
          Array.sort compare sorted;
          for k = 1 to Array.length sorted - 1 do
            if sorted.(k) = sorted.(k - 1) then
              err where "duplicate phi predecessor bb%d" sorted.(k)
          done;
          (* Completeness: the named predecessors must be exactly the
             structural CFG predecessors of the phi's block. (Ssa_check
             additionally scopes the missing-edge direction to reachable
             predecessors, which matters after branch folding.) *)
          let structural = List.sort_uniq compare preds.(i.Instr.block) in
          Array.iter
            (fun p ->
              if (p >= 0 && p < nblocks) && not (List.mem p structural) then
                err where "phi names bb%d, which is not a predecessor" p)
            named;
          List.iter
            (fun p ->
              if not (Array.exists (fun q -> q = p) named) then
                err where "phi is missing an entry for predecessor bb%d" p)
            structural;
          match i.Instr.ty with
          | Some t -> Array.iter (fun (_, v) -> expect_ty where v t) incoming
          | None -> err where "phi has no result type")
      | Instr.Br l -> check_target where l
      | Instr.Cond_br (c, l1, l2) ->
          expect_ty where c I1;
          check_target where l1;
          check_target where l2
      | Instr.Ret v -> (
          match (v, fn.Func.ret) with
          | None, None -> ()
          | Some v, Some t -> expect_ty where v t
          | Some _, None -> err where "ret with value in void function"
          | None, Some _ -> err where "ret void in non-void function")
      | Instr.Unreachable -> ())
    fn;
  List.rev !errs

let verify_module (m : Func.modul) : error list =
  let dup_errs =
    let names = List.map (fun f -> f.Func.fname) m.Func.funcs in
    let rec dups = function
      | [] -> []
      | n :: rest when List.mem n rest ->
          { where = n; what = "duplicate function definition" } :: dups rest
      | _ :: rest -> dups rest
    in
    dups names
  in
  let lookup name = Func.find_func m name in
  dup_errs @ List.concat_map (verify_func ~funcs:lookup) m.Func.funcs

(* Raise on invalid IR; used by the driver before analysis. *)
exception Invalid_ir of string

let check_module_exn m =
  match verify_module m with
  | [] -> ()
  | errs ->
      let msg = String.concat "\n" (List.map error_to_string errs) in
      raise (Invalid_ir msg)
