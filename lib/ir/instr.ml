(* IR instruction set. A deliberately small LLVM-like SSA vocabulary: enough
   to lower Looplang and to carry the analyses the limit study needs (loop
   phis for register LCDs, loads/stores for memory LCDs, calls for the fn
   ladder). *)

open Types

type ibinop =
  | Add
  | Sub
  | Mul
  | Sdiv
  | Srem
  | And
  | Or
  | Xor
  | Shl
  | Ashr
  | Lshr

type fbinop = Fadd | Fsub | Fmul | Fdiv

type icmp = Ieq | Ine | Islt | Isle | Isgt | Isge

type fcmp = Feq | Fne | Flt | Fle | Fgt | Fge

type kind =
  | Ibinop of ibinop * value * value
  | Fbinop of fbinop * value * value
  | Icmp of icmp * value * value
  | Fcmp of fcmp * value * value
  | Select of value * value * value (* cond, if-true, if-false *)
  | Si_to_fp of value
  | Fp_to_si of value
  | Load of value (* word address *)
  | Store of value * value (* word address, stored value *)
  | Alloc of value (* size in words; yields base address of a fresh block *)
  | Call of string * value list
  | Phi of (int * value) array (* (predecessor block id, incoming value) *)
  | Br of int
  | Cond_br of value * int * int (* cond, then-block, else-block *)
  | Ret of value option
  | Unreachable

(* One arena slot per instruction. [ty] is the result type; instructions
   that produce no value (stores, terminators) carry [None]. [block] is kept
   in sync by the builder and the CFG transforms. *)
type t = {
  id : int;
  mutable kind : kind;
  mutable ty : ty option;
  mutable block : int;
}

let is_terminator = function
  | Br _ | Cond_br _ | Ret _ | Unreachable -> true
  | Ibinop _ | Fbinop _ | Icmp _ | Fcmp _ | Select _ | Si_to_fp _ | Fp_to_si _
  | Load _ | Store _ | Alloc _ | Call _ | Phi _ ->
      false

let has_result = function
  | Ibinop _ | Fbinop _ | Icmp _ | Fcmp _ | Select _ | Si_to_fp _ | Fp_to_si _
  | Load _ | Alloc _ | Phi _ ->
      true
  | Call _ -> true (* void calls carry ty = None instead *)
  | Store _ | Br _ | Cond_br _ | Ret _ | Unreachable -> false

(* All value operands, in syntactic order. *)
let operands = function
  | Ibinop (_, a, b) | Fbinop (_, a, b) | Icmp (_, a, b) | Fcmp (_, a, b)
  | Store (a, b) ->
      [ a; b ]
  | Select (c, a, b) -> [ c; a; b ]
  | Si_to_fp a | Fp_to_si a | Load a | Alloc a | Cond_br (a, _, _) -> [ a ]
  | Call (_, args) -> args
  | Phi incoming -> Array.to_list (Array.map snd incoming)
  | Ret (Some a) -> [ a ]
  | Ret None | Br _ | Unreachable -> []

let map_operands f kind =
  match kind with
  | Ibinop (op, a, b) -> Ibinop (op, f a, f b)
  | Fbinop (op, a, b) -> Fbinop (op, f a, f b)
  | Icmp (op, a, b) -> Icmp (op, f a, f b)
  | Fcmp (op, a, b) -> Fcmp (op, f a, f b)
  | Select (c, a, b) -> Select (f c, f a, f b)
  | Si_to_fp a -> Si_to_fp (f a)
  | Fp_to_si a -> Fp_to_si (f a)
  | Load a -> Load (f a)
  | Store (a, v) -> Store (f a, f v)
  | Alloc a -> Alloc (f a)
  | Call (name, args) -> Call (name, List.map f args)
  | Phi incoming -> Phi (Array.map (fun (b, v) -> (b, f v)) incoming)
  | Br l -> Br l
  | Cond_br (c, l1, l2) -> Cond_br (f c, l1, l2)
  | Ret (Some a) -> Ret (Some (f a))
  | Ret None -> Ret None
  | Unreachable -> Unreachable

(* Successor block ids of a terminator (empty for non-terminators). *)
let successors = function
  | Br l -> [ l ]
  | Cond_br (_, l1, l2) -> if l1 = l2 then [ l1 ] else [ l1; l2 ]
  | Ret _ | Unreachable -> []
  | Ibinop _ | Fbinop _ | Icmp _ | Fcmp _ | Select _ | Si_to_fp _ | Fp_to_si _
  | Load _ | Store _ | Alloc _ | Call _ | Phi _ ->
      []

let retarget_successor ~from_ ~to_ = function
  | Br l -> Br (if l = from_ then to_ else l)
  | Cond_br (c, l1, l2) ->
      Cond_br (c, (if l1 = from_ then to_ else l1), if l2 = from_ then to_ else l2)
  | k -> k

(* Dense opcode index over the [kind] constructors, for per-opcode retired
   counters: the interpreter indexes a flat array with this on its hot path,
   so the mapping must stay total and stable. *)
let n_opcodes = 16

let opcode = function
  | Ibinop _ -> 0
  | Fbinop _ -> 1
  | Icmp _ -> 2
  | Fcmp _ -> 3
  | Select _ -> 4
  | Si_to_fp _ -> 5
  | Fp_to_si _ -> 6
  | Load _ -> 7
  | Store _ -> 8
  | Alloc _ -> 9
  | Call _ -> 10
  | Phi _ -> 11
  | Br _ -> 12
  | Cond_br _ -> 13
  | Ret _ -> 14
  | Unreachable -> 15

let opcode_name = function
  | 0 -> "ibinop"
  | 1 -> "fbinop"
  | 2 -> "icmp"
  | 3 -> "fcmp"
  | 4 -> "select"
  | 5 -> "si_to_fp"
  | 6 -> "fp_to_si"
  | 7 -> "load"
  | 8 -> "store"
  | 9 -> "alloc"
  | 10 -> "call"
  | 11 -> "phi"
  | 12 -> "br"
  | 13 -> "cond_br"
  | 14 -> "ret"
  | 15 -> "unreachable"
  | n -> invalid_arg (Printf.sprintf "Instr.opcode_name: %d" n)

let ibinop_name = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Sdiv -> "sdiv"
  | Srem -> "srem"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Shl -> "shl"
  | Ashr -> "ashr"
  | Lshr -> "lshr"

let fbinop_name = function
  | Fadd -> "fadd"
  | Fsub -> "fsub"
  | Fmul -> "fmul"
  | Fdiv -> "fdiv"

let icmp_name = function
  | Ieq -> "eq"
  | Ine -> "ne"
  | Islt -> "slt"
  | Isle -> "sle"
  | Isgt -> "sgt"
  | Isge -> "sge"

let fcmp_name = function
  | Feq -> "oeq"
  | Fne -> "one"
  | Flt -> "olt"
  | Fle -> "ole"
  | Fgt -> "ogt"
  | Fge -> "oge"
