(* Builtin ("library") functions callable from Looplang programs. Each
   carries the safety classification the fn0–fn3 ladder needs (paper Table
   II): pure builtins are callable under -fn1; thread-safe (re-entrant,
   argument-only effects) builtins additionally under -fn2; I/O and
   global-state builtins only under -fn3.

   These model the pre-compiled C library of the paper's setup: their
   *internal* execution time is not instrumented (paper §III-D) beyond a
   fixed cost, but their memory effects on program-visible arrays are
   reported to the conflict tracker.

   The [mem] field is the single source of truth for a builtin's
   program-visible memory footprint. The dependence analysis consumes it to
   decide whether a call inside a loop can alias loop accesses, and the
   interpreter enforces it: a builtin declared [No_mem] that performs a
   tracked memory access is a runtime error, so the spec and the
   implementation cannot drift apart. *)

open Types

type safety =
  | Pure (* read-only, no side effects: callable under -fn1 *)
  | Thread_safe (* re-entrant, writes only through its arguments: -fn2 *)
  | Io (* observable side effects in program order: -fn3 only *)
  | Global_state (* hidden mutable state (e.g. the rand seed): -fn3 only *)

type mem_effect =
  | No_mem (* touches no program-visible memory *)
  | Reads (* may read program arrays through its arguments *)
  | Reads_writes (* may read and write program arrays *)

type signature = { args : ty list; ret : ty option; safety : safety; mem : mem_effect }

let table : (string * signature) list =
  [
    ("print_int", { args = [ I64 ]; ret = None; safety = Io; mem = No_mem });
    ("print_float", { args = [ F64 ]; ret = None; safety = Io; mem = No_mem });
    ("print_char", { args = [ I64 ]; ret = None; safety = Io; mem = No_mem });
    (* Deterministic LCG random source with a hidden seed *)
    ("rand", { args = []; ret = Some I64; safety = Global_state; mem = No_mem });
    ("srand", { args = [ I64 ]; ret = None; safety = Global_state; mem = No_mem });
    (* libm subset *)
    ("sqrt", { args = [ F64 ]; ret = Some F64; safety = Pure; mem = No_mem });
    ("sin", { args = [ F64 ]; ret = Some F64; safety = Pure; mem = No_mem });
    ("cos", { args = [ F64 ]; ret = Some F64; safety = Pure; mem = No_mem });
    ("exp", { args = [ F64 ]; ret = Some F64; safety = Pure; mem = No_mem });
    ("log", { args = [ F64 ]; ret = Some F64; safety = Pure; mem = No_mem });
    ("pow", { args = [ F64; F64 ]; ret = Some F64; safety = Pure; mem = No_mem });
    (* memcpy/memset analogues: thread-safe, effects via arguments only;
       their word-level accesses are reported to the conflict tracker *)
    ( "arrcopy",
      { args = [ I64; I64; I64 ]; ret = Some I64; safety = Thread_safe; mem = Reads_writes } );
    ( "arrfill",
      {
        args = [ I64; I64; I64 ] (* fill value is i64 or f64 *);
        ret = Some I64;
        safety = Thread_safe;
        mem = Reads_writes;
      } );
  ]

let find name = List.assoc_opt name table

let is_builtin name = find name <> None

let safety_name = function
  | Pure -> "pure"
  | Thread_safe -> "thread-safe"
  | Io -> "io"
  | Global_state -> "global-state"

let mem_effect_name = function
  | No_mem -> "no-mem"
  | Reads -> "reads"
  | Reads_writes -> "reads-writes"
