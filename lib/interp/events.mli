(** Instrumentation hooks — the run-time callback surface the paper's
    compile-time component inserts into the program (§III-A). The machine
    invokes these during execution; [Loopa.Profile] implements them for
    profiling, and the guarded parallel runner's shard workers implement
    [on_mem_access] as a per-shard access log. All hooks receive the
    dynamic IR instruction count ("clock") as the time-stamp.

    Loop ids are the [Cfg.Loopinfo] lids of the {e current} function; the
    listener tracks which function is current via call_enter/call_exit. *)

type hooks = {
  on_call_enter : fname:string -> clock:int -> unit;
  on_call_exit : fname:string -> clock:int -> unit;
  on_loop_enter : lid:int -> clock:int -> unit;
  on_loop_iter : lid:int -> clock:int -> unit;
      (** arrival at the header via the latch: a new iteration begins *)
  on_loop_exit : lid:int -> clock:int -> unit;
  on_mem_access : addr:int -> is_write:bool -> clock:int -> unit;
      (** every tracked word access; fires {e before} the store lands, so
          a logger can snapshot the overwritten value *)
  on_watched_def : instr_id:int -> clock:int -> unit;
      (** execution of an instruction the listener registered interest in
          (producers of register LCD values) *)
  on_watched_use : phi_id:int -> clock:int -> unit;
      (** use of a watched header phi's value by any instruction *)
  on_header_phi : phi_id:int -> value:Rvalue.rv -> clock:int -> unit;
      (** value flowing into a watched header phi at each header arrival;
          for the entry edge this is the initial value, for latch edges the
          value the previous iteration produced *)
  on_builtin_call : name:string -> clock:int -> unit;
      (** a builtin ("library") call; user calls report via on_call_enter *)
}

(** Every callback a no-op. Start from this and override the fields you
    need. *)
val no_hooks : hooks

(** Which instructions of each function the listener wants reported.
    [defs] marks producers (on_watched_def); [phi_uses] maps instruction
    id -> list of watched phi ids it uses (on_watched_use); [phis] marks
    watched header phis (on_header_phi). [mem_lids], indexed by
    [Cfg.Loopinfo] lid, says whether a loop still needs the memory-event
    stream: the machine only emits on_mem_access while at least one active
    loop (anywhere on the call stack) wants it. Loops statically proven
    free of cross-iteration RAW are dropped here — the watch-plan pruning
    of the static dependence tester. *)
type watch_plan = {
  defs : bool array;
  phis : bool array;
  phi_uses : int list array;
  mem_lids : bool array;
}

(** Watch nothing, prune nothing: all [mem_lids] true, so the memory-event
    stream is complete. The guarded runner requires plans like this — its
    commit accounting assumes events = accesses. *)
val empty_watch_plan : Ir.Func.t -> watch_plan
