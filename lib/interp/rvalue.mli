(** Runtime values and the flat word-addressed memory. Address 0 is the null
    sentinel; globals occupy [1..n]; the heap grows upward (bump allocation,
    no free — benchmarks are one-shot). Cells are dynamically typed so type
    confusion is caught rather than reinterpreted. *)

type rv = Vint of int64 | Vfloat of float | Vbool of bool

val rv_to_string : rv -> string

(** Interpreter-invariant breakage (type confusion, malformed IR reaching
    execution): a library bug, not a property of the executed program. *)
exception Runtime_error of string

(** Raise {!Runtime_error} with a formatted message. *)
val error : ('a, Format.formatter, unit, 'b) format4 -> 'a

(** Program-level faults — undefined behaviour of the executed program,
    classified so error paths stay machine-readable. *)
type trap_kind = Div_by_zero | Out_of_bounds | Negative_alloc

val trap_kind_to_string : trap_kind -> string

exception Trap of trap_kind * string

(** Raise {!Trap} with a formatted message. *)
val trap : trap_kind -> ('a, Format.formatter, unit, 'b) format4 -> 'a

(** Resource budgets. Exhaustion is not an error: the machine unwinds
    cleanly (closing open loop invocations and call frames in the event
    stream) and reports a truncated outcome. *)
type budget_kind = Fuel | Call_depth | Heap | Wall

val budget_kind_to_string : budget_kind -> string

exception Budget_stop of budget_kind

(** @raise Runtime_error unless the value has the expected shape. A
    zero-initialized cell ([Vint 0]) reads as [0.0] through {!as_float}. *)
val as_int : rv -> int64

val as_float : rv -> float

val as_bool : rv -> bool

type memory

(** [limit] caps total words (default 2^26). Globals get addresses in
    declaration order starting at 1. *)
val create : ?limit:int -> Ir.Func.global list -> memory

(** @raise Runtime_error for unknown names. *)
val global_addr : memory -> string -> int

(** @raise Trap ([Out_of_bounds]) on out-of-bounds (including null). *)
val load : memory -> int -> rv

val store : memory -> int -> rv -> unit

(** Allocate zero-initialized words; returns the base address.
    @raise Trap ([Negative_alloc]) on negative size
    @raise Budget_stop ([Heap]) on memory exhaustion *)
val alloc : memory -> int -> int

val words_in_use : memory -> int
