(* Runtime values and the flat word-addressed memory. Address 0 is the null
   sentinel; globals occupy [1 .. n]; the heap grows upward from there. Cells
   are dynamically typed so the machine catches type confusion (a library
   bug, not a benchmark property) instead of silently reinterpreting. *)

type rv = Vint of int64 | Vfloat of float | Vbool of bool

let rv_to_string = function
  | Vint i -> Int64.to_string i
  | Vfloat f -> Printf.sprintf "%.17g" f
  | Vbool b -> string_of_bool b

exception Runtime_error of string

let error fmt = Format.kasprintf (fun msg -> raise (Runtime_error msg)) fmt

(* Program-level faults: the executed program did something undefined. These
   are classified (the campaign runner maps them into its error taxonomy)
   as opposed to Runtime_error, which marks interpreter-invariant breakage. *)
type trap_kind = Div_by_zero | Out_of_bounds | Negative_alloc

let trap_kind_to_string = function
  | Div_by_zero -> "division by zero"
  | Out_of_bounds -> "out-of-bounds access"
  | Negative_alloc -> "negative allocation"

exception Trap of trap_kind * string

let trap kind fmt = Format.kasprintf (fun msg -> raise (Trap (kind, msg))) fmt

(* Resource budgets. Exhausting one is not an error: the machine unwinds
   cleanly (closing every open loop invocation and call frame in the event
   stream) and reports a truncated outcome the profile layer can still use. *)
type budget_kind = Fuel | Call_depth | Heap | Wall

let budget_kind_to_string = function
  | Fuel -> "fuel"
  | Call_depth -> "call-depth"
  | Heap -> "heap"
  | Wall -> "wall-clock"

exception Budget_stop of budget_kind

let as_int = function
  | Vint i -> i
  | v -> error "expected an int, got %s" (rv_to_string v)

let as_float = function
  | Vfloat f -> f
  (* zero-initialized cells read back as 0.0 through a float-typed load *)
  | Vint 0L -> 0.0
  | v -> error "expected a float, got %s" (rv_to_string v)

let as_bool = function
  | Vbool b -> b
  | v -> error "expected a bool, got %s" (rv_to_string v)

type memory = {
  cells : rv Ir.Vec.t;
  mutable brk : int; (* next free heap address *)
  limit : int; (* max words *)
  global_addrs : (string, int) Hashtbl.t;
}

let create ?(limit = 1 lsl 26) (globals : Ir.Func.global list) : memory =
  let cells = Ir.Vec.create ~dummy:(Vint 0L) in
  Ir.Vec.push cells (Vint 0L) (* address 0: null *);
  let global_addrs = Hashtbl.create 16 in
  List.iter
    (fun (g : Ir.Func.global) ->
      let v =
        match g.Ir.Func.ginit with
        | Ir.Types.Cint i -> Vint i
        | Ir.Types.Cfloat f -> Vfloat f
        | Ir.Types.Cbool b -> Vbool b
      in
      Hashtbl.replace global_addrs g.Ir.Func.gname (Ir.Vec.length cells);
      Ir.Vec.push cells v)
    globals;
  { cells; brk = Ir.Vec.length cells; limit; global_addrs }

let global_addr mem name =
  match Hashtbl.find_opt mem.global_addrs name with
  | Some a -> a
  | None -> error "unknown global @%s" name

let check_addr mem a =
  if a <= 0 || a >= Ir.Vec.length mem.cells then
    trap Out_of_bounds "memory access out of bounds at address %d" a

let load mem a =
  check_addr mem a;
  Ir.Vec.get mem.cells a

let store mem a v =
  check_addr mem a;
  Ir.Vec.set mem.cells a v

(* Allocate [size] zero-initialized words; returns the base address. *)
let alloc mem size =
  if size < 0 then trap Negative_alloc "alloc with negative size %d" size;
  if mem.brk + size > mem.limit then raise (Budget_stop Heap);
  let base = mem.brk in
  for _ = 1 to size do
    Ir.Vec.push mem.cells (Vint 0L)
  done;
  mem.brk <- mem.brk + size;
  base

let words_in_use mem = mem.brk
