(** The IR interpreter — the limit study's run-time component. Executes a
    verified module deterministically, advancing a clock by one per executed
    IR instruction (the paper's dynamic-IR-instruction-count time metric)
    and reporting instrumentation events through {!Events.hooks}. *)

type t

(** Test-only fault injection: at the first executed instruction whose clock
    reaches the stamp, the fault fires (a classified {!Rvalue.Trap} or a
    graceful {!Rvalue.Budget_stop}). Lets the campaign runner and the fuzz
    suite prove that every error path yields a classified, well-formed
    result instead of a crash. *)
type fault =
  | Inject_div_by_zero
  | Inject_oob
  | Inject_fuel_out
  | Inject_depth_out

type fault_plan = (int * fault) list

(** A fresh arrival at a loop header from outside the loop, offered to the
    {!set_delegate} hook before the machine executes the loop serially.
    [le_regs]/[le_args] are the live frame state; a delegate that declines
    must leave them untouched. *)
type loop_entry = {
  le_fname : string;
  le_lid : int;  (** Cfg.Loopinfo lid within [le_fname] *)
  le_header : int;  (** header block id *)
  le_pred : int;  (** the out-of-loop predecessor block (preheader) *)
  le_regs : Rvalue.rv array;
  le_args : Rvalue.rv array;
}

(** The whole-loop effect a delegate commits in place of serial execution:
    exactly the clock ticks, register updates, memory writes, access counts
    and program output the serial loop would have produced, plus the exit
    edge to resume from. Byte-equivalence with serial execution is the
    delegate's contract — the machine applies the commit verbatim and fires
    no loop events for the committed invocation. *)
type loop_commit = {
  lc_exit_pred : int;
  lc_exit_target : int;
  lc_clock : int;
  lc_accesses : int;
  lc_regs : (int * Rvalue.rv) list;
  lc_writes : (int * Rvalue.rv) list;
  lc_output : string;
}

(** Why execution stopped. On [Truncated], the machine closed every open
    loop invocation and call frame before returning, so listeners saw a
    well-formed event stream over the executed prefix. *)
type stop_reason = Completed | Truncated of Rvalue.budget_kind

val stop_reason_to_string : stop_reason -> string

type outcome = {
  ret : Rvalue.rv option;  (** main's return value; [None] when truncated *)
  stop : stop_reason;  (** completed, or which budget truncated the run *)
  clock : int;  (** total dynamic IR instructions *)
  output : string;  (** everything the print builtins emitted *)
  mem_words : int;  (** heap high-water mark *)
  mem_accesses : int;  (** word accesses executed *)
  mem_events : int;
      (** word accesses reported to hooks — lower than [mem_accesses] when
          watch plans pruned statically proven RAW-free loops *)
}

(** [watch] supplies per-function watch plans (which instructions report
    defs/uses/phi values); [fuel] bounds the instruction count; [mem_limit]
    bounds memory (words); [max_depth] bounds the call stack; [deadline] is
    an absolute {e wall-clock} stamp ([Unix.gettimeofday], polled every 64k
    instructions) — real elapsed time, not processor time, so a deadline
    computed by the caller holds even if the process is descheduled;
    [faults] is a test-only injection plan. Exhausting any of these budgets
    stops the run cleanly ({!stop_reason}) rather than raising. *)
val create :
  ?hooks:Events.hooks ->
  ?fuel:int ->
  ?mem_limit:int ->
  ?max_depth:int ->
  ?deadline:float ->
  ?faults:fault_plan ->
  ?watch:(string -> Events.watch_plan option) ->
  Ir.Func.modul ->
  t

(** The loop forest the machine computed for a function (lids match what the
    loop events report). *)
val loopinfo : t -> string -> Cfg.Loopinfo.t

(** Dynamic IR instructions executed so far. Deterministic across re-runs,
    and readable after {!run_main} raised a trap — when no {!outcome} record
    exists — so failure fingerprints can carry the trap's clock. *)
val clock : t -> int

(** {!clock} under its counter name: dynamic IR instructions executed so
    far. Like [clock], readable on every exit path — including after a
    trap — which is what lets the driver publish run counters even for
    failed runs. *)
val instructions_retired : t -> int

(** Word accesses executed so far. *)
val mem_accesses : t -> int

(** Word accesses reported through hooks so far — lower than
    {!mem_accesses} when watch plans pruned statically proven RAW-free
    loops. *)
val mem_events : t -> int

(** Accesses the watch plans pruned: [mem_accesses - mem_events]. *)
val mem_events_pruned : t -> int

(** The machine's fuel budget (total, not remaining — pair with {!clock}).
    The guarded runner pre-checks a commit's lump of ticks against it. *)
val fuel : t -> int

(** {2 Self-profiling (lib/prof)}

    Both facilities follow the lib/obs zero-cost-when-off contract: until
    enabled, the per-instruction overhead is one array-length read (opcode
    counters) plus one integer compare (sampler). *)

(** Allocate the per-opcode retired-instruction counters. Counts partition
    the clock exactly: IR constructors by {!Ir.Instr.opcode}, plus a
    ["builtin_mem"] slot for the per-element ticks of arrcopy/arrfill and a
    ["committed"] slot for clock lumps a delegate's loop commit applied —
    so the counter sum always equals {!instructions_retired}. Idempotent. *)
val enable_opcode_counts : t -> unit

(** [(opcode name, retired count)] pairs, zero entries dropped; [[]] until
    {!enable_opcode_counts}. *)
val opcode_counts : t -> (string * int) list

(** Arm the deterministic sampling profiler: [f clock] fires every
    [period] retired instructions (first at clock [period]). Placement is
    a pure function of the clock, so samples land on the same instructions
    in every run of the same program.
    @raise Invalid_argument when [period <= 0] *)
val set_sampler : t -> period:int -> (int -> unit) -> unit

(** Disarm the sampler (back to the one-compare-per-tick null path). *)
val clear_sampler : t -> unit

(** Swap the instrumentation hooks. Shard workers install their access
    loggers per task on the forked machine image. *)
val set_hooks : t -> Events.hooks -> unit

(** Install (or clear) the guarded-execution delegate, consulted on every
    fresh loop entry. [None] — the default — means every loop executes
    serially. Only meaningful with default (unpruned) watch plans: a commit
    counts every shard access as both executed and reported. *)
val set_delegate : t -> (t -> loop_entry -> loop_commit option) option -> unit

(** Raw word read/write: no tick, no access counting, bounds-checked.
    Shard workers snapshot final written values and undo their writes with
    these; the parent applies a committed write set through
    {!loop_commit.lc_writes} instead. *)
val read_word : t -> int -> Rvalue.rv

val write_word : t -> int -> Rvalue.rv -> unit

(** Program-output splicing for shard isolation: record {!output_length}
    before a range, ship {!output_since} that position, then
    {!truncate_output} back so a worker never leaks shard output into a
    later task. *)
val output_length : t -> int

val output_since : t -> int -> string

val truncate_output : t -> int -> unit

(** Evaluate an instruction operand against an explicit register/argument
    frame (resolves globals through the machine's memory layout). *)
val eval_operand :
  t -> regs:Rvalue.rv array -> args:Rvalue.rv array -> Ir.Types.value -> Rvalue.rv

(** Scalar semantics, exposed for tests and the constant folder (optimized
    code can never disagree with execution).
    @raise Rvalue.Trap ([Div_by_zero]) on division/remainder by zero *)
val exec_ibinop : Ir.Instr.ibinop -> int64 -> int64 -> int64

val exec_fbinop : Ir.Instr.fbinop -> float -> float -> float

val exec_icmp : Ir.Instr.icmp -> Rvalue.rv -> Rvalue.rv -> bool

val exec_fcmp : Ir.Instr.fcmp -> float -> float -> bool

(** Run [main] (which must exist). Budget exhaustion (fuel, call depth,
    heap, wall clock) is reported through [outcome.stop], never raised.
    @raise Rvalue.Trap on program faults (division by zero, out-of-bounds)
    @raise Rvalue.Runtime_error on interpreter-invariant breakage *)
val run_main : ?args:Rvalue.rv list -> t -> outcome

(** Result of {!run_loop_range}: how many loop bodies completed, and the
    exit edge if the loop left its region on its own. *)
type range_result = {
  rr_iters : int;  (** completed loop bodies *)
  rr_exit : (int * int) option;
      (** [Some (pred, target)] when the loop exited; [None] when
          [max_iters] bodies completed and the range was cut *)
}

(** Execute up to [max_iters] bodies of the loop headed at [header]
    against an explicit frame, starting as if arriving from [pred] with
    the first arrival's header phis overridden by [seed] (phi id ->
    value). Stops {e before} the arrival that would begin body
    [max_iters + 1]: that arrival's phi evaluations belong to the next
    shard, whose seed reproduces them. Loop events fire as usual; traps
    and budget stops unwind with the loop bookkeeping rebalanced.
    @raise Rvalue.Trap on program faults
    @raise Rvalue.Budget_stop on budget exhaustion
    @raise Rvalue.Runtime_error if [header] is not a loop header or the
    range returns out of the function *)
val run_loop_range :
  t ->
  fname:string ->
  regs:Rvalue.rv array ->
  args:Rvalue.rv array ->
  header:int ->
  pred:int ->
  seed:(int * Rvalue.rv) list ->
  max_iters:int ->
  range_result
