(** The IR interpreter — the limit study's run-time component. Executes a
    verified module deterministically, advancing a clock by one per executed
    IR instruction (the paper's dynamic-IR-instruction-count time metric)
    and reporting instrumentation events through {!Events.hooks}. *)

type t

(** Test-only fault injection: at the first executed instruction whose clock
    reaches the stamp, the fault fires (a classified {!Rvalue.Trap} or a
    graceful {!Rvalue.Budget_stop}). Lets the campaign runner and the fuzz
    suite prove that every error path yields a classified, well-formed
    result instead of a crash. *)
type fault =
  | Inject_div_by_zero
  | Inject_oob
  | Inject_fuel_out
  | Inject_depth_out

type fault_plan = (int * fault) list

(** Why execution stopped. On [Truncated], the machine closed every open
    loop invocation and call frame before returning, so listeners saw a
    well-formed event stream over the executed prefix. *)
type stop_reason = Completed | Truncated of Rvalue.budget_kind

val stop_reason_to_string : stop_reason -> string

type outcome = {
  ret : Rvalue.rv option;  (** main's return value; [None] when truncated *)
  stop : stop_reason;  (** completed, or which budget truncated the run *)
  clock : int;  (** total dynamic IR instructions *)
  output : string;  (** everything the print builtins emitted *)
  mem_words : int;  (** heap high-water mark *)
  mem_accesses : int;  (** word accesses executed *)
  mem_events : int;
      (** word accesses reported to hooks — lower than [mem_accesses] when
          watch plans pruned statically proven RAW-free loops *)
}

(** [watch] supplies per-function watch plans (which instructions report
    defs/uses/phi values); [fuel] bounds the instruction count; [mem_limit]
    bounds memory (words); [max_depth] bounds the call stack; [deadline] is
    an absolute {e wall-clock} stamp ([Unix.gettimeofday], polled every 64k
    instructions) — real elapsed time, not processor time, so a deadline
    computed by the caller holds even if the process is descheduled;
    [faults] is a test-only injection plan. Exhausting any of these budgets
    stops the run cleanly ({!stop_reason}) rather than raising. *)
val create :
  ?hooks:Events.hooks ->
  ?fuel:int ->
  ?mem_limit:int ->
  ?max_depth:int ->
  ?deadline:float ->
  ?faults:fault_plan ->
  ?watch:(string -> Events.watch_plan option) ->
  Ir.Func.modul ->
  t

(** The loop forest the machine computed for a function (lids match what the
    loop events report). *)
val loopinfo : t -> string -> Cfg.Loopinfo.t

(** Dynamic IR instructions executed so far. Deterministic across re-runs,
    and readable after {!run_main} raised a trap — when no {!outcome} record
    exists — so failure fingerprints can carry the trap's clock. *)
val clock : t -> int

(** {!clock} under its counter name: dynamic IR instructions executed so
    far. Like [clock], readable on every exit path — including after a
    trap — which is what lets the driver publish run counters even for
    failed runs. *)
val instructions_retired : t -> int

(** Word accesses executed so far. *)
val mem_accesses : t -> int

(** Word accesses reported through hooks so far — lower than
    {!mem_accesses} when watch plans pruned statically proven RAW-free
    loops. *)
val mem_events : t -> int

(** Accesses the watch plans pruned: [mem_accesses - mem_events]. *)
val mem_events_pruned : t -> int

(** Scalar semantics, exposed for tests and the constant folder (optimized
    code can never disagree with execution).
    @raise Rvalue.Trap ([Div_by_zero]) on division/remainder by zero *)
val exec_ibinop : Ir.Instr.ibinop -> int64 -> int64 -> int64

val exec_fbinop : Ir.Instr.fbinop -> float -> float -> float

val exec_icmp : Ir.Instr.icmp -> Rvalue.rv -> Rvalue.rv -> bool

val exec_fcmp : Ir.Instr.fcmp -> float -> float -> bool

(** Run [main] (which must exist). Budget exhaustion (fuel, call depth,
    heap, wall clock) is reported through [outcome.stop], never raised.
    @raise Rvalue.Trap on program faults (division by zero, out-of-bounds)
    @raise Rvalue.Runtime_error on interpreter-invariant breakage *)
val run_main : ?args:Rvalue.rv list -> t -> outcome
