(** The IR interpreter — the limit study's run-time component. Executes a
    verified module deterministically, advancing a clock by one per executed
    IR instruction (the paper's dynamic-IR-instruction-count time metric)
    and reporting instrumentation events through {!Events.hooks}. *)

type t

type outcome = {
  ret : Rvalue.rv option;  (** main's return value *)
  clock : int;  (** total dynamic IR instructions *)
  output : string;  (** everything the print builtins emitted *)
  mem_words : int;  (** heap high-water mark *)
  mem_accesses : int;  (** word accesses executed *)
  mem_events : int;
      (** word accesses reported to hooks — lower than [mem_accesses] when
          watch plans pruned statically proven RAW-free loops *)
}

(** [watch] supplies per-function watch plans (which instructions report
    defs/uses/phi values); [fuel] bounds the instruction count; [mem_limit]
    bounds memory (words); [max_depth] bounds the call stack. *)
val create :
  ?hooks:Events.hooks ->
  ?fuel:int ->
  ?mem_limit:int ->
  ?max_depth:int ->
  ?watch:(string -> Events.watch_plan option) ->
  Ir.Func.modul ->
  t

(** The loop forest the machine computed for a function (lids match what the
    loop events report). *)
val loopinfo : t -> string -> Cfg.Loopinfo.t

(** Scalar semantics, exposed for tests and the constant folder (optimized
    code can never disagree with execution).
    @raise Rvalue.Runtime_error on division/remainder by zero *)
val exec_ibinop : Ir.Instr.ibinop -> int64 -> int64 -> int64

val exec_fbinop : Ir.Instr.fbinop -> float -> float -> float

val exec_icmp : Ir.Instr.icmp -> Rvalue.rv -> Rvalue.rv -> bool

val exec_fcmp : Ir.Instr.fcmp -> float -> float -> bool

(** Run [main] (which must exist).
    @raise Rvalue.Runtime_error on any execution error *)
val run_main : ?args:Rvalue.rv list -> t -> outcome
