(* Instrumentation hooks — the run-time callback surface the paper's
   compile-time component inserts into the program (§III-A). The machine
   invokes these during execution; Loopa.Profile implements them. All hooks
   receive the dynamic IR instruction count ("clock") as the time-stamp.

   Loop ids are the Cfg.Loopinfo lids of the *current* function; the
   listener tracks which function is current via call_enter/call_exit. *)

type hooks = {
  on_call_enter : fname:string -> clock:int -> unit;
  on_call_exit : fname:string -> clock:int -> unit;
  on_loop_enter : lid:int -> clock:int -> unit;
  (* arrival at the header via the latch: a new iteration begins *)
  on_loop_iter : lid:int -> clock:int -> unit;
  on_loop_exit : lid:int -> clock:int -> unit;
  on_mem_access : addr:int -> is_write:bool -> clock:int -> unit;
  (* execution of an instruction the listener registered interest in
     (producers of register LCD values) *)
  on_watched_def : instr_id:int -> clock:int -> unit;
  (* use of a watched header phi's value by any instruction *)
  on_watched_use : phi_id:int -> clock:int -> unit;
  (* value flowing into a watched header phi at each header arrival; for the
     entry edge this is the initial value, for latch edges the value the
     previous iteration produced *)
  on_header_phi : phi_id:int -> value:Rvalue.rv -> clock:int -> unit;
  (* a builtin ("library") call; user calls report via on_call_enter *)
  on_builtin_call : name:string -> clock:int -> unit;
}

let no_hooks : hooks =
  {
    on_call_enter = (fun ~fname:_ ~clock:_ -> ());
    on_call_exit = (fun ~fname:_ ~clock:_ -> ());
    on_loop_enter = (fun ~lid:_ ~clock:_ -> ());
    on_loop_iter = (fun ~lid:_ ~clock:_ -> ());
    on_loop_exit = (fun ~lid:_ ~clock:_ -> ());
    on_mem_access = (fun ~addr:_ ~is_write:_ ~clock:_ -> ());
    on_watched_def = (fun ~instr_id:_ ~clock:_ -> ());
    on_watched_use = (fun ~phi_id:_ ~clock:_ -> ());
    on_header_phi = (fun ~phi_id:_ ~value:_ ~clock:_ -> ());
    on_builtin_call = (fun ~name:_ ~clock:_ -> ());
  }

(* Which instructions of each function the listener wants reported.
   [defs] marks producers (on_watched_def); [phi_uses] maps instruction id ->
   list of watched phi ids it uses (on_watched_use); [phis] marks watched
   header phis (on_header_phi). [mem_lids], indexed by Cfg.Loopinfo lid,
   says whether a loop still needs the memory-event stream: the machine only
   emits on_mem_access while at least one active loop (anywhere on the call
   stack) wants it. Loops statically proven free of cross-iteration RAW are
   dropped here — the watch-plan pruning of the static dependence tester. *)
type watch_plan = {
  defs : bool array;
  phis : bool array;
  phi_uses : int list array;
  mem_lids : bool array;
}

let empty_watch_plan (fn : Ir.Func.t) : watch_plan =
  let n = max 1 (Ir.Func.num_instrs fn) in
  {
    defs = Array.make n false;
    phis = Array.make n false;
    phi_uses = Array.make n [];
    mem_lids = Array.make (max 1 (Ir.Func.num_blocks fn)) true;
  }
