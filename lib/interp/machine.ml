(* The IR interpreter — the "run-time component" of the limit study. Executes
   a verified module deterministically, advancing a clock by one per executed
   IR instruction (the paper's dynamic IR instruction count metric, §III-B),
   and reporting instrumentation events through Events.hooks.

   Deviation from the paper noted in DESIGN.md: the paper accumulates
   hard-coded per-basic-block counts; we tick per instruction, which yields
   the same totals with finer-grained intra-iteration time-stamps. *)

open Rvalue

type func_plan = {
  fn : Ir.Func.t;
  li : Cfg.Loopinfo.t;
  watch : Events.watch_plan;
  (* per block: phi instruction ids and remaining instruction ids *)
  phis_of : int array array;
  rest_of : int array array;
}

(* Test-only fault injection: at the first tick whose clock reaches the
   given stamp, the corresponding trap or budget stop fires. Used to prove
   that every error path yields a classified, well-formed result. *)
type fault =
  | Inject_div_by_zero
  | Inject_oob
  | Inject_fuel_out
  | Inject_depth_out

type fault_plan = (int * fault) list

(* A fresh arrival at a loop header from outside the loop, offered to the
   delegate (the guarded parallel runner) before the machine executes the
   loop itself. The register and argument arrays are the live frame state:
   a delegate that declines must leave them untouched. *)
type loop_entry = {
  le_fname : string;
  le_lid : int;
  le_header : int;
  le_pred : int;
  le_regs : Rvalue.rv array;
  le_args : Rvalue.rv array;
}

(* The whole-loop effect a delegate commits in place of serial execution:
   exactly the clock ticks, register updates, memory writes, access counts
   and program output the serial loop would have produced, plus the exit
   edge to resume from. Byte-equivalence with serial execution is the
   delegate's contract, not the machine's. *)
type loop_commit = {
  lc_exit_pred : int;
  lc_exit_target : int;
  lc_clock : int;
  lc_accesses : int;
  lc_regs : (int * Rvalue.rv) list;
  lc_writes : (int * Rvalue.rv) list;
  lc_output : string;
}

type t = {
  modul : Ir.Func.modul;
  plans : (string, func_plan) Hashtbl.t;
  mem : memory;
  mutable hooks : Events.hooks;
  (* Consulted on every fresh loop entry; [None] (the default) means every
     loop executes serially. Only meaningful with unpruned watch plans:
     a commit counts every shard access as both executed and reported. *)
  mutable delegate : (t -> loop_entry -> loop_commit option) option;
  mutable clock : int;
  fuel : int;
  deadline : float option; (* Unix.gettimeofday stamp for the wall budget *)
  mutable faults : fault_plan; (* sorted by clock, consumed head-first *)
  out : Buffer.t;
  mutable rand_state : int64;
  mutable depth : int;
  max_depth : int;
  (* active loop invocations across the whole call stack, and how many of
     them still want the memory-event stream; on_mem_access is suppressed
     only while every active loop's plan pruned it *)
  mutable active_loops : int;
  mutable mem_watchers : int;
  mutable mem_accesses : int; (* word accesses executed *)
  mutable mem_events : int; (* word accesses reported through hooks *)
  (* Self-profiling state, off by default. [opcounts] is the shared empty
     array until {!enable_opcode_counts}: the hot-path guard is one array
     length read. The sampler is a countdown in {!tick}: 0 means disabled
     (one compare per instruction); armed, it fires [on_sample] every
     [sample_period] retired instructions — a pure function of the clock,
     so sample placement is deterministic across runs. *)
  mutable opcounts : int array;
  mutable sample_period : int;
  mutable sample_countdown : int;
  mutable on_sample : int -> unit; (* receives the clock at the sample *)
}

(* Why execution stopped. [Truncated] runs closed every open loop
   invocation and call frame before returning, so the event stream a
   listener saw is well-formed over the executed prefix. *)
type stop_reason = Completed | Truncated of Rvalue.budget_kind

let stop_reason_to_string = function
  | Completed -> "completed"
  | Truncated k -> Printf.sprintf "truncated (%s)" (Rvalue.budget_kind_to_string k)

type outcome = {
  ret : rv option;
  stop : stop_reason;
  clock : int;
  output : string;
  mem_words : int;
  mem_accesses : int;
  mem_events : int;
}

let make_plan ?watch (fn : Ir.Func.t) : func_plan =
  let cfg = Cfg.Graph.build fn in
  let dom = Cfg.Dom.compute cfg in
  let li = Cfg.Loopinfo.compute cfg dom in
  let nb = Ir.Func.num_blocks fn in
  let phis_of = Array.make nb [||] and rest_of = Array.make nb [||] in
  for b = 0 to nb - 1 do
    let is_phi id =
      match Ir.Func.kind fn id with Ir.Instr.Phi _ -> true | _ -> false
    in
    let ids = (Ir.Func.block fn b).Ir.Func.instr_ids in
    phis_of.(b) <- Array.of_list (List.filter is_phi ids);
    rest_of.(b) <- Array.of_list (List.filter (fun i -> not (is_phi i)) ids)
  done;
  let watch =
    match watch with Some w -> w | None -> Events.empty_watch_plan fn
  in
  { fn; li; watch; phis_of; rest_of }

let create ?(hooks = Events.no_hooks) ?(fuel = 2_000_000_000)
    ?(mem_limit = 1 lsl 26) ?(max_depth = 10_000) ?deadline
    ?(faults : fault_plan = [])
    ?(watch : (string -> Events.watch_plan option) option)
    (modul : Ir.Func.modul) : t =
  let plans = Hashtbl.create 16 in
  List.iter
    (fun fn ->
      let w =
        match watch with Some f -> f fn.Ir.Func.fname | None -> None
      in
      Hashtbl.replace plans fn.Ir.Func.fname (make_plan ?watch:w fn))
    modul.Ir.Func.funcs;
  {
    modul;
    plans;
    mem = Rvalue.create ~limit:mem_limit modul.Ir.Func.globals;
    hooks;
    delegate = None;
    clock = 0;
    fuel;
    deadline;
    faults = List.sort (fun (a, _) (b, _) -> compare a b) faults;
    out = Buffer.create 256;
    rand_state = 88172645463325252L;
    depth = 0;
    max_depth;
    active_loops = 0;
    mem_watchers = 0;
    mem_accesses = 0;
    mem_events = 0;
    opcounts = [||];
    sample_period = 0;
    sample_countdown = 0;
    on_sample = ignore;
  }

(* Two synthetic opcode slots past the IR constructors: the per-element
   ticks of the arrcopy/arrfill builtins, and clock lumps applied by a
   delegate's loop commit — so the opcode counters partition the clock
   exactly (their sum always equals {!instructions_retired}). *)
let opc_builtin = Ir.Instr.n_opcodes

let opc_committed = Ir.Instr.n_opcodes + 1

let enable_opcode_counts (t : t) =
  if Array.length t.opcounts = 0 then
    t.opcounts <- Array.make (Ir.Instr.n_opcodes + 2) 0

let opcode_counts (t : t) : (string * int) list =
  if Array.length t.opcounts = 0 then []
  else
    List.filter
      (fun (_, v) -> v > 0)
      (List.init (Array.length t.opcounts) (fun i ->
           ( (if i = opc_builtin then "builtin_mem"
              else if i = opc_committed then "committed"
              else Ir.Instr.opcode_name i),
             t.opcounts.(i) )))

let set_sampler (t : t) ~period f =
  if period <= 0 then invalid_arg "Machine.set_sampler: period must be positive";
  t.sample_period <- period;
  t.sample_countdown <- period;
  t.on_sample <- f

let clear_sampler (t : t) =
  t.sample_period <- 0;
  t.sample_countdown <- 0;
  t.on_sample <- ignore

let clock (t : t) = t.clock

(* Run counters, readable on every exit path (the outcome record only
   exists when the run ends cleanly). The clock advances one per executed
   instruction, so it doubles as the instructions-retired tally. *)
let instructions_retired (t : t) = t.clock

let mem_accesses (t : t) = t.mem_accesses

let mem_events (t : t) = t.mem_events

let mem_events_pruned (t : t) = t.mem_accesses - t.mem_events

let fuel (t : t) = t.fuel

let set_hooks (t : t) hooks = t.hooks <- hooks

let set_delegate (t : t) d = t.delegate <- d

(* Raw word access, no tick and no access counting: the guarded runner's
   shard workers use these to snapshot final written values and to undo a
   shard's writes before reporting, and the parent uses them to apply a
   committed write set. Bounds-checked like any program access. *)
let read_word (t : t) addr = Rvalue.load t.mem addr

let write_word (t : t) addr v = Rvalue.store t.mem addr v

(* Program-output splicing for shard isolation: a worker records the length
   before running its iteration range, ships the delta, and truncates back
   so its buffer never leaks shard output into a later task. *)
let output_length (t : t) = Buffer.length t.out

let output_since (t : t) pos = Buffer.sub t.out pos (Buffer.length t.out - pos)

let truncate_output (t : t) pos = Buffer.truncate t.out pos

(* Evaluate an instruction operand against an explicit frame (the guarded
   runner resolves loop-entry values and symbolic trip bounds this way). *)
let eval_operand (t : t) ~(regs : rv array) ~(args : rv array)
    (v : Ir.Types.value) : rv =
  match v with
  | Ir.Types.Const (Ir.Types.Cint i) -> Vint i
  | Ir.Types.Const (Ir.Types.Cfloat f) -> Vfloat f
  | Ir.Types.Const (Ir.Types.Cbool b) -> Vbool b
  | Ir.Types.Reg id -> regs.(id)
  | Ir.Types.Param i -> args.(i)
  | Ir.Types.Global g -> Vint (Int64.of_int (Rvalue.global_addr t.mem g))

let plan t fname =
  match Hashtbl.find_opt t.plans fname with
  | Some p -> p
  | None -> error "call to undefined function @%s" fname

let loopinfo t fname = (plan t fname).li

let apply_fault = function
  | Inject_div_by_zero -> trap Div_by_zero "injected division by zero"
  | Inject_oob -> trap Out_of_bounds "injected out-of-bounds access"
  | Inject_fuel_out -> raise (Budget_stop Fuel)
  | Inject_depth_out -> raise (Budget_stop Call_depth)

let tick (t : t) =
  (* faults fire before the instruction is counted, so a stamp-0 fault
     yields a clock-0 outcome: a prefix with no information at all *)
  (match t.faults with
  | (at, f) :: rest when t.clock >= at ->
      t.faults <- rest;
      apply_fault f
  | _ -> ());
  t.clock <- t.clock + 1;
  if t.clock > t.fuel then raise (Budget_stop Fuel);
  if t.sample_countdown > 0 then begin
    t.sample_countdown <- t.sample_countdown - 1;
    if t.sample_countdown = 0 then begin
      t.sample_countdown <- t.sample_period;
      t.on_sample t.clock
    end
  end;
  (* The wall budget is real wall-clock time (a stalled or descheduled
     run must still hit it), polled coarsely: a gettimeofday syscall per
     instruction would dominate the interpreter loop. *)
  if t.clock land 0xffff = 0 then
    match t.deadline with
    | Some d when Unix.gettimeofday () > d -> raise (Budget_stop Wall)
    | _ -> ()

(* Report a word access to the listener, unless every active loop's plan
   pruned the memory stream (statically proven RAW-free). *)
let mem_access (t : t) ~addr ~is_write =
  t.mem_accesses <- t.mem_accesses + 1;
  if t.mem_watchers > 0 || t.active_loops = 0 then begin
    t.mem_events <- t.mem_events + 1;
    t.hooks.Events.on_mem_access ~addr ~is_write ~clock:t.clock
  end

(* ---- scalar operations ---- *)

let exec_ibinop op a b =
  let open Ir.Instr in
  match op with
  | Add -> Int64.add a b
  | Sub -> Int64.sub a b
  | Mul -> Int64.mul a b
  | Sdiv ->
      if b = 0L then trap Div_by_zero "division by zero"
      else if b = -1L then Int64.neg a
      else Int64.div a b
  | Srem ->
      if b = 0L then trap Div_by_zero "remainder by zero"
      else if b = -1L then 0L
      else Int64.rem a b
  | And -> Int64.logand a b
  | Or -> Int64.logor a b
  | Xor -> Int64.logxor a b
  | Shl -> Int64.shift_left a (Int64.to_int b land 63)
  | Ashr -> Int64.shift_right a (Int64.to_int b land 63)
  | Lshr -> Int64.shift_right_logical a (Int64.to_int b land 63)

let exec_fbinop op a b =
  let open Ir.Instr in
  match op with Fadd -> a +. b | Fsub -> a -. b | Fmul -> a *. b | Fdiv -> a /. b

let exec_icmp op (a : rv) (b : rv) =
  let open Ir.Instr in
  match (a, b) with
  | Vint x, Vint y -> (
      match op with
      | Ieq -> x = y
      | Ine -> x <> y
      | Islt -> x < y
      | Isle -> x <= y
      | Isgt -> x > y
      | Isge -> x >= y)
  | Vbool x, Vbool y -> (
      match op with
      | Ieq -> x = y
      | Ine -> x <> y
      | Islt -> (not x) && y
      | Isle -> (not x) || y
      | Isgt -> x && not y
      | Isge -> x || not y)
  | _ -> error "icmp on mixed types (%s, %s)" (rv_to_string a) (rv_to_string b)

let exec_fcmp op a b =
  let open Ir.Instr in
  match op with
  | Feq -> a = b
  | Fne -> a <> b
  | Flt -> a < b
  | Fle -> a <= b
  | Fgt -> a > b
  | Fge -> a >= b

(* ---- builtins ---- *)

let lcg_next s = Int64.add (Int64.mul s 6364136223846793005L) 1442695040888963407L

let exec_builtin t name (args : rv list) : rv option =
  t.hooks.Events.on_builtin_call ~name ~clock:t.clock;
  (* Enforce the declared memory effect: the dependence analysis trusts
     [Ir.Builtins.mem], so a builtin that touches tracked memory without
     declaring it would silently break doall proofs. *)
  let accesses_before = t.mem_accesses in
  let check_mem_spec (result : rv option) =
    (match Ir.Builtins.find name with
    | Some { Ir.Builtins.mem = Ir.Builtins.No_mem; _ }
      when t.mem_accesses > accesses_before ->
        error "builtin %s declared no-mem but performed %d memory accesses"
          name (t.mem_accesses - accesses_before)
    | _ -> ());
    result
  in
  check_mem_spec
  @@
  match (name, args) with
  | "print_int", [ v ] ->
      Buffer.add_string t.out (Int64.to_string (as_int v));
      Buffer.add_char t.out '\n';
      None
  | "print_float", [ v ] ->
      Buffer.add_string t.out (Printf.sprintf "%.6g" (as_float v));
      Buffer.add_char t.out '\n';
      None
  | "print_char", [ v ] ->
      Buffer.add_char t.out (Char.chr (Int64.to_int (as_int v) land 0xff));
      None
  | "rand", [] ->
      t.rand_state <- lcg_next t.rand_state;
      Some (Vint (Int64.logand (Int64.shift_right_logical t.rand_state 17) 0x3fffffffL))
  | "srand", [ v ] ->
      t.rand_state <- Int64.logxor (as_int v) 88172645463325252L;
      None
  | "sqrt", [ v ] -> Some (Vfloat (sqrt (as_float v)))
  | "sin", [ v ] -> Some (Vfloat (sin (as_float v)))
  | "cos", [ v ] -> Some (Vfloat (cos (as_float v)))
  | "exp", [ v ] -> Some (Vfloat (exp (as_float v)))
  | "log", [ v ] -> Some (Vfloat (log (as_float v)))
  | "pow", [ x; y ] -> Some (Vfloat (Float.pow (as_float x) (as_float y)))
  | "arrcopy", [ dst; src; n ] ->
      let dst = Int64.to_int (as_int dst)
      and src = Int64.to_int (as_int src)
      and n = Int64.to_int (as_int n) in
      for i = 0 to n - 1 do
        tick t;
        if Array.length t.opcounts <> 0 then
          t.opcounts.(opc_builtin) <- t.opcounts.(opc_builtin) + 1;
        mem_access t ~addr:(src + i) ~is_write:false;
        mem_access t ~addr:(dst + i) ~is_write:true;
        Rvalue.store t.mem (dst + i) (Rvalue.load t.mem (src + i))
      done;
      Some (Vint (Int64.of_int n))
  | "arrfill", [ dst; v; n ] ->
      let dst = Int64.to_int (as_int dst) and n = Int64.to_int (as_int n) in
      for i = 0 to n - 1 do
        tick t;
        if Array.length t.opcounts <> 0 then
          t.opcounts.(opc_builtin) <- t.opcounts.(opc_builtin) + 1;
        mem_access t ~addr:(dst + i) ~is_write:true;
        Rvalue.store t.mem (dst + i) v
      done;
      Some (Vint (Int64.of_int n))
  | _ -> error "bad builtin call %s/%d" name (List.length args)

(* ---- execution ---- *)

(* One live activation. The block engine below executes against a frame so
   whole-function execution ([exec_func]) and the guarded runner's
   iteration-range entry point ([run_loop_range]) share one interpreter. *)
type frame = {
  p : func_plan;
  fname : string;
  regs : rv array;
  args : rv array;
}

(* How a block's straight-line body ended. *)
type block_exit = Jumped of int | Returned of rv option

(* Each loop-stack entry is (lid, wants_mem): whether this loop's plan kept
   the memory-event stream. [t.mem_watchers] counts the active wanters
   machine-wide, so pruned inner loops still report to a tracked outer
   loop of any enclosing invocation. *)
let exit_loop t (lid, wants_mem) =
  t.active_loops <- t.active_loops - 1;
  if wants_mem then t.mem_watchers <- t.mem_watchers - 1;
  t.hooks.Events.on_loop_exit ~lid ~clock:t.clock

let pop_all_loops t loop_stack =
  List.iter (exit_loop t) !loop_stack;
  loop_stack := []

(* Loop enter/iter/exit events for a CFG edge. *)
let handle_edge t (p : func_plan) loop_stack ~from_ ~to_ =
  if from_ >= 0 then begin
    let rec pop () =
      match !loop_stack with
      | ((lid, _) as top) :: rest when not (Cfg.Loopinfo.contains p.li lid to_) ->
          exit_loop t top;
          loop_stack := rest;
          pop ()
      | _ -> ()
    in
    pop ()
  end;
  match Cfg.Loopinfo.loop_of_header p.li to_ with
  | Some lid -> (
      match !loop_stack with
      | (top, _) :: _ when top = lid -> t.hooks.Events.on_loop_iter ~lid ~clock:t.clock
      | _ ->
          let wants_mem =
            lid >= Array.length p.watch.Events.mem_lids
            || p.watch.Events.mem_lids.(lid)
          in
          t.active_loops <- t.active_loops + 1;
          if wants_mem then t.mem_watchers <- t.mem_watchers + 1;
          loop_stack := (lid, wants_mem) :: !loop_stack;
          t.hooks.Events.on_loop_enter ~lid ~clock:t.clock)
  | None -> ()

(* Phis evaluate in parallel with respect to the incoming edge. [seed]
   overrides chosen values by phi id — the guarded runner starts a shard
   mid-iteration-space by seeding the header phis of its first arrival. *)
let exec_phis t (fr : frame) ~pred ~seed b =
  let p = fr.p in
  let phis = p.phis_of.(b) in
  if Array.length phis > 0 then begin
    let staged =
      Array.map
        (fun id ->
          tick t;
          if Array.length t.opcounts <> 0 then begin
            let opc = Ir.Instr.opcode (Ir.Func.kind p.fn id) in
            t.opcounts.(opc) <- t.opcounts.(opc) + 1
          end;
          if p.watch.Events.defs.(id) then
            t.hooks.Events.on_watched_def ~instr_id:id ~clock:t.clock;
          (match p.watch.Events.phi_uses.(id) with
          | [] -> ()
          | used ->
              List.iter
                (fun phi_id -> t.hooks.Events.on_watched_use ~phi_id ~clock:t.clock)
                used);
          match Ir.Func.kind p.fn id with
          | Ir.Instr.Phi incoming ->
              let v =
                match List.assoc_opt id seed with
                | Some v -> v
                | None -> (
                    let chosen = ref None in
                    Array.iter
                      (fun (pr, v) -> if pr = pred then chosen := Some v)
                      incoming;
                    match !chosen with
                    | Some v -> eval_operand t ~regs:fr.regs ~args:fr.args v
                    | None ->
                        error "phi %%%d in @%s has no entry for predecessor bb%d"
                          id fr.fname pred)
              in
              if p.watch.Events.phis.(id) then
                t.hooks.Events.on_header_phi ~phi_id:id ~value:v ~clock:t.clock;
              (id, v)
          | _ -> assert false)
        phis
    in
    Array.iter (fun (id, v) -> fr.regs.(id) <- v) staged
  end

(* Straight-line body and terminator of one block. *)
let rec exec_rest t (fr : frame) b : block_exit =
  let p = fr.p in
  let regs = fr.regs in
  let eval v = eval_operand t ~regs ~args:fr.args v in
  let insns = p.rest_of.(b) in
  let n = Array.length insns in
  let i = ref 0 in
  let exit_ = ref None in
  while !exit_ = None do
    if !i >= n then error "block bb%d in @%s fell through" b fr.fname;
    let id = insns.(!i) in
    incr i;
    tick t;
    if Array.length t.opcounts <> 0 then begin
      let opc = Ir.Instr.opcode (Ir.Func.kind p.fn id) in
      t.opcounts.(opc) <- t.opcounts.(opc) + 1
    end;
    if p.watch.Events.defs.(id) then
      t.hooks.Events.on_watched_def ~instr_id:id ~clock:t.clock;
    (match p.watch.Events.phi_uses.(id) with
    | [] -> ()
    | phis ->
        List.iter
          (fun phi_id -> t.hooks.Events.on_watched_use ~phi_id ~clock:t.clock)
          phis);
    match Ir.Func.kind p.fn id with
    | Ir.Instr.Ibinop (op, a, bb) ->
        regs.(id) <- Vint (exec_ibinop op (as_int (eval a)) (as_int (eval bb)))
    | Ir.Instr.Fbinop (op, a, bb) ->
        regs.(id) <- Vfloat (exec_fbinop op (as_float (eval a)) (as_float (eval bb)))
    | Ir.Instr.Icmp (op, a, bb) -> regs.(id) <- Vbool (exec_icmp op (eval a) (eval bb))
    | Ir.Instr.Fcmp (op, a, bb) ->
        regs.(id) <- Vbool (exec_fcmp op (as_float (eval a)) (as_float (eval bb)))
    | Ir.Instr.Select (c, x, y) ->
        regs.(id) <- (if as_bool (eval c) then eval x else eval y)
    | Ir.Instr.Si_to_fp x -> regs.(id) <- Vfloat (Int64.to_float (as_int (eval x)))
    | Ir.Instr.Fp_to_si x -> regs.(id) <- Vint (Int64.of_float (as_float (eval x)))
    | Ir.Instr.Load a ->
        let addr = Int64.to_int (as_int (eval a)) in
        mem_access t ~addr ~is_write:false;
        regs.(id) <- Rvalue.load t.mem addr
    | Ir.Instr.Store (a, v) ->
        let addr = Int64.to_int (as_int (eval a)) in
        let v = eval v in
        mem_access t ~addr ~is_write:true;
        Rvalue.store t.mem addr v
    | Ir.Instr.Alloc n ->
        let size = Int64.to_int (as_int (eval n)) in
        regs.(id) <- Vint (Int64.of_int (Rvalue.alloc t.mem size))
    | Ir.Instr.Call (callee, cargs) -> (
        let vals = Array.of_list (List.map eval cargs) in
        let res =
          if Ir.Builtins.is_builtin callee then
            exec_builtin t callee (Array.to_list vals)
          else exec_func t callee vals
        in
        match ((Ir.Func.instr p.fn id).Ir.Instr.ty, res) with
        | Some _, Some v -> regs.(id) <- v
        | Some _, None -> error "void result from @%s used as a value" callee
        | None, _ -> ())
    | Ir.Instr.Br l -> exit_ := Some (Jumped l)
    | Ir.Instr.Cond_br (c, l1, l2) ->
        exit_ := Some (Jumped (if as_bool (eval c) then l1 else l2))
    | Ir.Instr.Ret v -> exit_ := Some (Returned (Option.map eval v))
    | Ir.Instr.Phi _ -> error "phi %%%d after non-phi instructions in @%s" id fr.fname
    | Ir.Instr.Unreachable -> error "reached 'unreachable' in @%s" fr.fname
  done;
  Option.get !exit_

and exec_func t fname (args : rv array) : rv option =
  let p = plan t fname in
  (* Checked before the frame opens: no enter event has fired yet, so the
     unwinding caller frames are the only ones that need closing. *)
  if t.depth >= t.max_depth then raise (Budget_stop Call_depth);
  t.depth <- t.depth + 1;
  t.hooks.Events.on_call_enter ~fname ~clock:t.clock;
  let regs = Array.make (max 1 (Ir.Func.num_instrs p.fn)) (Vint 0L) in
  let fr = { p; fname; regs; args } in
  let loop_stack = ref [] in
  let result = ref None in
  let finished = ref false in
  let cur = ref p.fn.Ir.Func.entry in
  let from_ = ref (-1) in
  (try
  while not !finished do
    let b = !cur in
    (* A fresh arrival at a loop header from outside the loop is first
       offered to the delegate; a commit replaces the whole invocation
       (ticks, registers, memory, output) and resumes at the exit edge,
       so no loop events fire for it. A decline falls through to the
       ordinary serial path with the frame untouched. *)
    let committed =
      match t.delegate with
      | Some d when !from_ >= 0 -> (
          match Cfg.Loopinfo.loop_of_header p.li b with
          | Some lid when not (Cfg.Loopinfo.contains p.li lid !from_) -> (
              match
                d t
                  {
                    le_fname = fname;
                    le_lid = lid;
                    le_header = b;
                    le_pred = !from_;
                    le_regs = regs;
                    le_args = args;
                  }
              with
              | Some c ->
                  apply_commit t c regs;
                  from_ := c.lc_exit_pred;
                  cur := c.lc_exit_target;
                  true
              | None -> false)
          | _ -> false)
      | _ -> false
    in
    if not committed then begin
      handle_edge t p loop_stack ~from_:!from_ ~to_:b;
      exec_phis t fr ~pred:!from_ ~seed:[] b;
      match exec_rest t fr b with
      | Jumped l ->
          from_ := b;
          cur := l
      | Returned v ->
          result := v;
          pop_all_loops t loop_stack;
          finished := true
    end
  done
  with Budget_stop _ as stop ->
    (* A budget ran out mid-frame (here or in a callee): close this frame's
       open loop invocations and its enter/exit pair so every listener sees
       a well-formed stream over the executed prefix, then keep unwinding. *)
    pop_all_loops t loop_stack;
    t.hooks.Events.on_call_exit ~fname ~clock:t.clock;
    t.depth <- t.depth - 1;
    raise stop);
  t.hooks.Events.on_call_exit ~fname ~clock:t.clock;
  t.depth <- t.depth - 1;
  !result

(* Apply a delegate's whole-loop commit to the live frame. The runner
   pre-checks remaining fuel, so the guard here only defends the budget
   invariant (a commit must never push the clock past the fuel). *)
and apply_commit t (c : loop_commit) (regs : rv array) =
  if c.lc_clock > t.fuel - t.clock then raise (Budget_stop Fuel);
  t.clock <- t.clock + c.lc_clock;
  if Array.length t.opcounts <> 0 then
    t.opcounts.(opc_committed) <- t.opcounts.(opc_committed) + c.lc_clock;
  List.iter (fun (id, v) -> regs.(id) <- v) c.lc_regs;
  List.iter (fun (addr, v) -> Rvalue.store t.mem addr v) c.lc_writes;
  t.mem_accesses <- t.mem_accesses + c.lc_accesses;
  t.mem_events <- t.mem_events + c.lc_accesses;
  Buffer.add_string t.out c.lc_output

(* ---- iteration-range execution (the guarded runner's shard entry) ---- *)

type range_result = {
  rr_iters : int;  (** completed loop bodies *)
  rr_exit : (int * int) option;
      (** [Some (pred, target)] when the loop exited on its own; [None]
          when [max_iters] bodies completed and the range was cut *)
}

(* Execute up to [max_iters] bodies of the loop headed at [header] against
   an explicit frame, starting as if arriving from [pred] with the header
   phis of the first arrival overridden by [seed]. Stops *before* the
   arrival that would begin body [max_iters + 1] — that arrival's phi
   evaluations belong to the next shard, whose seed reproduces them. Used
   by shard workers on a forked image: loop events fire as usual, and any
   trap or budget stop unwinds with the loop bookkeeping rebalanced. *)
let run_loop_range t ~fname ~(regs : rv array) ~(args : rv array) ~header
    ~pred ~seed ~max_iters : range_result =
  let p = plan t fname in
  let lid =
    match Cfg.Loopinfo.loop_of_header p.li header with
    | Some l -> l
    | None -> error "run_loop_range: bb%d in @%s is not a loop header" header fname
  in
  let fr = { p; fname; regs; args } in
  let loop_stack = ref [] in
  let cur = ref header in
  let from_ = ref pred in
  let arrivals = ref 0 in
  let result = ref None in
  (try
     while !result = None do
       let b = !cur in
       if b = header && !arrivals >= max_iters then
         result := Some { rr_iters = !arrivals; rr_exit = None }
       else begin
         handle_edge t p loop_stack ~from_:!from_ ~to_:b;
         let sd =
           if b = header then begin
             incr arrivals;
             if !arrivals = 1 then seed else []
           end
           else []
         in
         exec_phis t fr ~pred:!from_ ~seed:sd b;
         match exec_rest t fr b with
         | Returned _ ->
             error "return while executing loop bb%d of @%s as a range" header
               fname
         | Jumped l ->
             if Cfg.Loopinfo.contains p.li lid l then begin
               from_ := b;
               cur := l
             end
             else
               result :=
                 Some { rr_iters = max 0 (!arrivals - 1); rr_exit = Some (b, l) }
       end
     done
   with e ->
     pop_all_loops t loop_stack;
     raise e);
  pop_all_loops t loop_stack;
  Option.get !result

let run_main ?(args = []) t : outcome =
  (match Ir.Func.find_func t.modul "main" with
  | None -> error "module has no @main function"
  | Some _ -> ());
  let ret, stop =
    match exec_func t "main" (Array.of_list args) with
    | r -> (r, Completed)
    | exception Budget_stop k -> (None, Truncated k)
  in
  {
    ret;
    stop;
    clock = t.clock;
    output = Buffer.contents t.out;
    mem_words = Rvalue.words_in_use t.mem;
    mem_accesses = t.mem_accesses;
    mem_events = t.mem_events;
  }
