(** Telemetry exporters: Chrome trace-event JSON (loadable in
    [chrome://tracing] / Perfetto), a Prometheus-style text dump, and the
    compact JSON snapshot embedded per task in campaign JSONL checkpoints.
    All read the process-wide {!Telemetry} state; all emission goes through
    the shared [Util.Json] codec — no second JSON printer. *)

(** The recorded spans as a Chrome trace: one complete ("X") event per span
    (microsecond timestamps on the telemetry clock), plus one instant event
    carrying the final counter values. *)
val chrome_trace : unit -> Util.Json.t

val chrome_trace_string : unit -> string

val write_chrome_trace : string -> unit

(** Escape a Prometheus label value per the text exposition format:
    backslash is doubled, double-quote gains a backslash, newline becomes
    backslash-n. *)
val escape_label_value : string -> string

(** Override the [loopa_build_info] labels (defaults:
    [version="1.0.0"], [git_rev] from the [LOOPA_GIT_REV] environment
    variable or ["unknown"]). *)
val set_build_info : (string * string) list -> unit

(** A constant [loopa_build_info{version=..,git_rev=..} 1] gauge, counters
    as [loopa_<name>_total], histograms as [_bucket]/[_sum]/[_count]
    families, and per-span-name duration aggregates as
    [loopa_span_seconds{span="..."}] sum/count pairs — one sample per line,
    [# TYPE] comments included. Label values are escaped with
    {!escape_label_value}. *)
val prometheus : unit -> string

val write_prometheus : string -> unit

(** [(span name, (count, total seconds))] over a span list, sorted by
    total descending — the aggregate the snapshot and BENCH emitters use. *)
val aggregate_spans :
  Telemetry.span list -> (string * (int * float)) list

(** Compact per-task snapshot: [{"spans":{name:{"n":..,"s":..}..},
    "counters":{name:delta..}}]. *)
val snapshot_json :
  spans:Telemetry.span list -> counters:(string * int) list -> Util.Json.t

(** Raw span wire codec, used by the multi-process executor to ship a
    worker's finished spans to the parent (which absorbs them via
    {!Telemetry.absorb}). [span_of_json] is total: a malformed object
    decodes to [None]. *)
val span_to_json : Telemetry.span -> Util.Json.t

val span_of_json : Util.Json.t -> Telemetry.span option
