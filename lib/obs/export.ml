(* Exporters over the Telemetry state (see the .mli). The Chrome trace
   format is the trace-event JSON of chrome://tracing and Perfetto: an
   object with a "traceEvents" list whose "X" (complete) events carry
   microsecond ts/dur; nesting is implied by time containment within one
   pid/tid, which our strictly stacked spans guarantee. *)

module Json = Util.Json

let us t = t *. 1e6

let span_event (s : Telemetry.span) : Json.t =
  let args =
    List.map (fun (k, v) -> (k, Json.String v)) s.Telemetry.attrs
    @ [ ("depth", Json.Int s.Telemetry.depth) ]
  in
  Json.Obj
    [
      ("name", Json.String s.Telemetry.name);
      ("cat", Json.String "loopa");
      ("ph", Json.String "X");
      ("ts", Json.Float (us s.Telemetry.start_s));
      ("dur", Json.Float (us s.Telemetry.dur_s));
      ("pid", Json.Int 1);
      ("tid", Json.Int 1);
      ("args", Json.Obj args);
    ]

let chrome_trace () : Json.t =
  let spans = Telemetry.spans () in
  let last_end =
    List.fold_left
      (fun acc (s : Telemetry.span) ->
        Float.max acc (s.Telemetry.start_s +. s.Telemetry.dur_s))
      0.0 spans
  in
  let counter_event =
    Json.Obj
      [
        ("name", Json.String "counters");
        ("cat", Json.String "loopa");
        ("ph", Json.String "i");
        ("s", Json.String "g");
        ("ts", Json.Float (us last_end));
        ("pid", Json.Int 1);
        ("tid", Json.Int 1);
        ( "args",
          Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) (Telemetry.counters ()))
        );
      ]
  in
  Json.Obj
    [
      ("traceEvents", Json.List (List.map span_event spans @ [ counter_event ]));
      ("displayTimeUnit", Json.String "ms");
    ]

let chrome_trace_string () = Json.to_string (chrome_trace ())

let write_chrome_trace path =
  Out_channel.with_open_text path (fun oc ->
      output_string oc (chrome_trace_string ());
      output_char oc '\n')

(* ---- Prometheus text format ---- *)

(* Metric names: [a-zA-Z_:][a-zA-Z0-9_:]*. Our registry names are dotted
   ("interp.mem.events"); dots and dashes map to underscores. *)
let sanitize name =
  String.map
    (function
      | ('a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':') as c -> c
      | _ -> '_')
    name

(* Label values are free text in the exposition format, but backslash,
   double-quote and newline must be escaped (backslash-doubled, backslash-
   quote, backslash-n) or the line is unparseable — a span named after a
   Windows path or a quoted source snippet must not corrupt the dump. *)
let escape_label_value s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_sample f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.9g" f

(* Build identity, emitted as the conventional constant-1 info gauge so
   dashboards can join any series against version/revision. The revision
   comes from the environment (CI exports LOOPA_GIT_REV) because the build
   itself is hermetic. *)
let build_info =
  ref
    [
      ("version", "1.0.0");
      ( "git_rev",
        Option.value ~default:"unknown" (Sys.getenv_opt "LOOPA_GIT_REV") );
    ]

let set_build_info kvs = build_info := kvs

let aggregate_spans (spans : Telemetry.span list) =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (s : Telemetry.span) ->
      let n, t =
        Option.value ~default:(0, 0.0) (Hashtbl.find_opt tbl s.Telemetry.name)
      in
      Hashtbl.replace tbl s.Telemetry.name (n + 1, t +. s.Telemetry.dur_s))
    spans;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (na, (_, ta)) (nb, (_, tb)) ->
         match Float.compare tb ta with 0 -> compare na nb | c -> c)

let prometheus () : string =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt in
  line "# TYPE loopa_build_info gauge";
  line "loopa_build_info{%s} 1"
    (String.concat ","
       (List.map
          (fun (k, v) ->
            Printf.sprintf "%s=\"%s\"" (sanitize k) (escape_label_value v))
          !build_info));
  List.iter
    (fun (name, v) ->
      let m = "loopa_" ^ sanitize name ^ "_total" in
      line "# TYPE %s counter" m;
      line "%s %d" m v)
    (Telemetry.counters ());
  List.iter
    (fun (name, (h : Telemetry.hist_snapshot)) ->
      let m = "loopa_" ^ sanitize name in
      line "# TYPE %s histogram" m;
      List.iter
        (fun (le, cum) ->
          (* skip empty leading buckets to keep the dump short; the +Inf
             bucket always appears so sum/count stay interpretable *)
          if cum > 0 || le = Float.infinity then
            line "%s_bucket{le=\"%s\"} %d" m
              (if le = Float.infinity then "+Inf" else float_sample le)
              cum)
        h.Telemetry.buckets;
      line "%s_sum %s" m (float_sample h.Telemetry.sum);
      line "%s_count %d" m h.Telemetry.count)
    (Telemetry.histograms ());
  (match aggregate_spans (Telemetry.spans ()) with
  | [] -> ()
  | aggs ->
      line "# TYPE loopa_span_seconds summary";
      List.iter
        (fun (name, (n, total)) ->
          line "loopa_span_seconds_sum{span=\"%s\"} %s"
            (escape_label_value name) (float_sample total);
          line "loopa_span_seconds_count{span=\"%s\"} %d"
            (escape_label_value name) n)
        aggs);
  Buffer.contents buf

let write_prometheus path =
  Out_channel.with_open_text path (fun oc -> output_string oc (prometheus ()))

(* ---- per-task snapshot (campaign JSONL) ---- *)

let snapshot_json ~spans ~counters : Json.t =
  Json.Obj
    [
      ( "spans",
        Json.Obj
          (List.map
             (fun (name, (n, total)) ->
               (name, Json.Obj [ ("n", Json.Int n); ("s", Json.Float total) ]))
             (aggregate_spans spans)) );
      ("counters", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) counters));
    ]

(* ---- raw span wire codec (Exec.Pool worker -> parent) ----

   Unlike [snapshot_json], which aggregates by span name, workers ship the
   raw spans so the parent can absorb them into its registry and the
   Chrome trace keeps per-task timeline slices from every process. *)

let span_to_json (s : Telemetry.span) : Json.t =
  Json.Obj
    [
      ("id", Json.Int s.Telemetry.id);
      ("parent", Json.Int s.Telemetry.parent);
      ("depth", Json.Int s.Telemetry.depth);
      ("name", Json.String s.Telemetry.name);
      ("start", Json.Float s.Telemetry.start_s);
      ("dur", Json.Float s.Telemetry.dur_s);
      ( "attrs",
        Json.Obj
          (List.map (fun (k, v) -> (k, Json.String v)) s.Telemetry.attrs) );
    ]

let span_of_json (j : Json.t) : Telemetry.span option =
  let int k = Option.bind (Json.member k j) Json.to_int in
  let flt k = Option.bind (Json.member k j) Json.to_float in
  match (int "id", Option.bind (Json.member "name" j) Json.to_str) with
  | Some id, Some name ->
      Some
        {
          Telemetry.id;
          parent = Option.value ~default:(-1) (int "parent");
          depth = Option.value ~default:0 (int "depth");
          name;
          start_s = Option.value ~default:0.0 (flt "start");
          dur_s = Option.value ~default:0.0 (flt "dur");
          attrs =
            (match Json.member "attrs" j with
            | Some (Json.Obj kvs) ->
                List.filter_map
                  (fun (k, v) -> Option.map (fun s -> (k, s)) (Json.to_str v))
                  kvs
            | _ -> []);
        }
  | _ -> None
