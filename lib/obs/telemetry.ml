(* Spans, counters and histograms behind a sink (see the .mli). The null
   sink is the default: every instrumented call site degrades to a load of
   [state.sink] plus a call into a function that immediately returns, and
   counter/histogram handles are plain registry records, so a disabled
   process allocates nothing per event. [enable] swaps in the recording
   sink; nothing else changes at the call sites. *)

type span = {
  id : int;
  parent : int;
  depth : int;
  name : string;
  start_s : float;
  dur_s : float;
  attrs : (string * string) list;
}

type counter = { cname : string; mutable total : int }

(* Histogram buckets are log2: bucket [i] counts observations with
   [v <= 2^(i - 1)] exclusive of the previous bucket; the last bucket is
   +Inf. 40 buckets cover 1 .. ~5.5e11 — iteration counts and instruction
   totals both fit. *)
let n_buckets = 40

type histogram = {
  hname : string;
  mutable count : int;
  mutable sum : float;
  mutable lo : float;
  mutable hi : float;
  buckets : int array; (* per-bucket (not cumulative) counts *)
}

type hist_snapshot = {
  count : int;
  sum : float;
  minimum : float;
  maximum : float;
  buckets : (float * int) list;
}

type open_span = {
  oid : int;
  oparent : int;
  odepth : int;
  oname : string;
  ostart : float;
  oattrs : (string * string) list;
}

type handle = int (* span id; -1 = the null handle *)

let null_handle : handle = -1

(* A sink sees every telemetry event. The instrumentation API calls through
   [state.sink] unconditionally; enabling telemetry is swapping this record. *)
type sink = {
  on_span_begin : string -> (string * string) list -> handle;
  on_span_end : handle -> (string * string) list -> unit;
  on_add : counter -> int -> unit;
  on_observe : histogram -> float -> unit;
}

let null_sink =
  {
    on_span_begin = (fun _ _ -> null_handle);
    on_span_end = (fun _ _ -> ());
    on_add = (fun _ _ -> ());
    on_observe = (fun _ _ -> ());
  }

type state = {
  mutable sink : sink;
  mutable recording : bool;
  mutable clock : unit -> float;
  mutable next_id : int;
  mutable stack : open_span list; (* innermost first *)
  mutable finished : span list; (* most recently finished first *)
  mutable n_finished : int;
  counters : (string, counter) Hashtbl.t;
  histograms : (string, histogram) Hashtbl.t;
}

let state =
  {
    sink = null_sink;
    recording = false;
    clock = Sys.time;
    next_id = 0;
    stack = [];
    finished = [];
    n_finished = 0;
    counters = Hashtbl.create 32;
    histograms = Hashtbl.create 16;
  }

(* ---- the recording sink ---- *)

let finish (o : open_span) (now : float) (attrs : (string * string) list) =
  state.finished <-
    {
      id = o.oid;
      parent = o.oparent;
      depth = o.odepth;
      name = o.oname;
      start_s = o.ostart;
      (* the clock is monotone, but defend the invariant anyway *)
      dur_s = Float.max 0.0 (now -. o.ostart);
      attrs = o.oattrs @ attrs;
    }
    :: state.finished;
  state.n_finished <- state.n_finished + 1

let recording_sink =
  {
    on_span_begin =
      (fun name attrs ->
        let id = state.next_id in
        state.next_id <- id + 1;
        let parent, depth =
          match state.stack with
          | o :: _ -> (o.oid, o.odepth + 1)
          | [] -> (-1, 0)
        in
        state.stack <-
          {
            oid = id;
            oparent = parent;
            odepth = depth;
            oname = name;
            ostart = state.clock ();
            oattrs = attrs;
          }
          :: state.stack;
        id);
    on_span_end =
      (fun h attrs ->
        if h >= 0 then
          (* Close everything opened after [h] (leaked by misuse; with_span
             never leaks), then [h] itself. If [h] is not on the stack at
             all — ended twice, or recorded before a reset — do nothing. *)
          if List.exists (fun o -> o.oid = h) state.stack then begin
            let now = state.clock () in
            let rec pop () =
              match state.stack with
              | o :: rest ->
                  state.stack <- rest;
                  if o.oid = h then finish o now attrs
                  else begin
                    finish o now [ ("outcome", "leaked") ];
                    pop ()
                  end
              | [] -> ()
            in
            pop ()
          end);
    on_add = (fun c n -> c.total <- c.total + n);
    on_observe =
      (fun (h : histogram) v ->
        h.count <- h.count + 1;
        h.sum <- h.sum +. v;
        if h.count = 1 then begin
          h.lo <- v;
          h.hi <- v
        end
        else begin
          h.lo <- Float.min h.lo v;
          h.hi <- Float.max h.hi v
        end;
        (* bucket i holds v <= 2^i (i = 0 .. n-2); the last is +Inf *)
        let rec idx i bound =
          if i >= n_buckets - 1 then n_buckets - 1
          else if v <= bound then i
          else idx (i + 1) (bound *. 2.0)
        in
        let i = idx 0 1.0 in
        h.buckets.(i) <- h.buckets.(i) + 1);
  }

(* ---- lifecycle ---- *)

let enabled () = state.recording

let enable () =
  state.recording <- true;
  state.sink <- recording_sink

let disable () =
  state.recording <- false;
  state.sink <- null_sink

let reset () =
  state.next_id <- 0;
  state.stack <- [];
  state.finished <- [];
  state.n_finished <- 0;
  Hashtbl.iter (fun _ c -> c.total <- 0) state.counters;
  Hashtbl.iter
    (fun _ (h : histogram) ->
      h.count <- 0;
      h.sum <- 0.0;
      h.lo <- 0.0;
      h.hi <- 0.0;
      Array.fill h.buckets 0 n_buckets 0)
    state.histograms

let set_clock = function
  | Some f -> state.clock <- f
  | None -> state.clock <- Sys.time

(* ---- spans ---- *)

let span_begin ?(attrs = []) name = state.sink.on_span_begin name attrs

let span_end ?(attrs = []) h = state.sink.on_span_end h attrs

let with_span ?attrs name f =
  let h = span_begin ?attrs name in
  match f () with
  | v ->
      span_end h;
      v
  | exception e ->
      (* close the span before the exception keeps unwinding, so a Trap or
         Budget_stop deep in the interpreter still leaves a well-formed
         span tree *)
      span_end ~attrs:[ ("outcome", "raised") ] h;
      raise e

let spans () =
  (* finished is most-recent-first; ids increase in start order *)
  List.sort (fun a b -> compare a.id b.id) state.finished

let open_spans () = List.length state.stack

(* ---- counters ---- *)

let counter name =
  match Hashtbl.find_opt state.counters name with
  | Some c -> c
  | None ->
      let c = { cname = name; total = 0 } in
      Hashtbl.replace state.counters name c;
      c

let add c n = state.sink.on_add c n

let incr c = state.sink.on_add c 1

let value c = c.total

(* ---- histograms ---- *)

let histogram name =
  match Hashtbl.find_opt state.histograms name with
  | Some h -> h
  | None ->
      let h =
        {
          hname = name;
          count = 0;
          sum = 0.0;
          lo = 0.0;
          hi = 0.0;
          buckets = Array.make n_buckets 0;
        }
      in
      Hashtbl.replace state.histograms name h;
      h

let observe h v = state.sink.on_observe h v

(* ---- snapshots ---- *)

let counters () =
  Hashtbl.fold (fun name c acc -> (name, c.total) :: acc) state.counters []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let snapshot_of (h : histogram) : hist_snapshot =
  let cumulative = ref 0 in
  let buckets =
    List.init n_buckets (fun i ->
        cumulative := !cumulative + h.buckets.(i);
        let le =
          if i = n_buckets - 1 then Float.infinity else Float.pow 2.0 (float_of_int i)
        in
        (le, !cumulative))
  in
  { count = h.count; sum = h.sum; minimum = h.lo; maximum = h.hi; buckets }

let histograms () =
  Hashtbl.fold (fun name h acc -> (name, snapshot_of h) :: acc) state.histograms []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* ---- absorption: merging a forked worker's telemetry ----

   A pool worker (Exec.Pool) inherits this registry at fork, resets it,
   records its own spans/counters/histograms, and ships them back over the
   IPC channel. The parent splices them in here so fleet-wide exports
   (--trace/--prom, heartbeat deltas) see one registry. Absorbed spans are
   re-identified against the parent's id counter; parent links that point
   inside the absorbed batch are preserved, anything else becomes a root. *)

let absorb ~(spans : span list) ~(counters : (string * int) list) =
  if state.recording then begin
    (match spans with
    | [] -> ()
    | _ ->
        let base =
          List.fold_left (fun m (s : span) -> min m s.id) max_int spans
        in
        let ids = List.map (fun (s : span) -> s.id) spans in
        let shift = state.next_id - base in
        let top = List.fold_left max 0 (List.map (fun i -> i + shift) ids) in
        List.iter
          (fun (s : span) ->
            state.finished <-
              {
                s with
                id = s.id + shift;
                parent =
                  (if List.mem s.parent ids then s.parent + shift else -1);
              }
              :: state.finished;
            state.n_finished <- state.n_finished + 1)
          spans;
        state.next_id <- top + 1);
    List.iter (fun (name, d) -> if d <> 0 then (counter name).total <- (counter name).total + d) counters
  end

let wire_histograms () : Util.Json.t =
  let hists =
    Hashtbl.fold (fun name h acc -> (name, h) :: acc) state.histograms []
    |> List.filter (fun (_, (h : histogram)) -> h.count > 0)
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  Util.Json.Obj
    (List.map
       (fun (name, (h : histogram)) ->
         ( name,
           Util.Json.Obj
             [
               ("count", Util.Json.Int h.count);
               ("sum", Util.Json.Float h.sum);
               ("min", Util.Json.Float h.lo);
               ("max", Util.Json.Float h.hi);
               ( "buckets",
                 Util.Json.List
                   (Array.to_list
                      (Array.map (fun b -> Util.Json.Int b) h.buckets)) );
             ] ))
       hists)

let absorb_histograms (j : Util.Json.t) =
  if state.recording then
    match j with
    | Util.Json.Obj fields ->
        List.iter
          (fun (name, hj) ->
            let geti k =
              Option.value ~default:0 (Option.bind (Util.Json.member k hj) Util.Json.to_int)
            in
            let getf k =
              Option.value ~default:0.0
                (Option.bind (Util.Json.member k hj) Util.Json.to_float)
            in
            let count = geti "count" in
            if count > 0 then begin
              let h = histogram name in
              let lo = getf "min" and hi = getf "max" in
              if h.count = 0 then begin
                h.lo <- lo;
                h.hi <- hi
              end
              else begin
                h.lo <- Float.min h.lo lo;
                h.hi <- Float.max h.hi hi
              end;
              h.count <- h.count + count;
              h.sum <- h.sum +. getf "sum";
              (match Option.bind (Util.Json.member "buckets" hj) Util.Json.to_list with
              | Some bs ->
                  List.iteri
                    (fun i b ->
                      if i < n_buckets then
                        h.buckets.(i) <-
                          h.buckets.(i)
                          + Option.value ~default:0 (Util.Json.to_int b))
                    bs
              | None -> ())
            end)
          fields
    | _ -> ()

(* ---- marks ---- *)

type mark = { m_spans : int; m_counters : (string * int) list }

let mark () = { m_spans = state.n_finished; m_counters = counters () }

let since (m : mark) =
  let fresh = state.n_finished - m.m_spans in
  let newer = List.filteri (fun i _ -> i < fresh) state.finished in
  let spans = List.sort (fun a b -> compare a.id b.id) newer in
  let deltas =
    List.filter_map
      (fun (name, v) ->
        let before =
          Option.value ~default:0 (List.assoc_opt name m.m_counters)
        in
        if v - before <> 0 then Some (name, v - before) else None)
      (counters ())
  in
  (spans, deltas)
