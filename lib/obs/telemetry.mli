(** Obs.Telemetry — the framework's self-describing instrumentation.

    Three primitives, all process-wide and single-threaded like the rest of
    the tree:

    - {b spans}: nestable monotonic-clock start/stop intervals with key/value
      attributes, wrapping pipeline stages (parse, sema, lower, verify, the
      individual opt passes, SCEV, deptest, classify, the profiling
      interpretation, evaluation) and campaign tasks;
    - {b counters}: monotone integer totals in a registry keyed by name
      (instructions retired, memory events emitted vs pruned, predictor
      hits/misses, model invocations scored, ...);
    - {b histograms}: value distributions (log2 buckets plus count/sum/
      min/max) for things like per-invocation iteration counts.

    Everything dispatches through a {e sink}. The default sink is the null
    sink: [span_begin] returns a dummy handle, [add] and [observe] fall
    through a single branch, and nothing is ever recorded — instrumented
    code pays one load-and-test per call site. {!enable} swaps in the
    recording sink. The interpreter's per-instruction hot loop is not
    instrumented at all: the machine keeps its own counters and the driver
    feeds them into the registry once per run (see Machine accessors).

    Counter and histogram handles are interned once ({!counter},
    {!histogram}) so hot call sites never hash strings. *)

(* ---- lifecycle ---- *)

val enabled : unit -> bool

(** Start recording. Registrations made while disabled are kept. *)
val enable : unit -> unit

val disable : unit -> unit

(** Drop every recorded span, zero every counter and histogram. Handles
    stay valid (they are registry entries, not snapshots). *)
val reset : unit -> unit

(** Override the monotonic clock (seconds). [None] restores the default
    ([Sys.time], processor time — monotone and dependency-free). Tests
    inject a deterministic counter here. *)
val set_clock : (unit -> float) option -> unit

(* ---- spans ---- *)

(** A finished span. [start_s] is on the telemetry clock; [dur_s >= 0].
    [id]s increase in start order; [parent] is the enclosing span's id, or
    -1 for a root. [depth] is the nesting depth (0 for roots). *)
type span = {
  id : int;
  parent : int;
  depth : int;
  name : string;
  start_s : float;
  dur_s : float;
  attrs : (string * string) list;
}

(** Handle to an open span; worthless once ended. *)
type handle

(** A handle that {!span_end} ignores — what {!span_begin} returns while
    disabled. *)
val null_handle : handle

val span_begin : ?attrs:(string * string) list -> string -> handle

(** End an open span. Any span opened after [h] and still open is closed
    first (misuse-tolerant), so the stack never leaks. [attrs] are appended
    to the ones given at [span_begin]. *)
val span_end : ?attrs:(string * string) list -> handle -> unit

(** [with_span name f] runs [f] inside a span, closing it whatever happens —
    including a raised [Trap] or [Budget_stop]; the exception is re-raised.
    When an exception escapes, an ["outcome" = "raised"] attribute is added. *)
val with_span : ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a

(** Finished spans in start order. *)
val spans : unit -> span list

(** Number of spans currently open (0 once every stage unwound — what the
    fault-injection tests assert). *)
val open_spans : unit -> int

(* ---- counters ---- *)

type counter

(** Find-or-create the counter named [name] in the process-wide registry.
    Idempotent; the handle never needs re-interning. *)
val counter : string -> counter

val add : counter -> int -> unit

val incr : counter -> unit

val value : counter -> int

(* ---- histograms ---- *)

type histogram

val histogram : string -> histogram

val observe : histogram -> float -> unit

(** Cumulative-bucket view, Prometheus style: [(le, count_at_or_below)]
    pairs with a final [(infinity, count)]. *)
type hist_snapshot = {
  count : int;
  sum : float;
  minimum : float;  (** 0 when empty *)
  maximum : float;
  buckets : (float * int) list;
}

(* ---- snapshots ---- *)

(** Every registered counter with its current value, sorted by name
    (zero-valued ones included — registration is part of the registry's
    contract). *)
val counters : unit -> (string * int) list

val histograms : unit -> (string * hist_snapshot) list

(* ---- absorption (multi-process campaigns) ---- *)

(** Splice a forked worker's finished spans and counter deltas into this
    process's registry, so fleet-wide exports and heartbeat deltas see one
    registry. Spans are re-identified against the local id counter;
    parent links that point inside the absorbed batch are preserved and
    everything else becomes a root. No-op while disabled. *)
val absorb : spans:span list -> counters:(string * int) list -> unit

(** Raw histogram state (per-bucket counts, not cumulative) as JSON — the
    worker→parent wire format. Only histograms with observations. *)
val wire_histograms : unit -> Util.Json.t

(** Merge a {!wire_histograms} payload into the local registry: counts,
    sums and buckets add; min/max widen. No-op while disabled; unknown or
    malformed fields are ignored. *)
val absorb_histograms : Util.Json.t -> unit

(** A position in the telemetry stream; see {!since}. *)
type mark

val mark : unit -> mark

(** Spans finished since the mark (start order) and per-counter deltas
    (non-zero only, sorted by name) — the per-task snapshot the campaign
    runner embeds in JSONL checkpoints and feeds to the heartbeat. *)
val since : mark -> span list * (string * int) list
