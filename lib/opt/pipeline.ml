(* The optimization pipeline run before instrumentation when -O is requested:
   fold -> clean CFG -> drop dead code, to a fixpoint. The analogue of the
   paper's "IR after -Ofast" starting point. Every pass is semantics-
   preserving (checked by test/test_opt.ml against the whole suite corpus). *)

let span name f = Obs.Telemetry.with_span name f

let run_func (fn : Ir.Func.t) =
  let budget = ref 10 in
  let continue_ = ref true in
  while !continue_ && !budget > 0 do
    decr budget;
    span "opt.constfold" (fun () -> Constfold.run_func fn);
    span "opt.simplify-cfg" (fun () -> Simplify_cfg.run_func fn);
    span "opt.licm" (fun () -> ignore (Licm.run_func fn));
    let removed = span "opt.dce" (fun () -> Dce.run_func fn) in
    (* Constfold/Simplify_cfg reach their own fixpoints internally; iterate
       only while DCE keeps exposing more folding opportunities. *)
    continue_ := removed > 0
  done

let run_module (m : Ir.Func.modul) =
  span "opt" @@ fun () ->
  List.iter run_func m.Ir.Func.funcs;
  span "opt.verify" (fun () -> Ir.Verifier.check_module_exn m)
