(** Interval evaluation of SCEV expressions over a leaf valuation. *)

val itv_of_expr :
  itv_of:(Ir.Types.value -> Util.Interval.t) -> Expr.t -> Util.Interval.t
(** Evaluate [e] with checked interval arithmetic; [itv_of] supplies ranges
    for [Unknown] leaves (return {!Util.Interval.top} when nothing is
    known). [Add_rec]/[Self]/[Cannot] evaluate to top — callers that need
    per-iteration precision must strip recurrences first. *)
