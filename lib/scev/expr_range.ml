(* Interval evaluation of SCEV expressions: maps a symbolic expression to a
   checked int64 interval given a valuation for its leaf values. Shared by
   the dependence tests (distance intervals when bases do not cancel to a
   constant), the parallel-safety auditor, and trip-count refinement — all
   of which must refuse to reason across an int64 overflow, which
   Util.Interval's checked arithmetic guarantees. *)

let rec itv_of_expr ~(itv_of : Ir.Types.value -> Util.Interval.t) (e : Expr.t) :
    Util.Interval.t =
  match e with
  | Expr.Const c -> Util.Interval.const c
  | Expr.Unknown v -> itv_of v
  | Expr.Add ts ->
      List.fold_left
        (fun acc t -> Util.Interval.add acc (itv_of_expr ~itv_of t))
        (Util.Interval.const 0L) ts
  | Expr.Mul ts ->
      List.fold_left
        (fun acc t -> Util.Interval.mul acc (itv_of_expr ~itv_of t))
        (Util.Interval.const 1L) ts
  | Expr.Add_rec _ | Expr.Self _ | Expr.Cannot -> Util.Interval.top
