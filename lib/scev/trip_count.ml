(* Exit (trip) count computation — the back-edge-taken-count role of LLVM's
   ScalarEvolution. For a canonical loop whose header compares an affine IV
   with constant start and step against a constant bound, the number of
   header arrivals is known exactly ([of_loop]). When the bound is symbolic
   but loop-invariant, an upper bound on the arrivals can still be derived
   from a proven interval for the bound value ([bound_of_loop]).
   Conservative: anything else is None. *)

open Ir.Types

(* Count of header arrivals (body executions + the final failing test) for
   iv = {start,+,step} compared against bound with [op], assuming the loop
   exits when the comparison fails and runs while it holds. *)
let count_affine ~start ~step ~bound ~(op : Ir.Instr.icmp) : int64 option =
  let open Int64 in
  let ceil_div a b = if rem a b = 0L then div a b else add (div a b) 1L in
  let body_execs upper =
    (* iterations with start + k*step < upper, k >= 0 *)
    if step <= 0L then None
    else if start >= upper then Some 0L
    else Some (ceil_div (sub upper start) step)
  in
  let body_execs_down lower =
    if step >= 0L then None
    else if start <= lower then Some 0L
    else Some (ceil_div (sub start lower) (neg step))
  in
  let bodies =
    match op with
    | Ir.Instr.Islt -> body_execs bound
    | Ir.Instr.Isle -> body_execs (add bound 1L)
    | Ir.Instr.Isgt -> body_execs_down bound
    | Ir.Instr.Isge -> body_execs_down (sub bound 1L)
    | Ir.Instr.Ine ->
        (* iv != bound: exact only when the stride lands on the bound *)
        if step <> 0L && rem (sub bound start) step = 0L && div (sub bound start) step >= 0L
        then Some (div (sub bound start) step)
        else None
    | Ir.Instr.Ieq -> None
  in
  Option.map (fun b -> add b 1L) bodies

(* Normalized sole-exit header comparison of loop [lid]:
   (op, (start, step), bound-expression) such that the loop runs while
   [iv `op` bound] holds, with iv = {start,+,step} an affine recurrence of
   this loop with constant start and step. The bound side is simplified but
   may be symbolic. *)
let header_compare (fn : Ir.Func.t) (li : Cfg.Loopinfo.t) (scev : Analysis.t)
    (lid : int) : (Ir.Instr.icmp * (int64 * int64) * Expr.t) option =
  let l = Cfg.Loopinfo.loop li lid in
  match Ir.Func.terminator fn l.Cfg.Loopinfo.header with
  | Some { Ir.Instr.kind = Ir.Instr.Cond_br (Reg cid, l1, l2); _ } -> (
      let in_loop b = Cfg.Loopinfo.contains li lid b in
      (* the header must be the only exiting block for the count to be the
         trip count *)
      let exits_elsewhere =
        List.exists (fun (b, _) -> b <> l.Cfg.Loopinfo.header) (Cfg.Loopinfo.exit_edges li lid)
      in
      if exits_elsewhere then None
      else
        match Ir.Func.kind fn cid with
        | Ir.Instr.Icmp (op, a, b) -> (
            (* normalize so the loop runs while the comparison holds *)
            let flip = function
              | Ir.Instr.Islt -> Ir.Instr.Isge
              | Ir.Instr.Isle -> Ir.Instr.Isgt
              | Ir.Instr.Isgt -> Ir.Instr.Isle
              | Ir.Instr.Isge -> Ir.Instr.Islt
              | Ir.Instr.Ieq -> Ir.Instr.Ine
              | Ir.Instr.Ine -> Ir.Instr.Ieq
            in
            let op = if in_loop l1 then op else flip op in
            ignore l2;
            let sa = Expr.simplify (Analysis.scev_of_value scev a) in
            let sb = Expr.simplify (Analysis.scev_of_value scev b) in
            let affine_const = function
              | Expr.Add_rec { start = Expr.Const s; step = Expr.Const t; loop }
                when Cfg.Loopinfo.loop_of_header li loop = Some lid ->
                  Some (s, t)
              | _ -> None
            in
            match affine_const sa with
            | Some iv -> Some (op, iv, sb)
            | None -> (
                (* bound on the left: iv on the right, mirror the compare *)
                let mirror = function
                  | Ir.Instr.Islt -> Ir.Instr.Isgt
                  | Ir.Instr.Isle -> Ir.Instr.Isge
                  | Ir.Instr.Isgt -> Ir.Instr.Islt
                  | Ir.Instr.Isge -> Ir.Instr.Isle
                  | (Ir.Instr.Ieq | Ir.Instr.Ine) as o -> o
                in
                match affine_const sb with
                | Some iv -> Some (mirror op, iv, sa)
                | None -> None))
        | _ -> None)
  | _ -> None

(* Header-arrival count for loop [lid], when its sole exit is governed by an
   affine IV against a constant bound. *)
let of_loop (fn : Ir.Func.t) (li : Cfg.Loopinfo.t) (scev : Analysis.t) (lid : int) :
    int64 option =
  match header_compare fn li scev lid with
  | Some (op, (start, step), Expr.Const bound) -> count_affine ~start ~step ~bound ~op
  | _ -> None

(* Bound-of-arrivals refinement when the bound is symbolic but invariant and
   range analysis proves an interval for it. Capped: a derived count above
   2^32 is discarded — downstream subscript tests multiply trip counts by
   strides with plain int64 arithmetic, which DESIGN.md's in-model address
   assumption only licenses for word-sized magnitudes. *)
let bound_cap = 0xFFFF_FFFFL

let bound_of_loop (fn : Ir.Func.t) (li : Cfg.Loopinfo.t) (scev : Analysis.t)
    ~(lid : int) ~(itv_of : Ir.Types.value -> Util.Interval.t) : int64 option =
  match header_compare fn li scev lid with
  | Some (op, (start, step), bound_expr) when not (Expr.contains_cannot bound_expr) ->
      if not (Analysis.is_invariant scev bound_expr ~lid) then None
      else begin
        (* worst-case bound value: the largest (counting up) or smallest
           (counting down) the bound can be; count_affine is monotone in the
           bound for the corresponding direction *)
        let bitv = Expr_range.itv_of_expr ~itv_of bound_expr in
        (* count_affine is monotone in the bound only for the relational
           compares; Ine/Ieq count an exact landing and admit no worst-case
           argument. The checked distance computation below re-derives the
           exact normalized subtraction count_affine performs, so a count is
           only believed when none of its internal arithmetic wrapped. *)
        let worst_and_distance =
          match (op, Util.Interval.bounds bitv) with
          | (Ir.Instr.Islt | Ir.Instr.Isle), Some (_, hi) when hi < Int64.max_int ->
              let upper = if op = Ir.Instr.Islt then Some hi else Util.Interval.add64 hi 1L in
              Option.map (fun u -> (hi, Util.Interval.sub64 u start)) upper
          | (Ir.Instr.Isgt | Ir.Instr.Isge), Some (lo, _) when lo > Int64.min_int ->
              let lower = if op = Ir.Instr.Isgt then Some lo else Util.Interval.sub64 lo 1L in
              Option.map (fun l -> (lo, Util.Interval.sub64 start l)) lower
          | _ -> None
        in
        match worst_and_distance with
        | Some (bound, Some _) -> (
            match count_affine ~start ~step ~bound ~op with
            | Some n when n >= 0L && n <= bound_cap -> Some n
            | _ -> None)
        | _ -> None
      end
  | _ -> None
