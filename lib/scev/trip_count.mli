(** Exit (trip) count computation — the back-edge-taken-count role of LLVM's
    ScalarEvolution. Counts are header arrivals: body executions plus the
    final failing test. *)

val count_affine :
  start:int64 -> step:int64 -> bound:int64 -> op:Ir.Instr.icmp -> int64 option
(** Arrival count for iv = [{start,+,step}] compared against [bound] with
    [op], assuming the loop runs while the comparison holds. *)

val header_compare :
  Ir.Func.t -> Cfg.Loopinfo.t -> Analysis.t -> int ->
  (Ir.Instr.icmp * (int64 * int64) * Expr.t) option
(** Normalized sole-exit header comparison of a loop:
    [(op, (start, step), bound)] such that the loop runs while
    [iv `op` bound] holds, for an affine IV with constant start/step. The
    bound expression may be symbolic. *)

val of_loop : Ir.Func.t -> Cfg.Loopinfo.t -> Analysis.t -> int -> int64 option
(** Exact arrival count when the normalized bound is a constant. *)

val bound_of_loop :
  Ir.Func.t -> Cfg.Loopinfo.t -> Analysis.t -> lid:int ->
  itv_of:(Ir.Types.value -> Util.Interval.t) -> int64 option
(** Upper bound on arrivals when the bound is symbolic but loop-invariant
    and [itv_of] proves an interval for it (range analysis). Sound: the
    worst-case bound value is used, all internal arithmetic is
    overflow-checked, and counts above 2^32 are discarded (downstream
    dependence tests assume word-sized magnitudes). None when no finite
    refinement exists. *)
