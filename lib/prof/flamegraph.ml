(* Flamegraph emitters over folded-stack data. A profile here is just
   [(folded key, weight)] pairs, where a folded key is the ';'-joined guest
   stack root-first ("main;kernel;kernel:loop0"). Both writers sort by key so
   output is byte-deterministic regardless of the hash-table iteration order
   that produced the pairs — the determinism tests diff files directly. *)

module Json = Util.Json

let merge entries =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (key, w) ->
      match Hashtbl.find_opt tbl key with
      | Some r -> r := !r + w
      | None -> Hashtbl.add tbl key (ref w))
    entries;
  Hashtbl.fold (fun key r acc -> (key, !r) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let collapsed entries =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (key, w) -> if w > 0 then Buffer.add_string buf (Printf.sprintf "%s %d\n" key w))
    (merge entries);
  Buffer.contents buf

(* Speedscope's "sampled" profile schema (https://www.speedscope.app): a
   shared frame table, one stack per sample as frame indices, parallel
   weights. [unit] is "none" because our weights are retired IR instructions
   (or sample counts), not time. *)
let speedscope ~name entries =
  let entries = merge entries in
  let frames = Hashtbl.create 64 in
  let frame_order = ref [] in
  let frame_index f =
    match Hashtbl.find_opt frames f with
    | Some i -> i
    | None ->
        let i = Hashtbl.length frames in
        Hashtbl.add frames f i;
        frame_order := f :: !frame_order;
        i
  in
  let samples, weights =
    List.fold_left
      (fun (ss, ws) (key, w) ->
        if w <= 0 then (ss, ws)
        else
          let stack =
            String.split_on_char ';' key
            |> List.map (fun f -> Json.Int (frame_index f))
          in
          (Json.List stack :: ss, Json.Int w :: ws))
      ([], []) entries
  in
  let samples = List.rev samples and weights = List.rev weights in
  let total = List.fold_left (fun acc (_, w) -> acc + max 0 w) 0 entries in
  let frame_table =
    List.rev_map (fun f -> Json.Obj [ ("name", Json.String f) ]) !frame_order
  in
  Json.Obj
    [
      ( "$schema",
        Json.String "https://www.speedscope.app/file-format-schema.json" );
      ("shared", Json.Obj [ ("frames", Json.List frame_table) ]);
      ( "profiles",
        Json.List
          [
            Json.Obj
              [
                ("type", Json.String "sampled");
                ("name", Json.String name);
                ("unit", Json.String "none");
                ("startValue", Json.Int 0);
                ("endValue", Json.Int total);
                ("samples", Json.List samples);
                ("weights", Json.List weights);
              ];
          ] );
      ("exporter", Json.String "loopapalooza-prof");
      ("name", Json.String name);
    ]

let write_file path contents =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc contents)

let write_collapsed path entries = write_file path (collapsed entries)

let write_speedscope path ~name entries =
  write_file path (Json.to_string (speedscope ~name entries))
