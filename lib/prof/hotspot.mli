(** The hotspot profiler: exact per-loop/per-function instruction
    attribution, per-opcode retired counters, wall-time attribution, and a
    deterministic sampling profile of the guest Looplang call stack.

    Lifecycle: {!create} → {!tee} your hooks into the machine → {!arm} the
    machine → run → {!finish} → read {!folded}/{!sampled}/{!flat} or
    {!write_files}.

    Attribution is by clock-delta charging at stack transitions, so the
    exact folded self-weights partition the machine clock: their sum equals
    [Machine.instructions_retired] after {!finish}. Sample placement is a
    pure function of the clock (every [sample_period] retired
    instructions), so folded exports are byte-identical across runs of the
    same program; wall times appear only in {!flat}. *)

type t

val default_period : int
(** Default [sample_period]: 1000 retired instructions per sample. *)

(** [wall_clock] defaults to [Unix.gettimeofday]; tests inject a
    deterministic clock.
    @raise Invalid_argument when [sample_period <= 0] *)
val create :
  ?sample_period:int -> ?wall_clock:(unit -> float) -> unit -> t

(** Wrap hooks with the shadow-stack updates, forwarding every event to the
    wrapped hooks unchanged — composes with [Loopa.Profile.hooks_of]. *)
val tee : t -> Interp.Events.hooks -> Interp.Events.hooks

(** Enable the machine's opcode counters and arm its sampler with this
    profiler's period. Remembers the machine so {!finish} can flush. *)
val arm : t -> Interp.Machine.t -> unit

(** Charge the tail interval up to the machine's current clock and snapshot
    its opcode counters. Idempotent; call on every exit path (the clock is
    readable even after a trap). *)
val finish : t -> unit

(** Exact profile: [(folded key, self instructions)]; keys are root-first
    ';'-joined stacks, loop frames as ["fn:loopN"]. Sums to the machine
    clock after {!finish}. *)
val folded : t -> (string * int) list

(** Sampling profile: [(folded key, sample hits)]. *)
val sampled : t -> (string * int) list

(** Per-frame self totals [(frame, instructions, wall seconds)], hottest
    first. The only place wall time surfaces. *)
val flat : t -> (string * int * float) list

(** The machine's per-opcode counters as snapshotted by {!finish}. *)
val opcode_counts : t -> (string * int) list

val total_instrs : t -> int
val n_samples : t -> int
val sample_period : t -> int

(** Write [<base>.folded] (exact), [<base>.samples.folded] (sampled) and
    [<base>.speedscope.json] (exact, speedscope schema); a [.folded]
    suffix on [base] is stripped first. Returns the paths written. *)
val write_files : t -> base:string -> name:string -> string list
