(** The live observability endpoint: a forked HTTP responder serving
    Prometheus [/metrics] (text format 0.0.4) and JSON [/status].

    The parent process never serves HTTP: {!start} binds the socket, forks
    a select-loop responder child, and returns a handle whose only verbs
    are {!publish} (push a snapshot over an {!Exec.Ipc} pipe; the child
    answers every request from the latest one) and {!stop} (close the
    pipe — the child's EOF shutdown signal — and reap it). Publishing
    after the child died is a silent no-op, so a crashed responder never
    takes the campaign down with it. SIGPIPE is set to ignore by
    {!start}. *)

type t

(** Bind [host] (default 127.0.0.1) on [port] — 0 picks a free port, read
    it back with {!port} — and fork the responder.
    @raise Invalid_argument on an out-of-range port
    @raise Unix.Unix_error when the bind/listen fails (port in use) *)
val start : ?host:string -> port:int -> unit -> t

val port : t -> int

(** Push a snapshot: [metrics] is served verbatim at [/metrics], [status]
    compactly at [/status]. *)
val publish : t -> metrics:string -> status:Util.Json.t -> unit

(** Shut the responder down and reap the child (SIGKILL after ~2 s if the
    EOF signal doesn't land). Idempotent. *)
val stop : t -> unit
