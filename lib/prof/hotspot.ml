(* The hotspot profiler: a shadow-stack listener over {!Interp.Events.hooks}
   plus the machine's per-opcode counters and deterministic sampler.

   Exact attribution works by charging clock deltas: the listener keeps the
   guest stack (function frames from call events, loop frames from loop
   events) and, at every stack transition, charges [clock - last_clock]
   retired instructions to the folded key of the stack as it was *before*
   the transition. A final {!finish} flushes the tail up to the machine's
   terminal clock, so the folded self-weights partition the clock exactly:
   their sum equals [Machine.instructions_retired]. on_loop_iter is
   stack-neutral and charges nothing.

   Wall attribution reads [wall_clock ()] at the same transitions and
   charges the delta to the innermost frame. Wall times never enter the
   folded exports — those stay byte-deterministic — only the flat summary.

   The sampling profile is independent of the hook stream: the machine's
   countdown sampler (a pure function of the clock) calls back every
   [sample_period] retired instructions and we record the current folded
   key, so sample placement is identical across runs of the same program. *)

module Machine = Interp.Machine
module Events = Interp.Events

let default_period = 1000
let root_frame = "(root)"

type t = {
  sample_period : int;
  wall_clock : unit -> float;
  (* guest stack, innermost first; [fns] tracks just the function frames so
     loop frames can be qualified with their enclosing function's name *)
  mutable stack : string list;
  mutable fns : string list;
  mutable key : string; (* folded key of [stack], cached across samples *)
  mutable last_clock : int;
  mutable last_wall : float;
  mutable finished : bool;
  mutable machine : Machine.t option;
  mutable opcodes : (string * int) list; (* snapshot taken by [finish] *)
  self : (string, int ref) Hashtbl.t; (* folded key -> self instructions *)
  samples : (string, int ref) Hashtbl.t; (* folded key -> sample hits *)
  flat : (string, int ref * float ref) Hashtbl.t; (* frame -> instrs, wall *)
  mutable n_samples : int;
}

let create ?(sample_period = default_period) ?(wall_clock = Unix.gettimeofday)
    () =
  if sample_period <= 0 then
    invalid_arg "Hotspot.create: sample_period must be positive";
  {
    sample_period;
    wall_clock;
    stack = [];
    fns = [];
    key = root_frame;
    last_clock = 0;
    last_wall = wall_clock ();
    finished = false;
    machine = None;
    opcodes = [];
    self = Hashtbl.create 64;
    samples = Hashtbl.create 64;
    flat = Hashtbl.create 64;
    n_samples = 0;
  }

let refold t =
  t.key <-
    (match t.stack with
    | [] -> root_frame
    | stack -> String.concat ";" (List.rev stack))

let bump tbl key w =
  match Hashtbl.find_opt tbl key with
  | Some r -> r := !r + w
  | None -> Hashtbl.add tbl key (ref w)

(* Charge the interval since the previous transition to the current stack
   (exact folded profile) and its innermost frame (flat profile). *)
let charge t ~clock =
  let top = match t.stack with f :: _ -> f | [] -> root_frame in
  let instrs, wall = Hashtbl.find_opt t.flat top |> function
    | Some cell -> cell
    | None ->
        let cell = (ref 0, ref 0.0) in
        Hashtbl.add t.flat top cell;
        cell
  in
  let d = clock - t.last_clock in
  if d > 0 then begin
    bump t.self t.key d;
    instrs := !instrs + d;
    t.last_clock <- clock
  end;
  let now = t.wall_clock () in
  wall := !wall +. (now -. t.last_wall);
  t.last_wall <- now

let push t frame ~clock =
  charge t ~clock;
  t.stack <- frame :: t.stack;
  refold t

let pop t ~clock =
  charge t ~clock;
  (match t.stack with [] -> () | _ :: rest -> t.stack <- rest);
  refold t

let current_fn t = match t.fns with f :: _ -> f | [] -> root_frame
let loop_frame t lid = Printf.sprintf "%s:loop%d" (current_fn t) lid

let on_sample t clock =
  ignore clock;
  t.n_samples <- t.n_samples + 1;
  bump t.samples t.key 1

(* Wrap [base]'s hooks with the shadow-stack updates; all non-stack events
   pass through untouched. The profiler observes, it never replaces. *)
let tee t (base : Events.hooks) =
  {
    base with
    Events.on_call_enter =
      (fun ~fname ~clock ->
        t.fns <- fname :: t.fns;
        push t fname ~clock;
        base.Events.on_call_enter ~fname ~clock);
    on_call_exit =
      (fun ~fname ~clock ->
        pop t ~clock;
        (match t.fns with [] -> () | _ :: rest -> t.fns <- rest);
        base.Events.on_call_exit ~fname ~clock);
    on_loop_enter =
      (fun ~lid ~clock ->
        push t (loop_frame t lid) ~clock;
        base.Events.on_loop_enter ~lid ~clock);
    on_loop_exit =
      (fun ~lid ~clock ->
        pop t ~clock;
        base.Events.on_loop_exit ~lid ~clock);
  }

let arm t m =
  t.machine <- Some m;
  Machine.enable_opcode_counts m;
  Machine.set_sampler m ~period:t.sample_period (on_sample t)

(* Flush the tail interval up to the machine's final clock and snapshot its
   opcode counters. Idempotent; safe on every Driver exit path including
   trap unwinds (the machine clock is readable after a trap). *)
let finish t =
  if not t.finished then begin
    t.finished <- true;
    match t.machine with
    | None -> ()
    | Some m ->
        charge t ~clock:(Machine.clock m);
        t.opcodes <- Machine.opcode_counts m;
        Machine.clear_sampler m
  end

let folded t = Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.self []
let sampled t = Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.samples []

let flat t =
  Hashtbl.fold (fun k (i, w) acc -> (k, !i, !w) :: acc) t.flat []
  |> List.sort (fun (_, a, _) (_, b, _) -> compare b a)

let opcode_counts t = t.opcodes
let total_instrs t = Hashtbl.fold (fun _ r acc -> acc + !r) t.self 0
let n_samples t = t.n_samples
let sample_period t = t.sample_period

let write_files t ~base ~name =
  let strip s suffix =
    if Filename.check_suffix s suffix then Filename.chop_suffix s suffix else s
  in
  let base = strip base ".folded" in
  let exact = base ^ ".folded" in
  let samples = base ^ ".samples.folded" in
  let speedscope = base ^ ".speedscope.json" in
  Flamegraph.write_collapsed exact (folded t);
  Flamegraph.write_collapsed samples (sampled t);
  Flamegraph.write_speedscope speedscope ~name (folded t);
  [ exact; samples; speedscope ]
