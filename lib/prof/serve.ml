(* The live observability endpoint: a forked HTTP responder serving
   Prometheus /metrics and JSON /status for long campaign/parrun/sweep runs.

   Topology mirrors lib/exec's pool: the parent binds the listening socket
   (port 0 picks a free port, reported back via getsockname), forks, and
   keeps only the write end of a pipe. {!publish} pushes one {!Exec.Ipc}
   frame — {"metrics": <prometheus text>, "status": <json>} — per snapshot;
   the child selects over {listener, pipe}, keeps the latest snapshot, and
   answers each HTTP request from it. No threads, no shared state: the pipe
   is the only channel, and its EOF (parent exits or calls {!stop}) is the
   child's shutdown signal. The responder is read-only and single-request
   ("Connection: close"), which is all a Prometheus scraper needs. *)

module Json = Util.Json

type t = {
  port : int;
  pipe_wr : Unix.file_descr;
  child : int;
  mutable alive : bool;
}

let http_response ~status ~content_type body =
  Printf.sprintf
    "HTTP/1.1 %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: \
     close\r\n\r\n%s"
    status content_type (String.length body) body

let send_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then
      match Unix.write_substring fd s off (n - off) with
      | written -> go (off + written)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

(* Read request bytes until the header terminator (we ignore bodies — every
   endpoint is a GET) and answer from the latest snapshot. Any malformed or
   oversized request gets a terse error; a broken peer is just ignored. *)
let handle_conn conn ~metrics ~status =
  let buf = Buffer.create 512 in
  let chunk = Bytes.create 512 in
  let rec read_request () =
    if Buffer.length buf < 8192 then
      match Unix.read conn chunk 0 (Bytes.length chunk) with
      | 0 -> ()
      | n ->
          Buffer.add_subbytes buf chunk 0 n;
          let s = Buffer.contents buf in
          let have_headers =
            let rec scan i =
              i >= 0
              && (String.sub s i 4 = "\r\n\r\n" || scan (i - 1))
            in
            String.length s >= 4 && scan (String.length s - 4)
          in
          if not have_headers then read_request ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_request ()
  in
  (try read_request () with Unix.Unix_error _ -> ());
  let request = Buffer.contents buf in
  let path =
    match String.index_opt request '\n' with
    | None -> None
    | Some eol -> (
        let line = String.trim (String.sub request 0 eol) in
        match String.split_on_char ' ' line with
        | [ "GET"; path; _ ] -> Some path
        | _ -> None)
  in
  let response =
    match path with
    | Some "/metrics" ->
        http_response ~status:"200 OK"
          ~content_type:"text/plain; version=0.0.4; charset=utf-8" metrics
    | Some "/status" ->
        http_response ~status:"200 OK" ~content_type:"application/json"
          (status ^ "\n")
    | Some _ ->
        http_response ~status:"404 Not Found" ~content_type:"text/plain"
          "not found: endpoints are /metrics and /status\n"
    | None ->
        http_response ~status:"400 Bad Request" ~content_type:"text/plain"
          "bad request\n"
  in
  try send_all conn response with Unix.Unix_error _ -> ()

let responder ~sock ~pipe_rd =
  let metrics = ref "" in
  let status = ref (Json.to_string (Json.Obj [ ("state", Json.String "starting") ])) in
  let running = ref true in
  while !running do
    let ready, _, _ =
      try Unix.select [ pipe_rd; sock ] [] [] (-1.0)
      with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
    in
    (* Drain the pipe before accepting, so a request racing a publish sees
       the newer snapshot. *)
    if List.mem pipe_rd ready then begin
      match Exec.Ipc.read pipe_rd with
      | Exec.Ipc.Eof -> running := false
      | Exec.Ipc.Msg j ->
          (match Json.member "metrics" j with
          | Some (Json.String m) -> metrics := m
          | _ -> ());
          (match Json.member "status" j with
          | Some s -> status := Json.to_string s
          | None -> ())
      | exception Exec.Ipc.Protocol_error _ -> running := false
    end;
    if !running && List.mem sock ready then begin
      match Unix.accept sock with
      | conn, _ ->
          handle_conn conn ~metrics:!metrics ~status:!status;
          (try Unix.close conn with Unix.Unix_error _ -> ())
      | exception Unix.Unix_error _ -> ()
    end
  done

let start ?(host = "127.0.0.1") ~port () =
  if port < 0 || port > 65535 then invalid_arg "Serve.start: bad port";
  (* publish must get EPIPE as an exception, not a fatal signal, once the
     responder is gone *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  let ok =
    try
      Unix.setsockopt sock Unix.SO_REUSEADDR true;
      Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
      Unix.listen sock 16;
      true
    with e ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      raise e
  in
  ignore ok;
  let port =
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  let pipe_rd, pipe_wr = Unix.pipe () in
  match Unix.fork () with
  | 0 ->
      Unix.close pipe_wr;
      (try responder ~sock ~pipe_rd with _ -> ());
      Unix._exit 0
  | child ->
      Unix.close pipe_rd;
      Unix.close sock;
      { port; pipe_wr; child; alive = true }

let port t = t.port

let publish t ~metrics ~status =
  if t.alive then
    try
      Exec.Ipc.write t.pipe_wr
        (Json.Obj [ ("metrics", Json.String metrics); ("status", status) ])
    with
    | Unix.Unix_error (Unix.EPIPE, _, _) | Sys_error _ -> t.alive <- false

(* Close the pipe (the child's EOF) and reap it, escalating to SIGKILL if
   it fails to exit promptly — e.g. a leaked pipe dup in a forked worker
   keeping the read end open. *)
let stop t =
  if t.alive || t.child > 0 then begin
    t.alive <- false;
    (try Unix.close t.pipe_wr with Unix.Unix_error _ -> ());
    let deadline = Unix.gettimeofday () +. 2.0 in
    let rec reap () =
      match Unix.waitpid [ Unix.WNOHANG ] t.child with
      | 0, _ ->
          if Unix.gettimeofday () < deadline then begin
            Unix.sleepf 0.02;
            reap ()
          end
          else begin
            (try Unix.kill t.child Sys.sigkill with Unix.Unix_error _ -> ());
            ignore (try Unix.waitpid [] t.child with Unix.Unix_error _ -> (0, Unix.WEXITED 0))
          end
      | _ -> ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> reap ()
      | exception Unix.Unix_error (Unix.ECHILD, _, _) -> ()
    in
    reap ()
  end
