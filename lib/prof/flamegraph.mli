(** Flamegraph emitters over folded-stack data.

    A profile is [(folded key, weight)] pairs where the key is the guest
    stack root-first, ';'-joined (["main;kernel;kernel:loop0"]) and the
    weight is retired IR instructions (exact profile) or sample hits
    (sampling profile). Duplicate keys are merged and output is sorted by
    key, so both formats are byte-deterministic for a given multiset of
    entries. *)

(** Brendan Gregg collapsed format, one ["stack count\n"] line per key;
    weights [<= 0] are dropped. Feed to [flamegraph.pl] or speedscope. *)
val collapsed : (string * int) list -> string

(** Speedscope "sampled" profile (schema
    [https://www.speedscope.app/file-format-schema.json]); [unit] is
    ["none"] since weights count instructions, not time. *)
val speedscope : name:string -> (string * int) list -> Util.Json.t

val write_collapsed : string -> (string * int) list -> unit

val write_speedscope : string -> name:string -> (string * int) list -> unit
