(* Campaign.Runner — fault-tolerant campaign runner: execute a set of targets through the
   whole limit-study pipeline (compile -> prepare -> profile -> Figure-2/3
   config ladder) with per-task isolation. One crashed, diverging, or
   budget-exhausted program must never abort the campaign or throw away the
   profiles already collected: every failure is captured into a structured
   error taxonomy, every finished task is checkpointed as a JSONL line, and
   [resume] skips work a previous (possibly killed) run already paid for.
   With [repro_dir] set, every errored task additionally drops a
   self-contained repro bundle (Repro.Bundle) for offline replay/shrink. *)

module Json = Util.Json

(* supervision/chaos counters; the pool.* handles are the same registry
   entries Exec.Pool bumps — interned here for heartbeat reads *)
let c_ckpt_drops = Obs.Telemetry.counter "campaign.checkpoint_drops"
let c_degraded = Obs.Telemetry.counter "campaign.degraded_tasks"
let c_pool_timeouts = Obs.Telemetry.counter "pool.timeouts"
let c_pool_backoff_waits = Obs.Telemetry.counter "pool.backoff_waits"
let c_pool_breaker_trips = Obs.Telemetry.counter "pool.breaker_trips"

type error =
  | Compile_error of string
  | Verifier_error of string
  | Trap of Interp.Rvalue.trap_kind * string
  | Budget_exhausted of Interp.Rvalue.budget_kind
  | Crash of string
  | Worker_lost of string
      (* the forked worker executing the task died (signal, OOM kill, ...) *)
  | Task_timeout of string
      (* the pool's watchdog SIGKILLed the worker after the task outlived
         its per-task wall deadline *)

type executor = Serial | Forked of int

exception Interrupted

type score = { config : Loopa.Config.t; speedup : float; coverage_pct : float }

type status =
  | Completed of score list
  | Truncated of Interp.Rvalue.budget_kind * score list
      (* budget ran out mid-run: scores are over the executed prefix *)
  | Errored of error

type result = {
  target : string;
  status : status;
  attempts : int;
  clock : int; (* dynamic IR instructions the profiling run executed *)
  wall_s : float;
}

(* Clock taxonomy: [fuel]/[mem_limit]/[max_depth] are deterministic
   machine budgets; [wall_s] and [watchdog_s] are wall-clock
   (Unix.gettimeofday) — real elapsed time, not processor time.
   [wall_s] is cooperative (Interp.Machine polls its own deadline, so it
   cannot fire in a stalled process); [watchdog_s] is enforced from the
   parent by the pool's watchdog and works even on a SIGSTOP'd worker.
   Telemetry span durations, by contrast, stay on Sys.time (processor
   time) — see Obs.Telemetry. *)
type budgets = {
  fuel : int;
  mem_limit : int;
  max_depth : int;
  wall_s : float option; (* per-attempt wall-clock budget (cooperative) *)
  retries : int; (* extra attempts at reduced fuel after budget exhaustion *)
  watchdog_s : float option;
      (* per-task wall deadline enforced by the pool watchdog (Forked) *)
}

let default_budgets =
  {
    fuel = Loopa.Config.default_fuel;
    mem_limit = 1 lsl 26;
    max_depth = 10_000;
    wall_s = None;
    retries = 1;
    watchdog_s = None;
  }

(* a chaos plan containing stalls would hang a watchdog-less pool, so
   chaos runs get a deadline even when the caller did not set one *)
let chaos_default_watchdog_s = 5.0

(* deterministic: names the configured deadline, never the measured
   elapsed — identical across runs and across the Forked/Serial
   boundary *)
let timeout_cause deadline =
  Printf.sprintf "exceeded %gs per-task watchdog deadline" deadline

(* One campaign progress beat, emitted after every finished task. Counter
   deltas are since the previous beat (empty unless telemetry is enabled). *)
type heartbeat = {
  hb_done : int;
  hb_total : int;
  hb_elapsed_s : float;
  hb_tasks_per_s : float;
  hb_eta_s : float;
  hb_counters : (string * int) list;
  (* supervision visibility: cumulative over this campaign (from the
     pool.* telemetry counters, so populated only while telemetry is
     enabled) — a degraded run shows its distress while it happens *)
  hb_timeouts : int;
  hb_backoff_waits : int;
  hb_breaker_trips : int;
}

let heartbeat_line hb =
  let base =
    Printf.sprintf "[%d/%d] %.2f tasks/s, eta %.1fs" hb.hb_done hb.hb_total
      hb.hb_tasks_per_s hb.hb_eta_s
  in
  let supervision =
    List.filter
      (fun (_, v) -> v > 0)
      [
        ("timeouts", hb.hb_timeouts);
        ("backoff", hb.hb_backoff_waits);
        ("breaker", hb.hb_breaker_trips);
      ]
  in
  let base =
    match supervision with
    | [] -> base
    | l ->
        base ^ " | "
        ^ String.concat ", "
            (List.map (fun (k, v) -> Printf.sprintf "%s %d" k v) l)
  in
  (* keep the line readable: only the three largest counter movements *)
  let top =
    List.sort (fun (_, a) (_, b) -> compare (abs b) (abs a)) hb.hb_counters
    |> List.filteri (fun i _ -> i < 3)
  in
  match top with
  | [] -> base
  | l ->
      base ^ " | "
      ^ String.concat ", " (List.map (fun (k, v) -> Printf.sprintf "%s +%d" k v) l)

(* The same beat as a JSON object — the /status document the live
   observability endpoint serves. Full counter deltas, not the top-3 the
   log line keeps: a scraper filters for itself. *)
let heartbeat_json hb : Json.t =
  Json.Obj
    [
      ("done", Json.Int hb.hb_done);
      ("total", Json.Int hb.hb_total);
      ("elapsed_s", Json.Float hb.hb_elapsed_s);
      ("tasks_per_s", Json.Float hb.hb_tasks_per_s);
      ("eta_s", Json.Float hb.hb_eta_s);
      ("timeouts", Json.Int hb.hb_timeouts);
      ("backoff_waits", Json.Int hb.hb_backoff_waits);
      ("breaker_trips", Json.Int hb.hb_breaker_trips);
      ( "counters",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) hb.hb_counters) );
    ]

type summary = {
  results : result list; (* target order; resumed results included *)
  n_completed : int;
  n_truncated : int;
  n_errored : int;
  n_resumed : int; (* subset of the above restored from the checkpoint *)
  n_cached : int; (* subset served from the content-addressed result cache *)
  n_degraded : int;
      (* tasks finished serially in the parent after the pool gave up
         (circuit breaker open or respawn capacity exhausted) *)
  geomeans : (Loopa.Config.t * float) list;
      (* per config rung, over every task that produced scores *)
  failures : (string * int) list; (* error class -> count *)
}

(* ---- classification keys (stable: they name checkpoint fields) ---- *)

let trap_key = function
  | Interp.Rvalue.Div_by_zero -> "div-by-zero"
  | Interp.Rvalue.Out_of_bounds -> "out-of-bounds"
  | Interp.Rvalue.Negative_alloc -> "negative-alloc"

let trap_of_key = function
  | "div-by-zero" -> Some Interp.Rvalue.Div_by_zero
  | "out-of-bounds" -> Some Interp.Rvalue.Out_of_bounds
  | "negative-alloc" -> Some Interp.Rvalue.Negative_alloc
  | _ -> None

let budget_key = function
  | Interp.Rvalue.Fuel -> "fuel"
  | Interp.Rvalue.Call_depth -> "call-depth"
  | Interp.Rvalue.Heap -> "heap"
  | Interp.Rvalue.Wall -> "wall"

let budget_of_key = function
  | "fuel" -> Some Interp.Rvalue.Fuel
  | "call-depth" -> Some Interp.Rvalue.Call_depth
  | "heap" -> Some Interp.Rvalue.Heap
  | "wall" -> Some Interp.Rvalue.Wall
  | _ -> None

let error_class = function
  | Compile_error _ -> "compile-error"
  | Verifier_error _ -> "verifier-error"
  | Trap (k, _) -> "trap:" ^ trap_key k
  | Budget_exhausted k -> "budget:" ^ budget_key k
  | Crash _ -> "crash"
  | Worker_lost _ -> "worker-lost"
  | Task_timeout _ -> "task-timeout"

let error_to_string = function
  | Compile_error m -> "compile error: " ^ m
  | Verifier_error m -> "verifier error: " ^ m
  | Trap (k, m) -> Printf.sprintf "trap (%s): %s" (Interp.Rvalue.trap_kind_to_string k) m
  | Budget_exhausted k ->
      Printf.sprintf "%s budget exhausted before any useful work"
        (Interp.Rvalue.budget_kind_to_string k)
  | Crash m -> "crash: " ^ m
  | Worker_lost m -> "worker lost: " ^ m
  | Task_timeout m -> "task timeout: " ^ m

let status_class = function
  | Completed _ -> "completed"
  | Truncated _ -> "truncated"
  | Errored _ -> "error"

let status_to_string = function
  | Completed _ -> "completed"
  | Truncated (k, _) ->
      Printf.sprintf "truncated (%s)" (Interp.Rvalue.budget_kind_to_string k)
  | Errored e -> error_to_string e

(* ---- checkpoint codec ---- *)

let score_to_json s =
  Json.Obj
    [
      ("config", Json.String (Loopa.Config.name s.config));
      ("speedup", Json.Float s.speedup);
      ("coverage", Json.Float s.coverage_pct);
    ]

let error_to_json e =
  let base = [ ("class", Json.String (error_class e)) ] in
  Json.Obj
    (match e with
    | Compile_error m | Verifier_error m | Crash m | Worker_lost m
    | Task_timeout m ->
        base @ [ ("message", Json.String m) ]
    | Trap (_, m) -> base @ [ ("message", Json.String m) ]
    | Budget_exhausted _ -> base)

(* [telemetry] embeds a per-task span/counter snapshot
   (Obs.Export.snapshot_json) in the checkpoint line. The decoder ignores
   unknown fields, so lines with and without it mix freely under resume. *)
let result_to_json ?telemetry r =
  let scores s = ("scores", Json.List (List.map score_to_json s)) in
  Json.Obj
    ([
       ("target", Json.String r.target);
       ("status", Json.String (status_class r.status));
     ]
    @ (match r.status with
      | Completed s -> [ scores s ]
      | Truncated (k, s) -> [ ("budget", Json.String (budget_key k)); scores s ]
      | Errored e -> [ ("error", error_to_json e) ])
    @ [
        ("attempts", Json.Int r.attempts);
        ("clock", Json.Int r.clock);
        ("wall_s", Json.Float r.wall_s);
      ]
    @ match telemetry with Some t -> [ ("telemetry", t) ] | None -> [])

let score_of_json j =
  match
    ( Option.bind (Json.member "config" j) Json.to_str,
      Option.bind (Json.member "speedup" j) Json.to_float,
      Option.bind (Json.member "coverage" j) Json.to_float )
  with
  | Some c, Some s, Some cov -> (
      match Loopa.Config.of_string c with
      | config -> Some { config; speedup = s; coverage_pct = cov }
      | exception Loopa.Config.Bad_config _ -> None)
  | _ -> None

let error_of_json j =
  let msg =
    Option.value ~default:"" (Option.bind (Json.member "message" j) Json.to_str)
  in
  match Option.bind (Json.member "class" j) Json.to_str with
  | Some "compile-error" -> Some (Compile_error msg)
  | Some "verifier-error" -> Some (Verifier_error msg)
  | Some "crash" -> Some (Crash msg)
  | Some "worker-lost" -> Some (Worker_lost msg)
  | Some "task-timeout" -> Some (Task_timeout msg)
  | Some cls when String.length cls > 5 && String.sub cls 0 5 = "trap:" ->
      Option.map
        (fun k -> Trap (k, msg))
        (trap_of_key (String.sub cls 5 (String.length cls - 5)))
  | Some cls when String.length cls > 7 && String.sub cls 0 7 = "budget:" ->
      Option.map
        (fun k -> Budget_exhausted k)
        (budget_of_key (String.sub cls 7 (String.length cls - 7)))
  | _ -> None

let result_of_json j : (result, string) Stdlib.result =
  let str k = Option.bind (Json.member k j) Json.to_str in
  let scores () =
    match Option.bind (Json.member "scores" j) Json.to_list with
    | Some l -> Ok (List.filter_map score_of_json l)
    | None -> Error "missing scores"
  in
  let ( let* ) = Result.bind in
  let* target = Option.to_result ~none:"missing target" (str "target") in
  let* status =
    match str "status" with
    | Some "completed" ->
        let* s = scores () in
        Ok (Completed s)
    | Some "truncated" ->
        let* s = scores () in
        let* k =
          Option.to_result ~none:"bad budget kind"
            (Option.bind (str "budget") budget_of_key)
        in
        Ok (Truncated (k, s))
    | Some "error" ->
        Option.to_result ~none:"bad error"
          (Option.map
             (fun e -> Errored e)
             (Option.bind (Json.member "error" j) error_of_json))
    | _ -> Error "missing status"
  in
  let int_field k d =
    Option.value ~default:d (Option.bind (Json.member k j) Json.to_int)
  in
  let wall_s =
    Option.value ~default:0.0 (Option.bind (Json.member "wall_s" j) Json.to_float)
  in
  Ok { target; status; attempts = int_field "attempts" 1; clock = int_field "clock" 0; wall_s }

(* Load the per-target results of an existing checkpoint; damage is never
   fatal. Instead of per-line log spam, one salvage summary is reported:
   lines kept, malformed lines skipped, and whether a torn tail (a final
   fragment without its newline — the signature of a hard kill mid-write)
   was dropped, so a resume after a crash is auditable at a glance. *)
let load_checkpoint ~log path : (string, result) Hashtbl.t =
  let tbl = Hashtbl.create 64 in
  if Sys.file_exists path then begin
    let raw = In_channel.with_open_bin path In_channel.input_all in
    let len = String.length raw in
    let complete_tail = len = 0 || raw.[len - 1] = '\n' in
    let segments = String.split_on_char '\n' raw in
    let last_idx = List.length segments - 1 in
    let kept = ref 0 and malformed = ref 0 and torn = ref false in
    List.iteri
      (fun idx line ->
        (* the segment after the last newline is the torn tail candidate;
           with a complete tail it is the empty string and is skipped *)
        let is_tail = idx = last_idx && not complete_tail in
        if String.trim line <> "" then
          match Option.bind (Result.to_option (Json.of_string line))
                  (fun j -> Result.to_option (result_of_json j))
          with
          | Some r ->
              incr kept;
              Hashtbl.replace tbl r.target r
          | None -> if is_tail then torn := true else incr malformed)
      segments;
    if !malformed > 0 || !torn then
      log
        (Printf.sprintf "checkpoint %s salvage: %d line(s) kept%s%s" path !kept
           (if !malformed > 0 then
              Printf.sprintf ", %d malformed skipped" !malformed
            else "")
           (if !torn then ", torn tail dropped" else ""))
    else log (Printf.sprintf "checkpoint %s: %d line(s) kept" path !kept)
  end;
  tbl

(* ---- one isolated task ---- *)

let eval_scores configs (profile : Loopa.Profile.profile) : score list =
  List.filter_map
    (fun config ->
      match Loopa.Config.validate config with
      | Error _ -> None
      | Ok _ ->
          let r = Loopa.Evaluate.evaluate profile config in
          Some
            {
              config;
              speedup = r.Loopa.Evaluate.speedup;
              coverage_pct = r.Loopa.Evaluate.coverage_pct;
            })
    configs

(* Map an Execute-stage classified failure back onto the checkpoint
   taxonomy: traps keep their kind (parsed from the fingerprint class,
   which [Driver.trap_failure] built from [Driver.trap_key]); everything
   else is a crash whose message the failure already carries. *)
let error_of_exec_failure (f : Loopa.Driver.failure) : error =
  let cls = Loopa.Driver.fingerprint_class f.Loopa.Driver.fingerprint in
  let trap =
    List.find_opt
      (fun k -> cls = "trap:" ^ Loopa.Driver.trap_key k)
      [
        Interp.Rvalue.Div_by_zero;
        Interp.Rvalue.Out_of_bounds;
        Interp.Rvalue.Negative_alloc;
      ]
  in
  match trap with
  | Some k -> Trap (k, f.Loopa.Driver.message)
  | None -> Crash f.Loopa.Driver.message

(* Run the whole pipeline once under the given fuel. Every exception is
   captured here: nothing a single program does may escape into the
   campaign loop. Alongside the taxonomy status, an errored attempt also
   yields the classified {!Loopa.Driver.failure} — built with the same
   constructors Repro.Pipeline uses, so a bundle stamped with this
   fingerprint replays to an identical one. *)
let attempt ?hotspot ~budgets ~configs ~faults ~fuel src :
    status * int * Loopa.Driver.failure option =
  let errored st f = (Errored st, 0, Some f) in
  match Frontend.compile src with
  | Error e ->
      errored
        (Compile_error (Frontend.error_to_string e))
        (Loopa.Driver.compile_failure e)
  | exception Ir.Verifier.Invalid_ir msg ->
      errored (Crash (Printexc.to_string (Ir.Verifier.Invalid_ir msg)))
        (Loopa.Driver.verifier_failure ~stage:Loopa.Driver.Verify msg)
  | exception e ->
      errored (Crash (Printexc.to_string e))
        (Loopa.Driver.crash_failure ~stage:Loopa.Driver.Compile e)
  | Ok m -> (
      match Loopa.Driver.prepare m with
      | exception Ir.Verifier.Invalid_ir msg ->
          errored (Verifier_error msg)
            (Loopa.Driver.verifier_failure ~stage:Loopa.Driver.Prepare msg)
      | exception Stack_overflow ->
          errored
            (Crash "stack overflow during preparation")
            (Loopa.Driver.crash_failure ~stage:Loopa.Driver.Prepare Stack_overflow)
      | exception e ->
          errored (Crash (Printexc.to_string e))
            (Loopa.Driver.crash_failure ~stage:Loopa.Driver.Prepare e)
      | ms -> (
          (* wall_s is a wall-clock budget: the deadline stamp must be on
             the same clock Interp.Machine polls (Unix.gettimeofday) *)
          let deadline =
            Option.map (fun w -> Unix.gettimeofday () +. w) budgets.wall_s
          in
          match
            Loopa.Driver.profile_result ~fuel ~mem_limit:budgets.mem_limit
              ~max_depth:budgets.max_depth ?deadline ~faults ?hotspot ms
          with
          | exception e ->
              errored (Crash (Printexc.to_string e))
                (Loopa.Driver.crash_failure ~stage:Loopa.Driver.Execute e)
          | Error f -> (Errored (error_of_exec_failure f), 0, Some f)
          | Ok profile -> (
              let clock = profile.Loopa.Profile.total_cost in
              match eval_scores configs profile with
              | exception e ->
                  ( Errored (Crash ("evaluation: " ^ Printexc.to_string e)),
                    clock,
                    Some (Loopa.Driver.crash_failure ~stage:Loopa.Driver.Evaluate e)
                  )
              | scores ->
                  if not profile.Loopa.Profile.truncated then
                    (Completed scores, clock, None)
                  else
                    let kind =
                      match profile.Loopa.Profile.outcome.Interp.Machine.stop with
                      | Interp.Machine.Truncated k -> k
                      | Interp.Machine.Completed -> Interp.Rvalue.Fuel
                    in
                    (* a prefix with zero executed instructions carries no
                       information: that is genuine budget exhaustion *)
                    if clock = 0 then
                      ( Errored (Budget_exhausted kind),
                        0,
                        Some (Loopa.Driver.budget_failure kind) )
                    else (Truncated (kind, scores), clock, None))))

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    Sys.mkdir dir 0o755
  end

let sanitize_name name =
  String.map
    (function ('a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '-' | '_') as c -> c | _ -> '_')
    name

(* The classified failure of the attempt whose status the task kept, paired
   with the fuel that attempt ran under — exactly what a repro bundle must
   record to replay deterministically. *)
let run_task ?prof_dir ~budgets ~configs ~faults target src :
    result * (Loopa.Driver.failure * int) option =
  let t0 = Unix.gettimeofday () in
  (* the hotspot profiler rides the full-fuel attempt only: the retry runs
     at reduced fuel, and a flamegraph of the longest executed prefix is
     the informative one *)
  let hotspot = Option.map (fun _ -> Prof.Hotspot.create ()) prof_dir in
  let st1, clock1, f1 =
    attempt ?hotspot ~budgets ~configs ~faults ~fuel:budgets.fuel src
  in
  (match (prof_dir, hotspot) with
  | Some dir, Some h -> (
      try
        mkdir_p dir;
        ignore
          (Prof.Hotspot.write_files h
             ~base:(Filename.concat dir (sanitize_name target))
             ~name:target)
      with Sys_error _ | Unix.Unix_error _ -> ())
  | _ -> ());
  let budget_exhausted =
    match st1 with
    | Truncated _ | Errored (Budget_exhausted _) -> true
    | Completed _ | Errored _ -> false
  in
  let at_full = Option.map (fun f -> (f, budgets.fuel)) f1 in
  let status, clock, attempts, failure =
    if budget_exhausted && budgets.retries > 0 then
      (* One retry at reduced fuel: if the first attempt died on a
         nondeterministic budget (wall clock) the program may genuinely fit
         the smaller deterministic budget and complete; otherwise keep
         whichever attempt executed the longer prefix. *)
      let reduced = max 1_000 (budgets.fuel / 4) in
      match attempt ~budgets ~configs ~faults ~fuel:reduced src with
      | (Completed _ as st), clock, f ->
          (st, clock, 2, Option.map (fun x -> (x, reduced)) f)
      | st, clock, f when clock > clock1 ->
          (st, clock, 2, Option.map (fun x -> (x, reduced)) f)
      | _ -> (st1, clock1, 2, at_full)
    else (st1, clock1, 1, at_full)
  in
  ({ target; status; attempts; clock; wall_s = Unix.gettimeofday () -. t0 }, failure)

(* ---- the campaign ---- *)

let geomeans_of configs results =
  List.filter_map
    (fun config ->
      let speedups =
        List.filter_map
          (fun r ->
            match r.status with
            | Completed scores | Truncated (_, scores) ->
                List.find_map
                  (fun s -> if s.config = config then Some s.speedup else None)
                  scores
            | Errored _ -> None)
          results
      in
      match speedups with
      | [] -> None
      | l -> Some (config, Report.Stats.geomean l))
    configs

let failure_breakdown results =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun r ->
      match r.status with
      | Errored e ->
          let k = error_class e in
          Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k))
      | Completed _ | Truncated _ -> ())
    results;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* ---- repro-bundle emission ---- *)

(* Drop a self-contained bundle for an errored task: the source, the
   budgets and fault plan of the exact attempt that failed, and its
   fingerprint. [repro replay] on the file re-runs this deterministically. *)
let emit_bundle ~dir ~budgets ~configs ~faults target src
    ((f : Loopa.Driver.failure), fuel) : string =
  mkdir_p dir;
  let b =
    Repro.Bundle.make ~target ~source:src ~stage:f.Loopa.Driver.stage
      ~fingerprint:f.Loopa.Driver.fingerprint ~message:f.Loopa.Driver.message
      ~configs ~fuel ~mem_limit:budgets.mem_limit ~max_depth:budgets.max_depth
      ~faults ()
  in
  let path = Filename.concat dir (sanitize_name target ^ ".repro.json") in
  Repro.Bundle.save path b;
  path

(* ---- worker wire codec (Forked executor) ----

   A worker ships back its full task outcome in one frame: the checkpoint
   result object ("r", written by the parent byte-for-byte so parallel
   checkpoints match serial ones), the classified failure for repro-bundle
   emission ("f"), and — when telemetry is on — the raw spans and counter
   deltas of the task ("spans"/"ctr") for the parent to absorb. *)

let failure_to_wire ((f : Loopa.Driver.failure), fuel) =
  Json.Obj
    [
      ("stage", Json.String (Loopa.Driver.stage_name f.Loopa.Driver.stage));
      ("fp", Json.String f.Loopa.Driver.fingerprint);
      ("msg", Json.String f.Loopa.Driver.message);
      ("fuel", Json.Int fuel);
    ]

let failure_of_wire j : (Loopa.Driver.failure * int) option =
  match
    ( Option.bind
        (Option.bind (Json.member "stage" j) Json.to_str)
        Loopa.Driver.stage_of_name,
      Option.bind (Json.member "fp" j) Json.to_str,
      Option.bind (Json.member "msg" j) Json.to_str )
  with
  | Some stage, Some fingerprint, Some message ->
      Some
        ( { Loopa.Driver.stage; fingerprint; message },
          Option.value ~default:0
            (Option.bind (Json.member "fuel" j) Json.to_int) )
  | _ -> None

(* One checkpoint line, built whole and written with a single buffered
   [output_string] + flush: a crash or interrupt between fragments can
   never leave an unparseable JSONL tail for --resume to trip on. *)
let write_line oc j =
  output_string oc (Json.to_string j ^ "\n");
  flush oc

(* What the parent remembers about a finished parallel task until its turn
   in the re-sequenced checkpoint comes up. *)
type entry = {
  er : result;
  eline : Json.t; (* the full checkpoint line, telemetry included *)
  efail : (Loopa.Driver.failure * int) option;
}

(* The whole isolated task as a wire frame — the worker body shared by
   local forked workers and remote TCP workers: run it, then ship the
   result (plus the failure detail and a telemetry snapshot when
   enabled) back as one JSON object. *)
let task_to_wire ?prof_dir ?(faults = []) ?(on_task_start = fun _ -> ())
    ~budgets ~configs target src =
  on_task_start target;
  let tmark = Obs.Telemetry.mark () in
  let r, failure =
    Obs.Telemetry.with_span "campaign.task"
      ~attrs:[ ("target", target) ]
      (fun () -> run_task ?prof_dir ~budgets ~configs ~faults target src)
  in
  let tele =
    if Obs.Telemetry.enabled () then
      let spans, ctrs = Obs.Telemetry.since tmark in
      [
        ("spans", Json.List (List.map Obs.Export.span_to_json spans));
        ("ctr", Json.Obj (List.map (fun (c, v) -> (c, Json.Int v)) ctrs));
      ]
    else []
  in
  Json.Obj
    ([ ("r", result_to_json r) ]
    @ (match failure with
      | Some fw -> [ ("f", failure_to_wire fw) ]
      | None -> [])
    @ tele)

(* ---- remote workers ----

   A remote worker knows nothing when it dials in; the coordinator sends
   one campaign-init frame carrying the budgets and the config ladder,
   and from then on the pool's task payloads are self-contained
   {k; target; src} objects, so the worker needs no shared memory with
   the coordinator (the fork pool's trick of capturing sources in the
   work closure does not survive a machine boundary). *)

let remote_init_json ~(budgets : budgets) ~configs =
  Json.Obj
    ([
       ("op", Json.String "campaign-init");
       ("fuel", Json.Int budgets.fuel);
       ("mem_limit", Json.Int budgets.mem_limit);
       ("max_depth", Json.Int budgets.max_depth);
       ("retries", Json.Int budgets.retries);
       ("telemetry", Json.Bool (Obs.Telemetry.enabled ()));
       ( "configs",
         Json.List
           (List.map (fun c -> Json.String (Loopa.Config.name c)) configs) );
     ]
    @ match budgets.wall_s with
      | Some w -> [ ("wall_s", Json.Float w) ]
      | None -> [])

let remote_work_of_init j : (Json.t -> Json.t, string) Stdlib.result =
  match Json.member "op" j with
  | Some (Json.String "campaign-init") -> (
      let geti k d =
        Option.value ~default:d (Option.bind (Json.member k j) Json.to_int)
      in
      let budgets =
        {
          fuel = geti "fuel" default_budgets.fuel;
          mem_limit = geti "mem_limit" default_budgets.mem_limit;
          max_depth = geti "max_depth" default_budgets.max_depth;
          wall_s = Option.bind (Json.member "wall_s" j) Json.to_float;
          retries = geti "retries" default_budgets.retries;
          watchdog_s = None (* enforced coordinator-side by the pool *);
        }
      in
      let config_names =
        match Json.member "configs" j with
        | Some (Json.List l) -> List.filter_map Json.to_str l
        | _ -> []
      in
      match
        List.map Loopa.Config.of_string config_names
      with
      | configs ->
          if Json.member "telemetry" j = Some (Json.Bool true) then
            Obs.Telemetry.enable ();
          Ok
            (fun payload ->
              match
                ( Option.bind (Json.member "target" payload) Json.to_str,
                  Option.bind (Json.member "src" payload) Json.to_str )
              with
              | Some target, Some src ->
                  task_to_wire ~budgets ~configs target src
              | _ ->
                  failwith "remote task payload missing target/src")
      | exception Loopa.Config.Bad_config m ->
          Error ("campaign-init carries a bad config: " ^ m))
  | _ -> Error "expected a campaign-init frame"

let run ?(budgets = default_budgets) ?(configs = Loopa.Config.figure_ladder)
    ?checkpoint ?(resume = false) ?(faults_of = fun _ -> []) ?repro_dir
    ?prof_dir ?(log = fun _ -> ()) ?heartbeat ?(executor = Serial)
    ?(on_task_start = fun (_ : string) -> ()) ?chaos ?(breaker_threshold = 5)
    ?cache_find ?cache_store ?(remotes = [])
    (targets : (string * string) list) : summary =
  let done_before =
    match checkpoint with
    | Some path when resume -> load_checkpoint ~log path
    | Some _ | None -> Hashtbl.create 1
  in
  let oc =
    Option.map
      (fun path ->
        (* append under --resume so completed work is never discarded;
           otherwise start the checkpoint over *)
        if resume then begin
          (* a hard kill mid-write can leave a torn final fragment with no
             newline; cut it back to the last whole line, or the first
             appended line would concatenate onto the fragment and be
             unreadable on the next resume *)
          (if Sys.file_exists path then
             let raw = In_channel.with_open_bin path In_channel.input_all in
             let len = String.length raw in
             if len > 0 && raw.[len - 1] <> '\n' then
               let keep =
                 match String.rindex_opt raw '\n' with
                 | Some i -> i + 1
                 | None -> 0
               in
               try Unix.truncate path keep with Unix.Unix_error _ -> ());
          open_out_gen [ Open_creat; Open_append; Open_wronly ] 0o644 path
        end
        else open_out path)
      checkpoint
  in
  (* A SIGINT/SIGTERM only raises a flag; both executors poll it at task
     granularity, flush what is already decided, and raise {!Interrupted}
     — the checkpoint is always left whole-line-parseable. *)
  let interrupted = ref false in
  let note _ = interrupted := true in
  let old_int = Sys.signal Sys.sigint (Sys.Signal_handle note) in
  let old_term = Sys.signal Sys.sigterm (Sys.Signal_handle note) in
  Fun.protect
    ~finally:(fun () ->
      ignore (Sys.signal Sys.sigint old_int);
      ignore (Sys.signal Sys.sigterm old_term);
      (* crash-safe finalization: force the checkpoint to stable storage
         before closing — campaign end, interrupt-flush, and exception
         unwinds all funnel through here *)
      Option.iter
        (fun oc ->
          flush oc;
          try Unix.fsync (Unix.descr_of_out_channel oc)
          with Unix.Unix_error _ | Sys_error _ -> ())
        oc;
      Option.iter close_out oc)
    (fun () ->
      let n_resumed = ref 0 in
      let n_degraded = ref 0 in
      let t0 = Unix.gettimeofday () in
      let total = List.length targets in
      let n_done = ref 0 in
      let beat_mark = ref (Obs.Telemetry.mark ()) in
      (* pool.* counters are process-cumulative; baseline them so the
         heartbeat reports this campaign's supervision activity only *)
      let base_timeouts = Obs.Telemetry.value c_pool_timeouts in
      let base_backoff = Obs.Telemetry.value c_pool_backoff_waits in
      let base_breaker = Obs.Telemetry.value c_pool_breaker_trips in
      let beat () =
        incr n_done;
        match heartbeat with
        | None -> ()
        | Some emit ->
            let elapsed = Unix.gettimeofday () -. t0 in
            let rate = if elapsed > 0.0 then float_of_int !n_done /. elapsed else 0.0 in
            let _, deltas = Obs.Telemetry.since !beat_mark in
            beat_mark := Obs.Telemetry.mark ();
            emit
              {
                hb_done = !n_done;
                hb_total = total;
                hb_elapsed_s = elapsed;
                hb_tasks_per_s = rate;
                hb_eta_s =
                  (if rate > 0.0 then float_of_int (total - !n_done) /. rate
                   else 0.0);
                hb_counters = deltas;
                hb_timeouts = Obs.Telemetry.value c_pool_timeouts - base_timeouts;
                hb_backoff_waits =
                  Obs.Telemetry.value c_pool_backoff_waits - base_backoff;
                hb_breaker_trips =
                  Obs.Telemetry.value c_pool_breaker_trips - base_breaker;
              }
      in
      (* a chaos plan with Stall_self faults hangs a watchdog-less pool,
         so chaos runs always get a deadline *)
      let watchdog_s =
        match budgets.watchdog_s with
        | Some _ as w -> w
        | None ->
            if Option.is_some chaos then Some chaos_default_watchdog_s else None
      in
      (* Chaos injection point for the checkpoint stream: the k-th write
         attempt may fail with a simulated EIO/ENOSPC. The response is
         supervision, not death: drop the line, log it, count it — the
         task's result stays in the summary and --resume re-runs it. *)
      let write_attempt = ref 0 in
      let write_line_checked oc j =
        let k = !write_attempt in
        incr write_attempt;
        match Option.bind chaos (fun p -> Exec.Chaos.ckpt_fault p k) with
        | Some f ->
            Obs.Telemetry.incr c_ckpt_drops;
            log
              (Printf.sprintf
                 "checkpoint write #%d failed (injected %s): line dropped, \
                  resume will re-run its task"
                 k
                 (Exec.Chaos.ckpt_fault_name f))
        | None -> write_line oc j
      in
      let lost_result target cause =
        {
          target;
          status = Errored (Worker_lost cause);
          attempts = 1;
          clock = 0;
          wall_s = 0.0;
        }
      in
      (* A scheduled lethal chaos fault, realized without forking: when a
         task with a planned kill/stall/torn/corrupt runs outside the
         pool (Serial executor, or the degraded tail after the pool gave
         up), record the outcome the pool would have delivered — same
         class, byte-identical cause — so checkpoints are deterministic
         across the Forked/Serial boundary. [k] is the task's index in
         the fresh (non-resumed) task order, the pool's task array. *)
      let simulated_result target k =
        match Option.bind chaos (fun p -> Exec.Chaos.task_fault p k) with
        | None -> None
        | Some fault -> (
            let status =
              match fault with
              | Exec.Chaos.Stall_self ->
                  let d =
                    Option.value ~default:chaos_default_watchdog_s watchdog_s
                  in
                  Some (Errored (Task_timeout (timeout_cause d)))
              | _ ->
                  Option.map
                    (fun cause -> Errored (Worker_lost cause))
                    (Exec.Chaos.simulated_lost_cause fault)
            in
            match status with
            | None -> None
            | Some status ->
                Some { target; status; attempts = 1; clock = 0; wall_s = 0.0 })
      in
      let emit_repro target src faults failure =
        match (repro_dir, failure) with
        | Some dir, Some f -> (
            match emit_bundle ~dir ~budgets ~configs ~faults target src f with
            | path -> log (Printf.sprintf "%-24s repro bundle: %s" "" path)
            | exception Sys_error m ->
                log (Printf.sprintf "%-24s repro bundle failed: %s" "" m))
        | _ -> ()
      in
      (* Cache prefetch: consult the content-addressed result cache for
         every fresh (non-resumed) target — in target order, before any
         execution — so hits land in the checkpoint exactly where a
         fresh run would have written them. A hit behaves like a resumed
         result from here on: both executors skip it, and it does not
         consume an index in the fresh task order chaos plans key on.
         Only the find is delegated; a throwing cache is treated as a
         miss because caching must never be able to fail a campaign. *)
      let cached_tbl : (string, result) Hashtbl.t = Hashtbl.create 8 in
      let n_cached = ref 0 in
      (match cache_find with
      | None -> ()
      | Some find ->
          List.iter
            (fun (target, _) ->
              if not (Hashtbl.mem done_before target) then
                match (try find target with _ -> None) with
                | None -> ()
                | Some (r : result) ->
                    Hashtbl.replace cached_tbl target r;
                    incr n_cached;
                    Option.iter
                      (fun oc -> write_line_checked oc (result_to_json r))
                      oc;
                    log
                      (Printf.sprintf "%-24s cached: %s" target
                         (status_to_string r.status));
                    beat ())
            targets);
      let maybe_store (r : result) =
        match cache_store with
        | None -> ()
        | Some store -> (
            match r.status with
            | Completed _ | Truncated _ -> (
                try store r.target r
                with _ -> log (Printf.sprintf "%-24s cache store failed" r.target))
            | Errored _ -> ())
      in
      let run_serial () =
        let fresh_idx = ref 0 in
        List.map
          (fun (target, src) ->
            match Hashtbl.find_opt done_before target with
            | Some r ->
                incr n_resumed;
                log (Printf.sprintf "%-24s resumed: %s" target (status_to_string r.status));
                beat ();
                r
            | None when Hashtbl.mem cached_tbl target ->
                (* checkpointed, logged and beaten during the prefetch *)
                Hashtbl.find cached_tbl target
            | None -> (
                if !interrupted then raise Interrupted;
                let k = !fresh_idx in
                incr fresh_idx;
                match simulated_result target k with
                | Some r ->
                    Option.iter
                      (fun oc -> write_line_checked oc (result_to_json r))
                      oc;
                    log
                      (Printf.sprintf "%-24s %s" target
                         (status_to_string r.status));
                    beat ();
                    r
                | None ->
                    on_task_start target;
                    let faults = faults_of target in
                    let tmark = Obs.Telemetry.mark () in
                    let r, failure =
                      Obs.Telemetry.with_span "campaign.task"
                        ~attrs:[ ("target", target) ]
                        (fun () ->
                          run_task ?prof_dir ~budgets ~configs ~faults target
                            src)
                    in
                    let telemetry =
                      if Obs.Telemetry.enabled () then
                        let spans, counters = Obs.Telemetry.since tmark in
                        Some (Obs.Export.snapshot_json ~spans ~counters)
                      else None
                    in
                    Option.iter
                      (fun oc -> write_line_checked oc (result_to_json ?telemetry r))
                      oc;
                    log (Printf.sprintf "%-24s %s" target (status_to_string r.status));
                    (match r.status with
                    | Errored _ -> emit_repro target src faults failure
                    | Completed _ | Truncated _ -> ());
                    maybe_store r;
                    beat ();
                    r))
          targets
      in
      let run_forked jobs =
        (* resumed results surface first (they cost nothing), then the
           fresh targets fan out over the pool in target order *)
        List.iter
          (fun (target, _) ->
            match Hashtbl.find_opt done_before target with
            | Some r ->
                incr n_resumed;
                log
                  (Printf.sprintf "%-24s resumed: %s" target
                     (status_to_string r.status));
                beat ()
            | None -> ())
          targets;
        let fresh_arr =
          Array.of_list
            (List.filter
               (fun (t, _) ->
                 not (Hashtbl.mem done_before t || Hashtbl.mem cached_tbl t))
               targets)
        in
        let n = Array.length fresh_arr in
        let entries : entry option array = Array.make n None in
        let written = Array.make n false in
        (* the worker body: the whole isolated task, exactly as serial.
           Local forked workers inherit fresh_arr across the fork and
           only need the index; remote payloads are self-contained
           {k; target; src} objects, decoded by the remote's own work
           function ({!remote_work_of_init}) — this one resolves through
           fresh_arr either way. *)
        let work payload =
          let k =
            match payload with
            | Json.Int k -> k
            | j ->
                Option.value ~default:0
                  (Option.bind (Json.member "k" j) Json.to_int)
          in
          let target, src = fresh_arr.(k) in
          task_to_wire ?prof_dir ~faults:(faults_of target) ~on_task_start
            ~budgets ~configs target src
        in
        let on_complete k outcome =
          let target, _ = fresh_arr.(k) in
          let entry =
            match outcome with
            | Exec.Pool.Lost cause ->
                let r = lost_result target cause in
                { er = r; eline = result_to_json r; efail = None }
            | Exec.Pool.Timed_out d ->
                let r =
                  {
                    target;
                    status = Errored (Task_timeout (timeout_cause d));
                    attempts = 1;
                    clock = 0;
                    wall_s = 0.0;
                  }
                in
                { er = r; eline = result_to_json r; efail = None }
            | Exec.Pool.Done wire ->
                let r_json =
                  Option.value ~default:Json.Null (Json.member "r" wire)
                in
                let spans =
                  match Json.member "spans" wire with
                  | Some (Json.List l) -> List.filter_map Obs.Export.span_of_json l
                  | _ -> []
                in
                let counters =
                  match Json.member "ctr" wire with
                  | Some (Json.Obj kvs) ->
                      List.filter_map
                        (fun (c, v) -> Option.map (fun i -> (c, i)) (Json.to_int v))
                        kvs
                  | _ -> []
                in
                Obs.Telemetry.absorb ~spans ~counters;
                let telemetry =
                  if Obs.Telemetry.enabled () then
                    Some (Obs.Export.snapshot_json ~spans ~counters)
                  else None
                in
                let eline =
                  match (r_json, telemetry) with
                  | Json.Obj fields, Some t ->
                      Json.Obj (fields @ [ ("telemetry", t) ])
                  | j, _ -> j
                in
                let er =
                  match result_of_json r_json with
                  | Ok r -> r
                  | Error m ->
                      lost_result target ("undecodable worker result: " ^ m)
                in
                { er; eline; efail = Option.bind (Json.member "f" wire) failure_of_wire }
          in
          entries.(k) <- Some entry;
          log (Printf.sprintf "%-24s %s" target (status_to_string entry.er.status));
          maybe_store entry.er;
          beat ()
        in
        let on_ordered k _ =
          match entries.(k) with
          | None -> ()
          | Some e ->
              Option.iter (fun oc -> write_line_checked oc e.eline) oc;
              written.(k) <- true;
              let target, src = fresh_arr.(k) in
              (match e.er.status with
              | Errored _ -> emit_repro target src (faults_of target) e.efail
              | Completed _ | Truncated _ -> ())
        in
        (* salvage every decided-but-unwritten result (ascending task
           order): resume can then skip it even though the strict
           checkpoint order was cut short *)
        let flush_unwritten () =
          Array.iteri
            (fun k e ->
              match e with
              | Some e when not written.(k) ->
                  Option.iter (fun oc -> write_line_checked oc e.eline) oc;
                  written.(k) <- true
              | _ -> ())
            entries
        in
        let breaker = Exec.Breaker.create ~threshold:breaker_threshold () in
        let backoff =
          (* seeded from the chaos plan when there is one so the whole
             supervised schedule replays from the campaign's single seed *)
          Exec.Backoff.create
            ~seed:(Option.value ~default:0 (Option.bind chaos Exec.Chaos.seed))
            ()
        in
        (* remote workers get the campaign parameters once, up front;
           after the init frame the socket speaks plain pool frames *)
        List.iter
          (fun fd -> Exec.Ipc.write fd (remote_init_json ~budgets ~configs))
          remotes;
        let payloads =
          if remotes = [] then Array.init n (fun i -> Json.Int i)
          else
            Array.init n (fun i ->
                let target, src = fresh_arr.(i) in
                Json.Obj
                  [
                    ("k", Json.Int i);
                    ("target", Json.String target);
                    ("src", Json.String src);
                  ])
        in
        let _outcomes, stats =
          Exec.Pool.run ~jobs
            ~worker_init:(fun () -> Obs.Telemetry.reset ())
            ~epilogue:(fun () ->
              if Obs.Telemetry.enabled () then Obs.Telemetry.wire_histograms ()
              else Json.Null)
            ~on_epilogue:Obs.Telemetry.absorb_histograms ~on_complete
            ~on_ordered
            ~should_stop:(fun () -> !interrupted)
            ?task_deadline_s:watchdog_s ~backoff ~breaker ?chaos ~remotes ~work
            payloads
        in
        if !interrupted then begin
          flush_unwritten ();
          raise Interrupted
        end;
        (* Degraded completion: the pool returned early (circuit breaker
           open, or respawn capacity exhausted) with undecided tasks —
           the old behavior was to drain them as Lost. Instead, flip
           Forked -> Serial mid-run: finish every hole in the parent,
           realizing scheduled chaos losses deterministically, then
           extend the checkpoint in task order. *)
        let holes =
          Array.fold_left
            (fun acc e -> if Option.is_none e then acc + 1 else acc)
            0 entries
        in
        if holes > 0 then begin
          (match stats.Exec.Pool.gave_up with
          | Some cause ->
              log
                (Printf.sprintf
                   "pool gave up (%s): degrading Forked -> Serial for %d \
                    remaining task(s)"
                   cause holes)
          | None ->
              log
                (Printf.sprintf
                   "pool left %d task(s) undecided: finishing serially" holes));
          Array.iteri
            (fun k e ->
              if Option.is_none e then begin
                if !interrupted then begin
                  flush_unwritten ();
                  raise Interrupted
                end;
                let target, src = fresh_arr.(k) in
                incr n_degraded;
                Obs.Telemetry.incr c_degraded;
                let entry =
                  match simulated_result target k with
                  | Some r -> { er = r; eline = result_to_json r; efail = None }
                  | None ->
                      on_task_start target;
                      let faults = faults_of target in
                      let tmark = Obs.Telemetry.mark () in
                      let r, failure =
                        Obs.Telemetry.with_span "campaign.task"
                          ~attrs:[ ("target", target) ]
                          (fun () ->
                            run_task ~budgets ~configs ~faults target src)
                      in
                      let telemetry =
                        if Obs.Telemetry.enabled () then
                          let spans, counters = Obs.Telemetry.since tmark in
                          Some (Obs.Export.snapshot_json ~spans ~counters)
                        else None
                      in
                      { er = r; eline = result_to_json ?telemetry r; efail = failure }
                in
                entries.(k) <- Some entry;
                log
                  (Printf.sprintf "%-24s %s (degraded)" target
                     (status_to_string entry.er.status));
                maybe_store entry.er;
                beat ()
              end)
            entries;
          (* extend the checkpoint in task order past where on_ordered
             stopped, with repro bundles for the errored stragglers *)
          Array.iteri
            (fun k e ->
              match e with
              | Some e when not written.(k) ->
                  Option.iter (fun oc -> write_line_checked oc e.eline) oc;
                  written.(k) <- true;
                  let target, src = fresh_arr.(k) in
                  (match e.er.status with
                  | Errored _ -> emit_repro target src (faults_of target) e.efail
                  | Completed _ | Truncated _ -> ())
              | _ -> ())
            entries
        end;
        let cursor = ref 0 in
        List.map
          (fun (target, _) ->
            match Hashtbl.find_opt done_before target with
            | Some r -> r
            | None when Hashtbl.mem cached_tbl target ->
                Hashtbl.find cached_tbl target
            | None -> (
                let e = entries.(!cursor) in
                incr cursor;
                match e with
                | Some e -> e.er
                | None -> lost_result target "task never ran"))
          targets
      in
      let results =
        match executor with
        (* remote workers imply the pool: a remote-augmented campaign
           runs forked even at --jobs 1 *)
        | Forked jobs when (jobs > 1 || remotes <> []) && targets <> [] ->
            run_forked jobs
        | Serial | Forked _ -> run_serial ()
      in
      if !interrupted then raise Interrupted;
      let count p = List.length (List.filter p results) in
      {
        results;
        n_completed = count (fun r -> match r.status with Completed _ -> true | _ -> false);
        n_truncated = count (fun r -> match r.status with Truncated _ -> true | _ -> false);
        n_errored = count (fun r -> match r.status with Errored _ -> true | _ -> false);
        n_resumed = !n_resumed;
        n_cached = !n_cached;
        n_degraded = !n_degraded;
        geomeans = geomeans_of configs results;
        failures = failure_breakdown results;
      })

let summary_to_json (s : summary) =
  Json.Obj
    [
      ("completed", Json.Int s.n_completed);
      ("truncated", Json.Int s.n_truncated);
      ("errored", Json.Int s.n_errored);
      ("resumed", Json.Int s.n_resumed);
      ("cached", Json.Int s.n_cached);
      ("degraded", Json.Int s.n_degraded);
      ( "geomeans",
        Json.List
          (List.map
             (fun (c, g) ->
               Json.Obj
                 [
                   ("config", Json.String (Loopa.Config.name c));
                   ("geomean_speedup", Json.Float g);
                 ])
             s.geomeans) );
      ( "failures",
        Json.Obj (List.map (fun (k, n) -> (k, Json.Int n)) s.failures) );
      ("results", Json.List (List.map result_to_json s.results));
    ]
