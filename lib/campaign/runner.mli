(** Fault-tolerant campaign runner: the whole limit-study pipeline over a
    set of targets with per-task isolation, structured error taxonomy,
    per-task budgets, one automatic retry at reduced fuel for
    budget-exhausted tasks, a JSONL checkpoint of finished tasks, and
    resumption that skips already-checkpointed work. *)

(** Why a task failed. Budget exhaustion normally yields a usable truncated
    result ({!status}); [Budget_exhausted] marks the degenerate case where
    the budget ran out before any instruction executed. *)
type error =
  | Compile_error of string
  | Verifier_error of string
  | Trap of Interp.Rvalue.trap_kind * string
  | Budget_exhausted of Interp.Rvalue.budget_kind
  | Crash of string  (** anything else, printed — the catch-all of the taxonomy *)
  | Worker_lost of string
      (** under [Forked _]: the forked worker executing the task died
          (killed by a signal, OOM, ...) — the task is recorded, never
          retried, and resume skips it *)

(** How tasks are executed: [Serial] in-process (the reference semantics),
    or [Forked jobs] across a {!Exec.Pool} of forked workers with dynamic
    work-stealing. [Forked j] with [j <= 1] degrades to [Serial]. *)
type executor = Serial | Forked of int

(** Raised by {!run} after a SIGINT/SIGTERM: every already-decided result
    has been flushed to the checkpoint (whole lines only), so a later
    [~resume:true] run continues where the interrupt landed. *)
exception Interrupted

(** One configuration rung evaluated against a task's profile. *)
type score = { config : Loopa.Config.t; speedup : float; coverage_pct : float }

type status =
  | Completed of score list
  | Truncated of Interp.Rvalue.budget_kind * score list
      (** a budget ran out mid-run: scores are over the executed prefix *)
  | Errored of error

type result = {
  target : string;
  status : status;
  attempts : int;
  clock : int;  (** dynamic IR instructions the profiling run executed *)
  wall_s : float;
}

type budgets = {
  fuel : int;
  mem_limit : int;
  max_depth : int;
  wall_s : float option;  (** per-attempt processor-time budget *)
  retries : int;  (** extra attempts at reduced fuel after budget exhaustion *)
}

(** {!Loopa.Config.default_fuel}, 2^26 words, depth 10k, no wall budget,
    one retry. *)
val default_budgets : budgets

(** One campaign progress beat, emitted after every finished (or resumed)
    task. [hb_counters] holds the Obs.Telemetry counter deltas since the
    previous beat — empty unless telemetry is enabled. *)
type heartbeat = {
  hb_done : int;
  hb_total : int;
  hb_elapsed_s : float;
  hb_tasks_per_s : float;
  hb_eta_s : float;
  hb_counters : (string * int) list;
}

(** Render a beat as a one-line progress report:
    ["[3/10] 1.25 tasks/s, eta 5.6s | interp.instructions +1234, ..."]
    (the three largest counter movements only). *)
val heartbeat_line : heartbeat -> string

type summary = {
  results : result list;  (** target order; resumed results included *)
  n_completed : int;
  n_truncated : int;
  n_errored : int;
  n_resumed : int;  (** subset of the above restored from the checkpoint *)
  geomeans : (Loopa.Config.t * float) list;
      (** per config rung, over every task that produced scores *)
  failures : (string * int) list;  (** error class -> count *)
}

val error_class : error -> string

val error_to_string : error -> string

(** ["completed"], ["truncated"] or ["error"] — the checkpoint status tag. *)
val status_class : status -> string

val status_to_string : status -> string

(** Checkpoint-line codec (JSONL: one result object per line). Decoding
    tolerates and reports malformed lines rather than failing the run;
    unknown fields are ignored, which is what lets [telemetry] (a per-task
    {!Obs.Export.snapshot_json} span/counter snapshot) ride along in
    checkpoint lines without breaking older readers. *)
val result_to_json : ?telemetry:Util.Json.t -> result -> Util.Json.t

val result_of_json : Util.Json.t -> (result, string) Stdlib.result

(** Run a campaign over [(target name, Looplang source)] pairs under the
    Figure-2/3 configuration ladder (or [configs]). Every task failure is
    captured into {!error}; nothing a program does can abort the campaign.
    [checkpoint] appends one JSONL line per finished task (truncated at
    start unless [resume]); [resume] reloads it first and skips targets
    already recorded. [faults_of] supplies a test-only injection plan per
    target ({!Interp.Machine.fault_plan}). [repro_dir] makes every errored
    task drop a self-contained {!Repro.Bundle} (named
    [<target>.repro.json]) there, replayable and shrinkable offline with
    the [repro] CLI subcommands. [log] receives one progress line per
    task. [heartbeat] receives one {!heartbeat} beat per finished task;
    with telemetry enabled, every task also runs inside a
    ["campaign.task"] span and its span/counter snapshot is embedded in
    the checkpoint line.

    [executor] selects serial or forked-pool execution. Under
    [Forked jobs], tasks run across [jobs] worker processes but the
    checkpoint stays byte-identical to a serial run (modulo wall-clock and
    telemetry timing fields): results are re-sequenced into task order and
    written by the parent alone. Worker telemetry (spans, counter deltas,
    histograms) is absorbed into the parent registry so fleet-wide exports
    and heartbeats see one registry. A worker death costs exactly its
    in-flight task ({!Worker_lost}); the worker is respawned and the
    campaign continues.

    [on_task_start] runs in the executing process just before a task
    begins — a test hook (e.g. to kill the worker mid-task).

    While running, SIGINT/SIGTERM are caught: the runner finishes flushing
    decided results to the checkpoint and raises {!Interrupted}. *)
val run :
  ?budgets:budgets ->
  ?configs:Loopa.Config.t list ->
  ?checkpoint:string ->
  ?resume:bool ->
  ?faults_of:(string -> Interp.Machine.fault_plan) ->
  ?repro_dir:string ->
  ?log:(string -> unit) ->
  ?heartbeat:(heartbeat -> unit) ->
  ?executor:executor ->
  ?on_task_start:(string -> unit) ->
  (string * string) list ->
  summary

val summary_to_json : summary -> Util.Json.t
