(** Fault-tolerant campaign runner: the whole limit-study pipeline over a
    set of targets with per-task isolation, structured error taxonomy,
    per-task budgets, one automatic retry at reduced fuel for
    budget-exhausted tasks, a JSONL checkpoint of finished tasks, and
    resumption that skips already-checkpointed work. *)

(** Why a task failed. Budget exhaustion normally yields a usable truncated
    result ({!status}); [Budget_exhausted] marks the degenerate case where
    the budget ran out before any instruction executed. *)
type error =
  | Compile_error of string
  | Verifier_error of string
  | Trap of Interp.Rvalue.trap_kind * string
  | Budget_exhausted of Interp.Rvalue.budget_kind
  | Crash of string  (** anything else, printed — the catch-all of the taxonomy *)
  | Worker_lost of string
      (** under [Forked _]: the forked worker executing the task died
          (killed by a signal, OOM, ...) — the task is recorded, never
          retried, and resume skips it *)
  | Task_timeout of string
      (** under [Forked _] with a watchdog ([budgets.watchdog_s]): the
          task outlived its per-task wall deadline and the pool SIGKILLed
          its worker (the only remedy for a stalled — e.g. SIGSTOP'd —
          process). Rides the checkpoint codec like {!Worker_lost}, so
          resume skips it rather than re-running a known-hung task *)

(** How tasks are executed: [Serial] in-process (the reference semantics),
    or [Forked jobs] across a {!Exec.Pool} of forked workers with dynamic
    work-stealing. [Forked j] with [j <= 1] degrades to [Serial]. *)
type executor = Serial | Forked of int

(** Raised by {!run} after a SIGINT/SIGTERM: every already-decided result
    has been flushed to the checkpoint (whole lines only), so a later
    [~resume:true] run continues where the interrupt landed. *)
exception Interrupted

(** One configuration rung evaluated against a task's profile. *)
type score = { config : Loopa.Config.t; speedup : float; coverage_pct : float }

type status =
  | Completed of score list
  | Truncated of Interp.Rvalue.budget_kind * score list
      (** a budget ran out mid-run: scores are over the executed prefix *)
  | Errored of error

type result = {
  target : string;
  status : status;
  attempts : int;
  clock : int;  (** dynamic IR instructions the profiling run executed *)
  wall_s : float;
}

(** Clock taxonomy: [fuel], [mem_limit] and [max_depth] are deterministic
    machine budgets. [wall_s] and [watchdog_s] are {e wall-clock}
    ([Unix.gettimeofday]) budgets — real elapsed time, not processor
    time. [wall_s] is cooperative: {!Interp.Machine} polls the deadline
    between instructions, so it cannot fire in a worker that is stalled
    outside the interpreter (or SIGSTOP'd). [watchdog_s] is enforced
    from the parent by the pool's watchdog and therefore works on any
    hang, at the cost of killing the worker ({!Task_timeout}).
    Telemetry span durations remain on [Sys.time] (processor time) —
    see {!Obs.Telemetry.set_clock}. *)
type budgets = {
  fuel : int;
  mem_limit : int;
  max_depth : int;
  wall_s : float option;  (** per-attempt wall-clock budget (cooperative) *)
  retries : int;  (** extra attempts at reduced fuel after budget exhaustion *)
  watchdog_s : float option;
      (** per-task wall deadline enforced by the pool watchdog under
          [Forked _]; [None] disables the watchdog (unless a chaos plan
          forces a default — a stall fault without a watchdog would hang
          the pool) *)
}

(** {!Loopa.Config.default_fuel}, 2^26 words, depth 10k, no wall budget,
    one retry, no watchdog. *)
val default_budgets : budgets

(** One campaign progress beat, emitted after every finished (or resumed)
    task. [hb_counters] holds the Obs.Telemetry counter deltas since the
    previous beat — empty unless telemetry is enabled. *)
type heartbeat = {
  hb_done : int;
  hb_total : int;
  hb_elapsed_s : float;
  hb_tasks_per_s : float;
  hb_eta_s : float;
  hb_counters : (string * int) list;
  hb_timeouts : int;
      (** watchdog kills so far this campaign (from [pool.timeouts];
          populated while telemetry is enabled) *)
  hb_backoff_waits : int;  (** respawns delayed by the backoff ladder *)
  hb_breaker_trips : int;  (** circuit-breaker closed→open transitions *)
}

(** Render a beat as a one-line progress report:
    ["[3/10] 1.25 tasks/s, eta 5.6s | interp.instructions +1234, ..."]
    (the three largest counter movements only). Supervision activity —
    timeouts, backoff waits, breaker trips — is appended when non-zero,
    so a degraded run is visible while it happens. *)
val heartbeat_line : heartbeat -> string

(** The same beat as a JSON object (full counter deltas, not the top-3 of
    the log line) — the [/status] document the live observability endpoint
    ([Prof.Serve]) publishes per beat. *)
val heartbeat_json : heartbeat -> Util.Json.t

type summary = {
  results : result list;  (** target order; resumed results included *)
  n_completed : int;
  n_truncated : int;
  n_errored : int;
  n_resumed : int;  (** subset of the above restored from the checkpoint *)
  n_cached : int;
      (** subset served from the content-addressed result cache
          ([cache_find]) without executing *)
  n_degraded : int;
      (** tasks finished serially in the parent after the pool gave up
          (circuit breaker open or respawn capacity exhausted) *)
  geomeans : (Loopa.Config.t * float) list;
      (** per config rung, over every task that produced scores *)
  failures : (string * int) list;  (** error class -> count *)
}

val error_class : error -> string

val error_to_string : error -> string

(** ["completed"], ["truncated"] or ["error"] — the checkpoint status tag. *)
val status_class : status -> string

val status_to_string : status -> string

(** Checkpoint-line codec (JSONL: one result object per line). Decoding
    tolerates and reports malformed lines rather than failing the run;
    unknown fields are ignored, which is what lets [telemetry] (a per-task
    {!Obs.Export.snapshot_json} span/counter snapshot) ride along in
    checkpoint lines without breaking older readers. *)
val result_to_json : ?telemetry:Util.Json.t -> result -> Util.Json.t

val result_of_json : Util.Json.t -> (result, string) Stdlib.result

(** Run a campaign over [(target name, Looplang source)] pairs under the
    Figure-2/3 configuration ladder (or [configs]). Every task failure is
    captured into {!error}; nothing a program does can abort the campaign.
    [checkpoint] appends one JSONL line per finished task (truncated at
    start unless [resume]); [resume] reloads it first and skips targets
    already recorded. [faults_of] supplies a test-only injection plan per
    target ({!Interp.Machine.fault_plan}). [repro_dir] makes every errored
    task drop a self-contained {!Repro.Bundle} (named
    [<target>.repro.json]) there, replayable and shrinkable offline with
    the [repro] CLI subcommands. [log] receives one progress line per
    task. [prof_dir] attaches a {!Prof.Hotspot} profiler to every task's
    full-fuel attempt and drops [<target>.folded],
    [<target>.samples.folded] and [<target>.speedscope.json] there (the
    reduced-fuel retry is not profiled). [heartbeat] receives one
    {!heartbeat} beat per finished task;
    with telemetry enabled, every task also runs inside a
    ["campaign.task"] span and its span/counter snapshot is embedded in
    the checkpoint line.

    [executor] selects serial or forked-pool execution. Under
    [Forked jobs], tasks run across [jobs] worker processes but the
    checkpoint stays byte-identical to a serial run (modulo wall-clock and
    telemetry timing fields): results are re-sequenced into task order and
    written by the parent alone. Worker telemetry (spans, counter deltas,
    histograms) is absorbed into the parent registry so fleet-wide exports
    and heartbeats see one registry. A worker death costs exactly its
    in-flight task ({!Worker_lost}); the worker is respawned and the
    campaign continues.

    [on_task_start] runs in the executing process just before a task
    begins — a test hook (e.g. to kill the worker mid-task).

    Supervision. With [budgets.watchdog_s] set, the pool watchdog
    SIGKILLs any worker whose task outlives the deadline and records
    {!Task_timeout}. Worker respawns go through an exponential-backoff
    ladder, and [breaker_threshold] consecutive task failures
    (lost/timed-out) trip a circuit breaker: instead of burning the
    respawn budget, the pool returns early and the runner degrades
    Forked -> Serial {e mid-run}, finishing every remaining task
    in-process and extending the same checkpoint in task order
    ([summary.n_degraded] counts them). The same degradation handles
    respawn-capacity exhaustion, which previously drained pending tasks
    as [Worker_lost].

    [chaos] injects a deterministic fault schedule ({!Exec.Chaos.plan}):
    worker-side faults (self-kill, SIGSTOP stall, torn/corrupt/delayed
    result frames) keyed by campaign task index, and simulated
    EIO/ENOSPC on checkpoint writes keyed by write-attempt index (a
    dropped line is logged and re-run on resume). A chaos plan with no
    watchdog configured forces a default deadline so stall faults cannot
    hang the run. Under [Serial] (including degraded completion),
    scheduled lethal faults are {e simulated} — recorded with
    byte-identical cause strings — so checkpoints stay deterministic
    across executors and across same-seed runs.

    Checkpoint durability: on completion or interrupt the checkpoint is
    flushed and [fsync]ed before close; [resume] loading salvages a
    partially-written file, logging one summary line (lines kept /
    malformed skipped / torn tail dropped) and truncating a torn tail on
    disk so appended lines start on a whole-line boundary.

    Caching. [cache_find] is consulted once per fresh (non-resumed)
    target, in target order and before any execution; a hit is
    checkpointed immediately — so an all-hits warm run writes the same
    lines in the same order as a fresh run — counted in
    [summary.n_cached], and excluded from the fresh task order that
    chaos plans and the pool key on (exactly like a resumed result).
    [cache_store] receives every fresh [Completed]/[Truncated] result
    (never [Errored] ones — a lost worker or timeout must not poison
    the cache). Both hooks are failure-isolated: a throwing find is a
    miss, a throwing store is logged and ignored.

    Remote workers. [remotes] attaches connected TCP worker sockets
    ({!Exec.Remote}) to the pool. The runner sends each one a
    campaign-init frame ({!remote_init_json}) and ships self-contained
    [{k; target; src}] task payloads instead of bare indices; PR-7
    supervision (watchdog, backoff accounting, breaker, degraded-serial
    completion) applies to remote workers unchanged, with the socket
    shutdown standing in for SIGKILL. With remotes attached, [Forked j]
    runs the pool even at [j <= 1] (zero local workers is a valid
    shape). [faults_of], [prof_dir] and [on_task_start] do not cross
    the machine boundary — remote tasks run with no injected faults, no
    profiler and no start hook.

    While running, SIGINT/SIGTERM are caught: the runner finishes flushing
    decided results to the checkpoint and raises {!Interrupted}. *)
val run :
  ?budgets:budgets ->
  ?configs:Loopa.Config.t list ->
  ?checkpoint:string ->
  ?resume:bool ->
  ?faults_of:(string -> Interp.Machine.fault_plan) ->
  ?repro_dir:string ->
  ?prof_dir:string ->
  ?log:(string -> unit) ->
  ?heartbeat:(heartbeat -> unit) ->
  ?executor:executor ->
  ?on_task_start:(string -> unit) ->
  ?chaos:Exec.Chaos.plan ->
  ?breaker_threshold:int ->
  ?cache_find:(string -> result option) ->
  ?cache_store:(string -> result -> unit) ->
  ?remotes:Unix.file_descr list ->
  (string * string) list ->
  summary

(** {2 Remote-worker wire helpers}

    Used by the [worker --connect] subcommand (via [Service.Worker]) on
    the far side of a TCP link, and by tests. *)

(** The one-shot parameter frame the runner sends each remote before
    handing its socket to the pool: budgets, the config ladder (by
    name — {!Loopa.Config.name} round-trips through [of_string]), and
    whether telemetry is enabled coordinator-side. *)
val remote_init_json :
  budgets:budgets -> configs:Loopa.Config.t list -> Util.Json.t

(** Build the pool [work] function a remote worker runs from a received
    campaign-init frame: decodes the budgets/configs, enables telemetry
    when the coordinator has it on, and returns a closure that executes
    [{k; target; src}] task payloads through the same isolated-task body
    as local workers. [Error] on a frame that is not a campaign-init or
    carries an unparseable config. *)
val remote_work_of_init :
  Util.Json.t -> (Util.Json.t -> Util.Json.t, string) Stdlib.result

val summary_to_json : summary -> Util.Json.t
