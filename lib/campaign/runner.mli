(** Fault-tolerant campaign runner: the whole limit-study pipeline over a
    set of targets with per-task isolation, structured error taxonomy,
    per-task budgets, one automatic retry at reduced fuel for
    budget-exhausted tasks, a JSONL checkpoint of finished tasks, and
    resumption that skips already-checkpointed work. *)

(** Why a task failed. Budget exhaustion normally yields a usable truncated
    result ({!status}); [Budget_exhausted] marks the degenerate case where
    the budget ran out before any instruction executed. *)
type error =
  | Compile_error of string
  | Verifier_error of string
  | Trap of Interp.Rvalue.trap_kind * string
  | Budget_exhausted of Interp.Rvalue.budget_kind
  | Crash of string  (** anything else, printed — the catch-all of the taxonomy *)

(** One configuration rung evaluated against a task's profile. *)
type score = { config : Loopa.Config.t; speedup : float; coverage_pct : float }

type status =
  | Completed of score list
  | Truncated of Interp.Rvalue.budget_kind * score list
      (** a budget ran out mid-run: scores are over the executed prefix *)
  | Errored of error

type result = {
  target : string;
  status : status;
  attempts : int;
  clock : int;  (** dynamic IR instructions the profiling run executed *)
  wall_s : float;
}

type budgets = {
  fuel : int;
  mem_limit : int;
  max_depth : int;
  wall_s : float option;  (** per-attempt processor-time budget *)
  retries : int;  (** extra attempts at reduced fuel after budget exhaustion *)
}

(** {!Loopa.Config.default_fuel}, 2^26 words, depth 10k, no wall budget,
    one retry. *)
val default_budgets : budgets

type summary = {
  results : result list;  (** target order; resumed results included *)
  n_completed : int;
  n_truncated : int;
  n_errored : int;
  n_resumed : int;  (** subset of the above restored from the checkpoint *)
  geomeans : (Loopa.Config.t * float) list;
      (** per config rung, over every task that produced scores *)
  failures : (string * int) list;  (** error class -> count *)
}

val error_class : error -> string

val error_to_string : error -> string

(** ["completed"], ["truncated"] or ["error"] — the checkpoint status tag. *)
val status_class : status -> string

val status_to_string : status -> string

(** Checkpoint-line codec (JSONL: one result object per line). Decoding
    tolerates and reports malformed lines rather than failing the run. *)
val result_to_json : result -> Util.Json.t

val result_of_json : Util.Json.t -> (result, string) Stdlib.result

(** Run a campaign over [(target name, Looplang source)] pairs under the
    Figure-2/3 configuration ladder (or [configs]). Every task failure is
    captured into {!error}; nothing a program does can abort the campaign.
    [checkpoint] appends one JSONL line per finished task (truncated at
    start unless [resume]); [resume] reloads it first and skips targets
    already recorded. [faults_of] supplies a test-only injection plan per
    target ({!Interp.Machine.fault_plan}). [repro_dir] makes every errored
    task drop a self-contained {!Repro.Bundle} (named
    [<target>.repro.json]) there, replayable and shrinkable offline with
    the [repro] CLI subcommands. [log] receives one progress line per
    task. *)
val run :
  ?budgets:budgets ->
  ?configs:Loopa.Config.t list ->
  ?checkpoint:string ->
  ?resume:bool ->
  ?faults_of:(string -> Interp.Machine.fault_plan) ->
  ?repro_dir:string ->
  ?log:(string -> unit) ->
  (string * string) list ->
  summary

val summary_to_json : summary -> Util.Json.t
