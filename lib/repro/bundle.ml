(* A repro bundle: everything needed to re-run one pipeline failure
   deterministically, long after the campaign or fuzz run that hit it.
   Self-contained by design — the Looplang source is embedded, the budgets
   and flags are explicit, and the fault-injection plan (if any) is
   recorded — so a bundle saved on one machine replays bit-identically on
   another. Serialized with the shared Util.Json codec; the format is
   versioned so future sessions can migrate old bundles instead of
   rejecting them. *)

module Json = Util.Json

type t = {
  version : int;
  target : string; (* benchmark name / file the failure came from *)
  stage : Loopa.Driver.stage;
  fingerprint : string; (* see Driver: class['@'qualifier] *)
  message : string; (* human-readable failure text *)
  source : string; (* the full Looplang program *)
  configs : Loopa.Config.t list; (* evaluated configurations *)
  fuel : int;
  mem_limit : int option;
  max_depth : int option;
  static_prune : bool;
  crosscheck : bool; (* run the static-vs-dynamic soundness check *)
  check_invariants : bool; (* run the fuzz invariants (opt diff, speedups) *)
  faults : Interp.Machine.fault_plan;
}

let current_version = 1

let make ?(configs = []) ?(fuel = Loopa.Config.default_fuel) ?mem_limit
    ?max_depth ?(static_prune = true) ?(crosscheck = false)
    ?(check_invariants = false) ?(faults = []) ~target ~stage ~fingerprint
    ~message ~source () =
  {
    version = current_version;
    target;
    stage;
    fingerprint;
    message;
    source;
    configs;
    fuel;
    mem_limit;
    max_depth;
    static_prune;
    crosscheck;
    check_invariants;
    faults;
  }

(* ---- fault codec (keys match the CLI's --inject spelling) ---- *)

let fault_key = function
  | Interp.Machine.Inject_div_by_zero -> "div0"
  | Interp.Machine.Inject_oob -> "oob"
  | Interp.Machine.Inject_fuel_out -> "fuel"
  | Interp.Machine.Inject_depth_out -> "depth"

let fault_of_key = function
  | "div0" -> Some Interp.Machine.Inject_div_by_zero
  | "oob" -> Some Interp.Machine.Inject_oob
  | "fuel" -> Some Interp.Machine.Inject_fuel_out
  | "depth" -> Some Interp.Machine.Inject_depth_out
  | _ -> None

(* ---- JSON codec ---- *)

let to_json (b : t) : Json.t =
  let opt_int k = function None -> [] | Some v -> [ (k, Json.Int v) ] in
  Json.Obj
    ([
       ("version", Json.Int b.version);
       ("target", Json.String b.target);
       ("stage", Json.String (Loopa.Driver.stage_name b.stage));
       ("fingerprint", Json.String b.fingerprint);
       ("message", Json.String b.message);
       ("source", Json.String b.source);
       ( "configs",
         Json.List
           (List.map (fun c -> Json.String (Loopa.Config.name c)) b.configs) );
       ("fuel", Json.Int b.fuel);
     ]
    @ opt_int "mem_limit" b.mem_limit
    @ opt_int "max_depth" b.max_depth
    @ [
        ("static_prune", Json.Bool b.static_prune);
        ("crosscheck", Json.Bool b.crosscheck);
        ("check_invariants", Json.Bool b.check_invariants);
        ( "faults",
          Json.List
            (List.map
               (fun (clock, f) ->
                 Json.Obj
                   [
                     ("clock", Json.Int clock);
                     ("kind", Json.String (fault_key f));
                   ])
               b.faults) );
      ])

let to_string b = Json.to_string (to_json b)

let of_json (j : Json.t) : (t, string) result =
  let ( let* ) = Result.bind in
  let str k = Option.bind (Json.member k j) Json.to_str in
  let int k = Option.bind (Json.member k j) Json.to_int in
  let bool k d =
    match Json.member k j with Some (Json.Bool b) -> b | _ -> d
  in
  let req name = Option.to_result ~none:("missing " ^ name) in
  let* version = req "version" (int "version") in
  let* () =
    if version > current_version then
      Error (Printf.sprintf "bundle version %d is newer than this tool" version)
    else Ok ()
  in
  let* target = req "target" (str "target") in
  let* stage =
    req "stage" (Option.bind (str "stage") Loopa.Driver.stage_of_name)
  in
  let* fingerprint = req "fingerprint" (str "fingerprint") in
  let* source = req "source" (str "source") in
  let message = Option.value ~default:"" (str "message") in
  let* configs =
    match Json.member "configs" j with
    | None -> Ok []
    | Some l -> (
        match Json.to_list l with
        | None -> Error "configs is not a list"
        | Some items ->
            List.fold_left
              (fun acc item ->
                let* acc = acc in
                match Json.to_str item with
                | None -> Error "config name is not a string"
                | Some name -> (
                    match Loopa.Config.of_string name with
                    | c -> Ok (c :: acc)
                    | exception Loopa.Config.Bad_config m ->
                        Error ("bad config: " ^ m)))
              (Ok []) items
            |> Result.map List.rev)
  in
  let* faults =
    match Json.member "faults" j with
    | None -> Ok []
    | Some l -> (
        match Json.to_list l with
        | None -> Error "faults is not a list"
        | Some items ->
            List.fold_left
              (fun acc item ->
                let* acc = acc in
                let clock = Option.bind (Json.member "clock" item) Json.to_int in
                let kind =
                  Option.bind
                    (Option.bind (Json.member "kind" item) Json.to_str)
                    fault_of_key
                in
                match (clock, kind) with
                | Some c, Some k -> Ok ((c, k) :: acc)
                | _ -> Error "bad fault entry")
              (Ok []) items
            |> Result.map List.rev)
  in
  Ok
    {
      version;
      target;
      stage;
      fingerprint;
      message;
      source;
      configs;
      fuel = Option.value ~default:Loopa.Config.default_fuel (int "fuel");
      mem_limit = int "mem_limit";
      max_depth = int "max_depth";
      static_prune = bool "static_prune" true;
      crosscheck = bool "crosscheck" false;
      check_invariants = bool "check_invariants" false;
      faults;
    }

let of_string s =
  match Json.of_string s with
  | Error m -> Error ("not JSON: " ^ m)
  | Ok j -> of_json j

(* ---- file IO ---- *)

let save path (b : t) =
  Out_channel.with_open_text path (fun oc ->
      output_string oc (to_string b);
      output_char oc '\n')

let load path : (t, string) result =
  match In_channel.with_open_text path In_channel.input_all with
  | s -> of_string s
  | exception Sys_error m -> Error m
