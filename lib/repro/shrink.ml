(* Automatic test-case reduction: given a bundle that reproduces, find a
   smaller program with the same failure *class* (fingerprint up to the
   first '@' — positions and clocks legitimately move when code is
   deleted).

   The main path is AST-level delta debugging: parse the source, enumerate
   single-step reductions (drop a function/global/statement, splice an
   if/loop body in place of the construct, drop an else branch or an
   initializer, hoist a subexpression, simplify a constant), print each
   candidate back to Looplang, re-run the whole pipeline on it, and keep
   the first candidate that still fails the same way — greedy first-fit,
   restarted from each accepted candidate. Every enumerated reduction is
   strictly smaller under (node count, constant magnitude), so the greedy
   loop is a terminating fixpoint.

   When the source does not parse (compile-error bundles), falls back to
   line-level reduction: repeatedly delete any single line whose removal
   preserves the failure class. *)

open Frontend.Ast

(* ---- single-step AST reductions ---- *)

(* Every way to rewrite one element of a list (keeping the rest). *)
let rec edits (f : 'a -> 'a list) = function
  | [] -> []
  | x :: rest ->
      List.map (fun x' -> x' :: rest) (f x)
      @ List.map (fun rest' -> x :: rest') (edits f rest)

(* Every way to drop one element of a list. *)
let rec drops = function
  | [] -> []
  | x :: rest -> rest :: List.map (fun rest' -> x :: rest') (drops rest)

let rec expr_variants (x : expr) : expr list =
  let mk k = { x with e = k } in
  (* hoist a subexpression over its parent: always fewer nodes; type
     mismatches are rejected by the re-compile in the keep predicate *)
  let hoists =
    match x.e with
    | Eint _ | Efloat _ | Ebool _ | Evar _ -> []
    | Ebin (_, a, b) | Eand (a, b) | Eor (a, b) | Eindex (a, b) -> [ a; b ]
    | Eun (_, a) | Elen a | Enew (_, a) -> [ a ]
    | Ecall (_, args) -> args
  in
  let consts =
    match x.e with
    | Eint 0L -> []
    | Eint v ->
        mk (Eint 0L)
        ::
        (if v = Int64.min_int || Int64.abs v > 1L then
           [ mk (Eint 1L); mk (Eint (Int64.div v 2L)) ]
         else [])
    | Efloat v when v <> 0.0 -> [ mk (Efloat 0.0) ]
    | _ -> []
  in
  let in_children =
    match x.e with
    | Eint _ | Efloat _ | Ebool _ | Evar _ -> []
    | Ebin (op, a, b) ->
        List.map (fun a' -> mk (Ebin (op, a', b))) (expr_variants a)
        @ List.map (fun b' -> mk (Ebin (op, a, b'))) (expr_variants b)
    | Eand (a, b) ->
        List.map (fun a' -> mk (Eand (a', b))) (expr_variants a)
        @ List.map (fun b' -> mk (Eand (a, b'))) (expr_variants b)
    | Eor (a, b) ->
        List.map (fun a' -> mk (Eor (a', b))) (expr_variants a)
        @ List.map (fun b' -> mk (Eor (a, b'))) (expr_variants b)
    | Eun (op, a) -> List.map (fun a' -> mk (Eun (op, a'))) (expr_variants a)
    | Ecall (name, args) ->
        List.map (fun args' -> mk (Ecall (name, args'))) (edits expr_variants args)
    | Eindex (a, i) ->
        List.map (fun a' -> mk (Eindex (a', i))) (expr_variants a)
        @ List.map (fun i' -> mk (Eindex (a, i'))) (expr_variants i)
    | Enew (t, n) -> List.map (fun n' -> mk (Enew (t, n'))) (expr_variants n)
    | Elen a -> List.map (fun a' -> mk (Elen a')) (expr_variants a)
  in
  hoists @ consts @ in_children

let rec stmt_variants (st : stmt) : stmt list =
  let mk k = { st with s = k } in
  let on_expr wrap e = List.map (fun e' -> mk (wrap e')) (expr_variants e) in
  match st.s with
  | Svar (n, t, Some init) ->
      mk (Svar (n, t, None)) :: on_expr (fun i -> Svar (n, t, Some i)) init
  | Svar (_, _, None) | Sbreak | Scontinue | Sreturn None -> []
  | Sassign (n, v) -> on_expr (fun v' -> Sassign (n, v')) v
  | Sstore (a, i, v) ->
      on_expr (fun a' -> Sstore (a', i, v)) a
      @ on_expr (fun i' -> Sstore (a, i', v)) i
      @ on_expr (fun v' -> Sstore (a, i, v')) v
  | Sexpr v -> on_expr (fun v' -> Sexpr v') v
  | Sreturn (Some v) ->
      mk (Sreturn None) :: on_expr (fun v' -> Sreturn (Some v')) v
  | Sif (c, t, e) ->
      (if e <> [] then [ mk (Sif (c, t, [])) ] else [])
      @ on_expr (fun c' -> Sif (c', t, e)) c
      @ List.map (fun t' -> mk (Sif (c, t', e))) (block_variants t)
      @ List.map (fun e' -> mk (Sif (c, t, e'))) (block_variants e)
  | Swhile (c, body) ->
      on_expr (fun c' -> Swhile (c', body)) c
      @ List.map (fun b' -> mk (Swhile (c, b'))) (block_variants body)
  | Sfor (init, cond, step, body) ->
      (* never drop the condition or the step: that manufactures infinite
         loops, which only waste the candidate's fuel budget *)
      (match init with
      | Some i ->
          mk (Sfor (None, cond, step, body))
          :: List.map (fun i' -> mk (Sfor (Some i', cond, step, body))) (stmt_variants i)
      | None -> [])
      @ (match cond with
        | Some c -> on_expr (fun c' -> Sfor (init, Some c', step, body)) c
        | None -> [])
      @ (match step with
        | Some s -> List.map (fun s' -> mk (Sfor (init, cond, Some s', body))) (stmt_variants s)
        | None -> [])
      @ List.map (fun b' -> mk (Sfor (init, cond, step, b'))) (block_variants body)

(* Block reductions lead with the big wins (drop a whole statement, splice
   a branch or loop body in place of its construct) before in-place
   rewrites, so the greedy scan removes code fastest. *)
and block_variants (stmts : stmt list) : stmt list list =
  match stmts with
  | [] -> []
  | s :: rest ->
      (rest
       :: (match s.s with
          | Sif (_, t, e) -> [ t @ rest; e @ rest ]
          | Swhile (_, body) | Sfor (_, _, _, body) -> [ body @ rest ]
          | _ -> []))
      @ List.map (fun s' -> s' :: rest) (stmt_variants s)
      @ List.map (fun rest' -> s :: rest') (block_variants rest)

let func_variants (f : func) : func list =
  List.map (fun body' -> { f with body = body' }) (block_variants f.body)

let global_variants (g : global) : global list =
  match g.ginit with
  | None -> []
  | Some init ->
      { g with ginit = None }
      :: List.map (fun i' -> { g with ginit = Some i' }) (expr_variants init)

let program_variants (p : program) : program list =
  List.map (fun fs -> { p with funcs = fs }) (drops p.funcs)
  @ List.map (fun gs -> { p with globals = gs }) (drops p.globals)
  @ List.map (fun fs -> { p with funcs = fs }) (edits func_variants p.funcs)
  @ List.map (fun gs -> { p with globals = gs }) (edits global_variants p.globals)

(* Greedy first-fit to fixpoint: restart from the first kept candidate. *)
let shrink_ast ~(keep : program -> bool) (p0 : program) : program * bool =
  let changed = ref false in
  let rec go p =
    match List.find_opt keep (program_variants p) with
    | Some p' ->
        changed := true;
        go p'
    | None -> p
  in
  let p = go p0 in
  (p, !changed)

(* ---- line-level fallback (source that does not parse) ---- *)

let shrink_lines ~(keep : string -> bool) (src : string) : string =
  let join lines = String.concat "\n" lines ^ "\n" in
  let rec go lines =
    let arr = Array.of_list lines in
    let candidate i =
      Array.to_list arr |> List.filteri (fun j _ -> j <> i)
    in
    let rec try_at i =
      if i >= Array.length arr then None
      else
        let cand = candidate i in
        if keep (join cand) then Some cand else try_at (i + 1)
    in
    match try_at 0 with Some lines' -> go lines' | None -> lines
  in
  let lines = String.split_on_char '\n' (String.trim src) in
  join (go lines)

(* ---- entry point ---- *)

type stats = {
  tried : int; (* pipeline re-runs spent on candidates *)
  accepted : int; (* candidates that kept the failure class *)
}

(* Shrink the bundle's program, preserving the failure class. Returns the
   minimized bundle — source replaced, stage/fingerprint/message refreshed
   from the last reproducing run — or an error when the bundle does not
   reproduce in the first place. Candidates execute under a per-candidate
   wall-clock deadline so a reduction that manufactures a slow program
   cannot stall the whole shrink. *)
let shrink ?(max_candidates = 5000) ?(candidate_wall_s = 2.0) (b : Bundle.t) :
    (Bundle.t * stats, string) result =
  match Pipeline.run b with
  | Ok () -> Error "bundle does not reproduce: the pipeline now succeeds"
  | Error f0
    when not
           (Loopa.Driver.same_fingerprint ~strict:false
              f0.Loopa.Driver.fingerprint b.Bundle.fingerprint) ->
      Error
        (Printf.sprintf "bundle does not reproduce: expected class %s, got %s"
           (Loopa.Driver.fingerprint_class b.Bundle.fingerprint)
           (Loopa.Driver.fingerprint_class f0.Loopa.Driver.fingerprint))
  | Error f0 ->
      let tried = ref 0 and accepted = ref 0 in
      let last = ref f0 in
      let keep_src src =
        !tried < max_candidates
        && begin
             incr tried;
             let deadline = Unix.gettimeofday () +. candidate_wall_s in
             match Pipeline.run ~deadline { b with Bundle.source = src } with
             | Ok () -> false
             | Error f ->
                 Loopa.Driver.same_fingerprint ~strict:false
                   f.Loopa.Driver.fingerprint b.Bundle.fingerprint
                 && begin
                      incr accepted;
                      last := f;
                      true
                    end
           end
      in
      let source =
        match Frontend.Parser.parse_program b.Bundle.source with
        | p ->
            let keep cand = keep_src (Frontend.Pp_ast.program_to_string cand) in
            let p', changed = shrink_ast ~keep p in
            if changed then Frontend.Pp_ast.program_to_string p'
            else b.Bundle.source
        | exception (Frontend.Parser.Parse_error _ | Frontend.Lexer.Lex_error _)
          ->
            shrink_lines ~keep:keep_src b.Bundle.source
      in
      let f = !last in
      Ok
        ( {
            b with
            Bundle.source;
            stage = f.Loopa.Driver.stage;
            fingerprint = f.Loopa.Driver.fingerprint;
            message = f.Loopa.Driver.message;
          },
          { tried = !tried; accepted = !accepted } )
