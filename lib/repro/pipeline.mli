(** Deterministic replay of a {!Bundle}: re-run the exact pipeline slice
    the bundle records (compile → prepare → profile → evaluate, plus the
    optional crosscheck / fuzz-invariant stages) and compare the failure
    fingerprint against the one stamped in the bundle. *)

(** Adapt a crosscheck violation into the {!Loopa.Driver.failure}
    taxonomy (stage [Evaluate], class ["crosscheck"]). *)
val crosscheck_failure : Loopa.Crosscheck.violation -> Loopa.Driver.failure

(** Adapt a fuzz-invariant violation (by invariant name + message) into
    the {!Loopa.Driver.failure} taxonomy. *)
val fuzz_failure : ?config:Loopa.Config.t -> string -> string -> Loopa.Driver.failure

(** Run the bundle's pipeline once. [Ok ()] means every recorded stage
    now succeeds. [deadline] (absolute [Unix.gettimeofday] stamp) bounds
    each execution inside the run — the shrinker uses it so one
    pathological candidate cannot stall the reduction; replay omits it so
    runs stay fully deterministic. *)
val run : ?deadline:float -> Bundle.t -> (unit, Loopa.Driver.failure) result

type verdict =
  | Reproduced  (** identical fingerprint *)
  | Vanished  (** the pipeline now succeeds *)
  | Changed of Loopa.Driver.failure  (** fails, but with another fingerprint *)

val verdict_to_string : verdict -> string

(** Replay the bundle and compare fingerprints ({!Loopa.Driver.same_fingerprint}). *)
val replay : Bundle.t -> verdict

(** Classify a source the way a bundle for it would: run the full
    pipeline and, on failure, return the bundle re-stamped with the
    observed stage/fingerprint/message. [None] means the pipeline
    succeeds. Used by bundle producers (fuzz, tests) to stamp a fresh
    bundle with its fingerprint. *)
val classify : Bundle.t -> Bundle.t option
