(** A repro bundle: everything needed to re-run one pipeline failure
    deterministically, long after the campaign or fuzz run that hit it.
    Self-contained by design — the Looplang source is embedded, the
    budgets and flags are explicit, and the fault-injection plan (if any)
    is recorded — so a bundle saved on one machine replays bit-identically
    on another. Serialized with the shared {!Util.Json} codec; the format
    is versioned so future sessions can migrate old bundles instead of
    rejecting them. *)

(** The record is deliberately concrete: consumers (the CLI, the
    shrinker, tests) pattern-match and functionally-update its fields. *)
type t = {
  version : int;
  target : string;  (** benchmark name / file the failure came from *)
  stage : Loopa.Driver.stage;
  fingerprint : string;  (** see {!Loopa.Driver}: [class\['@'qualifier\]] *)
  message : string;  (** human-readable failure text *)
  source : string;  (** the full Looplang program *)
  configs : Loopa.Config.t list;  (** evaluated configurations *)
  fuel : int;
  mem_limit : int option;
  max_depth : int option;
  static_prune : bool;
  crosscheck : bool;  (** run the static-vs-dynamic soundness check *)
  check_invariants : bool;
      (** run the fuzz invariants (opt differential, speedup sanity) *)
  faults : Interp.Machine.fault_plan;
}

(** Format version stamped into fresh bundles ({!make}). *)
val current_version : int

val make :
  ?configs:Loopa.Config.t list ->
  ?fuel:int ->
  ?mem_limit:int ->
  ?max_depth:int ->
  ?static_prune:bool ->
  ?crosscheck:bool ->
  ?check_invariants:bool ->
  ?faults:Interp.Machine.fault_plan ->
  target:string ->
  stage:Loopa.Driver.stage ->
  fingerprint:string ->
  message:string ->
  source:string ->
  unit ->
  t

(** Fault codec: keys match the CLI's [--inject] spelling
    (["div0"], ["oob"], ["fuel"], ["depth"]). *)
val fault_key : Interp.Machine.fault -> string

val fault_of_key : string -> Interp.Machine.fault option

val to_json : t -> Util.Json.t
val to_string : t -> string

(** Decoding is tolerant of unknown fields but strict about the fields it
    needs; a malformed document is an [Error], never an exception. *)
val of_json : Util.Json.t -> (t, string) result

val of_string : string -> (t, string) result

(** [save path b] writes the bundle as a single JSON document. *)
val save : string -> t -> unit

val load : string -> (t, string) result
