(* Deterministic re-execution of the pipeline a bundle describes. One entry
   point, [run], drives exactly the stages the bundle's flags select —
   compile, (fuzz-only) optimization differential, prepare, execute,
   crosscheck, evaluate — and turns every way they can fail into a
   classified Loopa.Driver.failure. Replay compares the resulting
   fingerprint strictly against the recorded one; the shrinker compares
   classes only. *)

let crosscheck_failure (v : Loopa.Crosscheck.violation) : Loopa.Driver.failure =
  {
    Loopa.Driver.stage = Loopa.Driver.Crosscheck;
    fingerprint =
      Printf.sprintf "crosscheck:%s:bb%d" v.Loopa.Crosscheck.fname
        v.Loopa.Crosscheck.header;
    message = Loopa.Crosscheck.violation_to_string v;
  }

(* Fingerprint class [fuzz:<invariant>]; the qualifier (when present) names
   the configuration, spaces flattened so the fingerprint stays one token. *)
let fuzz_failure ?config name message : Loopa.Driver.failure =
  let qualifier =
    match config with
    | None -> ""
    | Some c ->
        "@" ^ String.map (fun ch -> if ch = ' ' then '-' else ch) (Loopa.Config.name c)
  in
  {
    Loopa.Driver.stage = Loopa.Driver.Fuzz;
    fingerprint = Printf.sprintf "fuzz:%s%s" name qualifier;
    message;
  }

let ( let* ) = Result.bind

let compile (b : Bundle.t) : (Ir.Func.modul, Loopa.Driver.failure) result =
  match Frontend.compile b.Bundle.source with
  | Ok m -> Ok m
  | Error e -> Error (Loopa.Driver.compile_failure e)
  | exception Ir.Verifier.Invalid_ir msg ->
      Error (Loopa.Driver.verifier_failure ~stage:Loopa.Driver.Verify msg)
  | exception exn ->
      Error (Loopa.Driver.crash_failure ~stage:Loopa.Driver.Compile exn)

(* The fuzz differential: optimizing must preserve output and never increase
   cost. Compiles its own copies ([Driver.prepare] mutates modules). *)
let opt_differential ?deadline (b : Bundle.t) :
    (unit, Loopa.Driver.failure) result =
  let plain_run m =
    let machine = Interp.Machine.create ~fuel:b.Bundle.fuel ?deadline m in
    match Interp.Machine.run_main machine with
    | out -> Ok out
    | exception Interp.Rvalue.Trap (kind, msg) ->
        Error
          (Loopa.Driver.trap_failure ~clock:(Interp.Machine.clock machine) kind
             msg)
    | exception exn ->
        Error (Loopa.Driver.crash_failure ~stage:Loopa.Driver.Execute exn)
  in
  let* m0 = compile b in
  let* out0 = plain_run m0 in
  let* m1 = compile b in
  let* () =
    match Opt.Pipeline.run_module m1 with
    | () -> Ok ()
    | exception exn ->
        Error (Loopa.Driver.crash_failure ~stage:Loopa.Driver.Prepare exn)
  in
  let* out1 = plain_run m1 in
  if out0.Interp.Machine.output <> out1.Interp.Machine.output then
    Error
      (fuzz_failure "opt_output"
         (Printf.sprintf "optimized output differs: %S vs %S"
            out0.Interp.Machine.output out1.Interp.Machine.output))
  else if out1.Interp.Machine.clock > out0.Interp.Machine.clock then
    Error
      (fuzz_failure "opt_cost"
         (Printf.sprintf "optimization increased cost %d -> %d"
            out0.Interp.Machine.clock out1.Interp.Machine.clock))
  else Ok ()

let evaluate_config ~check_invariants profile config :
    (unit, Loopa.Driver.failure) result =
  match Loopa.Evaluate.evaluate profile config with
  | exception exn ->
      Error (Loopa.Driver.crash_failure ~stage:Loopa.Driver.Evaluate exn)
  | r ->
      if not check_invariants then Ok ()
      else if r.Loopa.Evaluate.speedup < 1.0 -. 1e-9 then
        Error
          (fuzz_failure ~config "speedup_lt_1"
             (Printf.sprintf "%s speedup %f < 1" (Loopa.Config.name config)
                r.Loopa.Evaluate.speedup))
      else if
        r.Loopa.Evaluate.coverage_pct < -1e-9
        || r.Loopa.Evaluate.coverage_pct > 100.0 +. 1e-9
      then
        Error
          (fuzz_failure ~config "coverage_range"
             (Printf.sprintf "%s coverage out of range: %f"
                (Loopa.Config.name config) r.Loopa.Evaluate.coverage_pct))
      else Ok ()

(* [deadline] (absolute [Unix.gettimeofday] stamp) bounds each execution inside the
   run — the shrinker uses it so one pathological candidate cannot stall
   the reduction; replay omits it so runs stay fully deterministic. *)
let run ?deadline (b : Bundle.t) : (unit, Loopa.Driver.failure) result =
  let* m = compile b in
  let* () =
    if b.Bundle.check_invariants then opt_differential ?deadline b else Ok ()
  in
  let* ms =
    match Loopa.Driver.prepare m with
    | ms -> Ok ms
    | exception Ir.Verifier.Invalid_ir msg ->
        Error (Loopa.Driver.verifier_failure ~stage:Loopa.Driver.Prepare msg)
    | exception exn ->
        Error (Loopa.Driver.crash_failure ~stage:Loopa.Driver.Prepare exn)
  in
  (* the soundness cross-validator is only meaningful over an unpruned
     profile: pruning hides exactly the events it checks *)
  let static_prune = b.Bundle.static_prune && not b.Bundle.crosscheck in
  let* profile =
    Loopa.Driver.profile_result ~fuel:b.Bundle.fuel ?mem_limit:b.Bundle.mem_limit
      ?max_depth:b.Bundle.max_depth ?deadline ~faults:b.Bundle.faults
      ~static_prune ms
  in
  let* () =
    match profile.Loopa.Profile.outcome.Interp.Machine.stop with
    | Interp.Machine.Truncated kind
      when profile.Loopa.Profile.total_cost = 0 ->
        (* a prefix with zero executed instructions carries no information:
           genuine budget exhaustion, same classification as the campaign *)
        Error (Loopa.Driver.budget_failure kind)
    | _ -> Ok ()
  in
  let* () =
    if not b.Bundle.crosscheck then Ok ()
    else
      match Loopa.Crosscheck.check profile with
      | [] -> Ok ()
      | v :: _ -> Error (crosscheck_failure v)
  in
  List.fold_left
    (fun acc config ->
      let* () = acc in
      evaluate_config ~check_invariants:b.Bundle.check_invariants profile config)
    (Ok ()) b.Bundle.configs

(* ---- replay ---- *)

type verdict =
  | Reproduced  (** identical fingerprint *)
  | Vanished  (** the pipeline now succeeds *)
  | Changed of Loopa.Driver.failure  (** fails, but with another fingerprint *)

let verdict_to_string = function
  | Reproduced -> "reproduced"
  | Vanished -> "vanished: the pipeline now succeeds"
  | Changed f ->
      Printf.sprintf "changed: now fails as %s" (Loopa.Driver.failure_to_string f)

let replay (b : Bundle.t) : verdict =
  match run b with
  | Ok () -> Vanished
  | Error f ->
      if Loopa.Driver.same_fingerprint f.Loopa.Driver.fingerprint b.Bundle.fingerprint
      then Reproduced
      else Changed f

(* Classify a source the way a bundle for it would: run the full pipeline
   and return the failure, if any. Used by bundle producers (fuzz, tests)
   to stamp a fresh bundle with its fingerprint. *)
let classify (b : Bundle.t) : Bundle.t option =
  match run b with
  | Ok () -> None
  | Error f ->
      Some
        {
          b with
          Bundle.stage = f.Loopa.Driver.stage;
          fingerprint = f.Loopa.Driver.fingerprint;
          message = f.Loopa.Driver.message;
        }
