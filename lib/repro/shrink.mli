(** Delta-debugging shrinker for repro bundles: greedily reduce the
    embedded Looplang source while {!Pipeline.replay} still reports
    [Reproduced], so the bundle that gets filed is the smallest program
    known to exhibit the same failure fingerprint. Works on the parsed
    AST when the source still parses (statement/expression/function
    deletions and simplifications) and falls back to line-level chopping
    when it does not. *)

type stats = {
  tried : int;  (** candidate reductions replayed *)
  accepted : int;  (** candidates that kept the fingerprint and were kept *)
}

(** [shrink b] returns the reduced bundle (source replaced, everything
    else intact) together with reduction statistics. [max_candidates]
    (default 5000) caps the total replays; [candidate_wall_s] (default
    2.0) bounds each candidate's replay so a pathological reduction
    cannot stall the loop. [Error] means the original bundle itself does
    not reproduce, so there is no fingerprint to preserve. *)
val shrink :
  ?max_candidates:int ->
  ?candidate_wall_s:float ->
  Bundle.t ->
  (Bundle.t * stats, string) result
