(* Perfectly hybridized predictor bank (paper §III-C): an LCD instance counts
   as predicted if *any* component predictor got it right. The paper argues
   this upper-bounds realistic hybrids without baking in a particular
   confidence scheme. *)

(* Each component carries interned hit/miss counters so the per-instance
   telemetry bump never hashes a name; every counter op is a no-op while
   telemetry is disabled. *)
type slot = {
  p : Predictor.t;
  hits_c : Obs.Telemetry.counter;
  misses_c : Obs.Telemetry.counter;
}

type t = { slots : slot list }

let c_hybrid_hits = Obs.Telemetry.counter "predictor.hybrid.hits"

let c_hybrid_misses = Obs.Telemetry.counter "predictor.hybrid.misses"

let slot_of (p : Predictor.t) =
  {
    p;
    hits_c = Obs.Telemetry.counter ("predictor." ^ p.Predictor.name ^ ".hits");
    misses_c = Obs.Telemetry.counter ("predictor." ^ p.Predictor.name ^ ".misses");
  }

let create ?(components = None) () : t =
  let components =
    match components with
    | Some cs -> cs
    | None ->
        [ Last_value.create (); Stride.create (); Two_delta.create (); Fcm.create () ]
  in
  { slots = List.map slot_of components }

let reset t = List.iter (fun s -> s.p.Predictor.reset ()) t.slots

(* Returns whether any component would have predicted [v], then trains all.
   Every component is consulted (no short-circuit) so per-component accuracy
   counters stay meaningful; [predict] never mutates, so this is free of
   semantic effect. *)
let step t (v : int64) : bool =
  let hit =
    List.fold_left
      (fun acc s ->
        let h =
          match s.p.Predictor.predict () with
          | Some g -> Int64.equal g v
          | None -> false
        in
        Obs.Telemetry.incr (if h then s.hits_c else s.misses_c);
        acc || h)
      false t.slots
  in
  List.iter (fun s -> s.p.Predictor.train v) t.slots;
  Obs.Telemetry.incr (if hit then c_hybrid_hits else c_hybrid_misses);
  hit

let hits t stream =
  reset t;
  List.map (step t) stream

(* Bit image of a runtime value, the currency predictors work in. *)
let bits_of_rv : Interp.Rvalue.rv -> int64 = function
  | Interp.Rvalue.Vint i -> i
  | Interp.Rvalue.Vfloat f -> Int64.bits_of_float f
  | Interp.Rvalue.Vbool b -> if b then 1L else 0L
