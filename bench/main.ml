(* The experiment harness: regenerates every table and figure of the paper's
   evaluation (Table I, Table II, Figures 1-5) from the benchmark suites, and
   attaches one Bechamel timing probe per experiment (measuring the analysis
   work that produces it). See DESIGN.md §5 for the experiment index and
   EXPERIMENTS.md for paper-vs-measured commentary.

   Usage: dune exec bench/main.exe [--skip-bechamel] [--quick] *)

let quick = Array.exists (( = ) "--quick") Sys.argv

let skip_bechamel = Array.exists (( = ) "--skip-bechamel") Sys.argv

(* Record pipeline telemetry for the whole harness run (must happen before
   [analyses] below profiles everything): the BENCH snapshot written at exit
   carries the aggregated per-stage span timings and counters. *)
let () = Obs.Telemetry.enable ()

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

(* Sections run guarded: a failure mid-harness still produces the
   remaining sections and the BENCH snapshot, but the perf-trajectory
   append is withheld (see [write_bench_snapshot]) — a partial run's
   numbers must not enter BENCH_history.jsonl as if they were a full
   one. *)
let section_failures : string list ref = ref []

let guarded name f =
  try f ()
  with e ->
    section_failures := name :: !section_failures;
    Printf.printf "section %S failed partway: %s\n%!" name (Printexc.to_string e)

(* ---- parallel scaling: campaign wall time vs --jobs ----

   Measured FIRST, before [analyses] below fills the heap with every
   benchmark's profile: forked campaign workers inherit the parent image,
   and a child GC against a multi-hundred-MB copy-on-write heap would
   charge the pool for page copying that has nothing to do with it. *)

(* (jobs, wall seconds, speedup vs serial); recorded in the BENCH
   snapshot at exit *)
let scaling_results : (int * float * float) list ref = ref []

let () =
  guarded "parallel scaling" @@ fun () ->
  section "Parallel scaling — cfp2000 campaign under the fork pool";
  let targets =
    List.filter
      (fun (b : Suites.Suite.benchmark) -> b.Suites.Suite.category = Suites.Suite.Fp2000)
      (Suites.Suite.all ())
    |> List.map (fun (b : Suites.Suite.benchmark) -> (b.Suites.Suite.name, b.Suites.Suite.source))
  in
  let budgets =
    { Campaign.Runner.default_budgets with Campaign.Runner.fuel = 2_000_000 }
  in
  let time jobs =
    let executor =
      if jobs > 1 then Campaign.Runner.Forked jobs else Campaign.Runner.Serial
    in
    let t0 = Unix.gettimeofday () in
    let s = Campaign.Runner.run ~budgets ~executor ~log:(fun _ -> ()) targets in
    assert (s.Campaign.Runner.n_errored = 0);
    Unix.gettimeofday () -. t0
  in
  let serial = time 1 in
  scaling_results := [ (1, serial, 1.0) ];
  List.iter
    (fun jobs ->
      let w = time jobs in
      scaling_results := (jobs, w, serial /. w) :: !scaling_results)
    [ 2; 4 ];
  let t = Report.Table.create [ "jobs"; "wall s"; "speedup" ] in
  List.iter
    (fun (jobs, w, sp) ->
      Report.Table.add_row t
        [ string_of_int jobs; Printf.sprintf "%.2f" w; Printf.sprintf "%.2fx" sp ])
    (List.rev !scaling_results);
  print_endline (Report.Table.render t);
  let cores = Exec.Pool.detect_jobs () in
  Printf.printf
    "(%d detected cores on this machine — speedups flatten once jobs exceed them)\n%!"
    cores;
  if cores < 2 then
    Printf.printf
      "(single-core host: every forked job shares one core, so speedups are \
       capped below 1x by fork overhead)\n%!"

(* ---- chaos supervision: seeded fault injection under the fork pool ----

   Also before [analyses], for the same copy-on-write reason. Runs the
   cfp2000 campaign under a fixed fault seed and records planned-vs-
   observed fault counts plus the supervision counters (watchdog
   timeouts, backoff waits, breaker trips) in the BENCH snapshot. *)

let chaos_results : Util.Json.t ref = ref Util.Json.Null

let () =
  guarded "chaos" @@ fun () ->
  let seed = 29 and watchdog = 3.0 in
  section
    (Printf.sprintf "Chaos — cfp2000 campaign under seeded fault injection (seed %d)"
       seed);
  let targets =
    List.filter
      (fun (b : Suites.Suite.benchmark) -> b.Suites.Suite.category = Suites.Suite.Fp2000)
      (Suites.Suite.all ())
    |> List.map (fun (b : Suites.Suite.benchmark) -> (b.Suites.Suite.name, b.Suites.Suite.source))
  in
  let n = List.length targets in
  let plan = Exec.Chaos.seeded seed in
  let counters =
    List.map
      (fun name -> (name, Obs.Telemetry.counter ("pool." ^ name)))
      [ "respawns"; "timeouts"; "backoff_waits"; "breaker_trips" ]
  in
  let baseline = List.map (fun (k, c) -> (k, Obs.Telemetry.value c)) counters in
  let budgets =
    {
      Campaign.Runner.default_budgets with
      Campaign.Runner.fuel = 2_000_000;
      watchdog_s = Some watchdog;
    }
  in
  let t0 = Unix.gettimeofday () in
  let s =
    Campaign.Runner.run ~budgets ~executor:(Campaign.Runner.Forked 2) ~chaos:plan
      ~log:(fun _ -> ()) targets
  in
  let wall = Unix.gettimeofday () -. t0 in
  assert (List.length s.Campaign.Runner.results = n);
  let lost, timed_out =
    List.fold_left
      (fun (l, t) (r : Campaign.Runner.result) ->
        match r.Campaign.Runner.status with
        | Campaign.Runner.Errored (Campaign.Runner.Worker_lost _) -> (l + 1, t)
        | Campaign.Runner.Errored (Campaign.Runner.Task_timeout _) -> (l, t + 1)
        | _ -> (l, t))
      (0, 0) s.Campaign.Runner.results
  in
  let deltas =
    List.map
      (fun (k, c) -> (k, Obs.Telemetry.value c - List.assoc k baseline))
      counters
  in
  Printf.printf "planned: %s\n" (Exec.Chaos.summary plan ~n);
  Printf.printf
    "observed: %d completed, %d lost, %d timed out, %d degraded in %.2fs\n"
    s.Campaign.Runner.n_completed lost timed_out s.Campaign.Runner.n_degraded wall;
  Printf.printf "supervision: %s\n%!"
    (String.concat ", "
       (List.map (fun (k, v) -> Printf.sprintf "%s %d" k v) deltas));
  chaos_results :=
    Util.Json.Obj
      ([
         ("seed", Util.Json.Int seed);
         ("targets", Util.Json.Int n);
         ("watchdog_s", Util.Json.Float watchdog);
         ("wall_s", Util.Json.Float wall);
         ( "planned",
           Util.Json.Obj
             (List.map
                (fun (k, v) -> (k, Util.Json.Int v))
                (Exec.Chaos.planned_counts plan ~n)) );
         ("lost", Util.Json.Int lost);
         ("timed_out", Util.Json.Int timed_out);
         ("degraded", Util.Json.Int s.Campaign.Runner.n_degraded);
       ]
      @ List.map (fun (k, v) -> (k, Util.Json.Int v)) deltas)

(* ---- guarded parallel DOALL execution: measured vs predicted ----

   Still before [analyses]: shard workers fork the parent image, so the
   heap must stay small while the pool runs. Two synthetic kernels sized
   so the loop body dwarfs the fork+IPC overhead (the regime the guarded
   runtime is for), plus two real suites — the DOALL outlier and a
   conflict-prone one — to keep the calibration honest. *)

let parrun_results : Util.Json.t ref = ref Util.Json.Null

let () =
  guarded "guarded parallel execution" @@ fun () ->
  section "Guarded parallel execution — measured vs predicted DOALL speedup";
  (* a big integer reduction: no write set to ship, near-ideal sharding *)
  let synthetic_reduce =
    {|
fn main() -> int {
  var n: int = 300000;
  var a: int[] = new int[n];
  for (var i: int = 0; i < n; i = i + 1) { a[i] = i * 2654435761 + 17; }
  var s: int = 0;
  for (var i: int = 0; i < n; i = i + 1) { s = s + a[i] * a[i]; }
  print_int(s);
  return 0;
}
|}
  in
  (* a big map: every shard ships its write set back to the parent, so the
     commit cost is part of the measured number *)
  let synthetic_map =
    {|
fn main() -> int {
  var n: int = 200000;
  var a: int[] = new int[n];
  var b: int[] = new int[n];
  for (var i: int = 0; i < n; i = i + 1) { a[i] = i * 31 + 7; }
  for (var i: int = 0; i < n; i = i + 1) { b[i] = a[i] * a[i] + a[i] / 3; }
  print_int(b[n - 1]);
  return 0;
}
|}
  in
  let real name =
    match Suites.Suite.find name with
    | Some b -> [ (name, b.Suites.Suite.source) ]
    | None -> []
  in
  let targets =
    [ ("synthetic_reduce", synthetic_reduce); ("synthetic_map", synthetic_map) ]
    @ real "462_libquantum" @ real "181_mcf"
  in
  let knobs = { Parrun.Runner.default_knobs with Parrun.Runner.jobs = 2 } in
  let t =
    Report.Table.create
      [ "target"; "loop"; "commit"; "rollbk"; "serial_s"; "par_s"; "measured"; "predicted" ]
  in
  let series = ref [] in
  List.iter
    (fun (name, src) ->
      match Parrun.Guard.run ~knobs ~target:name src with
      | Error f ->
          Printf.printf "%s: %s\n" name (Loopa.Driver.failure_to_string f)
      | Ok r ->
          assert r.Parrun.Guard.identical;
          List.iter
            (fun (row : Parrun.Guard.calib_row) ->
              if row.Parrun.Guard.cb_invocations > 0 then begin
                let fopt = function
                  | None -> "-"
                  | Some f -> Printf.sprintf "%.2fx" f
                in
                Report.Table.add_row t
                  [
                    name;
                    Printf.sprintf "%s:bb%d" row.Parrun.Guard.cb_fname
                      row.Parrun.Guard.cb_header;
                    string_of_int row.Parrun.Guard.cb_committed;
                    string_of_int row.Parrun.Guard.cb_rollbacks;
                    Printf.sprintf "%.4f" row.Parrun.Guard.cb_serial_s;
                    Printf.sprintf "%.4f" row.Parrun.Guard.cb_parallel_s;
                    fopt row.Parrun.Guard.cb_measured;
                    fopt row.Parrun.Guard.cb_predicted;
                  ];
                let jf = function
                  | None -> Util.Json.Null
                  | Some f -> Util.Json.Float f
                in
                series :=
                  Util.Json.Obj
                    [
                      ("target", Util.Json.String name);
                      ( "loop",
                        Util.Json.String
                          (Printf.sprintf "%s:bb%d" row.Parrun.Guard.cb_fname
                             row.Parrun.Guard.cb_header) );
                      ("committed", Util.Json.Int row.Parrun.Guard.cb_committed);
                      ("rollbacks", Util.Json.Int row.Parrun.Guard.cb_rollbacks);
                      ("conflicts", Util.Json.Int row.Parrun.Guard.cb_conflicts);
                      ("serial_s", Util.Json.Float row.Parrun.Guard.cb_serial_s);
                      ("parallel_s", Util.Json.Float row.Parrun.Guard.cb_parallel_s);
                      ("measured", jf row.Parrun.Guard.cb_measured);
                      ("predicted", jf row.Parrun.Guard.cb_predicted);
                    ]
                  :: !series
              end)
            r.Parrun.Guard.rows)
    targets;
  print_endline (Report.Table.render t);
  print_endline
    "(reduction shards ship one accumulator back; map shards ship their whole\n\
    \ write set — the gap between the two measured columns is the commit cost)";
  (* record the host core count next to the measurements: on a 1-core
     container the shards timeshare the CPU, so measured speedup is capped
     below 1 by construction — the series is only comparable PR-over-PR
     alongside this field *)
  let cores = Exec.Pool.detect_jobs () in
  if cores < 2 then
    Printf.printf
      "note: %d core(s) online — shards timeshare the CPU, measured speedup \
       is capped below 1x on this host\n"
      cores;
  parrun_results :=
    Util.Json.Obj
      [
        ("jobs", Util.Json.Int knobs.Parrun.Runner.jobs);
        ("cores", Util.Json.Int cores);
        ("parallel_loop_speedup", Util.Json.List (List.rev !series));
      ]

(* ---- shared: profile every benchmark once ---- *)

let analyses : (Suites.Suite.benchmark * Loopa.Driver.analysis) list =
  let benches = Suites.Suite.all () in
  let benches =
    if quick then
      List.filteri (fun i _ -> i mod 5 = 0) benches (* a spread of suites *)
    else benches
  in
  Printf.printf "profiling %d benchmarks (instrumented run + classification)...\n%!"
    (List.length benches);
  let t0 = Sys.time () in
  let r =
    List.map
      (fun (b : Suites.Suite.benchmark) ->
        (b, Loopa.Driver.analyze_source ~fuel:200_000_000 b.Suites.Suite.source))
      benches
  in
  Printf.printf "profiled in %.1fs cpu\n%!" (Sys.time () -. t0);
  r

let of_category cat =
  List.filter (fun ((b : Suites.Suite.benchmark), _) -> b.Suites.Suite.category = cat) analyses

let categories = Suites.Suite.categories

let speedups_for cfg cat =
  List.map (fun (_, a) -> (Loopa.Driver.evaluate a cfg).Loopa.Evaluate.speedup) (of_category cat)

let coverage_for cfg cat =
  List.map
    (fun (_, a) ->
      Float.max 1.0 (Loopa.Driver.evaluate a cfg).Loopa.Evaluate.coverage_pct)
    (of_category cat)

(* ---- Table I: census of ordering constraints ---- *)

let table1 () =
  section "Table I — ordering constraints observed across the suites";
  print_endline
    "(static register-LCD classes from SCEV/recurrence analysis; memory-LCD\n\
     frequency and register predictability judged from the dynamic profile)";
  let t =
    Report.Table.create
      [
        "suite"; "IV/MIV"; "reduction"; "predictable"; "unpredictable"; "mem:freq";
        "mem:infreq"; "mem:none"; "with-calls"; "invocations";
      ]
  in
  List.iter
    (fun cat ->
      let c = Loopa.Taxonomy.empty () in
      List.iter (fun (_, a) -> ignore (Loopa.Taxonomy.add_profile c a.Loopa.Driver.profile))
        (of_category cat);
      Report.Table.add_row t
        [
          Suites.Suite.category_name cat;
          string_of_int c.Loopa.Taxonomy.reg_computable;
          string_of_int c.Loopa.Taxonomy.reg_reduction;
          string_of_int c.Loopa.Taxonomy.reg_predictable;
          string_of_int c.Loopa.Taxonomy.reg_unpredictable;
          string_of_int c.Loopa.Taxonomy.mem_frequent_loops;
          string_of_int c.Loopa.Taxonomy.mem_infrequent_loops;
          string_of_int c.Loopa.Taxonomy.mem_clean_loops;
          string_of_int c.Loopa.Taxonomy.loops_with_calls;
          string_of_int c.Loopa.Taxonomy.total_invocations;
        ])
    categories;
  print_endline (Report.Table.render t);
  print_endline
    "paper shape: non-numeric suites dominated by non-computable/unpredictable\n\
     register LCDs, frequent memory LCDs and calls; numeric suites by IVs and\n\
     reductions with clean or infrequent memory behaviour."

(* ---- Table II: the configuration lattice ---- *)

let table2 () =
  section "Table II — configuration flags";
  let t = Report.Table.create [ "flag"; "definition" ] in
  List.iter
    (fun (f, d) -> Report.Table.add_row t [ f; d ])
    [
      ("reduc0", "reductions are treated as non-computable LCDs");
      ("reduc1", "reductions are considered parallel with no overheads");
      ("dep0", "non-computable LCDs are not considered parallelizable");
      ("dep1", "non-computable LCDs lowered to memory (frequent memory LCDs)");
      ("dep2", "non-computable LCDs accelerated by realistic value prediction");
      ("dep3", "non-computable LCDs accelerated by perfect value prediction");
      ("fn0", "loops with any function calls are sequential");
      ("fn1", "only pure calls are considered parallel");
      ("fn2", "pure + thread-safe library + instrumented user calls parallel");
      ("fn3", "all function calls can be parallelized");
    ];
  print_endline (Report.Table.render t);
  Printf.printf "evaluated ladder (Figures 2 & 3): %s\n"
    (String.concat ", " (List.map Loopa.Config.name Loopa.Config.figure_ladder))

(* ---- Figure 1: execution-model schedules on a worked example ---- *)

let figure1 () =
  section "Figure 1 — parallel execution models on a 4-iteration loop";
  let costs = [ 4.0; 4.0; 4.0; 4.0 ] in
  let conflict_at_2 = Hashtbl.create 2 in
  Hashtbl.replace conflict_at_2 2 (1.0, 1);
  let base =
    {
      Loopa.Model.iter_costs = Array.of_list costs;
      conflicts = Hashtbl.create 1;
      reg_sync_delta = 0.0;
      serial_static = false;
    }
  in
  let with_conflict = { base with Loopa.Model.conflicts = conflict_at_2 } in
  let show name = function
    | Some c -> Printf.sprintf "%s: parallel cost %.0f (serial 16)" name c
    | None -> Printf.sprintf "%s: serial (cost 16)" name
  in
  print_endline "iterations of cost 4; a RAW dependency hits iteration 2:";
  print_endline (show "  (a) DOALL        " (Loopa.Model.doall_cost with_conflict));
  print_endline (show "  (b) Partial-DOALL" (Loopa.Model.pdoall_cost with_conflict));
  print_endline (show "  (c) HELIX-style  " (Loopa.Model.helix_cost with_conflict));
  print_endline "and with no conflict at all:";
  print_endline (show "      DOALL        " (Loopa.Model.doall_cost base));
  print_endline
    "paper shape: DOALL abandons on the conflict; PDOALL restarts a phase (2x\n\
     the slowest iteration); HELIX synchronizes and pays delta per iteration."

(* ---- Figures 2 & 3: geomean speedups over the config ladder ---- *)

let figure_speedups ~title ~cats ~paper_note () =
  section title;
  let t =
    Report.Table.create
      ("configuration" :: List.map Suites.Suite.category_name cats)
  in
  List.iter
    (fun cfg ->
      Report.Table.add_row t
        (Loopa.Config.name cfg
        :: List.map
             (fun cat -> Printf.sprintf "%.2f" (Report.Stats.geomean (speedups_for cfg cat)))
             cats))
    Loopa.Config.figure_ladder;
  print_endline (Report.Table.render t);
  print_endline paper_note;
  (* the headline rungs as a log-scale bar chart, like the paper's figure *)
  let best = Loopa.Config.best_helix in
  print_endline "\nbest HELIX rung (reduc1-dep1-fn2), per suite:";
  print_endline
    (Report.Table.log_bars
       (List.map
          (fun cat ->
            ( Suites.Suite.category_name cat,
              Report.Stats.geomean (speedups_for best cat) ))
          cats))

let figure2 () =
  figure_speedups
    ~title:"Figure 2 — GEOMEAN speedups, non-numeric (SpecINT 2000 & 2006)"
    ~cats:[ Suites.Suite.Int2000; Suites.Suite.Int2006 ]
    ~paper_note:
      "paper shape: DOALL 1.1-1.3x; dep2/fn2 PDOALL rungs reach 1.2-2.0x;\n\
       perfect dep3-fn3 2.0-2.6x; HELIX reduc1-dep1-fn2 tops at 4.6x (INT2000)\n\
       and 7.2x (INT2006). Reductions (reduc1) barely move the INT suites." ()

let figure3 () =
  figure_speedups
    ~title:"Figure 3 — GEOMEAN speedups, numeric (EEMBC, SpecFP 2000 & 2006)"
    ~cats:[ Suites.Suite.Eembc; Suites.Suite.Fp2000; Suites.Suite.Fp2006 ]
    ~paper_note:
      "paper shape: DOALL 1.6-3.1x (reduc0) to 2.2-3.6x (reduc1); PDOALL dep2\n\
       2.9-4.6x; fn2 lifts EEMBC strongly; best-realistic PDOALL 6.0-10.7x;\n\
       dep3-fn3 10-92x; HELIX reduc1-dep1-fn2 21.6-50.6x. Our kernel-only\n\
       programs overshoot the absolute numbers (no serial harness code);\n\
       the rung ordering and suite contrasts match (see EXPERIMENTS.md)." ()

(* ---- Figure 4: per-benchmark best PDOALL vs best HELIX ---- *)

let figure4 () =
  section "Figure 4 — all SPEC speedups, best PDOALL vs best HELIX";
  Printf.printf "PDOALL = %s, HELIX = %s\n\n"
    (Loopa.Config.name Loopa.Config.best_pdoall)
    (Loopa.Config.name Loopa.Config.best_helix);
  let t = Report.Table.create [ "benchmark"; "suite"; "best PDOALL"; "best HELIX"; "winner" ] in
  let pd_wins = ref [] in
  List.iter
    (fun ((b : Suites.Suite.benchmark), a) ->
      if not (b.Suites.Suite.category = Suites.Suite.Eembc) then begin
        let sp = (Loopa.Driver.evaluate a Loopa.Config.best_pdoall).Loopa.Evaluate.speedup in
        let sh = (Loopa.Driver.evaluate a Loopa.Config.best_helix).Loopa.Evaluate.speedup in
        if sp > sh +. 0.005 then pd_wins := b.Suites.Suite.name :: !pd_wins;
        Report.Table.add_row t
          [
            b.Suites.Suite.name;
            Suites.Suite.category_name b.Suites.Suite.category;
            Printf.sprintf "%.2f" sp;
            Printf.sprintf "%.2f" sh;
            (if sp > sh +. 0.005 then "PDOALL" else "HELIX");
          ]
      end)
    analyses;
  print_endline (Report.Table.render t);
  Printf.printf "\nPDOALL wins on: %s\n" (String.concat ", " (List.rev !pd_wins));
  print_endline
    "paper shape: HELIX wins consistently on non-numeric benchmarks, but a few\n\
     (179_art, 450_soplex, 482_sphinx, 429_mcf) prefer PDOALL: loops with a low\n\
     inter-iteration conflict rate pay HELIX's synchronization for nothing."

(* ---- Figure 5: dynamic coverage ---- *)

let figure5 () =
  section "Figure 5 — dynamic coverage (GEOMEAN, % of instructions in parallel loops)";
  let t =
    Report.Table.create
      ("configuration" :: List.map Suites.Suite.category_name categories)
  in
  List.iter
    (fun cfg ->
      Report.Table.add_row t
        (Loopa.Config.name cfg
        :: List.map
             (fun cat ->
               Printf.sprintf "%.1f" (Report.Stats.geomean (coverage_for cfg cat)))
             categories))
    Loopa.Config.coverage_configs;
  print_endline (Report.Table.render t);
  print_endline
    "paper shape: coverage for the non-numeric suites jumps dramatically from\n\
     dep0-fn2 PDOALL to dep0-fn2 HELIX to dep1-fn2 HELIX; the numeric suites\n\
     start high and saturate. Amdahl: the HELIX gains in Figure 2 come from\n\
     this coverage, not from higher per-loop parallelism."

(* ---- Bechamel probes: one Test.make per table/figure ---- *)

let bechamel_probes () =
  section "Bechamel probes — time to regenerate each artifact";
  let open Bechamel in
  let sample = List.filteri (fun i _ -> i mod 7 = 0) analyses in
  let eval_all cfgs () =
    List.iter
      (fun (_, a) -> List.iter (fun c -> ignore (Loopa.Driver.evaluate a c)) cfgs)
      sample
  in
  let mcf = Option.get (Suites.Suite.find "181_mcf") in
  let tests =
    [
      Test.make ~name:"table1_census"
        (Staged.stage (fun () ->
             let c = Loopa.Taxonomy.empty () in
             List.iter
               (fun (_, a) -> ignore (Loopa.Taxonomy.add_profile c a.Loopa.Driver.profile))
               sample));
      Test.make ~name:"table2_configs"
        (Staged.stage (fun () ->
             List.iter
               (fun c -> ignore (Loopa.Config.of_string (Loopa.Config.name c)))
               Loopa.Config.figure_ladder));
      Test.make ~name:"figure1_models"
        (Staged.stage (fun () ->
             let conflicts = Hashtbl.create 2 in
             Hashtbl.replace conflicts 2 (1.0, 1);
             let inp =
               {
                 Loopa.Model.iter_costs = [| 4.0; 4.0; 4.0; 4.0 |];
                 conflicts;
                 reg_sync_delta = 0.0;
                 serial_static = false;
               }
             in
             ignore (Loopa.Model.doall_cost inp);
             ignore (Loopa.Model.pdoall_cost inp);
             ignore (Loopa.Model.helix_cost inp)));
      Test.make ~name:"figure2_ladder_eval"
        (Staged.stage (eval_all Loopa.Config.figure_ladder));
      Test.make ~name:"figure3_ladder_eval"
        (Staged.stage (eval_all Loopa.Config.figure_ladder));
      Test.make ~name:"figure4_best_eval"
        (Staged.stage (eval_all [ Loopa.Config.best_pdoall; Loopa.Config.best_helix ]));
      Test.make ~name:"figure5_coverage_eval"
        (Staged.stage (eval_all Loopa.Config.coverage_configs));
      Test.make ~name:"profile_181_mcf"
        (Staged.stage (fun () ->
             ignore (Loopa.Driver.analyze_source ~fuel:10_000_000 mcf.Suites.Suite.source)));
    ]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) ~kde:(Some 100) ()
  in
  let raw =
    Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"loopapalooza" tests)
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols instance raw in
  let t = Report.Table.create [ "probe"; "time/run" ] in
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ est ] ->
          let pretty =
            if est > 1e9 then Printf.sprintf "%.2f s" (est /. 1e9)
            else if est > 1e6 then Printf.sprintf "%.2f ms" (est /. 1e6)
            else if est > 1e3 then Printf.sprintf "%.2f us" (est /. 1e3)
            else Printf.sprintf "%.0f ns" est
          in
          Report.Table.add_row t [ name; pretty ]
      | _ -> Report.Table.add_row t [ name; "n/a" ])
    results;
  print_endline (Report.Table.render t)

(* ---- ablations over the design choices DESIGN.md fixes ---- *)

let ablation_sample () =
  (* a cross-section: PDOALL-sensitive, HELIX-sensitive, predictor-sensitive *)
  List.filter
    (fun ((b : Suites.Suite.benchmark), _) ->
      List.mem b.Suites.Suite.name
        [ "181_mcf"; "164_gzip"; "179_art"; "456_hmmer"; "254_gap"; "482_sphinx" ])
    analyses

let ablation_pdoall_cutoff () =
  section "Ablation A — Partial-DOALL conflict cutoff (paper: 0.8)";
  let sample = ablation_sample () in
  let t =
    Report.Table.create
      ("cutoff" :: List.map (fun ((b : Suites.Suite.benchmark), _) -> b.Suites.Suite.name) sample)
  in
  List.iter
    (fun cutoff ->
      let knobs = { Loopa.Evaluate.default_knobs with Loopa.Evaluate.pdoall_cutoff = cutoff } in
      Report.Table.add_row t
        (Printf.sprintf "%.2f" cutoff
        :: List.map
             (fun (_, a) ->
               Printf.sprintf "%.2f"
                 (Loopa.Driver.evaluate ~knobs a Loopa.Config.best_pdoall).Loopa.Evaluate.speedup)
             sample))
    [ 0.2; 0.5; 0.8; 0.95 ];
  print_endline (Report.Table.render t);
  print_endline
    "a lower cutoff makes PDOALL give up earlier on conflict-heavy loops; the\n\
     paper's 0.8 keeps rare-conflict loops (mcf-like) parallel without paying\n\
     for crowds of restarts."

let ablation_helix_delta () =
  section "Ablation B — HELIX stall model: raw delta vs distance-normalized";
  let sample = ablation_sample () in
  let t = Report.Table.create [ "benchmark"; "raw (paper)"; "normalized" ] in
  List.iter
    (fun ((b : Suites.Suite.benchmark), a) ->
      let raw = (Loopa.Driver.evaluate a Loopa.Config.best_helix).Loopa.Evaluate.speedup in
      let knobs =
        { Loopa.Evaluate.default_knobs with Loopa.Evaluate.helix_distance_normalized = true }
      in
      let norm = (Loopa.Driver.evaluate ~knobs a Loopa.Config.best_helix).Loopa.Evaluate.speedup in
      Report.Table.add_row t
        [ b.Suites.Suite.name; Printf.sprintf "%.2f" raw; Printf.sprintf "%.2f" norm ])
    sample;
  print_endline (Report.Table.render t);
  print_endline
    "the paper charges the raw producer/consumer delta of the worst manifesting\n\
     LCD on every iteration; the alternative divides it by dependence distance.\n\
     When a loop also has adjacent-iteration manifestations the two coincide\n\
     (distance 1), so differences only appear for loops whose conflicts are\n\
     exclusively long-distance — the raw model is what keeps PDOALL ahead on\n\
     such loops in Figure 4."

let ablation_predictors () =
  section "Ablation C — predictor bank under dep2 (paper: perfect hybrid of 4)";
  let banks =
    [
      ("hybrid-of-4", None);
      ("last-value", Some (fun () -> [ Predictors.Last_value.create () ]));
      ("stride", Some (fun () -> [ Predictors.Stride.create () ]));
      ("2-delta", Some (fun () -> [ Predictors.Two_delta.create () ]));
      ("fcm", Some (fun () -> [ Predictors.Fcm.create () ]));
    ]
  in
  let names = [ "181_mcf"; "254_gap"; "164_gzip"; "456_hmmer" ] in
  let t = Report.Table.create ("bank" :: names) in
  let cfg = Loopa.Config.of_string "reduc1-dep2-fn2 PDOALL" in
  List.iter
    (fun (label, components) ->
      let make_predictor =
        Option.map
          (fun mk () -> Predictors.Hybrid.create ~components:(Some (mk ())) ())
          components
      in
      Report.Table.add_row t
        (label
        :: List.map
             (fun name ->
               let b = Option.get (Suites.Suite.find name) in
               let a =
                 Loopa.Driver.analyze_source ?make_predictor ~fuel:200_000_000
                   b.Suites.Suite.source
               in
               Printf.sprintf "%.2f" (Loopa.Driver.evaluate a cfg).Loopa.Evaluate.speedup)
             names))
    banks;
  print_endline (Report.Table.render t);
  print_endline
    "stride covers the queue cursors (gap-like BFS); last-value covers slow-\n\
     moving state; the hybrid's union is what the dep2 rungs in Figures 2-3 use."

let ablations () =
  ablation_pdoall_cutoff ();
  ablation_helix_delta ();
  ablation_predictors ()

(* ---- lint throughput: the full rule set over every suite program ---- *)

(* (programs, diagnostics, wall seconds); recorded in the BENCH snapshot *)
let lint_results : (int * int * float) ref = ref (0, 0, 0.0)

let lint_throughput () =
  section "Lint — full rule set over every suite program";
  let benches = Suites.Suite.all () in
  let t0 = Unix.gettimeofday () in
  let n_diags =
    List.fold_left
      (fun acc (b : Suites.Suite.benchmark) ->
        let m = Frontend.compile_exn b.Suites.Suite.source in
        acc + List.length (Loopa.Lint.run m))
      0 benches
  in
  let wall = Unix.gettimeofday () -. t0 in
  let n = List.length benches in
  lint_results := (n, n_diags, wall);
  Printf.printf
    "%d programs, %d diagnostics in %.2fs (%.1f programs/s)\n\
     (each program runs verifier + SSA + range/structure/loop rules; the\n\
     dataflow.range and dataflow.audit spans in the snapshot break the cost down)\n"
    n n_diags wall
    (float_of_int n /. Float.max 1e-9 wall)

(* ---- analysis as a service: cold vs warm result-cache latency ---- *)

let service_results : Util.Json.t ref = ref Util.Json.Null

let service_section () =
  section "Service — content-addressed result cache, cold vs warm analyze";
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "bench-cache-%d" (Unix.getpid ()))
  in
  let rec rm p =
    if Sys.file_exists p then
      if Sys.is_directory p then begin
        Array.iter (fun e -> rm (Filename.concat p e)) (Sys.readdir p);
        Unix.rmdir p
      end
      else Sys.remove p
  in
  Fun.protect
    ~finally:(fun () -> try rm dir with Sys_error _ | Unix.Unix_error _ -> ())
    (fun () ->
      let cache = Service.Cache.open_dir dir in
      let src =
        match Suites.Suite.find "181_mcf" with
        | Some b -> b.Suites.Suite.source
        | None -> failwith "181_mcf missing from the registry"
      in
      let fuel = 2_000_000 in
      let config = "reduc1-dep1-fn2 HELIX" in
      let key =
        Service.Cache.key ~source:src
          ~fingerprint:
            (Service.Keys.analyze ~config ~fuel ~loops:8 ~optimize:false)
      in
      (* cold: the whole compile + profile + classify + render pipeline *)
      let t0 = Unix.gettimeofday () in
      let text =
        Service.Render.report ~show_loops:8
          (Loopa.Driver.evaluate
             (Loopa.Driver.analyze_source ~fuel src)
             (Loopa.Config.of_string config))
      in
      let cold_s = Unix.gettimeofday () -. t0 in
      Service.Cache.store cache key
        (Util.Json.Obj
           [
             ("kind", Util.Json.String "analyze");
             ("text", Util.Json.String text);
           ]);
      (* warm: a pure disk read through the cache, averaged *)
      let warm_iters = 50 in
      let t0 = Unix.gettimeofday () in
      for _ = 1 to warm_iters do
        match Service.Cache.find cache key with
        | Some _ -> ()
        | None -> failwith "warm lookup missed"
      done;
      let warm_s = (Unix.gettimeofday () -. t0) /. float_of_int warm_iters in
      let hits, misses, _ = Service.Cache.stats cache in
      let hit_rate =
        float_of_int hits /. float_of_int (max 1 (hits + misses))
      in
      let t = Report.Table.create [ "path"; "wall s"; "note" ] in
      Report.Table.add_row t
        [ "cold analyze"; Printf.sprintf "%.4f" cold_s; "compile+profile+classify+render" ];
      Report.Table.add_row t
        [
          "warm analyze";
          Printf.sprintf "%.6f" warm_s;
          Printf.sprintf "cache read (x%.0f)" (cold_s /. Float.max 1e-9 warm_s);
        ];
      print_endline (Report.Table.render t);
      Printf.printf "%d hits, %d misses (hit rate %.2f) over %d lookups\n" hits
        misses hit_rate warm_iters;
      service_results :=
        Util.Json.Obj
          [
            ("target", Util.Json.String "181_mcf");
            ("fuel", Util.Json.Int fuel);
            ("cold_s", Util.Json.Float cold_s);
            ("warm_s", Util.Json.Float warm_s);
            ("speedup", Util.Json.Float (cold_s /. Float.max 1e-9 warm_s));
            ("hits", Util.Json.Int hits);
            ("misses", Util.Json.Int misses);
            ("hit_rate", Util.Json.Float hit_rate);
          ])

(* ---- perf snapshot: per-stage timings from the telemetry spans ---- *)

let write_bench_snapshot () =
  let spans = Obs.Telemetry.spans () in
  let counters = Obs.Telemetry.counters () in
  let harness =
    Util.Json.Obj
      [
        ("quick", Util.Json.Bool quick);
        ("cpu_s", Util.Json.Float (Sys.time ()));
        ("n_benchmarks", Util.Json.Int (List.length analyses));
        ( "parallel_scaling",
          (* host core count rides along: on a 1-core machine every
             forked job shares the core, so speedup < 1x is expected,
             not a regression *)
          Util.Json.Obj
            [
              ("cores", Util.Json.Int (Exec.Pool.detect_jobs ()));
              ( "runs",
                Util.Json.List
                  (List.rev_map
                     (fun (jobs, wall, sp) ->
                       Util.Json.Obj
                         [
                           ("jobs", Util.Json.Int jobs);
                           ("wall_s", Util.Json.Float wall);
                           ("speedup", Util.Json.Float sp);
                         ])
                     !scaling_results) );
            ] );
        ("chaos", !chaos_results);
        ("parrun", !parrun_results);
        ("service", !service_results);
        ( "lint",
          let files, diags, wall = !lint_results in
          Util.Json.Obj
            [
              ("programs", Util.Json.Int files);
              ("diagnostics", Util.Json.Int diags);
              ("wall_s", Util.Json.Float wall);
              ( "programs_per_s",
                Util.Json.Float (float_of_int files /. Float.max 1e-9 wall) );
            ] );
      ]
  in
  let j =
    match Obs.Export.snapshot_json ~spans ~counters with
    | Util.Json.Obj fields -> Util.Json.Obj (("harness", harness) :: fields)
    | j -> j
  in
  let path = if quick then "BENCH_quick.json" else "BENCH_full.json" in
  Out_channel.with_open_text path (fun oc ->
      output_string oc (Util.Json.to_string j);
      output_char oc '\n');
  (* every *complete* run also appends to the perf trajectory, one JSONL
     line per run, for `loopapalooza perfdiff --history
     BENCH_history.jsonl`; a run with a failed section keeps its
     diagnostic snapshot but must not enter the history as a data point
     — its missing spans would read as a spurious speedup. *)
  match !section_failures with
  | _ :: _ as fails ->
      Printf.printf
        "\nper-stage perf snapshot (spans + counters): %s\n\
         BENCH_history.jsonl append skipped: section(s) failed partway (%s)\n"
        path
        (String.concat ", " (List.rev fails))
  | [] ->
      let with_stamp =
        match j with
        | Util.Json.Obj fields ->
            Util.Json.Obj
              (("recorded_unix", Util.Json.Float (Unix.gettimeofday ())) :: fields)
        | j -> j
      in
      let oc =
        open_out_gen [ Open_creat; Open_append; Open_wronly ] 0o644
          "BENCH_history.jsonl"
      in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () ->
          output_string oc (Util.Json.to_string with_stamp);
          output_char oc '\n');
      Printf.printf
        "\nper-stage perf snapshot (spans + counters): %s (+ BENCH_history.jsonl)\n"
        path

let () =
  guarded "table1" table1;
  guarded "table2" table2;
  guarded "figure1" figure1;
  guarded "figure2" figure2;
  guarded "figure3" figure3;
  guarded "figure4" figure4;
  guarded "figure5" figure5;
  guarded "lint" lint_throughput;
  guarded "service" service_section;
  if Array.exists (( = ) "--ablation") Sys.argv then guarded "ablations" ablations;
  if not skip_bechamel then begin
    try bechamel_probes ()
    with e ->
      Printf.printf "bechamel probes skipped: %s\n" (Printexc.to_string e)
  end;
  write_bench_snapshot ();
  print_endline "\ndone."
