(* Command-line front door to the limit-study framework.

     loopapalooza list                      — benchmark registry
     loopapalooza run <file|bench>         — execute a Looplang program
     loopapalooza analyze <file|bench>     — limit study under one config
     loopapalooza sweep <file|bench>       — the full Figure-2/3 config ladder
     loopapalooza census <file|bench>      — Table-I census of the program
     loopapalooza dump-ir <file|bench>     — canonicalized SSA dump
*)

open Cmdliner

let read_program target =
  match Suites.Suite.find target with
  | Some b -> b.Suites.Suite.source
  | None ->
      if Sys.file_exists target then In_channel.with_open_text target In_channel.input_all
      else
        raise
          (Invalid_argument
             (Printf.sprintf "%S is neither a benchmark name nor a file" target))

let target_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"PROGRAM" ~doc:"A registered benchmark name or a Looplang source file.")

let optimize_arg =
  Arg.(
    value & flag
    & info [ "O"; "optimize" ]
        ~doc:"Run the constant-folding/DCE/CFG-cleanup pipeline before analysis.")

let fuel_arg =
  Arg.(
    value
    & opt int 500_000_000
    & info [ "fuel" ] ~docv:"N" ~doc:"Abort after $(docv) interpreted instructions.")

let handle_errors f =
  try
    f ();
    0
  with
  | Frontend.Compile_error e ->
      Printf.eprintf "compile error: %s\n" (Frontend.error_to_string e);
      1
  | Interp.Rvalue.Runtime_error msg ->
      Printf.eprintf "runtime error: %s\n" msg;
      1
  | Invalid_argument msg | Loopa.Config.Bad_config msg ->
      Printf.eprintf "error: %s\n" msg;
      2

(* ---- list ---- *)

let list_cmd =
  let run () =
    let t = Report.Table.create [ "name"; "suite"; "description" ] in
    List.iter
      (fun (b : Suites.Suite.benchmark) ->
        Report.Table.add_row t
          [
            b.Suites.Suite.name;
            Suites.Suite.category_name b.Suites.Suite.category;
            b.Suites.Suite.descr;
          ])
      (Suites.Suite.all ());
    print_endline (Report.Table.render t);
    0
  in
  Cmd.v
    (Cmd.info "list" ~doc:"List the registered benchmark suites.")
    Term.(const run $ const ())

(* ---- run ---- *)

let run_cmd =
  let run target fuel =
    handle_errors (fun () ->
        let out = Loopa.Driver.run_source ~fuel (read_program target) in
        print_string out.Interp.Machine.output;
        Printf.printf "[%d dynamic IR instructions, %d heap words]\n"
          out.Interp.Machine.clock out.Interp.Machine.mem_words)
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Execute a Looplang program on the reference interpreter.")
    Term.(const run $ target_arg $ fuel_arg)

(* ---- analyze ---- *)

let config_arg =
  Arg.(
    value
    & opt string "reduc1-dep1-fn2 HELIX"
    & info [ "c"; "config" ] ~docv:"CONFIG"
        ~doc:
          "Configuration: $(b,reducR-depD-fnF) plus a model name (DOALL, PDOALL or \
           HELIX), e.g. \"reduc1-dep2-fn2 PDOALL\".")

let loops_arg =
  Arg.(
    value & opt int 8
    & info [ "loops" ] ~docv:"N" ~doc:"Show the $(docv) costliest loops (0 = none).")

let print_report ~show_loops (r : Loopa.Evaluate.report) =
  Printf.printf "config        : %s\n" (Loopa.Config.name r.Loopa.Evaluate.config);
  Printf.printf "serial cost   : %d dynamic IR instructions\n" r.Loopa.Evaluate.total_cost;
  Printf.printf "parallel cost : %.0f\n" r.Loopa.Evaluate.parallel_cost;
  Printf.printf "limit speedup : %.2fx\n" r.Loopa.Evaluate.speedup;
  Printf.printf "coverage      : %.1f%% of instructions inside parallel loops\n"
    r.Loopa.Evaluate.coverage_pct;
  Printf.printf "static doall  : %.1f%% of instructions inside statically proven loops\n"
    r.Loopa.Evaluate.static_coverage_pct;
  if show_loops > 0 then begin
    let t =
      Report.Table.create
        [ "loop"; "depth"; "invocations"; "parallel"; "serial"; "final"; "speedup" ]
    in
    List.iteri
      (fun i (l : Loopa.Evaluate.loop_result) ->
        if i < show_loops then
          Report.Table.add_row t
            [
              Printf.sprintf "%s/bb%d" l.Loopa.Evaluate.fname l.Loopa.Evaluate.header;
              string_of_int l.Loopa.Evaluate.depth;
              string_of_int l.Loopa.Evaluate.invocations;
              string_of_int l.Loopa.Evaluate.parallel_invocations;
              Printf.sprintf "%.0f" l.Loopa.Evaluate.serial_cost;
              Printf.sprintf "%.0f" l.Loopa.Evaluate.final_cost;
              Printf.sprintf "%.2fx"
                (l.Loopa.Evaluate.serial_cost /. Float.max 1.0 l.Loopa.Evaluate.final_cost);
            ])
      r.Loopa.Evaluate.loops;
    print_newline ();
    print_endline (Report.Table.render t)
  end

let static_dep_arg =
  Arg.(
    value & flag
    & info [ "static-dep" ]
        ~doc:
          "Dump the static dependence tester's per-loop verdicts (proven-doall, \
           proven-lcd with witness, or unknown) before the report.")

let print_static_verdicts (ms : Loopa.Classify.module_static) =
  let t = Report.Table.create [ "loop"; "depth"; "trip"; "pairs"; "verdict" ] in
  Hashtbl.fold (fun _ fs acc -> fs :: acc) ms.Loopa.Classify.funcs []
  |> List.sort (fun a b -> compare a.Loopa.Classify.fname b.Loopa.Classify.fname)
  |> List.iter (fun (fs : Loopa.Classify.func_static) ->
         Array.iter
           (fun (ls : Loopa.Classify.loop_static) ->
             let d = ls.Loopa.Classify.dep in
             Report.Table.add_row t
               [
                 Printf.sprintf "%s/bb%d" fs.Loopa.Classify.fname ls.Loopa.Classify.header;
                 string_of_int ls.Loopa.Classify.depth;
                 (match ls.Loopa.Classify.trip with
                 | Some n -> Int64.to_string n
                 | None -> "?");
                 Printf.sprintf "%d/%d" d.Deptest.Analysis.n_refuted
                   d.Deptest.Analysis.n_pairs;
                 Deptest.Analysis.verdict_to_string d.Deptest.Analysis.verdict;
               ])
           fs.Loopa.Classify.loops);
  print_endline (Report.Table.render t);
  print_newline ()

let analyze_cmd =
  let run target config fuel loops optimize static_dep =
    handle_errors (fun () ->
        let cfg = Loopa.Config.of_string config in
        let a = Loopa.Driver.analyze_source ~fuel ~optimize (read_program target) in
        if static_dep then print_static_verdicts a.Loopa.Driver.ms;
        print_report ~show_loops:loops (Loopa.Driver.evaluate a cfg))
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Run the limit study on a program under one configuration.")
    Term.(
      const run $ target_arg $ config_arg $ fuel_arg $ loops_arg $ optimize_arg
      $ static_dep_arg)

(* ---- sweep ---- *)

let sweep_cmd =
  let run target fuel =
    handle_errors (fun () ->
        let a = Loopa.Driver.analyze_source ~fuel (read_program target) in
        let t =
          Report.Table.create [ "configuration"; "speedup"; "coverage %"; "static %" ]
        in
        List.iter
          (fun cfg ->
            let r = Loopa.Driver.evaluate a cfg in
            Report.Table.add_row t
              [
                Loopa.Config.name cfg;
                Printf.sprintf "%.2f" r.Loopa.Evaluate.speedup;
                Printf.sprintf "%.1f" r.Loopa.Evaluate.coverage_pct;
                Printf.sprintf "%.1f" r.Loopa.Evaluate.static_coverage_pct;
              ])
          Loopa.Config.figure_ladder;
        print_endline (Report.Table.render t))
  in
  Cmd.v
    (Cmd.info "sweep" ~doc:"Evaluate the full Figure-2/3 configuration ladder.")
    Term.(const run $ target_arg $ fuel_arg)

(* ---- census ---- *)

let census_cmd =
  let run target fuel =
    handle_errors (fun () ->
        let a = Loopa.Driver.analyze_source ~fuel (read_program target) in
        Format.printf "%a@." Loopa.Taxonomy.pp
          (Loopa.Taxonomy.of_profile a.Loopa.Driver.profile))
  in
  Cmd.v
    (Cmd.info "census"
       ~doc:"Print the Table-I census of ordering constraints for a program.")
    Term.(const run $ target_arg $ fuel_arg)

(* ---- dump-ir ---- *)

let dump_ir_cmd =
  let run target optimize =
    handle_errors (fun () ->
        let m = Frontend.compile_exn (read_program target) in
        if optimize then Opt.Pipeline.run_module m;
        Cfg.Loop_simplify.run_module m;
        Ir.Verifier.check_module_exn m;
        print_string (Ir.Pp.module_to_string m))
  in
  Cmd.v
    (Cmd.info "dump-ir" ~doc:"Print the canonicalized SSA IR of a program.")
    Term.(const run $ target_arg $ optimize_arg)

let () =
  let doc = "Loopapalooza: a compiler-driven limit study of loop-level parallelism" in
  let info = Cmd.info "loopapalooza" ~version:"1.0.0" ~doc in
  exit (Cmd.eval' (Cmd.group info [ list_cmd; run_cmd; analyze_cmd; sweep_cmd; census_cmd; dump_ir_cmd ]))
