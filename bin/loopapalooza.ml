(* Command-line front door to the limit-study framework.

     loopapalooza list                      — benchmark registry
     loopapalooza run <file|bench>         — execute a Looplang program
     loopapalooza analyze <file|bench>     — limit study under one config
     loopapalooza sweep <file|bench>       — the full Figure-2/3 config ladder
     loopapalooza parrun <targets..>       — guarded parallel DOALL execution
     loopapalooza campaign <targets..>     — fault-tolerant whole-suite runs
     loopapalooza chaos [targets..]        — seeded fault-injection soak
     loopapalooza repro show|replay|shrink — crash-repro bundles
     loopapalooza census <file|bench>      — Table-I census of the program
     loopapalooza dump-ir <file|bench>     — canonicalized SSA dump
     loopapalooza lint <files|bench..>     — static diagnostics (text or JSON)

   Exit codes: 0 success; 1 compile/runtime error in the target program
   (for `lint`: any error-severity diagnostic);
   2 usage error (bad configuration, unknown target, bad flags);
   3 unexpected internal error (classified and printed, never a raw
   backtrace). `repro replay` adds 4 (failure vanished) and 5 (failure
   changed fingerprint). `campaign` and `sweep` add 6 (interrupted by
   SIGINT/SIGTERM — checkpointed work is flushed and resumable). For
   `chaos`, 1 means a supervision invariant was violated. *)

open Cmdliner

let read_program target =
  match Suites.Suite.find target with
  | Some b -> b.Suites.Suite.source
  | None ->
      if Sys.file_exists target then In_channel.with_open_text target In_channel.input_all
      else
        let hint =
          match Suites.Suite.closest target with
          | Some name -> Printf.sprintf " (did you mean %S?)" name
          | None -> ""
        in
        raise
          (Invalid_argument
             (Printf.sprintf "%S is neither a benchmark name nor a file%s" target hint))

let target_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"PROGRAM" ~doc:"A registered benchmark name or a Looplang source file.")

let optimize_arg =
  Arg.(
    value & flag
    & info [ "O"; "optimize" ]
        ~doc:"Run the constant-folding/DCE/CFG-cleanup pipeline before analysis.")

let fuel_arg =
  Arg.(
    value
    & opt int Loopa.Config.default_fuel
    & info [ "fuel" ] ~docv:"N"
        ~doc:"Stop (gracefully truncating) after $(docv) interpreted instructions.")

(* Every subcommand body runs under this classifier: expected failures get
   a one-line message and a documented exit code; anything unexpected is
   still classified (exit 3) instead of escaping as a raw backtrace.
   [handle_errors_int] is the same classifier for bodies that pick their
   own success exit code (repro replay's reproduced/vanished/changed). *)
let handle_errors_int f =
  try f () with
  | Frontend.Compile_error e ->
      Printf.eprintf "compile error: %s\n" (Frontend.error_to_string e);
      1
  | Interp.Rvalue.Trap (kind, msg) ->
      Printf.eprintf "runtime trap (%s): %s\n"
        (Interp.Rvalue.trap_kind_to_string kind)
        msg;
      1
  | Interp.Rvalue.Runtime_error msg ->
      Printf.eprintf "runtime error: %s\n" msg;
      1
  | Invalid_argument msg
  | Loopa.Config.Bad_config msg
  | Exec.Remote.Remote_error msg
  | Service.Client.Client_error msg ->
      Printf.eprintf "error: %s\n" msg;
      2
  | Sys_error msg ->
      Printf.eprintf "system error: %s\n" msg;
      2
  | Ir.Verifier.Invalid_ir msg ->
      Printf.eprintf "internal error: IR verifier rejected the module: %s\n" msg;
      3
  | Loopa.Crosscheck.Unsound msg ->
      Printf.eprintf "internal error: %s\n" msg;
      3
  | Campaign.Runner.Interrupted ->
      Printf.eprintf "interrupted — checkpointed results flushed; rerun with --resume\n";
      6
  | Stack_overflow ->
      Printf.eprintf "internal error: stack overflow\n";
      3
  | e ->
      Printf.eprintf "internal error: unexpected exception: %s\n" (Printexc.to_string e);
      3

let handle_errors f =
  handle_errors_int (fun () ->
      f ();
      0)

(* ---- telemetry flags (analyze / sweep / campaign) ---- *)

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record pipeline telemetry and write a Chrome trace-event JSON of \
           every span to $(docv); load it in chrome://tracing or Perfetto.")

let metrics_arg =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:
          "Record pipeline telemetry and print the metrics dump (span tree, \
           counters, histograms) after the run.")

let prom_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "prom" ] ~docv:"FILE"
        ~doc:
          "Record pipeline telemetry and write a Prometheus-style text dump \
           of counters, histograms and span aggregates to $(docv).")

(* ---- parallelism (sweep / campaign) ---- *)

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Run tasks across $(docv) forked worker processes with dynamic \
           work-stealing; 0 means one per detected core. Results (and the \
           campaign checkpoint) are identical to a serial run.")

let resolve_jobs jobs =
  if jobs < 0 then
    raise (Invalid_argument (Printf.sprintf "--jobs %d: want 0 or a positive count" jobs))
  else if jobs = 0 then Exec.Pool.detect_jobs ()
  else jobs

(* ---- result cache (analyze / sweep / campaign) ---- *)

let cache_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache" ] ~docv:"DIR"
        ~doc:
          "Serve results from (and store fresh results into) the \
           content-addressed cache at $(docv). Keys cover the source bytes, \
           every result-shaping knob and the code revision \
           ($(b,LOOPA_GIT_REV)), so a warm hit replays byte-identical output \
           without compiling or classifying anything.")

(* ---- remote workers (sweep / campaign) ---- *)

let workers_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "workers" ] ~docv:"HOST:PORT,..."
        ~doc:
          "Shard tasks across remote workers: listen on each $(docv) endpoint \
           and wait for a $(b,loopapalooza worker --connect) process to dial \
           in before starting. Remote workers ride the same supervision \
           (watchdog, backoff, circuit breaker) as local forked ones.")

(* Listen on every configured endpoint and wait for the worker fleet to
   dial in; returns the connected, hello-validated sockets. The listening
   fds are closed as soon as their worker arrives — one worker per
   endpoint. *)
let connect_workers = function
  | None -> []
  | Some spec ->
      let endpoints = Exec.Remote.parse_hostports spec in
      if endpoints = [] then
        raise (Invalid_argument "--workers: no endpoints in the list");
      List.map
        (fun (host, port) ->
          let lfd = Exec.Remote.listen ~host ~port in
          Printf.eprintf "waiting for worker on %s:%d\n%!" host
            (Exec.Remote.bound_port lfd);
          Fun.protect
            ~finally:(fun () -> try Unix.close lfd with Unix.Unix_error _ -> ())
            (fun () -> Exec.Remote.accept_worker lfd))
        endpoints

let close_workers remotes =
  List.iter
    (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
    remotes

(* Enable recording iff any exporter was requested, and export on the way
   out even when the body fails — the trace of a failed pipeline is exactly
   the thing worth looking at. *)
let with_telemetry ~trace ~metrics ~prom f =
  if trace = None && (not metrics) && prom = None then f ()
  else begin
    Obs.Telemetry.enable ();
    let export () =
      Option.iter Obs.Export.write_chrome_trace trace;
      Option.iter Obs.Export.write_prometheus prom;
      if metrics then print_string (Report.Metrics.render ())
    in
    Fun.protect ~finally:export f
  end

(* ---- live observability endpoint (sweep / parrun / campaign) ---- *)

let serve_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "serve" ] ~docv:"PORT"
        ~doc:
          "Serve live observability on 127.0.0.1:$(docv) while the run is in \
           flight: Prometheus text at /metrics and a JSON progress snapshot \
           at /status. Port 0 picks a free port (printed to stderr). \
           Implies telemetry recording.")

(* Start/stop the forked responder around [f]; recording is forced on so
   /metrics has content. Publishing is the command's job: each pushes a
   fresh snapshot at its natural progress points. *)
let with_serve serve f =
  match serve with
  | None -> f None
  | Some port ->
      Obs.Telemetry.enable ();
      let srv = Prof.Serve.start ~port () in
      Printf.eprintf "serving http://127.0.0.1:%d/metrics and /status\n%!"
        (Prof.Serve.port srv);
      Fun.protect ~finally:(fun () -> Prof.Serve.stop srv) (fun () -> f (Some srv))

let publish_status srv status =
  Option.iter
    (fun srv ->
      Prof.Serve.publish srv ~metrics:(Obs.Export.prometheus ()) ~status)
    srv

(* ---- list ---- *)

let list_cmd =
  let run () =
    let t = Report.Table.create [ "name"; "suite"; "description" ] in
    List.iter
      (fun (b : Suites.Suite.benchmark) ->
        Report.Table.add_row t
          [
            b.Suites.Suite.name;
            Suites.Suite.category_name b.Suites.Suite.category;
            b.Suites.Suite.descr;
          ])
      (Suites.Suite.all ());
    print_endline (Report.Table.render t);
    0
  in
  Cmd.v
    (Cmd.info "list" ~doc:"List the registered benchmark suites.")
    Term.(const run $ const ())

(* ---- run ---- *)

let run_cmd =
  let run target fuel =
    handle_errors (fun () ->
        let out = Loopa.Driver.run_source ~fuel (read_program target) in
        print_string out.Interp.Machine.output;
        (match out.Interp.Machine.stop with
        | Interp.Machine.Completed -> ()
        | stop ->
            Printf.printf "[%s — output above is the executed prefix]\n"
              (Interp.Machine.stop_reason_to_string stop));
        Printf.printf "[%d dynamic IR instructions, %d heap words]\n"
          out.Interp.Machine.clock out.Interp.Machine.mem_words)
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Execute a Looplang program on the reference interpreter.")
    Term.(const run $ target_arg $ fuel_arg)

(* ---- analyze ---- *)

let config_arg =
  Arg.(
    value
    & opt string "reduc1-dep1-fn2 HELIX"
    & info [ "c"; "config" ] ~docv:"CONFIG"
        ~doc:
          "Configuration: $(b,reducR-depD-fnF) plus a model name (DOALL, PDOALL or \
           HELIX), e.g. \"reduc1-dep2-fn2 PDOALL\".")

let loops_arg =
  Arg.(
    value & opt int 8
    & info [ "loops" ] ~docv:"N" ~doc:"Show the $(docv) costliest loops (0 = none).")

(* Report rendering lives in Service.Render, shared with the daemon —
   the byte-identity contract between `analyze` here and `client
   analyze` against a daemon holds because both print that exact
   string. *)

let static_dep_arg =
  Arg.(
    value & flag
    & info [ "static-dep" ]
        ~doc:
          "Dump the static dependence tester's per-loop verdicts (proven-doall, \
           proven-lcd with witness, or unknown) before the report.")

let print_static_verdicts (ms : Loopa.Classify.module_static) =
  let t =
    Report.Table.create
      [ "loop"; "depth"; "trip"; "pairs"; "verdict"; "range-resolved"; "audit" ]
  in
  Hashtbl.fold (fun _ fs acc -> fs :: acc) ms.Loopa.Classify.funcs []
  |> List.sort (fun a b -> compare a.Loopa.Classify.fname b.Loopa.Classify.fname)
  |> List.iter (fun (fs : Loopa.Classify.func_static) ->
         Array.iter
           (fun (ls : Loopa.Classify.loop_static) ->
             let d = ls.Loopa.Classify.dep in
             Report.Table.add_row t
               [
                 Printf.sprintf "%s/bb%d" fs.Loopa.Classify.fname ls.Loopa.Classify.header;
                 string_of_int ls.Loopa.Classify.depth;
                 (match (ls.Loopa.Classify.trip, ls.Loopa.Classify.trip_bound) with
                 | Some n, _ -> Int64.to_string n
                 | None, Some b -> Printf.sprintf "<=%Ld" b
                 | None, None -> "?");
                 Printf.sprintf "%d/%d" d.Deptest.Analysis.n_refuted
                   d.Deptest.Analysis.n_pairs;
                 Deptest.Analysis.verdict_to_string d.Deptest.Analysis.verdict;
                 (if Loopa.Classify.range_resolved ls then "yes" else "");
                 (match ls.Loopa.Classify.audit with
                 | Some Dataflow.Audit.Certified -> "certified"
                 | Some (Dataflow.Audit.Refuted _) -> "downgraded"
                 | None -> "-");
               ])
           fs.Loopa.Classify.loops);
  print_endline (Report.Table.render t);
  print_newline ()

(* The headline before/after delta the dataflow layer buys: how many loops
   the range-strengthened tests resolved out of the baseline Unknowns, and
   how many Proven_doall verdicts the safety audit took back. *)
let dep_delta_line (ms : Loopa.Classify.module_static) =
  let loops, resolved, downgraded =
    Hashtbl.fold
      (fun _ fs (l, r, d) ->
        Array.fold_left
          (fun (l, r, d) ls ->
            ( l + 1,
              (if Loopa.Classify.range_resolved ls then r + 1 else r),
              match ls.Loopa.Classify.audit with
              | Some (Dataflow.Audit.Refuted _) -> d + 1
              | _ -> d ))
          (l, r, d) fs.Loopa.Classify.loops)
      ms.Loopa.Classify.funcs (0, 0, 0)
  in
  let before, after = Loopa.Classify.unknown_delta ms in
  Printf.sprintf
    "static dep   : %d loops, unknown %d -> %d (range-resolved %d, audit-downgraded %d)\n"
    loops before after resolved downgraded


(* The text summary behind `analyze --profile`: hottest frames by exact
   self-instruction attribution (the only place per-frame wall time is
   shown — the folded exports stay wall-free and byte-deterministic),
   the opcode mix, and the emitted file list. *)
let print_hotspot_profile ~base ~name h =
  let files = Prof.Hotspot.write_files h ~base ~name in
  print_newline ();
  Printf.printf "profile: %d instructions attributed, %d samples at period %d\n"
    (Prof.Hotspot.total_instrs h)
    (Prof.Hotspot.n_samples h)
    (Prof.Hotspot.sample_period h);
  let total = max 1 (Prof.Hotspot.total_instrs h) in
  let t = Report.Table.create [ "frame"; "self instrs"; "%"; "wall s" ] in
  List.iteri
    (fun i (frame, instrs, wall) ->
      if i < 12 then
        Report.Table.add_row t
          [
            frame;
            string_of_int instrs;
            Printf.sprintf "%.1f" (100.0 *. float_of_int instrs /. float_of_int total);
            Printf.sprintf "%.4f" wall;
          ])
    (Prof.Hotspot.flat h);
  print_endline (Report.Table.render t);
  (match Prof.Hotspot.opcode_counts h with
  | [] -> ()
  | ops ->
      print_newline ();
      print_endline "opcode mix (retired instructions):";
      List.iteri
        (fun i (op, n) -> if i < 8 then Printf.printf "  %-12s %d\n" op n)
        (List.sort (fun (_, a) (_, b) -> compare (b : int) a) ops));
  List.iter (fun p -> Printf.printf "wrote %s\n" p) files

let profile_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "profile" ] ~docv:"FILE"
        ~doc:
          "Self-profile the interpreted run and write folded-stack \
           flamegraphs: $(docv) (exact, instruction-weighted; per-frame \
           totals sum to instructions_retired), $(i,FILE).samples.folded \
           (sampled) and $(i,FILE).speedscope.json. Also prints the hottest \
           frames and the opcode mix.")

let sample_period_arg =
  Arg.(
    value & opt int Prof.Hotspot.default_period
    & info [ "sample-period" ] ~docv:"N"
        ~doc:
          "Take one guest-stack sample every $(docv) retired instructions \
           (deterministic: placement is a pure function of the clock).")

let analyze_cmd =
  let run target config fuel loops optimize static_dep profile sample_period
      cache trace metrics prom =
    handle_errors (fun () ->
        with_telemetry ~trace ~metrics ~prom (fun () ->
            let source = read_program target in
            (* --static-dep and --profile add output the cached entry does
               not cover; they bypass the cache rather than truncate it *)
            let cache =
              if static_dep || profile <> None then None
              else Option.map Service.Cache.open_dir cache
            in
            let key =
              Service.Cache.key ~source
                ~fingerprint:
                  (Service.Keys.analyze ~config ~fuel ~loops ~optimize)
            in
            let cached_text =
              Option.bind cache (fun c ->
                  Option.bind (Service.Cache.find c key) (fun v ->
                      Option.bind (Util.Json.member "text" v) Util.Json.to_str))
            in
            match cached_text with
            | Some text ->
                (* warm hit: no compile, no classify — just the bytes *)
                print_string text
            | None ->
                let cfg = Loopa.Config.of_string config in
                let hotspot =
                  Option.map
                    (fun _ ->
                      Prof.Hotspot.create ~sample_period:(max 1 sample_period) ())
                    profile
                in
                let a = Loopa.Driver.analyze_source ~fuel ~optimize ?hotspot source in
                if static_dep then print_static_verdicts a.Loopa.Driver.ms;
                let text =
                  Service.Render.report ~show_loops:loops
                    (Loopa.Driver.evaluate a cfg)
                in
                Option.iter
                  (fun c ->
                    Service.Cache.store c key
                      (Util.Json.Obj
                         [
                           ("kind", Util.Json.String "analyze");
                           ("text", Util.Json.String text);
                         ]))
                  cache;
                print_string text;
                (match (profile, hotspot) with
                | Some base, Some h -> print_hotspot_profile ~base ~name:target h
                | _ -> ())))
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Run the limit study on a program under one configuration.")
    Term.(
      const run $ target_arg $ config_arg $ fuel_arg $ loops_arg $ optimize_arg
      $ static_dep_arg $ profile_arg $ sample_period_arg $ cache_arg $ trace_arg
      $ metrics_arg $ prom_arg)

(* ---- sweep ---- *)

(* guarded parallel execution speaks Parrun.Guard rows; the report layer
   renders its own plain record — bridge the two *)
let calib_report_rows rows =
  List.map
    (fun (r : Parrun.Guard.calib_row) ->
      {
        Report.Calibration.fname = r.Parrun.Guard.cb_fname;
        lid = r.Parrun.Guard.cb_lid;
        header = r.Parrun.Guard.cb_header;
        eligible = r.Parrun.Guard.cb_eligible;
        why = r.Parrun.Guard.cb_why;
        invocations = r.Parrun.Guard.cb_invocations;
        sharded = r.Parrun.Guard.cb_sharded;
        committed = r.Parrun.Guard.cb_committed;
        rollbacks = r.Parrun.Guard.cb_rollbacks;
        conflicts = r.Parrun.Guard.cb_conflicts;
        quarantined = r.Parrun.Guard.cb_quarantined;
        serial_s = r.Parrun.Guard.cb_serial_s;
        parallel_s = r.Parrun.Guard.cb_parallel_s;
        measured = r.Parrun.Guard.cb_measured;
        predicted = r.Parrun.Guard.cb_predicted;
      })
    rows

let sweep_cmd =
  let run target fuel jobs parallel_loops cache workers serve trace metrics prom
      =
    handle_errors (fun () ->
        with_telemetry ~trace ~metrics ~prom (fun () ->
        with_serve serve (fun srv ->
            let sweep_status state =
              Util.Json.Obj
                [
                  ("command", Util.Json.String "sweep");
                  ("target", Util.Json.String target);
                  ("state", Util.Json.String state);
                ]
            in
            publish_status srv (sweep_status "analyzing");
            let source = read_program target in
            let jobs = resolve_jobs jobs in
            (* --parallel-loops times a live run; cached bytes cannot
               stand in for it, so it bypasses the cache *)
            let cache =
              if parallel_loops then None
              else Option.map Service.Cache.open_dir cache
            in
            let key =
              Service.Cache.key ~source
                ~fingerprint:(Service.Keys.sweep ~fuel)
            in
            let cached_text =
              Option.bind cache (fun c ->
                  Option.bind (Service.Cache.find c key) (fun v ->
                      Option.bind (Util.Json.member "text" v) Util.Json.to_str))
            in
            (match cached_text with
            | Some text -> print_string text
            | None ->
                let a = Loopa.Driver.analyze_source ~fuel source in
                let b = Buffer.create 512 in
                Buffer.add_string b (dep_delta_line a.Loopa.Driver.ms);
                Buffer.add_char b '\n';
                let configs = Array.of_list Loopa.Config.figure_ladder in
                let rows =
                  if jobs <= 1 && workers = None then
                    Array.to_list
                      (Array.map
                         (fun cfg ->
                           Service.Worker.sweep_row (Loopa.Driver.evaluate a cfg))
                         configs)
                  else begin
                    (* each rung is one pool task; the analysis rides into
                       local workers through the fork image and into remote
                       ones through the sweep-init frame — only the four
                       rendered cells come back over the wire *)
                    let remotes = connect_workers workers in
                    List.iter
                      (fun fd ->
                        Exec.Ipc.write fd
                          (Service.Worker.sweep_init_json ~fuel
                             ~configs:Loopa.Config.figure_ladder ~src:source))
                      remotes;
                    let work payload =
                      let k = Option.value ~default:0 (Util.Json.to_int payload) in
                      Util.Json.List
                        (List.map
                           (fun s -> Util.Json.String s)
                           (Service.Worker.sweep_row
                              (Loopa.Driver.evaluate a configs.(k))))
                    in
                    let outcomes, _stats =
                      Exec.Pool.run ~jobs ~remotes ~work
                        (Array.init (Array.length configs) (fun i ->
                             Util.Json.Int i))
                    in
                    close_workers remotes;
                    Array.to_list
                      (Array.mapi
                         (fun i outcome ->
                           match outcome with
                           | Some (Exec.Pool.Done (Util.Json.List cells)) ->
                               List.map
                                 (fun c ->
                                   Option.value ~default:"?" (Util.Json.to_str c))
                                 cells
                           | Some (Exec.Pool.Lost cause) ->
                               [
                                 Loopa.Config.name configs.(i);
                                 "lost: " ^ cause;
                                 "-";
                                 "-";
                               ]
                           | _ -> [ Loopa.Config.name configs.(i); "?"; "-"; "-" ])
                         outcomes)
                  end
                in
                let t =
                  Report.Table.create
                    [ "configuration"; "speedup"; "coverage %"; "static %" ]
                in
                List.iter (Report.Table.add_row t) rows;
                Printf.bprintf b "%s\n" (Report.Table.render t);
                let text = Buffer.contents b in
                (* rows with a lost worker are not a result — don't cache them *)
                let complete =
                  not (List.exists (List.exists (fun c -> c = "?" || c = "-")) rows)
                in
                if complete then
                  Option.iter
                    (fun c ->
                      Service.Cache.store c key
                        (Util.Json.Obj
                           [
                             ("kind", Util.Json.String "sweep");
                             ("text", Util.Json.String text);
                           ]))
                    cache;
                print_string text);
            publish_status srv (sweep_status "done");
            (* ---- guarded parallel execution: predicted vs measured ---- *)
            if parallel_loops then begin
              let knobs =
                {
                  Parrun.Runner.default_knobs with
                  Parrun.Runner.jobs = max 2 jobs;
                }
              in
              print_newline ();
              print_endline "guarded parallel execution (measured vs predicted):";
              match Parrun.Guard.run ~knobs ~fuel ~target source with
              | Error f -> print_endline (Loopa.Driver.failure_to_string f)
              | Ok r ->
                  print_endline
                    (Report.Calibration.render (calib_report_rows r.Parrun.Guard.rows));
                  Printf.printf "serial %.4fs  parallel %.4fs  %s\n"
                    r.Parrun.Guard.serial_wall r.Parrun.Guard.parallel_wall
                    (if r.Parrun.Guard.identical then "byte-identical"
                     else "DIVERGED")
            end)))
  in
  let parallel_loops_arg =
    Arg.(
      value & flag
      & info [ "parallel-loops" ]
          ~doc:
            "Additionally execute the program under the guarded parallel \
             runtime and append a calibration table: measured parallel \
             speedup per proven-DOALL loop against the cost model's \
             prediction.")
  in
  Cmd.v
    (Cmd.info "sweep" ~doc:"Evaluate the full Figure-2/3 configuration ladder.")
    Term.(
      const run $ target_arg $ fuel_arg $ jobs_arg $ parallel_loops_arg
      $ cache_arg $ workers_arg $ serve_arg $ trace_arg $ metrics_arg
      $ prom_arg)

(* ---- parrun ---- *)

let print_parrun_result target (r : Parrun.Guard.result) =
  Printf.printf "== %s ==\n" target;
  let rows = calib_report_rows r.Parrun.Guard.rows in
  if rows = [] then print_endline "no Proven_doall loops"
  else begin
    print_endline (Report.Calibration.render rows);
    let chart = Report.Calibration.chart rows in
    if chart <> "" then begin
      print_newline ();
      print_endline chart
    end
  end;
  Printf.printf "serial %.4fs  parallel %.4fs  %s\n" r.Parrun.Guard.serial_wall
    r.Parrun.Guard.parallel_wall
    (if r.Parrun.Guard.identical then "byte-identical"
     else "DIVERGED (guarded execution is unsound — this is a bug)");
  if Exec.Pool.detect_jobs () < 2 then
    print_endline
      "note: 1 core online — shards timeshare the CPU, so measured speedup \
       is capped below 1x on this host";
  if not r.Parrun.Guard.identical then
    List.iter (fun d -> Printf.printf "  diff: %s\n" d) r.Parrun.Guard.diffs;
  List.iter
    (fun (c : Parrun.Runner.conflict_record) ->
      Printf.printf "conflict: %s — %s%s\n" c.Parrun.Runner.cf_fingerprint
        c.Parrun.Runner.cf_message
        (match c.Parrun.Runner.cf_bundle with
        | Some p -> Printf.sprintf " (bundle: %s)" p
        | None -> ""))
    (Parrun.Runner.conflicts r.Parrun.Guard.runner)

let parrun_result_json target (r : Parrun.Guard.result) : Util.Json.t =
  Util.Json.Obj
    [
      ("target", Util.Json.String target);
      ("identical", Util.Json.Bool r.Parrun.Guard.identical);
      ( "diffs",
        Util.Json.List
          (List.map (fun d -> Util.Json.String d) r.Parrun.Guard.diffs) );
      ("serial_wall_s", Util.Json.Float r.Parrun.Guard.serial_wall);
      ("parallel_wall_s", Util.Json.Float r.Parrun.Guard.parallel_wall);
      ( "loops",
        Util.Json.List
          (List.map Report.Calibration.row_to_json
             (calib_report_rows r.Parrun.Guard.rows)) );
      ( "conflicts",
        Util.Json.List
          (List.map
             (fun (c : Parrun.Runner.conflict_record) ->
               Util.Json.Obj
                 [
                   ("fingerprint", Util.Json.String c.Parrun.Runner.cf_fingerprint);
                   ("message", Util.Json.String c.Parrun.Runner.cf_message);
                   ( "bundle",
                     match c.Parrun.Runner.cf_bundle with
                     | Some p -> Util.Json.String p
                     | None -> Util.Json.Null );
                 ])
             (Parrun.Runner.conflicts r.Parrun.Guard.runner)) );
    ]

let parrun_cmd =
  let run targets all fuel jobs min_trip quarantine_path repro_dir watchdog
      chaos_seed no_predict fail_on_quarantine json serve trace metrics prom =
    handle_errors_int (fun () ->
        with_telemetry ~trace ~metrics ~prom (fun () ->
        with_serve serve (fun srv ->
            let targets =
              if all then Suites.Suite.names ()
              else if targets = [] then
                raise (Invalid_argument "no targets (name some, or pass --all)")
              else targets
            in
            let jobs = resolve_jobs jobs in
            let knobs =
              {
                Parrun.Runner.default_knobs with
                Parrun.Runner.jobs;
                min_trip;
                watchdog_s = watchdog;
                chaos = Option.map Exec.Chaos.shard_seeded chaos_seed;
              }
            in
            let quarantine =
              match quarantine_path with
              | Some p -> Parrun.Quarantine.load p
              | None -> Parrun.Quarantine.create ()
            in
            let pre_quarantined = Parrun.Quarantine.size quarantine in
            let diverged = ref [] and failed = ref [] and docs = ref [] in
            let n_done = ref 0 in
            let total = List.length targets in
            let publish_progress () =
              publish_status srv
                (Util.Json.Obj
                   [
                     ("command", Util.Json.String "parrun");
                     ("done", Util.Json.Int !n_done);
                     ("total", Util.Json.Int total);
                     ("diverged", Util.Json.Int (List.length !diverged));
                     ("failed", Util.Json.Int (List.length !failed));
                     ( "quarantined",
                       Util.Json.Int (Parrun.Quarantine.size quarantine) );
                   ])
            in
            publish_progress ();
            List.iter
              (fun target ->
                (match
                   Parrun.Guard.run ~knobs ~quarantine ?repro_dir ~fuel
                     ~predict:(not no_predict) ~target (read_program target)
                 with
                | Error f ->
                    failed := target :: !failed;
                    Printf.eprintf "%s: %s\n" target
                      (Loopa.Driver.failure_to_string f)
                | Ok r ->
                    if json then docs := parrun_result_json target r :: !docs
                    else begin
                      print_parrun_result target r;
                      print_newline ()
                    end;
                    if not r.Parrun.Guard.identical then
                      diverged := target :: !diverged);
                incr n_done;
                publish_progress ())
              targets;
            Option.iter (Parrun.Quarantine.save quarantine) quarantine_path;
            if json then
              print_endline
                (Util.Json.to_string (Util.Json.List (List.rev !docs)));
            let newly = Parrun.Quarantine.size quarantine - pre_quarantined in
            if newly > 0 then
              Printf.eprintf "%d verdict(s) newly quarantined\n" newly;
            if !diverged <> [] then begin
              Printf.eprintf "DIVERGENCE on: %s\n"
                (String.concat ", " (List.rev !diverged));
              1
            end
            else if !failed <> [] then 1
            else if fail_on_quarantine && newly > 0 then 1
            else 0)))
  in
  let targets_arg =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"PROGRAM"
          ~doc:"Registered benchmark names or Looplang source files.")
  in
  let all_arg =
    Arg.(
      value & flag
      & info [ "all" ] ~doc:"Run every benchmark in the registry.")
  in
  let par_jobs_arg =
    Arg.(
      value & opt int 0
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Shards per eligible loop invocation; 0 means one per detected \
             core, 1 disables sharding (everything runs serially).")
  in
  let min_trip_arg =
    Arg.(
      value & opt int Parrun.Runner.default_knobs.Parrun.Runner.min_trip
      & info [ "min-trip" ] ~docv:"N"
          ~doc:"Smallest known iteration count worth forking a pool for.")
  in
  let quarantine_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "quarantine" ] ~docv:"FILE"
          ~doc:
            "Load previously quarantined verdicts from $(docv) before running \
             and save the (possibly grown) set back afterwards.")
  in
  let repro_dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "repro-dir" ] ~docv:"DIR"
          ~doc:
            "Write a deterministic repro bundle into $(docv) for every \
             detected conflict; replay with $(b,repro replay).")
  in
  let watchdog_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "watchdog" ] ~docv:"SECONDS"
          ~doc:
            "Per-shard wall deadline: a stalled shard is reaped and the \
             invocation rolls back to serial execution.")
  in
  let chaos_seed_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "chaos-seed" ] ~docv:"SEED"
          ~doc:
            "Inject seeded shard faults (kill/stall/torn/corrupt) to soak the \
             rollback path; results must still be byte-identical.")
  in
  let no_predict_arg =
    Arg.(
      value & flag
      & info [ "no-predict" ]
          ~doc:
            "Skip the cost-model profiling pass (the predicted-speedup column \
             reads as '-').")
  in
  let fail_on_quarantine_arg =
    Arg.(
      value & flag
      & info [ "fail-on-quarantine" ]
          ~doc:
            "Exit non-zero when a run quarantines a verdict that was not \
             already quarantined (CI soak mode: every conflict is news).")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit one JSON document per target instead of text.")
  in
  Cmd.v
    (Cmd.info "parrun"
       ~doc:
         "Guarded parallel DOALL execution: shard proven-parallel loops across \
          forked workers, detect cross-shard conflicts, roll back to serial on \
          any doubt, quarantine lying verdicts, and report measured vs \
          predicted speedup. Exit 1 on divergence (or, with \
          --fail-on-quarantine, on any new quarantine entry).")
    Term.(
      const run $ targets_arg $ all_arg $ fuel_arg $ par_jobs_arg $ min_trip_arg
      $ quarantine_arg $ repro_dir_arg $ watchdog_arg $ chaos_seed_arg
      $ no_predict_arg $ fail_on_quarantine_arg $ json_arg $ serve_arg
      $ trace_arg $ metrics_arg $ prom_arg)

(* ---- campaign ---- *)

(* `--inject NAME=KIND[@CLOCK]` — test-only fault injection used to prove
   the degradation paths end-to-end. KIND: compile (corrupt the source),
   div0, oob, fuel, depth (machine fault at the given clock, default 1000). *)
let parse_inject spec =
  let fail () =
    raise
      (Invalid_argument
         (Printf.sprintf
            "bad --inject %S (want NAME=KIND[@CLOCK] with KIND one of compile, div0, \
             oob, fuel, depth)"
            spec))
  in
  match String.index_opt spec '=' with
  | None -> fail ()
  | Some i ->
      let name = String.sub spec 0 i in
      let rest = String.sub spec (i + 1) (String.length spec - i - 1) in
      let kind, clock =
        match String.index_opt rest '@' with
        | None -> (rest, 1_000)
        | Some j -> (
            let at = String.sub rest (j + 1) (String.length rest - j - 1) in
            match int_of_string_opt at with
            | Some n when n >= 0 -> (String.sub rest 0 j, n)
            | _ -> fail ())
      in
      let fault =
        match kind with
        | "compile" -> `Corrupt_source
        | "div0" -> `Fault Interp.Machine.Inject_div_by_zero
        | "oob" -> `Fault Interp.Machine.Inject_oob
        | "fuel" -> `Fault Interp.Machine.Inject_fuel_out
        | "depth" -> `Fault Interp.Machine.Inject_depth_out
        | _ -> fail ()
      in
      (name, fault, clock)

(* Shared with the daemon via Service.Render, like the analyze report. *)
let print_campaign_summary (s : Campaign.Runner.summary) =
  print_string (Service.Render.campaign_summary s)

let campaign_cmd =
  let targets_arg =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"TARGETS"
          ~doc:"Registered benchmark names or Looplang source files.")
  in
  let all_arg =
    Arg.(
      value & flag
      & info [ "all" ] ~doc:"Run over the whole benchmark registry.")
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Print the summary as JSON on stdout.")
  in
  let checkpoint_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "checkpoint" ] ~docv:"FILE"
          ~doc:"Append one JSONL line per finished task to $(docv).")
  in
  let resume_arg =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:"Reload $(b,--checkpoint) first and skip targets already recorded.")
  in
  let retries_arg =
    Arg.(
      value & opt int 1
      & info [ "retries" ] ~docv:"N"
          ~doc:"Retries at reduced fuel for budget-exhausted tasks.")
  in
  let wall_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "wall" ] ~docv:"SECONDS"
          ~doc:
            "Per-attempt wall-clock budget, polled cooperatively by the \
             interpreter; exceeding it truncates the task.")
  in
  let watchdog_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "watchdog" ] ~docv:"SECONDS"
          ~doc:
            "Per-task wall deadline enforced from the parent under $(b,--jobs): \
             a worker still on the same task past the deadline is SIGKILLed and \
             the task recorded as task-timeout (catches hangs the cooperative \
             $(b,--wall) budget cannot).")
  in
  let inject_arg =
    Arg.(
      value & opt_all string []
      & info [ "inject" ] ~docv:"NAME=KIND[@CLOCK]"
          ~doc:
            "Test-only fault injection for target $(i,NAME): $(b,compile) corrupts \
             the source, $(b,div0)/$(b,oob)/$(b,fuel)/$(b,depth) fire the fault at \
             the given clock (default 1000). Repeatable.")
  in
  let repro_dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "repro-dir" ] ~docv:"DIR"
          ~doc:
            "Drop a self-contained repro bundle ($(i,target).repro.json) in \
             $(docv) for every errored task; replay or shrink them with the \
             $(b,repro) subcommands.")
  in
  let profile_dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "profile-dir" ] ~docv:"DIR"
          ~doc:
            "Self-profile every task's full-fuel attempt and drop \
             $(i,target).folded, $(i,target).samples.folded and \
             $(i,target).speedscope.json flamegraph files in $(docv).")
  in
  let run targets all json checkpoint resume retries fuel wall watchdog injects
      repro_dir profile_dir jobs cache workers serve trace metrics prom =
    handle_errors (fun () ->
        if (not all) && targets = [] then
          raise (Invalid_argument "campaign needs TARGETS or --all");
        if resume && checkpoint = None then
          raise (Invalid_argument "--resume needs --checkpoint");
        let injects = List.map parse_inject injects in
        let named =
          if all then
            List.map
              (fun (b : Suites.Suite.benchmark) -> (b.Suites.Suite.name, b.Suites.Suite.source))
              (Suites.Suite.all ())
          else List.map (fun t -> (t, read_program t)) targets
        in
        let named =
          List.map
            (fun (name, src) ->
              let corrupted =
                List.exists (fun (n, f, _) -> n = name && f = `Corrupt_source) injects
              in
              (* an unbalanced brace is a guaranteed front-end error *)
              (name, if corrupted then "} // injected compile fault\n" ^ src else src))
            named
        in
        let faults_of name =
          List.filter_map
            (function
              | n, `Fault f, clock when n = name -> Some (clock, f)
              | _ -> None)
            injects
        in
        let budgets =
          {
            Campaign.Runner.default_budgets with
            Campaign.Runner.fuel;
            retries;
            wall_s = wall;
            watchdog_s = watchdog;
          }
        in
        let log = if json then fun _ -> () else prerr_endline in
        with_telemetry ~trace ~metrics ~prom (fun () ->
        with_serve serve (fun srv ->
            (* a live progress line rides along whenever telemetry is on
               (and the summary is not being parsed off stdout as JSON);
               with --serve, every beat is also published as /status *)
            let log_beat =
              if (not json) && Obs.Telemetry.enabled () then
                Some
                  (fun hb -> prerr_endline (Campaign.Runner.heartbeat_line hb))
              else None
            in
            let publish_beat hb =
              publish_status srv
                (Util.Json.Obj
                   [
                     ("command", Util.Json.String "campaign");
                     ("heartbeat", Campaign.Runner.heartbeat_json hb);
                   ])
            in
            let heartbeat =
              match (log_beat, srv) with
              | None, None -> None
              | _ ->
                  Some
                    (fun hb ->
                      Option.iter (fun f -> f hb) log_beat;
                      if srv <> None then publish_beat hb)
            in
            let jobs = resolve_jobs jobs in
            let remotes = connect_workers workers in
            let executor =
              if remotes <> [] then Campaign.Runner.Forked (max 1 jobs)
              else if jobs > 1 then Campaign.Runner.Forked jobs
              else Campaign.Runner.Serial
            in
            (* fault injection and per-task profiling must not consume or
               poison cached results; both disable the cache outright *)
            let cache =
              if injects <> [] || profile_dir <> None then None
              else Option.map Service.Cache.open_dir cache
            in
            let fingerprint =
              Service.Keys.campaign ~budgets ~configs:Loopa.Config.figure_ladder
            in
            let key_of t =
              Service.Cache.key ~source:(List.assoc t named) ~fingerprint
            in
            let cache_find =
              Option.map
                (fun c t ->
                  Option.bind (Service.Cache.find c (key_of t)) (fun v ->
                      match Campaign.Runner.result_of_json v with
                      | Ok r -> Some { r with Campaign.Runner.target = t }
                      | Error _ -> None))
                cache
            in
            let cache_store =
              Option.map
                (fun c t r ->
                  Service.Cache.store c (key_of t)
                    (Campaign.Runner.result_to_json r))
                cache
            in
            let summary =
              Campaign.Runner.run ~budgets ?checkpoint ~resume ~faults_of
                ?repro_dir ?prof_dir:profile_dir ~log ?heartbeat ~executor
                ?cache_find ?cache_store ~remotes named
            in
            close_workers remotes;
            if json then
              print_endline
                (Util.Json.to_string (Campaign.Runner.summary_to_json summary))
            else print_campaign_summary summary)))
  in
  Cmd.v
    (Cmd.info "campaign"
       ~doc:
         "Fault-tolerant limit-study runs over many targets: per-task isolation and \
          budgets, graceful truncation, JSONL checkpointing and resumption.")
    Term.(
      const run $ targets_arg $ all_arg $ json_arg $ checkpoint_arg $ resume_arg
      $ retries_arg $ fuel_arg $ wall_arg $ watchdog_arg $ inject_arg
      $ repro_dir_arg $ profile_dir_arg $ jobs_arg $ cache_arg $ workers_arg
      $ serve_arg $ trace_arg $ metrics_arg $ prom_arg)

(* ---- chaos ---- *)

(* Checkpoint lines with the nondeterministic fields (wall-clock durations,
   telemetry snapshots) stripped, for byte comparison across same-seed
   runs. Non-object or unparseable lines pass through untouched so a codec
   regression shows up as a diff instead of being normalized away. *)
let normalized_checkpoint path =
  In_channel.with_open_text path In_channel.input_all
  |> String.split_on_char '\n'
  |> List.filter (fun l -> String.trim l <> "")
  |> List.map (fun line ->
         match Util.Json.of_string line with
         | Ok (Util.Json.Obj fields) ->
             Util.Json.to_string
               (Util.Json.Obj
                  (List.filter
                     (fun (k, _) -> k <> "wall_s" && k <> "telemetry")
                     fields))
         | _ -> line)

(* The self-checking soak harness behind `loopapalooza chaos`: two
   campaigns under the same seeded fault schedule, then a chaos-free
   resume of the first checkpoint. Asserts the supervision invariants —
   every task classified, losses exactly the planned lethal faults,
   byte-identical normalized checkpoints, resume runs the file to
   completion — and exits 1 when any is violated. *)
let chaos_cmd =
  let targets_arg =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"TARGETS"
          ~doc:
            "Registered benchmark names or Looplang source files (default: the \
             fp2000 suite).")
  in
  let seed_arg =
    Arg.(
      value & opt int 0
      & info [ "seed" ] ~docv:"N"
          ~doc:
            "Fault-schedule seed. Placement is a pure function of the seed and \
             the task index, so a failing run is replayable from this one \
             integer.")
  in
  let watchdog_arg =
    Arg.(
      value & opt float 5.0
      & info [ "watchdog" ] ~docv:"SECONDS"
          ~doc:
            "Per-task wall deadline; injected SIGSTOP stalls are reaped as \
             task-timeouts after $(docv).")
  in
  let keep_checkpoint_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "checkpoint" ] ~docv:"FILE"
          ~doc:
            "Write the harness checkpoints to $(docv) (second pass adds .2) and \
             keep them; default temp files, removed when the invariants hold.")
  in
  let run targets seed jobs watchdog checkpoint =
    handle_errors_int (fun () ->
        let named =
          if targets = [] then
            List.map
              (fun (b : Suites.Suite.benchmark) ->
                (b.Suites.Suite.name, b.Suites.Suite.source))
              (Suites.Suite.by_category Suites.Suite.Fp2000)
          else List.map (fun t -> (t, read_program t)) targets
        in
        let n = List.length named in
        if n = 0 then raise (Invalid_argument "chaos needs at least one target");
        let jobs = resolve_jobs jobs in
        let executor =
          if jobs > 1 then Campaign.Runner.Forked jobs else Campaign.Runner.Serial
        in
        let plan = Exec.Chaos.seeded seed in
        let budgets =
          {
            Campaign.Runner.default_budgets with
            Campaign.Runner.watchdog_s = Some watchdog;
          }
        in
        let base =
          match checkpoint with
          | Some p -> p
          | None -> Filename.temp_file "loopa-chaos-" ".jsonl"
        in
        let second = base ^ ".2" in
        let log = prerr_endline in
        Printf.printf "chaos: seed %d over %d task(s), jobs %d, watchdog %gs\n"
          seed n jobs watchdog;
        Printf.printf "planned: %s\n%!" (Exec.Chaos.summary plan ~n);
        let pass ckpt =
          Campaign.Runner.run ~budgets ~checkpoint:ckpt ~log ~executor
            ~chaos:plan named
        in
        let s1 = pass base in
        let s2 = pass second in
        let violations = ref [] in
        let fail fmt =
          Printf.ksprintf (fun m -> violations := m :: !violations) fmt
        in
        (* 1. every task classified, both passes *)
        List.iteri
          (fun pi (s : Campaign.Runner.summary) ->
            let got = List.length s.Campaign.Runner.results in
            if got <> n then
              fail "pass %d classified %d of %d tasks" (pi + 1) got n)
          [ s1; s2 ];
        (* 2. losses are exactly the planned lethal faults: nothing is lost
           beyond what chaos injected, and every injected loss surfaces *)
        let lost = ref 0 and timed_out = ref 0 in
        List.iteri
          (fun i (r : Campaign.Runner.result) ->
            let planned = Exec.Chaos.task_fault plan i in
            let planned_lethal =
              match planned with Some f -> Exec.Chaos.lethal f | None -> false
            in
            let observed_loss =
              match r.Campaign.Runner.status with
              | Campaign.Runner.Errored (Campaign.Runner.Worker_lost _) ->
                  incr lost;
                  true
              | Campaign.Runner.Errored (Campaign.Runner.Task_timeout _) ->
                  incr timed_out;
                  true
              | _ -> false
            in
            if planned_lethal && not observed_loss then
              fail "task %d (%s): planned %s but the task survived as %s" i
                r.Campaign.Runner.target
                (match planned with
                | Some f -> Exec.Chaos.fault_name f
                | None -> "?")
                (Campaign.Runner.status_class r.Campaign.Runner.status);
            if observed_loss && not planned_lethal then
              fail "task %d (%s): lost with no planned fault (%s)" i
                r.Campaign.Runner.target
                (Campaign.Runner.status_to_string r.Campaign.Runner.status))
          s1.Campaign.Runner.results;
        (* 3. same seed, same bytes (modulo wall-clock/telemetry fields) *)
        let n1 = normalized_checkpoint base and n2 = normalized_checkpoint second in
        if n1 <> n2 then begin
          fail "same-seed runs diverged: %d vs %d normalized checkpoint lines"
            (List.length n1) (List.length n2);
          List.iteri
            (fun i l1 ->
              match List.nth_opt n2 i with
              | Some l2 when l1 <> l2 ->
                  fail "  first divergence, line %d:\n    pass 1: %s\n    pass 2: %s"
                    (i + 1) l1 l2
              | _ -> ())
            n1
        end;
        let kept = List.length n1 in
        Printf.printf
          "pass 1: %d completed, %d truncated, %d lost, %d timed out, %d \
           degraded; checkpoint kept %d of %d line(s)\n"
          s1.Campaign.Runner.n_completed s1.Campaign.Runner.n_truncated !lost
          !timed_out s1.Campaign.Runner.n_degraded kept n;
        Printf.printf "determinism: %s\n%!"
          (if n1 = n2 then "normalized checkpoints byte-identical" else "DIVERGED");
        (* 4. the survivor checkpoint resumes to completion with chaos off:
           only ckpt-fault-dropped lines are re-run, and they now succeed *)
        let s3 =
          Campaign.Runner.run ~budgets ~checkpoint:base ~resume:true ~log
            ~executor:Campaign.Runner.Serial named
        in
        if List.length s3.Campaign.Runner.results <> n then
          fail "resume classified %d of %d tasks"
            (List.length s3.Campaign.Runner.results)
            n;
        if s3.Campaign.Runner.n_resumed <> kept then
          fail "resume restored %d of %d checkpointed line(s)"
            s3.Campaign.Runner.n_resumed kept;
        Printf.printf "resume: re-ran %d dropped task(s), %d restored\n" (n - kept)
          s3.Campaign.Runner.n_resumed;
        match List.rev !violations with
        | [] ->
            if checkpoint = None then begin
              (try Sys.remove base with Sys_error _ -> ());
              try Sys.remove second with Sys_error _ -> ()
            end;
            Printf.printf "chaos invariants hold (seed %d)\n" seed;
            0
        | vs ->
            List.iter (Printf.eprintf "violation: %s\n") vs;
            Printf.eprintf "chaos invariants VIOLATED (seed %d) — checkpoints kept at %s\n"
              seed base;
            1)
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Soak the executor under a seeded deterministic fault schedule — worker \
          kills, SIGSTOP stalls, torn/corrupt/delayed result frames, checkpoint \
          write failures — and assert the supervision invariants (exit 1 on \
          violation).")
    Term.(const run $ targets_arg $ seed_arg $ jobs_arg $ watchdog_arg
          $ keep_checkpoint_arg)

(* ---- repro ---- *)

let bundle_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"BUNDLE" ~doc:"A repro bundle file (*.repro.json).")

let load_bundle path =
  if not (Sys.file_exists path) then
    raise (Invalid_argument (Printf.sprintf "no such bundle: %s" path));
  match Repro.Bundle.load path with
  | Ok b -> b
  | Error m ->
      raise (Invalid_argument (Printf.sprintf "cannot load bundle %s: %s" path m))

let count_lines s =
  String.fold_left (fun n c -> if c = '\n' then n + 1 else n) 0 s

let print_bundle (b : Repro.Bundle.t) =
  Printf.printf "target      : %s\n" b.Repro.Bundle.target;
  Printf.printf "stage       : %s\n" (Loopa.Driver.stage_name b.Repro.Bundle.stage);
  Printf.printf "fingerprint : %s\n" b.Repro.Bundle.fingerprint;
  Printf.printf "message     : %s\n" b.Repro.Bundle.message;
  Printf.printf "source      : %d lines\n" (count_lines b.Repro.Bundle.source);
  Printf.printf "fuel        : %d\n" b.Repro.Bundle.fuel;
  Option.iter (Printf.printf "mem limit   : %d words\n") b.Repro.Bundle.mem_limit;
  Option.iter (Printf.printf "max depth   : %d\n") b.Repro.Bundle.max_depth;
  if b.Repro.Bundle.configs <> [] then
    Printf.printf "configs     : %s\n"
      (String.concat ", " (List.map Loopa.Config.name b.Repro.Bundle.configs));
  if b.Repro.Bundle.faults <> [] then
    Printf.printf "faults      : %s\n"
      (String.concat ", "
         (List.map
            (fun (clock, f) ->
              Printf.sprintf "%s@%d" (Repro.Bundle.fault_key f) clock)
            b.Repro.Bundle.faults));
  if b.Repro.Bundle.crosscheck then Printf.printf "crosscheck  : yes\n";
  if b.Repro.Bundle.check_invariants then Printf.printf "invariants  : yes\n"

let repro_show_cmd =
  let run path source =
    handle_errors (fun () ->
        let b = load_bundle path in
        if source then print_string b.Repro.Bundle.source else print_bundle b)
  in
  let source_arg =
    Arg.(
      value & flag
      & info [ "source" ] ~doc:"Print the embedded Looplang program instead.")
  in
  Cmd.v
    (Cmd.info "show" ~doc:"Print a repro bundle's metadata (or its program).")
    Term.(const run $ bundle_arg $ source_arg)

let repro_replay_cmd =
  let run path =
    handle_errors_int (fun () ->
        let b = load_bundle path in
        Printf.printf "expected: [%s] %s\n"
          (Loopa.Driver.stage_name b.Repro.Bundle.stage)
          b.Repro.Bundle.fingerprint;
        (* Parrun bundles replay through the guarded runtime (repro can't
           depend on parrun — the dependency points the other way) *)
        let verdict =
          match b.Repro.Bundle.stage with
          | Loopa.Driver.Parrun -> Parrun.Guard.replay b
          | _ -> Repro.Pipeline.replay b
        in
        match verdict with
        | Repro.Pipeline.Reproduced ->
            print_endline "reproduced";
            0
        | Repro.Pipeline.Vanished as v ->
            print_endline (Repro.Pipeline.verdict_to_string v);
            4
        | Repro.Pipeline.Changed _ as v ->
            print_endline (Repro.Pipeline.verdict_to_string v);
            5)
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:
         "Re-run a bundle's pipeline deterministically and compare fingerprints. \
          Exit 0 when the failure reproduces identically, 4 when it vanished, 5 \
          when it changed.")
    Term.(const run $ bundle_arg)

let repro_shrink_cmd =
  let run path out max_candidates =
    handle_errors_int (fun () ->
        let b = load_bundle path in
        match Repro.Shrink.shrink ~max_candidates b with
        | Error m ->
            Printf.eprintf "shrink failed: %s\n" m;
            1
        | Ok (sb, stats) ->
            let strip s suffix =
              if Filename.check_suffix s suffix then Filename.chop_suffix s suffix
              else s
            in
            let base =
              match out with
              | Some o -> strip (strip o ".repro.json") ".loop"
              | None -> strip path ".repro.json" ^ ".min"
            in
            let bundle_path = base ^ ".repro.json" in
            let loop_path = base ^ ".loop" in
            Repro.Bundle.save bundle_path sb;
            Out_channel.with_open_text loop_path (fun oc ->
                output_string oc sb.Repro.Bundle.source);
            Printf.printf "%d -> %d lines (%d candidates tried, %d kept)\n"
              (count_lines b.Repro.Bundle.source)
              (count_lines sb.Repro.Bundle.source)
              stats.Repro.Shrink.tried stats.Repro.Shrink.accepted;
            Printf.printf "fingerprint : %s\n" sb.Repro.Bundle.fingerprint;
            Printf.printf "bundle      : %s\n" bundle_path;
            Printf.printf "program     : %s\n" loop_path;
            0)
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"BASE"
          ~doc:
            "Basename for the minimized artifacts ($(docv).repro.json and \
             $(docv).loop). Default: the input path with a .min infix.")
  in
  let max_candidates_arg =
    Arg.(
      value & opt int 5000
      & info [ "max-candidates" ] ~docv:"N"
          ~doc:"Give up after re-running the pipeline on $(docv) candidates.")
  in
  Cmd.v
    (Cmd.info "shrink"
       ~doc:
         "Delta-debug a bundle's program to a minimal one that still fails with \
          the same fingerprint class; writes the minimized bundle and a \
          standalone .loop file.")
    Term.(const run $ bundle_arg $ out_arg $ max_candidates_arg)

let repro_cmd =
  Cmd.group
    (Cmd.info "repro"
       ~doc:
         "Deterministic crash-repro bundles: show, replay and shrink failures \
          captured by campaign --repro-dir or the fuzz suite.")
    [ repro_show_cmd; repro_replay_cmd; repro_shrink_cmd ]

(* ---- census ---- *)

let census_cmd =
  let run target fuel =
    handle_errors (fun () ->
        let a = Loopa.Driver.analyze_source ~fuel (read_program target) in
        Format.printf "%a@." Loopa.Taxonomy.pp
          (Loopa.Taxonomy.of_profile a.Loopa.Driver.profile))
  in
  Cmd.v
    (Cmd.info "census"
       ~doc:"Print the Table-I census of ordering constraints for a program.")
    Term.(const run $ target_arg $ fuel_arg)

(* ---- lint ---- *)

let lint_cmd =
  let targets_arg =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"TARGETS"
          ~doc:"Registered benchmark names or Looplang source files.")
  in
  let all_arg =
    Arg.(
      value & flag & info [ "all" ] ~doc:"Lint the whole benchmark registry.")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Print one machine-readable report object (version, per-file \
             diagnostics with stable fingerprints) instead of text.")
  in
  let run targets all json optimize =
    handle_errors_int (fun () ->
        if (not all) && targets = [] then
          raise (Invalid_argument "lint needs TARGETS or --all");
        let named =
          if all then
            List.map
              (fun (b : Suites.Suite.benchmark) ->
                (b.Suites.Suite.name, b.Suites.Suite.source))
              (Suites.Suite.all ())
          else List.map (fun t -> (t, read_program t)) targets
        in
        let reports =
          named
          |> List.map (fun (name, src) ->
                 let m = Frontend.compile_exn src in
                 if optimize then Opt.Pipeline.run_module m;
                 (name, Loopa.Lint.run m))
          |> List.sort (fun (a, _) (b, _) -> compare (a : string) b)
        in
        if json then
          print_endline
            (Util.Json.to_string
               (Util.Json.Obj
                  [
                    ("version", Util.Json.Int 1);
                    ( "reports",
                      Util.Json.List
                        (List.map
                           (fun (file, ds) -> Loopa.Lint.report_to_json ~file ds)
                           reports) );
                  ]))
        else
          List.iter
            (fun (file, ds) ->
              Printf.printf "%s: %d error(s), %d warning(s), %d info(s)\n" file
                (Loopa.Lint.count Loopa.Lint.Error ds)
                (Loopa.Lint.count Loopa.Lint.Warning ds)
                (Loopa.Lint.count Loopa.Lint.Info ds);
              List.iter
                (fun d -> print_endline ("  " ^ Loopa.Lint.diag_to_string d))
                ds)
            reports;
        if List.exists (fun (_, ds) -> Loopa.Lint.has_errors ds) reports then 1
        else 0)
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Run every static analysis as a lint rule (IR verifier, SSA \
          dominance, value-range hazards, dead code, parallel-safety audit \
          downgrades) and report diagnostics with stable fingerprints. Exit \
          1 when any error-severity diagnostic fires.")
    Term.(const run $ targets_arg $ all_arg $ json_arg $ optimize_arg)

(* ---- dump-ir ---- *)

let dump_ir_cmd =
  let run target optimize =
    handle_errors (fun () ->
        let m = Frontend.compile_exn (read_program target) in
        if optimize then Opt.Pipeline.run_module m;
        Cfg.Loop_simplify.run_module m;
        Ir.Verifier.check_module_exn m;
        print_string (Ir.Pp.module_to_string m))
  in
  Cmd.v
    (Cmd.info "dump-ir" ~doc:"Print the canonicalized SSA IR of a program.")
    Term.(const run $ target_arg $ optimize_arg)

(* ---- perfdiff ---- *)

let perfdiff_cmd =
  let read_json path =
    let ic = open_in_bin path in
    let contents =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> In_channel.input_all ic)
    in
    match Util.Json.of_string contents with
    | Ok j -> j
    | Error e -> raise (Invalid_argument (Printf.sprintf "%s: %s" path e))
  in
  let read_jsonl path =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let rec loop acc =
          match input_line ic with
          | exception End_of_file -> List.rev acc
          | "" -> loop acc
          | line -> (
              match Util.Json.of_string line with
              | Ok j -> loop (j :: acc)
              | Error _ -> loop acc (* tolerate torn/malformed lines *))
        in
        loop [])
  in
  let snapshots_arg =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"SNAPSHOTS"
          ~doc:
            "Bench snapshot files: OLD NEW to compare two snapshots, or a \
             single NEW when --history is given.")
  in
  let history_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "history" ] ~docv:"FILE"
          ~doc:
            "JSONL history file (one snapshot per line, e.g. \
             BENCH_history.jsonl): compare NEW against the per-series median, \
             with the slack widened by the series' own historical noise.")
  in
  let tolerance_arg =
    Arg.(
      value & opt float 1.0
      & info [ "tolerance" ] ~docv:"X"
          ~doc:
            "Scale every per-class slack by $(docv) (2.0 doubles the allowed \
             worsening; 0.5 halves it).")
  in
  let all_arg =
    Arg.(
      value & flag
      & info [ "all" ]
          ~doc:"Print every compared series, not only the regressions.")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Print the verdicts as one JSON object.")
  in
  let run snapshots history tolerance all json =
    handle_errors_int (fun () ->
        let verdicts =
          match (history, snapshots) with
          | None, [ old_path; new_path ] ->
              Report.Perfdiff.compare_snapshots ~tolerance
                ~old_:(read_json old_path) ~new_:(read_json new_path) ()
          | Some hist_path, [ new_path ] ->
              let new_ = read_json new_path in
              let history = read_jsonl hist_path in
              (* only compare against history rows of the same bench mode:
                 quick snapshots drift far from full ones *)
              let mode j =
                Option.bind (Util.Json.member "harness" j)
                  (Util.Json.member "quick")
              in
              let history =
                match mode new_ with
                | None -> history
                | Some _ as m -> List.filter (fun j -> mode j = m) history
              in
              if history = [] then
                raise
                  (Invalid_argument
                     (Printf.sprintf "%s: no comparable snapshots in history"
                        hist_path));
              Report.Perfdiff.compare_history ~tolerance ~history ~new_ ()
          | None, _ ->
              raise
                (Invalid_argument
                   "perfdiff needs OLD NEW (or NEW with --history FILE)")
          | Some _, _ ->
              raise
                (Invalid_argument "perfdiff --history takes exactly one NEW")
        in
        let regs = Report.Perfdiff.regressions verdicts in
        if json then
          print_endline (Util.Json.to_string (Report.Perfdiff.to_json verdicts))
        else if all || regs <> [] then
          print_endline
            (Report.Perfdiff.render ~only_regressions:(not all) verdicts);
        if regs <> [] then (
          Printf.eprintf "perfdiff: %d regression(s) in %d compared series\n%!"
            (List.length regs) (List.length verdicts);
          1)
        else (
          if not json then
            Printf.printf "no regressions (%d series compared)\n"
              (List.length verdicts);
          0))
  in
  Cmd.v
    (Cmd.info "perfdiff"
       ~doc:
         "Perf-trajectory regression gate: compare two bench snapshots (or a \
          new snapshot against the JSONL history median) with noise-aware \
          per-class slack; exit 1 on regression.")
    Term.(
      const run $ snapshots_arg $ history_arg $ tolerance_arg $ all_arg
      $ json_arg)

(* ---- analysis as a service: serve / client / worker ---- *)

let socket_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Unix-domain socket path of the analysis daemon.")

let serve_cmd =
  let cache_max_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "cache-max-bytes" ] ~docv:"N"
          ~doc:
            "Size cap for the result cache; least-recently-used entries are \
             evicted past it (default 256 MiB).")
  in
  let metrics_port_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "metrics-port" ] ~docv:"PORT"
          ~doc:
            "Serve Prometheus text at http://127.0.0.1:$(docv)/metrics and a \
             JSON snapshot at /status, republished after every request. Port \
             0 picks a free port (printed to stderr).")
  in
  let run socket cache cache_max metrics_port =
    handle_errors (fun () ->
        Service.Daemon.serve ~socket ?cache_dir:cache
          ?cache_max_bytes:cache_max ?metrics_port ())
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the persistent analysis daemon: accept analyze/campaign \
          requests over a Unix-domain socket, cache-first, until SIGTERM \
          (which drains the in-flight request and flushes the cache index).")
    Term.(const run $ socket_arg $ cache_arg $ cache_max_arg $ metrics_port_arg)

let client_cmd =
  let progress_to_stderr frame =
    match Option.bind (Util.Json.member "line" frame) Util.Json.to_str with
    | Some line -> prerr_endline line
    | None -> ()
  in
  let frame_str key frame =
    Option.value ~default:""
      (Option.bind (Util.Json.member key frame) Util.Json.to_str)
  in
  let fail (msg, code) =
    Printf.eprintf "error: %s\n" msg;
    code
  in
  let ping_cmd =
    let run socket =
      handle_errors_int (fun () ->
          match Service.Client.submit ~socket Service.Client.ping_request with
          | Ok _ ->
              print_endline "pong";
              0
          | Error e -> fail e)
    in
    Cmd.v
      (Cmd.info "ping" ~doc:"Check that the daemon is alive.")
      Term.(const run $ socket_arg)
  in
  let analyze_cmd =
    let run socket target config fuel loops optimize =
      handle_errors_int (fun () ->
          let req =
            Service.Client.analyze_request ~source:(read_program target)
              ~config ~fuel ~loops ~optimize
          in
          match
            Service.Client.submit ~socket ~on_frame:progress_to_stderr req
          with
          | Ok frame ->
              (* the daemon rendered with Service.Render; printing the bytes
                 verbatim is what keeps this byte-identical to `analyze` *)
              print_string (frame_str "text" frame);
              0
          | Error e -> fail e)
    in
    Cmd.v
      (Cmd.info "analyze"
         ~doc:
           "Submit one analyze request to the daemon; output is \
            byte-identical to the local $(b,analyze) command.")
      Term.(
        const run $ socket_arg $ target_arg $ config_arg $ fuel_arg $ loops_arg
        $ optimize_arg)
  in
  let campaign_cmd =
    let targets_arg =
      Arg.(
        value & pos_all string []
        & info [] ~docv:"TARGETS"
            ~doc:"Registered benchmark names or Looplang source files.")
    in
    let all_arg =
      Arg.(
        value & flag
        & info [ "all" ] ~doc:"Run over the whole benchmark registry.")
    in
    let retries_arg =
      Arg.(
        value & opt int 1
        & info [ "retries" ] ~docv:"N"
            ~doc:"Retries at reduced fuel for budget-exhausted tasks.")
    in
    let wall_arg =
      Arg.(
        value
        & opt (some float) None
        & info [ "wall" ] ~docv:"SECONDS" ~doc:"Per-attempt wall-clock budget.")
    in
    let watchdog_arg =
      Arg.(
        value
        & opt (some float) None
        & info [ "watchdog" ] ~docv:"SECONDS"
            ~doc:"Per-task wall deadline enforced daemon-side under --jobs.")
    in
    let checkpoint_arg =
      Arg.(
        value
        & opt (some string) None
        & info [ "checkpoint" ] ~docv:"FILE"
            ~doc:
              "Write the campaign's JSONL checkpoint (shipped back by the \
               daemon) to $(docv).")
    in
    let run socket targets all jobs fuel retries wall watchdog checkpoint =
      handle_errors_int (fun () ->
          if (not all) && targets = [] then
            raise (Invalid_argument "client campaign needs TARGETS or --all");
          let named =
            if all then
              List.map
                (fun (b : Suites.Suite.benchmark) ->
                  (b.Suites.Suite.name, b.Suites.Suite.source))
                (Suites.Suite.all ())
            else List.map (fun t -> (t, read_program t)) targets
          in
          let req =
            Service.Client.campaign_request ~targets:named
              ~jobs:(resolve_jobs jobs) ~fuel ~retries ?wall ?watchdog ()
          in
          match
            Service.Client.submit ~socket ~on_frame:progress_to_stderr req
          with
          | Ok frame ->
              Option.iter
                (fun path ->
                  Out_channel.with_open_text path (fun oc ->
                      Out_channel.output_string oc (frame_str "checkpoint" frame)))
                checkpoint;
              print_string (frame_str "summary" frame);
              0
          | Error e -> fail e)
    in
    Cmd.v
      (Cmd.info "campaign"
         ~doc:
           "Submit a campaign to the daemon: progress streams to stderr, the \
            summary (byte-identical to local $(b,campaign)) to stdout, and \
            the checkpoint JSONL to $(b,--checkpoint).")
      Term.(
        const run $ socket_arg $ targets_arg $ all_arg $ jobs_arg $ fuel_arg
        $ retries_arg $ wall_arg $ watchdog_arg $ checkpoint_arg)
  in
  Cmd.group
    (Cmd.info "client"
       ~doc:
         "Talk to a running analysis daemon ($(b,serve)); results render \
          byte-identically to the local commands.")
    [ ping_cmd; analyze_cmd; campaign_cmd ]

let worker_cmd =
  let connect_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "connect" ] ~docv:"HOST:PORT"
          ~doc:
            "Dial a coordinator that is waiting on this endpoint \
             ($(b,--workers)) and serve its tasks until told to quit.")
  in
  let run connect =
    handle_errors (fun () ->
        let host, port = Exec.Remote.parse_hostport connect in
        Service.Worker.run ~host ~port)
  in
  Cmd.v
    (Cmd.info "worker"
       ~doc:
         "Remote pool worker for multi-host sharding: connect to a campaign \
          or sweep coordinator over TCP and execute its tasks.")
    Term.(const run $ connect_arg)

let () =
  let doc = "Loopapalooza: a compiler-driven limit study of loop-level parallelism" in
  let info = Cmd.info "loopapalooza" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            list_cmd;
            run_cmd;
            analyze_cmd;
            sweep_cmd;
            parrun_cmd;
            campaign_cmd;
            chaos_cmd;
            repro_cmd;
            census_cmd;
            dump_ir_cmd;
            lint_cmd;
            perfdiff_cmd;
            serve_cmd;
            client_cmd;
            worker_cmd;
          ]))
