(* Substring check shared by the test suites (stdlib has none). *)

let contains (haystack : string) (needle : string) : bool =
  let nh = String.length haystack and nn = String.length needle in
  if nn = 0 then true
  else begin
    let rec scan i =
      i + nn <= nh && (String.sub haystack i nn = needle || scan (i + 1))
    in
    scan 0
  end
