(* Value predictors (paper §III-C): each predictor on characteristic streams,
   the 2-delta hysteresis, FCM periodic patterns, and the perfect-hybrid
   union property. *)

let hit_count p stream =
  List.length (List.filter Fun.id (Predictors.Predictor.hits p stream))

let range a b = List.init (b - a) (fun i -> Int64.of_int (a + i))

let test_last_value () =
  let p = Predictors.Last_value.create () in
  (* constant stream: everything after the first is a hit *)
  Alcotest.(check int) "constant stream" 9
    (hit_count p (List.init 10 (fun _ -> 7L)));
  (* strided stream: never correct *)
  Alcotest.(check int) "stride stream" 0 (hit_count p (range 0 10))

let test_stride () =
  let p = Predictors.Stride.create () in
  (* after two samples the stride locks on: 8 of 10 hit *)
  Alcotest.(check int) "stride stream" 8 (hit_count p (range 0 10));
  Alcotest.(check int) "constant stream" 9
    (hit_count p (List.init 10 (fun _ -> 3L)))

let test_two_delta_filters_noise () =
  let p2 = Predictors.Two_delta.create () in
  let ps = Predictors.Stride.create () in
  (* a stride-1 stream with a single glitch: 0 1 2 3 99 4 5 6 7 8.
     Plain stride mispredicts twice after the glitch (stride jumps to 96,
     then to -95); 2-delta keeps predicting stride 1 and recovers faster. *)
  let glitchy = [ 0L; 1L; 2L; 3L; 99L; 4L; 5L; 6L; 7L; 8L ] in
  let h2 = hit_count p2 glitchy and hs = hit_count ps glitchy in
  Alcotest.(check bool)
    (Printf.sprintf "2-delta (%d) >= stride (%d) on glitchy stream" h2 hs)
    true (h2 >= hs);
  (* but a persistent stride change is adopted after two observations *)
  let shifted = [ 0L; 1L; 2L; 10L; 18L; 26L; 34L ] in
  Alcotest.(check bool) "adopts new stride" true (hit_count p2 shifted >= 2)

let test_fcm_periodic () =
  let p = Predictors.Fcm.create () in
  (* period-3 pattern: FCM learns it after one period, the others cannot *)
  let pattern = List.concat (List.init 8 (fun _ -> [ 5L; 9L; 2L ])) in
  let fcm_hits = hit_count p pattern in
  Alcotest.(check bool)
    (Printf.sprintf "fcm learns period-3 (%d hits)" fcm_hits)
    true (fcm_hits >= 15);
  let s = Predictors.Stride.create () in
  Alcotest.(check bool) "stride cannot" true (hit_count s pattern <= 2)

let test_predictor_reset () =
  let p = Predictors.Last_value.create () in
  ignore (Predictors.Predictor.hits p [ 1L; 1L ]);
  p.Predictors.Predictor.reset ();
  Alcotest.(check (option int64)) "reset clears" None (p.Predictors.Predictor.predict ())

let test_accuracy () =
  let p = Predictors.Last_value.create () in
  let acc = Predictors.Predictor.accuracy p (List.init 10 (fun _ -> 4L)) in
  Alcotest.(check bool) "accuracy 0.9" true (abs_float (acc -. 0.9) < 1e-9)

let test_hybrid_union () =
  let h = Predictors.Hybrid.create () in
  (* strided stream: stride component covers it *)
  Alcotest.(check bool) "hybrid covers stride" true
    (List.length (List.filter Fun.id (Predictors.Hybrid.hits h (range 0 20))) >= 17);
  Predictors.Hybrid.reset h;
  (* constant stream: last-value covers it *)
  Alcotest.(check bool) "hybrid covers constant" true
    (List.length
       (List.filter Fun.id (Predictors.Hybrid.hits h (List.init 20 (fun _ -> 6L))))
    >= 19)

(* Property: the hybrid hits at least as often as any single component run
   over the same stream (perfect hybridization = union). *)
let prop_hybrid_dominates =
  QCheck.Test.make ~name:"hybrid >= each component" ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_range 0 40) (int_bound 20))
    (fun xs ->
      let stream = List.map Int64.of_int xs in
      let hybrid_hits =
        List.length
          (List.filter Fun.id (Predictors.Hybrid.hits (Predictors.Hybrid.create ()) stream))
      in
      List.for_all
        (fun mk ->
          let p = mk () in
          hit_count p stream <= hybrid_hits)
        [
          Predictors.Last_value.create;
          Predictors.Stride.create;
          Predictors.Two_delta.create;
          (fun () -> Predictors.Fcm.create ());
        ])

let prop_perfect_stream_no_misses =
  QCheck.Test.make ~name:"affine streams: at most 2 initial misses" ~count:100
    QCheck.(pair (int_range (-50) 50) (int_range (-20) 20))
    (fun (start, step) ->
      let stream = List.init 20 (fun i -> Int64.of_int (start + (i * step))) in
      let h = Predictors.Hybrid.create () in
      let misses = List.length (List.filter not (Predictors.Hybrid.hits h stream)) in
      misses <= 2)

let test_bits_of_rv () =
  Alcotest.(check int64) "int bits" 5L (Predictors.Hybrid.bits_of_rv (Interp.Rvalue.Vint 5L));
  Alcotest.(check int64) "bool bits" 1L
    (Predictors.Hybrid.bits_of_rv (Interp.Rvalue.Vbool true));
  Alcotest.(check int64) "float bits" (Int64.bits_of_float 2.5)
    (Predictors.Hybrid.bits_of_rv (Interp.Rvalue.Vfloat 2.5))

let () =
  Alcotest.run "predictors"
    [
      ( "components",
        [
          Alcotest.test_case "last-value" `Quick test_last_value;
          Alcotest.test_case "stride" `Quick test_stride;
          Alcotest.test_case "2-delta" `Quick test_two_delta_filters_noise;
          Alcotest.test_case "fcm periodic" `Quick test_fcm_periodic;
          Alcotest.test_case "reset" `Quick test_predictor_reset;
          Alcotest.test_case "accuracy" `Quick test_accuracy;
        ] );
      ( "hybrid",
        [
          Alcotest.test_case "union coverage" `Quick test_hybrid_union;
          Alcotest.test_case "bits_of_rv" `Quick test_bits_of_rv;
          QCheck_alcotest.to_alcotest prop_hybrid_dominates;
          QCheck_alcotest.to_alcotest prop_perfect_stream_no_misses;
        ] );
    ]
