(* Scalar evolution: expression algebra (simplify must preserve the semantics
   defined by eval), add-recurrence detection for IVs/MIVs/polynomials, and
   reduction recurrence descriptors including the conditional and nested
   forms the benchmarks rely on. *)

open Scev.Expr

let ck_i64 = Alcotest.testable (Fmt.of_to_string Int64.to_string) Int64.equal

let test_fold_constants () =
  Alcotest.(check bool) "add consts" true
    (equal (simplify (Add [ Const 2L; Const 3L ])) (Const 5L));
  Alcotest.(check bool) "mul consts" true
    (equal (simplify (Mul [ Const 2L; Const 3L ])) (Const 6L));
  Alcotest.(check bool) "mul zero" true
    (equal (simplify (Mul [ Const 0L; Unknown (Ir.Types.Param 0) ])) (Const 0L));
  Alcotest.(check bool) "add empty" true (equal (simplify (Add [])) (Const 0L));
  Alcotest.(check bool) "mul identity dropped" true
    (equal
       (simplify (Mul [ Const 1L; Unknown (Ir.Types.Param 0) ]))
       (Unknown (Ir.Types.Param 0)))

let test_addrec_merge () =
  (* {1,+,2} + {3,+,4} over the same loop = {4,+,6} *)
  let a = Add_rec { start = Const 1L; step = Const 2L; loop = 7 } in
  let b = Add_rec { start = Const 3L; step = Const 4L; loop = 7 } in
  match simplify (Add [ a; b ]) with
  | Add_rec { start = Const 4L; step = Const 6L; loop = 7 } -> ()
  | e -> Alcotest.failf "unexpected %s" (to_string e)

let test_const_folds_into_start () =
  let a = Add_rec { start = Const 1L; step = Const 2L; loop = 0 } in
  match simplify (Add [ Const 10L; a ]) with
  | Add_rec { start = Const 11L; step = Const 2L; loop = 0 } -> ()
  | e -> Alcotest.failf "unexpected %s" (to_string e)

let test_mul_distributes () =
  let a = Add_rec { start = Const 1L; step = Const 2L; loop = 0 } in
  match simplify (Mul [ Const 3L; a ]) with
  | Add_rec { start = Const 3L; step = Const 6L; loop = 0 } -> ()
  | e -> Alcotest.failf "unexpected %s" (to_string e)

let test_zero_step_collapses () =
  Alcotest.(check bool) "zero step" true
    (equal
       (simplify (Add_rec { start = Const 5L; step = Const 0L; loop = 0 }))
       (Const 5L))

let test_eval_addrec () =
  (* {3,+,2} at k = 5 -> 13 *)
  let e = Add_rec { start = Const 3L; step = Const 2L; loop = 0 } in
  let env _ = 0L in
  Alcotest.check ck_i64 "affine eval" 13L (eval ~env ~iters:[ (0, 5) ] e);
  (* polynomial: {0,+,{1,+,1}}: x_k = sum of 1..k-1 of (1+j)... = k(k+1)/2 *)
  let poly =
    Add_rec
      { start = Const 0L; step = Add_rec { start = Const 1L; step = Const 1L; loop = 0 }; loop = 0 }
  in
  Alcotest.check ck_i64 "triangular eval" 15L (eval ~env ~iters:[ (0, 5) ] poly)

(* Property: simplify preserves eval on random expressions. *)
let gen_expr =
  let open QCheck.Gen in
  let leaf =
    oneof
      [
        map (fun i -> Const (Int64.of_int i)) (int_range (-20) 20);
        map (fun i -> Unknown (Ir.Types.Param (i land 3))) (int_range 0 3);
      ]
  in
  fix
    (fun self n ->
      if n <= 1 then leaf
      else
        oneof
          [
            leaf;
            map (fun es -> Add es) (list_size (int_range 1 3) (self (n / 2)));
            map (fun es -> Mul es) (list_size (int_range 1 2) (self (n / 2)));
            map2
              (fun s t -> Add_rec { start = s; step = t; loop = 0 })
              (self (n / 2)) (self (n / 2));
          ])
    6

let prop_simplify_preserves_eval =
  QCheck.Test.make ~name:"simplify preserves eval" ~count:500 (QCheck.make gen_expr)
    (fun e ->
      let env v =
        match v with Ir.Types.Param i -> Int64.of_int ((i * 7) + 3) | _ -> 1L
      in
      let iters = [ (0, 4) ] in
      Int64.equal (eval ~env ~iters e) (eval ~env ~iters (simplify e)))

let prop_simplify_idempotent =
  QCheck.Test.make ~name:"simplify idempotent" ~count:300 (QCheck.make gen_expr)
    (fun e ->
      let s = simplify e in
      equal s (simplify s))

(* ---- analysis over real IR ---- *)

let analyze src =
  let m = Frontend.compile_exn src in
  Cfg.Loop_simplify.run_module m;
  let fn = Option.get (Ir.Func.find_func m "main") in
  let cfg = Cfg.Graph.build fn in
  let dom = Cfg.Dom.compute cfg in
  let li = Cfg.Loopinfo.compute cfg dom in
  (fn, li, Scev.Analysis.create fn li)

(* Classify all header phis of all loops in main. *)
let phi_classes (fn, li, scev) =
  Cfg.Loopinfo.loops li
  |> List.concat_map (fun (l : Cfg.Loopinfo.loop) ->
         Ir.Func.phis fn l.Cfg.Loopinfo.header
         |> List.map (fun (i : Ir.Instr.t) ->
                Scev.Analysis.classify_header_phi scev i.Ir.Instr.id))

let count_computable cls =
  List.length
    (List.filter
       (function
         | Scev.Analysis.Computable _ | Scev.Analysis.Computable_shifted _ -> true
         | Scev.Analysis.Non_computable -> false)
       cls)

let test_iv_detected () =
  let ctx =
    analyze
      {|
fn main() -> int {
  var t: int = 0;
  for (var i: int = 0; i < 10; i = i + 1) { t = t ^ i; }
  print_int(t);
  return 0;
}
|}
  in
  let cls = phi_classes ctx in
  (* two header phis: i (computable IV) and t (xor chain: non-computable by
     scev, but it is a reduction — classified elsewhere) *)
  Alcotest.(check int) "phis" 2 (List.length cls);
  Alcotest.(check int) "one computable" 1 (count_computable cls)

let test_miv_detected () =
  let ctx =
    analyze
      {|
fn main() -> int {
  var x: int = 0;
  var acc: int = 0;
  for (var i: int = 0; i < 10; i = i + 1) {
    x = x + i * 2 + 1;    // polynomial in i: still computable
    acc = acc ^ x;
  }
  print_int(acc + x);
  return 0;
}
|}
  in
  let cls = phi_classes ctx in
  Alcotest.(check int) "phis" 3 (List.length cls);
  Alcotest.(check bool) "x is computable (polynomial MIV)" true (count_computable cls >= 2)

let test_noncomputable_load () =
  let ctx =
    analyze
      {|
fn main() -> int {
  var a: int[] = new int[10];
  var p: int = 0;
  for (var i: int = 0; i < 9; i = i + 1) {
    p = a[p];   // memory-fed: never computable
  }
  print_int(p);
  return 0;
}
|}
  in
  let cls = phi_classes ctx in
  Alcotest.(check int) "phis" 2 (List.length cls);
  Alcotest.(check int) "only the IV computable" 1 (count_computable cls)

let test_invariant_phi () =
  let ctx =
    analyze
      {|
fn main() -> int {
  var k: int = 7;
  var t: int = 0;
  for (var i: int = 0; i < 10; i = i + 1) {
    t = t ^ k;  // k never changes: any k-phi is invariant/computable
  }
  print_int(t + k);
  return 0;
}
|}
  in
  (* k does not even get a phi (SSA construction removes the trivial one) *)
  let cls = phi_classes ctx in
  Alcotest.(check int) "phis" 2 (List.length cls)

(* ---- reductions ---- *)

let reductions_in src =
  let m = Frontend.compile_exn src in
  Cfg.Loop_simplify.run_module m;
  let fn = Option.get (Ir.Func.find_func m "main") in
  let cfg = Cfg.Graph.build fn in
  let dom = Cfg.Dom.compute cfg in
  let li = Cfg.Loopinfo.compute cfg dom in
  Cfg.Loopinfo.loops li
  |> List.concat_map (fun (l : Cfg.Loopinfo.loop) ->
         Ir.Func.phis fn l.Cfg.Loopinfo.header
         |> List.filter_map (fun (i : Ir.Instr.t) ->
                Scev.Recurrence.detect fn li i.Ir.Instr.id))

let kinds src = List.map (fun d -> d.Scev.Recurrence.kind) (reductions_in src)

let one_loop body =
  Printf.sprintf
    {|
fn main() -> int {
  var a: int[] = new int[32];
  var f: float[] = new float[32];
  for (var i: int = 0; i < 32; i = i + 1) { a[i] = i * 3 %% 7; f[i] = float(i); }
  %s
  return 0;
}
|}
    body

let test_sum_reduction () =
  let k =
    kinds
      (one_loop
         {|
  var s: int = 0;
  for (var i: int = 0; i < 32; i = i + 1) { s = s + a[i]; }
  print_int(s);
|})
  in
  Alcotest.(check bool) "sum found" true (List.mem Scev.Recurrence.Sum k)

let test_product_reduction () =
  let k =
    kinds
      (one_loop
         {|
  var p: int = 1;
  for (var i: int = 0; i < 32; i = i + 1) { p = p * (1 + a[i]); }
  print_int(p);
|})
  in
  Alcotest.(check bool) "prod found" true (List.mem Scev.Recurrence.Prod k)

let test_float_sum_reduction () =
  let k =
    kinds
      (one_loop
         {|
  var s: float = 0.0;
  for (var i: int = 0; i < 32; i = i + 1) { s = s + f[i] * 2.0; }
  print_float(s);
|})
  in
  Alcotest.(check bool) "fsum found" true (List.mem Scev.Recurrence.Fsum k)

let test_minmax_reduction () =
  let k =
    kinds
      (one_loop
         {|
  var mx: int = -1000;
  var mn: float = 1000.0;
  for (var i: int = 0; i < 32; i = i + 1) {
    mx = imax(mx, a[i]);
    mn = fminv(mn, f[i]);
  }
  print_int(mx);
  print_float(mn);
|})
  in
  Alcotest.(check bool) "max found" true (List.mem Scev.Recurrence.Max k);
  Alcotest.(check bool) "fmin found" true (List.mem Scev.Recurrence.Fmin k)

let test_conditional_sum_reduction () =
  let k =
    kinds
      (one_loop
         {|
  var c: int = 0;
  for (var i: int = 0; i < 32; i = i + 1) {
    if (a[i] > 3) { c = c + 1; }
  }
  print_int(c);
|})
  in
  Alcotest.(check bool) "conditional sum found" true (List.mem Scev.Recurrence.Sum k)

let test_nested_min_reduction () =
  (* accumulator threaded through an inner loop's header phi *)
  let k =
    kinds
      (one_loop
         {|
  var best: int = 1000000;
  for (var i: int = 0; i < 8; i = i + 1) {
    for (var j: int = 0; j < 4; j = j + 1) {
      best = imin(best, a[i * 4 + j]);
    }
  }
  print_int(best);
|})
  in
  Alcotest.(check bool) "nested min found" true (List.mem Scev.Recurrence.Min k)

let test_reset_not_reduction () =
  (* a conditional reset breaks the accumulation pattern *)
  let k =
    kinds
      (one_loop
         {|
  var r: int = 0;
  for (var i: int = 0; i < 32; i = i + 1) {
    if (a[i] == 0) { r = 0; } else { r = r + 1; }
  }
  print_int(r);
|})
  in
  Alcotest.(check bool) "reset rejected" false (List.mem Scev.Recurrence.Sum k)

let test_escaping_use_not_reduction () =
  (* the running value feeds other computation: cannot be decoupled *)
  let k =
    kinds
      (one_loop
         {|
  var s: int = 0;
  var t: int = 0;
  for (var i: int = 0; i < 32; i = i + 1) {
    s = s + a[i];
    t = t ^ (s & 1);   // reads the running sum
  }
  print_int(s + t);
|})
  in
  Alcotest.(check bool) "escaping sum rejected" false (List.mem Scev.Recurrence.Sum k)

let test_mixed_ops_not_reduction () =
  let k =
    kinds
      (one_loop
         {|
  var s: int = 1;
  for (var i: int = 0; i < 32; i = i + 1) {
    if (a[i] > 3) { s = s + 1; } else { s = s * 2; }
  }
  print_int(s);
|})
  in
  Alcotest.(check int) "mixed sum/prod rejected" 0 (List.length k)

(* ---- trip counts ---- *)

let trip_of src =
  let m = Frontend.compile_exn src in
  Cfg.Loop_simplify.run_module m;
  let fn = Option.get (Ir.Func.find_func m "main") in
  let cfg = Cfg.Graph.build fn in
  let dom = Cfg.Dom.compute cfg in
  let li = Cfg.Loopinfo.compute cfg dom in
  let scev = Scev.Analysis.create fn li in
  match Cfg.Loopinfo.loops li with
  | [ l ] -> Scev.Trip_count.of_loop fn li scev l.Cfg.Loopinfo.lid
  | ls -> Alcotest.failf "expected one loop, got %d" (List.length ls)

let loop_src header body =
  Printf.sprintf
    "fn main() -> int { var t: int = 0; %s { t = t ^ %s; } print_int(t); return 0; }"
    header body

let ck_trip name want src =
  Alcotest.(check (option int64)) name want (trip_of src)

let test_trip_counts () =
  (* header arrivals = body executions + the final failing test *)
  ck_trip "i < 10" (Some 11L) (loop_src "for (var i: int = 0; i < 10; i = i + 1)" "i");
  ck_trip "i <= 10" (Some 12L) (loop_src "for (var i: int = 0; i <= 10; i = i + 1)" "i");
  ck_trip "step 3" (Some 5L) (loop_src "for (var i: int = 0; i < 12; i = i + 3)" "i");
  ck_trip "downward" (Some 8L) (loop_src "for (var i: int = 7; i >= 1; i = i - 1)" "i");
  ck_trip "ne exact" (Some 6L) (loop_src "for (var i: int = 0; i != 10; i = i + 2)" "i");
  ck_trip "ne misaligned" None (loop_src "for (var i: int = 0; i != 9; i = i + 2)" "i");
  ck_trip "zero trips" (Some 1L) (loop_src "for (var i: int = 5; i < 5; i = i + 1)" "i")

let test_trip_count_unknown () =
  (* data-dependent bound: not computable *)
  Alcotest.(check (option int64)) "dynamic bound" None
    (trip_of
       {|
fn main() -> int {
  var a: int[] = new int[4];
  a[0] = 9;
  var t: int = 0;
  for (var i: int = 0; i < a[0]; i = i + 1) { t = t + i; }
  print_int(t);
  return 0;
}
|});
  (* break inside: the header is not the only exit *)
  Alcotest.(check (option int64)) "extra exit" None
    (trip_of
       {|
fn main() -> int {
  var t: int = 0;
  for (var i: int = 0; i < 100; i = i + 1) {
    if (i == 3) { break; }
    t = t + i;
  }
  print_int(t);
  return 0;
}
|})

let () =
  Alcotest.run "scev"
    [
      ( "algebra",
        [
          Alcotest.test_case "constant folding" `Quick test_fold_constants;
          Alcotest.test_case "addrec merge" `Quick test_addrec_merge;
          Alcotest.test_case "const into start" `Quick test_const_folds_into_start;
          Alcotest.test_case "mul distributes" `Quick test_mul_distributes;
          Alcotest.test_case "zero step" `Quick test_zero_step_collapses;
          Alcotest.test_case "eval addrec" `Quick test_eval_addrec;
          QCheck_alcotest.to_alcotest prop_simplify_preserves_eval;
          QCheck_alcotest.to_alcotest prop_simplify_idempotent;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "IV detected" `Quick test_iv_detected;
          Alcotest.test_case "polynomial MIV" `Quick test_miv_detected;
          Alcotest.test_case "load non-computable" `Quick test_noncomputable_load;
          Alcotest.test_case "invariant phi" `Quick test_invariant_phi;
          Alcotest.test_case "trip counts" `Quick test_trip_counts;
          Alcotest.test_case "trip count unknown" `Quick test_trip_count_unknown;
        ] );
      ( "reductions",
        [
          Alcotest.test_case "sum" `Quick test_sum_reduction;
          Alcotest.test_case "product" `Quick test_product_reduction;
          Alcotest.test_case "float sum" `Quick test_float_sum_reduction;
          Alcotest.test_case "min/max" `Quick test_minmax_reduction;
          Alcotest.test_case "conditional sum" `Quick test_conditional_sum_reduction;
          Alcotest.test_case "nested min" `Quick test_nested_min_reduction;
          Alcotest.test_case "reset rejected" `Quick test_reset_not_reduction;
          Alcotest.test_case "escape rejected" `Quick test_escaping_use_not_reduction;
          Alcotest.test_case "mixed ops rejected" `Quick test_mixed_ops_not_reduction;
        ] );
    ]
