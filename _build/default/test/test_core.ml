(* Limit-study core: configuration lattice, static classification, profile
   collection invariants, and end-to-end evaluation semantics for each flag
   of Table II, checked on purpose-built micro-programs. *)

let analyze src = Loopa.Driver.analyze_source ~fuel:50_000_000 src

let speedup a cfg = (Loopa.Driver.evaluate a cfg).Loopa.Evaluate.speedup

let cfg = Loopa.Config.of_string

(* ---- config ---- *)

let test_config_parse_print () =
  List.iter
    (fun c ->
      let c' = Loopa.Config.of_string (Loopa.Config.name c) in
      Alcotest.(check string) "roundtrip" (Loopa.Config.name c) (Loopa.Config.name c'))
    Loopa.Config.figure_ladder;
  Alcotest.(check string) "default model" "reduc1-dep2-fn1 PDOALL"
    (Loopa.Config.name (cfg "reduc1-dep2-fn1"));
  Alcotest.(check string) "model first" "reduc0-dep0-fn0 HELIX"
    (Loopa.Config.name (cfg "HELIX reduc0-dep0-fn0"));
  Alcotest.check_raises "garbage" (Loopa.Config.Bad_config "bad configuration \"nope\"")
    (fun () -> ignore (cfg "nope"))

let test_config_validate () =
  Alcotest.(check bool) "doall+dep2 rejected" true
    (Result.is_error (Loopa.Config.validate (cfg "reduc0-dep2-fn0 DOALL")));
  Alcotest.(check bool) "doall+dep0 fine" true
    (Result.is_ok (Loopa.Config.validate (cfg "reduc0-dep0-fn0 DOALL")));
  Alcotest.(check bool) "helix+dep3 fine" true
    (Result.is_ok (Loopa.Config.validate (cfg "reduc0-dep3-fn0 HELIX")))

let test_config_ladder () =
  Alcotest.(check int) "14 rungs" 14 (List.length Loopa.Config.figure_ladder);
  Alcotest.(check string) "best pdoall" "reduc1-dep2-fn2 PDOALL"
    (Loopa.Config.name Loopa.Config.best_pdoall);
  Alcotest.(check string) "best helix" "reduc1-dep1-fn2 HELIX"
    (Loopa.Config.name Loopa.Config.best_helix)

(* ---- classification ---- *)

let classify src =
  let m = Frontend.compile_exn src in
  Loopa.Driver.prepare m

let all_loop_phis ms =
  Hashtbl.fold
    (fun _ fs acc ->
      Array.fold_left
        (fun acc ls ->
          Array.fold_left (fun acc pi -> pi.Loopa.Classify.cls :: acc) acc
            ls.Loopa.Classify.phis)
        acc fs.Loopa.Classify.loops)
    ms.Loopa.Classify.funcs []

let test_classify_classes () =
  let ms =
    classify
      {|
fn main() -> int {
  var a: int[] = new int[64];
  var s: int = 0;       // reduction
  var p: int = 1;       // non-computable (memory-fed)
  for (var i: int = 0; i < 63; i = i + 1) {  // computable IV
    s = s + a[i];
    p = a[p];
  }
  print_int(s + p);
  return 0;
}
|}
  in
  let cls = all_loop_phis ms in
  let count p = List.length (List.filter p cls) in
  Alcotest.(check int) "three header phis" 3 (List.length cls);
  Alcotest.(check int) "one computable" 1
    (count (fun c -> c = Loopa.Classify.Computable));
  Alcotest.(check int) "one reduction" 1
    (count (function Loopa.Classify.Reduction _ -> true | _ -> false));
  Alcotest.(check int) "one non-computable" 1
    (count (fun c -> c = Loopa.Classify.Non_computable))

let test_purity () =
  let ms =
    classify
      {|
fn pure_helper(x: int) -> int { return x * 2 + 1; }
fn reads_only(a: int[]) -> int { return a[0] + pure_helper(3); }
fn writes(a: int[]) { a[0] = 1; }
fn prints(x: int) { print_int(x); }
fn recursive_pure(n: int) -> int {
  if (n <= 0) { return 0; }
  return recursive_pure(n - 1) + 1;
}
fn calls_writer(a: int[]) { writes(a); }
fn main() -> int {
  var a: int[] = new int[4];
  writes(a);
  prints(reads_only(a) + recursive_pure(3) + pure_helper(1));
  calls_writer(a);
  return 0;
}
|}
  in
  let pure name = (Loopa.Classify.func_static ms name).Loopa.Classify.pure in
  Alcotest.(check bool) "pure_helper" true (pure "pure_helper");
  Alcotest.(check bool) "reads_only pure (read-only)" true (pure "reads_only");
  Alcotest.(check bool) "writes impure" false (pure "writes");
  Alcotest.(check bool) "prints impure" false (pure "prints");
  Alcotest.(check bool) "recursive pure" true (pure "recursive_pure");
  Alcotest.(check bool) "transitively impure" false (pure "calls_writer");
  Alcotest.(check bool) "main impure" false (pure "main")

(* ---- profile invariants ---- *)

let test_profile_structure () =
  let a =
    analyze
      {|
fn main() -> int {
  var t: int = 0;
  for (var i: int = 0; i < 4; i = i + 1) {
    for (var j: int = 0; j < 3; j = j + 1) {
      t = t + i * j;
    }
  }
  print_int(t);
  return 0;
}
|}
  in
  let p = a.Loopa.Driver.profile in
  Alcotest.(check int) "5 invocations (1 outer + 4 inner)" 5
    (Array.length p.Loopa.Profile.invs);
  Array.iteri
    (fun id inv ->
      Alcotest.(check bool) "parent precedes child" true (inv.Loopa.Profile.parent < id);
      let costs = Loopa.Profile.iter_costs inv in
      Alcotest.(check int) "iteration costs cover the invocation"
        (inv.Loopa.Profile.end_clock - inv.Loopa.Profile.start_clock)
        (Array.fold_left ( + ) 0 costs);
      Array.iter
        (fun c -> Alcotest.(check bool) "positive iteration cost" true (c > 0))
        costs)
    p.Loopa.Profile.invs;
  let outer = p.Loopa.Profile.invs.(0) in
  (* 4 body executions + the final failing header test *)
  Alcotest.(check int) "outer has 5 header arrivals" 5 (Loopa.Profile.n_iters outer);
  Alcotest.(check int) "outer is top-level" (-1) outer.Loopa.Profile.parent

(* ---- end-to-end evaluation semantics ---- *)

(* n independent heavy iterations: DOALL speedup must approach n on the loop;
   whole-program speedup is Amdahl-limited but must be > 3 here. *)
let test_independent_loop_parallel () =
  let a =
    analyze
      {|
fn main() -> int {
  var a: int[] = new int[64];
  for (var i: int = 0; i < 64; i = i + 1) {
    a[i] = (i * 2654435761) & 1023;
  }
  print_int(a[63]);
  return 0;
}
|}
  in
  let s = speedup a (cfg "reduc0-dep0-fn0 DOALL") in
  Alcotest.(check bool) (Printf.sprintf "doall speedup %.2f > 3" s) true (s > 3.0)

(* A loop-carried memory chain: no model may speed it up meaningfully when
   the producer lands at the very end of the iteration. *)
let test_memory_chain_serial () =
  let a =
    analyze
      {|
fn main() -> int {
  var a: int[] = new int[512];
  a[0] = 1;
  for (var i: int = 1; i < 512; i = i + 1) {
    a[i] = (a[i - 1] * 17 + 3) & 4095;
  }
  print_int(a[511]);
  return 0;
}
|}
  in
  let sd = speedup a (cfg "reduc0-dep0-fn0 DOALL") in
  Alcotest.(check bool) (Printf.sprintf "doall %.2f small" sd) true (sd < 1.5);
  let sp = speedup a (cfg "reduc0-dep0-fn0 PDOALL") in
  Alcotest.(check bool) (Printf.sprintf "pdoall %.2f small" sp) true (sp < 1.5)

let reduction_src =
  {|
fn main() -> int {
  var a: int[] = new int[256];
  for (var i: int = 0; i < 256; i = i + 1) { a[i] = (i * 31) & 255; }
  var s: int = 0;
  for (var i: int = 0; i < 256; i = i + 1) { s = s + a[i]; }
  print_int(s);
  return 0;
}
|}

let test_reduc_flag () =
  let a = analyze reduction_src in
  let s0 = speedup a (cfg "reduc0-dep0-fn0 DOALL") in
  let s1 = speedup a (cfg "reduc1-dep0-fn0 DOALL") in
  Alcotest.(check bool)
    (Printf.sprintf "reduc1 (%.2f) much better than reduc0 (%.2f)" s1 s0)
    true
    (s1 > 2.0 *. s0)

let call_ladder_src =
  {|
fn pure_math(x: int) -> int { return (x * x + 1) & 1023; }
fn main() -> int {
  var a: int[] = new int[128];
  for (var i: int = 0; i < 128; i = i + 1) {
    a[i] = pure_math(i * 3);
  }
  print_int(a[127]);
  return 0;
}
|}

let test_fn_ladder_pure_user_call () =
  let a = analyze call_ladder_src in
  let f0 = speedup a (cfg "reduc0-dep0-fn0 PDOALL") in
  let f1 = speedup a (cfg "reduc0-dep0-fn1 PDOALL") in
  Alcotest.(check bool) (Printf.sprintf "fn0 serial (%.2f)" f0) true (f0 < 1.3);
  Alcotest.(check bool)
    (Printf.sprintf "fn1 parallelizes pure calls (%.2f)" f1)
    true (f1 > 2.0 *. f0)

let unsafe_call_src =
  {|
fn main() -> int {
  var t: int = 0;
  srand(7);
  for (var i: int = 0; i < 200; i = i + 1) {
    t = (t + rand()) & 65535;
  }
  print_int(t);
  return 0;
}
|}

let test_fn_ladder_unsafe_builtin () =
  let a = analyze unsafe_call_src in
  let f2 = speedup a (cfg "reduc1-dep3-fn2 PDOALL") in
  let f3 = speedup a (cfg "reduc1-dep3-fn3 PDOALL") in
  Alcotest.(check bool) (Printf.sprintf "fn2 keeps rand serial (%.2f)" f2) true (f2 < 1.3);
  Alcotest.(check bool) (Printf.sprintf "fn3 frees it (%.2f)" f3) true (f3 > 2.0)

(* A predictable non-computable register LCD: dep0 serial, dep2 unlocks. The
   value evolves by a stride only re-established per iteration through memory
   -> not computable, but trivially predictable. *)
let predictable_lcd_src =
  {|
fn main() -> int {
  var steps: int[] = new int[1];
  steps[0] = 3;
  var cur: int = 0;
  var sink: int[] = new int[256];
  for (var i: int = 0; i < 250; i = i + 1) {
    cur = cur + steps[0];          // stride 3 via memory: non-computable
    sink[i] = cur & 7;
  }
  print_int(cur);
  return 0;
}
|}

let test_dep_ladder_prediction () =
  let a = analyze predictable_lcd_src in
  let d0 = speedup a (cfg "reduc0-dep0-fn0 PDOALL") in
  let d2 = speedup a (cfg "reduc0-dep2-fn0 PDOALL") in
  let d3 = speedup a (cfg "reduc0-dep3-fn0 PDOALL") in
  Alcotest.(check bool) (Printf.sprintf "dep0 serial (%.2f)" d0) true (d0 < 1.3);
  Alcotest.(check bool) (Printf.sprintf "dep2 unlocks (%.2f)" d2) true (d2 > 2.0 *. d0);
  Alcotest.(check bool) (Printf.sprintf "dep3 at least dep2 (%.2f)" d3) true
    (d3 >= d2 -. 0.01)

(* An unpredictable register chain: dep2 fails, dep1+HELIX synchronizes. The
   producer lands early in the iteration (cheap work before, heavy after), so
   HELIX pipelining wins big. *)
let unpredictable_chain_src =
  {|
fn main() -> int {
  var h: int = 7;
  var sink: int[] = new int[300];
  for (var i: int = 0; i < 300; i = i + 1) {
    h = (h * 1103515245 + 12345) & 65535;   // produced right at iter start
    var w: int = 0;
    for (var j: int = 0; j < 20; j = j + 1) { w = w + ((h + j) & 15); }
    sink[i] = w;
  }
  print_int(sink[299]);
  return 0;
}
|}

let test_dep1_helix_pipelines () =
  let a = analyze unpredictable_chain_src in
  let d2 = speedup a (cfg "reduc0-dep2-fn0 PDOALL") in
  let d1 = speedup a (cfg "reduc1-dep1-fn0 HELIX") in
  Alcotest.(check bool) (Printf.sprintf "dep2 pdoall stuck (%.2f)" d2) true (d2 < 1.6);
  Alcotest.(check bool)
    (Printf.sprintf "helix dep1 pipelines (%.2f > 3)" d1)
    true (d1 > 3.0)

let test_coverage_monotonic_in_marking () =
  let a = analyze reduction_src in
  let c0 = (Loopa.Driver.evaluate a (cfg "reduc0-dep0-fn0 PDOALL")).Loopa.Evaluate.coverage_pct in
  let c1 = (Loopa.Driver.evaluate a (cfg "reduc1-dep0-fn0 PDOALL")).Loopa.Evaluate.coverage_pct in
  Alcotest.(check bool) (Printf.sprintf "coverage %.1f -> %.1f grows" c0 c1) true (c1 >= c0);
  Alcotest.(check bool) "bounded" true (c1 <= 100.0)

let test_speedups_at_least_one () =
  let a = analyze reduction_src in
  List.iter
    (fun c ->
      let s = speedup a c in
      Alcotest.(check bool)
        (Printf.sprintf "%s speedup %.2f >= 1" (Loopa.Config.name c) s)
        true (s >= 1.0))
    Loopa.Config.figure_ladder

let test_evaluate_rejects_invalid () =
  let a = analyze reduction_src in
  Alcotest.check_raises "doall+dep2"
    (Loopa.Config.Bad_config
       "DOALL does not support non-computable register LCDs (use dep0)") (fun () ->
      ignore (Loopa.Driver.evaluate a (cfg "reduc0-dep2-fn0 DOALL")))

(* ---- taxonomy census ---- *)

let test_taxonomy () =
  let a =
    analyze
      {|
fn main() -> int {
  var a: int[] = new int[128];
  for (var i: int = 0; i < 128; i = i + 1) { a[i] = (i * 37) & 127; }
  var s: int = 0;
  var p: int = 1;
  for (var i: int = 1; i < 127; i = i + 1) {  // IV computable
    s = s + i;                                 // reduction
    p = (p * 75 + a[i]) & 8191;                // chaotic: unpredictable
    a[i] = a[i - 1] + (p & 3);                 // frequent memory chain
  }
  print_int(s + p);
  return 0;
}
|}
  in
  let c = Loopa.Taxonomy.of_profile a.Loopa.Driver.profile in
  Alcotest.(check bool) "computable >= 1" true (c.Loopa.Taxonomy.reg_computable >= 1);
  Alcotest.(check bool) "reduction >= 1" true (c.Loopa.Taxonomy.reg_reduction >= 1);
  Alcotest.(check bool) "unpredictable >= 1" true
    (c.Loopa.Taxonomy.reg_unpredictable >= 1);
  Alcotest.(check int) "invocations" 2 c.Loopa.Taxonomy.total_invocations;
  Alcotest.(check int) "frequent mem loop" 1 c.Loopa.Taxonomy.mem_frequent_loops

(* per-loop report structure *)
let test_report_loops () =
  let a = analyze reduction_src in
  let r = Loopa.Driver.evaluate a (cfg "reduc1-dep0-fn0 PDOALL") in
  Alcotest.(check int) "two loops" 2 (List.length r.Loopa.Evaluate.loops);
  List.iter
    (fun (lr : Loopa.Evaluate.loop_result) ->
      Alcotest.(check bool) "final <= serial" true
        (lr.Loopa.Evaluate.final_cost <= lr.Loopa.Evaluate.serial_cost +. 1e-6);
      Alcotest.(check int) "one invocation" 1 lr.Loopa.Evaluate.invocations;
      Alcotest.(check string) "in main" "main" lr.Loopa.Evaluate.fname)
    r.Loopa.Evaluate.loops

let () =
  Alcotest.run "core"
    [
      ( "config",
        [
          Alcotest.test_case "parse/print" `Quick test_config_parse_print;
          Alcotest.test_case "validate" `Quick test_config_validate;
          Alcotest.test_case "ladder" `Quick test_config_ladder;
        ] );
      ( "classify",
        [
          Alcotest.test_case "phi classes" `Quick test_classify_classes;
          Alcotest.test_case "purity" `Quick test_purity;
        ] );
      ("profile", [ Alcotest.test_case "structure" `Quick test_profile_structure ]);
      ( "evaluate",
        [
          Alcotest.test_case "independent loop" `Quick test_independent_loop_parallel;
          Alcotest.test_case "memory chain serial" `Quick test_memory_chain_serial;
          Alcotest.test_case "reduc flag" `Quick test_reduc_flag;
          Alcotest.test_case "fn ladder: pure user" `Quick test_fn_ladder_pure_user_call;
          Alcotest.test_case "fn ladder: unsafe builtin" `Quick test_fn_ladder_unsafe_builtin;
          Alcotest.test_case "dep ladder: prediction" `Quick test_dep_ladder_prediction;
          Alcotest.test_case "dep1 helix pipelines" `Quick test_dep1_helix_pipelines;
          Alcotest.test_case "coverage monotonic" `Quick test_coverage_monotonic_in_marking;
          Alcotest.test_case "speedups >= 1" `Quick test_speedups_at_least_one;
          Alcotest.test_case "invalid config rejected" `Quick test_evaluate_rejects_invalid;
        ] );
      ( "reporting",
        [
          Alcotest.test_case "taxonomy" `Quick test_taxonomy;
          Alcotest.test_case "per-loop report" `Quick test_report_loops;
        ] );
    ]
