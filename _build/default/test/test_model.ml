(* Cost-model unit tests (paper §III-B): DOALL, Partial-DOALL with the 80%
   conflict cutoff and phase accounting, the HELIX formula and its serial
   cutoff — plus cross-model invariants as properties. *)

(* conflicts: (consumer iteration, delta); the producer defaults to the
   immediately preceding iteration. [far_conflicts] takes explicit
   producers for the phase-commit tests. *)
let input ?(conflicts = []) ?(far_conflicts = []) ?(reg_sync_delta = 0.0)
    ?(serial_static = false) costs =
  let tbl = Hashtbl.create 8 in
  List.iter (fun (k, d) -> Hashtbl.replace tbl k (d, k - 1)) conflicts;
  List.iter (fun (k, d, prod) -> Hashtbl.replace tbl k (d, prod)) far_conflicts;
  {
    Loopa.Model.iter_costs = Array.of_list costs;
    conflicts = tbl;
    reg_sync_delta;
    serial_static;
  }

let ckf = Alcotest.testable Fmt.float (fun a b -> abs_float (a -. b) < 1e-9)

let check_cost name want got =
  match (want, got) with
  | None, None -> ()
  | Some w, Some g -> Alcotest.check ckf name w g
  | Some _, None -> Alcotest.failf "%s: expected parallel, got serial" name
  | None, Some g -> Alcotest.failf "%s: expected serial, got %f" name g

let test_doall () =
  (* conflict-free: cost = slowest iteration *)
  check_cost "clean" (Some 5.0) (Loopa.Model.doall_cost (input [ 3.0; 5.0; 2.0 ]));
  (* any conflict abandons *)
  check_cost "one conflict" None
    (Loopa.Model.doall_cost (input ~conflicts:[ (1, 0.0) ] [ 3.0; 5.0; 2.0 ]));
  (* static serialization *)
  check_cost "static" None (Loopa.Model.doall_cost (input ~serial_static:true [ 3.0; 5.0 ]));
  (* a single iteration cannot profit *)
  check_cost "singleton" None (Loopa.Model.doall_cost (input [ 9.0 ]))

let test_pdoall_phases () =
  (* Figure 1b: conflict at iteration 2 of [4;4;4;4]: phase 1 = max(4,4)=4,
     phase 2 = max(4,4)=4 -> 8 *)
  check_cost "two phases" (Some 8.0)
    (Loopa.Model.pdoall_cost (input ~conflicts:[ (2, 0.0) ] [ 4.0; 4.0; 4.0; 4.0 ]));
  (* no conflicts: like DOALL *)
  check_cost "clean" (Some 4.0) (Loopa.Model.pdoall_cost (input [ 4.0; 1.0; 2.0 ]));
  (* conflict on iteration 0 opens a phase immediately: cost still max *)
  check_cost "conflict at 0" (Some 4.0)
    (Loopa.Model.pdoall_cost (input ~conflicts:[ (0, 0.0) ] [ 4.0; 1.0; 2.0 ]));
  (* consecutive adjacent conflicts: every iteration restarts, so the raw
     phase cost equals serial and Model.cost reports it as serial *)
  check_cost "all conflict raw" (Some 4.0)
    (Loopa.Model.pdoall_cost
       (input ~conflicts:[ (1, 0.0); (2, 0.0); (3, 0.0) ] [ 1.0; 1.0; 1.0; 1.0 ]));
  Alcotest.(check bool) "all conflict not better than serial" true
    (Loopa.Model.cost Loopa.Config.Pdoall
       (input ~conflicts:[ (1, 0.0); (2, 0.0); (3, 0.0) ] [ 1.0; 1.0; 1.0; 1.0 ])
    = None)

let test_pdoall_commit_satisfies () =
  (* every iteration reads what iteration 0 wrote: one restart commits the
     producer, after which the remaining reads are satisfied -> 2 phases *)
  let inp =
    input
      ~far_conflicts:(List.init 8 (fun i -> (i + 2, 0.0, 0)))
      (List.init 10 (fun _ -> 3.0))
  in
  check_cost "single producer" (Some 6.0) (Loopa.Model.pdoall_cost inp);
  (* but a chain (each iteration reads its predecessor) stays serial *)
  let chain = input ~conflicts:(List.init 9 (fun i -> (i + 1, 0.0))) (List.init 10 (fun _ -> 3.0)) in
  check_cost "chain serial" None (Loopa.Model.pdoall_cost chain)

let test_pdoall_cutoff () =
  (* 10 iterations: 8 conflicts = exactly 80% -> still allowed;
     9 conflicts > 80% -> serial *)
  let costs = List.init 10 (fun _ -> 2.0) in
  let conflicts n = List.init n (fun i -> (i + 1, 0.0)) in
  Alcotest.(check bool) "80% allowed" true
    (Loopa.Model.pdoall_cost (input ~conflicts:(conflicts 8) costs) <> None);
  Alcotest.(check bool) "90% serial" true
    (Loopa.Model.pdoall_cost (input ~conflicts:(conflicts 9) costs) = None)

let test_helix () =
  (* HELIX_time = slowest + delta * n *)
  check_cost "formula" (Some (5.0 +. (0.5 *. 4.0)))
    (Loopa.Model.helix_cost
       (input ~conflicts:[ (1, 0.5); (3, 0.25) ] [ 5.0; 4.0; 3.0; 2.0 ]));
  (* register sync contributes to delta_largest *)
  check_cost "reg sync" (Some (5.0 +. (1.5 *. 2.0)))
    (Loopa.Model.helix_cost (input ~reg_sync_delta:1.5 [ 5.0; 4.0 ]));
  (* static serialization still wins *)
  check_cost "static" None (Loopa.Model.helix_cost (input ~serial_static:true [ 5.0; 4.0 ]))

let test_model_serial_cutoff () =
  (* Model.cost returns None when the parallel estimate >= serial time.
     Here: slowest 4 + delta 4*2 = 12 >= serial 8. *)
  Alcotest.(check bool) "helix worse than serial -> None" true
    (Loopa.Model.cost Loopa.Config.Helix (input ~conflicts:[ (1, 4.0) ] [ 4.0; 4.0 ])
    = None);
  (* and Some when strictly better *)
  Alcotest.(check bool) "helix better -> Some" true
    (Loopa.Model.cost Loopa.Config.Helix (input ~conflicts:[ (1, 0.5) ] [ 4.0; 4.0 ])
    <> None)

(* ---- properties ---- *)

let gen_input =
  QCheck.Gen.(
    let* n = int_range 2 30 in
    let* costs = list_repeat n (map float_of_int (int_range 1 20)) in
    let* conflict_iters = list_size (int_range 0 n) (int_range 1 (n - 1)) in
    let* deltas = list_repeat (List.length conflict_iters) (map float_of_int (int_range 0 10)) in
    let+ prods = list_repeat (List.length conflict_iters) (int_range 0 (n - 1)) in
    let far =
      List.map2 (fun (k, d) p -> (k, d, min p (k - 1))) (List.combine conflict_iters deltas) prods
    in
    input ~far_conflicts:far costs)

let serial inp = Loopa.Model.serial_cost inp

let prop_pdoall_bounds =
  QCheck.Test.make ~name:"pdoall between slowest-iter and serial" ~count:300
    (QCheck.make gen_input) (fun inp ->
      match Loopa.Model.pdoall_cost inp with
      | None -> true
      | Some c -> c >= Loopa.Model.slowest_iter inp -. 1e-9 && c <= serial inp +. 1e-9)

let prop_helix_at_least_slowest =
  QCheck.Test.make ~name:"helix >= slowest iteration" ~count:300 (QCheck.make gen_input)
    (fun inp ->
      match Loopa.Model.helix_cost inp with
      | None -> true
      | Some c -> c >= Loopa.Model.slowest_iter inp -. 1e-9)

let prop_model_cost_beats_serial =
  QCheck.Test.make ~name:"Model.cost only reports beating serial" ~count:300
    (QCheck.make gen_input) (fun inp ->
      List.for_all
        (fun m ->
          match Loopa.Model.cost m inp with
          | None -> true
          | Some c -> c < serial inp)
        [ Loopa.Config.Doall; Loopa.Config.Pdoall; Loopa.Config.Helix ])

let prop_doall_cleanest =
  QCheck.Test.make ~name:"doall parallel implies pdoall parallel" ~count:300
    (QCheck.make gen_input) (fun inp ->
      match Loopa.Model.doall_cost inp with
      | None -> true
      | Some d -> (
          match Loopa.Model.pdoall_cost inp with
          | Some p -> p <= d +. 1e-9
          | None -> false))

let () =
  Alcotest.run "model"
    [
      ( "unit",
        [
          Alcotest.test_case "doall" `Quick test_doall;
          Alcotest.test_case "pdoall phases" `Quick test_pdoall_phases;
          Alcotest.test_case "pdoall commit satisfies" `Quick test_pdoall_commit_satisfies;
          Alcotest.test_case "pdoall 80% cutoff" `Quick test_pdoall_cutoff;
          Alcotest.test_case "helix formula" `Quick test_helix;
          Alcotest.test_case "serial cutoff" `Quick test_model_serial_cutoff;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_pdoall_bounds;
          QCheck_alcotest.to_alcotest prop_helix_at_least_slowest;
          QCheck_alcotest.to_alcotest prop_model_cost_beats_serial;
          QCheck_alcotest.to_alcotest prop_doall_cleanest;
        ] );
    ]
