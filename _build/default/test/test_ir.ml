(* IR unit tests: types, builder construction, printing, structural/type
   verification — every verifier check has a test that trips it. *)

open Ir.Types

let build_simple () =
  (* fn add1(x: i64) -> i64 { return x + 1 } *)
  let fn = Ir.Func.create ~name:"add1" ~params:[ ("x", I64) ] ~ret:(Some I64) in
  let entry = Ir.Func.add_block ~name:"entry" fn in
  fn.Ir.Func.entry <- entry;
  let b = Ir.Builder.create fn in
  Ir.Builder.position b entry;
  let sum = Ir.Builder.add b (Param 0) (int_ 1) in
  Ir.Builder.ret b (Some sum);
  fn

let test_types () =
  Alcotest.(check string) "i64 name" "i64" (ty_to_string I64);
  Alcotest.(check string) "f64 name" "f64" (ty_to_string F64);
  Alcotest.(check string) "i1 name" "i1" (ty_to_string I1);
  Alcotest.(check bool) "const ty int" true (const_ty (Cint 3L) = I64);
  Alcotest.(check bool) "const ty float" true (const_ty (Cfloat 1.5) = F64);
  Alcotest.(check bool) "const ty bool" true (const_ty (Cbool true) = I1);
  Alcotest.(check bool) "value equal" true (equal_value (int_ 5) (int_ 5));
  Alcotest.(check bool) "value differ" false (equal_value (int_ 5) (float_ 5.0));
  Alcotest.(check bool) "global equal" true (equal_value (Global "g") (Global "g"));
  Alcotest.(check bool) "nan const equal by bits" true
    (equal_const (Cfloat Float.nan) (Cfloat Float.nan))

let test_builder () =
  let fn = build_simple () in
  Alcotest.(check int) "one block" 1 (Ir.Func.num_blocks fn);
  Alcotest.(check int) "two instrs" 2 (Ir.Func.num_instrs fn);
  Alcotest.(check (list string)) "verifies" []
    (List.map Ir.Verifier.error_to_string (Ir.Verifier.verify_func fn));
  (match Ir.Func.terminator fn 0 with
  | Some t -> (
      match t.Ir.Instr.kind with
      | Ir.Instr.Ret (Some _) -> ()
      | _ -> Alcotest.fail "expected ret")
  | None -> Alcotest.fail "no terminator");
  Alcotest.(check bool) "value_ty of param" true
    (Ir.Func.value_ty fn (Param 0) = Some I64);
  Alcotest.(check bool) "value_ty of reg" true (Ir.Func.value_ty fn (Reg 0) = Some I64)

let test_instr_helpers () =
  let k = Ir.Instr.Ibinop (Ir.Instr.Add, Param 0, int_ 1) in
  Alcotest.(check int) "operands" 2 (List.length (Ir.Instr.operands k));
  Alcotest.(check bool) "not terminator" false (Ir.Instr.is_terminator k);
  Alcotest.(check bool) "has result" true (Ir.Instr.has_result k);
  Alcotest.(check bool) "br is terminator" true (Ir.Instr.is_terminator (Ir.Instr.Br 0));
  Alcotest.(check (list int)) "br successors" [ 3 ] (Ir.Instr.successors (Ir.Instr.Br 3));
  Alcotest.(check (list int)) "condbr successors" [ 1; 2 ]
    (Ir.Instr.successors (Ir.Instr.Cond_br (bool_ true, 1, 2)));
  Alcotest.(check (list int)) "condbr same target dedup" [ 1 ]
    (Ir.Instr.successors (Ir.Instr.Cond_br (bool_ true, 1, 1)));
  (* map_operands rewrites every operand *)
  let mapped =
    Ir.Instr.map_operands (fun _ -> int_ 7) (Ir.Instr.Select (bool_ true, int_ 1, int_ 2))
  in
  Alcotest.(check bool) "map_operands" true
    (Ir.Instr.operands mapped = [ int_ 7; int_ 7; int_ 7 ]);
  let retargeted = Ir.Instr.retarget_successor ~from_:2 ~to_:9 (Ir.Instr.Cond_br (bool_ true, 2, 3)) in
  Alcotest.(check (list int)) "retarget" [ 9; 3 ] (Ir.Instr.successors retargeted)

let test_printer () =
  let fn = build_simple () in
  let s = Ir.Pp.func_to_string fn in
  Alcotest.(check bool) "mentions fn name" true
    (Astring_contains.contains s "@add1");
  Alcotest.(check bool) "mentions add" true (Astring_contains.contains s "add i64");
  Alcotest.(check bool) "mentions ret" true (Astring_contains.contains s "ret")

let expect_error ~what fn =
  let errs = Ir.Verifier.verify_func fn in
  Alcotest.(check bool)
    (Printf.sprintf "error mentioning %S reported" what)
    true
    (List.exists
       (fun e -> Astring_contains.contains (Ir.Verifier.error_to_string e) what)
       errs)

let test_verifier_missing_terminator () =
  let fn = Ir.Func.create ~name:"f" ~params:[] ~ret:None in
  let entry = Ir.Func.add_block fn in
  fn.Ir.Func.entry <- entry;
  ignore (Ir.Func.append_instr fn entry ~ty:(Some I64) (Ir.Instr.Ibinop (Ir.Instr.Add, int_ 1, int_ 2)));
  expect_error ~what:"not a terminator" fn

let test_verifier_empty_block () =
  let fn = Ir.Func.create ~name:"f" ~params:[] ~ret:None in
  let entry = Ir.Func.add_block fn in
  fn.Ir.Func.entry <- entry;
  expect_error ~what:"no terminator" fn

let test_verifier_type_mismatch () =
  let fn = Ir.Func.create ~name:"f" ~params:[] ~ret:None in
  let entry = Ir.Func.add_block fn in
  fn.Ir.Func.entry <- entry;
  ignore
    (Ir.Func.append_instr fn entry ~ty:(Some I64)
       (Ir.Instr.Ibinop (Ir.Instr.Add, int_ 1, float_ 2.0)));
  ignore (Ir.Func.append_instr fn entry ~ty:None (Ir.Instr.Ret None));
  expect_error ~what:"expected i64" fn

let test_verifier_bad_target () =
  let fn = Ir.Func.create ~name:"f" ~params:[] ~ret:None in
  let entry = Ir.Func.add_block fn in
  fn.Ir.Func.entry <- entry;
  ignore (Ir.Func.append_instr fn entry ~ty:None (Ir.Instr.Br 42));
  expect_error ~what:"out of range" fn

let test_verifier_ret_mismatch () =
  let fn = Ir.Func.create ~name:"f" ~params:[] ~ret:(Some I64) in
  let entry = Ir.Func.add_block fn in
  fn.Ir.Func.entry <- entry;
  ignore (Ir.Func.append_instr fn entry ~ty:None (Ir.Instr.Ret None));
  expect_error ~what:"ret void in non-void" fn

let test_verifier_phi_after_body () =
  let fn = Ir.Func.create ~name:"f" ~params:[] ~ret:None in
  let entry = Ir.Func.add_block fn in
  fn.Ir.Func.entry <- entry;
  ignore
    (Ir.Func.append_instr fn entry ~ty:(Some I64)
       (Ir.Instr.Ibinop (Ir.Instr.Add, int_ 1, int_ 2)));
  ignore
    (Ir.Func.append_instr fn entry ~ty:(Some I64) (Ir.Instr.Phi [| (0, int_ 1) |]));
  ignore (Ir.Func.append_instr fn entry ~ty:None (Ir.Instr.Ret None));
  expect_error ~what:"after non-phi" fn

let test_verifier_duplicate_phi_pred () =
  let fn = Ir.Func.create ~name:"f" ~params:[] ~ret:None in
  let entry = Ir.Func.add_block fn in
  fn.Ir.Func.entry <- entry;
  ignore
    (Ir.Func.append_instr fn entry ~ty:(Some I64)
       (Ir.Instr.Phi [| (0, int_ 1); (0, int_ 2) |]));
  ignore (Ir.Func.append_instr fn entry ~ty:None (Ir.Instr.Ret None));
  expect_error ~what:"duplicate phi predecessor" fn

let test_verifier_icmp_mixed () =
  let fn = Ir.Func.create ~name:"f" ~params:[] ~ret:None in
  let entry = Ir.Func.add_block fn in
  fn.Ir.Func.entry <- entry;
  ignore
    (Ir.Func.append_instr fn entry ~ty:(Some I1)
       (Ir.Instr.Icmp (Ir.Instr.Ieq, int_ 1, bool_ true)));
  ignore (Ir.Func.append_instr fn entry ~ty:None (Ir.Instr.Ret None));
  expect_error ~what:"icmp operand types" fn

let test_verifier_duplicate_function () =
  let m = Ir.Func.create_module () in
  Ir.Func.add_func m (build_simple ());
  Ir.Func.add_func m (build_simple ());
  Alcotest.(check bool) "dup function flagged" true
    (List.exists
       (fun e -> Astring_contains.contains (Ir.Verifier.error_to_string e) "duplicate")
       (Ir.Verifier.verify_module m))

let test_replace_all_uses () =
  let fn = build_simple () in
  (* replace the add result with the constant 9 in the ret *)
  Ir.Func.replace_all_uses fn ~old_id:0 ~with_:(int_ 9);
  match Ir.Func.terminator fn 0 with
  | Some { Ir.Instr.kind = Ir.Instr.Ret (Some v); _ } ->
      Alcotest.(check bool) "ret now constant" true (equal_value v (int_ 9))
  | _ -> Alcotest.fail "expected ret"

let test_builtins_metadata () =
  Alcotest.(check bool) "sqrt pure" true
    ((Option.get (Ir.Builtins.find "sqrt")).Ir.Builtins.safety = Ir.Builtins.Pure);
  Alcotest.(check bool) "rand global-state" true
    ((Option.get (Ir.Builtins.find "rand")).Ir.Builtins.safety = Ir.Builtins.Global_state);
  Alcotest.(check bool) "print_int io" true
    ((Option.get (Ir.Builtins.find "print_int")).Ir.Builtins.safety = Ir.Builtins.Io);
  Alcotest.(check bool) "arrcopy thread-safe" true
    ((Option.get (Ir.Builtins.find "arrcopy")).Ir.Builtins.safety = Ir.Builtins.Thread_safe);
  Alcotest.(check bool) "unknown builtin" true (Ir.Builtins.find "nope" = None);
  Alcotest.(check string) "safety name" "pure" (Ir.Builtins.safety_name Ir.Builtins.Pure)

let () =
  Alcotest.run "ir"
    [
      ( "construct",
        [
          Alcotest.test_case "types" `Quick test_types;
          Alcotest.test_case "builder" `Quick test_builder;
          Alcotest.test_case "instr helpers" `Quick test_instr_helpers;
          Alcotest.test_case "printer" `Quick test_printer;
          Alcotest.test_case "replace_all_uses" `Quick test_replace_all_uses;
          Alcotest.test_case "builtins metadata" `Quick test_builtins_metadata;
        ] );
      ( "verifier",
        [
          Alcotest.test_case "missing terminator" `Quick test_verifier_missing_terminator;
          Alcotest.test_case "empty block" `Quick test_verifier_empty_block;
          Alcotest.test_case "type mismatch" `Quick test_verifier_type_mismatch;
          Alcotest.test_case "bad branch target" `Quick test_verifier_bad_target;
          Alcotest.test_case "ret mismatch" `Quick test_verifier_ret_mismatch;
          Alcotest.test_case "phi after body" `Quick test_verifier_phi_after_body;
          Alcotest.test_case "duplicate phi pred" `Quick test_verifier_duplicate_phi_pred;
          Alcotest.test_case "icmp mixed types" `Quick test_verifier_icmp_mixed;
          Alcotest.test_case "duplicate function" `Quick test_verifier_duplicate_function;
        ] );
    ]
