test/test_interp.ml: Alcotest Astring_contains Cfg Float Frontend Int64 Interp Ir Printf QCheck QCheck_alcotest String
