test/test_ir.ml: Alcotest Astring_contains Float Ir List Option Printf
