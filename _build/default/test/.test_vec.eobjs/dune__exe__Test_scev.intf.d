test/test_scev.mli:
