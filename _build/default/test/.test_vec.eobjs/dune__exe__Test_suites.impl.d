test/test_suites.ml: Alcotest Cfg Frontend Interp Ir List Loopa Option Printf String Suites
