test/test_cfg.ml: Alcotest Array Cfg Frontend Interp Ir List Option QCheck QCheck_alcotest
