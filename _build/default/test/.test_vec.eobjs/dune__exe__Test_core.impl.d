test/test_core.ml: Alcotest Array Frontend Hashtbl List Loopa Printf Result
