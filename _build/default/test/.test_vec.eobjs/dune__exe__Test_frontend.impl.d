test/test_frontend.ml: Alcotest Astring_contains Cfg Frontend Int64 Interp Ir List Printf QCheck QCheck_alcotest String
