test/test_scev.ml: Alcotest Cfg Fmt Frontend Int64 Ir List Option Printf QCheck QCheck_alcotest Scev
