test/test_predictors.mli:
