test/test_opt.ml: Alcotest Astring_contains Cfg Frontend Interp Ir List Loopa Opt Option Printf QCheck QCheck_alcotest String Suites
