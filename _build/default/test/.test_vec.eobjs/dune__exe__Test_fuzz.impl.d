test/test_fuzz.ml: Alcotest Array Buffer Cfg Frontend Interp List Loopa Opt Printf QCheck Random String
