test/test_model.ml: Alcotest Array Fmt Hashtbl List Loopa QCheck QCheck_alcotest
