test/test_vec.ml: Alcotest Array Ir List QCheck QCheck_alcotest
