test/test_predictors.ml: Alcotest Fun Int64 Interp List Predictors Printf QCheck QCheck_alcotest
