test/test_suites.mli:
