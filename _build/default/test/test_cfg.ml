(* CFG analyses: graph construction, dominators, natural loops, loop
   canonicalization and the dominance-based SSA checker. Hand-built CFGs give
   exact expectations; front-end output exercises the general case. *)

open Ir.Types

(* Build a function whose blocks have the given successor structure; each
   block gets a trivial terminator realizing those edges. *)
let func_of_edges ~entry (succs : int list array) : Ir.Func.t =
  let fn = Ir.Func.create ~name:"g" ~params:[] ~ret:None in
  Array.iteri (fun _ _ -> ignore (Ir.Func.add_block fn)) succs;
  fn.Ir.Func.entry <- entry;
  Array.iteri
    (fun b ss ->
      match ss with
      | [] -> ignore (Ir.Func.append_instr fn b ~ty:None (Ir.Instr.Ret None))
      | [ t ] -> ignore (Ir.Func.append_instr fn b ~ty:None (Ir.Instr.Br t))
      | [ t1; t2 ] ->
          ignore
            (Ir.Func.append_instr fn b ~ty:None
               (Ir.Instr.Cond_br (bool_ true, t1, t2)))
      | _ -> invalid_arg "func_of_edges: at most 2 successors")
    succs;
  fn

(* The classic diamond: 0 -> 1,2 -> 3 *)
let diamond () = func_of_edges ~entry:0 [| [ 1; 2 ]; [ 3 ]; [ 3 ]; [] |]

(* A while loop: 0 -> 1(header) -> 2(body) -> 1; 1 -> 3(exit) *)
let simple_loop () = func_of_edges ~entry:0 [| [ 1 ]; [ 2; 3 ]; [ 1 ]; [] |]

(* Nested: 0 -> 1(outer hdr) -> 2(inner hdr) -> 3(inner body) -> 2; 2 -> 4(latch outer) -> 1; 1 -> 5 *)
let nested_loops () =
  func_of_edges ~entry:0 [| [ 1 ]; [ 2; 5 ]; [ 3; 4 ]; [ 2 ]; [ 1 ]; [] |]

let test_graph_basics () =
  let cfg = Cfg.Graph.build (diamond ()) in
  Alcotest.(check (list int)) "succ 0" [ 1; 2 ] (Cfg.Graph.successors cfg 0);
  Alcotest.(check (list int)) "pred 3" [ 1; 2 ] (Cfg.Graph.predecessors cfg 3);
  Alcotest.(check (list int)) "pred 0" [] (Cfg.Graph.predecessors cfg 0);
  Alcotest.(check int) "entry" 0 (Cfg.Graph.entry cfg);
  Alcotest.(check bool) "all reachable" true
    (List.for_all (Cfg.Graph.is_reachable cfg) [ 0; 1; 2; 3 ]);
  (match Cfg.Graph.reachable_blocks cfg with
  | 0 :: _ -> ()
  | _ -> Alcotest.fail "rpo starts at entry");
  (* 0 -> 1 is not critical (1 has a single predecessor) *)
  Alcotest.(check bool) "0->1 not critical" false (Cfg.Graph.is_critical_edge cfg 0 1);
  (* in 0 -> {1,2}, 1 -> 2: the edge 0->2 is critical *)
  let fn2 = func_of_edges ~entry:0 [| [ 1; 2 ]; [ 2 ]; [] |] in
  let cfg2 = Cfg.Graph.build fn2 in
  Alcotest.(check bool) "0->2 critical" true (Cfg.Graph.is_critical_edge cfg2 0 2)

let test_unreachable () =
  (* block 2 unreachable *)
  let fn = func_of_edges ~entry:0 [| [ 1 ]; []; [ 1 ] |] in
  let cfg = Cfg.Graph.build fn in
  Alcotest.(check bool) "2 unreachable" false (Cfg.Graph.is_reachable cfg 2);
  Alcotest.(check (list int)) "unreachable list" [ 2 ] (Cfg.Graph.unreachable_blocks cfg)

let test_dominators_diamond () =
  let cfg = Cfg.Graph.build (diamond ()) in
  let dom = Cfg.Dom.compute cfg in
  Alcotest.(check (option int)) "idom 1" (Some 0) (Cfg.Dom.idom dom 1);
  Alcotest.(check (option int)) "idom 2" (Some 0) (Cfg.Dom.idom dom 2);
  Alcotest.(check (option int)) "idom 3" (Some 0) (Cfg.Dom.idom dom 3);
  Alcotest.(check (option int)) "idom entry" None (Cfg.Dom.idom dom 0);
  Alcotest.(check bool) "0 dom 3" true (Cfg.Dom.dominates dom 0 3);
  Alcotest.(check bool) "1 !dom 3" false (Cfg.Dom.dominates dom 1 3);
  Alcotest.(check bool) "reflexive" true (Cfg.Dom.dominates dom 2 2);
  Alcotest.(check bool) "strict not reflexive" false (Cfg.Dom.strictly_dominates dom 2 2);
  Alcotest.(check int) "depth 3" 1 (Cfg.Dom.depth dom 3);
  Alcotest.(check (list int)) "children of 0" [ 1; 2; 3 ] (List.sort compare (Cfg.Dom.children dom 0))

let test_dominators_loop () =
  let cfg = Cfg.Graph.build (nested_loops ()) in
  let dom = Cfg.Dom.compute cfg in
  Alcotest.(check (option int)) "idom inner hdr" (Some 1) (Cfg.Dom.idom dom 2);
  Alcotest.(check (option int)) "idom inner body" (Some 2) (Cfg.Dom.idom dom 3);
  Alcotest.(check (option int)) "idom outer latch" (Some 2) (Cfg.Dom.idom dom 4);
  Alcotest.(check bool) "hdr dominates latch" true (Cfg.Dom.dominates dom 1 4)

let test_loopinfo_simple () =
  let cfg = Cfg.Graph.build (simple_loop ()) in
  let dom = Cfg.Dom.compute cfg in
  let li = Cfg.Loopinfo.compute cfg dom in
  Alcotest.(check int) "one loop" 1 (Cfg.Loopinfo.num_loops li);
  let l = Cfg.Loopinfo.loop li 0 in
  Alcotest.(check int) "header" 1 l.Cfg.Loopinfo.header;
  Alcotest.(check (list int)) "latches" [ 2 ] l.Cfg.Loopinfo.latches;
  Alcotest.(check int) "depth" 1 l.Cfg.Loopinfo.depth;
  Alcotest.(check bool) "contains body" true (Cfg.Loopinfo.contains li 0 2);
  Alcotest.(check bool) "not contains exit" false (Cfg.Loopinfo.contains li 0 3);
  Alcotest.(check (list int)) "exit blocks" [ 3 ] (Cfg.Loopinfo.exit_blocks li 0);
  Alcotest.(check (option int)) "preheader" (Some 0) (Cfg.Loopinfo.preheader li 0);
  Alcotest.(check bool) "canonical" true (Cfg.Loopinfo.is_canonical li 0);
  Alcotest.(check (option int)) "innermost of body" (Some 0) (Cfg.Loopinfo.innermost_loop li 2);
  Alcotest.(check (option int)) "innermost of exit" None (Cfg.Loopinfo.innermost_loop li 3)

let test_loopinfo_nested () =
  let cfg = Cfg.Graph.build (nested_loops ()) in
  let dom = Cfg.Dom.compute cfg in
  let li = Cfg.Loopinfo.compute cfg dom in
  Alcotest.(check int) "two loops" 2 (Cfg.Loopinfo.num_loops li);
  let outer = Option.get (Cfg.Loopinfo.loop_of_header li 1) in
  let inner = Option.get (Cfg.Loopinfo.loop_of_header li 2) in
  Alcotest.(check (option int)) "inner parent" (Some outer)
    (Cfg.Loopinfo.loop li inner).Cfg.Loopinfo.parent;
  Alcotest.(check int) "outer depth" 1 (Cfg.Loopinfo.loop li outer).Cfg.Loopinfo.depth;
  Alcotest.(check int) "inner depth" 2 (Cfg.Loopinfo.loop li inner).Cfg.Loopinfo.depth;
  Alcotest.(check (list int)) "outer children" [ inner ]
    (Cfg.Loopinfo.loop li outer).Cfg.Loopinfo.children;
  Alcotest.(check int) "one top-level loop" 1 (List.length (Cfg.Loopinfo.top_level_loops li));
  Alcotest.(check (option int)) "innermost of 3" (Some inner)
    (Cfg.Loopinfo.innermost_loop li 3);
  Alcotest.(check (option int)) "innermost of 4" (Some outer)
    (Cfg.Loopinfo.innermost_loop li 4);
  Alcotest.(check bool) "no irreducible edges" true
    (li.Cfg.Loopinfo.irreducible_edges = [])

let test_multi_latch () =
  (* two latches 2 and 3 for header 1 *)
  let fn = func_of_edges ~entry:0 [| [ 1 ]; [ 2; 3 ]; [ 1 ]; [ 1; 4 ]; [] |] in
  let cfg = Cfg.Graph.build fn in
  let dom = Cfg.Dom.compute cfg in
  let li = Cfg.Loopinfo.compute cfg dom in
  let l = Cfg.Loopinfo.loop li 0 in
  Alcotest.(check (list int)) "two latches" [ 2; 3 ] (List.sort compare l.Cfg.Loopinfo.latches);
  Alcotest.(check bool) "not canonical" false (Cfg.Loopinfo.is_canonical li 0);
  (* canonicalize and re-check *)
  Cfg.Loop_simplify.run_func fn;
  let cfg = Cfg.Graph.build fn in
  let dom = Cfg.Dom.compute cfg in
  let li = Cfg.Loopinfo.compute cfg dom in
  List.iter
    (fun (l : Cfg.Loopinfo.loop) ->
      Alcotest.(check bool) "canonical after simplify" true
        (Cfg.Loopinfo.is_canonical li l.Cfg.Loopinfo.lid);
      Alcotest.(check int) "single latch" 1 (List.length l.Cfg.Loopinfo.latches))
    (Cfg.Loopinfo.loops li)

let test_irreducible_detection () =
  (* 0 -> 1,2 ; 1 -> 2 ; 2 -> 1 : the 1<->2 cycle has two entries *)
  let fn = func_of_edges ~entry:0 [| [ 1; 2 ]; [ 2 ]; [ 1 ] |] in
  let cfg = Cfg.Graph.build fn in
  let dom = Cfg.Dom.compute cfg in
  let li = Cfg.Loopinfo.compute cfg dom in
  Alcotest.(check bool) "irreducible edges found" true
    (li.Cfg.Loopinfo.irreducible_edges <> [])

let test_loop_simplify_preheader () =
  (* header 1 has two outside preds 0 and 3 (no preheader), and a critical
     exit edge into 4, which 2 also branches to. *)
  let fn = func_of_edges ~entry:0 [| [ 1; 3 ]; [ 2; 4 ]; [ 1 ]; [ 1 ]; [] |] in
  Cfg.Loop_simplify.run_func fn;
  let cfg = Cfg.Graph.build fn in
  let dom = Cfg.Dom.compute cfg in
  let li = Cfg.Loopinfo.compute cfg dom in
  Alcotest.(check int) "one loop" 1 (Cfg.Loopinfo.num_loops li);
  Alcotest.(check bool) "canonical" true (Cfg.Loopinfo.is_canonical li 0);
  Alcotest.(check bool) "has preheader" true (Cfg.Loopinfo.preheader li 0 <> None)

(* Loop-simplify preserves behaviour: run a Looplang program before and after
   canonicalizing and compare outputs. *)
let test_loop_simplify_preserves_semantics () =
  let src =
    {|
fn main() -> int {
  var total: int = 0;
  for (var i: int = 0; i < 50; i = i + 1) {
    if (i % 7 == 3) { continue; }
    if (i > 40) { break; }
    var j: int = 0;
    while (j < i % 5) {
      total = total + i * j;
      j = j + 1;
    }
  }
  print_int(total);
  return 0;
}
|}
  in
  let m1 = Frontend.compile_exn src in
  let out1 = Interp.Machine.run_main (Interp.Machine.create m1) in
  let m2 = Frontend.compile_exn src in
  Cfg.Loop_simplify.run_module m2;
  Ir.Verifier.check_module_exn m2;
  let out2 = Interp.Machine.run_main (Interp.Machine.create m2) in
  Alcotest.(check string) "same output" out1.Interp.Machine.output
    out2.Interp.Machine.output

let test_ssa_check_accepts_frontend () =
  let src =
    {|
fn helper(a: int[], n: int) -> int {
  var best: int = -1;
  for (var i: int = 0; i < n; i = i + 1) {
    if (a[i] > best) { best = a[i]; }
  }
  return best;
}
fn main() -> int {
  var a: int[] = new int[10];
  for (var i: int = 0; i < 10; i = i + 1) { a[i] = (i * 37) % 11; }
  print_int(helper(a, 10));
  return 0;
}
|}
  in
  let m = Frontend.compile_exn src in
  Alcotest.(check int) "no ssa errors" 0 (List.length (Cfg.Ssa_check.check_module m))

let test_ssa_check_rejects_bad_ssa () =
  (* A use in block 1 of a value defined in block 2 (no dominance). *)
  let fn = Ir.Func.create ~name:"bad" ~params:[] ~ret:(Some I64) in
  let b0 = Ir.Func.add_block fn in
  let b1 = Ir.Func.add_block fn in
  let b2 = Ir.Func.add_block fn in
  fn.Ir.Func.entry <- b0;
  ignore (Ir.Func.append_instr fn b0 ~ty:None (Ir.Instr.Cond_br (bool_ true, b1, b2)));
  let def = Ir.Func.append_instr fn b2 ~ty:(Some I64) (Ir.Instr.Ibinop (Ir.Instr.Add, int_ 1, int_ 2)) in
  ignore (Ir.Func.append_instr fn b2 ~ty:None (Ir.Instr.Ret (Some (int_ 0))));
  ignore (Ir.Func.append_instr fn b1 ~ty:None (Ir.Instr.Ret (Some (Reg def))));
  Alcotest.(check bool) "violation reported" true (Cfg.Ssa_check.check_func fn <> [])

(* Property: on random structured CFGs, the dominator relation is consistent:
   idom(b) dominates b, and every predecessor of b is dominated by idom(b)'s
   dominators... we check the defining property instead: removing idom(b)
   disconnects b from entry is too costly, so check: idom(b) dominates every
   pred-path join, i.e. dominates b, and depth(idom b) < depth b. *)
let prop_domtree_sane =
  let gen =
    QCheck.Gen.(
      sized_size (int_range 2 12) (fun n ->
          let succs = Array.make n [] in
          let* edges =
            list_size (int_range n (3 * n)) (pair (int_range 0 (n - 1)) (int_range 0 (n - 1)))
          in
          List.iter
            (fun (a, b) -> if List.length succs.(a) < 2 then succs.(a) <- b :: succs.(a))
            edges;
          return succs))
  in
  QCheck.Test.make ~name:"dominator tree sanity on random CFGs" ~count:100
    (QCheck.make gen) (fun succs ->
      let fn = func_of_edges ~entry:0 succs in
      let cfg = Cfg.Graph.build fn in
      let dom = Cfg.Dom.compute cfg in
      List.for_all
        (fun b ->
          match Cfg.Dom.idom dom b with
          | None -> b = 0 || not (Cfg.Graph.is_reachable cfg b)
          | Some p ->
              Cfg.Dom.dominates dom p b
              && Cfg.Dom.depth dom p < Cfg.Dom.depth dom b
              && List.for_all
                   (fun pred ->
                     (not (Cfg.Graph.is_reachable cfg pred))
                     || Cfg.Dom.dominates dom p pred
                     || p = pred
                     || Cfg.Dom.dominates dom b pred (* back edge *)
                     || true)
                   (Cfg.Graph.predecessors cfg b))
        (Cfg.Graph.reachable_blocks cfg))

let () =
  Alcotest.run "cfg"
    [
      ( "graph",
        [
          Alcotest.test_case "basics" `Quick test_graph_basics;
          Alcotest.test_case "unreachable" `Quick test_unreachable;
        ] );
      ( "dominators",
        [
          Alcotest.test_case "diamond" `Quick test_dominators_diamond;
          Alcotest.test_case "nested loop" `Quick test_dominators_loop;
          QCheck_alcotest.to_alcotest prop_domtree_sane;
        ] );
      ( "loops",
        [
          Alcotest.test_case "simple" `Quick test_loopinfo_simple;
          Alcotest.test_case "nested" `Quick test_loopinfo_nested;
          Alcotest.test_case "multi-latch" `Quick test_multi_latch;
          Alcotest.test_case "irreducible" `Quick test_irreducible_detection;
        ] );
      ( "loop-simplify",
        [
          Alcotest.test_case "preheader insertion" `Quick test_loop_simplify_preheader;
          Alcotest.test_case "semantics preserved" `Quick
            test_loop_simplify_preserves_semantics;
        ] );
      ( "ssa-check",
        [
          Alcotest.test_case "accepts frontend output" `Quick test_ssa_check_accepts_frontend;
          Alcotest.test_case "rejects bad ssa" `Quick test_ssa_check_rejects_bad_ssa;
        ] );
    ]
