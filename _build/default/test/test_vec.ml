(* Unit + property tests for the growable vector the whole stack builds on. *)

let test_basics () =
  let v = Ir.Vec.create ~dummy:0 in
  Alcotest.(check int) "empty length" 0 (Ir.Vec.length v);
  Alcotest.(check bool) "is_empty" true (Ir.Vec.is_empty v);
  Ir.Vec.push v 10;
  Ir.Vec.push v 20;
  Ir.Vec.push v 30;
  Alcotest.(check int) "length" 3 (Ir.Vec.length v);
  Alcotest.(check int) "get 0" 10 (Ir.Vec.get v 0);
  Alcotest.(check int) "get 2" 30 (Ir.Vec.get v 2);
  Alcotest.(check int) "last" 30 (Ir.Vec.last v);
  Ir.Vec.set v 1 99;
  Alcotest.(check int) "set/get" 99 (Ir.Vec.get v 1);
  Alcotest.(check int) "pop" 30 (Ir.Vec.pop v);
  Alcotest.(check int) "length after pop" 2 (Ir.Vec.length v);
  Ir.Vec.clear v;
  Alcotest.(check int) "cleared" 0 (Ir.Vec.length v)

let test_bounds () =
  let v = Ir.Vec.create ~dummy:0 in
  Ir.Vec.push v 1;
  Alcotest.check_raises "get oob" (Invalid_argument "Vec.get: index out of bounds")
    (fun () -> ignore (Ir.Vec.get v 1));
  Alcotest.check_raises "get negative" (Invalid_argument "Vec.get: index out of bounds")
    (fun () -> ignore (Ir.Vec.get v (-1)));
  Alcotest.check_raises "set oob" (Invalid_argument "Vec.set: index out of bounds")
    (fun () -> Ir.Vec.set v 5 0);
  Ir.Vec.clear v;
  Alcotest.check_raises "pop empty" (Invalid_argument "Vec.pop: empty") (fun () ->
      ignore (Ir.Vec.pop v));
  Alcotest.check_raises "last empty" (Invalid_argument "Vec.last: empty") (fun () ->
      ignore (Ir.Vec.last v))

let test_push_idx_and_iter () =
  let v = Ir.Vec.create ~dummy:(-1) in
  for i = 0 to 99 do
    Alcotest.(check int) "push_idx returns slot" i (Ir.Vec.push_idx v (i * 2))
  done;
  let sum = ref 0 in
  Ir.Vec.iter (fun x -> sum := !sum + x) v;
  Alcotest.(check int) "iter sum" (2 * (99 * 100 / 2)) !sum;
  let isum = ref 0 in
  Ir.Vec.iteri (fun i x -> isum := !isum + (x - (2 * i))) v;
  Alcotest.(check int) "iteri aligned" 0 !isum;
  Alcotest.(check int) "fold_left" !sum (Ir.Vec.fold_left ( + ) 0 v)

let test_search () =
  let v = Ir.Vec.of_list ~dummy:0 [ 5; 3; 8; 1 ] in
  Alcotest.(check bool) "exists" true (Ir.Vec.exists (fun x -> x = 8) v);
  Alcotest.(check bool) "not exists" false (Ir.Vec.exists (fun x -> x = 9) v);
  Alcotest.(check bool) "for_all" true (Ir.Vec.for_all (fun x -> x < 10) v);
  Alcotest.(check (option int)) "find_opt" (Some 8) (Ir.Vec.find_opt (fun x -> x > 5) v);
  Alcotest.(check (option int)) "find_opt none" None (Ir.Vec.find_opt (fun x -> x > 50) v)

let test_map () =
  let v = Ir.Vec.of_list ~dummy:0 [ 1; 2; 3 ] in
  let w = Ir.Vec.map ~dummy:"" string_of_int v in
  Alcotest.(check (list string)) "map" [ "1"; "2"; "3" ] (Ir.Vec.to_list w)

(* Property: to_list (of_list xs) = xs, and push preserves prior contents
   across growth boundaries. *)
let prop_roundtrip =
  QCheck.Test.make ~name:"of_list/to_list roundtrip" ~count:200
    QCheck.(list int)
    (fun xs -> Ir.Vec.to_list (Ir.Vec.of_list ~dummy:0 xs) = xs)

let prop_array_agrees =
  QCheck.Test.make ~name:"to_array agrees with to_list" ~count:200
    QCheck.(list int)
    (fun xs ->
      let v = Ir.Vec.of_list ~dummy:0 xs in
      Array.to_list (Ir.Vec.to_array v) = Ir.Vec.to_list v)

let prop_push_pop =
  QCheck.Test.make ~name:"push then pop is identity" ~count:200
    QCheck.(pair (list small_int) small_int)
    (fun (xs, x) ->
      let v = Ir.Vec.of_list ~dummy:0 xs in
      Ir.Vec.push v x;
      Ir.Vec.pop v = x && Ir.Vec.to_list v = xs)

let () =
  Alcotest.run "vec"
    [
      ( "unit",
        [
          Alcotest.test_case "basics" `Quick test_basics;
          Alcotest.test_case "bounds" `Quick test_bounds;
          Alcotest.test_case "push_idx/iter" `Quick test_push_idx_and_iter;
          Alcotest.test_case "search" `Quick test_search;
          Alcotest.test_case "map" `Quick test_map;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_roundtrip; prop_array_agrees; prop_push_pop ] );
    ]
