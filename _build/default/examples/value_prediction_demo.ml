(* Value prediction (paper §III-C): how the four predictors behave on
   characteristic value streams, and how -dep2 turns a predictable register
   LCD from a serializer into a non-event.

     dune exec examples/value_prediction_demo.exe
*)

let show_stream name stream =
  Printf.printf "%-34s" name;
  List.iter
    (fun mk ->
      let p = mk () in
      Printf.printf "  %s %4.0f%%" p.Predictors.Predictor.name
        (100.0 *. Predictors.Predictor.accuracy p stream))
    [
      Predictors.Last_value.create;
      Predictors.Stride.create;
      Predictors.Two_delta.create;
      (fun () -> Predictors.Fcm.create ());
    ];
  let h = Predictors.Hybrid.create () in
  let hits = List.filter Fun.id (Predictors.Hybrid.hits h stream) in
  Printf.printf "  hybrid %4.0f%%\n"
    (100.0 *. float_of_int (List.length hits) /. float_of_int (List.length stream));
  ()

let () =
  print_endline "predictor accuracy per stream (the hybrid is their union):";
  show_stream "constant 7 7 7 ..." (List.init 64 (fun _ -> 7L));
  show_stream "stride 3 6 9 12 ..." (List.init 64 (fun i -> Int64.of_int (3 * i)));
  show_stream "stride with one glitch"
    (List.init 64 (fun i -> Int64.of_int (if i = 20 then 999 else 3 * i)));
  show_stream "period-4 pattern 1 5 2 9 ..."
    (List.init 64 (fun i -> Int64.of_int (List.nth [ 1; 5; 2; 9 ] (i mod 4))));
  show_stream "lcg (chaotic)"
    (let s = ref 7L in
     List.init 64 (fun _ ->
         s := Int64.logand (Int64.add (Int64.mul !s 1103515245L) 12345L) 2147483647L;
         !s));

  (* The same story at the whole-program level: [cursor] advances by a stride
     fetched from memory, so SCEV cannot compute it (not an induction
     variable) — but a stride predictor nails it, so -dep2 parallelizes. *)
  let program =
    {|
fn main() -> int {
  var stride_tab: int[] = new int[1];
  stride_tab[0] = 5;
  var out: int[] = new int[600];
  var cursor: int = 0;
  for (var i: int = 0; i < 600; i = i + 1) {
    cursor = cursor + stride_tab[0];   // non-computable, but predictable
    out[i] = (cursor * 40503) & 4095;
  }
  print_int(out[599]);
  return 0;
}
|}
  in
  let a = Loopa.Driver.analyze_source program in
  print_newline ();
  List.iter
    (fun cfg ->
      let r = Loopa.Driver.evaluate a cfg in
      Printf.printf "%-28s -> %.2fx\n" (Loopa.Config.name cfg) r.Loopa.Evaluate.speedup)
    [
      Loopa.Config.of_string "reduc0-dep0-fn0 PDOALL";
      Loopa.Config.of_string "reduc0-dep2-fn0 PDOALL";
      Loopa.Config.of_string "reduc0-dep3-fn0 PDOALL";
    ];
  print_endline
    "\ndep0 serializes on the cursor; dep2's hybrid predictor (stride) removes\n\
     nearly every instance, matching the perfect predictor dep3 — the paper's\n\
     'predictable non-computable register LCD' category in action."
