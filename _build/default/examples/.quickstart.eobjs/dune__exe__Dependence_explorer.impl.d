examples/dependence_explorer.ml: Array Frontend Hashtbl In_channel List Loopa Printf Suites Sys
