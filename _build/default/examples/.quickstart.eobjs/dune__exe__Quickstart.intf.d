examples/quickstart.mli:
