examples/custom_benchmark.ml: List Loopa Printf Report
