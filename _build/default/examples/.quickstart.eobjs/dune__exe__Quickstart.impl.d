examples/quickstart.ml: Format Interp Loopa Printf
