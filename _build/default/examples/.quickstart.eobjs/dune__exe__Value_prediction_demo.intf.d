examples/value_prediction_demo.mli:
