examples/value_prediction_demo.ml: Fun Int64 List Loopa Predictors Printf
