(* Quickstart: compile a Looplang program, run the limit study, and read the
   results — the whole public API in ~60 lines.

     dune exec examples/quickstart.exe
*)

(* A program with three characteristic loops:
   - an elementwise loop (independent iterations: DOALL territory),
   - a sum reduction (parallel only once reductions are decoupled, -reduc1),
   - a linear recurrence (a frequent memory LCD: HELIX territory). *)
let program =
  {|
fn main() -> int {
  var n: int = 512;
  var a: int[] = new int[n];
  var b: int[] = new int[n];

  for (var i: int = 0; i < n; i = i + 1) {
    a[i] = (i * 2654435761) & 1023;     // independent iterations
  }

  var total: int = 0;
  for (var i: int = 0; i < n; i = i + 1) {
    total = total + a[i];               // reduction accumulator
  }

  b[0] = 1;
  for (var i: int = 1; i < n; i = i + 1) {
    b[i] = (b[i - 1] + a[i]) & 65535;   // loop-carried memory chain
  }

  print_int(total + b[n - 1]);
  return 0;
}
|}

let () =
  (* One instrumented execution collects the profile every configuration is
     evaluated against. *)
  let analysis = Loopa.Driver.analyze_source program in
  let output = analysis.Loopa.Driver.profile.Loopa.Profile.outcome in
  Printf.printf "program output : %s" output.Interp.Machine.output;
  Printf.printf "serial cost    : %d dynamic IR instructions\n\n"
    output.Interp.Machine.clock;

  (* Evaluate a few rungs of the paper's configuration ladder. *)
  let show cfg =
    let r = Loopa.Driver.evaluate analysis cfg in
    Printf.printf "%-28s speedup %7.2fx   coverage %5.1f%%\n"
      (Loopa.Config.name cfg) r.Loopa.Evaluate.speedup r.Loopa.Evaluate.coverage_pct
  in
  show (Loopa.Config.of_string "reduc0-dep0-fn0 DOALL");
  show (Loopa.Config.of_string "reduc1-dep0-fn0 DOALL");
  show (Loopa.Config.of_string "reduc1-dep2-fn2 PDOALL");
  show (Loopa.Config.of_string "reduc1-dep1-fn2 HELIX");

  (* The Table-I census of the program's ordering constraints. *)
  Format.printf "\ncensus: %a@." Loopa.Taxonomy.pp
    (Loopa.Taxonomy.of_profile analysis.Loopa.Driver.profile)
