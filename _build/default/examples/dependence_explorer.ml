(* Dependence explorer: peek inside the compile-time component. Classifies
   every loop-header phi of a program (IV / reduction / non-computable, the
   paper's Table-I register categories) and shows the canonicalized loops.

     dune exec examples/dependence_explorer.exe [-- <file-or-benchmark>]
*)

let default_program =
  {|
fn main() -> int {
  var a: int[] = new int[100];
  var sum: int = 0;        // reduction accumulator
  var walk: int = 1;       // memory-fed: non-computable, unpredictable
  var tri: int = 0;        // triangular numbers: polynomial, computable
  for (var i: int = 0; i < 99; i = i + 1) {   // canonical induction variable
    a[i] = i * 2;
    sum = sum + a[i];
    walk = a[(walk * 17 + i) % 100];
    tri = tri + i;
  }
  print_int(sum + walk + tri);
  return 0;
}
|}

let source () =
  if Array.length Sys.argv > 1 then
    let target = Sys.argv.(1) in
    match Suites.Suite.find target with
    | Some b -> b.Suites.Suite.source
    | None -> In_channel.with_open_text target In_channel.input_all
  else default_program

let () =
  let m = Frontend.compile_exn (source ()) in
  let ms = Loopa.Driver.prepare m in
  Hashtbl.iter
    (fun fname (fs : Loopa.Classify.func_static) ->
      if Array.length fs.Loopa.Classify.loops > 0 then begin
        Printf.printf "function @%s%s\n" fname
          (if fs.Loopa.Classify.pure then " (pure)" else "");
        Array.iter
          (fun (ls : Loopa.Classify.loop_static) ->
            Printf.printf "  loop at bb%d (depth %d)%s\n" ls.Loopa.Classify.header
              ls.Loopa.Classify.depth
              (match ls.Loopa.Classify.parent with
              | Some p -> Printf.sprintf " inside loop #%d" p
              | None -> "");
            Array.iter
              (fun (pi : Loopa.Classify.phi_info) ->
                Printf.printf "    register LCD %%%d: %s%s\n" pi.Loopa.Classify.phi_id
                  (Loopa.Classify.phi_class_name pi.Loopa.Classify.cls)
                  (match pi.Loopa.Classify.latch_def with
                  | Some d -> Printf.sprintf " (next value produced by %%%d)" d
                  | None -> ""))
              ls.Loopa.Classify.phis)
          fs.Loopa.Classify.loops
      end)
    ms.Loopa.Classify.funcs;
  (* How each class constrains each execution model, on the live program. *)
  let a = Loopa.Driver.analyze_module ms.Loopa.Classify.modul in
  print_newline ();
  List.iter
    (fun cfg ->
      let r = Loopa.Driver.evaluate a cfg in
      Printf.printf "%-28s -> %.2fx\n" (Loopa.Config.name cfg) r.Loopa.Evaluate.speedup)
    [
      Loopa.Config.of_string "reduc0-dep0-fn0 PDOALL";
      Loopa.Config.of_string "reduc1-dep0-fn0 PDOALL";
      Loopa.Config.of_string "reduc1-dep2-fn0 PDOALL";
      Loopa.Config.of_string "reduc1-dep3-fn0 PDOALL";
      Loopa.Config.of_string "reduc1-dep1-fn0 HELIX";
    ]
