(* Bring your own workload: write a kernel in Looplang, sweep the full
   configuration ladder, and render the results as the paper's log-scale bar
   chart plus machine-readable CSV.

     dune exec examples/custom_benchmark.exe
*)

(* A red-black Gauss-Seidel smoother: the classic "is it a DOALL or is it a
   sweep?" workload. Each color half-sweep is independent; the outer
   iteration carries the grid. *)
let program =
  {|
fn main() -> int {
  var n: int = 1024;
  var grid: float[] = new float[n];
  var rhs: float[] = new float[n];
  for (var i: int = 0; i < n; i = i + 1) {
    rhs[i] = float((i * 13) % 7) * 0.01;
  }
  for (var sweep: int = 0; sweep < 10; sweep = sweep + 1) {
    // red points: read only black neighbours -> independent
    for (var i: int = 1; i < n - 1; i = i + 2) {
      grid[i] = 0.5 * (grid[i - 1] + grid[i + 1] - rhs[i]);
    }
    // black points: read only (freshly updated) red neighbours
    for (var i: int = 2; i < n - 1; i = i + 2) {
      grid[i] = 0.5 * (grid[i - 1] + grid[i + 1] - rhs[i]);
    }
  }
  var norm: float = 0.0;
  for (var i: int = 0; i < n; i = i + 1) { norm = norm + grid[i] * grid[i]; }
  print_float(norm);
  return 0;
}
|}

let () =
  let a = Loopa.Driver.analyze_source program in
  let rows =
    List.map
      (fun cfg ->
        let r = Loopa.Driver.evaluate a cfg in
        (cfg, r.Loopa.Evaluate.speedup, r.Loopa.Evaluate.coverage_pct))
      Loopa.Config.figure_ladder
  in
  print_endline "red-black Gauss-Seidel, limit speedup per configuration:\n";
  print_endline
    (Report.Table.log_bars
       (List.map (fun (cfg, s, _) -> (Loopa.Config.name cfg, s)) rows));
  (* CSV for downstream plotting *)
  let t = Report.Table.create [ "configuration"; "speedup"; "coverage_pct" ] in
  List.iter
    (fun (cfg, s, c) ->
      Report.Table.add_row t
        [ Loopa.Config.name cfg; Printf.sprintf "%.3f" s; Printf.sprintf "%.1f" c ])
    rows;
  print_endline "\ncsv:";
  print_endline (Report.Table.to_csv t)
