(* Perfectly hybridized predictor bank (paper §III-C): an LCD instance counts
   as predicted if *any* component predictor got it right. The paper argues
   this upper-bounds realistic hybrids without baking in a particular
   confidence scheme. *)

type t = { components : Predictor.t list }

let create ?(components = None) () : t =
  let components =
    match components with
    | Some cs -> cs
    | None ->
        [ Last_value.create (); Stride.create (); Two_delta.create (); Fcm.create () ]
  in
  { components }

let reset t = List.iter (fun (p : Predictor.t) -> p.Predictor.reset ()) t.components

(* Returns whether any component would have predicted [v], then trains all. *)
let step t (v : int64) : bool =
  let hit =
    List.exists
      (fun (p : Predictor.t) ->
        match p.Predictor.predict () with Some g -> Int64.equal g v | None -> false)
      t.components
  in
  List.iter (fun (p : Predictor.t) -> p.Predictor.train v) t.components;
  hit

let hits t stream =
  reset t;
  List.map (step t) stream

(* Bit image of a runtime value, the currency predictors work in. *)
let bits_of_rv : Interp.Rvalue.rv -> int64 = function
  | Interp.Rvalue.Vint i -> i
  | Interp.Rvalue.Vfloat f -> Int64.bits_of_float f
  | Interp.Rvalue.Vbool b -> if b then 1L else 0L
