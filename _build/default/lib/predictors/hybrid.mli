(** Perfectly hybridized predictor bank (paper §III-C): an LCD instance
    counts as predicted when {e any} component predicts it — the paper's
    upper bound on realistic hybrids, avoiding a particular confidence
    scheme. The default bank is last-value + stride + 2-delta + FCM. *)

type t

(** [components = Some ps] replaces the default bank (ablation studies). *)
val create : ?components:Predictor.t list option -> unit -> t

val reset : t -> unit

(** Was the next value predicted by any component? Trains all components. *)
val step : t -> int64 -> bool

(** Per-element hit flags over a whole stream (resets first). *)
val hits : t -> int64 list -> bool list

(** The 64-bit image predictors work in (floats by bit pattern). *)
val bits_of_rv : Interp.Rvalue.rv -> int64
