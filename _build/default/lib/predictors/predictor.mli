(** Value-predictor interface (paper §III-C). A predictor is queried for its
    prediction of the next value, then trained with the actual one. Streams
    are the per-iteration values of one register LCD within one loop
    invocation. *)

type t = {
  name : string;
  predict : unit -> int64 option;  (** [None]: no confident prediction yet *)
  train : int64 -> unit;
  reset : unit -> unit;
}

(** Per-element hit flags (resets the predictor first). The first element can
    never hit. *)
val hits : t -> int64 list -> bool list

(** Fraction of hits over the stream; 0 for the empty stream. *)
val accuracy : t -> int64 list -> float
