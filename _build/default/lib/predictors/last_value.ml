(* Last-value predictor: predicts the stream repeats its previous element. *)

let create () : Predictor.t =
  let last = ref None in
  {
    Predictor.name = "last-value";
    predict = (fun () -> !last);
    train = (fun v -> last := Some v);
    reset = (fun () -> last := None);
  }
