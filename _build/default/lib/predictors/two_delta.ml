(* 2-delta stride predictor: the predicted stride only updates after the same
   new stride is observed twice in a row, filtering one-off disturbances. *)

let create () : Predictor.t =
  let last = ref None in
  let stride = ref 0L in
  let candidate = ref None in
  {
    Predictor.name = "2-delta";
    predict =
      (fun () -> match !last with Some l -> Some (Int64.add l !stride) | None -> None);
    train =
      (fun v ->
        (match !last with
        | Some l ->
            let d = Int64.sub v l in
            if d <> !stride then
              if !candidate = Some d then begin
                stride := d;
                candidate := None
              end
              else candidate := Some d
            else candidate := None
        | None -> ());
        last := Some v);
    reset =
      (fun () ->
        last := None;
        stride := 0L;
        candidate := None);
  }
