(* Stride predictor: predicts last + (last - previous). Needs two samples
   before it ventures a prediction. *)

let create () : Predictor.t =
  let last = ref None and prev = ref None in
  {
    Predictor.name = "stride";
    predict =
      (fun () ->
        match (!last, !prev) with
        | Some l, Some p -> Some (Int64.add l (Int64.sub l p))
        | Some l, None -> Some l
        | None, _ -> None);
    train =
      (fun v ->
        prev := !last;
        last := Some v);
    reset =
      (fun () ->
        last := None;
        prev := None);
  }
