(* Value-predictor interface (paper §III-C). A predictor is queried for its
   prediction of the *next* value in a stream, then trained with the actual
   value. Streams here are the per-iteration values of one non-computable
   register LCD within one loop invocation. Values are the raw 64-bit images
   of the register (floats by bit pattern). *)

type t = {
  name : string;
  (* None when the predictor has no confident prediction yet *)
  predict : unit -> int64 option;
  train : int64 -> unit;
  reset : unit -> unit;
}

(* Feed a stream; return per-element hit flags. The first element can never
   be a hit (nothing to predict from); predictors may also decline early
   elements while warming up. *)
let hits (p : t) (stream : int64 list) : bool list =
  p.reset ();
  List.map
    (fun v ->
      let hit = match p.predict () with Some g -> Int64.equal g v | None -> false in
      p.train v;
      hit)
    stream

let accuracy p stream =
  let h = hits p stream in
  let total = List.length h in
  if total = 0 then 0.0
  else float_of_int (List.length (List.filter Fun.id h)) /. float_of_int total
