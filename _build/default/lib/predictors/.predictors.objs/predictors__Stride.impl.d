lib/predictors/stride.ml: Int64 Predictor
