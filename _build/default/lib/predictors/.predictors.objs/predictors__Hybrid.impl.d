lib/predictors/hybrid.ml: Fcm Int64 Interp Last_value List Predictor Stride Two_delta
