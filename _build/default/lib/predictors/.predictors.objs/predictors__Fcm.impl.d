lib/predictors/fcm.ml: Array Int64 List Predictor Printf
