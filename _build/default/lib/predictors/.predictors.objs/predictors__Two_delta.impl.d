lib/predictors/two_delta.ml: Int64 Predictor
