lib/predictors/predictor.ml: Fun Int64 List
