lib/predictors/predictor.mli:
