lib/predictors/last_value.ml: Predictor
