lib/predictors/hybrid.mli: Interp Predictor
