(* Finite Context Method predictor (Sazeides & Smith, MICRO'97): hashes the
   last [order] values into a context and predicts the value that followed
   that context last time. *)

let default_order = 2

let default_table_bits = 12

let create ?(order = default_order) ?(table_bits = default_table_bits) () :
    Predictor.t =
  let table_size = 1 lsl table_bits in
  let table : int64 option array = Array.make table_size None in
  let history = ref [] in
  let hash_history () =
    if List.length !history < order then None
    else
      Some
        (List.fold_left
           (fun acc v ->
             let h =
               Int64.to_int
                 (Int64.logand
                    (Int64.mul (Int64.logxor v (Int64.of_int acc)) 0x9E3779B97F4A7C15L)
                    Int64.max_int)
             in
             h land (table_size - 1))
           5381 !history)
  in
  {
    Predictor.name = Printf.sprintf "fcm-%d" order;
    predict =
      (fun () -> match hash_history () with Some h -> table.(h) | None -> None);
    train =
      (fun v ->
        (match hash_history () with Some h -> table.(h) <- Some v | None -> ());
        history := v :: !history;
        if List.length !history > order then
          history := List.filteri (fun i _ -> i < order) !history);
    reset =
      (fun () ->
        Array.fill table 0 table_size None;
        history := []);
  }
