(* Recursive-descent parser for Looplang. Operator precedence follows C
   (with the usual simplifications: no assignment expressions, no ternary). *)

open Ast
open Lexer

exception Parse_error of string * pos

type state = { toks : (token * pos) array; mutable cur : int }

let peek st = fst st.toks.(st.cur)

let peek2 st =
  if st.cur + 1 < Array.length st.toks then fst st.toks.(st.cur + 1) else Eof

let pos_here st = snd st.toks.(st.cur)

let advance st = if st.cur < Array.length st.toks - 1 then st.cur <- st.cur + 1

let error st msg = raise (Parse_error (msg, pos_here st))

let expect st tok =
  if peek st = tok then advance st
  else
    error st
      (Printf.sprintf "expected '%s' but found '%s'" (token_to_string tok)
         (token_to_string (peek st)))

let expect_ident st =
  match peek st with
  | Tident name ->
      advance st;
      name
  | t -> error st (Printf.sprintf "expected identifier, found '%s'" (token_to_string t))

(* type := ("int"|"float"|"bool") ("[" "]")* *)
let parse_ty st =
  let base =
    match peek st with
    | Kint -> advance st; Tint
    | Kfloat -> advance st; Tfloat
    | Kbool -> advance st; Tbool
    | t -> error st (Printf.sprintf "expected a type, found '%s'" (token_to_string t))
  in
  let rec arrays t =
    if peek st = Lbracket && peek2 st = Rbracket then begin
      advance st;
      advance st;
      arrays (Tarr t)
    end
    else t
  in
  arrays base

let binop_of_token = function
  | Plus -> Some Badd
  | Minus -> Some Bsub
  | Star -> Some Bmul
  | Slash -> Some Bdiv
  | Percent -> Some Bmod
  | Amp -> Some Band
  | Pipe -> Some Bor
  | Caret -> Some Bxor
  | Shl -> Some Bshl
  | Shr -> Some Bshr
  | Eq -> Some Beq
  | Neq -> Some Bne
  | Lt -> Some Blt
  | Le -> Some Ble
  | Gt -> Some Bgt
  | Ge -> Some Bge
  | _ -> None

(* Precedence climbing, C-like levels (higher binds tighter). *)
let prec_of = function
  | Bmul | Bdiv | Bmod -> 10
  | Badd | Bsub -> 9
  | Bshl | Bshr -> 8
  | Blt | Ble | Bgt | Bge -> 7
  | Beq | Bne -> 6
  | Band -> 5
  | Bxor -> 4
  | Bor -> 3

let rec parse_expr st = parse_or st

and parse_or st =
  let lhs = ref (parse_and st) in
  while peek st = Pipepipe do
    let p = pos_here st in
    advance st;
    let rhs = parse_and st in
    lhs := mk_expr ~pos:p (Eor (!lhs, rhs))
  done;
  !lhs

and parse_and st =
  let lhs = ref (parse_binary st 0) in
  while peek st = Ampamp do
    let p = pos_here st in
    advance st;
    let rhs = parse_binary st 0 in
    lhs := mk_expr ~pos:p (Eand (!lhs, rhs))
  done;
  !lhs

and parse_binary st min_prec =
  let lhs = ref (parse_unary st) in
  let continue_ = ref true in
  while !continue_ do
    match binop_of_token (peek st) with
    | Some op when prec_of op >= min_prec ->
        let p = pos_here st in
        advance st;
        let rhs = parse_binary st (prec_of op + 1) in
        lhs := mk_expr ~pos:p (Ebin (op, !lhs, rhs))
    | _ -> continue_ := false
  done;
  !lhs

and parse_unary st =
  match peek st with
  | Minus ->
      let p = pos_here st in
      advance st;
      mk_expr ~pos:p (Eun (Uneg, parse_unary st))
  | Bang ->
      let p = pos_here st in
      advance st;
      mk_expr ~pos:p (Eun (Unot, parse_unary st))
  | _ -> parse_postfix st

and parse_postfix st =
  let e = ref (parse_primary st) in
  let continue_ = ref true in
  while !continue_ do
    match peek st with
    | Lbracket ->
        let p = pos_here st in
        advance st;
        let idx = parse_expr st in
        expect st Rbracket;
        e := mk_expr ~pos:p (Eindex (!e, idx))
    | _ -> continue_ := false
  done;
  !e

and parse_primary st =
  let p = pos_here st in
  match peek st with
  | Tint_lit v ->
      advance st;
      mk_expr ~pos:p (Eint v)
  | Tfloat_lit v ->
      advance st;
      mk_expr ~pos:p (Efloat v)
  | Ktrue ->
      advance st;
      mk_expr ~pos:p (Ebool true)
  | Kfalse ->
      advance st;
      mk_expr ~pos:p (Ebool false)
  | Lparen ->
      advance st;
      let e = parse_expr st in
      expect st Rparen;
      e
  (* conversion intrinsics share spelling with the type keywords *)
  | Kfloat when peek2 st = Lparen ->
      advance st;
      advance st;
      let e = parse_expr st in
      expect st Rparen;
      mk_expr ~pos:p (Ecall ("float", [ e ]))
  | Kint when peek2 st = Lparen ->
      advance st;
      advance st;
      let e = parse_expr st in
      expect st Rparen;
      mk_expr ~pos:p (Ecall ("int", [ e ]))
  | Knew ->
      advance st;
      let elem =
        match peek st with
        | Kint -> advance st; Tint
        | Kfloat -> advance st; Tfloat
        | t ->
            error st
              (Printf.sprintf "expected 'int' or 'float' after 'new', found '%s'"
                 (token_to_string t))
      in
      expect st Lbracket;
      let size = parse_expr st in
      expect st Rbracket;
      mk_expr ~pos:p (Enew (elem, size))
  | Tident "len" when peek2 st = Lparen ->
      advance st;
      advance st;
      let e = parse_expr st in
      expect st Rparen;
      mk_expr ~pos:p (Elen e)
  | Tident name -> (
      advance st;
      match peek st with
      | Lparen ->
          advance st;
          let args = ref [] in
          if peek st <> Rparen then begin
            args := [ parse_expr st ];
            while peek st = Comma do
              advance st;
              args := parse_expr st :: !args
            done
          end;
          expect st Rparen;
          mk_expr ~pos:p (Ecall (name, List.rev !args))
      | _ -> mk_expr ~pos:p (Evar name))
  | t -> error st (Printf.sprintf "unexpected token '%s' in expression" (token_to_string t))

(* A "simple" statement usable in for-headers: declaration, assignment,
   array store or expression, with no trailing semicolon. *)
let rec parse_simple_stmt st =
  let p = pos_here st in
  match peek st with
  | Kvar ->
      advance st;
      let name = expect_ident st in
      expect st Colon;
      let ty = parse_ty st in
      let init =
        if peek st = Assign then begin
          advance st;
          Some (parse_expr st)
        end
        else None
      in
      mk_stmt ~pos:p (Svar (name, ty, init))
  | Tident name when peek2 st = Assign ->
      advance st;
      advance st;
      let rhs = parse_expr st in
      mk_stmt ~pos:p (Sassign (name, rhs))
  | _ ->
      (* Could be an array store (lvalue with indexing) or a call statement. *)
      let e = parse_expr st in
      if peek st = Assign then begin
        advance st;
        let rhs = parse_expr st in
        match e.Ast.e with
        | Eindex (arr, idx) -> mk_stmt ~pos:p (Sstore (arr, idx, rhs))
        | Evar name -> mk_stmt ~pos:p (Sassign (name, rhs))
        | _ -> error st "invalid assignment target"
      end
      else mk_stmt ~pos:p (Sexpr e)

and parse_stmt st =
  let p = pos_here st in
  match peek st with
  | Kif ->
      advance st;
      expect st Lparen;
      let cond = parse_expr st in
      expect st Rparen;
      let then_ = parse_block st in
      let else_ =
        if peek st = Kelse then begin
          advance st;
          if peek st = Kif then [ parse_stmt st ] else parse_block st
        end
        else []
      in
      mk_stmt ~pos:p (Sif (cond, then_, else_))
  | Kwhile ->
      advance st;
      expect st Lparen;
      let cond = parse_expr st in
      expect st Rparen;
      let body = parse_block st in
      mk_stmt ~pos:p (Swhile (cond, body))
  | Kfor ->
      advance st;
      expect st Lparen;
      let init = if peek st = Semi then None else Some (parse_simple_stmt st) in
      expect st Semi;
      let cond = if peek st = Semi then None else Some (parse_expr st) in
      expect st Semi;
      let step = if peek st = Rparen then None else Some (parse_simple_stmt st) in
      expect st Rparen;
      let body = parse_block st in
      mk_stmt ~pos:p (Sfor (init, cond, step, body))
  | Kbreak ->
      advance st;
      expect st Semi;
      mk_stmt ~pos:p Sbreak
  | Kcontinue ->
      advance st;
      expect st Semi;
      mk_stmt ~pos:p Scontinue
  | Kreturn ->
      advance st;
      if peek st = Semi then begin
        advance st;
        mk_stmt ~pos:p (Sreturn None)
      end
      else begin
        let e = parse_expr st in
        expect st Semi;
        mk_stmt ~pos:p (Sreturn (Some e))
      end
  | _ ->
      let s = parse_simple_stmt st in
      expect st Semi;
      s

and parse_block st =
  expect st Lbrace;
  let stmts = ref [] in
  while peek st <> Rbrace do
    stmts := parse_stmt st :: !stmts
  done;
  expect st Rbrace;
  List.rev !stmts

let parse_func st =
  let p = pos_here st in
  expect st Kfn;
  let name = expect_ident st in
  expect st Lparen;
  let params = ref [] in
  if peek st <> Rparen then begin
    let param () =
      let pname = expect_ident st in
      expect st Colon;
      let ty = parse_ty st in
      (pname, ty)
    in
    params := [ param () ];
    while peek st = Comma do
      advance st;
      params := param () :: !params
    done
  end;
  expect st Rparen;
  let ret =
    if peek st = Arrow then begin
      advance st;
      Some (parse_ty st)
    end
    else None
  in
  let body = parse_block st in
  { fname = name; params = List.rev !params; ret; body; fpos = p }

let parse_global st =
  let p = pos_here st in
  expect st Kglobal;
  let name = expect_ident st in
  expect st Colon;
  let ty = parse_ty st in
  let init =
    if peek st = Assign then begin
      advance st;
      Some (parse_expr st)
    end
    else None
  in
  expect st Semi;
  { gname = name; gty = ty; ginit = init; gpos = p }

let parse_program (src : string) : program =
  let toks = Array.of_list (Lexer.tokenize src) in
  let st = { toks; cur = 0 } in
  let globals = ref [] and funcs = ref [] in
  while peek st <> Eof do
    match peek st with
    | Kglobal -> globals := parse_global st :: !globals
    | Kfn -> funcs := parse_func st :: !funcs
    | t ->
        error st
          (Printf.sprintf "expected 'fn' or 'global' at top level, found '%s'"
             (token_to_string t))
  done;
  { globals = List.rev !globals; funcs = List.rev !funcs }
