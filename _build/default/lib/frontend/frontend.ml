(* Front-end entry points: Looplang source text -> verified SSA module.
   Re-exports the pipeline stages so users can reach them as Frontend.Ast,
   Frontend.Parser, etc. *)

module Ast = Ast
module Lexer = Lexer
module Parser = Parser
module Sema = Sema
module Lower = Lower

type error = { msg : string; pos : Ast.pos }

let pp_error ppf e = Format.fprintf ppf "%a: %s" Ast.pp_pos e.pos e.msg

let error_to_string e = Format.asprintf "%a" pp_error e

exception Compile_error of error

(* Parse + typecheck + lower. Raises Compile_error with a source position on
   any front-end failure, and Ir.Verifier.Invalid_ir if lowering ever emits
   ill-formed IR (that would be a bug in this library, not in user code). *)
let compile_exn (src : string) : Ir.Func.modul =
  let wrap msg pos = raise (Compile_error { msg; pos }) in
  let prog =
    try Parser.parse_program src with
    | Lexer.Lex_error (msg, pos) -> wrap ("lexical error: " ^ msg) pos
    | Parser.Parse_error (msg, pos) -> wrap ("syntax error: " ^ msg) pos
  in
  (try Sema.check_program prog
   with Sema.Sema_error (msg, pos) -> wrap ("type error: " ^ msg) pos);
  let m =
    try Lower.lower_program prog
    with Lower.Lower_error (msg, pos) -> wrap ("lowering error: " ^ msg) pos
  in
  Ir.Verifier.check_module_exn m;
  (match Cfg.Ssa_check.check_module m with
  | [] -> ()
  | errs ->
      raise
        (Ir.Verifier.Invalid_ir
           (String.concat "\n" (List.map Cfg.Ssa_check.error_to_string errs))));
  m

let compile (src : string) : (Ir.Func.modul, error) result =
  match compile_exn src with
  | m -> Ok m
  | exception Compile_error e -> Error e

(* Parse and typecheck only; useful for tooling and tests. *)
let parse_and_check_exn (src : string) : Ast.program =
  let wrap msg pos = raise (Compile_error { msg; pos }) in
  let prog =
    try Parser.parse_program src with
    | Lexer.Lex_error (msg, pos) -> wrap ("lexical error: " ^ msg) pos
    | Parser.Parse_error (msg, pos) -> wrap ("syntax error: " ^ msg) pos
  in
  (try Sema.check_program prog
   with Sema.Sema_error (msg, pos) -> wrap ("type error: " ^ msg) pos);
  prog
