(* Hand-written lexer for Looplang. Produces a token list with positions;
   supports // line and /* block */ comments. *)

type token =
  | Tint_lit of int64
  | Tfloat_lit of float
  | Tident of string
  (* keywords *)
  | Kfn
  | Kvar
  | Kglobal
  | Kif
  | Kelse
  | Kwhile
  | Kfor
  | Kbreak
  | Kcontinue
  | Kreturn
  | Ktrue
  | Kfalse
  | Knew
  | Kint
  | Kfloat
  | Kbool
  (* punctuation *)
  | Lparen
  | Rparen
  | Lbrace
  | Rbrace
  | Lbracket
  | Rbracket
  | Semi
  | Colon
  | Comma
  | Arrow
  | Assign
  | Eq
  | Neq
  | Lt
  | Le
  | Gt
  | Ge
  | Plus
  | Minus
  | Star
  | Slash
  | Percent
  | Amp
  | Pipe
  | Caret
  | Shl
  | Shr
  | Ampamp
  | Pipepipe
  | Bang
  | Eof

let token_to_string = function
  | Tint_lit i -> Printf.sprintf "int(%Ld)" i
  | Tfloat_lit f -> Printf.sprintf "float(%g)" f
  | Tident s -> Printf.sprintf "ident(%s)" s
  | Kfn -> "fn"
  | Kvar -> "var"
  | Kglobal -> "global"
  | Kif -> "if"
  | Kelse -> "else"
  | Kwhile -> "while"
  | Kfor -> "for"
  | Kbreak -> "break"
  | Kcontinue -> "continue"
  | Kreturn -> "return"
  | Ktrue -> "true"
  | Kfalse -> "false"
  | Knew -> "new"
  | Kint -> "int"
  | Kfloat -> "float"
  | Kbool -> "bool"
  | Lparen -> "("
  | Rparen -> ")"
  | Lbrace -> "{"
  | Rbrace -> "}"
  | Lbracket -> "["
  | Rbracket -> "]"
  | Semi -> ";"
  | Colon -> ":"
  | Comma -> ","
  | Arrow -> "->"
  | Assign -> "="
  | Eq -> "=="
  | Neq -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Plus -> "+"
  | Minus -> "-"
  | Star -> "*"
  | Slash -> "/"
  | Percent -> "%"
  | Amp -> "&"
  | Pipe -> "|"
  | Caret -> "^"
  | Shl -> "<<"
  | Shr -> ">>"
  | Ampamp -> "&&"
  | Pipepipe -> "||"
  | Bang -> "!"
  | Eof -> "<eof>"

exception Lex_error of string * Ast.pos

let keyword_of = function
  | "fn" -> Some Kfn
  | "var" -> Some Kvar
  | "global" -> Some Kglobal
  | "if" -> Some Kif
  | "else" -> Some Kelse
  | "while" -> Some Kwhile
  | "for" -> Some Kfor
  | "break" -> Some Kbreak
  | "continue" -> Some Kcontinue
  | "return" -> Some Kreturn
  | "true" -> Some Ktrue
  | "false" -> Some Kfalse
  | "new" -> Some Knew
  | "int" -> Some Kint
  | "float" -> Some Kfloat
  | "bool" -> Some Kbool
  | _ -> None

let is_digit c = c >= '0' && c <= '9'

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || is_digit c

let tokenize (src : string) : (token * Ast.pos) list =
  let n = String.length src in
  let toks = ref [] in
  let i = ref 0 in
  let line = ref 1 and col = ref 1 in
  let pos () : Ast.pos = { Ast.line = !line; Ast.col = !col } in
  let advance () =
    (if !i < n then
       if src.[!i] = '\n' then begin
         incr line;
         col := 1
       end
       else incr col);
    incr i
  in
  let peek k = if !i + k < n then Some src.[!i + k] else None in
  let emit tok p = toks := (tok, p) :: !toks in
  while !i < n do
    let p = pos () in
    let c = src.[!i] in
    if c = ' ' || c = '\t' || c = '\r' || c = '\n' then advance ()
    else if c = '/' && peek 1 = Some '/' then begin
      while !i < n && src.[!i] <> '\n' do
        advance ()
      done
    end
    else if c = '/' && peek 1 = Some '*' then begin
      advance ();
      advance ();
      let closed = ref false in
      while (not !closed) && !i < n do
        if src.[!i] = '*' && peek 1 = Some '/' then begin
          advance ();
          advance ();
          closed := true
        end
        else advance ()
      done;
      if not !closed then raise (Lex_error ("unterminated block comment", p))
    end
    else if is_digit c then begin
      let start = !i in
      while !i < n && is_digit src.[!i] do
        advance ()
      done;
      let is_float =
        (!i < n && src.[!i] = '.' && match peek 1 with Some d -> is_digit d | None -> false)
        || (!i < n && (src.[!i] = 'e' || src.[!i] = 'E'))
      in
      if is_float then begin
        if !i < n && src.[!i] = '.' then begin
          advance ();
          while !i < n && is_digit src.[!i] do
            advance ()
          done
        end;
        if !i < n && (src.[!i] = 'e' || src.[!i] = 'E') then begin
          advance ();
          if !i < n && (src.[!i] = '+' || src.[!i] = '-') then advance ();
          while !i < n && is_digit src.[!i] do
            advance ()
          done
        end;
        let text = String.sub src start (!i - start) in
        match float_of_string_opt text with
        | Some f -> emit (Tfloat_lit f) p
        | None -> raise (Lex_error ("bad float literal " ^ text, p))
      end
      else begin
        let text = String.sub src start (!i - start) in
        match Int64.of_string_opt text with
        | Some v -> emit (Tint_lit v) p
        | None -> raise (Lex_error ("integer literal out of range " ^ text, p))
      end
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char src.[!i] do
        advance ()
      done;
      let text = String.sub src start (!i - start) in
      match keyword_of text with
      | Some k -> emit k p
      | None -> emit (Tident text) p
    end
    else begin
      let two tok = advance (); advance (); emit tok p in
      let one tok = advance (); emit tok p in
      match (c, peek 1) with
      | '-', Some '>' -> two Arrow
      | '=', Some '=' -> two Eq
      | '!', Some '=' -> two Neq
      | '<', Some '=' -> two Le
      | '>', Some '=' -> two Ge
      | '<', Some '<' -> two Shl
      | '>', Some '>' -> two Shr
      | '&', Some '&' -> two Ampamp
      | '|', Some '|' -> two Pipepipe
      | '(', _ -> one Lparen
      | ')', _ -> one Rparen
      | '{', _ -> one Lbrace
      | '}', _ -> one Rbrace
      | '[', _ -> one Lbracket
      | ']', _ -> one Rbracket
      | ';', _ -> one Semi
      | ':', _ -> one Colon
      | ',', _ -> one Comma
      | '=', _ -> one Assign
      | '<', _ -> one Lt
      | '>', _ -> one Gt
      | '+', _ -> one Plus
      | '-', _ -> one Minus
      | '*', _ -> one Star
      | '/', _ -> one Slash
      | '%', _ -> one Percent
      | '&', _ -> one Amp
      | '|', _ -> one Pipe
      | '^', _ -> one Caret
      | '!', _ -> one Bang
      | _ -> raise (Lex_error (Printf.sprintf "unexpected character %C" c, p))
    end
  done;
  emit Eof (pos ());
  List.rev !toks
