(* Semantic analysis: scope resolution and type checking. Annotates every
   expression with its type (expr.ety) so lowering never re-infers. *)

open Ast

exception Sema_error of string * pos

let err pos fmt = Format.kasprintf (fun msg -> raise (Sema_error (msg, pos))) fmt

(* Intrinsics are expanded inline during lowering (they are language
   constructs, not calls). *)
let intrinsics = [ "imin"; "imax"; "fminv"; "fmaxv"; "iabs"; "fabs"; "float"; "int" ]

let is_intrinsic name = List.mem name intrinsics

(* Looplang-level signatures of the runtime builtins. *)
let builtin_sig name : (ty list * ty option) option =
  match name with
  | "print_int" | "print_char" -> Some ([ Tint ], None)
  | "print_float" -> Some ([ Tfloat ], None)
  | "rand" -> Some ([], Some Tint)
  | "srand" -> Some ([ Tint ], None)
  | "sqrt" | "sin" | "cos" | "exp" | "log" -> Some ([ Tfloat ], Some Tfloat)
  | "pow" -> Some ([ Tfloat; Tfloat ], Some Tfloat)
  | _ -> None

type env = {
  globals : (string * ty) list;
  func_sigs : (string * (ty list * ty option)) list;
  mutable scopes : (string, ty) Hashtbl.t list;
  fn_ret : ty option;
  mutable loop_depth : int;
}

let push_scope env = env.scopes <- Hashtbl.create 8 :: env.scopes

let pop_scope env =
  match env.scopes with [] -> () | _ :: rest -> env.scopes <- rest

let declare env pos name ty =
  match env.scopes with
  | [] -> err pos "internal: no scope"
  | scope :: _ ->
      if Hashtbl.mem scope name then err pos "redeclaration of '%s'" name;
      Hashtbl.replace scope name ty

let lookup_local env name =
  let rec go = function
    | [] -> None
    | scope :: rest -> (
        match Hashtbl.find_opt scope name with Some t -> Some t | None -> go rest)
  in
  go env.scopes

let lookup_var env pos name =
  match lookup_local env name with
  | Some t -> (t, `Local)
  | None -> (
      match List.assoc_opt name env.globals with
      | Some t -> (t, `Global)
      | None -> err pos "undefined variable '%s'" name)

let is_numeric = function Tint | Tfloat -> true | Tbool | Tarr _ -> false

let rec check_expr env (e : expr) : ty =
  let t = infer_expr env e in
  e.ety <- Some t;
  t

and infer_expr env e =
  let pos = e.pos in
  match e.e with
  | Eint _ -> Tint
  | Efloat _ -> Tfloat
  | Ebool _ -> Tbool
  | Evar name -> fst (lookup_var env pos name)
  | Eun (Uneg, x) -> (
      match check_expr env x with
      | (Tint | Tfloat) as t -> t
      | t -> err pos "cannot negate %s" (ty_to_string t))
  | Eun (Unot, x) -> (
      match check_expr env x with
      | Tbool -> Tbool
      | t -> err pos "'!' needs bool, got %s" (ty_to_string t))
  | Eand (a, b) | Eor (a, b) ->
      let ta = check_expr env a and tb = check_expr env b in
      if ta <> Tbool || tb <> Tbool then
        err pos "logical operator needs bool operands, got %s and %s" (ty_to_string ta)
          (ty_to_string tb);
      Tbool
  | Ebin (op, a, b) -> (
      let ta = check_expr env a and tb = check_expr env b in
      let both t = equal_ty ta t && equal_ty tb t in
      match op with
      | Badd | Bsub | Bmul | Bdiv ->
          if both Tint then Tint
          else if both Tfloat then Tfloat
          else
            err pos "arithmetic needs matching int or float operands, got %s and %s"
              (ty_to_string ta) (ty_to_string tb)
      | Bmod | Band | Bor | Bxor | Bshl | Bshr ->
          if both Tint then Tint
          else
            err pos "integer operator needs int operands, got %s and %s"
              (ty_to_string ta) (ty_to_string tb)
      | Blt | Ble | Bgt | Bge ->
          if both Tint || both Tfloat then Tbool
          else
            err pos "comparison needs matching numeric operands, got %s and %s"
              (ty_to_string ta) (ty_to_string tb)
      | Beq | Bne ->
          if both Tint || both Tfloat || both Tbool then Tbool
          else
            err pos "equality needs matching scalar operands, got %s and %s"
              (ty_to_string ta) (ty_to_string tb))
  | Eindex (arr, idx) -> (
      let ta = check_expr env arr in
      let ti = check_expr env idx in
      if ti <> Tint then err pos "array index must be int, got %s" (ty_to_string ti);
      match ta with
      | Tarr t -> t
      | t -> err pos "cannot index %s" (ty_to_string t))
  | Enew (elem, size) ->
      if check_expr env size <> Tint then err pos "array size must be int";
      if not (is_numeric elem) then err pos "arrays hold int or float only";
      Tarr elem
  | Elen arr -> (
      match check_expr env arr with
      | Tarr _ -> Tint
      | t -> err pos "len() needs an array, got %s" (ty_to_string t))
  | Ecall (name, args) -> (
      let targs = List.map (check_expr env) args in
      let arity_err want =
        err pos "'%s' expects %d argument(s), got %d" name want (List.length args)
      in
      match name with
      (* intrinsics *)
      | "float" -> (
          match targs with
          | [ Tint ] -> Tfloat
          | [ _ ] -> err pos "float() needs an int"
          | _ -> arity_err 1)
      | "int" -> (
          match targs with
          | [ Tfloat ] -> Tint
          | [ _ ] -> err pos "int() needs a float"
          | _ -> arity_err 1)
      | "imin" | "imax" -> (
          match targs with
          | [ Tint; Tint ] -> Tint
          | [ _; _ ] -> err pos "%s() needs two ints" name
          | _ -> arity_err 2)
      | "fminv" | "fmaxv" -> (
          match targs with
          | [ Tfloat; Tfloat ] -> Tfloat
          | [ _; _ ] -> err pos "%s() needs two floats" name
          | _ -> arity_err 2)
      | "iabs" -> (
          match targs with
          | [ Tint ] -> Tint
          | [ _ ] -> err pos "iabs() needs an int"
          | _ -> arity_err 1)
      | "fabs" -> (
          match targs with
          | [ Tfloat ] -> Tfloat
          | [ _ ] -> err pos "fabs() needs a float"
          | _ -> arity_err 1)
      (* generic array builtins *)
      | "arrcopy" -> (
          match targs with
          | [ Tarr a; Tarr b; Tint ] when equal_ty a b -> Tint (* words copied *)
          | _ -> err pos "arrcopy(dst, src, n) needs two arrays of one type and an int")
      | "arrfill" -> (
          match targs with
          | [ Tarr a; b; Tint ] when equal_ty a b -> Tint (* words written *)
          | _ -> err pos "arrfill(a, v, n) needs an array, a matching value and an int")
      | _ -> (
          let sig_ =
            match builtin_sig name with
            | Some s -> Some s
            | None -> List.assoc_opt name env.func_sigs
          in
          match sig_ with
          | None -> err pos "call to undefined function '%s'" name
          | Some (want, ret) ->
              if List.length want <> List.length targs then arity_err (List.length want);
              List.iteri
                (fun i (w, g) ->
                  if not (equal_ty w g) then
                    err pos "argument %d of '%s' has type %s, expected %s" (i + 1) name
                      (ty_to_string g) (ty_to_string w))
                (List.combine want targs);
              (match ret with
              | Some t -> t
              | None ->
                  (* A void call is only legal as a statement; the caller
                     (check_stmt) handles that case before recursing here. *)
                  err pos "void function '%s' used in an expression" name)))

let rec check_stmt env (s : stmt) : unit =
  let pos = s.spos in
  match s.s with
  | Svar (name, ty, init) ->
      (match init with
      | Some e ->
          let t = check_expr env e in
          if not (equal_ty t ty) then
            err pos "initializer of '%s' has type %s, expected %s" name (ty_to_string t)
              (ty_to_string ty)
      | None -> ());
      declare env pos name ty
  | Sassign (name, e) ->
      let tvar, _ = lookup_var env pos name in
      let t = check_expr env e in
      if not (equal_ty t tvar) then
        err pos "assigning %s to '%s' of type %s" (ty_to_string t) name
          (ty_to_string tvar)
  | Sstore (arr, idx, v) -> (
      let ta = check_expr env arr in
      let ti = check_expr env idx in
      let tv = check_expr env v in
      if ti <> Tint then err pos "array index must be int";
      match ta with
      | Tarr elem when equal_ty elem tv -> ()
      | Tarr elem ->
          err pos "storing %s into %s array" (ty_to_string tv) (ty_to_string elem)
      | t -> err pos "cannot index %s" (ty_to_string t))
  | Sif (cond, then_, else_) ->
      if check_expr env cond <> Tbool then err pos "if condition must be bool";
      push_scope env;
      List.iter (check_stmt env) then_;
      pop_scope env;
      push_scope env;
      List.iter (check_stmt env) else_;
      pop_scope env
  | Swhile (cond, body) ->
      if check_expr env cond <> Tbool then err pos "while condition must be bool";
      env.loop_depth <- env.loop_depth + 1;
      push_scope env;
      List.iter (check_stmt env) body;
      pop_scope env;
      env.loop_depth <- env.loop_depth - 1
  | Sfor (init, cond, step, body) ->
      push_scope env;
      Option.iter (check_stmt env) init;
      (match cond with
      | Some c -> if check_expr env c <> Tbool then err pos "for condition must be bool"
      | None -> ());
      env.loop_depth <- env.loop_depth + 1;
      push_scope env;
      List.iter (check_stmt env) body;
      pop_scope env;
      Option.iter (check_stmt env) step;
      env.loop_depth <- env.loop_depth - 1;
      pop_scope env
  | Sbreak | Scontinue ->
      if env.loop_depth = 0 then err pos "break/continue outside a loop"
  | Sreturn e -> (
      match (e, env.fn_ret) with
      | None, None -> ()
      | Some e, Some want ->
          let t = check_expr env e in
          if not (equal_ty t want) then
            err pos "returning %s from a function returning %s" (ty_to_string t)
              (ty_to_string want)
      | Some _, None -> err pos "returning a value from a void function"
      | None, Some t -> err pos "missing return value of type %s" (ty_to_string t))
  | Sexpr e -> (
      (* Statement expressions are calls; void calls are legal here. *)
      match e.e with
      | Ecall (name, args) -> (
          let void_sig =
            match builtin_sig name with
            | Some (want, None) -> Some want
            | Some (_, Some _) -> None
            | None -> (
                match List.assoc_opt name env.func_sigs with
                | Some (want, None) -> Some want
                | _ -> None)
          in
          match void_sig with
          | Some want when not (is_intrinsic name) ->
              let targs = List.map (check_expr env) args in
              if List.length want <> List.length targs then
                err pos "'%s' expects %d argument(s), got %d" name (List.length want)
                  (List.length targs);
              List.iteri
                (fun i (w, g) ->
                  if not (equal_ty w g) then
                    err pos "argument %d of '%s' has type %s, expected %s" (i + 1) name
                      (ty_to_string g) (ty_to_string w))
                (List.combine want targs);
              e.ety <- None
          | _ -> ignore (check_expr env e))
      | _ -> ignore (check_expr env e))

let check_func ~globals ~func_sigs (f : func) : unit =
  let env =
    { globals; func_sigs; scopes = []; fn_ret = f.ret; loop_depth = 0 }
  in
  push_scope env;
  List.iter
    (fun (name, ty) ->
      if is_intrinsic name || builtin_sig name <> None then
        err f.fpos "parameter '%s' shadows a builtin" name;
      declare env f.fpos name ty)
    f.params;
  List.iter (check_stmt env) f.body;
  pop_scope env

let check_program (p : program) : unit =
  let globals =
    List.map
      (fun g ->
        (match g.gty with
        | Tint | Tfloat | Tbool | Tarr _ -> ());
        (g.gname, g.gty))
      p.globals
  in
  (* Global initializers must be literals (evaluated at load time). *)
  List.iter
    (fun g ->
      match g.ginit with
      | None -> ()
      | Some { e = Eint _; _ } when g.gty = Tint -> ()
      | Some { e = Efloat _; _ } when g.gty = Tfloat -> ()
      | Some { e = Ebool _; _ } when g.gty = Tbool -> ()
      | Some { e = Eun (Uneg, { e = Eint _; _ }); _ } when g.gty = Tint -> ()
      | Some { e = Eun (Uneg, { e = Efloat _; _ }); _ } when g.gty = Tfloat -> ()
      | Some _ ->
          err g.gpos "global '%s' initializer must be a literal of type %s" g.gname
            (ty_to_string g.gty))
    p.globals;
  let rec dup_names seen = function
    | [] -> ()
    | g :: rest ->
        if List.mem g.gname seen then err g.gpos "duplicate global '%s'" g.gname;
        dup_names (g.gname :: seen) rest
  in
  dup_names [] p.globals;
  let func_sigs =
    List.map (fun f -> (f.fname, (List.map snd f.params, f.ret))) p.funcs
  in
  let rec dup_funcs seen = function
    | [] -> ()
    | f :: rest ->
        if List.mem f.fname seen then err f.fpos "duplicate function '%s'" f.fname;
        if is_intrinsic f.fname || builtin_sig f.fname <> None then
          err f.fpos "function '%s' shadows a builtin" f.fname;
        dup_funcs (f.fname :: seen) rest
  in
  dup_funcs [] p.funcs;
  List.iter (check_func ~globals ~func_sigs) p.funcs
