(* Abstract syntax of Looplang, the small C-like language the benchmark
   suites are written in. Deliberately minimal: ints (64-bit), floats
   (double), bools, heap arrays of int/float, functions, globals, structured
   control flow. No pointers-to-locals, so scalars promote cleanly to SSA. *)

type pos = { line : int; col : int }

let no_pos = { line = 0; col = 0 }

let pp_pos ppf p = Format.fprintf ppf "%d:%d" p.line p.col

type ty =
  | Tint
  | Tfloat
  | Tbool
  | Tarr of ty (* element type: Tint or Tfloat *)

let rec ty_to_string = function
  | Tint -> "int"
  | Tfloat -> "float"
  | Tbool -> "bool"
  | Tarr t -> ty_to_string t ^ "[]"

let equal_ty (a : ty) (b : ty) = a = b

type binop =
  | Badd
  | Bsub
  | Bmul
  | Bdiv
  | Bmod
  | Band
  | Bor
  | Bxor
  | Bshl
  | Bshr
  | Beq
  | Bne
  | Blt
  | Ble
  | Bgt
  | Bge

type unop = Uneg | Unot

type expr = { e : expr_kind; pos : pos; mutable ety : ty option }

and expr_kind =
  | Eint of int64
  | Efloat of float
  | Ebool of bool
  | Evar of string
  | Ebin of binop * expr * expr
  | Eand of expr * expr (* short-circuit && *)
  | Eor of expr * expr (* short-circuit || *)
  | Eun of unop * expr
  | Ecall of string * expr list
  | Eindex of expr * expr (* a[i] *)
  | Enew of ty * expr (* new elem_ty[n] *)
  | Elen of expr (* len(a) *)

type stmt = { s : stmt_kind; spos : pos }

and stmt_kind =
  | Svar of string * ty * expr option
  | Sassign of string * expr
  | Sstore of expr * expr * expr (* a[i] = v *)
  | Sif of expr * stmt list * stmt list
  | Swhile of expr * stmt list
  | Sfor of stmt option * expr option * stmt option * stmt list
  | Sbreak
  | Scontinue
  | Sreturn of expr option
  | Sexpr of expr

type func = {
  fname : string;
  params : (string * ty) list;
  ret : ty option;
  body : stmt list;
  fpos : pos;
}

type global = { gname : string; gty : ty; ginit : expr option; gpos : pos }

type program = { globals : global list; funcs : func list }

let mk_expr ?(pos = no_pos) e = { e; pos; ety = None }

let mk_stmt ?(pos = no_pos) s = { s; spos = pos }
