lib/frontend/frontend.ml: Ast Cfg Format Ir Lexer List Lower Parser Sema String
