lib/frontend/lower.ml: Array Ast Hashtbl Int64 Ir List Option Printf Sema
