lib/frontend/sema.ml: Ast Format Hashtbl List Option
