lib/frontend/ast.ml: Format
