(** Aligned text tables, CSV emission, and the log-scale ASCII bar charts the
    experiment harness prints (echoing the paper's log-axis figures). *)

type t

val create : string list -> t

val add_row : t -> string list -> unit

(** Rows in insertion order. *)
val rows : t -> string list list

(** Monospace rendering: first column left-aligned, the rest right-aligned. *)
val render : t -> string

val to_csv : t -> string

(** Horizontal bars on a logarithmic scale; labels aligned, values appended.
    [max_value] pins the scale (default: the largest entry). *)
val log_bars : ?width:int -> ?max_value:float option -> (string * float) list -> string
