(* Aligned text tables and CSV emission for the experiment harness. *)

type t = { headers : string list; mutable rows : string list list }

let create headers = { headers; rows = [] }

let add_row t row = t.rows <- row :: t.rows

let rows t = List.rev t.rows

let render t : string =
  let all = t.headers :: rows t in
  let ncols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  let width c =
    List.fold_left
      (fun acc r -> match List.nth_opt r c with Some s -> max acc (String.length s) | None -> acc)
      0 all
  in
  let widths = List.init ncols width in
  let render_row r =
    String.concat "  "
      (List.mapi
         (fun c w ->
           let s = match List.nth_opt r c with Some s -> s | None -> "" in
           (* left-align the first column, right-align numbers *)
           if c = 0 then Printf.sprintf "%-*s" w s else Printf.sprintf "%*s" w s)
         widths)
  in
  let sep =
    String.concat "  " (List.map (fun w -> String.make w '-') widths)
  in
  String.concat "\n" ((render_row t.headers :: sep :: List.map render_row (rows t)) @ [])

let to_csv t : string =
  let quote s =
    if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
      "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
    else s
  in
  String.concat "\n"
    (List.map (fun r -> String.concat "," (List.map quote r)) (t.headers :: rows t))

(* Horizontal log-scale bar chart, echoing the paper's log-axis figures. *)
let log_bars ?(width = 48) ?(max_value = None) (entries : (string * float) list) :
    string =
  let vmax =
    match max_value with
    | Some v -> v
    | None -> List.fold_left (fun acc (_, v) -> Float.max acc v) 1.0 entries
  in
  let lmax = log (Float.max vmax 1.001) in
  let label_w =
    List.fold_left (fun acc (l, _) -> max acc (String.length l)) 0 entries
  in
  String.concat "\n"
    (List.map
       (fun (label, v) ->
         let frac = if lmax <= 0.0 then 0.0 else log (Float.max v 1.0) /. lmax in
         let n = int_of_float (frac *. float_of_int width) in
         Printf.sprintf "%-*s |%-*s %8.2fx" label_w label width
           (String.make (max 0 (min width n)) '#')
           v)
       entries)
