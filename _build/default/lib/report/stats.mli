(** Statistics helpers for the experiment harness. *)

(** Geometric mean; values are clamped away from zero. [geomean [] = 1.0]
    (the neutral speedup). *)
val geomean : float list -> float

val mean : float list -> float

val minimum : float list -> float

val maximum : float list -> float

val median : float list -> float
