(* Small statistics helpers for the experiment harness. *)

let geomean = function
  | [] -> 1.0
  | xs ->
      let n = List.length xs in
      let sum = List.fold_left (fun acc x -> acc +. log (Float.max x 1e-12)) 0.0 xs in
      exp (sum /. float_of_int n)

let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let minimum = function [] -> 0.0 | x :: xs -> List.fold_left Float.min x xs

let maximum = function [] -> 0.0 | x :: xs -> List.fold_left Float.max x xs

let median xs =
  match List.sort Float.compare xs with
  | [] -> 0.0
  | sorted ->
      let n = List.length sorted in
      if n mod 2 = 1 then List.nth sorted (n / 2)
      else (List.nth sorted ((n / 2) - 1) +. List.nth sorted (n / 2)) /. 2.0
