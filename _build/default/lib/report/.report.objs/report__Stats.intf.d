lib/report/stats.mli:
