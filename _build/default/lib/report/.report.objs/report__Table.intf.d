lib/report/table.mli:
