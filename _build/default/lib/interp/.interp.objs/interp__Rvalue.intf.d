lib/interp/rvalue.mli: Format Ir
