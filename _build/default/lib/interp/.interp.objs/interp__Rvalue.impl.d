lib/interp/rvalue.ml: Format Hashtbl Int64 Ir List Printf
