lib/interp/machine.mli: Cfg Events Ir Rvalue
