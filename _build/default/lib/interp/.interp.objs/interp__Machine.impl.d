lib/interp/machine.ml: Array Buffer Cfg Char Events Float Hashtbl Int64 Ir List Option Printf Rvalue
