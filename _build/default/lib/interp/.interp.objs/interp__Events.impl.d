lib/interp/events.ml: Array Ir Rvalue
