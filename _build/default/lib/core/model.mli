(** Parallel execution-model cost functions (paper §II-C, §III-B). All costs
    are in dynamic IR instructions; all functions treat one loop invocation. *)

(** Partial-DOALL marks the loop sequential when more than this fraction of
    iterations trigger a phase restart (paper §III-B: 80%). *)
val pdoall_conflict_cutoff : float

type input = {
  iter_costs : float array;
      (** per-iteration cost, already reduced by nested parallelism *)
  conflicts : (int, float * int) Hashtbl.t;
      (** consumer iteration -> (stall delta, most recent producer
          iteration); HELIX consumes the deltas, Partial-DOALL the producer
          indices (a producer that committed in an earlier phase satisfies
          the read) *)
  reg_sync_delta : float;
      (** largest per-iteration stall from register-LCD synchronization
          (dep1/dep2 under HELIX); 0 when none *)
  serial_static : bool;
      (** the configuration renders this loop unconditionally sequential *)
}

val serial_cost : input -> float

val slowest_iter : input -> float

val num_conflicting : input -> int

(** [None] means the model cannot run this loop in parallel. *)
val doall_cost : input -> float option

(** [cutoff] overrides {!pdoall_conflict_cutoff} (ablation). *)
val pdoall_cost : ?cutoff:float -> input -> float option

(** [HELIX_time = iter_slowest + delta_largest * num_iter]. *)
val helix_cost : input -> float option

(** Model dispatch with the paper's serial cutoff: a "parallel" schedule
    that is not strictly faster than serial is reported as [None]. *)
val cost : ?pdoall_cutoff:float -> Config.model -> input -> float option
