(* Parallel execution-model cost functions (paper §II-C, §III-B). All operate
   on one loop invocation's per-iteration costs (already reduced by nested
   parallelism) plus the iteration-indexed conflict set for the active
   configuration. Costs are in dynamic IR instructions. A [None] result means
   the model cannot profit here and the loop stays serial. *)

(* Fraction of conflicting iterations above which Partial-DOALL gives up and
   marks the loop sequential (paper §III-B). *)
let pdoall_conflict_cutoff = 0.8

type input = {
  iter_costs : float array;
  (* consumer iteration -> (stall delta, most recent producer iteration);
     HELIX consumes the deltas, Partial-DOALL the producer indices *)
  conflicts : (int, float * int) Hashtbl.t;
  (* largest per-iteration stall from register LCD synchronization (dep1/dep2
     under HELIX); 0 when none *)
  reg_sync_delta : float;
  (* the configuration renders this loop unconditionally sequential (dep0
     with non-computable LCDs, a disallowed call, dep1 outside HELIX, ...) *)
  serial_static : bool;
}

let serial_cost inp = Array.fold_left ( +. ) 0.0 inp.iter_costs

let slowest_iter inp = Array.fold_left Float.max 0.0 inp.iter_costs

let num_conflicting inp = Hashtbl.length inp.conflicts

(* DOALL: all iterations start together; any manifesting conflict (or any
   unsupported construct) abandons parallel execution. *)
let doall_cost inp : float option =
  if inp.serial_static || num_conflicting inp > 0 || inp.reg_sync_delta > 0.0 then None
  else if Array.length inp.iter_costs <= 1 then None
  else Some (slowest_iter inp)

(* Partial-DOALL: phases of conflict-free parallel execution; a conflicting
   iteration re-starts at the end of the previous phase's slowest iteration.
   A read only conflicts while its producer iteration has not yet committed —
   producers from before the current phase's start committed at the phase
   boundary, so they are satisfied. Above the 80% restarting-iteration cutoff
   the loop is sequential. *)
let pdoall_cost ?(cutoff = pdoall_conflict_cutoff) inp : float option =
  let n = Array.length inp.iter_costs in
  if inp.serial_static || inp.reg_sync_delta > 0.0 || n <= 1 then None
  else begin
    let cost = ref 0.0 and phase_max = ref 0.0 in
    let phase_start = ref 0 in
    let restarts = ref 0 in
    for k = 0 to n - 1 do
      (match Hashtbl.find_opt inp.conflicts k with
      | Some (_, prod) when prod >= !phase_start && k > !phase_start ->
          cost := !cost +. !phase_max;
          phase_max := 0.0;
          phase_start := k;
          incr restarts
      | Some _ | None -> ());
      phase_max := Float.max !phase_max inp.iter_costs.(k)
    done;
    if float_of_int !restarts > cutoff *. float_of_int n then None
    else Some (!cost +. !phase_max)
  end

(* HELIX-style: all iterations start together but synchronize;
   HELIX_time = iter_slowest + delta_largest * num_iter (paper §III-B). *)
let helix_cost inp : float option =
  let n = Array.length inp.iter_costs in
  if inp.serial_static || n <= 1 then None
  else begin
    let delta_largest =
      Hashtbl.fold (fun _ (d, _) acc -> Float.max acc d) inp.conflicts inp.reg_sync_delta
    in
    Some (slowest_iter inp +. (delta_largest *. float_of_int n))
  end

let cost ?pdoall_cutoff (model : Config.model) inp : float option =
  let raw =
    match model with
    | Config.Doall -> doall_cost inp
    | Config.Pdoall -> pdoall_cost ?cutoff:pdoall_cutoff inp
    | Config.Helix -> helix_cost inp
  in
  (* A "parallel" execution slower than serial is reported serial. *)
  match raw with
  | Some c when c < serial_cost inp -> Some c
  | Some _ | None -> None
