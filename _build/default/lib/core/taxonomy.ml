(* Table I census: classify every ordering constraint observed in a profile
   into the paper's taxonomy, for reporting. Frequency thresholds fixed
   here: a dependency that manifests in at least half of a loop's iterations
   is "frequent"; a register LCD whose hybrid predictor misses at most 10% of
   instances is "predictable". *)

let frequent_fraction = 0.5

let predictable_miss_fraction = 0.10

type census = {
  mutable reg_computable : int; (* IVs & MIVs: static count of phis *)
  mutable reg_reduction : int;
  mutable reg_predictable : int; (* dynamic judgement over non-computables *)
  mutable reg_unpredictable : int;
  mutable mem_frequent_loops : int; (* loop invocations with frequent mem LCDs *)
  mutable mem_infrequent_loops : int; (* ... with only infrequent mem LCDs *)
  mutable mem_clean_loops : int; (* invocations with no mem LCD at all *)
  mutable loops_with_calls : int; (* structural: call-stack constraint *)
  mutable total_invocations : int;
}

let empty () =
  {
    reg_computable = 0;
    reg_reduction = 0;
    reg_predictable = 0;
    reg_unpredictable = 0;
    mem_frequent_loops = 0;
    mem_infrequent_loops = 0;
    mem_clean_loops = 0;
    loops_with_calls = 0;
    total_invocations = 0;
  }

(* Static register-LCD census over the classified module. *)
let add_static (c : census) (ms : Classify.module_static) =
  Hashtbl.iter
    (fun _ fs ->
      Array.iter
        (fun ls ->
          Array.iter
            (fun (pi : Classify.phi_info) ->
              match pi.Classify.cls with
              | Classify.Computable -> c.reg_computable <- c.reg_computable + 1
              | Classify.Reduction _ -> c.reg_reduction <- c.reg_reduction + 1
              | Classify.Non_computable -> () (* judged dynamically below *))
            ls.Classify.phis)
        fs.Classify.loops)
    ms.Classify.funcs

(* Dynamic census over one profile. Non-computable register LCDs are judged
   per static phi across all invocations. *)
let add_profile (c : census) (p : Profile.profile) =
  add_static c p.Profile.ms;
  (* register predictability, aggregated per static phi *)
  let agg = Hashtbl.create 32 in
  Array.iter
    (fun inv ->
      Array.iter
        (fun tr ->
          if tr.Profile.cls = Classify.Non_computable then begin
            let key = (inv.Profile.fname, tr.Profile.phi_id) in
            let inst, miss =
              Option.value ~default:(0, 0) (Hashtbl.find_opt agg key)
            in
            Hashtbl.replace agg key
              (inst + tr.Profile.n_instances, miss + tr.Profile.n_mispredicts)
          end)
        inv.Profile.tracks)
    p.Profile.invs;
  Hashtbl.iter
    (fun _ (inst, miss) ->
      if inst = 0 || float_of_int miss <= predictable_miss_fraction *. float_of_int inst
      then c.reg_predictable <- c.reg_predictable + 1
      else c.reg_unpredictable <- c.reg_unpredictable + 1)
    agg;
  (* memory LCD frequency per invocation *)
  Array.iter
    (fun inv ->
      c.total_invocations <- c.total_invocations + 1;
      let n = Profile.n_iters inv in
      let conflicting = Hashtbl.length inv.Profile.mem_conflicts in
      if conflicting = 0 then c.mem_clean_loops <- c.mem_clean_loops + 1
      else if float_of_int conflicting >= frequent_fraction *. float_of_int n then
        c.mem_frequent_loops <- c.mem_frequent_loops + 1
      else c.mem_infrequent_loops <- c.mem_infrequent_loops + 1;
      if inv.Profile.call_mask <> 0 then c.loops_with_calls <- c.loops_with_calls + 1)
    p.Profile.invs;
  c

let of_profile p = add_profile (empty ()) p

let pp ppf c =
  Format.fprintf ppf
    "@[<v>register LCDs: %d computable (IV/MIV), %d reduction, %d predictable, %d \
     unpredictable@,\
     loop invocations: %d total; mem LCDs: %d frequent, %d infrequent, %d none; %d \
     with calls@]"
    c.reg_computable c.reg_reduction c.reg_predictable c.reg_unpredictable
    c.total_invocations c.mem_frequent_loops c.mem_infrequent_loops c.mem_clean_loops
    c.loops_with_calls
