lib/core/driver.mli: Classify Config Evaluate Interp Ir Predictors Profile
