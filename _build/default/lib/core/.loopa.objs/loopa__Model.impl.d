lib/core/model.ml: Array Config Float Hashtbl
