lib/core/config.mli:
