lib/core/taxonomy.mli: Classify Format Profile
