lib/core/driver.ml: Cfg Classify Config Evaluate Frontend Hashtbl Interp Ir List Opt Profile
