lib/core/evaluate.ml: Array Classify Config Float Hashtbl Ir List Model Option Profile
