lib/core/config.ml: Printf String
