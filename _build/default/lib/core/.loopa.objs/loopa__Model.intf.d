lib/core/model.mli: Config Hashtbl
