lib/core/evaluate.mli: Config Profile
