lib/core/profile.ml: Array Classify Float Hashtbl Interp Ir List Option Predictors
