lib/core/taxonomy.ml: Array Classify Format Hashtbl Option Profile
