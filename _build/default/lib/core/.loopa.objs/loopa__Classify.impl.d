lib/core/classify.ml: Array Cfg Hashtbl Interp Ir List Option Scev
