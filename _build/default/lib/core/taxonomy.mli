(** Table-I census: classify the ordering constraints observed in a profile
    into the paper's taxonomy. *)

(** A memory LCD manifesting in at least this fraction of a loop's iterations
    is counted as "frequent". *)
val frequent_fraction : float

(** A non-computable register LCD whose hybrid predictor misses at most this
    fraction of instances is counted as "predictable". *)
val predictable_miss_fraction : float

type census = {
  mutable reg_computable : int;  (** IVs & MIVs (static count of phis) *)
  mutable reg_reduction : int;
  mutable reg_predictable : int;
  mutable reg_unpredictable : int;
  mutable mem_frequent_loops : int;
  mutable mem_infrequent_loops : int;
  mutable mem_clean_loops : int;
  mutable loops_with_calls : int;  (** structural call-stack constraint *)
  mutable total_invocations : int;
}

val empty : unit -> census

(** Add the static register-LCD classes of a classified module. *)
val add_static : census -> Classify.module_static -> unit

(** Accumulate one profile (static + dynamic judgements); returns [census]
    for chaining. *)
val add_profile : census -> Profile.profile -> census

val of_profile : Profile.profile -> census

val pp : Format.formatter -> census -> unit
