(* Dead code elimination: drop result-producing instructions whose values are
   never used. Stores, calls and terminators are always live; loads are
   removable (non-volatile semantics, as in LLVM — a dead load's only
   possible effect is an out-of-bounds trap, which optimized code may
   legitimately avoid). Works backwards to a fixpoint so chains of dead
   computation disappear in one run. *)

let has_side_effect (k : Ir.Instr.kind) =
  match k with
  | Ir.Instr.Store _ | Ir.Instr.Call _ | Ir.Instr.Alloc _ | Ir.Instr.Br _
  | Ir.Instr.Cond_br _ | Ir.Instr.Ret _ | Ir.Instr.Unreachable ->
      true
  | Ir.Instr.Ibinop _ | Ir.Instr.Fbinop _ | Ir.Instr.Icmp _ | Ir.Instr.Fcmp _
  | Ir.Instr.Select _ | Ir.Instr.Si_to_fp _ | Ir.Instr.Fp_to_si _ | Ir.Instr.Load _
  | Ir.Instr.Phi _ ->
      false

let run_func (fn : Ir.Func.t) : int =
  let removed = ref 0 in
  let changed = ref true in
  while !changed do
    changed := false;
    (* use counts over the whole arena *)
    let uses = Array.make (max 1 (Ir.Func.num_instrs fn)) 0 in
    Ir.Func.iter_instrs
      (fun i ->
        List.iter
          (fun v ->
            match v with Ir.Types.Reg r -> uses.(r) <- uses.(r) + 1 | _ -> ())
          (Ir.Instr.operands i.Ir.Instr.kind))
      fn;
    Ir.Func.iter_blocks
      (fun b ->
        let dead =
          List.filter
            (fun id ->
              let i = Ir.Func.instr fn id in
              (not (has_side_effect i.Ir.Instr.kind)) && uses.(id) = 0)
            b.Ir.Func.instr_ids
        in
        if dead <> [] then begin
          changed := true;
          removed := !removed + List.length dead;
          List.iter (fun id -> Ir.Func.remove_instr fn b.Ir.Func.bid id) dead
        end)
      fn
  done;
  !removed

let run_module (m : Ir.Func.modul) : int =
  List.fold_left (fun acc fn -> acc + run_func fn) 0 m.Ir.Func.funcs
