lib/opt/pipeline.ml: Constfold Dce Ir Licm List Simplify_cfg
