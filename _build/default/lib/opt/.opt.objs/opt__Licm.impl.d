lib/opt/licm.ml: Cfg Ir List
