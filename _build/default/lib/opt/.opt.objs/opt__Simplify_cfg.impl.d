lib/opt/simplify_cfg.ml: Array Cfg Ir List Seq
