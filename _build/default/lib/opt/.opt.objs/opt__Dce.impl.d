lib/opt/dce.ml: Array Ir List
