lib/opt/constfold.ml: Array Int64 Interp Ir List Seq
