(* Constant folding over the SSA arena, including branch folding. The paper
   analyzes IR *after* optimization (-Ofast); this pass (with Dce and
   Simplify_cfg) is the in-repo stand-in for that cleanup. Folding uses the
   interpreter's own scalar semantics so optimized and unoptimized programs
   can never disagree. *)

open Ir.Types

let const_of_value = function Const c -> Some c | Reg _ | Param _ | Global _ -> None

(* Fold one instruction kind to a constant if all inputs are known. Division
   by zero is NOT folded: it must still trap at run time. *)
let fold_kind (k : Ir.Instr.kind) : const option =
  match k with
  | Ir.Instr.Ibinop (op, a, b) -> (
      match (const_of_value a, const_of_value b) with
      | Some (Cint x), Some (Cint y) -> (
          match op with
          | (Ir.Instr.Sdiv | Ir.Instr.Srem) when y = 0L -> None
          | _ -> Some (Cint (Interp.Machine.exec_ibinop op x y)))
      | _ -> None)
  | Ir.Instr.Fbinop (op, a, b) -> (
      match (const_of_value a, const_of_value b) with
      | Some (Cfloat x), Some (Cfloat y) ->
          Some (Cfloat (Interp.Machine.exec_fbinop op x y))
      | _ -> None)
  | Ir.Instr.Icmp (op, a, b) -> (
      match (const_of_value a, const_of_value b) with
      | Some (Cint x), Some (Cint y) ->
          Some (Cbool (Interp.Machine.exec_icmp op (Interp.Rvalue.Vint x) (Interp.Rvalue.Vint y)))
      | Some (Cbool x), Some (Cbool y) ->
          Some
            (Cbool
               (Interp.Machine.exec_icmp op (Interp.Rvalue.Vbool x) (Interp.Rvalue.Vbool y)))
      | _ -> None)
  | Ir.Instr.Fcmp (op, a, b) -> (
      match (const_of_value a, const_of_value b) with
      | Some (Cfloat x), Some (Cfloat y) -> Some (Cbool (Interp.Machine.exec_fcmp op x y))
      | _ -> None)
  | Ir.Instr.Select (c, a, b) -> (
      match const_of_value c with
      | Some (Cbool true) -> const_of_value a
      | Some (Cbool false) -> const_of_value b
      | _ -> None)
  | Ir.Instr.Si_to_fp a -> (
      match const_of_value a with
      | Some (Cint x) -> Some (Cfloat (Int64.to_float x))
      | _ -> None)
  | Ir.Instr.Fp_to_si a -> (
      match const_of_value a with
      | Some (Cfloat x) -> Some (Cint (Int64.of_float x))
      | _ -> None)
  | Ir.Instr.Phi incoming -> (
      (* all-same-constant phi *)
      match Array.to_list incoming with
      | (_, v0) :: rest -> (
          match const_of_value v0 with
          | Some c when List.for_all (fun (_, v) -> equal_value v v0) rest -> Some c
          | _ -> None)
      | [] -> None)
  | Ir.Instr.Load _ | Ir.Instr.Store _ | Ir.Instr.Alloc _ | Ir.Instr.Call _
  | Ir.Instr.Br _ | Ir.Instr.Cond_br _ | Ir.Instr.Ret _ | Ir.Instr.Unreachable ->
      None

(* Algebraic identities that need no constant result: x+0, x*1, x*0, x-0,
   x&0, x|0, shifts by 0. Returns the replacement value. *)
let identity_of (k : Ir.Instr.kind) : value option =
  match k with
  | Ir.Instr.Ibinop (Ir.Instr.Add, x, Const (Cint 0L))
  | Ir.Instr.Ibinop (Ir.Instr.Add, Const (Cint 0L), x)
  | Ir.Instr.Ibinop (Ir.Instr.Sub, x, Const (Cint 0L))
  | Ir.Instr.Ibinop (Ir.Instr.Mul, x, Const (Cint 1L))
  | Ir.Instr.Ibinop (Ir.Instr.Mul, Const (Cint 1L), x)
  | Ir.Instr.Ibinop (Ir.Instr.Or, x, Const (Cint 0L))
  | Ir.Instr.Ibinop (Ir.Instr.Or, Const (Cint 0L), x)
  | Ir.Instr.Ibinop (Ir.Instr.Xor, x, Const (Cint 0L))
  | Ir.Instr.Ibinop (Ir.Instr.Xor, Const (Cint 0L), x)
  | Ir.Instr.Ibinop (Ir.Instr.Shl, x, Const (Cint 0L))
  | Ir.Instr.Ibinop (Ir.Instr.Ashr, x, Const (Cint 0L))
  | Ir.Instr.Ibinop (Ir.Instr.Lshr, x, Const (Cint 0L)) ->
      Some x
  | Ir.Instr.Ibinop (Ir.Instr.Mul, _, Const (Cint 0L))
  | Ir.Instr.Ibinop (Ir.Instr.Mul, Const (Cint 0L), _)
  | Ir.Instr.Ibinop (Ir.Instr.And, _, Const (Cint 0L))
  | Ir.Instr.Ibinop (Ir.Instr.And, Const (Cint 0L), _) ->
      Some (int_ 0)
  | Ir.Instr.Select (_, a, b) when equal_value a b -> Some a
  | Ir.Instr.Select (Const (Cbool true), a, _) -> Some a
  | Ir.Instr.Select (Const (Cbool false), _, b) -> Some b
  | _ -> None

(* One folding sweep over a function; returns true if anything changed. *)
let fold_once (fn : Ir.Func.t) : bool =
  let changed = ref false in
  Ir.Func.iter_blocks
    (fun b ->
      List.iter
        (fun id ->
          let i = Ir.Func.instr fn id in
          if Ir.Instr.has_result i.Ir.Instr.kind then begin
            match fold_kind i.Ir.Instr.kind with
            | Some c ->
                Ir.Func.replace_all_uses fn ~old_id:id ~with_:(Const c);
                (* neutralize the folded instruction so Dce removes it *)
                (match i.Ir.Instr.kind with
                | Ir.Instr.Phi _ | Ir.Instr.Ibinop _ | Ir.Instr.Fbinop _
                | Ir.Instr.Icmp _ | Ir.Instr.Fcmp _ | Ir.Instr.Select _
                | Ir.Instr.Si_to_fp _ | Ir.Instr.Fp_to_si _ ->
                    changed := true
                | _ -> ())
            | None -> (
                match identity_of i.Ir.Instr.kind with
                | Some v ->
                    Ir.Func.replace_all_uses fn ~old_id:id ~with_:v;
                    changed := true
                | None -> ())
          end)
        b.Ir.Func.instr_ids)
    fn;
  (* Branch folding: a conditional branch on a constant becomes a plain
     branch; phi entries from the dead edge are dropped. *)
  Ir.Func.iter_blocks
    (fun b ->
      match Ir.Func.terminator fn b.Ir.Func.bid with
      | Some ({ Ir.Instr.kind = Ir.Instr.Cond_br (Const (Cbool cond), l1, l2); _ } as t)
        when l1 <> l2 ->
          let taken = if cond then l1 else l2 in
          let dead = if cond then l2 else l1 in
          t.Ir.Instr.kind <- Ir.Instr.Br taken;
          List.iter
            (fun (phi : Ir.Instr.t) ->
              match phi.Ir.Instr.kind with
              | Ir.Instr.Phi incoming ->
                  phi.Ir.Instr.kind <-
                    Ir.Instr.Phi
                      (Array.of_seq
                         (Seq.filter (fun (p, _) -> p <> b.Ir.Func.bid)
                            (Array.to_seq incoming)))
              | _ -> ())
            (Ir.Func.phis fn dead);
          changed := true
      | _ -> ())
    fn;
  !changed

let run_func fn =
  let budget = ref 50 in
  while fold_once fn && !budget > 0 do
    decr budget
  done

let run_module (m : Ir.Func.modul) = List.iter run_func m.Ir.Func.funcs
