(** Loop-invariant code motion: hoist speculatable (side-effect-free,
    non-trapping) computations with loop-invariant operands into the loop
    preheader. Canonicalizes loops first; processes innermost loops first so
    invariants bubble outward. Returns the number of instructions moved. *)

val speculatable : Ir.Instr.kind -> bool

val run_func : Ir.Func.t -> int

val run_module : Ir.Func.modul -> int
