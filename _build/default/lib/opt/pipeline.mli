(** The pre-instrumentation optimization pipeline (the stand-in for the
    paper's "-Ofast IR" starting point): constant folding, CFG cleanup,
    loop-invariant code motion and DCE to a fixpoint. Semantics-preserving —
    checked against the whole benchmark corpus in test/test_opt.ml. *)

val run_func : Ir.Func.t -> unit

(** @raise Ir.Verifier.Invalid_ir if a pass ever broke the module (a bug). *)
val run_module : Ir.Func.modul -> unit
