(** Dead code elimination. Stores, calls, allocs and terminators are always
    live; loads are removable (non-volatile semantics, as in LLVM). Returns
    the number of instructions removed. *)

val has_side_effect : Ir.Instr.kind -> bool

val run_func : Ir.Func.t -> int

val run_module : Ir.Func.modul -> int
