(** Constant folding (using the interpreter's own scalar semantics, so
    optimized code can never disagree with execution), algebraic identities,
    and branch folding. Division by zero is never folded — the trap must
    survive. Folded instructions become dead; run {!Dce} afterwards. *)

(** Fold one instruction to a constant if all inputs are known. *)
val fold_kind : Ir.Instr.kind -> Ir.Types.const option

(** x+0, x*1, x*0, x&0, shifts by 0, trivial selects. *)
val identity_of : Ir.Instr.kind -> Ir.Types.value option

val run_func : Ir.Func.t -> unit

val run_module : Ir.Func.modul -> unit
