(* Loop-invariant code motion: hoist side-effect-free, non-trapping
   computations whose operands are loop-invariant into the loop's preheader.
   Loops are canonicalized first so a preheader exists. Only speculatable
   instructions move (integer division/remainder can trap, loads can alias
   in-loop stores — both stay put), so hoisting is safe even out of
   conditional paths. Innermost loops are processed first so invariants
   bubble outward through the nest. *)

let speculatable (k : Ir.Instr.kind) =
  match k with
  | Ir.Instr.Ibinop ((Ir.Instr.Sdiv | Ir.Instr.Srem), _, _) -> false
  | Ir.Instr.Ibinop _ | Ir.Instr.Fbinop _ | Ir.Instr.Icmp _ | Ir.Instr.Fcmp _
  | Ir.Instr.Select _ | Ir.Instr.Si_to_fp _ | Ir.Instr.Fp_to_si _ ->
      true
  | Ir.Instr.Load _ | Ir.Instr.Store _ | Ir.Instr.Alloc _ | Ir.Instr.Call _
  | Ir.Instr.Phi _ | Ir.Instr.Br _ | Ir.Instr.Cond_br _ | Ir.Instr.Ret _
  | Ir.Instr.Unreachable ->
      false

(* Hoist out of one loop; returns the number of instructions moved. *)
let hoist_loop (fn : Ir.Func.t) (li : Cfg.Loopinfo.t) (lid : int) : int =
  match Cfg.Loopinfo.preheader li lid with
  | None -> 0
  | Some pre ->
      let moved = ref 0 in
      let invariant_value v =
        match v with
        | Ir.Types.Const _ | Ir.Types.Param _ | Ir.Types.Global _ -> true
        | Ir.Types.Reg r ->
            not (Cfg.Loopinfo.contains li lid (Ir.Func.instr fn r).Ir.Instr.block)
      in
      let changed = ref true in
      while !changed do
        changed := false;
        Cfg.Loopinfo.Int_set.iter
          (fun bid ->
            let hoistable =
              List.filter
                (fun id ->
                  let k = Ir.Func.kind fn id in
                  speculatable k && List.for_all invariant_value (Ir.Instr.operands k))
                (Ir.Func.block fn bid).Ir.Func.instr_ids
            in
            List.iter
              (fun id ->
                Ir.Func.remove_instr fn bid id;
                (* insert before the preheader's terminator *)
                let pb = Ir.Func.block fn pre in
                (match List.rev pb.Ir.Func.instr_ids with
                | term :: rest ->
                    pb.Ir.Func.instr_ids <- List.rev rest @ [ id; term ]
                | [] -> pb.Ir.Func.instr_ids <- [ id ]);
                (Ir.Func.instr fn id).Ir.Instr.block <- pre;
                incr moved;
                changed := true)
              hoistable)
          (Cfg.Loopinfo.loop li lid).Cfg.Loopinfo.body
      done;
      !moved

let run_func (fn : Ir.Func.t) : int =
  Cfg.Loop_simplify.run_func fn;
  let cfg = Cfg.Graph.build fn in
  let dom = Cfg.Dom.compute cfg in
  let li = Cfg.Loopinfo.compute cfg dom in
  (* innermost first: deeper loops hoist into enclosing bodies, which the
     enclosing loop's pass then sees as its own candidates *)
  let by_depth =
    List.sort
      (fun (a : Cfg.Loopinfo.loop) b -> compare b.Cfg.Loopinfo.depth a.Cfg.Loopinfo.depth)
      (Cfg.Loopinfo.loops li)
  in
  List.fold_left (fun acc l -> acc + hoist_loop fn li l.Cfg.Loopinfo.lid) 0 by_depth

let run_module (m : Ir.Func.modul) : int =
  List.fold_left (fun acc fn -> acc + run_func fn) 0 m.Ir.Func.funcs
