(** CFG cleanup: unreachable blocks are gutted to a lone [unreachable]
    (block ids stay stable — blocks are never physically deleted), and
    single-successor/single-predecessor chains are merged. *)

(** One gutting sweep; true if anything changed. *)
val gut_unreachable : Ir.Func.t -> bool

(** At most one merge per call (each merge invalidates the CFG view); true
    if a merge happened. *)
val merge_chains : Ir.Func.t -> bool

val run_func : Ir.Func.t -> unit

val run_module : Ir.Func.modul -> unit
