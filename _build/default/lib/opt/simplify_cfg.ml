(* CFG cleanup after folding:
   - blocks unreachable from the entry are gutted to a lone [unreachable]
     (block ids must stay stable, so blocks are never physically deleted);
   - a block whose only successor has it as its only predecessor is merged
     with that successor (straight-line chains collapse), retargeting phi
     edges elsewhere accordingly. *)

let gut_unreachable (fn : Ir.Func.t) : bool =
  let cfg = Cfg.Graph.build fn in
  let changed = ref false in
  List.iter
    (fun bid ->
      let b = Ir.Func.block fn bid in
      let already_gutted =
        match b.Ir.Func.instr_ids with
        | [ id ] -> Ir.Func.kind fn id = Ir.Instr.Unreachable
        | _ -> false
      in
      if not already_gutted then begin
        changed := true;
        b.Ir.Func.instr_ids <- [];
        ignore (Ir.Func.append_instr fn bid ~ty:None Ir.Instr.Unreachable);
        (* drop phi edges coming from the unreachable block *)
        Ir.Func.iter_instrs
          (fun i ->
            match i.Ir.Instr.kind with
            | Ir.Instr.Phi incoming when Array.exists (fun (p, _) -> p = bid) incoming ->
                i.Ir.Instr.kind <-
                  Ir.Instr.Phi
                    (Array.of_seq
                       (Seq.filter (fun (p, _) -> p <> bid) (Array.to_seq incoming)))
            | _ -> ())
          fn
      end)
    (Cfg.Graph.unreachable_blocks cfg);
  !changed

(* Perform at most one merge per call: every merge invalidates the CFG view,
   so the caller re-runs until a fixpoint. *)
let merge_chains (fn : Ir.Func.t) : bool =
  let cfg = Cfg.Graph.build fn in
  let candidate = ref None in
  for a = 0 to Ir.Func.num_blocks fn - 1 do
    if !candidate = None && Cfg.Graph.is_reachable cfg a then
      match Cfg.Graph.successors cfg a with
      | [ b ]
        when b <> a
             && Cfg.Graph.predecessors cfg b = [ a ]
             && Ir.Func.phis fn b = []
             && b <> fn.Ir.Func.entry ->
          candidate := Some (a, b)
      | _ -> ()
  done;
  match !candidate with
  | None -> false
  | Some (a, b) -> (
      (* splice b's instructions after a's (dropping a's terminator) *)
      let ba = Ir.Func.block fn a and bb = Ir.Func.block fn b in
      match List.rev ba.Ir.Func.instr_ids with
      | _term :: rest ->
          ba.Ir.Func.instr_ids <- List.rev rest @ bb.Ir.Func.instr_ids;
          List.iter
            (fun id -> (Ir.Func.instr fn id).Ir.Instr.block <- a)
            bb.Ir.Func.instr_ids;
          bb.Ir.Func.instr_ids <- [];
          ignore (Ir.Func.append_instr fn b ~ty:None Ir.Instr.Unreachable);
          (* phi edges that named b as predecessor now come from a *)
          Ir.Func.iter_instrs
            (fun i ->
              match i.Ir.Instr.kind with
              | Ir.Instr.Phi incoming ->
                  i.Ir.Instr.kind <-
                    Ir.Instr.Phi
                      (Array.map (fun (p, v) -> ((if p = b then a else p), v)) incoming)
              | _ -> ())
            fn;
          true
      | [] -> false)

let run_func (fn : Ir.Func.t) =
  let budget = ref ((2 * Ir.Func.num_blocks fn) + 16) in
  let step () = gut_unreachable fn || merge_chains fn in
  while step () && !budget > 0 do
    decr budget
  done

let run_module (m : Ir.Func.modul) = List.iter run_func m.Ir.Func.funcs
