(** Growable array with amortized O(1) append and O(1) random access. The IR
    arena, interpreter memory and profile tables are built on it (OCaml 5.1's
    stdlib predates Dynarray). *)

type 'a t

(** [dummy] fills unused capacity; it is never observable. *)
val create : dummy:'a -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

(** @raise Invalid_argument when out of bounds. *)
val get : 'a t -> int -> 'a

(** @raise Invalid_argument when out of bounds. *)
val set : 'a t -> int -> 'a -> unit

val push : 'a t -> 'a -> unit

(** Push and return the index the element landed at. *)
val push_idx : 'a t -> 'a -> int

(** @raise Invalid_argument when empty. *)
val pop : 'a t -> 'a

(** @raise Invalid_argument when empty. *)
val last : 'a t -> 'a

val clear : 'a t -> unit

val iter : ('a -> unit) -> 'a t -> unit

val iteri : (int -> 'a -> unit) -> 'a t -> unit

val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc

val exists : ('a -> bool) -> 'a t -> bool

val for_all : ('a -> bool) -> 'a t -> bool

val to_list : 'a t -> 'a list

val to_array : 'a t -> 'a array

val of_list : dummy:'a -> 'a list -> 'a t

val map : dummy:'b -> ('a -> 'b) -> 'a t -> 'b t

val find_opt : ('a -> bool) -> 'a t -> 'a option
