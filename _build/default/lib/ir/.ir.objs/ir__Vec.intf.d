lib/ir/vec.mli:
