lib/ir/instr.ml: Array List Types
