lib/ir/builder.ml: Array Func Instr Option Types
