lib/ir/verifier.ml: Array Format Func Instr List Option Pp Printf String Types
