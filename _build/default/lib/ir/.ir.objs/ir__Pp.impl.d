lib/ir/pp.ml: Array Format Func Instr List Types Vec
