lib/ir/func.ml: Instr List Printf Types Vec
