lib/ir/builtins.ml: List Types
