lib/ir/types.ml: Format Int64 String
