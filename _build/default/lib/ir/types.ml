(* Value types of the IR. The machine is word-oriented: integers are 64-bit,
   floats are IEEE double, booleans are 1-bit predicates (i1). Addresses are
   plain i64 word indices into the interpreter's flat memory. *)

type ty =
  | I1
  | I64
  | F64

let equal_ty (a : ty) (b : ty) = a = b

let pp_ty ppf = function
  | I1 -> Format.pp_print_string ppf "i1"
  | I64 -> Format.pp_print_string ppf "i64"
  | F64 -> Format.pp_print_string ppf "f64"

let ty_to_string = function I1 -> "i1" | I64 -> "i64" | F64 -> "f64"

(* Compile-time constants. *)
type const =
  | Cbool of bool
  | Cint of int64
  | Cfloat of float

let const_ty = function Cbool _ -> I1 | Cint _ -> I64 | Cfloat _ -> F64

let equal_const a b =
  match (a, b) with
  | Cbool x, Cbool y -> x = y
  | Cint x, Cint y -> Int64.equal x y
  | Cfloat x, Cfloat y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)
  | (Cbool _ | Cint _ | Cfloat _), _ -> false

let pp_const ppf = function
  | Cbool b -> Format.fprintf ppf "%b" b
  | Cint i -> Format.fprintf ppf "%Ld" i
  | Cfloat f -> Format.fprintf ppf "%h" f

let const_to_string c = Format.asprintf "%a" pp_const c

(* SSA values: constants, instruction results (by arena id within the
   enclosing function), function parameters (by position), or the address of
   a named module global (an i64 word address resolved at load time). *)
type value =
  | Const of const
  | Reg of int
  | Param of int
  | Global of string

let equal_value a b =
  match (a, b) with
  | Const x, Const y -> equal_const x y
  | Reg x, Reg y -> x = y
  | Param x, Param y -> x = y
  | Global x, Global y -> String.equal x y
  | (Const _ | Reg _ | Param _ | Global _), _ -> false

let bool_ b = Const (Cbool b)
let int_ i = Const (Cint (Int64.of_int i))
let int64_ i = Const (Cint i)
let float_ f = Const (Cfloat f)
