(* Human-readable printer, LLVM-flavoured. Used by tests, the CLI's --dump-ir
   and error messages. *)

open Types

let pp_value ppf = function
  | Const c -> pp_const ppf c
  | Reg id -> Format.fprintf ppf "%%%d" id
  | Param i -> Format.fprintf ppf "%%arg%d" i
  | Global g -> Format.fprintf ppf "@%s" g

let value_to_string v = Format.asprintf "%a" pp_value v

let pp_operands ppf vs =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
    pp_value ppf vs

let pp_kind fn ppf (k : Instr.kind) =
  let ty_of v =
    match Func.value_ty fn v with Some t -> ty_to_string t | None -> "?"
  in
  match k with
  | Instr.Ibinop (op, a, b) ->
      Format.fprintf ppf "%s i64 %a, %a" (Instr.ibinop_name op) pp_value a pp_value b
  | Instr.Fbinop (op, a, b) ->
      Format.fprintf ppf "%s f64 %a, %a" (Instr.fbinop_name op) pp_value a pp_value b
  | Instr.Icmp (op, a, b) ->
      Format.fprintf ppf "icmp %s %a, %a" (Instr.icmp_name op) pp_value a pp_value b
  | Instr.Fcmp (op, a, b) ->
      Format.fprintf ppf "fcmp %s %a, %a" (Instr.fcmp_name op) pp_value a pp_value b
  | Instr.Select (c, a, b) ->
      Format.fprintf ppf "select %a, %a, %a" pp_value c pp_value a pp_value b
  | Instr.Si_to_fp a -> Format.fprintf ppf "sitofp %a" pp_value a
  | Instr.Fp_to_si a -> Format.fprintf ppf "fptosi %a" pp_value a
  | Instr.Load a -> Format.fprintf ppf "load %a" pp_value a
  | Instr.Store (a, v) ->
      Format.fprintf ppf "store %s %a, %a" (ty_of v) pp_value v pp_value a
  | Instr.Alloc n -> Format.fprintf ppf "alloc %a" pp_value n
  | Instr.Call (name, args) -> Format.fprintf ppf "call @%s(%a)" name pp_operands args
  | Instr.Phi incoming ->
      Format.fprintf ppf "phi ";
      Array.iteri
        (fun i (b, v) ->
          if i > 0 then Format.pp_print_string ppf ", ";
          Format.fprintf ppf "[%a, bb%d]" pp_value v b)
        incoming
  | Instr.Br l -> Format.fprintf ppf "br bb%d" l
  | Instr.Cond_br (c, l1, l2) ->
      Format.fprintf ppf "br %a, bb%d, bb%d" pp_value c l1 l2
  | Instr.Ret (Some v) -> Format.fprintf ppf "ret %a" pp_value v
  | Instr.Ret None -> Format.pp_print_string ppf "ret void"
  | Instr.Unreachable -> Format.pp_print_string ppf "unreachable"

let pp_instr fn ppf (i : Instr.t) =
  match i.Instr.ty with
  | Some ty when Instr.has_result i.Instr.kind ->
      Format.fprintf ppf "%%%d : %s = %a" i.Instr.id (ty_to_string ty) (pp_kind fn)
        i.Instr.kind
  | _ -> pp_kind fn ppf i.Instr.kind

let pp_block fn ppf (b : Func.block) =
  Format.fprintf ppf "@[<v 2>bb%d (%s):" b.Func.bid b.Func.name;
  List.iter
    (fun id -> Format.fprintf ppf "@,%a" (pp_instr fn) (Func.instr fn id))
    b.Func.instr_ids;
  Format.fprintf ppf "@]"

let pp_func ppf (fn : Func.t) =
  let pp_param ppf (i, (name, ty)) =
    Format.fprintf ppf "%%arg%d /*%s*/ : %s" i name (ty_to_string ty)
  in
  let params = List.mapi (fun i p -> (i, p)) fn.Func.params in
  Format.fprintf ppf "@[<v>fn @%s(%a) -> %s {@," fn.Func.fname
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       pp_param)
    params
    (match fn.Func.ret with Some t -> ty_to_string t | None -> "void");
  Vec.iter (fun b -> Format.fprintf ppf "%a@," (pp_block fn) b) fn.Func.blocks;
  Format.fprintf ppf "}@]"

let func_to_string fn = Format.asprintf "%a" pp_func fn

let pp_module ppf (m : Func.modul) =
  List.iter
    (fun g ->
      Format.fprintf ppf "global @%s : %s = %a@." g.Func.gname
        (ty_to_string g.Func.gty) pp_const g.Func.ginit)
    m.Func.globals;
  List.iter (fun fn -> Format.fprintf ppf "%a@.@." pp_func fn) m.Func.funcs

let module_to_string m = Format.asprintf "%a" pp_module m
