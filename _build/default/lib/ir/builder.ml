(* Cursor-style construction API over Func. Each [emit] appends to the
   current block; terminators close the block and the caller repositions. *)

open Types

type t = { fn : Func.t; mutable cur : int }

let create fn = { fn; cur = fn.Func.entry }

let position b bid = b.cur <- bid

let current b = b.cur

let fresh_block ?name b = Func.add_block ?name b.fn

let emit b ~ty k = Types.Reg (Func.append_instr b.fn b.cur ~ty k)

let emit_unit b k = ignore (Func.append_instr b.fn b.cur ~ty:None k)

(* Integer ops *)
let add b x y = emit b ~ty:(Some I64) (Instr.Ibinop (Instr.Add, x, y))
let sub b x y = emit b ~ty:(Some I64) (Instr.Ibinop (Instr.Sub, x, y))
let mul b x y = emit b ~ty:(Some I64) (Instr.Ibinop (Instr.Mul, x, y))
let sdiv b x y = emit b ~ty:(Some I64) (Instr.Ibinop (Instr.Sdiv, x, y))
let srem b x y = emit b ~ty:(Some I64) (Instr.Ibinop (Instr.Srem, x, y))
let and_ b x y = emit b ~ty:(Some I64) (Instr.Ibinop (Instr.And, x, y))
let or_ b x y = emit b ~ty:(Some I64) (Instr.Ibinop (Instr.Or, x, y))
let xor b x y = emit b ~ty:(Some I64) (Instr.Ibinop (Instr.Xor, x, y))
let shl b x y = emit b ~ty:(Some I64) (Instr.Ibinop (Instr.Shl, x, y))
let ashr b x y = emit b ~ty:(Some I64) (Instr.Ibinop (Instr.Ashr, x, y))
let lshr b x y = emit b ~ty:(Some I64) (Instr.Ibinop (Instr.Lshr, x, y))

(* Float ops *)
let fadd b x y = emit b ~ty:(Some F64) (Instr.Fbinop (Instr.Fadd, x, y))
let fsub b x y = emit b ~ty:(Some F64) (Instr.Fbinop (Instr.Fsub, x, y))
let fmul b x y = emit b ~ty:(Some F64) (Instr.Fbinop (Instr.Fmul, x, y))
let fdiv b x y = emit b ~ty:(Some F64) (Instr.Fbinop (Instr.Fdiv, x, y))

(* Comparisons *)
let icmp b op x y = emit b ~ty:(Some I1) (Instr.Icmp (op, x, y))
let fcmp b op x y = emit b ~ty:(Some I1) (Instr.Fcmp (op, x, y))

let select b ~ty c x y = emit b ~ty:(Some ty) (Instr.Select (c, x, y))
let si_to_fp b x = emit b ~ty:(Some F64) (Instr.Si_to_fp x)
let fp_to_si b x = emit b ~ty:(Some I64) (Instr.Fp_to_si x)

(* Memory *)
let load b ~ty addr = emit b ~ty:(Some ty) (Instr.Load addr)
let store b ~addr v = emit_unit b (Instr.Store (addr, v))
let alloc b size = emit b ~ty:(Some I64) (Instr.Alloc size)

(* Calls: [ty = None] for void. *)
let call b ~ty name args = emit b ~ty (Instr.Call (name, args))

let call_unit b name args = emit_unit b (Instr.Call (name, args))

(* Phi with its incoming list known up front. *)
let phi b ~ty incoming =
  Types.Reg (Func.prepend_instr b.fn b.cur ~ty:(Some ty) (Instr.Phi (Array.of_list incoming)))

(* Empty phi placeholder to be filled later (SSA construction). *)
let phi_placeholder fn bid ~ty =
  Func.prepend_instr fn bid ~ty:(Some ty) (Instr.Phi [||])

(* Terminators *)
let br b l = emit_unit b (Instr.Br l)
let cond_br b c l1 l2 = emit_unit b (Instr.Cond_br (c, l1, l2))
let ret b v = emit_unit b (Instr.Ret v)
let unreachable b = emit_unit b Instr.Unreachable

(* Whether the current block already ends in a terminator. *)
let is_closed b = Option.is_some (Func.terminator b.fn b.cur)
