(* Functions, basic blocks and modules. Instructions live in a per-function
   arena ([instrs]) and blocks reference them by id, so analyses can use
   plain int ids as dense keys. *)

open Types

type block = {
  bid : int;
  mutable name : string;
  mutable instr_ids : int list; (* in execution order; last one terminates *)
}

type t = {
  fname : string;
  params : (string * ty) list;
  ret : ty option;
  blocks : block Vec.t;
  instrs : Instr.t Vec.t;
  mutable entry : int;
}

type global = { gname : string; gty : ty; ginit : const }

type modul = {
  mutable funcs : t list; (* in definition order *)
  mutable globals : global list;
}

let dummy_block = { bid = -1; name = "<dummy>"; instr_ids = [] }

let dummy_instr : Instr.t = { id = -1; kind = Instr.Unreachable; ty = None; block = -1 }

let create ~name ~params ~ret =
  {
    fname = name;
    params;
    ret;
    blocks = Vec.create ~dummy:dummy_block;
    instrs = Vec.create ~dummy:dummy_instr;
    entry = 0;
  }

let add_block ?(name = "") fn =
  let bid = Vec.length fn.blocks in
  let name = if name = "" then Printf.sprintf "bb%d" bid else name in
  Vec.push fn.blocks { bid; name; instr_ids = [] };
  bid

let block fn bid = Vec.get fn.blocks bid

let num_blocks fn = Vec.length fn.blocks

let instr fn id = Vec.get fn.instrs id

let num_instrs fn = Vec.length fn.instrs

let kind fn id = (instr fn id).Instr.kind

let set_kind fn id k = (instr fn id).Instr.kind <- k

let instr_ty fn id = (instr fn id).Instr.ty

(* Type of a value in the context of [fn]. *)
let value_ty fn = function
  | Const c -> Some (const_ty c)
  | Reg id -> instr_ty fn id
  | Param i -> (
      match List.nth_opt fn.params i with
      | Some (_, ty) -> Some ty
      | None -> None)
  | Global _ -> Some I64

let terminator fn bid =
  match List.rev (block fn bid).instr_ids with
  | [] -> None
  | last :: _ ->
      let i = instr fn last in
      if Instr.is_terminator i.Instr.kind then Some i else None

let successors fn bid =
  match terminator fn bid with
  | None -> []
  | Some i -> Instr.successors i.Instr.kind

let iter_blocks f fn = Vec.iter f fn.blocks

let iter_instrs f fn =
  iter_blocks (fun b -> List.iter (fun id -> f (instr fn id)) b.instr_ids) fn

let fold_instrs f init fn =
  let acc = ref init in
  iter_instrs (fun i -> acc := f !acc i) fn;
  !acc

(* Phis of a block (they must form a prefix of the instruction list). *)
let phis fn bid =
  let rec take = function
    | id :: rest -> (
        match kind fn id with Instr.Phi _ -> instr fn id :: take rest | _ -> [])
    | [] -> []
  in
  take (block fn bid).instr_ids

let non_phi_instrs fn bid =
  List.filter
    (fun id -> match kind fn id with Instr.Phi _ -> false | _ -> true)
    (block fn bid).instr_ids

(* Append an instruction to a block, returning its arena id. *)
let append_instr fn bid ~ty k =
  let id = Vec.length fn.instrs in
  Vec.push fn.instrs { Instr.id; kind = k; ty; block = bid };
  let b = block fn bid in
  b.instr_ids <- b.instr_ids @ [ id ];
  id

(* Insert an instruction at the head of a block (used for phis). *)
let prepend_instr fn bid ~ty k =
  let id = Vec.length fn.instrs in
  Vec.push fn.instrs { Instr.id; kind = k; ty; block = bid };
  let b = block fn bid in
  b.instr_ids <- id :: b.instr_ids;
  id

let remove_instr fn bid id =
  let b = block fn bid in
  b.instr_ids <- List.filter (fun i -> i <> id) b.instr_ids

(* Replace every use of [Reg old_id] with [v] across the function. *)
let replace_all_uses fn ~old_id ~with_ =
  let subst value =
    match value with Reg r when r = old_id -> with_ | _ -> value
  in
  Vec.iter (fun i -> i.Instr.kind <- Instr.map_operands subst i.Instr.kind) fn.instrs

let find_func m name = List.find_opt (fun f -> f.fname = name) m.funcs

let create_module () = { funcs = []; globals = [] }

let add_func m fn = m.funcs <- m.funcs @ [ fn ]

let add_global m g = m.globals <- m.globals @ [ g ]
