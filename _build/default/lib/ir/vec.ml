(* Growable array. OCaml 5.1's stdlib has no Dynarray (added in 5.2), and the
   IR arena, profile tables and interpreter memory all need amortized O(1)
   append with O(1) random access, so we provide a minimal one here. *)

type 'a t = {
  mutable data : 'a array;
  mutable len : int;
  dummy : 'a;
}

let create ~dummy = { data = Array.make 8 dummy; len = 0; dummy }

let length v = v.len

let is_empty v = v.len = 0

let get v i =
  if i < 0 || i >= v.len then invalid_arg "Vec.get: index out of bounds";
  v.data.(i)

let set v i x =
  if i < 0 || i >= v.len then invalid_arg "Vec.set: index out of bounds";
  v.data.(i) <- x

let ensure_capacity v n =
  if n > Array.length v.data then begin
    let cap = ref (Array.length v.data) in
    while !cap < n do
      cap := !cap * 2
    done;
    let data = Array.make !cap v.dummy in
    Array.blit v.data 0 data 0 v.len;
    v.data <- data
  end

let push v x =
  ensure_capacity v (v.len + 1);
  v.data.(v.len) <- x;
  v.len <- v.len + 1

(* Push and return the index the element landed at. *)
let push_idx v x =
  push v x;
  v.len - 1

let pop v =
  if v.len = 0 then invalid_arg "Vec.pop: empty";
  v.len <- v.len - 1;
  let x = v.data.(v.len) in
  v.data.(v.len) <- v.dummy;
  x

let last v =
  if v.len = 0 then invalid_arg "Vec.last: empty";
  v.data.(v.len - 1)

let clear v =
  Array.fill v.data 0 v.len v.dummy;
  v.len <- 0

let iter f v =
  for i = 0 to v.len - 1 do
    f v.data.(i)
  done

let iteri f v =
  for i = 0 to v.len - 1 do
    f i v.data.(i)
  done

let fold_left f init v =
  let acc = ref init in
  for i = 0 to v.len - 1 do
    acc := f !acc v.data.(i)
  done;
  !acc

let exists p v =
  let rec loop i = i < v.len && (p v.data.(i) || loop (i + 1)) in
  loop 0

let for_all p v = not (exists (fun x -> not (p x)) v)

let to_list v =
  let rec loop i acc = if i < 0 then acc else loop (i - 1) (v.data.(i) :: acc) in
  loop (v.len - 1) []

let to_array v = Array.sub v.data 0 v.len

let of_list ~dummy xs =
  let v = create ~dummy in
  List.iter (push v) xs;
  v

let map ~dummy f v =
  let out = create ~dummy in
  iter (fun x -> push out (f x)) v;
  out

let find_opt p v =
  let rec loop i =
    if i >= v.len then None
    else if p v.data.(i) then Some v.data.(i)
    else loop (i + 1)
  in
  loop 0
