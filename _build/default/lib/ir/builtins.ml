(* Builtin ("library") functions callable from Looplang programs. Each
   carries the safety classification the fn0–fn3 ladder needs (paper Table
   II): pure builtins are callable under -fn1; thread-safe (re-entrant,
   argument-only effects) builtins additionally under -fn2; I/O and
   global-state builtins only under -fn3.

   These model the pre-compiled C library of the paper's setup: their
   *internal* execution time is not instrumented (paper §III-D) beyond a
   fixed cost, but their memory effects on program-visible arrays are
   reported to the conflict tracker. *)

open Types

type safety =
  | Pure (* read-only, no side effects: callable under -fn1 *)
  | Thread_safe (* re-entrant, writes only through its arguments: -fn2 *)
  | Io (* observable side effects in program order: -fn3 only *)
  | Global_state (* hidden mutable state (e.g. the rand seed): -fn3 only *)

type signature = { args : ty list; ret : ty option; safety : safety }

let table : (string * signature) list =
  [
    ("print_int", { args = [ I64 ]; ret = None; safety = Io });
    ("print_float", { args = [ F64 ]; ret = None; safety = Io });
    ("print_char", { args = [ I64 ]; ret = None; safety = Io });
    (* Deterministic LCG random source with a hidden seed *)
    ("rand", { args = []; ret = Some I64; safety = Global_state });
    ("srand", { args = [ I64 ]; ret = None; safety = Global_state });
    (* libm subset *)
    ("sqrt", { args = [ F64 ]; ret = Some F64; safety = Pure });
    ("sin", { args = [ F64 ]; ret = Some F64; safety = Pure });
    ("cos", { args = [ F64 ]; ret = Some F64; safety = Pure });
    ("exp", { args = [ F64 ]; ret = Some F64; safety = Pure });
    ("log", { args = [ F64 ]; ret = Some F64; safety = Pure });
    ("pow", { args = [ F64; F64 ]; ret = Some F64; safety = Pure });
    (* memcpy/memset analogues: thread-safe, effects via arguments only;
       their word-level accesses are reported to the conflict tracker *)
    ("arrcopy", { args = [ I64; I64; I64 ]; ret = Some I64; safety = Thread_safe });
    ("arrfill", { args = [ I64; I64; I64 ] (* fill value is i64 or f64 *); ret = Some I64; safety = Thread_safe });
  ]

let find name = List.assoc_opt name table

let is_builtin name = find name <> None

let safety_name = function
  | Pure -> "pure"
  | Thread_safe -> "thread-safe"
  | Io -> "io"
  | Global_state -> "global-state"
